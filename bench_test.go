package wsndse

// One benchmark per evaluation artifact of the paper (see DESIGN.md §4)
// plus micro-benchmarks of the hot paths. The experiment benchmarks run
// reduced-but-representative workloads per iteration and attach the
// headline quantities as custom metrics, so `go test -bench` both times
// the harness and regenerates the numbers.

import (
	"math/rand"
	"testing"

	"wsndse/internal/casestudy"
	"wsndse/internal/core"
	"wsndse/internal/cs"
	"wsndse/internal/dse"
	"wsndse/internal/dwt"
	"wsndse/internal/ecg"
	"wsndse/internal/experiments"
	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

// benchFeasibleConfig finds one feasible case-study configuration,
// deterministically.
func benchFeasibleConfig(b *testing.B, problem *casestudy.Problem) dse.Config {
	b.Helper()
	eval := problem.Evaluator()
	rng := rand.New(rand.NewSource(1))
	for {
		c := problem.Space().Random(rng)
		if _, err := eval.Evaluate(c); err == nil {
			return c
		}
	}
}

// BenchmarkModelEvaluation times one full three-metric model evaluation
// through the reference (object-rebuilding) evaluator — the paper's
// "approximately 4800 evaluations per second" (§5.2). The inverse of ns/op
// is the evaluations-per-second figure.
func BenchmarkModelEvaluation(b *testing.B) {
	problem := casestudy.NewProblem(casestudy.DefaultCalibration())
	eval := problem.Evaluator()
	cfg := benchFeasibleConfig(b, problem)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Evaluate(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1e9/float64(b.Elapsed().Nanoseconds())*float64(b.N), "evals/s")
}

// BenchmarkModelEvaluationCompiled is BenchmarkModelEvaluation on the
// compiled pipeline: pre-built MAC/application tables, scratch-reuse
// evaluation into a caller buffer. The equivalence tests guarantee the
// numbers are bit-identical to the reference evaluator's; this benchmark
// shows the speedup and the zero allocs/op.
func BenchmarkModelEvaluationCompiled(b *testing.B) {
	problem := casestudy.NewProblem(casestudy.DefaultCalibration())
	compiled, err := problem.Compile()
	if err != nil {
		b.Fatal(err)
	}
	eval := compiled.Evaluator().(dse.Forkable).Fork().(dse.IntoEvaluator)
	cfg := benchFeasibleConfig(b, problem)
	objs := make(dse.Objectives, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eval.EvaluateInto(cfg, objs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1e9/float64(b.Elapsed().Nanoseconds())*float64(b.N), "evals/s")
}

// BenchmarkNetworkSimulation times the comparator: one 60-second
// packet-level simulation of the six-node case-study network (the paper's
// Castalia runs took 5–10 minutes each).
func BenchmarkNetworkSimulation(b *testing.B) {
	params := defaultBenchParams()
	cfg, err := params.SimConfig(casestudy.DefaultCalibration(), 60, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3EnergyModel regenerates Figure 3 (energy estimation
// accuracy over the f_µC × CR grid) and reports the error statistics.
func BenchmarkFig3EnergyModel(b *testing.B) {
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig3(experiments.Fig3Config{SimDuration: 20})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.MaxErr, "maxerr%")
	b.ReportMetric(res.AvgErrDWT, "dwterr%")
	b.ReportMetric(res.AvgErrCS, "cserr%")
}

// BenchmarkFig4PRDEstimation regenerates Figure 4 (polynomial PRD
// estimator vs the shipped codec measurements).
func BenchmarkFig4PRDEstimation(b *testing.B) {
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig4(experiments.Fig4Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.AvgErrDWT, "dwterr_prd")
	b.ReportMetric(res.AvgErrCS, "cserr_prd")
}

// BenchmarkFig4Calibration times the measured side of Figure 4: running
// both codecs (compression + reconstruction) over the ECG corpus at all
// eight rates.
func BenchmarkFig4Calibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := casestudy.Calibrate(casestudy.CalibrationConfig{Blocks: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelayValidation runs a scaled version of the §5.1 experiment
// (the full 130 configurations regenerate via `wsn-experiments -run
// delay`) and reports the overestimation statistics.
func BenchmarkDelayValidation(b *testing.B) {
	var res *experiments.DelayValResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.DelayVal(experiments.DelayValConfig{Runs: 20, SimDuration: 15})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.MeanOver)*1e3, "meanover_ms")
	b.ReportMetric(float64(res.Violations), "violations")
}

// BenchmarkFig5DSE regenerates Figure 5 at a reduced search budget and
// reports the baseline's share of the full tradeoff set (paper: ≈7 %).
func BenchmarkFig5DSE(b *testing.B) {
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig5(experiments.Fig5Config{PopulationSize: 48, Generations: 25})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.SizeRatio*100, "baseline_tradeoffs%")
	b.ReportMetric(float64(len(res.FullFront)), "front_points")
}

// ---- micro-benchmarks of the hot paths ----

func benchECGBlock(b *testing.B) []float64 {
	b.Helper()
	g, err := ecg.NewGenerator(ecg.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return g.Generate(512)
}

// BenchmarkDWTCompress times one 512-sample block through the wavelet
// codec at CR = 0.23.
func BenchmarkDWTCompress(b *testing.B) {
	block := benchECGBlock(b)
	codec := dwt.NewCodec(dwt.Daubechies4(), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Compress(block, 0.23, 12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCSDecodeOMP times compressed-sensing reconstruction (the
// coordinator-side cost) with the greedy solver.
func BenchmarkCSDecodeOMP(b *testing.B) {
	benchCSDecode(b, cs.AlgorithmOMP)
}

// BenchmarkCSDecodeBPDN times the ℓ1 solver.
func BenchmarkCSDecodeBPDN(b *testing.B) {
	benchCSDecode(b, cs.AlgorithmBPDN)
}

func benchCSDecode(b *testing.B, algo cs.Algorithm) {
	block := benchECGBlock(b)
	codec := cs.NewCodec(512, dwt.Daubechies4(), 5, 1)
	codec.Algorithm = algo
	z, err := codec.Compress(block, 0.23, 12)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := codec.Decompress(z.Payload); err != nil { // warm the dictionary cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Decompress(z.Payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssign times the Eq. 1–2 transmission-interval assignment.
func BenchmarkAssign(b *testing.B) {
	mac, err := core.NewGTSMac(ieee.SuperframeConfig{BeaconOrder: 3, SuperframeOrder: 2}, 48, 6)
	if err != nil {
		b.Fatal(err)
	}
	phi := []units.BytesPerSecond{64, 86, 64, 120, 86, 143}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Assign(mac, phi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssignInto times the scratch-reuse form of the Eq. 1–2 solver —
// the one on the compiled hot path (0 allocs/op).
func BenchmarkAssignInto(b *testing.B) {
	mac, err := core.NewGTSMac(ieee.SuperframeConfig{BeaconOrder: 3, SuperframeOrder: 2}, 48, 6)
	if err != nil {
		b.Fatal(err)
	}
	phi := []units.BytesPerSecond{64, 86, 64, 120, 86, 143}
	var a core.Assignment
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.AssignHeteroInto(&a, mac, nil, phi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventEngine times raw scheduler throughput on the closure
// compatibility path (At/After): schedule-and-run chains of dependent
// events. The engine itself no longer boxes events — the remaining
// allocations are the caller's closures.
func BenchmarkEventEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		count := 0
		var tick func()
		tick = func() {
			count++
			if count < 1000 {
				e.After(0.001, tick)
			}
		}
		e.After(0.001, tick)
		e.Run(10)
		if count != 1000 {
			b.Fatal("engine lost events")
		}
	}
	b.ReportMetric(float64(b.N)*1000/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEventEngineTyped is the same dependent-event chain on the typed
// path the simulator now runs on: slab slots off a free list, an
// index-addressed heap, dispatch by (kind, node, arg) — zero allocations
// per event in steady state.
func BenchmarkEventEngineTyped(b *testing.B) {
	e := sim.NewEngine()
	count := 0
	e.SetDispatcher(func(kind uint8, node int32, arg float64) {
		count++
		if count < 1000 {
			e.ScheduleAfter(0.001, 1, node, arg)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count = 0
		e.ScheduleAfter(0.001, 1, 0, 0)
		e.Run(e.Now() + 10)
		if count != 1000 {
			b.Fatal("engine lost events")
		}
	}
	b.ReportMetric(float64(b.N)*1000/b.Elapsed().Seconds(), "events/s")
}

// benchBatchConfigs draws one fixed batch of case-study configurations for
// the EvaluateBatch benchmarks.
func benchBatchConfigs(problem *casestudy.Problem, n int) []dse.Config {
	rng := rand.New(rand.NewSource(7))
	configs := make([]dse.Config, n)
	for i := range configs {
		configs[i] = problem.Space().Random(rng)
	}
	return configs
}

// benchEvaluateBatch times one 256-configuration batch through a fresh
// ParallelEvaluator (fresh so the memo cache cannot trivialize the work).
// Comparing the Sequential and Parallel variants measures the worker-pool
// speedup of the batch runtime itself; the Compiled variants swap in the
// compiled pipeline. evals/s is directly comparable to
// BenchmarkModelEvaluation.
func benchEvaluateBatch(b *testing.B, workers int, compiled bool) {
	problem := casestudy.NewProblem(casestudy.DefaultCalibration())
	eval := problem.Evaluator()
	if compiled {
		c, err := problem.Compile()
		if err != nil {
			b.Fatal(err)
		}
		eval = c.Evaluator()
	}
	configs := benchBatchConfigs(problem, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pe := dse.NewParallelEvaluator(eval, workers)
		pe.EvaluateBatch(configs)
	}
	b.ReportMetric(float64(b.N*len(configs))/b.Elapsed().Seconds(), "evals/s")
}

func BenchmarkEvaluateBatchSequential(b *testing.B)         { benchEvaluateBatch(b, 1, false) }
func BenchmarkEvaluateBatchParallel(b *testing.B)           { benchEvaluateBatch(b, 0, false) }
func BenchmarkEvaluateBatchCompiledSequential(b *testing.B) { benchEvaluateBatch(b, 1, true) }
func BenchmarkEvaluateBatchCompiledParallel(b *testing.B)   { benchEvaluateBatch(b, 0, true) }

// benchExplore times a full NSGA-II exploration of the case study at the
// given worker count. The Sequential/Parallel pair demonstrates (rather
// than asserts) the end-to-end speedup of the concurrent batch runtime on
// multi-core hardware; the dse equivalence tests guarantee both variants
// return identical fronts.
func benchExplore(b *testing.B, workers int) {
	problem := casestudy.NewProblem(casestudy.DefaultCalibration())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dse.NSGA2(problem.Space(), problem.Evaluator(), dse.NSGA2Config{
			PopulationSize: 32,
			Generations:    8,
			Seed:           11,
			Workers:        workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Front) == 0 {
			b.Fatal("empty front")
		}
	}
}

func BenchmarkExploreSequential(b *testing.B) { benchExplore(b, 1) }
func BenchmarkExploreParallel(b *testing.B)   { benchExplore(b, 0) }

// BenchmarkNSGA2Generation times the genetic algorithm on the case study
// at one-generation granularity (population 32).
func BenchmarkNSGA2Generation(b *testing.B) {
	problem := casestudy.NewProblem(casestudy.DefaultCalibration())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dse.NSGA2(problem.Space(), problem.Evaluator(), dse.NSGA2Config{
			PopulationSize: 32,
			Generations:    1,
			Seed:           int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func defaultBenchParams() casestudy.Params {
	n := casestudy.DefaultNodes
	p := casestudy.Params{
		BeaconOrder:     3,
		SuperframeOrder: 2,
		PayloadBytes:    48,
		CR:              make([]float64, n),
		MicroFreq:       make([]units.Hertz, n),
	}
	for i := 0; i < n; i++ {
		p.CR[i] = 0.23
		p.MicroFreq[i] = 8e6
	}
	return p
}

// BenchmarkAblationTheta regenerates the Eq. 8 balance-weight ablation and
// reports the front imbalance at the extreme settings.
func BenchmarkAblationTheta(b *testing.B) {
	var res *experiments.ThetaAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ThetaAblation(experiments.ThetaAblationConfig{
			PopulationSize: 32, Generations: 12,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Rows[0].MeanImbalance*100, "imbalance_theta0%")
	b.ReportMetric(res.Rows[len(res.Rows)-1].MeanImbalance*100, "imbalance_thetamax%")
}

// BenchmarkAblationArrival regenerates the uniform-vs-block arrival
// ablation behind Eq. 9's validity.
func BenchmarkAblationArrival(b *testing.B) {
	var res *experiments.ArrivalAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ArrivalAblation(experiments.ArrivalAblationConfig{
			Runs: 10, SimDuration: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.UniformViolations), "uniform_violations")
	b.ReportMetric(float64(res.BlockViolations), "block_violations")
}
