package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// watchedMetrics are the metrics the diff gate tracks, with their
// direction: true means higher is worse (ns/op, allocs/op, B/op), false
// means lower is worse (evals/s). Allocation metrics are gated because the
// hot paths are engineered to be allocation-free — a benchmark drifting
// from 0 allocs/op is a regression even when its ns/op hides it. Other
// metrics (error percentages, front sizes) are workload properties, not
// performance, and stay out of the gate.
var watchedMetrics = []struct {
	unit        string
	higherWorse bool
}{
	{"ns/op", true},
	{"evals/s", false},
	{"allocs/op", true},
	{"B/op", true},
}

// DiffRow is one (benchmark, metric) comparison.
type DiffRow struct {
	Benchmark string  // package-qualified name
	Metric    string  // metric unit
	Base      float64 // baseline value
	Current   float64 // current value
	DeltaPct  float64 // signed percent change, worse-direction positive
	Regressed bool    // beyond the threshold in the worse direction
}

// Diff compares the current document against the baseline on the watched
// metrics, flagging changes beyond thresholdPct in each metric's worse
// direction. Rows come back sorted worst-first; missing counts benchmarks
// present on only one side (renames, additions, removals).
func Diff(baseline, current *Document, thresholdPct float64) (rows []DiffRow, missing []string) {
	key := func(b Benchmark) string {
		if b.Package == "" {
			return b.Name
		}
		return b.Package + "." + b.Name
	}
	base := map[string]Benchmark{}
	for _, b := range baseline.Benchmarks {
		base[key(b)] = b
	}
	seen := map[string]bool{}
	for _, cur := range current.Benchmarks {
		k := key(cur)
		seen[k] = true
		b, ok := base[k]
		if !ok {
			missing = append(missing, k+" (new)")
			continue
		}
		for _, m := range watchedMetrics {
			bv, bok := b.Metrics[m.unit]
			cv, cok := cur.Metrics[m.unit]
			if !bok || !cok {
				continue
			}
			var delta float64
			switch {
			case bv != 0:
				delta = (cv - bv) / bv * 100
				if !m.higherWorse {
					delta = -delta // worse-direction positive for every metric
				}
			case cv == 0 || !m.higherWorse:
				// A zero baseline on a higher-is-better metric has no
				// meaningful regression direction; 0 → 0 is simply holding
				// the pin.
				delta = 0
			default:
				// Zero-alloc baselines are a hard pin: any drift off zero
				// is an unbounded relative regression, flagged regardless
				// of threshold.
				delta = math.Inf(1)
			}
			rows = append(rows, DiffRow{
				Benchmark: k,
				Metric:    m.unit,
				Base:      bv,
				Current:   cv,
				DeltaPct:  delta,
				Regressed: delta > thresholdPct,
			})
		}
	}
	for _, b := range baseline.Benchmarks {
		if !seen[key(b)] {
			missing = append(missing, key(b)+" (removed)")
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].DeltaPct > rows[j].DeltaPct })
	sort.Strings(missing)
	return rows, missing
}

// RenderDiff writes the comparison as a GitHub-flavored markdown table —
// the format the CI job appends to its step summary.
func RenderDiff(w io.Writer, rows []DiffRow, missing []string, thresholdPct float64) {
	regressions := 0
	for _, r := range rows {
		if r.Regressed {
			regressions++
		}
	}
	fmt.Fprintf(w, "## Benchmark diff vs committed baseline (gate: ±%.0f%% on ns/op, evals/s, allocs/op, B/op)\n\n", thresholdPct)
	if regressions == 0 {
		fmt.Fprintf(w, "No regressions beyond %.0f%% across %d comparisons.\n\n", thresholdPct, len(rows))
	} else {
		fmt.Fprintf(w, "**%d regression(s)** beyond %.0f%% across %d comparisons.\n\n", regressions, thresholdPct, len(rows))
	}
	fmt.Fprintln(w, "| benchmark | metric | baseline | current | change | status |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|---|")
	for _, r := range rows {
		status := "ok"
		switch {
		case r.Regressed:
			status = "⚠️ REGRESSED"
		case r.DeltaPct < -thresholdPct:
			status = "🚀 improved"
		}
		// DeltaPct is worse-direction positive; render the raw signed
		// change of the metric itself so the table reads naturally.
		change := "0.0%"
		switch {
		case r.Base != 0:
			change = fmt.Sprintf("%+.1f%%", (r.Current-r.Base)/r.Base*100)
		case r.Current != 0:
			change = "off zero"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n",
			r.Benchmark, r.Metric, humanize(r.Base), humanize(r.Current), change, status)
	}
	if len(missing) > 0 {
		fmt.Fprintf(w, "\nUnmatched benchmarks (no comparison): %d\n\n", len(missing))
		for _, m := range missing {
			fmt.Fprintf(w, "- %s\n", m)
		}
	}
}

// humanize renders a metric value compactly.
func humanize(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// diffMain implements the `benchjson diff` subcommand.
func diffMain(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	var (
		basePath  = fs.String("baseline", "BENCH_MAIN.json", "committed baseline document")
		curPath   = fs.String("current", "BENCH_PR.json", "current run's document")
		threshold = fs.Float64("threshold", 20, "regression threshold in percent")
		failFlag  = fs.Bool("fail", false, "exit 1 when a regression is flagged")
	)
	fs.Parse(args)

	baseline, err := readDocument(*basePath)
	if err != nil {
		fail(err)
	}
	current, err := readDocument(*curPath)
	if err != nil {
		fail(err)
	}
	rows, missing := Diff(baseline, current, *threshold)
	RenderDiff(os.Stdout, rows, missing, *threshold)
	if *failFlag {
		for _, r := range rows {
			if r.Regressed {
				os.Exit(1)
			}
		}
	}
}

// readDocument loads a benchjson artifact.
func readDocument(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var doc Document
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}
