// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so CI can archive one machine-readable benchmark artifact
// per run and the performance trajectory accumulates across commits, and
// compares two such documents for performance regressions.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson -out BENCH_PR.json
//	benchjson -in bench.txt -out BENCH_PR.json
//	benchjson diff -baseline BENCH_MAIN.json -current BENCH_PR.json [-threshold 20] [-fail]
//
// Every benchmark line becomes one entry carrying the full metric set —
// ns/op plus any custom metrics reported via b.ReportMetric (evals/s,
// error percentages, front sizes...), which is how this repository's
// benchmarks expose the paper's headline quantities.
//
// The diff mode matches benchmarks by package-qualified name and flags
// changes beyond the threshold on the performance metrics — ns/op (higher
// is worse) and evals/s (lower is worse) — rendering a markdown table
// suitable for a CI job summary. With -fail it exits nonzero on any
// flagged regression; the CI job instead publishes the table and leaves
// the verdict to reviewers, since single-iteration CI runs are noisy.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Package is the Go package the benchmark ran in (from the preceding
	// "pkg:" header, empty if the input carries none).
	Package string `json:"package,omitempty"`
	// Name is the benchmark name without the "Benchmark" prefix or the
	// "-N" GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (0 if absent).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every reported metric (ns/op, B/op,
	// custom units...).
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the artifact layout.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		diffMain(os.Args[2:])
		return
	}
	var (
		in  = flag.String("in", "-", "input file (- for stdin)")
		out = flag.String("out", "-", "output file (- for stdout)")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	doc, err := Parse(r)
	if err != nil {
		fail(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(doc.Benchmarks))
}

// Parse reads `go test -bench` output. Non-benchmark lines (PASS, ok,
// coverage...) are skipped; goos/goarch/cpu/pkg headers annotate the
// document and subsequent entries.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				b.Package = pkg
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc, sc.Err()
}

// parseLine parses one "BenchmarkName-8  N  value unit  value unit ..."
// line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// A result line needs at least name, iterations and one value/unit
	// pair; "BenchmarkFoo" alone is the verbose-run announcement line.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Metrics: map[string]float64{}}
	b.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = procs
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
