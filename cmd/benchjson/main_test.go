package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: wsndse
cpu: AMD EPYC 7B13
BenchmarkModelEvaluation-8   	  120000	      9500 ns/op	    105263 evals/s
BenchmarkNetworkSimulation-8 	       2	 510000000 ns/op
BenchmarkFig3EnergyModel     	       1	1200000000 ns/op	         1.74 maxerr%	         0.13 dwterr%
PASS
ok  	wsndse	3.214s
pkg: wsndse/internal/dse
BenchmarkCrowding-8          	  500000	      2100 ns/op	      64 B/op	       1 allocs/op
PASS
ok  	wsndse/internal/dse	1.002s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Errorf("headers not captured: %+v", doc)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(doc.Benchmarks))
	}

	me := doc.Benchmarks[0]
	if me.Name != "ModelEvaluation" || me.Procs != 8 || me.Package != "wsndse" {
		t.Errorf("first benchmark misparsed: %+v", me)
	}
	if me.Iterations != 120000 {
		t.Errorf("iterations = %d", me.Iterations)
	}
	if me.Metrics["ns/op"] != 9500 || me.Metrics["evals/s"] != 105263 {
		t.Errorf("metrics misparsed: %v", me.Metrics)
	}

	// No -N suffix: Procs stays 0, name intact.
	fig3 := doc.Benchmarks[2]
	if fig3.Name != "Fig3EnergyModel" || fig3.Procs != 0 {
		t.Errorf("suffixless benchmark misparsed: %+v", fig3)
	}
	if fig3.Metrics["maxerr%"] != 1.74 || fig3.Metrics["dwterr%"] != 0.13 {
		t.Errorf("custom metrics misparsed: %v", fig3.Metrics)
	}

	// Package headers advance with pkg: lines.
	crowd := doc.Benchmarks[3]
	if crowd.Package != "wsndse/internal/dse" {
		t.Errorf("package not tracked: %+v", crowd)
	}
	if crowd.Metrics["B/op"] != 64 || crowd.Metrics["allocs/op"] != 1 {
		t.Errorf("alloc metrics misparsed: %v", crowd.Metrics)
	}
}

func TestDiff(t *testing.T) {
	bench := func(pkg, name string, nsop, evals float64) Benchmark {
		m := map[string]float64{"ns/op": nsop}
		if evals > 0 {
			m["evals/s"] = evals
		}
		return Benchmark{Package: pkg, Name: name, Iterations: 1, Metrics: m}
	}
	baseline := &Document{Benchmarks: []Benchmark{
		bench("wsndse", "ModelEvaluation", 5000, 200000),
		bench("wsndse", "Assign", 270, 0),
		bench("wsndse", "Removed", 100, 0),
	}}
	current := &Document{Benchmarks: []Benchmark{
		bench("wsndse", "ModelEvaluation", 750, 1330000), // big improvement
		bench("wsndse", "Assign", 400, 0),                // +48% ns/op: regression
		bench("wsndse", "Added", 50, 0),
	}}
	rows, missing := Diff(baseline, current, 20)

	byKey := map[string]DiffRow{}
	for _, r := range rows {
		byKey[r.Benchmark+"|"+r.Metric] = r
	}
	if len(rows) != 3 {
		t.Fatalf("got %d comparison rows, want 3: %+v", len(rows), rows)
	}
	if r := byKey["wsndse.Assign|ns/op"]; !r.Regressed || r.DeltaPct < 40 {
		t.Errorf("Assign ns/op should be flagged: %+v", r)
	}
	if r := byKey["wsndse.ModelEvaluation|ns/op"]; r.Regressed || r.DeltaPct > 0 {
		t.Errorf("ModelEvaluation ns/op should be an improvement: %+v", r)
	}
	// evals/s decrease must flag in the worse direction too.
	lower := &Document{Benchmarks: []Benchmark{bench("wsndse", "ModelEvaluation", 5000, 100000)}}
	rows, _ = Diff(baseline, lower, 20)
	flagged := false
	for _, r := range rows {
		if r.Metric == "evals/s" && r.Regressed {
			flagged = true
		}
	}
	if !flagged {
		t.Errorf("halved evals/s not flagged: %+v", rows)
	}
	// Unmatched benchmarks are reported, not compared.
	want := map[string]bool{"wsndse.Added (new)": true, "wsndse.Removed (removed)": true}
	if len(missing) != 2 || !want[missing[0]] || !want[missing[1]] {
		t.Errorf("missing = %v", missing)
	}
	// Worst regression sorts first.
	rows, _ = Diff(baseline, current, 20)
	if rows[0].Benchmark != "wsndse.Assign" {
		t.Errorf("rows not sorted worst-first: %+v", rows)
	}
}

// TestDiffAllocMetrics covers the allocation columns of the gate:
// allocs/op and B/op regressions flag like ns/op ones, and a zero-alloc
// baseline is a hard pin — any drift off zero flags regardless of the
// threshold, while 0 → 0 reports a clean row.
func TestDiffAllocMetrics(t *testing.T) {
	bench := func(name string, nsop, allocs, bytes float64) Benchmark {
		return Benchmark{Package: "wsndse", Name: name, Iterations: 1, Metrics: map[string]float64{
			"ns/op": nsop, "allocs/op": allocs, "B/op": bytes,
		}}
	}
	baseline := &Document{Benchmarks: []Benchmark{
		bench("Compiled", 900, 0, 0),
		bench("Reference", 6000, 10, 480),
	}}
	current := &Document{Benchmarks: []Benchmark{
		bench("Compiled", 910, 5, 320),    // off the zero pin: must flag
		bench("Reference", 6000, 13, 500), // +30% allocs, +4% B/op
	}}
	rows, _ := Diff(baseline, current, 20)
	byKey := map[string]DiffRow{}
	for _, r := range rows {
		byKey[r.Benchmark+"|"+r.Metric] = r
	}
	if r := byKey["wsndse.Compiled|allocs/op"]; !r.Regressed {
		t.Errorf("allocs/op off a zero baseline not flagged: %+v", r)
	}
	if r := byKey["wsndse.Compiled|B/op"]; !r.Regressed {
		t.Errorf("B/op off a zero baseline not flagged: %+v", r)
	}
	if r := byKey["wsndse.Reference|allocs/op"]; !r.Regressed || r.DeltaPct < 29 {
		t.Errorf("+30%% allocs/op not flagged: %+v", r)
	}
	if r := byKey["wsndse.Reference|B/op"]; r.Regressed {
		t.Errorf("+4%% B/op wrongly flagged: %+v", r)
	}

	// Holding the zero pin renders as a clean comparison, not a skip.
	held, _ := Diff(baseline, &Document{Benchmarks: []Benchmark{
		bench("Compiled", 900, 0, 0),
		bench("Reference", 6000, 10, 480),
	}}, 20)
	found := false
	for _, r := range held {
		if r.Benchmark == "wsndse.Compiled" && r.Metric == "allocs/op" {
			found = true
			if r.Regressed || r.DeltaPct != 0 {
				t.Errorf("0 → 0 allocs/op should be a clean row: %+v", r)
			}
		}
	}
	if !found {
		t.Error("0 → 0 allocs/op row missing from the diff")
	}

	// The rendered table spells out the off-zero case.
	var sb strings.Builder
	RenderDiff(&sb, rows, nil, 20)
	if out := sb.String(); !strings.Contains(out, "off zero") {
		t.Errorf("rendered diff missing the off-zero marker:\n%s", out)
	}
}

func TestRenderDiff(t *testing.T) {
	rows := []DiffRow{
		{Benchmark: "wsndse.Assign", Metric: "ns/op", Base: 270, Current: 400, DeltaPct: 48.1, Regressed: true},
		{Benchmark: "wsndse.ModelEvaluation", Metric: "evals/s", Base: 200000, Current: 1330000, DeltaPct: -565},
	}
	var sb strings.Builder
	RenderDiff(&sb, rows, []string{"wsndse.Added (new)"}, 20)
	out := sb.String()
	for _, want := range []string{"1 regression(s)", "REGRESSED", "improved", "wsndse.Assign", "wsndse.Added (new)", "| benchmark |"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered diff missing %q:\n%s", want, out)
		}
	}
}

func TestParseSkipsNoise(t *testing.T) {
	noise := `PASS
BenchmarkAnnounced
ok  	wsndse	0.1s
?   	wsndse/cmd/wsn-sim	[no test files]
`
	doc, err := Parse(strings.NewReader(noise))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("noise parsed as benchmarks: %+v", doc.Benchmarks)
	}
}
