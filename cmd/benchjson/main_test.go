package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: wsndse
cpu: AMD EPYC 7B13
BenchmarkModelEvaluation-8   	  120000	      9500 ns/op	    105263 evals/s
BenchmarkNetworkSimulation-8 	       2	 510000000 ns/op
BenchmarkFig3EnergyModel     	       1	1200000000 ns/op	         1.74 maxerr%	         0.13 dwterr%
PASS
ok  	wsndse	3.214s
pkg: wsndse/internal/dse
BenchmarkCrowding-8          	  500000	      2100 ns/op	      64 B/op	       1 allocs/op
PASS
ok  	wsndse/internal/dse	1.002s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Errorf("headers not captured: %+v", doc)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(doc.Benchmarks))
	}

	me := doc.Benchmarks[0]
	if me.Name != "ModelEvaluation" || me.Procs != 8 || me.Package != "wsndse" {
		t.Errorf("first benchmark misparsed: %+v", me)
	}
	if me.Iterations != 120000 {
		t.Errorf("iterations = %d", me.Iterations)
	}
	if me.Metrics["ns/op"] != 9500 || me.Metrics["evals/s"] != 105263 {
		t.Errorf("metrics misparsed: %v", me.Metrics)
	}

	// No -N suffix: Procs stays 0, name intact.
	fig3 := doc.Benchmarks[2]
	if fig3.Name != "Fig3EnergyModel" || fig3.Procs != 0 {
		t.Errorf("suffixless benchmark misparsed: %+v", fig3)
	}
	if fig3.Metrics["maxerr%"] != 1.74 || fig3.Metrics["dwterr%"] != 0.13 {
		t.Errorf("custom metrics misparsed: %v", fig3.Metrics)
	}

	// Package headers advance with pkg: lines.
	crowd := doc.Benchmarks[3]
	if crowd.Package != "wsndse/internal/dse" {
		t.Errorf("package not tracked: %+v", crowd)
	}
	if crowd.Metrics["B/op"] != 64 || crowd.Metrics["allocs/op"] != 1 {
		t.Errorf("alloc metrics misparsed: %v", crowd.Metrics)
	}
}

func TestParseSkipsNoise(t *testing.T) {
	noise := `PASS
BenchmarkAnnounced
ok  	wsndse	0.1s
?   	wsndse/cmd/wsn-sim	[no test files]
`
	doc, err := Parse(strings.NewReader(noise))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("noise parsed as benchmarks: %+v", doc.Benchmarks)
	}
}
