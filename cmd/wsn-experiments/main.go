// Command wsn-experiments regenerates the paper's evaluation artifacts:
// Figure 3 (energy estimation accuracy), Figure 4 (PRD estimation
// accuracy), the Eq. 9 delay validation, the evaluation-speed comparison,
// Figure 5 (tradeoff detection vs the energy/delay baseline), and the
// calibration that produces the shipped quality polynomials.
//
// Example:
//
//	wsn-experiments -run all
//	wsn-experiments -run fig3,fig5
//	wsn-experiments -run delay -delay-runs 130
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wsndse/internal/casestudy"
	"wsndse/internal/experiments"
	"wsndse/internal/units"
)

func main() {
	var (
		run       = flag.String("run", "all", "experiments: all | comma list of fig3,fig4,delay,speed,fig5,calibrate")
		delayRuns = flag.Int("delay-runs", 130, "configurations for the delay validation (paper: 130)")
		simDur    = flag.Float64("sim-duration", 30, "simulated seconds per delay-validation run")
		pop       = flag.Int("pop", 96, "NSGA-II population for fig5")
		gen       = flag.Int("gen", 60, "NSGA-II generations for fig5")
		check     = flag.Bool("check", true, "verify each experiment's headline claims")
		csvDir    = flag.String("csvdir", "", "also write <experiment>.csv files into this directory")
	)
	flag.Parse()

	selected := map[string]bool{}
	if *run == "all" {
		for _, name := range []string{"fig3", "fig4", "delay", "speed", "fig5", "ablation"} {
			selected[name] = true
		}
	} else {
		for _, name := range strings.Split(*run, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}

	type checker interface {
		Render(w io.Writer)
		Check() error
	}
	writeCSV := func(name string, r interface{ WriteCSV(io.Writer) error }) {
		if *csvDir == "" {
			return
		}
		path := *csvDir + "/" + name + ".csv"
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wsn-experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := r.WriteCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "wsn-experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s.csv written]\n", name)
	}
	finish := func(name string, r checker, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "wsn-experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		r.Render(os.Stdout)
		if *check {
			if err := r.Check(); err != nil {
				fmt.Fprintf(os.Stderr, "wsn-experiments: %s check FAILED: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("[%s checks passed]\n", name)
		}
		fmt.Println()
	}

	if selected["calibrate"] {
		cal, err := casestudy.Calibrate(casestudy.CalibrationConfig{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wsn-experiments: calibrate:", err)
			os.Exit(1)
		}
		fmt.Println("calibration (paste into casestudy.DefaultCalibration when regenerating):")
		fmt.Printf("CRs:         %v\n", cal.CRs)
		fmt.Printf("DWTMeasured: %.4f\n", cal.DWTMeasured)
		fmt.Printf("CSMeasured:  %.4f\n", cal.CSMeasured)
		fmt.Printf("DWTPoly:     %v\n", []float64(cal.DWTPoly))
		fmt.Printf("CSPoly:      %v\n", []float64(cal.CSPoly))
		de, ce := cal.EstimationErrors()
		fmt.Printf("mean abs err: DWT %.3f, CS %.3f PRD points\n\n", de, ce)
	}
	if selected["fig3"] {
		res, err := experiments.Fig3(experiments.Fig3Config{})
		if err == nil {
			writeCSV("fig3", res)
		}
		finish("fig3", res, err)
	}
	if selected["fig4"] {
		res, err := experiments.Fig4(experiments.Fig4Config{})
		if err == nil {
			writeCSV("fig4", res)
		}
		finish("fig4", res, err)
	}
	if selected["delay"] {
		res, err := experiments.DelayVal(experiments.DelayValConfig{
			Runs:        *delayRuns,
			SimDuration: units.Seconds(*simDur),
		})
		if err == nil {
			writeCSV("delay", res)
		}
		finish("delay", res, err)
	}
	if selected["speed"] {
		res, err := experiments.Speed(experiments.SpeedConfig{})
		finish("speed", res, err)
	}
	if selected["fig5"] {
		res, err := experiments.Fig5(experiments.Fig5Config{
			PopulationSize: *pop,
			Generations:    *gen,
			RunMOSA:        true,
		})
		if err == nil {
			writeCSV("fig5", res)
		}
		finish("fig5", res, err)
	}
	if selected["ablation"] {
		theta, err := experiments.ThetaAblation(experiments.ThetaAblationConfig{})
		finish("ablation-theta", theta, err)
		arrival, err := experiments.ArrivalAblation(experiments.ArrivalAblationConfig{})
		finish("ablation-arrival", arrival, err)
	}
}
