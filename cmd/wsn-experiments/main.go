// Command wsn-experiments regenerates the paper's evaluation artifacts:
// Figure 3 (energy estimation accuracy), Figure 4 (PRD estimation
// accuracy), the Eq. 9 delay validation, the evaluation-speed comparison,
// Figure 5 (tradeoff detection vs the energy/delay baseline), the two
// ablations, the calibration that produces the shipped quality
// polynomials, and the scenario sweep (one exploration + simulator
// cross-check per registered scenario, plus the GTS-starvation node-count
// sweep).
//
// The selected experiments fan out across a worker pool (-workers) and the
// searches inside fig5/ablation batch their evaluations across the same
// number of workers; output order and content are identical at any worker
// count.
//
// Example:
//
//	wsn-experiments -run all
//	wsn-experiments -run fig3,fig5 -workers 8
//	wsn-experiments -run delay -delay-runs 130
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"wsndse/internal/casestudy"
	"wsndse/internal/cliutil"
	"wsndse/internal/experiments"
	"wsndse/internal/units"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiments: all | comma list of fig3,fig4,delay,speed,fig5,ablation,scenarios,calibrate")
		delayRuns  = flag.Int("delay-runs", 130, "configurations for the delay validation (paper: 130)")
		simDur     = flag.Float64("sim-duration", 30, "simulated seconds per delay-validation run")
		pop        = flag.Int("pop", 96, "NSGA-II population for fig5")
		gen        = flag.Int("gen", 60, "NSGA-II generations for fig5")
		check      = flag.Bool("check", true, "verify each experiment's headline claims")
		csvDir     = flag.String("csvdir", "", "also write <experiment>.csv files into this directory")
		workers    = flag.Int("workers", 0, "concurrent experiments and per-search evaluation workers (<= 0: GOMAXPROCS)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stop, err := cliutil.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatalf("%v", err)
	}
	stopProfiles = stop
	defer stop()

	// SIGINT cancels cooperatively: running experiments stop at their next
	// search boundary, unstarted ones are skipped, and everything finished
	// is still rendered below — partial results flush instead of vanishing.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	selected := map[string]bool{}
	if *run == "all" {
		for _, name := range []string{"fig3", "fig4", "delay", "speed", "fig5", "ablation", "scenarios"} {
			selected[name] = true
		}
	} else {
		for _, name := range strings.Split(*run, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}

	if selected["calibrate"] {
		cal, err := casestudy.Calibrate(casestudy.CalibrationConfig{})
		if err != nil {
			fatalf("calibrate: %v", err)
		}
		fmt.Println("calibration (paste into casestudy.DefaultCalibration when regenerating):")
		fmt.Printf("CRs:         %v\n", cal.CRs)
		fmt.Printf("DWTMeasured: %.4f\n", cal.DWTMeasured)
		fmt.Printf("CSMeasured:  %.4f\n", cal.CSMeasured)
		fmt.Printf("DWTPoly:     %v\n", []float64(cal.DWTPoly))
		fmt.Printf("CSPoly:      %v\n", []float64(cal.CSPoly))
		de, ce := cal.EstimationErrors()
		fmt.Printf("mean abs err: DWT %.3f, CS %.3f PRD points\n\n", de, ce)
	}

	// The job list fixes both execution eligibility and render order; the
	// runner may finish jobs in any order but reports them in this one.
	// Exclusive jobs measure their own wall clock, so they run in a second,
	// sequential pass after the concurrent pool has drained rather than
	// co-scheduled with it (which would depress their throughput numbers).
	var jobs []experiments.Job
	var exclusive []bool
	add := func(key, name string, run func(ctx context.Context) (experiments.Report, error)) {
		if selected[key] {
			jobs = append(jobs, experiments.Job{Name: name, Run: run})
			exclusive = append(exclusive, key == "speed")
		}
	}
	add("fig3", "fig3", func(context.Context) (experiments.Report, error) {
		return experiments.Fig3(experiments.Fig3Config{})
	})
	add("fig4", "fig4", func(context.Context) (experiments.Report, error) {
		return experiments.Fig4(experiments.Fig4Config{})
	})
	add("delay", "delay", func(context.Context) (experiments.Report, error) {
		return experiments.DelayVal(experiments.DelayValConfig{
			Runs:        *delayRuns,
			SimDuration: units.Seconds(*simDur),
		})
	})
	add("speed", "speed", func(context.Context) (experiments.Report, error) {
		return experiments.Speed(experiments.SpeedConfig{})
	})
	add("fig5", "fig5", func(context.Context) (experiments.Report, error) {
		return experiments.Fig5(experiments.Fig5Config{
			PopulationSize: *pop,
			Generations:    *gen,
			RunMOSA:        true,
			Workers:        *workers,
		})
	})
	add("ablation", "ablation-theta", func(context.Context) (experiments.Report, error) {
		return experiments.ThetaAblation(experiments.ThetaAblationConfig{Workers: *workers})
	})
	add("ablation", "ablation-arrival", func(context.Context) (experiments.Report, error) {
		return experiments.ArrivalAblation(experiments.ArrivalAblationConfig{})
	})
	add("scenarios", "scenarios", func(ctx context.Context) (experiments.Report, error) {
		return experiments.ScenarioSweepContext(ctx, experiments.ScenarioSweepConfig{Workers: *workers})
	})

	outs := make([]experiments.Outcome, len(jobs))
	var pool, solo []experiments.Job
	var poolIdx, soloIdx []int
	for i, j := range jobs {
		if exclusive[i] {
			solo, soloIdx = append(solo, j), append(soloIdx, i)
		} else {
			pool, poolIdx = append(pool, j), append(poolIdx, i)
		}
	}
	for k, out := range experiments.RunJobsContext(ctx, pool, *workers) {
		outs[poolIdx[k]] = out
	}
	for k, out := range experiments.RunJobsContext(ctx, solo, 1) {
		outs[soloIdx[k]] = out
	}
	interrupted := false
	for _, out := range outs {
		if errors.Is(out.Err, context.Canceled) {
			fmt.Printf("[%s cancelled by interrupt]\n\n", out.Name)
			interrupted = true
			continue
		}
		if out.Err != nil {
			fatalf("%s: %v", out.Name, out.Err)
		}
		if *csvDir != "" {
			if r, ok := out.Report.(interface{ WriteCSV(io.Writer) error }); ok {
				writeCSV(*csvDir, out.Name, r)
			}
		}
		out.Report.Render(os.Stdout)
		if *check {
			if err := out.Report.Check(); err != nil {
				fatalf("%s check FAILED: %v", out.Name, err)
			}
			fmt.Printf("[%s checks passed]\n", out.Name)
		}
		fmt.Println()
	}
	if interrupted {
		fmt.Println("interrupted: completed experiments rendered above, the rest were cancelled")
		stopProfiles()
		os.Exit(130)
	}
}

// stopProfiles flushes any active -cpuprofile/-memprofile; fatalf runs it
// so error exits do not truncate a profile mid-write.
var stopProfiles = func() {}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wsn-experiments: "+format+"\n", args...)
	stopProfiles()
	os.Exit(1)
}

func writeCSV(dir, name string, r interface{ WriteCSV(io.Writer) error }) {
	path := dir + "/" + name + ".csv"
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := r.WriteCSV(f); err != nil {
		fatalf("%s: %v", name, err)
	}
	fmt.Printf("[%s.csv written]\n", name)
}
