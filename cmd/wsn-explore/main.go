// Command wsn-explore runs a multi-objective design-space exploration of a
// registered scenario with the analytical model — the paper's end-to-end
// use case generalized to heterogeneous workloads. It supports the full
// three-metric model or the energy/delay-only baseline view, with NSGA-II,
// simulated annealing or random search.
//
// Example:
//
//	wsn-explore -list-scenarios
//	wsn-explore -scenario dense-gts -algo nsga2 -pop 96 -gen 60 -workers 8
//	wsn-explore -scenario athletes -objectives baseline -algo mosa -iters 6000
//	wsn-explore -csv front.csv
//
// Generated scenario families (see -list-families) register hundreds of
// scenarios at once; a member can also be addressed directly and its
// family is enabled on demand:
//
//	wsn-explore -family all -list-scenarios
//	wsn-explore -scenario chipset-sweep/iris-n5-homo-long-uniform
//
// With -warm-start the search is seeded from prior fronts archived by
// wsn-serve — either a result directory or a live server URL:
//
//	wsn-explore -scenario ecg-ward -warm-start /var/lib/wsndse/results
//	wsn-explore -scenario ecg-ward -warm-start http://localhost:8080
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"wsndse/internal/baseline"
	"wsndse/internal/casestudy"
	"wsndse/internal/cliutil"
	"wsndse/internal/dse"
	"wsndse/internal/scenario"
	"wsndse/internal/service"
)

func main() {
	var (
		scenarioName = flag.String("scenario", "ecg-ward", "registered scenario to explore (see -list-scenarios)")
		familySpec   = flag.String("family", "", "enable scenario families first: a name, comma list, or 'all' (see -list-families)")
		list         = flag.Bool("list-scenarios", false, "list registered scenarios and exit")
		listFamilies = flag.Bool("list-families", false, "list scenario families and their axes, then exit")
		algo         = flag.String("algo", "nsga2", "search algorithm: nsga2 | mosa | random")
		objectives   = flag.String("objectives", "full", "evaluator: full (energy, quality, delay) | baseline (energy, delay)")
		pop          = flag.Int("pop", 96, "NSGA-II population size")
		gen          = flag.Int("gen", 60, "NSGA-II generations")
		iters        = flag.Int("iters", 6000, "MOSA iterations / random-search budget")
		seed         = flag.Int64("seed", 17, "search seed")
		warmStart    = flag.String("warm-start", "", "seed the search from prior fronts: a wsn-serve result directory or server URL")
		workers      = flag.Int("workers", 0, "evaluation workers (<= 0: GOMAXPROCS); fronts are identical at any count")
		progress     = flag.Bool("progress", false, "print per-generation progress to stderr")
		csvPath      = flag.String("csv", "", "write the front to this CSV file")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stop, err := cliutil.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	stopProfiles = stop
	defer stop()

	if *listFamilies {
		cliutil.PrintFamilies(os.Stdout)
		return
	}
	if _, err := cliutil.EnableFamilies(*familySpec); err != nil {
		fail(err)
	}
	if *list {
		listScenarios()
		return
	}

	sc, err := cliutil.LookupScenario(*scenarioName)
	if err != nil {
		fail(err)
	}
	problem, err := scenario.NewProblem(sc, casestudy.DefaultCalibration())
	if err != nil {
		fail(err)
	}
	// The compiled pipeline: all object construction amortized out of the
	// evaluation hot loop, bit-identical to the reference evaluator.
	compiled, err := problem.Compile()
	if err != nil {
		fail(err)
	}
	var eval dse.Evaluator
	switch *objectives {
	case "full":
		eval = compiled.Evaluator()
	case "baseline":
		// The application-blind (energy, delay) view. For the case-study
		// scenario this is numerically identical to the Fig. 5 baseline
		// (baseline.New): both evaluate the same network and drop the
		// quality objective.
		eval = baseline.Project(compiled.Evaluator(), 0, 2)
	default:
		fail(fmt.Errorf("unknown objectives %q", *objectives))
	}

	fmt.Printf("scenario %s: %d nodes, %.3g configurations, %d objectives, algorithm %s\n",
		sc.Name, len(sc.Nodes), problem.Space().Size(), eval.NumObjectives(), *algo)

	// SIGINT cancels the search at its next generation/segment boundary;
	// the partial front accumulated so far is printed (and written to CSV)
	// instead of being lost.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	start := time.Now()
	opts := dse.Options{Context: ctx}
	if *progress {
		opts.Progress = func(p dse.Progress) {
			fmt.Fprintf(os.Stderr, "%s %d/%d: front=%d evaluated=%d (%.3g evals/s)\n",
				p.Algorithm, p.Step, p.TotalSteps, len(p.Front), p.Evaluated,
				float64(p.Evaluated)/time.Since(start).Seconds())
		}
	}
	if *warmStart != "" {
		if *algo != "nsga2" && *algo != "mosa" {
			fmt.Fprintf(os.Stderr, "wsn-explore: -warm-start only seeds nsga2/mosa, ignored for %s\n", *algo)
		} else {
			src, closeSrc, err := openWarmStartSource(*warmStart)
			if err != nil {
				fail(err)
			}
			objNames := service.ObjectivesFull
			if *objectives == "baseline" {
				objNames = service.ObjectivesBaseline
			}
			seeds, info, err := service.ResolveWarmStart(src, service.WarmStartAuto,
				sc.Fingerprint(), objNames, *algo, sc.Name, problem.Space())
			closeSrc()
			if err != nil {
				fail(err)
			}
			if info == nil {
				fmt.Println("warm start: no prior front for this scenario/objective set, running cold")
			} else {
				kind := "exact prior front"
				if !info.Exact {
					kind = "family-sibling fronts"
				}
				fmt.Printf("warm start: %d seed points from %s (result versions %v)\n",
					info.SeedPoints, kind, info.Sources)
				opts.SeedPoints = seeds
			}
		}
	}
	var res *dse.Result
	switch *algo {
	case "nsga2":
		res, err = dse.NSGA2Opts(problem.Space(), eval, dse.NSGA2Config{
			PopulationSize: *pop, Generations: *gen, Seed: *seed, Workers: *workers,
		}, opts)
	case "mosa":
		res, err = dse.MOSAOpts(problem.Space(), eval, dse.MOSAConfig{
			Iterations: *iters, Seed: *seed, Workers: *workers,
		}, opts)
	case "random":
		res, err = dse.RandomSearchOpts(problem.Space(), eval, *iters, *seed, *workers, opts)
	default:
		err = fmt.Errorf("unknown algorithm %q", *algo)
	}
	interrupted := errors.Is(err, context.Canceled) && res != nil
	if err != nil && !interrupted {
		fail(err)
	}
	wall := time.Since(start)
	if interrupted {
		fmt.Println("interrupted: flushing the partial front explored so far")
	}

	fmt.Printf("evaluated %d distinct configurations (%d infeasible) in %v (%.3g evals/s)\n",
		res.Evaluated, res.Infeasible, wall.Round(time.Millisecond),
		float64(res.Evaluated)/wall.Seconds())
	fmt.Printf("Pareto front: %d points\n\n", len(res.Front))
	if eval.NumObjectives() == 3 {
		fmt.Printf("%-12s %-10s %-10s  configuration\n", "energy_mW", "quality", "delay_ms")
	} else {
		fmt.Printf("%-12s %-10s %-10s  configuration\n", "energy_mW", "delay_ms", "")
	}
	for _, p := range res.Front {
		params, err := problem.Decode(p.Config)
		if err != nil {
			fail(err)
		}
		switch eval.NumObjectives() {
		case 3:
			fmt.Printf("%-12.4f %-10.2f %-10.1f  BO=%d SO=%d L=%d CR=%v f=%v\n",
				p.Objs[0]*1e3, p.Objs[1], p.Objs[2]*1e3,
				params.BeaconOrder, params.SuperframeOrder, params.PayloadBytes, params.CR, params.MicroFreq)
		default:
			fmt.Printf("%-12.4f %-10.1f %-10s  BO=%d SO=%d L=%d CR=%v f=%v\n",
				p.Objs[0]*1e3, p.Objs[1]*1e3, "",
				params.BeaconOrder, params.SuperframeOrder, params.PayloadBytes, params.CR, params.MicroFreq)
		}
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, res.Front, eval.NumObjectives()); err != nil {
			fail(err)
		}
		fmt.Printf("\nfront written to %s\n", *csvPath)
	}
}

// openWarmStartSource resolves the -warm-start flag into a prior-front
// lookup: an http(s) URL means a running wsn-serve instance, anything
// else a result directory previously written with `wsn-serve -results-dir`.
func openWarmStartSource(loc string) (service.ResultLookup, func(), error) {
	if strings.HasPrefix(loc, "http://") || strings.HasPrefix(loc, "https://") {
		return service.NewClient(loc), func() {}, nil
	}
	s, err := service.NewStore(service.StoreConfig{Dir: loc})
	if err != nil {
		return nil, nil, err
	}
	return s, func() { s.Close() }, nil
}

func listScenarios() {
	fmt.Printf("%-44s %-6s %-10s %s\n", "name", "nodes", "space", "description")
	for _, sc := range scenario.List() {
		size := "?"
		if p, err := scenario.NewProblem(sc, casestudy.DefaultCalibration()); err == nil {
			size = fmt.Sprintf("%.3g", p.Space().Size())
		}
		fmt.Printf("%-44s %-6d %-10s %s\n", sc.Name, len(sc.Nodes), size, sc.Description)
		fmt.Printf("%-44s %-6s %-10s stress: %s\n", "", "", "", sc.Stress)
	}
}

func writeCSV(path string, front []dse.Point, objectives int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	header := []string{"energy_W", "delay_s"}
	if objectives == 3 {
		header = []string{"energy_W", "quality", "delay_s"}
	}
	header = append(header, "config")
	if err := w.Write(header); err != nil {
		return err
	}
	for _, p := range front {
		row := make([]string, 0, len(p.Objs)+1)
		for _, o := range p.Objs {
			row = append(row, strconv.FormatFloat(o, 'g', 8, 64))
		}
		row = append(row, fmt.Sprint(p.Config))
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return w.Error()
}

// stopProfiles flushes any active -cpuprofile/-memprofile; fail runs it
// so error exits do not truncate a profile mid-write.
var stopProfiles = func() {}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsn-explore:", err)
	stopProfiles()
	os.Exit(1)
}
