// Command wsn-explore runs a multi-objective design-space exploration of
// the case study with the analytical model — the paper's end-to-end use
// case. It supports the full three-metric model or the energy/delay-only
// baseline, with NSGA-II, simulated annealing or random search.
//
// Example:
//
//	wsn-explore -algo nsga2 -pop 96 -gen 60 -workers 8
//	wsn-explore -objectives baseline -algo mosa -iters 6000
//	wsn-explore -csv front.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"wsndse/internal/baseline"
	"wsndse/internal/casestudy"
	"wsndse/internal/dse"
)

func main() {
	var (
		algo       = flag.String("algo", "nsga2", "search algorithm: nsga2 | mosa | random")
		objectives = flag.String("objectives", "full", "evaluator: full (energy, PRD, delay) | baseline (energy, delay)")
		pop        = flag.Int("pop", 96, "NSGA-II population size")
		gen        = flag.Int("gen", 60, "NSGA-II generations")
		iters      = flag.Int("iters", 6000, "MOSA iterations / random-search budget")
		seed       = flag.Int64("seed", 17, "search seed")
		workers    = flag.Int("workers", 0, "evaluation workers (<= 0: GOMAXPROCS); fronts are identical at any count")
		csvPath    = flag.String("csv", "", "write the front to this CSV file")
	)
	flag.Parse()

	problem := casestudy.NewProblem(casestudy.DefaultCalibration())
	var eval dse.Evaluator
	switch *objectives {
	case "full":
		eval = problem.Evaluator()
	case "baseline":
		eval = baseline.New(problem)
	default:
		fail(fmt.Errorf("unknown objectives %q", *objectives))
	}

	fmt.Printf("design space: %.3g configurations, %d objectives, algorithm %s\n",
		problem.Space().Size(), eval.NumObjectives(), *algo)

	var res *dse.Result
	var err error
	switch *algo {
	case "nsga2":
		res, err = dse.NSGA2(problem.Space(), eval, dse.NSGA2Config{
			PopulationSize: *pop, Generations: *gen, Seed: *seed, Workers: *workers,
		})
	case "mosa":
		res, err = dse.MOSA(problem.Space(), eval, dse.MOSAConfig{
			Iterations: *iters, Seed: *seed, Workers: *workers,
		})
	case "random":
		res, err = dse.RandomSearchParallel(problem.Space(), eval, *iters, *seed, *workers)
	default:
		err = fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		fail(err)
	}

	fmt.Printf("evaluated %d distinct configurations (%d infeasible)\n", res.Evaluated, res.Infeasible)
	fmt.Printf("Pareto front: %d points\n\n", len(res.Front))
	header := []string{"energy_mW", "delay_ms"}
	if eval.NumObjectives() == 3 {
		header = []string{"energy_mW", "prd_pct", "delay_ms"}
	}
	fmt.Printf("%-12s %-10s %-10s  configuration\n", header[0], header[min(1, len(header)-1)],
		header[len(header)-1])
	for _, p := range res.Front {
		params, err := problem.Decode(p.Config)
		if err != nil {
			fail(err)
		}
		switch eval.NumObjectives() {
		case 3:
			fmt.Printf("%-12.4f %-10.2f %-10.1f  BO=%d SO=%d L=%d CR=%v\n",
				p.Objs[0]*1e3, p.Objs[1], p.Objs[2]*1e3,
				params.BeaconOrder, params.SuperframeOrder, params.PayloadBytes, params.CR)
		default:
			fmt.Printf("%-12.4f %-10.1f %-10s  BO=%d SO=%d L=%d CR=%v\n",
				p.Objs[0]*1e3, p.Objs[1]*1e3, "",
				params.BeaconOrder, params.SuperframeOrder, params.PayloadBytes, params.CR)
		}
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, res.Front, eval.NumObjectives()); err != nil {
			fail(err)
		}
		fmt.Printf("\nfront written to %s\n", *csvPath)
	}
}

func writeCSV(path string, front []dse.Point, objectives int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	header := []string{"energy_W", "delay_s"}
	if objectives == 3 {
		header = []string{"energy_W", "prd_pct", "delay_s"}
	}
	header = append(header, "config")
	if err := w.Write(header); err != nil {
		return err
	}
	for _, p := range front {
		row := make([]string, 0, len(p.Objs)+1)
		for _, o := range p.Objs {
			row = append(row, strconv.FormatFloat(o, 'g', 8, 64))
		}
		row = append(row, fmt.Sprint(p.Config))
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return w.Error()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsn-explore:", err)
	os.Exit(1)
}
