// Command wsn-island is the island-model worker process: it reads one
// island.Request as JSON on stdin, compiles the scenario's evaluation
// pipeline, runs the island's round (to the requested StopAfter
// boundary, or to completion), and reports newline-delimited JSON
// island.ProcLine messages on stdout — "beat" at every search boundary,
// then exactly one "done" (with the Response) or "error".
//
// It is not meant to be run by hand: the exploration service's island
// coordinator spawns one per island round through island.ProcRunner and
// supervises it — a killed or crashed worker costs one round, which the
// coordinator replays from the island's last checkpoint.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"wsndse/internal/casestudy"
	"wsndse/internal/cliutil"
	"wsndse/internal/scenario"
	"wsndse/internal/service/island"
)

func main() {
	if err := run(); err != nil {
		// Best-effort structured error; the stderr copy survives even if
		// stdout is already broken.
		writeLine(island.ProcLine{Type: "error", Error: err.Error()})
		fmt.Fprintln(os.Stderr, "wsn-island:", err)
		os.Exit(1)
	}
}

var stdoutMu sync.Mutex

func writeLine(msg island.ProcLine) {
	stdoutMu.Lock()
	defer stdoutMu.Unlock()
	json.NewEncoder(os.Stdout).Encode(msg)
}

func run() error {
	var familySpec string
	if v := os.Getenv("WSN_ISLAND_FAMILIES"); v != "" {
		familySpec = v
	}
	if _, err := cliutil.EnableFamilies(familySpec); err != nil {
		return err
	}

	var req island.Request
	if err := json.NewDecoder(os.Stdin).Decode(&req); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}

	sc, ok := scenario.Lookup(req.Job.Scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q", req.Job.Scenario)
	}
	problem, err := scenario.NewProblem(sc, casestudy.DefaultCalibration())
	if err != nil {
		return err
	}
	compiled, err := problem.Compile()
	if err != nil {
		return err
	}

	// SIGTERM cancels the round cooperatively at the next boundary; the
	// coordinator treats the resulting error as a crash and replays the
	// round elsewhere. SIGKILL needs no handling — dying *is* the
	// protocol.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	runner := &island.GoRunner{Space: problem.Space(), Eval: compiled.Evaluator()}
	resp, err := runner.RunRound(ctx, req, func(step int) {
		writeLine(island.ProcLine{Type: "beat", Step: step})
	})
	if err != nil {
		return err
	}
	writeLine(island.ProcLine{Type: "done", Response: resp})
	return nil
}
