// Command wsn-model evaluates one case-study configuration with the
// analytical model: per-node energy breakdown (Eqs. 3–7), the transmission
// interval assignment (Eqs. 1–2), delay bounds (Eq. 9) and the combined
// network metrics (Eq. 8).
//
// Example:
//
//	wsn-model -bo 3 -so 2 -payload 48 -cr 0.23 -fuc 8M
//	wsn-model -cr 0.17,0.23,0.29,0.17,0.23,0.38 -fuc 8M,8M,4M,1M,2M,8M
package main

import (
	"flag"
	"fmt"
	"os"

	"wsndse/internal/casestudy"
	"wsndse/internal/cliutil"
	"wsndse/internal/core"
)

func main() {
	var (
		bo      = flag.Int("bo", 3, "beacon order (BCO)")
		so      = flag.Int("so", 2, "superframe order (SFO)")
		payload = flag.Int("payload", 48, "MAC payload per frame, bytes")
		nodes   = flag.Int("nodes", casestudy.DefaultNodes, "number of nodes (first half DWT, rest CS)")
		cr      = flag.String("cr", "0.23", "compression ratio: one value or per-node comma list")
		fuc     = flag.String("fuc", "8M", "µC frequency: one value or per-node comma list (k/M suffixes)")
		theta   = flag.Float64("theta", 0.5, "balance weight ϑ of the network metrics (Eq. 8)")
		battery = flag.Float64("battery", 450, "battery capacity in mAh for lifetime estimates (0 disables)")
	)
	flag.Parse()

	params, err := cliutil.BuildParams(*bo, *so, *payload, *nodes, *cr, *fuc)
	if err != nil {
		fail(err)
	}
	net, err := params.Network(casestudy.DefaultCalibration(), *theta)
	if err != nil {
		fail(err)
	}
	ev, err := net.Evaluate()
	if err != nil {
		if core.IsInfeasible(err) {
			fmt.Printf("configuration infeasible: %v\n", err)
			os.Exit(2)
		}
		fail(err)
	}

	fmt.Printf("χ_mac: BO=%d SO=%d payload=%dB   ϑ=%g\n",
		params.BeaconOrder, params.SuperframeOrder, params.PayloadBytes, *theta)
	fmt.Printf("%-8s %-5s %-8s %9s %9s %9s %9s %10s %6s %9s\n",
		"node", "CR", "f_µC", "sensor", "µC", "memory", "radio", "total", "slots", "delay≤")
	for i, n := range net.Nodes {
		eb := ev.PerNode[i]
		fmt.Printf("%-8s %-5.2f %-8v %9v %9v %9v %9v %10v %6d %9v\n",
			n.Name, params.CR[i], n.MicroFreq,
			eb.Sensor, eb.Micro, eb.Memory, eb.Radio, eb.Total,
			ev.Assignment.K[i], secondsOf(ev.PerNodeDelay[i]))
	}
	fmt.Printf("\nEq. 2 budget: Σ Δtx = %.4f s/s, Δcontrol = %.4f, idle = %.4f (capacity %.4f)\n",
		ev.Assignment.Used, ev.Assignment.ControlTime, ev.Assignment.Idle, ev.Assignment.Capacity)
	fmt.Printf("network metrics (Eq. 8): energy %v, PRD %.2f%%, delay %v\n",
		ev.Energy, ev.Quality, ev.Delay)

	if *battery > 0 {
		b := core.ShimmerBattery()
		b.CapacityMilliampHours = *battery
		nl, err := ev.Lifetimes(b)
		if err != nil {
			fail(err)
		}
		fmt.Printf("lifetime on %.0f mAh: first death %.1f days, last %.1f days, imbalance %.1f%%\n",
			*battery, nl.FirstDeath.Hours()/24, nl.LastDeath.Hours()/24, nl.Imbalance*100)
	}
}

func secondsOf(v float64) string {
	return fmt.Sprintf("%.1fms", v*1e3)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsn-model:", err)
	os.Exit(1)
}
