package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"wsndse/internal/service"
)

// logger is wsn-serve's one log sink: the server's own lines, the
// Manager's degradation messages (via service.Config.Logf), and the
// access log all flow through it, so -log-format json turns the whole
// process into machine-parseable output at once. Text mode keeps the
// historical plain lines (scripts parse "listening on http://...").
type logger struct {
	json bool
	mu   sync.Mutex
	out  *os.File
}

func newLogger(format string) (*logger, error) {
	switch format {
	case "text":
		return &logger{out: os.Stdout}, nil
	case "json":
		return &logger{json: true, out: os.Stdout}, nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// printf logs one free-form message. It is the service.Config.Logf
// implementation, so it must be safe from any goroutine.
func (l *logger) printf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if !l.json {
		l.mu.Lock()
		fmt.Fprintln(l.out, msg)
		l.mu.Unlock()
		return
	}
	l.emit(map[string]any{"msg": msg})
}

// request logs one served HTTP request.
func (l *logger) request(method, path string, status int, latency time.Duration, jobID string) {
	if !l.json {
		line := fmt.Sprintf("wsn-serve: %s %s %d %s", method, path, status, latency.Round(10*time.Microsecond))
		if jobID != "" {
			line += " job=" + jobID
		}
		l.mu.Lock()
		fmt.Fprintln(l.out, line)
		l.mu.Unlock()
		return
	}
	rec := map[string]any{
		"msg":        "request",
		"method":     method,
		"path":       path,
		"status":     status,
		"latency_ms": float64(latency.Microseconds()) / 1000,
	}
	if jobID != "" {
		rec["job_id"] = jobID
	}
	l.emit(rec)
}

// emit writes one json log record with the shared ts/level envelope.
func (l *logger) emit(rec map[string]any) {
	rec["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	rec["level"] = "info"
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	l.mu.Lock()
	l.out.Write(append(b, '\n'))
	l.mu.Unlock()
}

// statusRecorder captures the response status for the access log. It
// forwards Flush so SSE streaming through the middleware keeps working
// (serveEvents type-asserts http.Flusher), and exposes Unwrap for
// http.ResponseController users.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// accessLog wraps the service handler with per-request logging and the
// wsndse_http_requests_total{method,code} metric. The log line lands
// after the response finishes — an SSE stream logs once, at disconnect,
// with its full duration.
func accessLog(l *logger, m *service.Manager, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		m.ObserveHTTPRequest(r.Method, status)
		l.request(r.Method, r.URL.Path, status, time.Since(start), jobIDFromPath(r.URL.Path))
	})
}

// jobIDFromPath extracts the job ID from /v1/jobs/{id}[/...] paths, the
// label that makes a slow or failing request attributable to its job.
func jobIDFromPath(path string) string {
	const prefix = "/v1/jobs/"
	if !strings.HasPrefix(path, prefix) {
		return ""
	}
	id := path[len(prefix):]
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[:i]
	}
	return id
}
