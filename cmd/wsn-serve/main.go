// Command wsn-serve runs the exploration service: a JSON-over-HTTP API
// that schedules design-space exploration jobs over the registered
// scenarios, streams their progress as server-sent events, checkpoints
// long runs, and archives finished Pareto fronts in a versioned store.
//
// Example:
//
//	wsn-serve -addr 127.0.0.1:8080 -jobs 4 \
//	  -checkpoint-dir /var/lib/wsn/ckpt -results-dir /var/lib/wsn/results
//
//	curl -s localhost:8080/v1/scenarios | jq '.items[].name'
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"scenario":"ecg-ward","algorithm":"nsga2","seed":7,"workers":2,
//	       "nsga2":{"population_size":32,"generations":40}}'
//	curl -N localhost:8080/v1/jobs/j1/events
//	curl -s localhost:8080/v1/jobs/j1/front | jq '.front | length'
//
// With -results-dir the archived fronts survive restarts; a follow-up
// job can warm-start from them:
//
//	curl -s 'localhost:8080/v1/results?scenario=ecg-ward&limit=5' | jq '.items[].version'
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"scenario":"ecg-ward","algorithm":"nsga2","seed":8,"warm_start":"auto"}'
//
// Island jobs partition one search across supervised islands with
// deterministic migration (same front, more throughput when evaluations
// have real latency); -island-exec points at a wsn-island binary to run
// the rounds in crash-isolated child processes:
//
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"scenario":"ecg-ward","algorithm":"nsga2","seed":7,"workers":2,
//	       "islands":4,"migration_interval":5,
//	       "nsga2":{"population_size":32,"generations":40}}'
//
// The server instruments itself: GET /metrics serves process-wide
// counters in Prometheus text form, GET /v1/jobs/{id}/stats the live
// telemetry window of one job, and -obs-dir persists each job's full
// series as a binary stream wsn-stats decodes. -log-format json turns
// the server's own lines and the per-request access log into structured
// output:
//
//	wsn-serve -obs-dir /var/lib/wsn/obs -log-format json
//	curl -s localhost:8080/metrics | grep ^wsndse_
//	wsn-stats -follow /var/lib/wsn/obs/j1.obs
//
// SIGINT/SIGTERM drain gracefully (bounded by -shutdown-timeout): new
// submissions get 503, running jobs are cancelled at their next search
// boundary — leaving durable checkpoints behind when -checkpoint-dir is
// set — and in-flight HTTP responses finish before exit. A restarted
// server resumes the interrupted work bit-identically via
// {"resume_job": "<old job id>"}.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wsndse/internal/cliutil"
	"wsndse/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		jobs          = flag.Int("jobs", 2, "concurrent exploration jobs")
		queue         = flag.Int("queue", 64, "queued-job limit (submissions beyond it are rejected)")
		checkpointDir = flag.String("checkpoint-dir", "", "persist job checkpoints to this directory")
		resultsDir    = flag.String("results-dir", "", "persist the result store to this directory (fronts survive restarts and warm-start new jobs)")
		maxResults    = flag.Int("max-results", 0, "result store bound before LRU eviction (0 selects the default)")
		familySpec    = flag.String("family", "", "enable scenario families before serving: a name, comma list, or 'all'")
		readTimeout   = flag.Duration("read-timeout", 30*time.Second, "max duration for reading a full request (0 disables)")
		writeTimeout  = flag.Duration("write-timeout", 60*time.Second, "max duration for writing a response; SSE streams are exempt (0 disables)")
		drainTimeout  = flag.Duration("shutdown-timeout", 30*time.Second, "max duration of the graceful drain on SIGINT/SIGTERM before jobs are abandoned")
		islandExec    = flag.String("island-exec", "", "run island rounds in child worker processes spawned from this wsn-island binary (empty: in-process)")
		islandStall   = flag.Duration("island-stall", 0, "island heartbeat watchdog: retry an island attempt that passes no boundary for this long (0 disables)")
		obsDir        = flag.String("obs-dir", "", "write each job's binary telemetry stream to this directory (<jobID>.obs, decode with wsn-stats)")
		obsInterval   = flag.Duration("obs-interval", 0, "minimum spacing between telemetry samples of one job (0 selects the default 250ms)")
		logFormat     = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	lg, err := newLogger(*logFormat)
	if err != nil {
		fail(err)
	}

	if n, err := cliutil.EnableFamilies(*familySpec); err != nil {
		fail(err)
	} else if n > 0 {
		lg.printf("wsn-serve: enabled %d generated scenarios (-family %s)", n, *familySpec)
	}

	m, err := service.New(service.Config{
		Workers:            *jobs,
		QueueLimit:         *queue,
		CheckpointDir:      *checkpointDir,
		ResultDir:          *resultsDir,
		MaxResults:         *maxResults,
		IslandExec:         *islandExec,
		IslandStallTimeout: *islandStall,
		ObsDir:             *obsDir,
		ObsSampleInterval:  *obsInterval,
		Logf:               lg.printf,
	})
	if err != nil {
		fail(err)
	}
	if *resultsDir != "" {
		lg.printf("wsn-serve: result store at %s holds %d fronts", *resultsDir, m.Store().Len())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// The resolved address line is load-bearing: with -addr :0 it is how
	// callers (the CI smoke test, scripts) learn the actual port. In text
	// mode it keeps its exact historical shape; in json mode the same
	// message rides the msg field.
	lg.printf("wsn-serve: listening on http://%s", ln.Addr())

	// Real timeouts: a client that stalls mid-headers or never reads its
	// response must not pin a connection forever. The events handler clears
	// its own write deadline, so long-lived SSE streams survive
	// WriteTimeout; everything else is a bounded request/response.
	srv := &http.Server{
		Handler:           accessLog(lg, m, service.NewHandler(m)),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case <-ctx.Done():
		// Graceful drain: stop taking new jobs (submissions get 503
		// unavailable), cancel running jobs at their next search boundary so
		// their durable checkpoints land, then close the HTTP server once
		// every job has settled — a restarted server picks the work back up
		// via resume_job with a bit-identical continuation.
		lg.printf("wsn-serve: draining (timeout %s)", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := m.Drain(shutdownCtx); err != nil {
			lg.printf("wsn-serve: drain: %v", err)
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			lg.printf("wsn-serve: shutdown: %v", err)
		}
		m.Close()
		lg.printf("wsn-serve: drained, bye")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsn-serve:", err)
	os.Exit(1)
}
