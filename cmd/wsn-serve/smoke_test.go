package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"wsndse/internal/service"
)

var update = flag.Bool("update", false, "rewrite testdata golden fronts from the current run")

// smokeSpec is the job the smoke test (and the CI service-smoke shell job,
// which must stay in sync — see .github/workflows/ci.yml) submits. The
// golden file pins the exact front this seed produces.
const smokeSpec = `{"scenario":"ecg-ward","algorithm":"nsga2","seed":7,"workers":2,
  "nsga2":{"population_size":16,"generations":12}}`

// restartSpec is the long checkpointing job the crash/drain recovery
// smokes interrupt. Big enough that checkpoints exist well before
// completion; even if the job does finish before the interruption
// lands, resuming from the last checkpoint replays the same trajectory,
// so neither test can race. Both diff against smoke-front-restart.json.
const restartSpec = `{"scenario":"ecg-ward","algorithm":"nsga2","seed":7,"workers":2,"checkpoint_every":100,
  "nsga2":{"population_size":16,"generations":1500}}`

// serveBinary builds wsn-serve once per test run (or honors
// $WSN_SERVE_BIN, the CI arrangement).
func serveBinary(t *testing.T) string {
	t.Helper()
	if bin := os.Getenv("WSN_SERVE_BIN"); bin != "" {
		return bin
	}
	bin := filepath.Join(t.TempDir(), "wsn-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building wsn-serve: %v\n%s", err, out)
	}
	return bin
}

// launchServe boots the service on a random port and returns its base
// URL plus the running process, leaving signalling/waiting to the
// caller; a kill is registered as cleanup so an aborted test never
// leaks the child.
func launchServe(t *testing.T, bin string, extraArgs ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-jobs", "2"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// The "listening on" stdout line reports the resolved listen address.
	scanner := bufio.NewScanner(stdout)
	base := ""
	for scanner.Scan() {
		line := scanner.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		t.Fatalf("wsn-serve never reported its address: %v", scanner.Err())
	}
	go func() { // keep the pipe drained
		for scanner.Scan() {
		}
	}()
	return base, cmd
}

// startServe boots the service and returns its base URL plus a stop
// function (SIGKILL + reap) so restart tests can kill the process
// mid-test.
func startServe(t *testing.T, bin string, extraArgs ...string) (string, func()) {
	t.Helper()
	base, cmd := launchServe(t, bin, extraArgs...)
	return base, func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

// goldenFront is the canonical JSON shape the golden files pin.
type goldenFront struct {
	Scenario  string `json:"scenario"`
	Algorithm string `json:"algorithm"`
	Seed      int64  `json:"seed"`
	Front     []struct {
		Config []int     `json:"config"`
		Objs   []float64 `json:"objs"`
	} `json:"front"`
}

// submitWait submits a job spec, polls it to completion and returns its ID.
func submitWait(t *testing.T, base, spec string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	decodeBody(t, resp, http.StatusCreated, &job)

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, resp, http.StatusOK, &job)
		if job.Status == "done" {
			return job.ID
		}
		if job.Status == "failed" || job.Status == "cancelled" {
			t.Fatalf("job ended %s", job.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fetchFront reads a finished job's front.
func fetchFront(t *testing.T, base, id string) goldenFront {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/front")
	if err != nil {
		t.Fatal(err)
	}
	var front goldenFront
	decodeBody(t, resp, http.StatusOK, &front)
	if len(front.Front) == 0 {
		t.Fatal("empty front")
	}
	return front
}

// runJob submits a job spec, polls it to completion and returns its front.
func runJob(t *testing.T, base, spec string) goldenFront {
	t.Helper()
	return fetchFront(t, base, submitWait(t, base, spec))
}

// checkGolden diffs a front against its committed golden file (canonical
// re-marshal, so formatting differences never mask or fake a diff).
func checkGolden(t *testing.T, front goldenFront, name string) {
	t.Helper()
	got, err := json.MarshalIndent(front, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d front points)", golden, len(front.Front))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run `go test ./cmd/wsn-serve -run Smoke -update` to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("front differs from golden %s.\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestServeSmoke builds the wsn-serve binary (or uses $WSN_SERVE_BIN),
// boots it on a random port, submits a small NSGA-II job over plain HTTP,
// polls it to completion, and diffs the returned front against the golden
// file — the end-to-end determinism gate for the whole service stack as
// actually deployed.
func TestServeSmoke(t *testing.T) {
	base, _ := startServe(t, serveBinary(t))
	checkGolden(t, runJob(t, base, smokeSpec), "smoke-front.json")
}

// TestServeWarmRestartSmoke is the persistence + warm-start gate over the
// deployed binary: run a job with a result directory, kill the process,
// boot a fresh one on the same directory, verify the archived front is
// still served by /v1/results, then submit a warm_start:auto job with a
// different seed and check it was actually seeded from the prior front —
// with its own golden, since seeding changes the trajectory.
func TestServeWarmRestartSmoke(t *testing.T) {
	bin := serveBinary(t)
	dir := t.TempDir()
	base, stop := startServe(t, bin, "-results-dir", dir)
	checkGolden(t, runJob(t, base, smokeSpec), "smoke-front.json")
	stop()

	base, _ = startServe(t, bin, "-results-dir", dir)
	resp, err := http.Get(base + "/v1/results?scenario=ecg-ward&algorithm=nsga2")
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Total int `json:"total"`
		Items []struct {
			Version int               `json:"version"`
			Front   []json.RawMessage `json:"front"`
		} `json:"items"`
	}
	decodeBody(t, resp, http.StatusOK, &page)
	if page.Total != 1 || len(page.Items) != 1 || len(page.Items[0].Front) == 0 {
		t.Fatalf("restarted server lost the archived front: %+v", page)
	}

	warmSpec := `{"scenario":"ecg-ward","algorithm":"nsga2","seed":21,"workers":2,"warm_start":"auto",
  "nsga2":{"population_size":16,"generations":12}}`
	id := submitWait(t, base, warmSpec)
	resp, err = http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		WarmStart *struct {
			Mode       string `json:"mode"`
			SeedPoints int    `json:"seed_points"`
			Exact      bool   `json:"exact"`
			Sources    []int  `json:"sources"`
		} `json:"warm_start"`
	}
	decodeBody(t, resp, http.StatusOK, &info)
	ws := info.WarmStart
	if ws == nil || ws.Mode != "auto" || !ws.Exact || ws.SeedPoints == 0 {
		t.Fatalf("warm job was not seeded from the restarted store: %+v", ws)
	}
	if len(ws.Sources) != 1 || ws.Sources[0] != page.Items[0].Version {
		t.Fatalf("warm sources %v, want [%d]", ws.Sources, page.Items[0].Version)
	}
	checkGolden(t, fetchFront(t, base, id), "smoke-front-warm.json")
}

// TestServeCrashResumeSmoke is the crash-recovery gate over the deployed
// binary: a checkpointing job's server is SIGKILLed mid-run, a fresh
// process resumes the job from the durable checkpoint left behind, and
// the resumed front must match — bit for bit — the golden pinned by an
// uninterrupted run of the same spec. This is the end-to-end proof that
// kill -9 costs wall-clock, never results.
func TestServeCrashResumeSmoke(t *testing.T) {
	bin := serveBinary(t)

	// Reference: the uninterrupted run pins the golden.
	base, stop := startServe(t, bin)
	checkGolden(t, runJob(t, base, restartSpec), "smoke-front-restart.json")
	stop()

	// Victim: same spec with a durable checkpoint directory, killed once a
	// verified checkpoint is on disk.
	ckptDir := t.TempDir()
	base, stop = startServe(t, bin, "-checkpoint-dir", ckptDir)
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(restartSpec))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	decodeBody(t, resp, http.StatusCreated, &job)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := service.LoadSnapshot(ckptDir, job.ID); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no durable checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop() // SIGKILL: no graceful shutdown, no final checkpoint flush

	// Restart: a fresh process resumes from whatever the dead one left.
	snap, err := service.LoadSnapshot(ckptDir, job.ID)
	if err != nil {
		t.Fatalf("loading the dead server's checkpoint: %v", err)
	}
	if snap.Step < 1 {
		t.Fatalf("checkpoint at step %d", snap.Step)
	}
	base, _ = startServe(t, bin, "-checkpoint-dir", ckptDir)
	resumeSpec := map[string]any{
		"scenario": "ecg-ward", "algorithm": "nsga2", "seed": int64(7), "workers": 2,
		"checkpoint_every": 100,
		"nsga2":            map[string]int{"population_size": 16, "generations": 1500},
		"resume":           snap,
	}
	data, err := json.Marshal(resumeSpec)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, runJob(t, base, string(data)), "smoke-front-restart.json")
}

// TestServeIslandSmoke runs the island decomposition end to end over
// the deployed binary: a 2-island job with one migration boundary must
// finish, stream island events, and pin its merged front to a golden —
// island runs have their own trajectory (migration injects elites), so
// this is a separate golden from the plain smoke.
func TestServeIslandSmoke(t *testing.T) {
	base, _ := startServe(t, serveBinary(t))
	islandSpec := `{"scenario":"ecg-ward","algorithm":"nsga2","seed":7,"workers":2,
  "islands":2,"migration_interval":6,"nsga2":{"population_size":16,"generations":12}}`
	id := submitWait(t, base, islandSpec)

	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Islands []struct {
			Island int `json:"island"`
			Step   int `json:"step"`
		} `json:"islands"`
	}
	decodeBody(t, resp, http.StatusOK, &info)
	if len(info.Islands) != 2 || info.Islands[0].Step != 12 || info.Islands[1].Step != 12 {
		t.Fatalf("island supervision state not surfaced: %+v", info.Islands)
	}
	checkGolden(t, fetchFront(t, base, id), "smoke-front-island.json")
}

// TestServeDrainResumeSmoke is the graceful-shutdown gate: SIGTERM a
// server mid-job and it must drain — cancel the job at a search
// boundary, leave its durable checkpoint behind, and exit cleanly
// within -shutdown-timeout. A fresh process on the same checkpoint
// directory then resumes the interrupted job server-side via
// {"resume_job": "<old id>"} — no client-held snapshot round-trip —
// and the front must match the same golden the uninterrupted run pins.
func TestServeDrainResumeSmoke(t *testing.T) {
	bin := serveBinary(t)
	ckptDir := t.TempDir()
	base, cmd := launchServe(t, bin, "-checkpoint-dir", ckptDir, "-shutdown-timeout", "30s")

	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(restartSpec))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	decodeBody(t, resp, http.StatusCreated, &job)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := service.LoadSnapshot(ckptDir, job.ID); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no durable checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Graceful: SIGTERM, then the process must exit on its own (well
	// under the 30s drain budget) with status 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("drained server exited with: %v", err)
		}
	case <-time.After(45 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}

	// Restart: the new server reads the drained job's checkpoint from
	// disk by ID. (Its own first job is also j1; the resume load happens
	// before that job writes anything, so the old file wins the race by
	// construction.)
	resumeSpec := strings.TrimSuffix(restartSpec, "}") + `,"resume_job":"` + job.ID + `"}`
	base, _ = startServe(t, bin, "-checkpoint-dir", ckptDir)
	checkGolden(t, runJob(t, base, resumeSpec), "smoke-front-restart.json")
}

// TestServeFamilySmoke is the same gate over the generated population: the
// service boots with -family all and explores one member of each builtin
// family; the fronts must match their committed goldens bit for bit, so a
// drifting family definition (axis change, platform recalibration, seed
// derivation) shows up as a golden diff here rather than as a silent
// change in served results.
func TestServeFamilySmoke(t *testing.T) {
	base, _ := startServe(t, serveBinary(t), "-family", "all")
	jobs := []struct {
		scenario, golden string
	}{
		{"chipset-sweep/telosb-n4-homo-short-uniform", "smoke-front-chipset.json"},
		{"mobile-relay/n4-corridor-fast-z1", "smoke-front-mobile-relay.json"},
	}
	for _, j := range jobs {
		spec := `{"scenario":"` + j.scenario + `","algorithm":"nsga2","seed":7,"workers":2,
  "nsga2":{"population_size":16,"generations":12}}`
		checkGolden(t, runJob(t, base, spec), j.golden)
	}
}

func decodeBody(t *testing.T, resp *http.Response, wantStatus int, out any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var raw bytes.Buffer
		raw.ReadFrom(resp.Body)
		t.Fatalf("HTTP %d (want %d): %s", resp.StatusCode, wantStatus, raw.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
