// Command wsn-sim runs the packet-level simulator and reports measured
// per-node energy, delays and traffic — the "ground truth" side of the
// model-accuracy comparisons. It simulates either an explicit case-study
// configuration (-bo/-so/-payload/-cr/-fuc) or a registered scenario at a
// deterministic feasible configuration (-scenario), including the
// scenario's heterogeneous node mix and traffic profile.
//
// Example:
//
//	wsn-sim -bo 3 -so 2 -payload 48 -cr 0.23 -fuc 8M -duration 60
//	wsn-sim -cr 0.29 -fuc 8M -arrival block -per 0.1
//	wsn-sim -scenario mixed-ward -duration 120
//	wsn-sim -scenario mobile-relay/n4-corridor-fast-z1
//	wsn-sim -family all -list-scenarios
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wsndse/internal/casestudy"
	"wsndse/internal/cliutil"
	"wsndse/internal/scenario"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

func main() {
	var (
		scenarioName = flag.String("scenario", "", "simulate a registered scenario at a feasible configuration (overrides -bo/-so/-payload/-cr/-fuc/-nodes)")
		familySpec   = flag.String("family", "", "enable scenario families first: a name, comma list, or 'all' (see -list-families)")
		list         = flag.Bool("list-scenarios", false, "list registered scenarios and exit")
		listFamilies = flag.Bool("list-families", false, "list scenario families and their axes, then exit")
		bo           = flag.Int("bo", 3, "beacon order (BCO)")
		so           = flag.Int("so", 2, "superframe order (SFO)")
		payload      = flag.Int("payload", 48, "MAC payload per frame, bytes")
		nodes        = flag.Int("nodes", casestudy.DefaultNodes, "number of nodes (first half DWT, rest CS)")
		cr           = flag.String("cr", "0.23", "compression ratio: one value or per-node comma list")
		fuc          = flag.String("fuc", "8M", "µC frequency: one value or per-node comma list")
		duration     = flag.Float64("duration", 60, "simulated seconds")
		seed         = flag.Int64("seed", 1, "simulation seed")
		arrival      = flag.String("arrival", "uniform", "traffic model: uniform | block")
		per          = flag.Float64("per", 0, "packet error rate in [0,1)")
	)
	flag.Parse()

	if *listFamilies {
		cliutil.PrintFamilies(os.Stdout)
		return
	}
	if _, err := cliutil.EnableFamilies(*familySpec); err != nil {
		fail(err)
	}
	if *list {
		for _, sc := range scenario.List() {
			fmt.Printf("%-44s %d nodes — %s\n", sc.Name, len(sc.Nodes), sc.Description)
		}
		return
	}

	// Only flags the user actually set may override a scenario's traffic
	// profile.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var cfg sim.Config
	if *scenarioName != "" {
		sc, err := cliutil.LookupScenario(*scenarioName)
		if err != nil {
			fail(err)
		}
		problem, err := scenario.NewProblem(sc, casestudy.DefaultCalibration())
		if err != nil {
			fail(err)
		}
		params, err := problem.FeasibleParams()
		if err != nil {
			fail(err)
		}
		dur := sc.SimDuration
		if explicit["duration"] {
			dur = units.Seconds(*duration)
		}
		runSeed := sc.SimSeed
		if explicit["seed"] {
			runSeed = *seed
		}
		cfg, err = problem.SimConfig(params, dur, runSeed)
		if err != nil {
			fail(err)
		}
		fmt.Printf("scenario %s at BO=%d SO=%d L=%d CR=%v\n",
			sc.Name, params.BeaconOrder, params.SuperframeOrder, params.PayloadBytes, params.CR)
	} else {
		params, err := cliutil.BuildParams(*bo, *so, *payload, *nodes, *cr, *fuc)
		if err != nil {
			fail(err)
		}
		cfg, err = params.SimConfig(casestudy.DefaultCalibration(), units.Seconds(*duration), *seed)
		if err != nil {
			fail(err)
		}
	}
	if explicit["per"] || *scenarioName == "" {
		cfg.PacketErrorRate = *per
	}
	if explicit["arrival"] || *scenarioName == "" {
		switch *arrival {
		case "uniform":
			cfg.Arrival = sim.ArrivalUniform
		case "block":
			cfg.Arrival = sim.ArrivalBlock
		default:
			fail(fmt.Errorf("unknown arrival model %q", *arrival))
		}
	}

	if cfg.Arrival == sim.ArrivalDefault {
		cfg.Arrival = sim.ArrivalUniform // what the simulator resolves it to
	}

	start := time.Now()
	res, err := sim.Run(cfg)
	if err != nil {
		fail(err)
	}
	wall := time.Since(start)

	fmt.Printf("simulated %v: %d beacons, stable=%v, arrival=%v, PER=%g\n",
		res.Duration, res.BeaconsSent, res.Stable, cfg.Arrival, cfg.PacketErrorRate)
	fmt.Printf("engine: %d events in %v (%.3g events/s, %.0fx real time)\n",
		res.Events, wall.Round(time.Microsecond),
		float64(res.Events)/wall.Seconds(), float64(res.Duration)/wall.Seconds())
	fmt.Printf("%-12s %10s %9s %9s %9s %10s %7s %7s %9s %9s\n",
		"node", "total", "sensor", "µC", "radio", "delivered", "pkts", "retry", "delay avg", "delay max")
	for _, n := range res.Nodes {
		fmt.Printf("%-12s %10v %9v %9v %9v %9dB %7d %7d %9v %9v\n",
			n.Name, n.Power.Total, n.Power.Sensor, n.Power.Micro, n.Power.Radio,
			n.BytesDelivered, n.PacketsSent, n.Retries, n.Delay.Mean, n.Delay.Max)
	}
	fmt.Printf("\nradio residency of %s: ", res.Nodes[0].Name)
	for _, st := range []sim.RadioState{sim.StateSleep, sim.StateIdle, sim.StateRamp, sim.StateRx, sim.StateTx} {
		fmt.Printf("%v=%.2f%% ", st, float64(res.Nodes[0].RadioStateTime[st])/float64(res.Duration)*100)
	}
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsn-sim:", err)
	os.Exit(1)
}
