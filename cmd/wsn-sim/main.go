// Command wsn-sim runs the packet-level simulator on one case-study
// configuration and reports measured per-node energy, delays and traffic —
// the "ground truth" side of the model-accuracy comparisons.
//
// Example:
//
//	wsn-sim -bo 3 -so 2 -payload 48 -cr 0.23 -fuc 8M -duration 60
//	wsn-sim -cr 0.29 -fuc 8M -arrival block -per 0.1
package main

import (
	"flag"
	"fmt"
	"os"

	"wsndse/internal/casestudy"
	"wsndse/internal/cliutil"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

func main() {
	var (
		bo       = flag.Int("bo", 3, "beacon order (BCO)")
		so       = flag.Int("so", 2, "superframe order (SFO)")
		payload  = flag.Int("payload", 48, "MAC payload per frame, bytes")
		nodes    = flag.Int("nodes", casestudy.DefaultNodes, "number of nodes (first half DWT, rest CS)")
		cr       = flag.String("cr", "0.23", "compression ratio: one value or per-node comma list")
		fuc      = flag.String("fuc", "8M", "µC frequency: one value or per-node comma list")
		duration = flag.Float64("duration", 60, "simulated seconds")
		seed     = flag.Int64("seed", 1, "simulation seed")
		arrival  = flag.String("arrival", "uniform", "traffic model: uniform | block")
		per      = flag.Float64("per", 0, "packet error rate in [0,1)")
	)
	flag.Parse()

	params, err := cliutil.BuildParams(*bo, *so, *payload, *nodes, *cr, *fuc)
	if err != nil {
		fail(err)
	}
	cfg, err := params.SimConfig(casestudy.DefaultCalibration(), units.Seconds(*duration), *seed)
	if err != nil {
		fail(err)
	}
	cfg.PacketErrorRate = *per
	switch *arrival {
	case "uniform":
		cfg.Arrival = sim.ArrivalUniform
	case "block":
		cfg.Arrival = sim.ArrivalBlock
	default:
		fail(fmt.Errorf("unknown arrival model %q", *arrival))
	}

	res, err := sim.Run(cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("simulated %v: %d beacons, stable=%v, arrival=%v, PER=%g\n",
		res.Duration, res.BeaconsSent, res.Stable, cfg.Arrival, *per)
	fmt.Printf("%-8s %10s %9s %9s %9s %10s %7s %7s %9s %9s\n",
		"node", "total", "sensor", "µC", "radio", "delivered", "pkts", "retry", "delay avg", "delay max")
	for _, n := range res.Nodes {
		fmt.Printf("%-8s %10v %9v %9v %9v %9dB %7d %7d %9v %9v\n",
			n.Name, n.Power.Total, n.Power.Sensor, n.Power.Micro, n.Power.Radio,
			n.BytesDelivered, n.PacketsSent, n.Retries, n.Delay.Mean, n.Delay.Max)
	}
	fmt.Printf("\nradio residency of %s: ", res.Nodes[0].Name)
	for _, st := range []sim.RadioState{sim.StateSleep, sim.StateIdle, sim.StateRamp, sim.StateRx, sim.StateTx} {
		fmt.Printf("%v=%.2f%% ", st, float64(res.Nodes[0].RadioStateTime[st])/float64(res.Duration)*100)
	}
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsn-sim:", err)
	os.Exit(1)
}
