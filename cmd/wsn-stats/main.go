// Command wsn-stats decodes the binary telemetry streams the service
// writes under -obs-dir (one <jobID>.obs per job, internal/obs format)
// into human- and tool-friendly forms for offline analysis.
//
//	wsn-stats job7.obs                     # aligned table of every sample
//	wsn-stats -n 20 job7.obs               # last 20 samples
//	wsn-stats -format csv job7.obs         # spreadsheet-ready
//	wsn-stats -format json job7.obs | jq   # one object per sample
//	wsn-stats -follow job7.obs             # tail a live job's stream
//
// A torn tail — the expected end of a stream whose writer crashed — is
// reported on stderr and does not fail the decode; everything before
// the tear is intact by construction (each record is CRC-framed). Only
// a file that was never an obs stream at all exits non-zero.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"wsndse/internal/obs"
)

func main() {
	var (
		format = flag.String("format", "table", "output format: table, csv, or json")
		n      = flag.Int("n", 0, "print only the last N samples (0 prints all)")
		follow = flag.Bool("follow", false, "keep watching the file and print samples as the job appends them")
		poll   = flag.Duration("poll", time.Second, "poll interval in -follow mode")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wsn-stats [flags] <file.obs>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	path := flag.Arg(0)

	var emit emitter
	switch *format {
	case "table":
		emit = &tableEmitter{out: os.Stdout}
	case "csv":
		emit = &csvEmitter{w: csv.NewWriter(os.Stdout)}
	case "json":
		emit = &jsonEmitter{out: os.Stdout}
	default:
		fail(fmt.Errorf("unknown -format %q (want table, csv, or json)", *format))
	}

	samples, truncated, err := decode(path)
	if err != nil {
		fail(err)
	}
	if *n > 0 && len(samples) > *n && !*follow {
		samples = samples[len(samples)-*n:]
	}
	for _, s := range samples {
		emit.sample(s)
	}
	emit.flush()
	if truncated {
		fmt.Fprintf(os.Stderr, "wsn-stats: %s: torn tail after %d intact samples (writer crashed mid-record?)\n", path, len(samples))
	}
	if !*follow {
		return
	}

	// Follow mode re-decodes the file each poll and prints what is new.
	// Telemetry files are small (a few bytes per sample after delta
	// coding), so the re-decode costs less than getting incremental
	// decoding right across schema changes and torn-then-repaired tails.
	seen := len(samples)
	for {
		time.Sleep(*poll)
		samples, _, err := decode(path)
		if err != nil {
			fail(err)
		}
		if len(samples) < seen {
			seen = 0 // file replaced or rewritten: start over
		}
		for _, s := range samples[seen:] {
			emit.sample(s)
		}
		seen = len(samples)
		emit.flush()
	}
}

func decode(path string) ([]obs.Sample, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	return obs.ReadAll(f)
}

// An emitter renders decoded samples in one output format, reprinting
// its header whenever the stream's schema changes mid-file.
type emitter interface {
	sample(s obs.Sample)
	flush()
}

// sameSchema reports whether two field lists are the identical schema.
// Decoded samples under one schema share the Fields slice, so the
// common case is a pointer-equal fast path.
func sameSchema(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tableEmitter prints fixed-width columns sized to the field names —
// telemetry values (timestamps, counters) fit the same widths in
// practice, and alignment beats perfection for eyeballing a stream.
type tableEmitter struct {
	out    *os.File
	fields []string
	widths []int
}

func (t *tableEmitter) sample(s obs.Sample) {
	if !sameSchema(t.fields, s.Fields) {
		t.fields = s.Fields
		t.widths = make([]int, len(s.Fields))
		var b strings.Builder
		for i, f := range s.Fields {
			t.widths[i] = len(f)
			if t.widths[i] < 13 {
				t.widths[i] = 13
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", t.widths[i], f)
		}
		fmt.Fprintln(t.out, b.String())
	}
	var b strings.Builder
	for i, v := range s.Values {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*d", t.widths[i], v)
	}
	fmt.Fprintln(t.out, b.String())
}

func (t *tableEmitter) flush() {}

type csvEmitter struct {
	w      *csv.Writer
	fields []string
	row    []string
}

func (c *csvEmitter) sample(s obs.Sample) {
	if !sameSchema(c.fields, s.Fields) {
		c.fields = s.Fields
		_ = c.w.Write(s.Fields)
		c.row = make([]string, len(s.Fields))
	}
	for i, v := range s.Values {
		c.row[i] = strconv.FormatInt(v, 10)
	}
	_ = c.w.Write(c.row)
}

func (c *csvEmitter) flush() { c.w.Flush() }

// jsonEmitter prints one object per line ({"field": value, ...}, field
// order preserved), the shape jq and log pipelines expect.
type jsonEmitter struct {
	out *os.File
}

func (j *jsonEmitter) sample(s obs.Sample) {
	var b strings.Builder
	b.WriteByte('{')
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(f))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(s.Values[i], 10))
	}
	b.WriteByte('}')
	fmt.Fprintln(j.out, b.String())
}

func (j *jsonEmitter) flush() {}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsn-stats:", err)
	os.Exit(1)
}
