// Package wsndse reproduces "Design Exploration of Energy-Performance
// Trade-Offs for Wireless Sensor Networks" (Beretta, Rincón, Khaled,
// Grassi, Rana, Atienza — DAC 2012): a system-level analytical model of
// wireless body sensor networks fast and accurate enough to drive
// multi-objective design-space exploration, validated against a
// packet-level IEEE 802.15.4 simulator and real compression codecs.
//
// The library layers, bottom to top:
//
//   - internal/units, internal/numeric, internal/bitpack — typed physical
//     quantities, polynomial fitting and statistics, bit packing;
//   - internal/ecg, internal/quality — synthetic ECG generation, the ADC
//     front end, and signal-fidelity metrics (PRD);
//   - internal/dwt, internal/cs — the two ECG compressors of the case
//     study, implemented end to end (wavelet thresholding codec and a
//     compressed-sensing codec with OMP/BPDN reconstruction);
//   - internal/ieee802154, internal/radio, internal/platform — the
//     beacon-enabled MAC geometry, a CC2420-class transceiver model, and
//     the Shimmer-class node hardware characterization;
//   - internal/app — the paper's application triple h/k/e;
//   - internal/core — the paper's contribution: the abstract MAC model,
//     the Eq. 1–2 assignment, the Eq. 3–7 node energy model, the Eq. 9
//     delay bound, and the Eq. 8 network metrics;
//   - internal/sim — a discrete-event, packet-level simulator with
//     device-level energy accounting (the measurement/Castalia stand-in);
//   - internal/dse, internal/baseline, internal/casestudy,
//     internal/experiments — the exploration framework, the energy/delay
//     comparator, the §4 case study, and one harness per figure/table;
//   - internal/scenario — the scenario engine: declarative heterogeneous
//     workloads plus the process-wide registry the CLIs, experiments and
//     examples select workloads from;
//   - internal/service — the DSE-as-a-service layer: a job-oriented
//     exploration runtime (bounded-worker manager, SSE progress streams,
//     checkpoint/resume, versioned result store) behind a JSON HTTP API
//     (cmd/wsn-serve) and a Go client.
//
// Conceptually the stack is four layers — model → scenario → search →
// service — each consuming only the one below: the model evaluates
// configurations, scenarios define spaces of them, searches walk those
// spaces, and the service schedules many searches for many consumers.
//
// # Scenario engine
//
// A scenario.Scenario declares one heterogeneous star workload — per-node
// applications (the calibrated compressors or raw streams), platforms,
// payload profiles, traffic model, explorable MAC axes and the Eq. 8
// balance weight — and scenario.NewProblem compiles it into a per-node
// design space with matching materializations for both sides of the
// stack: core.Network with per-node MAC views for nodes carrying their
// own payload profile, and sim.Config with per-node payload/arrival
// overrides. Five workloads ship registered (ecg-ward, mixed-ward,
// athletes, dense-gts, raw-stream); wsn-explore -list-scenarios prints
// them and wsn-experiments -run scenarios sweeps them all, including the
// GTS-starvation node-count sweep over the protocol's 7-slot budget.
//
// # Concurrent batch evaluation
//
// The exploration stack runs on a concurrent batch-evaluation runtime
// (dse.ParallelEvaluator): search algorithms produce candidate
// configurations sequentially from their seeded RNGs and evaluate them in
// batches across a bounded worker pool backed by a sharded memo cache.
// Fronts and evaluation counts are bit-identical at every worker count —
// parallelism changes wall-clock, never results. The per-figure harnesses
// in internal/experiments fan out the same way (experiments.RunJobs), and
// internal/cs builds its per-rate reconstruction dictionaries under a
// per-codec lock that never blocks concurrent decoders. See the dse
// package documentation for the exact determinism guarantees.
//
// # Compiled evaluation pipeline
//
// The analytical model's reason to exist is being orders of magnitude
// faster than simulation, so the evaluation hot path is engineered to be
// allocation-free. Compile() on casestudy.Problem and scenario.Problem
// pre-builds lookup tables over the whole design space — the full
// (BO × SFO gap × payload) MAC grid, per-node application instances per
// CR grid index, per-node MAC views for payload-override nodes, and the
// per (application, sample-rate) output rates and quality values — so
// each evaluation reduces to table lookups plus the Eq. 1–9 arithmetic.
// The arithmetic itself runs on scratch-reuse APIs in core
// (Network.EvaluateInto, Network.EvaluateWithRatesInto, AssignHeteroInto,
// Node.EnergyWithRates, and the per-worker core.Workspace), and the batch
// runtime's memo cache keys on a packed uint64 hash of the gene indices,
// so steady-state evaluation performs zero heap allocations. Equivalence
// tests assert the compiled evaluators return bit-identical objectives to
// the reference evaluators for every registered scenario at worker counts
// 1 and 8, and testing.AllocsPerRun regression tests pin the hot path at
// 0 allocs/op.
//
// The pipeline relies on the evaluator determinism/purity contract: an
// evaluator must be a pure function of the configuration (no hidden
// state, no randomness, no clock), which is what lets tables be built
// once, results be memoized process-wide, scratch be reused per worker
// (dse.Forkable), and fronts stay bit-identical at every worker count.
//
// # Search-layer performance
//
// With evaluation allocation-free, the search machinery above it is
// engineered the same way. NSGA-II runs an ENS/Jensen-style fast
// non-dominated sort — O(N log N) for the two-objective case, ENS with
// binary search over fronts for three and more — on a reusable workspace,
// ranks each generation's parent∪offspring union exactly once (the
// survivors carry their union rank and crowding into the next
// generation's tournaments, as in Deb's formulation), and recycles gene
// and point buffers, so a steady-state generation performs zero heap
// allocations. The Pareto archive stores its front sorted by lexicographic
// objective order, which turns two-objective insertion into
// O(log N + k)-comparison maintenance and prunes the dominance scans in
// higher dimensions; MOSA chains reuse a single neighbour buffer. The sim
// engine's event core is typed: value-slot events in a slab recycled
// through a free list, ordered by an index-addressed min-heap and
// dispatched by (kind, node, arg) with no closure or interface boxing —
// At/After remain as closure-compatibility wrappers. Property tests prove
// the fast sort produces exactly the naive reference's ranks and
// bit-identical crowding on randomized populations, seeded NSGA-II runs
// are bit-identical with either sort wired in, and the incremental archive
// retains exactly the naive archive's points; AllocsPerRun regression
// tests pin the generation loop, the annealing chain and the typed event
// path at 0 allocs/op, and CI runs them uninstrumented in the test matrix.
//
// # Exploration service
//
// The search layer exposes three cross-cutting run controls through
// dse.Options, all hooked at generation/segment/batch boundaries so the
// allocation-free hot loops are untouched: cooperative cancellation
// (context.Context; SIGINT in the CLIs flushes the partial front),
// incremental progress (dse.ProgressSink receives step counters and front
// snapshots), and checkpoint/resume (dse.Snapshot serializes the complete
// search state — population, archives, chain temperatures, and the RNG,
// which draws from a SplitMix64 source precisely so its whole state is
// one uint64). A run resumed from a snapshot replays the uninterrupted
// trajectory bit for bit.
//
// internal/service builds the multi-tenant runtime on those hooks: jobs
// (scenario × algorithm × seed) validated against the registry, a
// bounded-worker Manager with queued → running → done/failed/cancelled
// lifecycles, per-job event hubs streamed as server-sent events, durable
// snapshot files, and a versioned store of finished fronts queryable by
// scenario/algorithm. Seeded jobs return bit-identical fronts regardless
// of service concurrency — jobs share nothing mutable but code paths
// already proven scheduling-independent. cmd/wsn-serve serves the HTTP
// API; service.Client consumes it; examples/service walks the flow; and
// CI's service-smoke job diffs a real submit→poll→front round-trip
// against a committed golden front.
//
// The benchmarks in bench_test.go regenerate every evaluation artifact
// (including parallel-vs-sequential exploration pairs and the
// reference-vs-compiled evaluator twins, with allocs/op reported);
// cmd/wsn-experiments prints them as tables, and both it and
// cmd/wsn-explore take -workers N plus -cpuprofile/-memprofile for pprof.
package wsndse
