package wsndse_test

import (
	"fmt"
	"log"

	"wsndse/internal/casestudy"
	"wsndse/internal/core"
	"wsndse/internal/units"
)

// Example_evaluate builds the paper's six-node case-study network at one
// operating point and reads the Eq. 8 network metrics.
func Example_evaluate() {
	params := casestudy.Params{
		BeaconOrder:     3,
		SuperframeOrder: 2,
		PayloadBytes:    48,
		CR:              []float64{0.23, 0.23, 0.23, 0.23, 0.23, 0.23},
		MicroFreq:       []units.Hertz{8e6, 8e6, 8e6, 8e6, 8e6, 8e6},
	}
	net, err := params.Network(casestudy.DefaultCalibration(), 0.5)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := net.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy %v, PRD %.2f%%, delay %v\n", ev.Energy, ev.Quality, ev.Delay)
	fmt.Printf("slots per node: %v\n", ev.Assignment.K)
	// Output:
	// energy 4.528mW, PRD 40.26%, delay 129.5ms
	// slots per node: [1 1 1 1 1 1]
}

// Example_infeasible shows the constraint handling the DSE relies on: the
// wavelet compressor cannot complete at 1 MHz (duty cycle 226 %), which
// the model reports as a typed infeasibility rather than a number.
func Example_infeasible() {
	params := casestudy.Params{
		BeaconOrder:     3,
		SuperframeOrder: 2,
		PayloadBytes:    48,
		CR:              []float64{0.23, 0.23},
		MicroFreq:       []units.Hertz{1e6, 1e6}, // DWT node cannot run here
	}
	net, err := params.Network(casestudy.DefaultCalibration(), 0)
	if err != nil {
		log.Fatal(err)
	}
	_, err = net.Evaluate()
	fmt.Println(core.IsInfeasible(err))
	// Output:
	// true
}
