// Athletes: a four-runner training squad monitored over a lossy on-field
// channel. The scenario exercises knobs the hospital ward does not: a
// smaller network, heterogeneous per-node configurations (the coach's
// runner streams at high fidelity, the others compress harder), packet
// loss with retransmissions, and the bursty block-arrival traffic model.
//
//	go run ./examples/athletes
package main

import (
	"fmt"
	"log"

	"wsndse/internal/casestudy"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

func main() {
	cal := casestudy.DefaultCalibration()

	// Four nodes: two DWT (the first streams near-raw for the coach),
	// two CS. A short beacon interval keeps latency low during drills.
	params := casestudy.Params{
		BeaconOrder:     2, // BI = 61.44 ms
		SuperframeOrder: 2,
		PayloadBytes:    48,
		CR:              []float64{0.38, 0.20, 0.23, 0.23},
		MicroFreq:       []units.Hertz{8e6, 8e6, 2e6, 2e6},
	}

	net, err := params.Network(cal, 1.0) // ϑ = 1: balance matters on a squad
	if err != nil {
		log.Fatal(err)
	}
	ev, err := net.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model evaluation:")
	for i, n := range net.Nodes {
		fmt.Printf("  %-8s CR=%.2f f=%v: %v, PRD %.1f%%, delay ≤ %v\n",
			n.Name, params.CR[i], n.MicroFreq, ev.PerNode[i].Total,
			ev.PerNodeQuality[i], units.Seconds(ev.PerNodeDelay[i]))
	}
	fmt.Printf("network: energy %v, PRD %.1f%%, delay %v (ϑ=1)\n\n", ev.Energy, ev.Quality, ev.Delay)

	// On-field verification: 5 % frame loss, bursty block arrivals.
	simCfg, err := params.SimConfig(cal, 120, 7)
	if err != nil {
		log.Fatal(err)
	}
	simCfg.PacketErrorRate = 0.05
	simCfg.Arrival = sim.ArrivalBlock
	res, err := sim.Run(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %v with PER=5%%, block arrivals (stable=%v):\n", res.Duration, res.Stable)
	for _, n := range res.Nodes {
		loss := 0.0
		if n.PacketsSent+n.PacketsDropped > 0 {
			loss = float64(n.PacketsDropped) / float64(n.PacketsSent+n.PacketsDropped) * 100
		}
		fmt.Printf("  %-8s %v, delivered %d pkts (+%d retries, %.2f%% lost), max delay %v\n",
			n.Name, n.Power.Total, n.PacketsSent, n.Retries, loss, n.Delay.Max)
	}
	fmt.Println("\nnote: with block arrivals the Eq. 9 bound no longer applies —")
	fmt.Println("compare max delays against the uniform-arrival run to see why the")
	fmt.Println("paper's uniform-output-rate assumption matters.")
}
