// Athletes: a four-runner training squad monitored over a lossy on-field
// channel, selected from the scenario registry. The scenario exercises
// knobs the hospital ward does not: a smaller network, heterogeneous
// per-node fidelity (the coach's runner explores only near-raw CRs),
// packet loss with retransmissions, and the bursty block-arrival traffic
// model under which the Eq. 9 bound no longer applies.
//
//	go run ./examples/athletes
package main

import (
	"fmt"
	"log"

	"wsndse/internal/casestudy"
	"wsndse/internal/scenario"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

func main() {
	sc, ok := scenario.Lookup("athletes")
	if !ok {
		log.Fatal("athletes not registered")
	}
	problem, err := scenario.NewProblem(sc, casestudy.DefaultCalibration())
	if err != nil {
		log.Fatal(err)
	}

	params, err := problem.FeasibleParams()
	if err != nil {
		log.Fatal(err)
	}
	net, err := problem.Network(params)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := net.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model evaluation (BO=%d SO=%d L=%dB):\n",
		params.BeaconOrder, params.SuperframeOrder, params.PayloadBytes)
	for i, n := range net.Nodes {
		fmt.Printf("  %-12s CR=%.2f f=%v: %v, PRD %.1f%%, delay ≤ %v\n",
			n.Name, params.CR[i], n.MicroFreq, ev.PerNode[i].Total,
			ev.PerNodeQuality[i], units.Seconds(ev.PerNodeDelay[i]))
	}
	fmt.Printf("squad: energy %v, PRD %.1f%%, delay %v (ϑ=%g: balance matters on a squad)\n\n",
		ev.Energy, ev.Quality, ev.Delay, sc.Theta)

	// On-field verification under the scenario's traffic profile: 5 %
	// frame loss, bursty block arrivals.
	simCfg, err := problem.DefaultSimConfig(params)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %v with PER=%g%%, %v arrivals (stable=%v):\n",
		res.Duration, sc.Traffic.PacketErrorRate*100, sc.Traffic.Arrival, res.Stable)
	for _, n := range res.Nodes {
		loss := 0.0
		if n.PacketsSent+n.PacketsDropped > 0 {
			loss = float64(n.PacketsDropped) / float64(n.PacketsSent+n.PacketsDropped) * 100
		}
		fmt.Printf("  %-12s %v, delivered %d pkts (+%d retries, %.2f%% lost), max delay %v\n",
			n.Name, n.Power.Total, n.PacketsSent, n.Retries, loss, n.Delay.Max)
	}
	fmt.Println("\nnote: with block arrivals the Eq. 9 bound no longer applies —")
	fmt.Println("compare max delays against a uniform-arrival run to see why the")
	fmt.Println("paper's uniform-output-rate assumption matters.")
}
