// Custommac: the generality claim of §3.2 — plug a protocol that is not
// IEEE 802.15.4 into the abstract MAC model and evaluate the same nodes
// under it. The custom protocol is a minimal polling TDMA: the coordinator
// polls each node once per epoch; there are no beacons, acknowledgements
// or superframe structure, just a poll message down and a data burst up.
//
//	go run ./examples/custommac
package main

import (
	"fmt"
	"log"

	"wsndse/internal/casestudy"
	"wsndse/internal/core"
	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/scenario"
	"wsndse/internal/units"
)

// pollMAC is a toy contention-free protocol: an epoch of fixed length is
// divided into per-node polling turns quantized to 1 ms. Each turn starts
// with an 8-byte poll from the coordinator; the node answers with its
// data framed at 2 bytes of overhead per 64-byte frame.
type pollMAC struct {
	Epoch units.Seconds // polling cycle length
}

const (
	pollBytes     = 8
	frameOverhead = 2
	framePayload  = 64
	quantum       = 1e-3 // 1 ms scheduling grain
)

func (m *pollMAC) Name() string { return "poll-tdma" }

// DataOverhead: 2 bytes per 64-byte frame.
func (m *pollMAC) DataOverhead(phi units.BytesPerSecond) units.BytesPerSecond {
	return units.BytesPerSecond(float64(phi) * frameOverhead / framePayload)
}

// ControlDown: one poll per node per epoch.
func (m *pollMAC) ControlDown(units.BytesPerSecond) units.BytesPerSecond {
	return units.BytesPerSecond(pollBytes / float64(m.Epoch))
}

// ControlUp: none.
func (m *pollMAC) ControlUp(units.BytesPerSecond) units.BytesPerSecond { return 0 }

// AirOverheadUp/Down: reuse the 802.15.4 PHY encapsulation (same radio).
func (m *pollMAC) AirOverheadUp(phi units.BytesPerSecond) units.BytesPerSecond {
	frames := float64(phi) / framePayload
	return units.BytesPerSecond(frames * ieee.PHYOverheadBytes)
}

func (m *pollMAC) AirOverheadDown(units.BytesPerSecond) units.BytesPerSecond {
	return units.BytesPerSecond(ieee.PHYOverheadBytes / float64(m.Epoch))
}

// ControlTime: polls occupy the channel.
func (m *pollMAC) ControlTime() float64 {
	return float64(ieee.AirTime(pollBytes+ieee.PHYOverheadBytes)) / float64(m.Epoch)
}

// Quantum: 1 ms per epoch, per-second normalized.
func (m *pollMAC) Quantum() float64 { return quantum / float64(m.Epoch) }

// Capacity: everything except the polls.
func (m *pollMAC) Capacity() float64 { return 1 - m.ControlTime() }

// TxTime: on-air time of data plus framing plus PHY encapsulation.
func (m *pollMAC) TxTime(phi units.BytesPerSecond) float64 {
	if phi == 0 {
		return 0
	}
	frames := float64(phi) / framePayload
	bytes := float64(phi) + float64(m.DataOverhead(phi)) + frames*ieee.PHYOverheadBytes
	return float64(ieee.AirTime(bytes))
}

// WorstCaseDelay: data waits one full epoch in the worst case.
func (m *pollMAC) WorstCaseDelay(deltaTx []float64, n int) units.Seconds {
	return m.Epoch
}

func main() {
	// The node set comes from the registered ECG ward scenario — the
	// same nodes the rest of the stack explores — materialized at the
	// scenario's deterministic feasible configuration.
	sc, ok := scenario.Lookup("ecg-ward")
	if !ok {
		log.Fatal("ecg-ward not registered")
	}
	problem, err := scenario.NewProblem(sc, casestudy.DefaultCalibration())
	if err != nil {
		log.Fatal(err)
	}
	params, err := problem.FeasibleParams()
	if err != nil {
		log.Fatal(err)
	}
	ward, err := problem.Network(params)
	if err != nil {
		log.Fatal(err)
	}
	nodes := ward.Nodes

	// Evaluate the same network under both MACs: the scenario's
	// beacon-enabled 802.15.4 superframe and the custom polling TDMA.
	gts, err := core.NewGTSMac(ieee.SuperframeConfig{
		BeaconOrder:     params.BeaconOrder,
		SuperframeOrder: params.SuperframeOrder,
	}, params.PayloadBytes, len(nodes))
	if err != nil {
		log.Fatal(err)
	}
	for _, mac := range []core.MAC{gts, &pollMAC{Epoch: 0.25}} {
		net := &core.Network{Nodes: nodes, MAC: mac, Theta: 0.5}
		ev, err := net.Evaluate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s energy %v, PRD %.1f%%, delay %v, Σ Δtx %.4f s/s\n",
			mac.Name()+":", ev.Energy, ev.Quality, ev.Delay, ev.Assignment.Used)
	}
	fmt.Println("\nthe node model (Eqs. 3–7) is untouched — only the MAC abstraction")
	fmt.Println("(Ω, Ψ, Δcontrol, δ) changed, which is the paper's reusability claim.")
}
