// Hospital: explore a heterogeneous ward end to end — select the
// "mixed-ward" scenario (ECG compressors, TelosB temperature motes on
// short frames, an actuator-ack node), run NSGA-II over the three-metric
// model, pick a balanced configuration from the Pareto front, and verify
// it against the packet-level simulator.
//
//	go run ./examples/hospital
package main

import (
	"fmt"
	"log"

	"wsndse/internal/casestudy"
	"wsndse/internal/dse"
	"wsndse/internal/numeric"
	"wsndse/internal/scenario"
	"wsndse/internal/sim"
)

func main() {
	sc, ok := scenario.Lookup("mixed-ward")
	if !ok {
		log.Fatal("mixed-ward not registered")
	}
	problem, err := scenario.NewProblem(sc, casestudy.DefaultCalibration())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s: %d nodes, %.3g configurations\n",
		sc.Name, len(sc.Nodes), problem.Space().Size())

	// Multi-objective search with the analytical model: minimize
	// (E_net, quality loss, delay_net) over the per-node design space.
	res, err := dse.NSGA2(problem.Space(), problem.Evaluator(), dse.NSGA2Config{
		PopulationSize: 64,
		Generations:    40,
		Seed:           2026,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NSGA-II evaluated %d configurations (%d infeasible), front has %d points\n",
		res.Evaluated, res.Infeasible, len(res.Front))

	// A ward wants decent everything: the balanced front point.
	best := dse.BalancedPoint(res.Front)
	params, err := problem.Decode(best.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected balanced configuration:\n")
	fmt.Printf("  MAC: BO=%d SO=%d payload=%dB\n",
		params.BeaconOrder, params.SuperframeOrder, params.PayloadBytes)
	fmt.Printf("  CR per node:   %v (raw nodes forward at 1)\n", params.CR)
	fmt.Printf("  f_µC per node: %v\n", params.MicroFreq)
	fmt.Printf("  model: energy %.3f mW, quality %.1f%%, delay %.0f ms\n",
		best.Objs[0]*1e3, best.Objs[1], best.Objs[2]*1e3)

	// Trust, but verify: run the packet-level simulator on the chosen
	// configuration, heterogeneous payload profiles and all.
	simCfg, err := problem.DefaultSimConfig(params)
	if err != nil {
		log.Fatal(err)
	}
	simRes, err := sim.Run(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	var powers, maxDelay []float64
	for _, n := range simRes.Nodes {
		powers = append(powers, float64(n.Power.Total))
		maxDelay = append(maxDelay, float64(n.Delay.Max))
	}
	meanP := numeric.Mean(powers)
	_, worstDelay := numeric.MinMax(maxDelay)
	fmt.Printf("  simulated: mean node power %.3f mW, worst delay %.0f ms, stable=%v\n",
		meanP*1e3, worstDelay*1e3, simRes.Stable)
	if float64(best.Objs[2]) < worstDelay {
		log.Fatalf("delay bound %.0f ms violated by simulation (%.0f ms)",
			best.Objs[2]*1e3, worstDelay*1e3)
	}
	fmt.Println("  delay bound holds in simulation ✓")
}
