// Hospital: the paper's case study end to end — explore the design space
// of a six-patient ECG ward with NSGA-II over the three-metric model, pick
// a balanced configuration from the Pareto front, and verify it against
// the packet-level simulator.
//
//	go run ./examples/hospital
package main

import (
	"fmt"
	"log"
	"sort"

	"wsndse/internal/casestudy"
	"wsndse/internal/dse"
	"wsndse/internal/numeric"
	"wsndse/internal/sim"
)

func main() {
	problem := casestudy.NewProblem(casestudy.DefaultCalibration())
	fmt.Printf("design space: %.3g configurations\n", problem.Space().Size())

	// Multi-objective search with the analytical model: minimize
	// (E_net, PRD_net, delay_net).
	res, err := dse.NSGA2(problem.Space(), problem.Evaluator(), dse.NSGA2Config{
		PopulationSize: 64,
		Generations:    40,
		Seed:           2026,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NSGA-II evaluated %d configurations (%d infeasible), front has %d points\n",
		res.Evaluated, res.Infeasible, len(res.Front))

	// A ward wants decent everything: rank front points by normalized
	// distance to the ideal corner.
	best := pickBalanced(res.Front)
	params, err := problem.Decode(best.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected balanced configuration:\n")
	fmt.Printf("  MAC: BO=%d SO=%d payload=%dB\n",
		params.BeaconOrder, params.SuperframeOrder, params.PayloadBytes)
	fmt.Printf("  CR per node:   %v\n", params.CR)
	fmt.Printf("  f_µC per node: %v\n", params.MicroFreq)
	fmt.Printf("  model: energy %.3f mW, PRD %.1f%%, delay %.0f ms\n",
		best.Objs[0]*1e3, best.Objs[1], best.Objs[2]*1e3)

	// Trust, but verify: run the packet-level simulator on the chosen
	// configuration.
	simCfg, err := params.SimConfig(problem.Cal, 60, 1)
	if err != nil {
		log.Fatal(err)
	}
	simRes, err := sim.Run(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	var powers, maxDelay []float64
	for _, n := range simRes.Nodes {
		powers = append(powers, float64(n.Power.Total))
		maxDelay = append(maxDelay, float64(n.Delay.Max))
	}
	meanP := numeric.Mean(powers)
	_, worstDelay := numeric.MinMax(maxDelay)
	fmt.Printf("  simulated: mean node power %.3f mW (model err %.2f%%), worst delay %.0f ms, stable=%v\n",
		meanP*1e3, numeric.RelErr(best.Objs[0], meanP), worstDelay*1e3, simRes.Stable)
	if float64(best.Objs[2]) < worstDelay {
		log.Fatalf("delay bound %.0f ms violated by simulation (%.0f ms)",
			best.Objs[2]*1e3, worstDelay*1e3)
	}
	fmt.Println("  delay bound holds in simulation ✓")
}

// pickBalanced returns the front point minimizing the normalized distance
// to the per-objective minima.
func pickBalanced(front []dse.Point) dse.Point {
	m := len(front[0].Objs)
	lo := make([]float64, m)
	hi := make([]float64, m)
	copy(lo, front[0].Objs)
	copy(hi, front[0].Objs)
	for _, p := range front {
		for j, o := range p.Objs {
			if o < lo[j] {
				lo[j] = o
			}
			if o > hi[j] {
				hi[j] = o
			}
		}
	}
	type scored struct {
		p dse.Point
		d float64
	}
	var all []scored
	for _, p := range front {
		var d float64
		for j, o := range p.Objs {
			if hi[j] == lo[j] {
				continue
			}
			n := (o - lo[j]) / (hi[j] - lo[j])
			d += n * n
		}
		all = append(all, scored{p, d})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
	return all[0].p
}
