// Quickstart: build the paper's six-node ECG monitoring WBSN, evaluate it
// with the analytical model, and read the three system-level metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wsndse/internal/casestudy"
	"wsndse/internal/units"
)

func main() {
	// The shipped calibration carries the fitted PRD polynomials; it is
	// the output of one casestudy.Calibrate run over synthetic ECG.
	cal := casestudy.DefaultCalibration()

	// χ: beacon-enabled 802.15.4 with BI = 122.88 ms, an active portion
	// of 61.44 ms, 48-byte frames; every node compresses to 23 % and
	// clocks its microcontroller at 8 MHz.
	params := casestudy.Params{
		BeaconOrder:     3,
		SuperframeOrder: 2,
		PayloadBytes:    48,
		CR:              []float64{0.23, 0.23, 0.23, 0.23, 0.23, 0.23},
		MicroFreq:       []units.Hertz{8e6, 8e6, 8e6, 8e6, 8e6, 8e6},
	}

	net, err := params.Network(cal, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := net.Evaluate()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-node energy (Eq. 7):")
	for i, n := range net.Nodes {
		fmt.Printf("  %-8s %v (sensor %v, µC %v, memory %v, radio %v)\n",
			n.Name, ev.PerNode[i].Total, ev.PerNode[i].Sensor,
			ev.PerNode[i].Micro, ev.PerNode[i].Memory, ev.PerNode[i].Radio)
	}
	fmt.Printf("\nnetwork metrics (Eq. 8, ϑ = 0.5):\n")
	fmt.Printf("  energy  %v\n", ev.Energy)
	fmt.Printf("  quality %.2f %% PRD\n", ev.Quality)
	fmt.Printf("  delay   %v (Eq. 9 worst case)\n", ev.Delay)

	// The same evaluation runs ~10⁴–10⁵ times per second, which is what
	// makes model-driven design-space exploration practical.
}
