// Quickstart: pick the paper's ECG ward from the scenario registry,
// evaluate one configuration with the analytical model, and read the three
// system-level metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wsndse/internal/casestudy"
	"wsndse/internal/scenario"
)

func main() {
	// The registry ships the paper's §4 case study as "ecg-ward"; every
	// other registered scenario works the same way (try "mixed-ward").
	sc, ok := scenario.Lookup("ecg-ward")
	if !ok {
		log.Fatal("ecg-ward not registered")
	}
	problem, err := scenario.NewProblem(sc, casestudy.DefaultCalibration())
	if err != nil {
		log.Fatal(err)
	}

	// FeasibleParams is the scenario's deterministic "reasonable default"
	// configuration — mid-grid when the model accepts it.
	params, err := problem.FeasibleParams()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s: BO=%d SO=%d payload=%dB\n",
		sc.Name, params.BeaconOrder, params.SuperframeOrder, params.PayloadBytes)

	net, err := problem.Network(params)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := net.Evaluate()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-node energy (Eq. 7):")
	for i, n := range net.Nodes {
		fmt.Printf("  %-8s CR=%.2f f=%v: %v (sensor %v, µC %v, memory %v, radio %v)\n",
			n.Name, params.CR[i], n.MicroFreq, ev.PerNode[i].Total, ev.PerNode[i].Sensor,
			ev.PerNode[i].Micro, ev.PerNode[i].Memory, ev.PerNode[i].Radio)
	}
	fmt.Printf("\nnetwork metrics (Eq. 8, ϑ = %.1f):\n", sc.Theta)
	fmt.Printf("  energy  %v\n", ev.Energy)
	fmt.Printf("  quality %.2f %% PRD\n", ev.Quality)
	fmt.Printf("  delay   %v (Eq. 9 worst case)\n", ev.Delay)

	// The same evaluation runs ~10⁴–10⁵ times per second, which is what
	// makes model-driven design-space exploration practical.
}
