// Service walkthrough: boot the exploration service in-process, then
// drive it through service.Client exactly as a remote consumer would —
// list scenarios, submit an NSGA-II job, stream its progress over SSE,
// fetch the Pareto front, take a checkpoint round-trip, and query the
// versioned result store.
//
//	go run ./examples/service
//
// The same flow works against a standalone server (`wsn-serve -addr
// 127.0.0.1:8080`) by pointing service.NewClient at it.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"wsndse/internal/dse"
	"wsndse/internal/service"
)

func main() {
	// 1. Boot the service: a 2-worker job manager behind the HTTP API on a
	// random loopback port (this is everything wsn-serve does).
	manager, err := service.New(service.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer manager.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewHandler(manager)}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := service.NewClient("http://" + ln.Addr().String())

	// 2. Discover workloads.
	scenarios, err := client.Scenarios(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered scenarios:")
	for _, sc := range scenarios {
		fmt.Printf("  %-12s %5.3g configurations  %s\n", sc.Name, sc.SpaceSize, sc.Description)
	}

	// 3. Submit a seeded NSGA-II exploration of the paper's ECG ward. The
	// seed is the determinism key: the same spec returns a bit-identical
	// front no matter what else the service is running.
	spec := service.Spec{
		Scenario:        "ecg-ward",
		Algorithm:       service.AlgoNSGA2,
		Seed:            17,
		Workers:         2,
		NSGA2:           &dse.NSGA2Config{PopulationSize: 32, Generations: 24},
		CheckpointEvery: 8,
	}
	job, err := client.Submit(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubmitted %s (%s on %s, seed %d)\n", job.ID, spec.Algorithm, spec.Scenario, spec.Seed)

	// 4. Stream progress over SSE until the job terminates.
	final, err := client.Wait(ctx, job.ID, func(e service.Event) {
		switch e.Type {
		case "status":
			fmt.Printf("  [%d] status: %s\n", e.Seq, e.Status)
		case "progress":
			p := e.Progress
			fmt.Printf("  [%d] generation %d/%d: front=%d evaluated=%d (%.3g evals/s)\n",
				e.Seq, p.Step, p.TotalSteps, p.FrontSize, p.Evaluated, p.EvalsPerSec)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if final.Status != service.StatusDone {
		log.Fatalf("job ended %s: %s", final.Status, final.Error)
	}

	// 5. Fetch the front.
	front, err := client.Front(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPareto front: %d points over %d evaluations (%d infeasible)\n",
		len(front.Front), front.Evaluated, front.Infeasible)
	show := front.Front
	if len(show) > 5 {
		show = show[:5]
	}
	for _, p := range show {
		fmt.Printf("  energy %8.4f mW   PRD %6.2f %%   delay %7.1f ms\n",
			p.Objs[0]*1e3, p.Objs[1], p.Objs[2]*1e3)
	}

	// 6. Checkpoint round-trip: the job checkpointed every 8 generations;
	// a new job resumed from that snapshot replays the identical run —
	// this is how a redeployed service picks up killed work.
	snap, err := client.Checkpoint(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	resumeSpec := spec
	resumeSpec.Resume = snap
	resumedJob, err := client.Submit(ctx, resumeSpec)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := client.Wait(ctx, resumedJob.ID, nil); err != nil {
		log.Fatal(err)
	}
	resumedFront, err := client.Front(ctx, resumedJob.ID)
	if err != nil {
		log.Fatal(err)
	}
	match := len(resumedFront.Front) == len(front.Front)
	if match {
		for i := range front.Front {
			for j, o := range front.Front[i].Objs {
				if resumedFront.Front[i].Objs[j] != o {
					match = false
				}
			}
		}
	}
	fmt.Printf("\nresumed %s from the generation-%d checkpoint: front bit-identical = %v\n",
		resumedJob.ID, snap.Step, match)

	// 7. The versioned store keeps every finished front queryable,
	// newest-first and paginated.
	results, err := client.ResultsPage(ctx, service.ResultQuery{
		Scenario: "ecg-ward", Algorithm: service.AlgoNSGA2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result store now holds %d ecg-ward/nsga2 fronts (latest version %d)\n",
		results.Total, results.Items[0].Version)

	// 8. Warm start: a new seed exploring the same ward can seed its
	// initial population from the stored fronts instead of starting from
	// random draws — warm_start "auto" resolves the scenario's content
	// key against the store.
	warmSpec := spec
	warmSpec.Seed, warmSpec.Resume, warmSpec.CheckpointEvery = 18, nil, 0
	warmSpec.WarmStart = service.WarmStartAuto
	warmJob, err := client.Submit(ctx, warmSpec)
	if err != nil {
		log.Fatal(err)
	}
	warmFinal, err := client.Wait(ctx, warmJob.ID, nil)
	if err != nil {
		log.Fatal(err)
	}
	if ws := warmFinal.WarmStart; ws != nil {
		fmt.Printf("warm-started %s from store versions %v: %d seed points (exact content match: %v)\n",
			warmJob.ID, ws.Sources, ws.SeedPoints, ws.Exact)
	}
}
