module wsndse

go 1.24
