// Package app models the application layer of a WBSN node: the paper's
// function triple (§3.3) consisting of h (output stream), k (resource
// usage) and e (loss of quality).
//
// The two concrete applications are the case study's ECG compressors: the
// digital wavelet transform (DWT) and compressed sensing (CS). Their
// processing loads follow the paper's characterization — duty cycles
// k_DWT = 2265.6/f_µC and k_CS = 388.8/f_µC with f_µC in kHz, i.e. fixed
// cycle budgets of 2.2656 M and 0.3888 M cycles per second — and their
// quality functions are fifth-order polynomials in the compression ratio,
// fit against measured codec runs (see the casestudy package for the
// calibration that produces them).
package app

import (
	"fmt"

	"wsndse/internal/numeric"
	"wsndse/internal/units"
)

// Usage is the paper's resource-usage vector u = (Duty_app, M_app, γ_app):
// microcontroller duty cycle, resident memory, and memory access rate.
type Usage struct {
	Duty              float64 // fraction of µC time; > 1 means infeasible
	MemoryBytes       float64 // M_app
	AccessesPerSecond float64 // γ_app
}

// Application is the abstract application model. Implementations must be
// cheap to evaluate: the DSE calls these thousands of times per second.
type Application interface {
	// Name identifies the application (e.g. "dwt", "cs").
	Name() string
	// OutputRate is h(φ_in, χ_node): the produced stream in B/s given
	// the input stream in B/s.
	OutputRate(phiIn units.BytesPerSecond) units.BytesPerSecond
	// Usage is k(φ_in, χ_node): the resource usage at µC frequency f.
	Usage(phiIn units.BytesPerSecond, f units.Hertz) Usage
	// Quality is e(φ_in, χ_node): the loss-of-quality estimate; for the
	// ECG compressors this is the PRD in percent (lower is better).
	Quality(phiIn units.BytesPerSecond) float64
}

// Profile is the static characterization of one application kind, the
// constants a designer measures once per firmware implementation.
type Profile struct {
	Name string

	// CyclesPerSecond is the processing load. The paper's duty-cycle
	// characterization k(φ_in, χ_node) = C/f_µC corresponds to a fixed
	// cycle budget C: 2.2656e6 for the Shimmer DWT and 0.3888e6 for CS.
	CyclesPerSecond float64

	// MemoryBytes is the resident working set (buffers, coefficient
	// tables) and AccessesPerSecond the memory traffic γ_app.
	MemoryBytes       float64
	AccessesPerSecond float64

	// CRSensitivity is the relative duty-cycle variation across the CR
	// range — the "marginal dependency on CR" the paper observes and
	// then neglects in the model (§4.3). The analytical model ignores
	// it; the device-level simulator applies it, which contributes to
	// the model-vs-measurement estimation error.
	CRSensitivity float64
}

// DWTProfile is the characterization of the wavelet compressor firmware.
// The cycle budget matches the paper's k_DWT = 2265.6/f_µC[kHz]: heavy
// enough that the duty cycle exceeds 100 % at f_µC = 1 MHz.
func DWTProfile() Profile {
	return Profile{
		Name:              "dwt",
		CyclesPerSecond:   2.2656e6,
		MemoryBytes:       3 * 1024,
		AccessesPerSecond: 9.0e4,
		CRSensitivity:     0.04,
	}
}

// CSProfile is the characterization of the compressed-sensing encoder:
// only sparse additions per sample, hence the much lower budget
// k_CS = 388.8/f_µC[kHz].
func CSProfile() Profile {
	return Profile{
		Name:              "cs",
		CyclesPerSecond:   0.3888e6,
		MemoryBytes:       1536,
		AccessesPerSecond: 2.2e4,
		CRSensitivity:     0.02,
	}
}

// Compression is the concrete Application for the case-study codecs: a
// profile, the configured compression ratio (the CR knob of χ_node) and a
// calibrated quality polynomial P₅(CR).
type Compression struct {
	Profile     Profile
	CR          float64
	QualityPoly numeric.Poly
}

// NewCompression validates and builds a compression application.
func NewCompression(p Profile, cr float64, qualityPoly numeric.Poly) (*Compression, error) {
	if cr <= 0 || cr > 1 {
		return nil, fmt.Errorf("app: %s compression ratio %g out of range (0,1]", p.Name, cr)
	}
	if p.CyclesPerSecond <= 0 {
		return nil, fmt.Errorf("app: %s profile has non-positive cycle budget", p.Name)
	}
	if len(qualityPoly) == 0 {
		return nil, fmt.Errorf("app: %s needs a quality polynomial (run casestudy calibration)", p.Name)
	}
	return &Compression{Profile: p, CR: cr, QualityPoly: qualityPoly}, nil
}

// Name returns the profile name.
func (c *Compression) Name() string { return c.Profile.Name }

// OutputRate implements h: φ_out = φ_in · CR, which holds for both DWT and
// CS (§4.3).
func (c *Compression) OutputRate(phiIn units.BytesPerSecond) units.BytesPerSecond {
	return units.BytesPerSecond(float64(phiIn) * c.CR)
}

// Usage implements k: Duty = C/f_µC, with memory terms from the profile.
// The CR dependence is deliberately omitted, matching the paper's model.
func (c *Compression) Usage(_ units.BytesPerSecond, f units.Hertz) Usage {
	return Usage{
		Duty:              c.Profile.CyclesPerSecond / float64(f),
		MemoryBytes:       c.Profile.MemoryBytes,
		AccessesPerSecond: c.Profile.AccessesPerSecond,
	}
}

// RealCyclesPerSecond is the device-level cycle budget including the
// CR-dependent packing/bookkeeping term the model neglects. The simulator
// uses this; the difference is one source of the model's estimation error.
func (c *Compression) RealCyclesPerSecond() float64 {
	const crRef = 0.275 // center of the case-study CR range
	return c.Profile.CyclesPerSecond * (1 + c.Profile.CRSensitivity*(c.CR-crRef)/0.21)
}

// Quality implements e by evaluating the calibrated PRD polynomial at the
// configured CR.
func (c *Compression) Quality(_ units.BytesPerSecond) float64 {
	return c.QualityPoly.Eval(c.CR)
}

// Passthrough is an application that forwards its input unmodified: no
// compression, no processing load, no quality loss. Useful as a baseline
// and for raw-streaming nodes.
type Passthrough struct{}

// Name returns "passthrough".
func (Passthrough) Name() string { return "passthrough" }

// OutputRate returns the input rate unchanged.
func (Passthrough) OutputRate(phiIn units.BytesPerSecond) units.BytesPerSecond { return phiIn }

// Usage returns a negligible fixed footprint.
func (Passthrough) Usage(_ units.BytesPerSecond, _ units.Hertz) Usage {
	return Usage{Duty: 0, MemoryBytes: 256, AccessesPerSecond: 0}
}

// Quality returns 0: lossless forwarding.
func (Passthrough) Quality(_ units.BytesPerSecond) float64 { return 0 }
