package app

import (
	"math"
	"testing"

	"wsndse/internal/numeric"
	"wsndse/internal/units"
)

var testPoly = numeric.Poly{40, -100, 80} // arbitrary decreasing-ish P₂(CR)

func TestNewCompressionValidation(t *testing.T) {
	if _, err := NewCompression(DWTProfile(), 0, testPoly); err == nil {
		t.Error("cr=0: want error")
	}
	if _, err := NewCompression(DWTProfile(), 1.2, testPoly); err == nil {
		t.Error("cr>1: want error")
	}
	if _, err := NewCompression(DWTProfile(), 0.3, nil); err == nil {
		t.Error("missing quality poly: want error")
	}
	bad := DWTProfile()
	bad.CyclesPerSecond = 0
	if _, err := NewCompression(bad, 0.3, testPoly); err == nil {
		t.Error("zero cycle budget: want error")
	}
	if _, err := NewCompression(CSProfile(), 0.3, testPoly); err != nil {
		t.Errorf("valid CS app rejected: %v", err)
	}
}

func TestOutputRateIsLinearInCR(t *testing.T) {
	// The paper's h: φ_out = φ_in · CR for both codecs.
	for _, cr := range []float64{0.17, 0.23, 0.38} {
		a, err := NewCompression(DWTProfile(), cr, testPoly)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := float64(a.OutputRate(375)), 375*cr; math.Abs(got-want) > 1e-12 {
			t.Errorf("cr=%g: OutputRate = %g, want %g", cr, got, want)
		}
	}
}

func TestDutyCycleMatchesPaper(t *testing.T) {
	// k_DWT = 2265.6/f[kHz]: duty 2.2656 at 1 MHz (infeasible) and
	// 0.2832 at 8 MHz. k_CS = 388.8/f[kHz]: 0.3888 and 0.0486.
	dwt, _ := NewCompression(DWTProfile(), 0.23, testPoly)
	cs, _ := NewCompression(CSProfile(), 0.23, testPoly)
	cases := []struct {
		app  *Compression
		f    units.Hertz
		want float64
	}{
		{dwt, 1e6, 2.2656},
		{dwt, 8e6, 0.2832},
		{cs, 1e6, 0.3888},
		{cs, 8e6, 0.0486},
	}
	for _, c := range cases {
		got := c.app.Usage(375, c.f).Duty
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s at %v Hz: duty = %g, want %g", c.app.Name(), c.f, got, c.want)
		}
	}
	// DWT at 1 MHz is the paper's infeasible configuration.
	if d := dwt.Usage(375, 1e6).Duty; d <= 1 {
		t.Errorf("DWT duty at 1 MHz = %g, expected > 1 (infeasible)", d)
	}
}

func TestUsageIndependentOfCR(t *testing.T) {
	// The model deliberately neglects the CR dependence of the duty
	// cycle (§4.3).
	lo, _ := NewCompression(DWTProfile(), 0.17, testPoly)
	hi, _ := NewCompression(DWTProfile(), 0.38, testPoly)
	if lo.Usage(375, 8e6) != hi.Usage(375, 8e6) {
		t.Error("model-side usage must not depend on CR")
	}
	// But the device-level cycle count does, slightly.
	if lo.RealCyclesPerSecond() >= hi.RealCyclesPerSecond() {
		t.Error("real cycle count should grow with CR (more coefficients to pack)")
	}
	rel := math.Abs(lo.RealCyclesPerSecond()-hi.RealCyclesPerSecond()) / lo.Profile.CyclesPerSecond
	if rel > 0.10 {
		t.Errorf("CR sensitivity %.1f%% too large for a 'marginal' dependency", rel*100)
	}
}

func TestQualityUsesPolynomial(t *testing.T) {
	a, _ := NewCompression(CSProfile(), 0.3, testPoly)
	want := testPoly.Eval(0.3)
	if got := a.Quality(375); math.Abs(got-want) > 1e-12 {
		t.Errorf("Quality = %g, want %g", got, want)
	}
}

func TestProfiles(t *testing.T) {
	d, c := DWTProfile(), CSProfile()
	if d.Name != "dwt" || c.Name != "cs" {
		t.Error("profile names")
	}
	// The paper's central asymmetry: DWT costs ~5.8× the cycles of CS.
	ratio := d.CyclesPerSecond / c.CyclesPerSecond
	if math.Abs(ratio-2265.6/388.8) > 1e-9 {
		t.Errorf("cycle ratio = %g, want %g", ratio, 2265.6/388.8)
	}
}

func TestPassthrough(t *testing.T) {
	var p Passthrough
	if p.Name() != "passthrough" {
		t.Error("name")
	}
	if p.OutputRate(375) != 375 {
		t.Error("passthrough must not change the rate")
	}
	if p.Quality(375) != 0 {
		t.Error("passthrough is lossless")
	}
	if u := p.Usage(375, 1e6); u.Duty != 0 {
		t.Error("passthrough costs no cycles")
	}
}
