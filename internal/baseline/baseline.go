// Package baseline reimplements the comparator of the paper's Figure 5: a
// state-of-the-art energy/delay model in the spirit of Kumar et al. [26]
// ("End-to-End Energy Management in Networked Real-Time Embedded
// Systems").
//
// The baseline sees the same design space and computes the same energy and
// delay the proposed model does — it is not a strawman — but it is
// application-blind: compression appears only through its effect on the
// transmitted data rate, and no quality metric exists. A DSE driven by it
// therefore optimizes over two objectives and recovers only the
// energy/delay silhouette of the true three-dimensional tradeoff surface;
// the paper reports it finds only ≈7 % of the full model's Pareto points.
package baseline

import (
	"fmt"

	"wsndse/internal/casestudy"
	"wsndse/internal/dse"
)

// Evaluator is the 2-objective (energy, delay) evaluator over the case
// study's design space.
type Evaluator struct {
	p *casestudy.Problem
}

// New wraps a case-study problem with the energy/delay-only view.
func New(p *casestudy.Problem) *Evaluator {
	return &Evaluator{p: p}
}

// NumObjectives returns 2.
func (e *Evaluator) NumObjectives() int { return 2 }

// Evaluate computes (E_net, delay_net), discarding application quality.
func (e *Evaluator) Evaluate(c dse.Config) (dse.Objectives, error) {
	params, err := e.p.Decode(c)
	if err != nil {
		return nil, err
	}
	net, err := params.Network(e.p.Cal, e.p.Theta)
	if err != nil {
		return nil, err
	}
	ev, err := net.Evaluate()
	if err != nil {
		return nil, err
	}
	return dse.Objectives{float64(ev.Energy), float64(ev.Delay)}, nil
}

// Projection exposes a subset of a full evaluator's objectives — the
// application-blind energy/delay silhouette generalized beyond the case
// study, so any scenario's three-objective evaluator can be compared
// against its own baseline view.
type Projection struct {
	Full dse.Evaluator
	Idx  []int
}

// Project wraps a full evaluator, keeping only the objectives at the given
// indices (in that order).
func Project(full dse.Evaluator, idx ...int) *Projection {
	return &Projection{Full: full, Idx: idx}
}

// NumObjectives returns the projected dimension.
func (p *Projection) NumObjectives() int { return len(p.Idx) }

// Evaluate runs the full model and drops the hidden objectives.
func (p *Projection) Evaluate(c dse.Config) (dse.Objectives, error) {
	objs, err := p.Full.Evaluate(c)
	if err != nil {
		return nil, err
	}
	out := make(dse.Objectives, len(p.Idx))
	for i, j := range p.Idx {
		if j < 0 || j >= len(objs) {
			return nil, fmt.Errorf("baseline: projection index %d out of range for %d objectives", j, len(objs))
		}
		out[i] = objs[j]
	}
	return out, nil
}

// Lift re-evaluates a 2-objective front under the full 3-metric model so
// it can be compared against the proposed model's front in the common
// objective space (this is how Fig. 5 plots both sets on the same axes).
func Lift(p *casestudy.Problem, front []dse.Point) ([]dse.Point, error) {
	full := p.Evaluator()
	out := make([]dse.Point, 0, len(front))
	for _, pt := range front {
		objs, err := full.Evaluate(pt.Config)
		if err != nil {
			continue // a config feasible for 2 objectives is feasible for 3; be safe anyway
		}
		out = append(out, dse.Point{Config: pt.Config, Objs: objs, Feasible: true})
	}
	return out, nil
}
