package baseline

import (
	"math/rand"
	"testing"

	"wsndse/internal/casestudy"
	"wsndse/internal/core"
	"wsndse/internal/dse"
)

func TestBaselineEvaluates(t *testing.T) {
	p := casestudy.NewProblem(casestudy.DefaultCalibration())
	b := New(p)
	if b.NumObjectives() != 2 {
		t.Error("objective count")
	}
	full := p.Evaluator()
	rng := rand.New(rand.NewSource(2))
	checked := 0
	for i := 0; i < 200 && checked < 30; i++ {
		c := p.Space().Random(rng)
		objs2, err := b.Evaluate(c)
		if err != nil {
			if !core.IsInfeasible(err) {
				t.Fatalf("hard error: %v", err)
			}
			continue
		}
		objs3, err := full.Evaluate(c)
		if err != nil {
			t.Fatalf("full model infeasible where baseline feasible: %v", err)
		}
		// The baseline's energy and delay agree with the full model —
		// it differs only by dropping the quality axis.
		if objs2[0] != objs3[0] || objs2[1] != objs3[2] {
			t.Errorf("baseline objectives %v disagree with full model (%g, %g)",
				objs2, objs3[0], objs3[2])
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d feasible comparisons", checked)
	}
}

func TestLift(t *testing.T) {
	p := casestudy.NewProblem(casestudy.DefaultCalibration())
	b := New(p)
	res, err := dse.RandomSearch(p.Space(), b, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty baseline front")
	}
	lifted, err := Lift(p, res.Front)
	if err != nil {
		t.Fatal(err)
	}
	if len(lifted) != len(res.Front) {
		t.Errorf("lift dropped points: %d vs %d", len(lifted), len(res.Front))
	}
	for i, pt := range lifted {
		if len(pt.Objs) != 3 {
			t.Fatalf("lifted point %d has %d objectives", i, len(pt.Objs))
		}
		if pt.Objs[0] != res.Front[i].Objs[0] || pt.Objs[2] != res.Front[i].Objs[1] {
			t.Errorf("lifted energy/delay disagree at %d", i)
		}
	}
}
