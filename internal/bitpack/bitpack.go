// Package bitpack provides MSB-first fixed-width bit packing, shared by the
// codec packages to serialize quantized coefficients and measurements.
package bitpack

import "fmt"

// Writer packs fixed-width codes MSB-first into a pre-sized byte slice.
// The zero Writer writes at bit position 0 of Buf.
type Writer struct {
	Buf []byte
	pos int // bit position
}

// Write appends the low `bits` bits of v. It panics when the buffer is too
// small, which is always a sizing bug at the call site.
func (w *Writer) Write(v uint32, bits int) {
	if w.pos+bits > len(w.Buf)*8 {
		panic(fmt.Sprintf("bitpack: write of %d bits at position %d overflows %d-byte buffer",
			bits, w.pos, len(w.Buf)))
	}
	for b := bits - 1; b >= 0; b-- {
		if v&(1<<b) != 0 {
			w.Buf[w.pos/8] |= 1 << (7 - w.pos%8)
		}
		w.pos++
	}
}

// Bits returns the number of bits written so far.
func (w *Writer) Bits() int { return w.pos }

// Reader is the matching MSB-first reader.
type Reader struct {
	Buf []byte
	pos int
}

// Read extracts the next `bits` bits. Unlike Write, exhaustion is a data
// error (truncated payload), so it is returned rather than panicking.
func (r *Reader) Read(bits int) (uint32, error) {
	if r.pos+bits > len(r.Buf)*8 {
		return 0, fmt.Errorf("bitpack: stream exhausted at bit %d reading %d bits of %d available",
			r.pos, bits, len(r.Buf)*8)
	}
	var v uint32
	for b := 0; b < bits; b++ {
		v <<= 1
		if r.Buf[r.pos/8]&(1<<(7-r.pos%8)) != 0 {
			v |= 1
		}
		r.pos++
	}
	return v, nil
}

// SignExtend interprets the low `bits` bits of raw as a two's-complement
// integer.
func SignExtend(raw uint32, bits int) int32 {
	v := int32(raw << (32 - bits))
	return v >> (32 - bits)
}
