package bitpack

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	buf := make([]byte, 6)
	w := Writer{Buf: buf}
	vals := []uint32{0x5A3, 0x001, 0xFFF, 0x800}
	for _, v := range vals {
		w.Write(v, 12)
	}
	if w.Bits() != 48 {
		t.Errorf("Bits = %d, want 48", w.Bits())
	}
	r := Reader{Buf: buf}
	for i, want := range vals {
		got, err := r.Read(12)
		if err != nil {
			t.Fatal(err)
		}
		if got != want&0xFFF {
			t.Errorf("value %d: got %03x, want %03x", i, got, want)
		}
	}
	if _, err := r.Read(1); err == nil {
		t.Error("reading past the end should fail")
	}
}

func TestWriteOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overflow write should panic")
		}
	}()
	w := Writer{Buf: make([]byte, 1)}
	w.Write(0, 9)
}

func TestMixedWidthsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		count := 1 + rng.Intn(50)
		widths := make([]int, count)
		vals := make([]uint32, count)
		total := 0
		for i := range widths {
			widths[i] = 1 + rng.Intn(16)
			vals[i] = rng.Uint32() & (1<<widths[i] - 1)
			total += widths[i]
		}
		buf := make([]byte, (total+7)/8)
		w := Writer{Buf: buf}
		for i := range vals {
			w.Write(vals[i], widths[i])
		}
		r := Reader{Buf: buf}
		for i := range vals {
			got, err := r.Read(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		raw  uint32
		bits int
		want int32
	}{
		{0xFFF, 12, -1},
		{0x800, 12, -2048},
		{0x7FF, 12, 2047},
		{0x0, 12, 0},
		{0x3, 2, -1},
		{0x1, 2, 1},
	}
	for _, c := range cases {
		if got := SignExtend(c.raw, c.bits); got != c.want {
			t.Errorf("SignExtend(%#x, %d) = %d, want %d", c.raw, c.bits, got, c.want)
		}
	}
}
