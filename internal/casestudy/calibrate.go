// Package casestudy wires the library into the paper's §4 case study: a
// hospital WBSN of six ECG nodes — three compressing with the discrete
// wavelet transform, three with compressed sensing — on Shimmer-class
// hardware under the beacon-enabled IEEE 802.15.4 MAC.
//
// It owns the calibration step that the paper performs against measured
// data (§4.3): running the actual codecs over an ECG corpus to obtain the
// per-application PRD-vs-CR points, then fitting the fifth-order
// polynomials P₅(CR) the analytical model uses as its quality estimator
// e(φ_in, χ_node).
package casestudy

import (
	"fmt"

	"wsndse/internal/cs"
	"wsndse/internal/dwt"
	"wsndse/internal/ecg"
	"wsndse/internal/numeric"
	"wsndse/internal/quality"
)

// CRGrid is the compression-ratio grid of the paper's Figures 3–4.
func CRGrid() []float64 {
	return []float64{0.17, 0.20, 0.23, 0.26, 0.29, 0.32, 0.35, 0.38}
}

// CalibrationConfig parameterizes a calibration run.
type CalibrationConfig struct {
	Blocks       int       // ECG corpus size in blocks (default 8)
	BlockSamples int       // samples per block (default 512)
	Seed         int64     // ECG generator / CS matrix seed (default 1)
	CRs          []float64 // CR grid (default CRGrid())
	PolyDegree   int       // fit degree (default 5, per the paper)
}

func (c CalibrationConfig) withDefaults() CalibrationConfig {
	if c.Blocks == 0 {
		c.Blocks = 8
	}
	if c.BlockSamples == 0 {
		c.BlockSamples = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CRs == nil {
		c.CRs = CRGrid()
	}
	if c.PolyDegree == 0 {
		c.PolyDegree = 5
	}
	return c
}

// Calibration holds the fitted quality estimators together with the
// measurements they were fit from, so estimation errors (Fig. 4) can be
// recomputed at any time.
type Calibration struct {
	CRs []float64

	// DWTMeasured and CSMeasured are the corpus-mean PRDs at each CR,
	// obtained by actually compressing and reconstructing the signals.
	DWTMeasured []float64
	CSMeasured  []float64

	// DWTPoly and CSPoly are the paper's P₅ estimators fit to the
	// measurements.
	DWTPoly numeric.Poly
	CSPoly  numeric.Poly
}

// Calibrate runs both codecs over a synthetic ECG corpus and fits the
// quality polynomials.
func Calibrate(cfg CalibrationConfig) (*Calibration, error) {
	cfg = cfg.withDefaults()
	if len(cfg.CRs) <= cfg.PolyDegree {
		return nil, fmt.Errorf("casestudy: %d CR points cannot support a degree-%d fit",
			len(cfg.CRs), cfg.PolyDegree)
	}
	gcfg := ecg.DefaultConfig()
	gcfg.Seed = cfg.Seed
	gen, err := ecg.NewGenerator(gcfg)
	if err != nil {
		return nil, err
	}
	adc := ecg.DefaultADC()
	corpus := gen.Corpus(cfg.Blocks, cfg.BlockSamples)
	// Digitize: the node compresses what the ADC saw.
	for i := range corpus {
		corpus[i] = adc.Digitize(corpus[i])
	}

	wavelet := dwt.Daubechies4()
	levels := 5
	if ml := wavelet.MaxLevels(cfg.BlockSamples); levels > ml {
		levels = ml
	}
	dwtCodec := dwt.NewCodec(wavelet, levels)
	csCodec := cs.NewCodec(cfg.BlockSamples, wavelet, levels, cfg.Seed)

	cal := &Calibration{CRs: append([]float64(nil), cfg.CRs...)}
	for _, cr := range cfg.CRs {
		var dwtSum, csSum float64
		for _, block := range corpus {
			z, err := dwtCodec.Compress(block, cr, adc.Bits)
			if err != nil {
				return nil, fmt.Errorf("casestudy: dwt at cr=%g: %w", cr, err)
			}
			rec, err := dwt.Decompress(z.Payload)
			if err != nil {
				return nil, err
			}
			prd, err := quality.PRD(block, rec)
			if err != nil {
				return nil, err
			}
			dwtSum += prd

			zc, err := csCodec.Compress(block, cr, adc.Bits)
			if err != nil {
				return nil, fmt.Errorf("casestudy: cs at cr=%g: %w", cr, err)
			}
			recc, err := csCodec.Decompress(zc.Payload)
			if err != nil {
				return nil, err
			}
			prdc, err := quality.PRD(block, recc)
			if err != nil {
				return nil, err
			}
			csSum += prdc
		}
		cal.DWTMeasured = append(cal.DWTMeasured, dwtSum/float64(len(corpus)))
		cal.CSMeasured = append(cal.CSMeasured, csSum/float64(len(corpus)))
	}

	cal.DWTPoly, err = numeric.PolyFit(cal.CRs, cal.DWTMeasured, cfg.PolyDegree)
	if err != nil {
		return nil, fmt.Errorf("casestudy: DWT fit: %w", err)
	}
	cal.CSPoly, err = numeric.PolyFit(cal.CRs, cal.CSMeasured, cfg.PolyDegree)
	if err != nil {
		return nil, fmt.Errorf("casestudy: CS fit: %w", err)
	}
	return cal, nil
}

// EstimationErrors returns the mean absolute error of each polynomial
// against its calibration measurements, in PRD percentage points — the
// quantity Fig. 4's caption reports (0.46 % DWT, 0.92 % CS in the paper).
func (c *Calibration) EstimationErrors() (dwtErr, csErr float64) {
	for i, cr := range c.CRs {
		dwtErr += abs(c.DWTPoly.Eval(cr) - c.DWTMeasured[i])
		csErr += abs(c.CSPoly.Eval(cr) - c.CSMeasured[i])
	}
	n := float64(len(c.CRs))
	return dwtErr / n, csErr / n
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
