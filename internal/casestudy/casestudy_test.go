package casestudy

import (
	"math"
	"math/rand"
	"testing"

	"wsndse/internal/core"
	"wsndse/internal/dse"
	"wsndse/internal/units"
)

func TestCalibrateProducesSaneCurves(t *testing.T) {
	cal, err := Calibrate(CalibrationConfig{Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.DWTMeasured) != len(cal.CRs) || len(cal.CSMeasured) != len(cal.CRs) {
		t.Fatal("measurement vectors mis-sized")
	}
	for i := range cal.CRs {
		if cal.DWTMeasured[i] <= 0 || cal.CSMeasured[i] <= 0 {
			t.Errorf("PRD at CR=%g not positive", cal.CRs[i])
		}
		// The case study's structural fact: CS loses more quality
		// than DWT at every rate.
		if cal.CSMeasured[i] <= cal.DWTMeasured[i] {
			t.Errorf("CR=%g: CS PRD %.2f not worse than DWT %.2f",
				cal.CRs[i], cal.CSMeasured[i], cal.DWTMeasured[i])
		}
	}
	// Both curves decrease from the lowest to the highest rate.
	last := len(cal.CRs) - 1
	if cal.DWTMeasured[last] >= cal.DWTMeasured[0] {
		t.Error("DWT PRD should improve with CR")
	}
	if cal.CSMeasured[last] >= cal.CSMeasured[0] {
		t.Error("CS PRD should improve with CR")
	}
}

func TestCalibrationEstimationErrorsSmall(t *testing.T) {
	// The Fig. 4 claim: the polynomial estimator tracks the measured
	// PRDs within ≈1 PRD point on average.
	cal := DefaultCalibration()
	dwtErr, csErr := cal.EstimationErrors()
	if dwtErr > 1.0 {
		t.Errorf("DWT estimation error %.3f PRD points, want ≤ 1", dwtErr)
	}
	if csErr > 2.0 {
		t.Errorf("CS estimation error %.3f PRD points, want ≤ 2", csErr)
	}
}

func TestDefaultCalibrationMatchesFreshRun(t *testing.T) {
	if testing.Short() {
		t.Skip("codec calibration is slow")
	}
	fresh, err := Calibrate(CalibrationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	baked := DefaultCalibration()
	for i := range baked.CRs {
		if math.Abs(fresh.DWTMeasured[i]-baked.DWTMeasured[i]) > 1e-3 {
			t.Errorf("DWT point %d drifted: %.4f vs %.4f", i, fresh.DWTMeasured[i], baked.DWTMeasured[i])
		}
		if math.Abs(fresh.CSMeasured[i]-baked.CSMeasured[i]) > 1e-3 {
			t.Errorf("CS point %d drifted: %.4f vs %.4f", i, fresh.CSMeasured[i], baked.CSMeasured[i])
		}
	}
}

func TestCalibrateValidation(t *testing.T) {
	if _, err := Calibrate(CalibrationConfig{CRs: []float64{0.2, 0.3}, PolyDegree: 5}); err == nil {
		t.Error("too few CR points for degree: want error")
	}
}

func defaultParams() Params {
	n := DefaultNodes
	p := Params{
		BeaconOrder:     3,
		SuperframeOrder: 2,
		PayloadBytes:    48,
		CR:              make([]float64, n),
		MicroFreq:       make([]units.Hertz, n),
	}
	for i := 0; i < n; i++ {
		p.CR[i] = 0.23
		p.MicroFreq[i] = 8e6
	}
	return p
}

func TestParamsNetworkEvaluates(t *testing.T) {
	cal := DefaultCalibration()
	net, err := defaultParams().Network(cal, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Nodes) != DefaultNodes {
		t.Fatalf("%d nodes", len(net.Nodes))
	}
	// Half DWT, half CS.
	if net.Nodes[0].App.Name() != "dwt" || net.Nodes[5].App.Name() != "cs" {
		t.Error("kind split wrong")
	}
	ev, err := net.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Energy <= 0 || ev.Quality <= 0 || ev.Delay <= 0 {
		t.Errorf("metrics: %+v", ev)
	}
	// Node powers in the Figure 3 range (single-digit mJ/s).
	for i, eb := range ev.PerNode {
		if eb.Total < 1e-3 || eb.Total > 15e-3 {
			t.Errorf("node %d power %v outside plausible range", i, eb.Total)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	p := defaultParams()
	p.CR = p.CR[:3]
	if err := p.Validate(); err == nil {
		t.Error("mismatched vectors accepted")
	}
	p = defaultParams()
	p.SuperframeOrder = 9
	if err := p.Validate(); err == nil {
		t.Error("SO > BO accepted")
	}
	cal := DefaultCalibration()
	p = defaultParams()
	p.PayloadBytes = 0
	if _, err := p.Network(cal, 0); err == nil {
		t.Error("payload 0 accepted")
	}
}

func TestSimConfigMirrorsModelAssignment(t *testing.T) {
	cal := DefaultCalibration()
	params := defaultParams()
	cfg, err := params.SimConfig(cal, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("sim config invalid: %v", err)
	}
	// The simulator's slot allocation must equal the model's Eq. 1
	// assignment — both sides of the Fig. 3 comparison describe the
	// same network.
	net, err := params.Network(cal, 0)
	if err != nil {
		t.Fatal(err)
	}
	phi := make([]units.BytesPerSecond, len(net.Nodes))
	for i, n := range net.Nodes {
		phi[i] = n.OutputRate()
	}
	a, err := core.Assign(net.MAC, phi)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Nodes {
		if cfg.Nodes[i].Slots != a.K[i] {
			t.Errorf("node %d: sim slots %d vs model k %d", i, cfg.Nodes[i].Slots, a.K[i])
		}
	}
}

func TestProblemSpace(t *testing.T) {
	p := NewProblem(DefaultCalibration())
	s := p.Space()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper: "the number of possible network configurations of this
	// case study exceeds the tens of millions".
	if s.Size() < 1e7 {
		t.Errorf("space size %.3g, want > 10⁷", s.Size())
	}
	if len(s.Params) != 3+2*DefaultNodes {
		t.Errorf("%d genes", len(s.Params))
	}
}

func TestProblemDecode(t *testing.T) {
	p := NewProblem(DefaultCalibration())
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		c := p.Space().Random(rng)
		params, err := p.Decode(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := params.Validate(); err != nil {
			t.Errorf("decoded params invalid: %v", err)
		}
		if params.SuperframeOrder > params.BeaconOrder || params.SuperframeOrder < 0 {
			t.Errorf("SFO %d out of range for BO %d", params.SuperframeOrder, params.BeaconOrder)
		}
	}
	if _, err := p.Decode(dse.Config{0}); err == nil {
		t.Error("short config accepted")
	}
}

func TestProblemEvaluator(t *testing.T) {
	p := NewProblem(DefaultCalibration())
	e := p.Evaluator()
	if e.NumObjectives() != 3 {
		t.Error("objective count")
	}
	rng := rand.New(rand.NewSource(9))
	feasible, infeasible := 0, 0
	for i := 0; i < 300; i++ {
		objs, err := e.Evaluate(p.Space().Random(rng))
		if err != nil {
			if !core.IsInfeasible(err) {
				t.Fatalf("non-constraint error: %v", err)
			}
			infeasible++
			continue
		}
		feasible++
		if len(objs) != 3 {
			t.Fatal("objective vector length")
		}
		for j, o := range objs {
			if o <= 0 || math.IsNaN(o) {
				t.Errorf("objective %d = %g", j, o)
			}
		}
	}
	if feasible == 0 {
		t.Error("no feasible configurations in 300 draws")
	}
	if infeasible == 0 {
		t.Error("no infeasible configurations in 300 draws (constraints too loose)")
	}
}

func TestKindString(t *testing.T) {
	if KindDWT.String() != "dwt" || KindCS.String() != "cs" {
		t.Error("kind names")
	}
	kinds := DefaultKinds(6)
	if kinds[0] != KindDWT || kinds[2] != KindDWT || kinds[3] != KindCS || kinds[5] != KindCS {
		t.Errorf("kind split: %v", kinds)
	}
}
