package casestudy

import (
	"fmt"

	"wsndse/internal/app"
	"wsndse/internal/core"
	"wsndse/internal/dse"
	"wsndse/internal/platform"
	"wsndse/internal/units"
)

// Compiled is the compiled evaluation pipeline of the case study: every
// object the reference evaluator constructs per call — the GTS MAC for the
// (BO, SFO gap, payload) point, the per-node applications for each CR grid
// index, the per-node names — is pre-built once over the whole design
// space, together with the per (application, sample-rate) output rates and
// quality values. Evaluation then reduces to table lookups plus the
// Eq. 1–9 arithmetic of core.EvaluateWithRatesInto, and a steady-state
// evaluation loop performs zero heap allocations.
//
// The compiled evaluator is guaranteed bit-identical to
// Problem.Evaluator(): the tables hold exactly the objects and values the
// reference path would rebuild, and the arithmetic is the same core code.
type Compiled struct {
	nodes int
	theta float64
	names []string
	plat  platform.Platform

	// macs is the flattened (BO × SFO gap × payload) grid; entry
	// (b·nGap + g)·nPay + p holds the MAC (or the construction error the
	// reference evaluator would return for that χ_mac point).
	macs            []core.GTSMacEntry
	nBO, nGap, nPay int

	// Per-node χ_node tables, indexed by the CR and frequency gene values.
	apps    [][]app.Application      // apps[node][crIdx]
	phiIn   []units.BytesPerSecond   // phiIn[node], fixed by the sample rate
	phiOut  [][]units.BytesPerSecond // phiOut[node][crIdx] = h(φ_in)
	quality [][]float64              // quality[node][crIdx] = e(φ_in)
	freqs   []units.Hertz            // the shared f_µC grid
}

// Compile pre-builds the lookup tables of the compiled evaluation
// pipeline. It fails fast on grid values the reference evaluator would
// reject for every configuration (e.g. an out-of-range compression
// ratio); χ_mac points whose MAC construction fails are recorded and
// reported per evaluation instead, exactly like the reference path.
func (p *Problem) Compile() (*Compiled, error) {
	if p.Nodes < 1 {
		return nil, fmt.Errorf("casestudy: Compile: problem has %d nodes", p.Nodes)
	}
	if len(p.BeaconOrders) == 0 || len(p.SFOGaps) == 0 || len(p.Payloads) == 0 ||
		len(p.CRs) == 0 || len(p.MicroFreqs) == 0 {
		return nil, fmt.Errorf("casestudy: Compile: empty design axis")
	}
	if p.Theta < 0 {
		return nil, fmt.Errorf("casestudy: Compile: negative balance weight ϑ=%g", p.Theta)
	}
	t := &Compiled{
		nodes: p.Nodes,
		theta: p.Theta,
		plat:  platform.Shimmer(),
		nBO:   len(p.BeaconOrders),
		nGap:  len(p.SFOGaps),
		nPay:  len(p.Payloads),
		freqs: append([]units.Hertz(nil), p.MicroFreqs...),
	}

	t.macs = core.BuildGTSMacGrid(p.BeaconOrders, p.SFOGaps, p.Payloads, p.Nodes)

	kinds := DefaultKinds(p.Nodes)
	phiIn := t.plat.InputRate(SampleRate)
	t.names = make([]string, p.Nodes)
	t.apps = make([][]app.Application, p.Nodes)
	t.phiIn = make([]units.BytesPerSecond, p.Nodes)
	t.phiOut = make([][]units.BytesPerSecond, p.Nodes)
	t.quality = make([][]float64, p.Nodes)
	for i := 0; i < p.Nodes; i++ {
		t.names[i] = fmt.Sprintf("%s-%d", kinds[i], i)
		t.phiIn[i] = phiIn
		apps := make([]app.Application, len(p.CRs))
		rates := make([]units.BytesPerSecond, len(p.CRs))
		quals := make([]float64, len(p.CRs))
		for j, cr := range p.CRs {
			a, err := AppFor(p.Cal, kinds[i], cr)
			if err != nil {
				return nil, fmt.Errorf("casestudy: Compile: node %d, CR %g: %w", i, cr, err)
			}
			apps[j] = a
			rates[j] = a.OutputRate(phiIn)
			quals[j] = a.Quality(phiIn)
		}
		t.apps[i] = apps
		t.phiOut[i] = rates
		t.quality[i] = quals
	}
	return t, nil
}

// Evaluator returns the compiled three-objective evaluator: minimize
// (E_net [W], PRD_net [%], delay_net [s]), bit-identical to
// Problem.Evaluator() but allocation-free in steady state. It is safe for
// concurrent use and implements dse.IntoEvaluator and dse.Forkable, so
// the batch runtime gives each worker a private scratch instance.
func (t *Compiled) Evaluator() dse.Evaluator {
	return dse.NewPooledForkable(3, func() dse.EvalInto { return newCompiledEval(t).EvaluateInto })
}

// compiledEval is one evaluation context: the shared immutable tables plus
// a private core.Workspace. Not safe for concurrent use.
type compiledEval struct {
	t  *Compiled
	ws *core.Workspace
}

func newCompiledEval(t *Compiled) *compiledEval {
	ws := core.NewWorkspace(t.nodes)
	for i := range ws.Nodes {
		ws.Nodes[i].Name = t.names[i]
		ws.Nodes[i].Platform = t.plat
		ws.Nodes[i].SampleFreq = SampleRate
	}
	ws.Net.Theta = t.theta
	copy(ws.PhiIn, t.phiIn)
	return &compiledEval{t: t, ws: ws}
}

// EvaluateInto is the dse.EvalInto context surface: table lookups re-point the
// workspace at the configuration's pre-built MAC and applications, then
// the shared core arithmetic runs on reused scratch.
func (e *compiledEval) EvaluateInto(c dse.Config, objs dse.Objectives) error {
	t := e.t
	n := t.nodes
	if len(c) != 3+2*n || c[0] < 0 || c[0] >= t.nBO || c[1] < 0 || c[1] >= t.nGap ||
		c[2] < 0 || c[2] >= t.nPay {
		return fmt.Errorf("casestudy: invalid config %v", c)
	}
	me := t.macs[(c[0]*t.nGap+c[1])*t.nPay+c[2]]
	if me.Err != nil {
		return me.Err
	}
	ws := e.ws
	for i := 0; i < n; i++ {
		cr, fi := c[3+i], c[3+n+i]
		if cr < 0 || cr >= len(t.apps[i]) || fi < 0 || fi >= len(t.freqs) {
			return fmt.Errorf("casestudy: invalid config %v", c)
		}
		ws.Nodes[i].App = t.apps[i][cr]
		ws.Nodes[i].MicroFreq = t.freqs[fi]
		ws.PhiOut[i] = t.phiOut[i][cr]
		ws.Quality[i] = t.quality[i][cr]
	}
	ws.Net.MAC = me.MAC
	return ws.Evaluate(objs)
}
