package casestudy

import (
	"math"
	"math/rand"
	"testing"

	"wsndse/internal/core"
	"wsndse/internal/dse"
)

// sameObjs asserts bitwise equality of objective vectors (NaN-safe).
func sameObjs(t *testing.T, label string, c dse.Config, got, want dse.Objectives) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: config %v: %d objectives, want %d", label, c, len(got), len(want))
	}
	for k := range want {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("%s: config %v objective %d: %v (bits %x), want %v (bits %x)",
				label, c, k, got[k], math.Float64bits(got[k]), want[k], math.Float64bits(want[k]))
		}
	}
}

// TestCompiledMatchesReference is the casestudy side of the tentpole
// guarantee: over a large random sample (plus crafted corner points) the
// compiled evaluator returns bit-identical objectives and identical
// feasibility — including the infeasibility class — to the reference
// evaluator.
func TestCompiledMatchesReference(t *testing.T) {
	problem := NewProblem(DefaultCalibration())
	compiled, err := problem.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ref := problem.Evaluator()
	fast := compiled.Evaluator()

	rng := rand.New(rand.NewSource(42))
	configs := make([]dse.Config, 0, 600)
	for i := 0; i < 500; i++ {
		configs = append(configs, problem.Space().Random(rng))
	}
	// Corner points: first and last index of every axis.
	lo := make(dse.Config, len(problem.Space().Params))
	hi := make(dse.Config, len(problem.Space().Params))
	for i, p := range problem.Space().Params {
		hi[i] = len(p.Values) - 1
	}
	configs = append(configs, lo, hi)

	feasible, infeasible := 0, 0
	for _, c := range configs {
		want, werr := ref.Evaluate(c)
		got, gerr := fast.Evaluate(c)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("config %v: reference err %v, compiled err %v", c, werr, gerr)
		}
		if werr != nil {
			if core.IsInfeasible(werr) != core.IsInfeasible(gerr) {
				t.Fatalf("config %v: infeasibility class differs: %v vs %v", c, werr, gerr)
			}
			infeasible++
			continue
		}
		feasible++
		sameObjs(t, "direct", c, got, want)
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("sample covered %d feasible / %d infeasible configs; need both", feasible, infeasible)
	}

	// Invalid configurations must be rejected, not evaluated.
	for _, c := range []dse.Config{nil, {0}, append(hi.Clone(), 0), func() dse.Config {
		c := lo.Clone()
		c[0] = len(problem.BeaconOrders)
		return c
	}()} {
		if _, err := fast.Evaluate(c); err == nil {
			t.Fatalf("compiled evaluator accepted invalid config %v", c)
		}
	}
}

// TestCompiledBatchWorkerEquivalence runs the compiled evaluator through
// the batch runtime at worker counts 1 and 8 and requires both to match
// the reference evaluator's points bit for bit.
func TestCompiledBatchWorkerEquivalence(t *testing.T) {
	problem := NewProblem(DefaultCalibration())
	compiled, err := problem.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	configs := make([]dse.Config, 256)
	for i := range configs {
		configs[i] = problem.Space().Random(rng)
	}
	want := dse.NewParallelEvaluator(problem.Evaluator(), 1).EvaluateBatch(configs)
	for _, workers := range []int{1, 8} {
		got := dse.NewParallelEvaluator(compiled.Evaluator(), workers).EvaluateBatch(configs)
		for i := range want {
			if got[i].Feasible != want[i].Feasible {
				t.Fatalf("workers=%d: config %v feasibility %v, want %v",
					workers, configs[i], got[i].Feasible, want[i].Feasible)
			}
			if want[i].Feasible {
				sameObjs(t, "batch", configs[i], got[i].Objs, want[i].Objs)
			}
		}
	}
}

// TestCompiledSearchEquivalence runs a full NSGA-II search on both
// evaluators: identical fronts prove the compiled pipeline is a drop-in
// replacement for the search algorithms.
func TestCompiledSearchEquivalence(t *testing.T) {
	problem := NewProblem(DefaultCalibration())
	compiled, err := problem.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := dse.NSGA2Config{PopulationSize: 16, Generations: 6, Seed: 3, Workers: 4}
	want, err := dse.NSGA2(problem.Space(), problem.Evaluator(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dse.NSGA2(problem.Space(), compiled.Evaluator(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Evaluated != want.Evaluated || got.Infeasible != want.Infeasible {
		t.Fatalf("counts differ: (%d,%d) vs (%d,%d)",
			got.Evaluated, got.Infeasible, want.Evaluated, want.Infeasible)
	}
	if len(got.Front) != len(want.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(got.Front), len(want.Front))
	}
	for i := range want.Front {
		sameObjs(t, "front", want.Front[i].Config, got.Front[i].Objs, want.Front[i].Objs)
	}
}

// TestCompiledZeroAllocs pins the tentpole's allocation guarantee at the
// casestudy level: a forked compiled instance evaluating into caller
// scratch allocates nothing in steady state.
func TestCompiledZeroAllocs(t *testing.T) {
	problem := NewProblem(DefaultCalibration())
	compiled, err := problem.Compile()
	if err != nil {
		t.Fatal(err)
	}
	eval := compiled.Evaluator().(dse.Forkable).Fork().(dse.IntoEvaluator)

	rng := rand.New(rand.NewSource(1))
	var cfg dse.Config
	for {
		c := problem.Space().Random(rng)
		if _, err := eval.Evaluate(c); err == nil {
			cfg = c
			break
		}
	}
	objs := make(dse.Objectives, 3)
	if err := eval.EvaluateInto(cfg, objs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := eval.EvaluateInto(cfg, objs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("compiled EvaluateInto allocates %.1f objects per call in steady state, want 0", allocs)
	}
}
