package casestudy

import "wsndse/internal/numeric"

// DefaultCalibration returns the calibration shipped with the library: the
// output of Calibrate(CalibrationConfig{}) — 8 blocks of 512 samples,
// seed 1, degree-5 fits — baked in so that model users need not re-run the
// codecs. Regenerate with `wsn-experiments -run calibrate` after touching
// the ECG generator or either codec.
//
// The measured points exhibit the Figure 4 structure: both PRDs decrease
// monotonically with CR, and compressed sensing pays a substantially
// higher reconstruction error than the wavelet transform at every rate.
func DefaultCalibration() *Calibration {
	return &Calibration{
		CRs: CRGrid(),
		DWTMeasured: []float64{
			16.2136, 9.6258, 6.7481, 5.3038, 4.4718, 3.9511, 3.5797, 3.2579,
		},
		CSMeasured: []float64{
			82.1033, 66.2002, 49.0636, 39.1384, 32.7605, 21.4971, 16.9790, 14.7561,
		},
		DWTPoly: numeric.Poly{
			433.98525106207694, -6835.446753701941, 44199.44411778068,
			-144095.4707252549, 235470.19663242422, -153811.46165826204,
		},
		CSPoly: numeric.Poly{
			-1212.6389448671684, 28117.119515493767, -230502.94387231744,
			900524.3848743892, -1.7100156453508288e+06, 1.2709356636994516e+06,
		},
	}
}
