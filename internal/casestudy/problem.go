package casestudy

import (
	"fmt"

	"wsndse/internal/app"
	"wsndse/internal/core"
	"wsndse/internal/dse"
	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/platform"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

// DefaultNodes is the case study's network size (§4.1: N = 6 patients).
const DefaultNodes = 6

// SampleRate is the ECG sampling frequency fixed by the signal (§4.3).
const SampleRate units.Hertz = 250

// Kind labels a node's application.
type Kind int

// Node kinds. The case study splits the network half and half between the
// two compressors; KindRaw (an uncompressed passthrough stream) exists for
// heterogeneous scenarios beyond the paper's §4 network.
const (
	KindDWT Kind = iota
	KindCS
	KindRaw
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindDWT:
		return "dwt"
	case KindCS:
		return "cs"
	case KindRaw:
		return "raw"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefaultKinds assigns the first half of the nodes to DWT and the rest to
// CS, as in §4.1.
func DefaultKinds(n int) []Kind {
	kinds := make([]Kind, n)
	for i := range kinds {
		if i >= n/2 {
			kinds[i] = KindCS
		}
	}
	return kinds
}

// Params is one complete configuration χ = (χ_mac, χ_node⁽¹⁾…χ_node⁽ᴺ⁾) of
// the case study.
type Params struct {
	BeaconOrder     int           // BCO
	SuperframeOrder int           // SFO
	PayloadBytes    int           // L_payload
	CR              []float64     // per node
	MicroFreq       []units.Hertz // per node
	// Kinds optionally assigns each node its application kind; nil keeps
	// the paper's half-DWT/half-CS split (DefaultKinds).
	Kinds []Kind
}

// kinds resolves the per-node application assignment.
func (p Params) kinds() []Kind {
	if p.Kinds != nil {
		return p.Kinds
	}
	return DefaultKinds(len(p.CR))
}

// Validate checks structural consistency (not feasibility).
func (p Params) Validate() error {
	if len(p.CR) == 0 || len(p.CR) != len(p.MicroFreq) {
		return fmt.Errorf("casestudy: %d CRs vs %d frequencies", len(p.CR), len(p.MicroFreq))
	}
	if p.Kinds != nil && len(p.Kinds) != len(p.CR) {
		return fmt.Errorf("casestudy: %d kinds vs %d nodes", len(p.Kinds), len(p.CR))
	}
	sf := ieee.SuperframeConfig{BeaconOrder: p.BeaconOrder, SuperframeOrder: p.SuperframeOrder}
	return sf.Validate()
}

// Network materializes the configuration as a core.Network over the given
// calibration. Node i's application kind follows Kinds, defaulting to the
// paper's DefaultKinds split.
func (p Params) Network(cal *Calibration, theta float64) (*core.Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.CR)
	kinds := p.kinds()
	mac, err := core.NewGTSMac(ieee.SuperframeConfig{
		BeaconOrder:     p.BeaconOrder,
		SuperframeOrder: p.SuperframeOrder,
	}, p.PayloadBytes, n)
	if err != nil {
		return nil, err
	}
	nodes := make([]*core.Node, n)
	for i := 0; i < n; i++ {
		a, err := AppFor(cal, kinds[i], p.CR[i])
		if err != nil {
			return nil, err
		}
		nodes[i] = &core.Node{
			Name:       fmt.Sprintf("%s-%d", kinds[i], i),
			Platform:   platform.Shimmer(),
			App:        a,
			SampleFreq: SampleRate,
			MicroFreq:  p.MicroFreq[i],
		}
	}
	return &core.Network{Nodes: nodes, MAC: mac, Theta: theta}, nil
}

// SimConfig materializes the same configuration for the packet-level
// simulator, with GTS allocations mirroring the model's assignment.
func (p Params) SimConfig(cal *Calibration, duration units.Seconds, seed int64) (sim.Config, error) {
	net, err := p.Network(cal, 0)
	if err != nil {
		return sim.Config{}, err
	}
	sf := ieee.SuperframeConfig{BeaconOrder: p.BeaconOrder, SuperframeOrder: p.SuperframeOrder}
	nodes := make([]sim.NodeConfig, len(net.Nodes))
	for i, n := range net.Nodes {
		nodes[i] = sim.NodeConfig{
			Name:       n.Name,
			Platform:   n.Platform,
			App:        n.App,
			SampleFreq: n.SampleFreq,
			MicroFreq:  n.MicroFreq,
			Slots:      sim.SlotsFor(sf, p.PayloadBytes, float64(n.OutputRate())),
		}
	}
	return sim.Config{
		Superframe:   sf,
		PayloadBytes: p.PayloadBytes,
		Nodes:        nodes,
		Duration:     duration,
		Seed:         seed,
	}, nil
}

// AppFor builds the application for one node kind: the calibrated DWT or
// CS compressor at the given compression ratio, or the lossless
// passthrough for raw-streaming nodes (whose CR is ignored — they always
// forward at CR 1).
func AppFor(cal *Calibration, kind Kind, cr float64) (app.Application, error) {
	switch kind {
	case KindDWT:
		return app.NewCompression(app.DWTProfile(), cr, cal.DWTPoly)
	case KindCS:
		return app.NewCompression(app.CSProfile(), cr, cal.CSPoly)
	case KindRaw:
		return app.Passthrough{}, nil
	default:
		return nil, fmt.Errorf("casestudy: unknown kind %d", kind)
	}
}

// Problem is the DSE formulation of the case study: the design space over
// χ_mac and the per-node χ_node, and the model-based evaluators.
type Problem struct {
	Cal   *Calibration
	Nodes int
	Theta float64

	// Space axes.
	BeaconOrders []int
	SFOGaps      []int // SFO = BO − gap, clamped at 0
	Payloads     []int
	CRs          []float64
	MicroFreqs   []units.Hertz

	space *dse.Space
}

// NewProblem builds the default problem: the §4.1 network with the space
// whose size exceeds the paper's "tens of millions of configurations".
func NewProblem(cal *Calibration) *Problem {
	p := &Problem{
		Cal:          cal,
		Nodes:        DefaultNodes,
		Theta:        0.5,
		BeaconOrders: []int{1, 2, 3, 4, 5, 6},
		SFOGaps:      []int{0, 1, 2, 3},
		Payloads:     []int{32, 48, 64, 80, 102},
		CRs:          CRGrid(),
		MicroFreqs:   platform.Shimmer().MicroFreqs,
	}
	p.space = p.buildSpace()
	return p
}

// buildSpace lays the genes out as:
//
//	0: beacon order, 1: SFO gap, 2: payload,
//	3…3+N−1: per-node CR, 3+N…3+2N−1: per-node f_µC.
func (p *Problem) buildSpace() *dse.Space {
	s := &dse.Space{}
	s.Params = append(s.Params,
		dse.Parameter{Name: "BO", Values: intsToFloats(p.BeaconOrders)},
		dse.Parameter{Name: "SFOgap", Values: intsToFloats(p.SFOGaps)},
		dse.Parameter{Name: "payload", Values: intsToFloats(p.Payloads)},
	)
	crVals := append([]float64(nil), p.CRs...)
	fVals := make([]float64, len(p.MicroFreqs))
	for i, f := range p.MicroFreqs {
		fVals[i] = float64(f)
	}
	for i := 0; i < p.Nodes; i++ {
		s.Params = append(s.Params, dse.Parameter{
			Name: fmt.Sprintf("cr%d", i), Values: crVals,
		})
	}
	for i := 0; i < p.Nodes; i++ {
		s.Params = append(s.Params, dse.Parameter{
			Name: fmt.Sprintf("fuc%d", i), Values: fVals,
		})
	}
	return s
}

// Space returns the design space.
func (p *Problem) Space() *dse.Space { return p.space }

// Decode maps a configuration to case-study parameters. The SFO gene is
// relative (SFO = BO − gap, floored at 0) so every index combination is
// structurally valid.
func (p *Problem) Decode(c dse.Config) (Params, error) {
	if !p.space.Valid(c) {
		return Params{}, fmt.Errorf("casestudy: invalid config %v", c)
	}
	sf := ieee.SuperframeWithGap(int(p.space.Value(c, 0)), int(p.space.Value(c, 1)))
	out := Params{
		BeaconOrder:     sf.BeaconOrder,
		SuperframeOrder: sf.SuperframeOrder,
		PayloadBytes:    int(p.space.Value(c, 2)),
		CR:              make([]float64, p.Nodes),
		MicroFreq:       make([]units.Hertz, p.Nodes),
	}
	for i := 0; i < p.Nodes; i++ {
		out.CR[i] = p.space.Value(c, 3+i)
		out.MicroFreq[i] = units.Hertz(p.space.Value(c, 3+p.Nodes+i))
	}
	return out, nil
}

// evaluator is the 3-objective (energy, quality, delay) model evaluator of
// §3.4 — the one that exposes the full tradeoff space of Fig. 5.
type evaluator struct{ p *Problem }

// Evaluator returns the proposed model's evaluator: minimize
// (E_net [W], PRD_net [%], delay_net [s]).
func (p *Problem) Evaluator() dse.Evaluator { return &evaluator{p: p} }

// NumObjectives returns 3.
func (e *evaluator) NumObjectives() int { return 3 }

// Evaluate runs the analytical model on the decoded configuration.
func (e *evaluator) Evaluate(c dse.Config) (dse.Objectives, error) {
	params, err := e.p.Decode(c)
	if err != nil {
		return nil, err
	}
	net, err := params.Network(e.p.Cal, e.p.Theta)
	if err != nil {
		return nil, err
	}
	ev, err := net.Evaluate()
	if err != nil {
		return nil, err
	}
	return dse.Objectives{float64(ev.Energy), ev.Quality, float64(ev.Delay)}, nil
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
