// Package cliutil holds the small parsing and formatting helpers shared by
// the command-line tools.
package cliutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"wsndse/internal/casestudy"
	"wsndse/internal/units"
)

// StartProfiles starts CPU profiling into cpuPath and arranges a heap
// profile into memPath, honoring empty paths as "off". The returned stop
// function flushes both and must run before process exit (defer it in
// main). This is the -cpuprofile/-memprofile plumbing shared by the CLIs
// so hot-path regressions can be diagnosed with `go tool pprof`.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "-memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "-memprofile:", err)
			}
		}
	}, nil
}

// ParseFloats parses a comma-separated list of floats ("0.23,0.29,0.17").
func ParseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseHertz parses a comma-separated list of frequencies with optional
// k/M suffixes ("1M,8M" or "250").
func ParseHertz(s string) ([]units.Hertz, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]units.Hertz, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		mult := 1.0
		switch {
		case strings.HasSuffix(p, "M"), strings.HasSuffix(p, "m"):
			mult, p = 1e6, p[:len(p)-1]
		case strings.HasSuffix(p, "k"), strings.HasSuffix(p, "K"):
			mult, p = 1e3, p[:len(p)-1]
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad frequency %q: %w", p, err)
		}
		out = append(out, units.Hertz(v*mult))
	}
	return out, nil
}

// BuildParams assembles case-study parameters from the common command-line
// flags, replicating single values across all nodes.
func BuildParams(bo, so, payload, nodes int, crList, fucList string) (casestudy.Params, error) {
	var p casestudy.Params
	crs, err := ParseFloats(crList)
	if err != nil {
		return p, fmt.Errorf("-cr: %w", err)
	}
	fucs, err := ParseHertz(fucList)
	if err != nil {
		return p, fmt.Errorf("-fuc: %w", err)
	}
	if len(crs) == 1 {
		crs = repeatF(crs[0], nodes)
	}
	if len(fucs) == 1 {
		fucs = repeatH(fucs[0], nodes)
	}
	if len(crs) != nodes || len(fucs) != nodes {
		return p, fmt.Errorf("need 1 or %d values per node (got %d CRs, %d frequencies)",
			nodes, len(crs), len(fucs))
	}
	p = casestudy.Params{
		BeaconOrder:     bo,
		SuperframeOrder: so,
		PayloadBytes:    payload,
		CR:              crs,
		MicroFreq:       fucs,
	}
	return p, p.Validate()
}

func repeatF(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func repeatH(v units.Hertz, n int) []units.Hertz {
	out := make([]units.Hertz, n)
	for i := range out {
		out[i] = v
	}
	return out
}
