package cliutil

import (
	"os"
	"testing"

	"wsndse/internal/units"
)

func TestParseFloats(t *testing.T) {
	got, err := ParseFloats("0.17, 0.23,0.38")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.17 || got[2] != 0.38 {
		t.Errorf("ParseFloats = %v", got)
	}
	if _, err := ParseFloats(""); err == nil {
		t.Error("empty accepted")
	}
	if _, err := ParseFloats("1,x,3"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestParseHertz(t *testing.T) {
	got, err := ParseHertz("1M, 8m, 250k,100")
	if err != nil {
		t.Fatal(err)
	}
	want := []units.Hertz{1e6, 8e6, 250e3, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("value %d = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := ParseHertz(""); err == nil {
		t.Error("empty accepted")
	}
	if _, err := ParseHertz("8Q"); err == nil {
		t.Error("bad suffix accepted")
	}
}

func TestBuildParamsBroadcast(t *testing.T) {
	p, err := BuildParams(3, 2, 48, 6, "0.23", "8M")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.CR) != 6 || len(p.MicroFreq) != 6 {
		t.Fatalf("broadcast failed: %+v", p)
	}
	for i := range p.CR {
		if p.CR[i] != 0.23 || p.MicroFreq[i] != 8e6 {
			t.Errorf("node %d: %g, %v", i, p.CR[i], p.MicroFreq[i])
		}
	}
}

func TestBuildParamsPerNode(t *testing.T) {
	p, err := BuildParams(3, 2, 48, 3, "0.17,0.23,0.38", "1M,2M,8M")
	if err != nil {
		t.Fatal(err)
	}
	if p.CR[1] != 0.23 || p.MicroFreq[2] != 8e6 {
		t.Errorf("per-node values lost: %+v", p)
	}
}

func TestBuildParamsErrors(t *testing.T) {
	if _, err := BuildParams(3, 2, 48, 6, "0.2,0.3", "8M"); err == nil {
		t.Error("wrong CR count accepted")
	}
	if _, err := BuildParams(3, 2, 48, 6, "0.2", "8M,1M"); err == nil {
		t.Error("wrong frequency count accepted")
	}
	if _, err := BuildParams(3, 2, 48, 6, "junk", "8M"); err == nil {
		t.Error("bad CR accepted")
	}
	if _, err := BuildParams(3, 2, 48, 6, "0.2", "junk"); err == nil {
		t.Error("bad frequency accepted")
	}
	// SO > BO is structurally invalid.
	if _, err := BuildParams(1, 3, 48, 6, "0.2", "8M"); err == nil {
		t.Error("invalid superframe accepted")
	}
}

func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.out", dir+"/mem.out"
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	// Both off: no-op stop, no files.
	stop, err = StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
	// Unwritable CPU path errors up front.
	if _, err := StartProfiles(dir+"/nope/cpu.out", ""); err == nil {
		t.Error("unwritable -cpuprofile path accepted")
	}
}
