package cliutil

import (
	"fmt"
	"io"
	"strings"

	"wsndse/internal/scenario"
	"wsndse/internal/scenario/family"
)

// EnableFamilies materializes scenario families into the scenario
// registry, as selected by the CLIs' -family flag: "" enables none, "all"
// enables every registered family, anything else is a comma-separated list
// of family names. It returns the number of scenarios newly registered.
func EnableFamilies(spec string) (int, error) {
	switch spec = strings.TrimSpace(spec); spec {
	case "":
		return 0, nil
	case "all":
		return family.EnableAll()
	}
	total := 0
	for _, name := range strings.Split(spec, ",") {
		n, err := family.Enable(strings.TrimSpace(name))
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// LookupScenario resolves a scenario name for a CLI: a plain registered
// name is returned as-is, and a generated "family/member" name
// transparently enables its owning family first, so users can address any
// family member without a separate -family flag.
func LookupScenario(name string) (scenario.Scenario, error) {
	if sc, ok := scenario.Lookup(name); ok {
		return sc, nil
	}
	if fam, ok := family.FamilyOf(name); ok {
		if _, err := family.Enable(fam); err != nil {
			return scenario.Scenario{}, err
		}
		if sc, ok := scenario.Lookup(name); ok {
			return sc, nil
		}
	}
	return scenario.Scenario{}, fmt.Errorf(
		"unknown scenario %q (%d registered — see -list-scenarios; families: %s, enable with -family)",
		name, len(scenario.Names()), strings.Join(family.Names(), ", "))
}

// PrintFamilies writes the family listing: name, member count, axes.
func PrintFamilies(w io.Writer) {
	for _, f := range family.List() {
		fmt.Fprintf(w, "%-14s %4d members — %s\n", f.Name, f.Size(), f.Description)
		for _, ax := range f.Axes {
			fmt.Fprintf(w, "    %-10s %s\n", ax.Name, strings.Join(ax.Values, " "))
		}
	}
}
