package core

import (
	"fmt"
	"math"

	"wsndse/internal/units"
)

// Assignment is the solution of the transmission-interval assignment
// problem of §3.2: per-node interval multipliers k^(n) and the resulting
// per-second intervals Δ_tx^(n) = k^(n)·δ satisfying Eq. 1, with Eq. 2's
// budget accounting.
type Assignment struct {
	// K[i] is the integer multiplier k^(i) of the MAC quantum δ.
	K []int
	// DeltaTx[i] = K[i]·δ is node i's transmission interval in seconds
	// of channel time per second.
	DeltaTx []float64
	// Used is Σ DeltaTx.
	Used float64
	// Capacity is the MAC's assignable budget; Used ≤ Capacity.
	Capacity float64
	// ControlTime is the MAC's structural Δ_control component. Eq. 2
	// balances as Used + ControlTime + Idle = 1.
	ControlTime float64
	// Idle is assignable-but-unused channel time (1 − Used −
	// ControlTime); under Eq. 2's accounting it belongs to Δ_control.
	Idle float64
}

// Assign solves Eq. 1 for every node with the minimal integer multiplier,
//
//	Δ_tx^(n) = k^(n)·δ ≥ T_tx(φ_out^(n) + Ω(φ_out^(n))),
//
// then verifies the capacity constraint derived from Eq. 2. The φ_out
// values are the nodes' application output rates in B/s.
//
// It returns an InfeasibleError when the demanded channel time exceeds the
// MAC's capacity, so DSE can treat the configuration as constraint-
// violating rather than erroring out.
func Assign(mac MAC, phiOut []units.BytesPerSecond) (*Assignment, error) {
	return AssignHetero(mac, nil, phiOut)
}

// AssignHetero solves Eq. 1 for a heterogeneous star: views[i], when
// non-nil, is node i's own view of the shared MAC (e.g. a per-node payload
// profile changing T_tx and the quanta floor), while the base MAC fixes
// the channel geometry every node shares — the quantum δ, the assignable
// capacity, and Δ_control. Views must agree with the base on the quantum,
// since every Δ_tx is an integer multiple of the same slot. A nil views
// slice (or nil entries) reduces to the homogeneous Assign.
func AssignHetero(base MAC, views []MAC, phiOut []units.BytesPerSecond) (*Assignment, error) {
	a := &Assignment{}
	if err := AssignHeteroInto(a, base, views, phiOut); err != nil {
		return nil, err
	}
	return a, nil
}

// AssignHeteroInto is AssignHetero with caller-owned scratch: it solves the
// assignment into a, reusing a's K and DeltaTx slices across calls so the
// evaluation hot path allocates nothing. On error a's contents are
// unspecified. The numbers are bit-identical to AssignHetero's.
func AssignHeteroInto(a *Assignment, base MAC, views []MAC, phiOut []units.BytesPerSecond) error {
	if len(phiOut) == 0 {
		return fmt.Errorf("core: Assign: no nodes")
	}
	if views != nil && len(views) != len(phiOut) {
		return fmt.Errorf("core: Assign: %d MAC views for %d nodes", len(views), len(phiOut))
	}
	delta := base.Quantum()
	if delta <= 0 {
		return fmt.Errorf("core: Assign: MAC %q has non-positive quantum %g", base.Name(), delta)
	}
	capacity := base.Capacity()

	a.K = scratch(a.K, len(phiOut))
	a.DeltaTx = scratch(a.DeltaTx, len(phiOut))
	a.Used = 0
	a.Capacity = capacity
	a.ControlTime = base.ControlTime()
	a.Idle = 0
	for i, phi := range phiOut {
		mac := base
		if views != nil && views[i] != nil {
			mac = views[i]
			if q := mac.Quantum(); math.Abs(q-delta) > 1e-15 {
				return fmt.Errorf("core: Assign: node %d view %q has quantum %g, base %q has %g",
					i, mac.Name(), q, base.Name(), delta)
			}
		}
		if phi < 0 {
			return fmt.Errorf("core: Assign: node %d has negative output rate %g", i, float64(phi))
		}
		need := mac.TxTime(phi)
		if need < 0 {
			return fmt.Errorf("core: Assign: MAC %q returned negative TxTime for %v", mac.Name(), phi)
		}
		k := int(math.Ceil(need/delta - 1e-12)) // tolerate exact multiples
		if k == 0 && phi > 0 {
			k = 1 // a nonzero stream always needs at least one quantum
		}
		if qf, ok := mac.(QuantaFloor); ok {
			if mk := qf.MinQuanta(phi); k < mk {
				k = mk
			}
		}
		a.K[i] = k
		a.DeltaTx[i] = float64(k) * delta
		a.Used += a.DeltaTx[i]
	}
	if a.Used > capacity+1e-12 {
		return Infeasible(
			"transmission demand %.6f s/s exceeds MAC %q capacity %.6f s/s (N=%d nodes)",
			a.Used, base.Name(), capacity, len(phiOut))
	}
	a.Idle = 1 - a.Used - a.ControlTime
	if a.Idle < 0 {
		// Structural control time plus assignments cannot exceed one
		// second; a violation means the MAC's Capacity and
		// ControlTime disagree.
		return fmt.Errorf("core: Assign: MAC %q accounting broken: used %.6f + control %.6f > 1",
			base.Name(), a.Used, a.ControlTime)
	}
	return nil
}
