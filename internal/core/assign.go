package core

import (
	"fmt"
	"math"

	"wsndse/internal/units"
)

// Assignment is the solution of the transmission-interval assignment
// problem of §3.2: per-node interval multipliers k^(n) and the resulting
// per-second intervals Δ_tx^(n) = k^(n)·δ satisfying Eq. 1, with Eq. 2's
// budget accounting.
type Assignment struct {
	// K[i] is the integer multiplier k^(i) of the MAC quantum δ.
	K []int
	// DeltaTx[i] = K[i]·δ is node i's transmission interval in seconds
	// of channel time per second.
	DeltaTx []float64
	// Used is Σ DeltaTx.
	Used float64
	// Capacity is the MAC's assignable budget; Used ≤ Capacity.
	Capacity float64
	// ControlTime is the MAC's structural Δ_control component. Eq. 2
	// balances as Used + ControlTime + Idle = 1.
	ControlTime float64
	// Idle is assignable-but-unused channel time (1 − Used −
	// ControlTime); under Eq. 2's accounting it belongs to Δ_control.
	Idle float64
}

// Assign solves Eq. 1 for every node with the minimal integer multiplier,
//
//	Δ_tx^(n) = k^(n)·δ ≥ T_tx(φ_out^(n) + Ω(φ_out^(n))),
//
// then verifies the capacity constraint derived from Eq. 2. The φ_out
// values are the nodes' application output rates in B/s.
//
// It returns an InfeasibleError when the demanded channel time exceeds the
// MAC's capacity, so DSE can treat the configuration as constraint-
// violating rather than erroring out.
func Assign(mac MAC, phiOut []units.BytesPerSecond) (*Assignment, error) {
	if len(phiOut) == 0 {
		return nil, fmt.Errorf("core: Assign: no nodes")
	}
	delta := mac.Quantum()
	if delta <= 0 {
		return nil, fmt.Errorf("core: Assign: MAC %q has non-positive quantum %g", mac.Name(), delta)
	}
	capacity := mac.Capacity()

	a := &Assignment{
		K:           make([]int, len(phiOut)),
		DeltaTx:     make([]float64, len(phiOut)),
		Capacity:    capacity,
		ControlTime: mac.ControlTime(),
	}
	qf, hasFloor := mac.(QuantaFloor)
	for i, phi := range phiOut {
		if phi < 0 {
			return nil, fmt.Errorf("core: Assign: node %d has negative output rate %g", i, float64(phi))
		}
		need := mac.TxTime(phi)
		if need < 0 {
			return nil, fmt.Errorf("core: Assign: MAC %q returned negative TxTime for %v", mac.Name(), phi)
		}
		k := int(math.Ceil(need/delta - 1e-12)) // tolerate exact multiples
		if k == 0 && phi > 0 {
			k = 1 // a nonzero stream always needs at least one quantum
		}
		if hasFloor {
			if mk := qf.MinQuanta(phi); k < mk {
				k = mk
			}
		}
		a.K[i] = k
		a.DeltaTx[i] = float64(k) * delta
		a.Used += a.DeltaTx[i]
	}
	if a.Used > capacity+1e-12 {
		return nil, Infeasible(
			"transmission demand %.6f s/s exceeds MAC %q capacity %.6f s/s (N=%d nodes)",
			a.Used, mac.Name(), capacity, len(phiOut))
	}
	a.Idle = 1 - a.Used - a.ControlTime
	if a.Idle < 0 {
		// Structural control time plus assignments cannot exceed one
		// second; a violation means the MAC's Capacity and
		// ControlTime disagree.
		return nil, fmt.Errorf("core: Assign: MAC %q accounting broken: used %.6f + control %.6f > 1",
			mac.Name(), a.Used, a.ControlTime)
	}
	return a, nil
}
