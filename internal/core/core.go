// Package core implements the paper's primary contribution: a system-level
// analytical model of wireless body sensor networks that evaluates a full
// network configuration — energy, application quality and delay — in
// microseconds, fast enough to drive design-space exploration where a
// packet-level simulation would take minutes per point.
//
// The model is layered exactly as in the paper:
//
//   - an abstract MAC characterization (§3.2): data overhead Ω, control
//     message volumes Ψ, timing overhead Δ_control and a base time unit δ,
//     plus the transmission-interval assignment problem of Eqs. 1–2;
//   - a node model (§3.3): sensing (Eq. 3), application (the h/k/e triple
//     from the app package), microcontroller (Eq. 4), memory (Eq. 5) and
//     radio (Eq. 6) energies composed into E_node (Eq. 7);
//   - network-level metrics (§3.4): mean-plus-dispersion combinations
//     (Eq. 8) of per-node energy, quality and delay.
//
// All flows are per-second normalized: stream rates in bytes per second,
// energies in joules per second (watts), transmission intervals in seconds
// of channel time per second of wall-clock time.
package core

import (
	"errors"
	"fmt"

	"wsndse/internal/units"
)

// MAC is the abstract medium-access characterization of §3.2. A concrete
// MAC (the beacon-enabled IEEE 802.15.4 of the case study, a generic TDMA,
// or the statistical CSMA/CA extension) maps its protocol parameters χ_mac
// onto these quantities.
type MAC interface {
	// Name identifies the protocol.
	Name() string

	// DataOverhead is Ω(φ_out, χ_mac): the extra bytes per second
	// (headers, checksums) needed to carry a φ_out B/s output stream.
	DataOverhead(phiOut units.BytesPerSecond) units.BytesPerSecond

	// ControlDown is Ψ_c→n(χ_mac): control traffic received by a node
	// (beacons, acknowledgements) in B/s, given the node's output rate.
	ControlDown(phiOut units.BytesPerSecond) units.BytesPerSecond

	// ControlUp is Ψ_n→c(χ_mac): control traffic sent by a node beyond
	// its data stream, in B/s.
	ControlUp(phiOut units.BytesPerSecond) units.BytesPerSecond

	// ControlTime is the structural part of Δ_control(χ_mac): the
	// fraction of every second during which the channel is unavailable
	// to node payload transmissions (beacons, contention periods,
	// inactive portions). Together with unallocated capacity it
	// completes Eq. 2: Σ Δ_tx + Δ_control = 1.
	ControlTime() float64

	// Quantum is the per-second transmission-time quantum δ: assigned
	// intervals Δ_tx are integer multiples of it (Eq. 1's k·δ after
	// per-second normalization).
	Quantum() float64

	// Capacity bounds Σ Δ_tx, the total per-second channel time
	// assignable to nodes (e.g. 7/16 · SD/BI for 802.15.4 GTSs).
	Capacity() float64

	// TxTime is T_tx(φ_out + Ω): the seconds of channel time per second
	// needed to deliver the node's stream, including every per-packet
	// cost the physical radio imposes inside the node's interval
	// (PHY encapsulation, turnaround, acknowledgement, inter-frame
	// spacing).
	TxTime(phiOut units.BytesPerSecond) float64

	// AirOverheadUp and AirOverheadDown are the PHY encapsulation rates
	// (preamble/SFD/PHR bytes per second) transmitted by, respectively
	// received at, the node. The paper folds these into its calibrated
	// per-bit energies; with an explicit physical layer they appear as
	// separate terms of the radio energy.
	AirOverheadUp(phiOut units.BytesPerSecond) units.BytesPerSecond
	AirOverheadDown(phiOut units.BytesPerSecond) units.BytesPerSecond
}

// QuantaFloor is implemented by MACs whose protocol imposes a minimum
// interval size beyond the average-rate demand of Eq. 1 — for 802.15.4
// GTSs, a window must fit at least one whole packet service. Assign
// consults it when present.
type QuantaFloor interface {
	MinQuanta(phiOut units.BytesPerSecond) int
}

// DelayBound is implemented by MACs that can bound the data delay d(χ_mac)
// of §3.2 analytically, like the 802.15.4 GTS worst case of Eq. 9.
type DelayBound interface {
	// WorstCaseDelay bounds the delay of node n's data given every
	// node's assigned transmission interval (per-second normalized).
	// The result is in seconds.
	WorstCaseDelay(deltaTx []float64, n int) units.Seconds
}

// InfeasibleError marks a configuration that violates a physical or
// protocol constraint: duty cycle above 100 %, GTS capacity exhausted,
// memory footprint beyond the platform, and so on. The DSE layer treats
// these as constraint violations rather than hard failures.
type InfeasibleError struct {
	Reason string
}

// Error implements the error interface.
func (e *InfeasibleError) Error() string { return "core: infeasible configuration: " + e.Reason }

// Infeasible builds an InfeasibleError with formatting.
func Infeasible(format string, args ...any) error {
	return &InfeasibleError{Reason: fmt.Sprintf(format, args...)}
}

// IsInfeasible reports whether err marks an infeasible configuration.
func IsInfeasible(err error) bool {
	var ie *InfeasibleError
	return errors.As(err, &ie)
}
