package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"wsndse/internal/app"
	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/numeric"
	"wsndse/internal/platform"
	"wsndse/internal/units"
)

// Calibration-free quality polynomials for tests.
var (
	dwtPoly = numeric.Poly{30, -120, 140, 0, 0, 0}
	csPoly  = numeric.Poly{60, -220, 230, 0, 0, 0}
)

func testMAC(t *testing.T, bo, so, payload, nodes int) *GTSMac {
	t.Helper()
	m, err := NewGTSMac(ieee.SuperframeConfig{BeaconOrder: bo, SuperframeOrder: so}, payload, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testNode(t *testing.T, name, kind string, cr float64, fuc units.Hertz) *Node {
	t.Helper()
	var profile app.Profile
	var poly numeric.Poly
	switch kind {
	case "dwt":
		profile, poly = app.DWTProfile(), dwtPoly
	case "cs":
		profile, poly = app.CSProfile(), csPoly
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	a, err := app.NewCompression(profile, cr, poly)
	if err != nil {
		t.Fatal(err)
	}
	return &Node{
		Name:       name,
		Platform:   platform.Shimmer(),
		App:        a,
		SampleFreq: 250,
		MicroFreq:  fuc,
	}
}

func testNetwork(t *testing.T, n int, cr float64, fuc units.Hertz) *Network {
	t.Helper()
	nodes := make([]*Node, n)
	for i := range nodes {
		kind := "dwt"
		if i >= n/2 {
			kind = "cs"
		}
		nodes[i] = testNode(t, fmt.Sprintf("node%d", i), kind, cr, fuc)
	}
	mac := testMAC(t, 3, 2, 48, n)
	return &Network{Nodes: nodes, MAC: mac, Theta: 0.5}
}

func TestInfeasibleError(t *testing.T) {
	err := Infeasible("reason %d", 42)
	if !IsInfeasible(err) {
		t.Error("Infeasible not detected")
	}
	if IsInfeasible(errors.New("plain")) {
		t.Error("plain error misdetected")
	}
	if IsInfeasible(nil) {
		t.Error("nil misdetected")
	}
	wrapped := fmt.Errorf("context: %w", err)
	if !IsInfeasible(wrapped) {
		t.Error("wrapped infeasible not detected")
	}
}

func TestNodeRates(t *testing.T) {
	n := testNode(t, "a", "dwt", 0.23, 8e6)
	// φ_in = 250 Hz × 1.5 B = 375 B/s, the paper's constant.
	if got := float64(n.InputRate()); got != 375 {
		t.Errorf("InputRate = %g, want 375", got)
	}
	if got, want := float64(n.OutputRate()), 375*0.23; math.Abs(got-want) > 1e-12 {
		t.Errorf("OutputRate = %g, want %g", got, want)
	}
}

func TestNodeEnergyBreakdown(t *testing.T) {
	n := testNode(t, "a", "cs", 0.23, 8e6)
	mac := testMAC(t, 2, 2, 80, 1)
	eb, err := n.Energy(mac)
	if err != nil {
		t.Fatal(err)
	}
	if eb.Sensor <= 0 || eb.Micro <= 0 || eb.Memory <= 0 || eb.Radio <= 0 {
		t.Errorf("all terms must be positive: %+v", eb)
	}
	sum := eb.Sensor + eb.Micro + eb.Memory + eb.Radio
	if math.Abs(float64(sum-eb.Total)) > 1e-18 {
		t.Errorf("Total %v ≠ sum of terms %v", eb.Total, sum)
	}
	// Node power must be in the single-digit mW range of Figure 3.
	if eb.Total < 1e-3 || eb.Total > 20e-3 {
		t.Errorf("node power %v outside the plausible range", eb.Total)
	}
}

func TestDWTInfeasibleAt1MHz(t *testing.T) {
	// The paper: "the model also predicts that the DWT cannot complete
	// its execution with f_µC = 1 MHz because its duty cycle exceeds
	// 100%".
	n := testNode(t, "a", "dwt", 0.23, 1e6)
	mac := testMAC(t, 2, 2, 80, 1)
	_, err := n.Energy(mac)
	if !IsInfeasible(err) {
		t.Fatalf("DWT at 1 MHz: err = %v, want infeasible", err)
	}
	// CS at 1 MHz is fine (duty 0.3888).
	c := testNode(t, "b", "cs", 0.23, 1e6)
	if _, err := c.Energy(mac); err != nil {
		t.Errorf("CS at 1 MHz should be feasible: %v", err)
	}
}

func TestEnergyMonotoneInCR(t *testing.T) {
	// More output data (higher CR) costs more radio energy, everything
	// else equal.
	mac := testMAC(t, 2, 2, 80, 1)
	var prev float64 = -1
	for _, cr := range []float64{0.17, 0.23, 0.29, 0.35} {
		n := testNode(t, "a", "cs", cr, 8e6)
		eb, err := n.Energy(mac)
		if err != nil {
			t.Fatal(err)
		}
		if float64(eb.Radio) <= prev {
			t.Errorf("radio energy at CR=%g (%v) not increasing", cr, eb.Radio)
		}
		prev = float64(eb.Radio)
	}
}

func TestEnergyMonotoneInMicroFreq(t *testing.T) {
	// Duty·(α1·f+α0) with duty = C/f: µC energy = C·α1 + C·α0/f, which
	// *decreases* with f (same cycles, less fixed-overhead time). The
	// model must reproduce that shape.
	mac := testMAC(t, 2, 2, 80, 1)
	lo := testNode(t, "a", "cs", 0.23, 2e6)
	hi := testNode(t, "b", "cs", 0.23, 16e6)
	elo, err := lo.Energy(mac)
	if err != nil {
		t.Fatal(err)
	}
	ehi, err := hi.Energy(mac)
	if err != nil {
		t.Fatal(err)
	}
	if ehi.Micro >= elo.Micro {
		t.Errorf("µC energy at 16 MHz (%v) should undercut 2 MHz (%v) for fixed cycle budgets",
			ehi.Micro, elo.Micro)
	}
}

func TestAssignSatisfiesEquations(t *testing.T) {
	mac := testMAC(t, 3, 2, 48, 6)
	phi := []units.BytesPerSecond{64, 86, 64, 120, 86, 143}
	a, err := Assign(mac, phi)
	if err != nil {
		t.Fatal(err)
	}
	delta := mac.Quantum()
	for i, phiOut := range phi {
		// Eq. 1: Δ_tx = k·δ ≥ T_tx(φ_out + Ω).
		if got := float64(a.K[i]) * delta; math.Abs(got-a.DeltaTx[i]) > 1e-15 {
			t.Errorf("node %d: DeltaTx %g ≠ k·δ %g", i, a.DeltaTx[i], got)
		}
		if a.DeltaTx[i] < mac.TxTime(phiOut)-1e-12 {
			t.Errorf("node %d: Δtx %g below demand %g", i, a.DeltaTx[i], mac.TxTime(phiOut))
		}
		// Minimality: one fewer slot must not satisfy the demand.
		if a.K[i] > 1 {
			if float64(a.K[i]-1)*delta >= mac.TxTime(phiOut) {
				t.Errorf("node %d: k=%d not minimal", i, a.K[i])
			}
		}
	}
	// Eq. 2 accounting: Used + ControlTime + Idle = 1.
	if got := a.Used + a.ControlTime + a.Idle; math.Abs(got-1) > 1e-12 {
		t.Errorf("Eq.2 balance = %g, want 1", got)
	}
	if a.Used > a.Capacity {
		t.Errorf("capacity violated: %g > %g", a.Used, a.Capacity)
	}
}

func TestAssignInfeasibleWhenOverloaded(t *testing.T) {
	// A short superframe with heavy streams cannot fit 6 nodes.
	mac := testMAC(t, 6, 0, 32, 6) // BI = 983ms, SD = 15.36ms → tiny capacity
	phi := make([]units.BytesPerSecond, 6)
	for i := range phi {
		phi[i] = 375 // uncompressed streams
	}
	_, err := Assign(mac, phi)
	if !IsInfeasible(err) {
		t.Fatalf("err = %v, want infeasible", err)
	}
}

func TestAssignEdgeCases(t *testing.T) {
	mac := testMAC(t, 2, 2, 80, 2)
	if _, err := Assign(mac, nil); err == nil {
		t.Error("no nodes: want error")
	}
	if _, err := Assign(mac, []units.BytesPerSecond{-5}); err == nil {
		t.Error("negative rate: want error")
	}
	// A zero-rate node consumes no slots.
	a, err := Assign(mac, []units.BytesPerSecond{0, 86})
	if err != nil {
		t.Fatal(err)
	}
	if a.K[0] != 0 {
		t.Errorf("zero-rate node got %d slots", a.K[0])
	}
	if a.K[1] < 1 {
		t.Error("non-zero-rate node needs at least one slot")
	}
}

func TestWorstCaseDelayProperties(t *testing.T) {
	mac := testMAC(t, 3, 2, 48, 6)
	phi := []units.BytesPerSecond{64, 86, 64, 120, 86, 143}
	a, err := Assign(mac, phi)
	if err != nil {
		t.Fatal(err)
	}
	bi := float64(mac.Superframe.BeaconInterval())
	for n := range phi {
		d := float64(mac.WorstCaseDelay(a.DeltaTx, n))
		if d <= 0 {
			t.Errorf("node %d: delay bound %g must be positive", n, d)
		}
		// The bound is at most a couple of beacon intervals for a
		// single-superframe-capacity network.
		if d > 3*bi {
			t.Errorf("node %d: delay bound %g implausibly large (BI=%g)", n, d, bi)
		}
	}
	// A node competing with heavier traffic waits longer: give node 0
	// the largest share and compare bounds of the others.
	if got := mac.WorstCaseDelay(a.DeltaTx, -1); !math.IsNaN(float64(got)) {
		t.Error("out-of-range node index should yield NaN")
	}
}

func TestWorstCaseDelayScalesWithBeaconInterval(t *testing.T) {
	// Under a per-superframe repeating schedule the bound is governed by
	// the beacon interval: doubling BO (at fixed SO gap) roughly doubles
	// the worst-case delay. This is the energy/delay lever of the DSE:
	// long beacon intervals save beacon energy but cost latency.
	phi := []units.BytesPerSecond{64, 86, 86}
	short := testMAC(t, 4, 3, 102, 3)
	long := testMAC(t, 6, 5, 102, 3)
	as, err := Assign(short, phi)
	if err != nil {
		t.Fatal(err)
	}
	al, err := Assign(long, phi)
	if err != nil {
		t.Fatal(err)
	}
	ds := float64(short.WorstCaseDelay(as.DeltaTx, 0))
	dl := float64(long.WorstCaseDelay(al.DeltaTx, 0))
	if dl <= ds {
		t.Errorf("longer beacon interval should raise the bound: %g vs %g", dl, ds)
	}
	ratio := dl / ds
	if ratio < 2 || ratio > 6 {
		t.Errorf("bound ratio %g for 4× BI, want roughly proportional", ratio)
	}
	// The bound always clears one beacon interval: data generated right
	// after service waits for the next superframe.
	if ds < float64(short.Superframe.BeaconInterval()) {
		t.Errorf("bound %g below one beacon interval", ds)
	}
}

func TestCombineMatchesEq8(t *testing.T) {
	vals := []float64{2, 4, 6}
	mean := 4.0
	sd := numeric.SampleStdDev(vals)
	if got := Combine(vals, 0); got != mean {
		t.Errorf("theta=0: %g, want mean %g", got, mean)
	}
	if got := Combine(vals, 1.5); math.Abs(got-(mean+1.5*sd)) > 1e-12 {
		t.Errorf("theta=1.5: %g, want %g", got, mean+1.5*sd)
	}
}

func TestNetworkEvaluate(t *testing.T) {
	net := testNetwork(t, 6, 0.23, 8e6)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	ev, err := net.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.PerNode) != 6 || len(ev.PerNodeQuality) != 6 || len(ev.PerNodeDelay) != 6 {
		t.Fatal("wrong vector lengths")
	}
	if ev.Energy <= 0 {
		t.Errorf("network energy %v must be positive", ev.Energy)
	}
	if ev.Quality <= 0 {
		t.Errorf("network PRD %g must be positive", ev.Quality)
	}
	if ev.Delay <= 0 {
		t.Errorf("network delay %v must be positive", ev.Delay)
	}
	// Balanced nodes of two kinds: energy metric must exceed the plain
	// mean because ϑ > 0 and DWT ≠ CS consumption.
	var mean float64
	for _, eb := range ev.PerNode {
		mean += float64(eb.Total)
	}
	mean /= 6
	if float64(ev.Energy) <= mean {
		t.Errorf("Eq.8 with ϑ>0 should exceed the mean (%g vs %g)", float64(ev.Energy), mean)
	}
}

func TestNetworkEvaluateInfeasiblePropagates(t *testing.T) {
	net := testNetwork(t, 6, 0.23, 1e6) // DWT nodes infeasible at 1 MHz
	_, err := net.Evaluate()
	if !IsInfeasible(err) {
		t.Fatalf("err = %v, want infeasible", err)
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := (&Network{}).Evaluate(); err == nil {
		t.Error("empty network: want error")
	}
	n := testNode(t, "a", "cs", 0.23, 8e6)
	if _, err := (&Network{Nodes: []*Node{n}}).Evaluate(); err == nil {
		t.Error("missing MAC: want error")
	}
	mac := testMAC(t, 2, 2, 80, 1)
	if _, err := (&Network{Nodes: []*Node{n}, MAC: mac, Theta: -1}).Evaluate(); err == nil {
		t.Error("negative theta: want error")
	}
	bad := &Node{Name: "bad"}
	if err := (&Network{Nodes: []*Node{bad}, MAC: mac}).Validate(); err == nil {
		t.Error("invalid node accepted")
	}
}

func TestGTSMacValidation(t *testing.T) {
	sf := ieee.SuperframeConfig{BeaconOrder: 2, SuperframeOrder: 2}
	if _, err := NewGTSMac(sf, 0, 3); err == nil {
		t.Error("payload 0: want error")
	}
	if _, err := NewGTSMac(sf, 200, 3); err == nil {
		t.Error("payload beyond 114: want error")
	}
	if _, err := NewGTSMac(sf, 80, 0); err == nil {
		t.Error("no nodes: want error")
	}
	if _, err := NewGTSMac(sf, 80, 8); !IsInfeasible(err) {
		t.Error("8 nodes > 7 GTSs: want infeasible")
	}
	if _, err := NewGTSMac(ieee.SuperframeConfig{BeaconOrder: 1, SuperframeOrder: 2}, 80, 3); err == nil {
		t.Error("SO > BO: want error")
	}
}

func TestGTSMacPaperFormulas(t *testing.T) {
	mac := testMAC(t, 2, 1, 80, 6)
	phi := units.BytesPerSecond(86.25) // 375 × 0.23
	// Ω = 13·φ/L.
	if got, want := float64(mac.DataOverhead(phi)), 13*86.25/80; math.Abs(got-want) > 1e-12 {
		t.Errorf("Ω = %g, want %g", got, want)
	}
	// Ψ_n→c = 0.
	if got := float64(mac.ControlUp(phi)); got != 0 {
		t.Errorf("Ψ_n→c = %g, want 0", got)
	}
	// Ψ_c→n = 4·φ/L + L_beacon/BI.
	bi := float64(mac.Superframe.BeaconInterval())
	want := 4*86.25/80 + float64(ieee.BeaconBytes(6))/bi
	if got := float64(mac.ControlDown(phi)); math.Abs(got-want) > 1e-12 {
		t.Errorf("Ψ_c→n = %g, want %g", got, want)
	}
	// Capacity = 7/16 · SD/BI.
	sd := float64(mac.Superframe.SuperframeDuration())
	if got, want := mac.Capacity(), 7.0/16*sd/bi; math.Abs(got-want) > 1e-15 {
		t.Errorf("capacity = %g, want %g", got, want)
	}
	// Quantum: slot per second.
	if got, want := mac.Quantum(), sd/16/bi; math.Abs(got-want) > 1e-15 {
		t.Errorf("quantum = %g, want %g", got, want)
	}
	// Eq.2 closure: ControlTime = 1 − capacity.
	if got := mac.ControlTime() + mac.Capacity(); math.Abs(got-1) > 1e-15 {
		t.Errorf("ControlTime + Capacity = %g, want 1", got)
	}
}

func TestGTSTxTimeComponents(t *testing.T) {
	mac := testMAC(t, 2, 1, 80, 2)
	if got := mac.TxTime(0); got != 0 {
		t.Errorf("TxTime(0) = %g", got)
	}
	// TxTime must exceed the raw air time of the payload alone and grow
	// linearly with the stream.
	t1 := mac.TxTime(80)
	t2 := mac.TxTime(160)
	if t1 <= float64(ieee.AirTime(80)) {
		t.Error("TxTime must include per-packet costs")
	}
	if math.Abs(t2-2*t1) > 1e-12 {
		t.Errorf("TxTime not linear: %g vs 2×%g", t2, t1)
	}
}

func TestEvaluateMatchesManualEq7(t *testing.T) {
	// Cross-check Evaluate against a hand-computed Eq. 3–7 composition
	// for a single CS node.
	n := testNode(t, "a", "cs", 0.23, 8e6)
	mac := testMAC(t, 2, 2, 80, 1)
	eb, err := n.Energy(mac)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Platform
	phiIn := 375.0
	phiOut := phiIn * 0.23
	usage := n.App.Usage(units.BytesPerSecond(phiIn), 8e6)

	sensor := float64(p.Sensor.TransducerPower) + float64(p.Sensor.Alpha1)*250 + float64(p.Sensor.Alpha0)
	micro := usage.Duty * (float64(p.Micro.Alpha1)*8e6 + float64(p.Micro.Alpha0))
	active := usage.AccessesPerSecond * float64(p.Memory.AccessTime)
	mem := active*float64(p.Memory.AccessPower) + (1-active)*8*usage.MemoryBytes*float64(p.Memory.BitIdlePower)
	etx := float64(p.Radio.EnergyPerBitTx())
	erx := float64(p.Radio.EnergyPerBitRx())
	packets := phiOut / 80
	up := phiOut + 13*packets + 6*packets
	down := 4*packets + float64(ieee.BeaconBytes(1))/float64(mac.Superframe.BeaconInterval()) +
		6*(packets+1/float64(mac.Superframe.BeaconInterval()))
	radioW := 8*up*etx + 8*down*erx + float64(p.Radio.SleepPower)

	if math.Abs(float64(eb.Sensor)-sensor) > 1e-15 {
		t.Errorf("sensor %g vs manual %g", float64(eb.Sensor), sensor)
	}
	if math.Abs(float64(eb.Micro)-micro) > 1e-15 {
		t.Errorf("micro %g vs manual %g", float64(eb.Micro), micro)
	}
	if math.Abs(float64(eb.Memory)-mem) > 1e-15 {
		t.Errorf("memory %g vs manual %g", float64(eb.Memory), mem)
	}
	if math.Abs(float64(eb.Radio)-radioW) > 1e-12 {
		t.Errorf("radio %g vs manual %g", float64(eb.Radio), radioW)
	}
}
