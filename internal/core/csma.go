package core

import (
	"fmt"
	"math"

	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/units"
)

// CSMAMac adapts the abstract model to contention access, following the
// paper's remark (§3.2) that for CSMA/CA the Δ_tx's can be determined
// statistically as the average channel time a node can successfully use
// per second (after Buratti's analysis of the beacon-enabled slotted
// CSMA/CA [19]).
//
// The characterization is intentionally first-order:
//
//   - each contender attempts a transmission in a backoff slot with
//     probability τ = 2/(CW+1);
//   - a tagged node's attempt succeeds when no other node attempts in the
//     same slot: q = (1−τ)^(N−1);
//   - every packet therefore costs 1/q transmissions on average, which
//     inflates both the channel time and the transmitted bytes (the
//     "average amount of retransmitted data can be added to the original
//     φ_out", §3.3);
//   - clear-channel assessment and backoff waiting keep the receiver on;
//     that listening cost enters the model as equivalent received bytes so
//     the Eq. 6 energy shape is preserved.
type CSMAMac struct {
	Superframe   ieee.SuperframeConfig
	PayloadBytes int
	NumNodes     int
	// ContentionWindow is the average backoff window in backoff units
	// (aUnitBackoffPeriod = 20 symbols); 8 corresponds to macMinBE = 3.
	ContentionWindow int
}

// NewCSMAMac validates the parameters and builds the contention MAC model.
func NewCSMAMac(sf ieee.SuperframeConfig, payloadBytes, numNodes, cw int) (*CSMAMac, error) {
	if err := sf.Validate(); err != nil {
		return nil, err
	}
	if payloadBytes < 1 || payloadBytes > ieee.MaxDataPayload {
		return nil, fmt.Errorf("core: CSMA payload %d out of range [1,%d]", payloadBytes, ieee.MaxDataPayload)
	}
	if numNodes < 1 {
		return nil, fmt.Errorf("core: CSMA needs at least one node, got %d", numNodes)
	}
	if cw < 2 {
		return nil, fmt.Errorf("core: CSMA contention window %d must be ≥ 2", cw)
	}
	return &CSMAMac{Superframe: sf, PayloadBytes: payloadBytes, NumNodes: numNodes, ContentionWindow: cw}, nil
}

// Name identifies the MAC.
func (m *CSMAMac) Name() string { return "ieee802.15.4-csma" }

// attemptProb is τ, the per-backoff-slot attempt probability.
func (m *CSMAMac) attemptProb() float64 { return 2 / float64(m.ContentionWindow+1) }

// successProb is q = (1−τ)^(N−1): a tagged attempt sees a clear slot.
func (m *CSMAMac) successProb() float64 {
	return math.Pow(1-m.attemptProb(), float64(m.NumNodes-1))
}

// ExpectedTransmissions is 1/q, the mean attempts per delivered packet.
func (m *CSMAMac) ExpectedTransmissions() float64 { return 1 / m.successProb() }

func (m *CSMAMac) packetsPerSecond(phiOut units.BytesPerSecond) float64 {
	return float64(phiOut) / float64(m.PayloadBytes)
}

// DataOverhead is the per-frame MAC overhead plus the retransmitted data:
// Ω = 13·φ/L + (1/q − 1)·(φ + 13·φ/L).
func (m *CSMAMac) DataOverhead(phiOut units.BytesPerSecond) units.BytesPerSecond {
	base := float64(ieee.MACOverheadBytes) * m.packetsPerSecond(phiOut)
	retries := (m.ExpectedTransmissions() - 1) * (float64(phiOut) + base)
	return units.BytesPerSecond(base + retries)
}

// ControlUp is zero: data frames carry no extra uplink control.
func (m *CSMAMac) ControlUp(units.BytesPerSecond) units.BytesPerSecond { return 0 }

// ControlDown counts acknowledgements for every attempt plus beacons, plus
// the CCA/backoff listening cost expressed as equivalent received bytes.
func (m *CSMAMac) ControlDown(phiOut units.BytesPerSecond) units.BytesPerSecond {
	attempts := m.packetsPerSecond(phiOut) * m.ExpectedTransmissions()
	acks := float64(ieee.AckBytes) * attempts
	beacons := float64(ieee.BeaconBytes(0)) / float64(m.Superframe.BeaconInterval())
	listen := m.listenTimePerSecond(phiOut) * float64(ieee.BitRate) / 8
	return units.BytesPerSecond(acks + beacons + listen)
}

// listenTimePerSecond is the expected CCA + backoff listening time: each
// attempt waits on average CW/2 backoff units with the receiver on, plus
// two CCA slots.
func (m *CSMAMac) listenTimePerSecond(phiOut units.BytesPerSecond) float64 {
	attempts := m.packetsPerSecond(phiOut) * m.ExpectedTransmissions()
	perAttempt := (float64(m.ContentionWindow)/2 + 2) * float64(ieee.Symbols(ieee.AUnitBackoffPeriod))
	return attempts * perAttempt
}

// AirOverheadUp is the PHY encapsulation for every transmission attempt.
func (m *CSMAMac) AirOverheadUp(phiOut units.BytesPerSecond) units.BytesPerSecond {
	attempts := m.packetsPerSecond(phiOut) * m.ExpectedTransmissions()
	return units.BytesPerSecond(float64(ieee.PHYOverheadBytes) * attempts)
}

// AirOverheadDown is the PHY encapsulation on acknowledgements and beacons.
func (m *CSMAMac) AirOverheadDown(phiOut units.BytesPerSecond) units.BytesPerSecond {
	attempts := m.packetsPerSecond(phiOut)*m.ExpectedTransmissions() +
		1/float64(m.Superframe.BeaconInterval())
	return units.BytesPerSecond(float64(ieee.PHYOverheadBytes) * attempts)
}

// ControlTime is the beacon plus inactive-portion time; the whole active
// CAP is assignable (statistically) to contenders.
func (m *CSMAMac) ControlTime() float64 {
	beacon := float64(ieee.BeaconAirTime(0)) / float64(m.Superframe.BeaconInterval())
	inactive := 1 - m.Superframe.DutyCycle()
	return beacon + inactive
}

// Quantum is one backoff unit per beacon interval: the statistical
// assignment is quantized far more finely than GTS slots.
func (m *CSMAMac) Quantum() float64 {
	return float64(ieee.Symbols(ieee.AUnitBackoffPeriod)) / float64(m.Superframe.BeaconInterval())
}

// Capacity is the CAP share of the second, derated by the contention
// efficiency: with N contenders only a fraction of the channel time turns
// into successful transmissions.
func (m *CSMAMac) Capacity() float64 {
	return (1 - m.ControlTime()) * m.efficiency()
}

// efficiency estimates the fraction of contended channel time that is
// usable: the probability that a busy slot carries a success, following
// the standard slotted-contention analysis.
func (m *CSMAMac) efficiency() float64 {
	tau := m.attemptProb()
	n := float64(m.NumNodes)
	pTr := 1 - math.Pow(1-tau, n)
	if pTr == 0 {
		return 1
	}
	pS := n * tau * math.Pow(1-tau, n-1) / pTr
	return pS
}

// TxTime is the expected channel time consumed per second, including
// retransmissions of collided frames.
func (m *CSMAMac) TxTime(phiOut units.BytesPerSecond) float64 {
	if phiOut == 0 {
		return 0
	}
	attempts := m.packetsPerSecond(phiOut) * m.ExpectedTransmissions()
	bytesPerFrame := float64(ieee.DataFrameAirBytes(m.PayloadBytes))
	air := float64(ieee.AirTime(bytesPerFrame)) * attempts
	perAttempt := float64(ieee.Turnaround()) + float64(ieee.AckAirTime()) +
		float64(ieee.IFS(m.PayloadBytes+ieee.MACOverheadBytes))
	return air + attempts*perAttempt
}

// WorstCaseDelay provides the statistical delay bound: expected backoff
// waiting across the mean number of attempts plus the frame service time,
// amortized over the active portion of the superframe (frames generated in
// the inactive portion wait for the next CAP).
func (m *CSMAMac) WorstCaseDelay(deltaTx []float64, n int) units.Seconds {
	if n < 0 || n >= len(deltaTx) {
		return units.Seconds(math.NaN())
	}
	attempts := m.ExpectedTransmissions()
	backoff := (float64(m.ContentionWindow) / 2) * float64(ieee.Symbols(ieee.AUnitBackoffPeriod))
	service := float64(ieee.DataFrameAirTime(m.PayloadBytes)) + float64(ieee.AckAirTime()) +
		float64(ieee.Turnaround())
	inCAP := attempts * (backoff + service)
	// Worst case: generation at the start of the inactive portion.
	return units.Seconds(float64(m.Superframe.InactiveDuration()) + inCAP)
}

// String renders the configuration.
func (m *CSMAMac) String() string {
	return fmt.Sprintf("%s{%v, L=%dB, N=%d, CW=%d}",
		m.Name(), m.Superframe, m.PayloadBytes, m.NumNodes, m.ContentionWindow)
}
