package core

import (
	"math"
	"testing"

	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/units"
)

func testCSMA(t *testing.T, nodes, cw int) *CSMAMac {
	t.Helper()
	m, err := NewCSMAMac(ieee.SuperframeConfig{BeaconOrder: 2, SuperframeOrder: 2}, 80, nodes, cw)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCSMAValidation(t *testing.T) {
	sf := ieee.SuperframeConfig{BeaconOrder: 2, SuperframeOrder: 2}
	if _, err := NewCSMAMac(sf, 0, 3, 8); err == nil {
		t.Error("payload 0: want error")
	}
	if _, err := NewCSMAMac(sf, 80, 0, 8); err == nil {
		t.Error("no nodes: want error")
	}
	if _, err := NewCSMAMac(sf, 80, 3, 1); err == nil {
		t.Error("CW=1: want error")
	}
	if _, err := NewCSMAMac(ieee.SuperframeConfig{BeaconOrder: 1, SuperframeOrder: 3}, 80, 3, 8); err == nil {
		t.Error("bad superframe: want error")
	}
	// Unlike GTS, CSMA handles more than 7 nodes.
	if _, err := NewCSMAMac(sf, 80, 20, 8); err != nil {
		t.Errorf("20 contenders should be allowed: %v", err)
	}
}

func TestCSMASuccessProbability(t *testing.T) {
	solo := testCSMA(t, 1, 8)
	if got := solo.successProb(); got != 1 {
		t.Errorf("single node success = %g, want 1", got)
	}
	if got := solo.ExpectedTransmissions(); got != 1 {
		t.Errorf("single node attempts = %g, want 1", got)
	}
	// More contenders → lower success probability.
	var prev float64 = 2
	for _, n := range []int{2, 4, 8, 16} {
		m := testCSMA(t, n, 8)
		q := m.successProb()
		if q <= 0 || q >= 1 {
			t.Errorf("N=%d: q=%g out of (0,1)", n, q)
		}
		if q >= prev {
			t.Errorf("N=%d: success probability should decrease with contention", n)
		}
		prev = q
	}
	// Wider window → less contention → higher success.
	narrow, wide := testCSMA(t, 6, 4), testCSMA(t, 6, 32)
	if wide.successProb() <= narrow.successProb() {
		t.Error("wider contention window should raise success probability")
	}
}

func TestCSMAOverheadIncludesRetransmissions(t *testing.T) {
	m := testCSMA(t, 6, 8)
	phi := units.BytesPerSecond(86)
	// The data overhead must exceed the pure 13 B/packet framing
	// because collided frames are retransmitted.
	framing := 13.0 * 86 / 80
	if got := float64(m.DataOverhead(phi)); got <= framing {
		t.Errorf("Ω = %g should exceed framing-only %g", got, framing)
	}
	// The GTS MAC has no retransmissions, so its TxTime for the same
	// stream is smaller.
	g := testMAC(t, 2, 2, 80, 6)
	if m.TxTime(phi) <= g.TxTime(phi) {
		t.Error("contention should cost more channel time than TDMA")
	}
}

func TestCSMACapacityDecreasesWithNodes(t *testing.T) {
	var prev float64 = math.Inf(1)
	for _, n := range []int{1, 2, 4, 8, 16} {
		m := testCSMA(t, n, 8)
		c := m.Capacity()
		if c <= 0 || c >= 1 {
			t.Errorf("N=%d: capacity %g out of (0,1)", n, c)
		}
		if c >= prev {
			t.Errorf("N=%d: capacity should shrink with contention", n)
		}
		prev = c
	}
}

func TestCSMAAssignAndEvaluate(t *testing.T) {
	m := testCSMA(t, 3, 8)
	phi := []units.BytesPerSecond{64, 86, 120}
	a, err := Assign(m, phi)
	if err != nil {
		t.Fatal(err)
	}
	if a.Used <= 0 || a.Used > a.Capacity {
		t.Errorf("assignment used %g of %g", a.Used, a.Capacity)
	}
	// The statistical quantum is much finer than a GTS slot.
	g := testMAC(t, 2, 2, 80, 3)
	if m.Quantum() >= g.Quantum() {
		t.Error("CSMA quantum should be finer than a GTS slot")
	}
	// Delay: positive, larger with more contention.
	d3 := float64(m.WorstCaseDelay(a.DeltaTx, 0))
	if d3 <= 0 {
		t.Errorf("delay = %g", d3)
	}
	m16 := testCSMA(t, 16, 8)
	d16 := float64(m16.WorstCaseDelay(a.DeltaTx, 0))
	if d16 <= d3 {
		t.Errorf("delay with 16 contenders (%g) should exceed 3 (%g)", d16, d3)
	}
	if got := m.WorstCaseDelay(a.DeltaTx, 9); !math.IsNaN(float64(got)) {
		t.Error("out-of-range index should be NaN")
	}
}

func TestCSMANetworkEndToEnd(t *testing.T) {
	// The abstract model runs unchanged on the contention MAC — the
	// generality claim of §3.2.
	nodes := []*Node{
		testNode(t, "a", "cs", 0.23, 8e6),
		testNode(t, "b", "cs", 0.29, 8e6),
		testNode(t, "c", "dwt", 0.23, 8e6),
	}
	mac := testCSMA(t, 3, 8)
	net := &Network{Nodes: nodes, MAC: mac, Theta: 0.5}
	ev, err := net.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Energy <= 0 || ev.Delay <= 0 || ev.Quality <= 0 {
		t.Errorf("metrics: %+v", ev)
	}
	// Contention must cost more radio energy than guaranteed slots for
	// the same traffic (retransmissions + listening).
	gnet := &Network{Nodes: nodes, MAC: testMAC(t, 2, 2, 80, 3), Theta: 0.5}
	gev, err := gnet.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ev.PerNode {
		if ev.PerNode[i].Radio <= gev.PerNode[i].Radio {
			t.Errorf("node %d: CSMA radio %v should exceed GTS %v",
				i, ev.PerNode[i].Radio, gev.PerNode[i].Radio)
		}
	}
	if got := mac.String(); got == "" {
		t.Error("empty String()")
	}
}
