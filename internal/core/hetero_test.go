package core

import (
	"math"
	"testing"

	"wsndse/internal/units"
)

// heteroNet builds a 3-node network where the last node carries its own
// payload profile (a short-frame telemetry view of the shared MAC).
func heteroNet(t *testing.T, nodePayload int) *Network {
	t.Helper()
	nodes := []*Node{
		testNode(t, "dwt-0", "dwt", 0.23, 8e6),
		testNode(t, "cs-1", "cs", 0.23, 8e6),
		testNode(t, "cs-2", "cs", 0.29, 4e6),
	}
	base := testMAC(t, 3, 2, 48, 3)
	views := []MAC{nil, nil, nil}
	if nodePayload > 0 {
		views[2] = testMAC(t, 3, 2, nodePayload, 3)
	}
	return &Network{Nodes: nodes, MAC: base, NodeMACs: views, Theta: 0.5}
}

func TestAssignHeteroMatchesAssignWithoutViews(t *testing.T) {
	mac := testMAC(t, 3, 2, 48, 3)
	phi := []units.BytesPerSecond{64, 86, 120}
	a, err := Assign(mac, phi)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AssignHetero(mac, []MAC{nil, nil, nil}, phi)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.K {
		if a.K[i] != b.K[i] {
			t.Errorf("node %d: K %d (homogeneous) vs %d (nil views)", i, a.K[i], b.K[i])
		}
	}
	if a.Used != b.Used || a.Capacity != b.Capacity {
		t.Errorf("accounting differs: %+v vs %+v", a, b)
	}
}

func TestAssignHeteroPerNodePayload(t *testing.T) {
	base := testMAC(t, 3, 2, 48, 3)
	short := testMAC(t, 3, 2, 16, 3)
	// At 300 B/s the 16-byte frames pay 13+6 overhead bytes per 16
	// payload bytes plus a per-packet service cost ~3× as often, so the
	// short-frame view demands strictly more channel time.
	phi := []units.BytesPerSecond{300, 300, 300}
	hom, err := Assign(base, phi)
	if err != nil {
		t.Fatal(err)
	}
	het, err := AssignHetero(base, []MAC{nil, nil, short}, phi)
	if err != nil {
		t.Fatal(err)
	}
	if het.K[2] <= hom.K[2] {
		t.Errorf("16B-frame node got %d quanta, 48B one %d — expected more", het.K[2], hom.K[2])
	}
	if het.K[0] != hom.K[0] || het.K[1] != hom.K[1] {
		t.Errorf("view on node 2 changed other nodes: %v vs %v", het.K, hom.K)
	}
}

func TestAssignHeteroRejectsMismatchedViews(t *testing.T) {
	base := testMAC(t, 3, 2, 48, 2)
	phi := []units.BytesPerSecond{64, 64}
	if _, err := AssignHetero(base, []MAC{nil}, phi); err == nil {
		t.Error("length-mismatched views accepted")
	}
	// A view with a different superframe has a different quantum δ —
	// nodes would disagree about the channel they share.
	other := testMAC(t, 4, 2, 48, 2)
	if _, err := AssignHetero(base, []MAC{nil, other}, phi); err == nil {
		t.Error("view with mismatched quantum accepted")
	}
}

func TestNetworkEvaluateHetero(t *testing.T) {
	net := heteroNet(t, 16)
	ev, err := net.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := heteroNet(t, 0).Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// The short-frame node carries more per-frame overhead: more radio
	// energy and a different (but still finite) delay bound.
	if ev.PerNode[2].Radio <= ref.PerNode[2].Radio {
		t.Errorf("16B-frame node radio %v not above 48B baseline %v",
			ev.PerNode[2].Radio, ref.PerNode[2].Radio)
	}
	if math.Abs(float64(ev.PerNode[0].Radio-ref.PerNode[0].Radio)) > 1e-15 {
		t.Errorf("node 0 radio changed by node 2's view: %v vs %v",
			ev.PerNode[0].Radio, ref.PerNode[0].Radio)
	}
	for i, d := range ev.PerNodeDelay {
		if math.IsNaN(d) || d <= 0 {
			t.Errorf("node %d delay bound %g not positive", i, d)
		}
	}
}

func TestNetworkEvaluateRejectsBadViewCount(t *testing.T) {
	net := heteroNet(t, 0)
	net.NodeMACs = net.NodeMACs[:2]
	if _, err := net.Evaluate(); err == nil {
		t.Error("mismatched NodeMACs length accepted")
	}
	if err := net.Validate(); err == nil {
		t.Error("Validate accepted mismatched NodeMACs length")
	}
}

// TestHeteroCapacityStillEnforced drives a heterogeneous star past the GTS
// budget and expects the constraint violation, not an error.
func TestHeteroCapacityStillEnforced(t *testing.T) {
	base := testMAC(t, 1, 0, 102, 3)
	short := testMAC(t, 1, 0, 16, 3)
	// At SO = 0 a slot is 0.96 ms; short frames need multiple slots per
	// service, so three heavy streams cannot fit 7 slots.
	phi := []units.BytesPerSecond{300, 300, 300}
	_, err := AssignHetero(base, []MAC{short, short, short}, phi)
	if err == nil {
		t.Fatal("over-capacity heterogeneous assignment accepted")
	}
	if !IsInfeasible(err) {
		t.Fatalf("want InfeasibleError, got %v", err)
	}
}
