package core

import (
	"fmt"
	"math"

	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/units"
)

// GTSMac maps the beacon-enabled IEEE 802.15.4 MAC onto the abstract model
// exactly as §4.2 does:
//
//   - Ω(φ_out) = 13 · φ_out / L_payload (11 header + 2 checksum bytes per
//     data frame);
//   - Ψ_n→c = 0 (no uplink control traffic);
//   - Ψ_c→n = 4 · φ_out / L_payload + L_beacon / BI (one acknowledgement
//     per frame plus the periodic beacon);
//   - δ = (SD/16)/BI per second (one GTS slot per beacon interval);
//   - Σ Δ_tx ≤ 7/16 · SD/BI (at most 7 GTSs per superframe);
//   - the worst-case delay bound of Eq. 9.
type GTSMac struct {
	Superframe   ieee.SuperframeConfig
	PayloadBytes int // L_payload, MAC payload per data frame
	NumNodes     int // sizes the beacon's GTS descriptor list
}

// NewGTSMac validates the χ_mac parameters and builds the MAC model.
func NewGTSMac(sf ieee.SuperframeConfig, payloadBytes, numNodes int) (*GTSMac, error) {
	if err := sf.Validate(); err != nil {
		return nil, err
	}
	if payloadBytes < 1 || payloadBytes > ieee.MaxDataPayload {
		return nil, fmt.Errorf("core: GTS MAC payload %d out of range [1,%d]",
			payloadBytes, ieee.MaxDataPayload)
	}
	if numNodes < 1 {
		return nil, fmt.Errorf("core: GTS MAC needs at least one node, got %d", numNodes)
	}
	if numNodes > ieee.MaxGTS {
		return nil, Infeasible("%d nodes exceed the %d guaranteed time slots per superframe",
			numNodes, ieee.MaxGTS)
	}
	return &GTSMac{Superframe: sf, PayloadBytes: payloadBytes, NumNodes: numNodes}, nil
}

// GTSMacEntry is one pre-built χ_mac grid point: the MAC model or the
// error its construction produced, so a compiled evaluator can report per
// configuration exactly what a fresh NewGTSMac call would (including
// infeasible node counts).
type GTSMacEntry struct {
	MAC *GTSMac
	Err error
}

// BuildGTSMacGrid pre-builds the (BO × SFO gap × payload) MAC grid the
// compiled evaluation pipelines index into: entry
// (b·len(gaps) + g)·len(payloads) + p holds the MAC for
// (bos[b], gaps[g], payloads[p]) under the shared SFO = max(BO − gap, 0)
// decode rule (ieee.SuperframeWithGap). A single-payload list builds the
// (BO × SFO gap) view grid of a payload-override node.
func BuildGTSMacGrid(bos, gaps, payloads []int, numNodes int) []GTSMacEntry {
	grid := make([]GTSMacEntry, 0, len(bos)*len(gaps)*len(payloads))
	for _, bo := range bos {
		for _, gap := range gaps {
			sf := ieee.SuperframeWithGap(bo, gap)
			for _, pay := range payloads {
				mac, err := NewGTSMac(sf, pay, numNodes)
				grid = append(grid, GTSMacEntry{MAC: mac, Err: err})
			}
		}
	}
	return grid
}

// Name identifies the MAC.
func (m *GTSMac) Name() string { return "ieee802.15.4-gts" }

// packetsPerSecond is the (fractional) frame rate needed for a φ_out
// stream.
func (m *GTSMac) packetsPerSecond(phiOut units.BytesPerSecond) float64 {
	return float64(phiOut) / float64(m.PayloadBytes)
}

// DataOverhead implements Ω = 13·φ_out/L_payload.
func (m *GTSMac) DataOverhead(phiOut units.BytesPerSecond) units.BytesPerSecond {
	return units.BytesPerSecond(float64(ieee.MACOverheadBytes) * m.packetsPerSecond(phiOut))
}

// ControlUp implements Ψ_n→c = 0.
func (m *GTSMac) ControlUp(units.BytesPerSecond) units.BytesPerSecond { return 0 }

// beaconBytes is L_beacon for the configured GTS count.
func (m *GTSMac) beaconBytes() int { return ieee.BeaconBytes(m.NumNodes) }

// ControlDown implements Ψ_c→n = 4·φ_out/L_payload + L_beacon/BI.
func (m *GTSMac) ControlDown(phiOut units.BytesPerSecond) units.BytesPerSecond {
	acks := float64(ieee.AckBytes) * m.packetsPerSecond(phiOut)
	beacons := float64(m.beaconBytes()) / float64(m.Superframe.BeaconInterval())
	return units.BytesPerSecond(acks + beacons)
}

// AirOverheadUp is the PHY encapsulation transmitted by the node: 6 bytes
// per data frame.
func (m *GTSMac) AirOverheadUp(phiOut units.BytesPerSecond) units.BytesPerSecond {
	return units.BytesPerSecond(float64(ieee.PHYOverheadBytes) * m.packetsPerSecond(phiOut))
}

// AirOverheadDown is the PHY encapsulation received by the node: 6 bytes
// per acknowledgement and per beacon.
func (m *GTSMac) AirOverheadDown(phiOut units.BytesPerSecond) units.BytesPerSecond {
	perSecondFrames := m.packetsPerSecond(phiOut) + 1/float64(m.Superframe.BeaconInterval())
	return units.BytesPerSecond(float64(ieee.PHYOverheadBytes) * perSecondFrames)
}

// ControlTime is the structural Δ_control: beacon transmission, the
// contention-access period (at least 9 slots, unused in the case study)
// and the inactive portion, per second. Equivalently 1 − 7/16·SD/BI.
func (m *GTSMac) ControlTime() float64 { return 1 - m.Superframe.GTSCapacityPerSecond() }

// Quantum is δ: one slot per beacon interval, per-second normalized.
func (m *GTSMac) Quantum() float64 { return m.Superframe.SlotPerSecond() }

// Capacity is the GTS budget 7/16·SD/BI.
func (m *GTSMac) Capacity() float64 { return m.Superframe.GTSCapacityPerSecond() }

// TxTime is T_tx(φ_out + Ω): on-air time of the MAC stream plus per-frame
// PHY encapsulation, RX/TX turnaround, acknowledgement and inter-frame
// spacing — everything a GTS must be sized to contain.
func (m *GTSMac) TxTime(phiOut units.BytesPerSecond) float64 {
	return ieee.GTSDemandPerSecond(m.PayloadBytes, float64(phiOut))
}

// MinQuanta is the protocol floor on a node's interval: windows serve only
// whole packet services, so the slot count must satisfy the per-superframe
// packet arithmetic of ieee.GTSSlotsFor, not just the average-rate demand.
func (m *GTSMac) MinQuanta(phiOut units.BytesPerSecond) int {
	return ieee.GTSSlotsFor(m.Superframe, m.PayloadBytes, float64(phiOut))
}

// WorstCaseDelay implements Eq. 9: node n's data waits, in the worst case,
// for every other node's transmission interval plus the control overhead
// of the superframes those intervals span:
//
//	d^(n) ≤ Σ_{i≠n} Δ_tx^(i) + ⌈Σ_{i≠n} Δ_tx^(i) / CFP⌉ · Δ_control
//	       + Δ_tx^(n) + 2·T_svc.
//
// The sums are converted back to wall-clock seconds per superframe and
// CFP = 7 slots is the contention-free capacity of one superframe. Two
// instantiation choices, both documented deviations of detail rather than
// structure:
//
//   - Δ_control is the per-superframe time the channel is unavailable to
//     node payloads — beacon, CAP, inactive portion, and *unallocated*
//     GTS slots. Counting idle slots follows Eq. 2's definition of
//     Δ_control ("...or because the network is kept idle") and is what
//     makes the bound dominate a packet-level simulation: idle CFP slots
//     precede the allocated windows in the superframe layout and do delay
//     the tail-positioned GTSs.
//   - Δ_tx^(n) + 2·T_svc covers in-window effects: waiting behind the
//     node's own queued predecessors (at most one window's worth under a
//     feasible assignment), the just-missed-opportunity race — data
//     generated an instant too late to start service in the current
//     window — and the final service itself.
//
// The ceiling is floored at one superframe: even with no competing nodes,
// data generated right after the node's GTS waits through the next
// superframe's control phase.
func (m *GTSMac) WorstCaseDelay(deltaTx []float64, n int) units.Seconds {
	if n < 0 || n >= len(deltaTx) {
		return units.Seconds(math.NaN())
	}
	slot := float64(m.Superframe.SlotDuration())
	perSecond := m.Superframe.SlotPerSecond()
	bi := float64(m.Superframe.BeaconInterval())

	// Allocated slots per superframe, in wall-clock seconds.
	var totalTx, ownTx float64
	for i, d := range deltaTx {
		slots := math.Round(d/perSecond) * slot
		totalTx += slots
		if i == n {
			ownTx = slots
		}
	}
	othersTx := totalTx - ownTx
	cfp := float64(ieee.MaxGTS) * slot
	frames := math.Ceil(othersTx / cfp)
	if frames < 1 {
		frames = 1
	}
	controlPerSF := bi - totalTx
	if controlPerSF < 0 {
		controlPerSF = 0
	}
	service := float64(ieee.PacketService(m.PayloadBytes))
	return units.Seconds(othersTx + frames*controlPerSF + ownTx + 2*service)
}

// String renders the full χ_mac.
func (m *GTSMac) String() string {
	return fmt.Sprintf("%s{%v, L=%dB, N=%d}", m.Name(), m.Superframe, m.PayloadBytes, m.NumNodes)
}
