package core

import (
	"fmt"
	"time"

	"wsndse/internal/units"
)

// Battery describes a node's energy reservoir. The paper motivates the
// whole exploration with lifetime ("a WSN has to ... guarantee a
// sufficient lifetime", §1); converting the model's per-second energies
// into operating hours is how a designer reads E_node in practice.
type Battery struct {
	// CapacityMilliampHours at the nominal voltage (a Shimmer ships
	// with a 450 mAh Li-ion cell).
	CapacityMilliampHours float64
	// NominalVolts converts charge to energy.
	NominalVolts float64
	// UsableFraction derates the nameplate capacity for cutoff voltage
	// and aging; 0 defaults to 0.85.
	UsableFraction float64
}

// ShimmerBattery is the 450 mAh / 3.7 V cell of the case-study platform.
func ShimmerBattery() Battery {
	return Battery{CapacityMilliampHours: 450, NominalVolts: 3.7, UsableFraction: 0.85}
}

// Energy returns the usable energy in joules.
func (b Battery) Energy() (units.Joules, error) {
	if b.CapacityMilliampHours <= 0 || b.NominalVolts <= 0 {
		return 0, fmt.Errorf("core: battery %+v has non-positive capacity or voltage", b)
	}
	frac := b.UsableFraction
	if frac == 0 {
		frac = 0.85
	}
	if frac < 0 || frac > 1 {
		return 0, fmt.Errorf("core: battery usable fraction %g out of [0,1]", frac)
	}
	return units.Joules(b.CapacityMilliampHours / 1000 * 3600 * b.NominalVolts * frac), nil
}

// Lifetime converts a node's average power draw into operating time.
func (b Battery) Lifetime(power units.Watts) (time.Duration, error) {
	if power <= 0 {
		return 0, fmt.Errorf("core: non-positive power %v", power)
	}
	e, err := b.Energy()
	if err != nil {
		return 0, err
	}
	seconds := float64(e) / float64(power)
	return time.Duration(seconds * float64(time.Second)), nil
}

// NetworkLifetime summarizes an evaluation in lifetime terms: the first
// node to die (the conventional WSN lifetime definition) and the spread
// between the best and worst node — the imbalance the ϑ-weighted Eq. 8
// metric exists to prevent.
type NetworkLifetime struct {
	FirstDeath time.Duration // min over nodes
	LastDeath  time.Duration // max over nodes
	// Imbalance is (LastDeath − FirstDeath)/LastDeath ∈ [0, 1): zero
	// means perfectly balanced consumption.
	Imbalance float64
}

// Lifetimes evaluates the per-node lifetimes of an Evaluation under a
// common battery.
func (ev *Evaluation) Lifetimes(b Battery) (NetworkLifetime, error) {
	var nl NetworkLifetime
	if len(ev.PerNode) == 0 {
		return nl, fmt.Errorf("core: evaluation has no nodes")
	}
	for i, eb := range ev.PerNode {
		lt, err := b.Lifetime(eb.Total)
		if err != nil {
			return nl, fmt.Errorf("core: node %d: %w", i, err)
		}
		if i == 0 || lt < nl.FirstDeath {
			nl.FirstDeath = lt
		}
		if lt > nl.LastDeath {
			nl.LastDeath = lt
		}
	}
	if nl.LastDeath > 0 {
		nl.Imbalance = float64(nl.LastDeath-nl.FirstDeath) / float64(nl.LastDeath)
	}
	return nl, nil
}
