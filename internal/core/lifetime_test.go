package core

import (
	"math"
	"testing"
	"time"
)

func TestBatteryEnergy(t *testing.T) {
	b := ShimmerBattery()
	e, err := b.Energy()
	if err != nil {
		t.Fatal(err)
	}
	// 450 mAh × 3.7 V × 0.85 = 0.45 × 3600 × 3.7 × 0.85 ≈ 5094 J.
	want := 0.45 * 3600 * 3.7 * 0.85
	if math.Abs(float64(e)-want) > 1e-9 {
		t.Errorf("energy = %v, want %g J", e, want)
	}
}

func TestBatteryValidation(t *testing.T) {
	if _, err := (Battery{}).Energy(); err == nil {
		t.Error("zero battery accepted")
	}
	if _, err := (Battery{CapacityMilliampHours: 100, NominalVolts: 3, UsableFraction: 2}).Energy(); err == nil {
		t.Error("usable fraction > 1 accepted")
	}
	if _, err := ShimmerBattery().Lifetime(0); err == nil {
		t.Error("zero power accepted")
	}
}

func TestLifetimeMagnitude(t *testing.T) {
	// A 4 mW node on the Shimmer cell should last on the order of two
	// weeks — the regime wearable monitors actually live in.
	lt, err := ShimmerBattery().Lifetime(4e-3)
	if err != nil {
		t.Fatal(err)
	}
	days := lt.Hours() / 24
	if days < 7 || days > 30 {
		t.Errorf("lifetime %.1f days implausible for 4 mW", days)
	}
	// Halving the power doubles the lifetime.
	lt2, err := ShimmerBattery().Lifetime(2e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(lt2)-2*float64(lt)) > float64(time.Second) {
		t.Error("lifetime not inversely proportional to power")
	}
}

func TestNetworkLifetimes(t *testing.T) {
	net := testNetwork(t, 6, 0.23, 8e6)
	ev, err := net.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	nl, err := ev.Lifetimes(ShimmerBattery())
	if err != nil {
		t.Fatal(err)
	}
	if nl.FirstDeath <= 0 || nl.LastDeath < nl.FirstDeath {
		t.Errorf("lifetimes inconsistent: %+v", nl)
	}
	// DWT nodes draw more than CS nodes, so the network is imbalanced:
	// the first death (a DWT node) comes measurably before the last.
	if nl.Imbalance < 0.1 {
		t.Errorf("imbalance %.3f, expected the DWT/CS split to show", nl.Imbalance)
	}
	// Empty evaluation rejected.
	if _, err := (&Evaluation{}).Lifetimes(ShimmerBattery()); err == nil {
		t.Error("empty evaluation accepted")
	}
}
