package core

import (
	"fmt"
	"math"

	"wsndse/internal/numeric"
	"wsndse/internal/units"
)

// Network is a star-topology WBSN: a set of nodes sharing one MAC, plus
// the balance weight ϑ of the network-level metrics (Eq. 8).
type Network struct {
	Nodes []*Node
	MAC   MAC
	// NodeMACs optionally gives node i its own view of the shared MAC —
	// e.g. a per-node payload profile in a heterogeneous star. A nil
	// slice (or nil entry) falls back to MAC. Views must share the base
	// MAC's channel geometry: quantum, capacity and control time come
	// from MAC; per-node Ω/Ψ/T_tx and delay bounds come from the view.
	NodeMACs []MAC
	// Theta is ϑ: how strongly imbalance between nodes is penalized in
	// the combined metrics. Zero reduces Eq. 8 to the plain mean.
	Theta float64
}

// macFor resolves node i's MAC view.
func (net *Network) macFor(i int) MAC {
	if i < len(net.NodeMACs) && net.NodeMACs[i] != nil {
		return net.NodeMACs[i]
	}
	return net.MAC
}

// Evaluation is the complete system-level result for one configuration:
// everything the DSE needs, produced in one pass. An Evaluation doubles as
// the scratch object of EvaluateInto: the slices (including the
// Assignment's) are reused across calls, so a steady-state evaluation loop
// performs no heap allocations.
type Evaluation struct {
	// PerNode breakdowns, in node order.
	PerNode []EnergyBreakdown
	// PerNodeQuality is each node's loss-of-quality e(φ_in, χ_node)
	// (PRD % for the case-study compressors).
	PerNodeQuality []float64
	// PerNodeDelay is each node's worst-case data delay in seconds
	// (NaN when the MAC provides no delay bound).
	PerNodeDelay []float64
	// Assignment is the Eq. 1–2 solution underlying the evaluation.
	Assignment *Assignment

	// Energy is E_net (Eq. 8) in watts; Quality and Delay apply the
	// same mean-plus-ϑ·stddev combinator to the per-node quality and
	// delay vectors.
	Energy  units.Watts
	Quality float64
	Delay   units.Seconds

	// Reused intermediates: the per-node application-layer quantities and
	// the per-node totals handed to the Eq. 8 combinator.
	phiIn    []units.BytesPerSecond
	phiOut   []units.BytesPerSecond
	quality  []float64
	energies []float64
}

// Combine is Eq. 8's combinator: mean(values) + theta·sampleStdDev(values).
// The paper defines E_net this way and applies the same form to the
// application quality metric; it rewards balanced networks where no node
// is starved or disproportionately drained. The mean and dispersion come
// from the fused single-pass numeric.MeanStdDev.
func Combine(values []float64, theta float64) float64 {
	mean, sd := numeric.MeanStdDev(values)
	return mean + theta*sd
}

// scratch returns s resized to n elements, reusing its backing array when
// the capacity suffices. Retained elements are stale; callers overwrite
// every slot.
func scratch[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Evaluate runs the full model: assignment (Eqs. 1–2), per-node energies
// (Eqs. 3–7), delay bounds (Eq. 9 for the 802.15.4 MAC) and the combined
// network metrics (Eq. 8). Infeasible configurations yield an
// InfeasibleError.
func (net *Network) Evaluate() (*Evaluation, error) {
	ev := &Evaluation{}
	if err := net.EvaluateInto(ev); err != nil {
		return nil, err
	}
	return ev, nil
}

// validateShape checks the structural preconditions shared by the
// evaluation entry points.
func (net *Network) validateShape() error {
	if len(net.Nodes) == 0 {
		return fmt.Errorf("core: Evaluate: network has no nodes")
	}
	if net.MAC == nil {
		return fmt.Errorf("core: Evaluate: network has no MAC")
	}
	if net.Theta < 0 {
		return fmt.Errorf("core: Evaluate: negative balance weight ϑ=%g", net.Theta)
	}
	if len(net.NodeMACs) != 0 && len(net.NodeMACs) != len(net.Nodes) {
		return fmt.Errorf("core: Evaluate: %d MAC views for %d nodes", len(net.NodeMACs), len(net.Nodes))
	}
	return nil
}

// EvaluateInto is Evaluate with caller-owned scratch: it writes the result
// into ev, reusing ev's slices (and its Assignment) across calls, so a
// steady-state evaluation loop — the DSE hot path — performs zero heap
// allocations after the first call. On error ev's contents are
// unspecified. The numbers are bit-identical to Evaluate's.
func (net *Network) EvaluateInto(ev *Evaluation) error {
	if err := net.validateShape(); err != nil {
		return err
	}
	n := len(net.Nodes)
	ev.phiIn = scratch(ev.phiIn, n)
	ev.phiOut = scratch(ev.phiOut, n)
	ev.quality = scratch(ev.quality, n)
	for i, node := range net.Nodes {
		phiIn := node.InputRate()
		ev.phiIn[i] = phiIn
		ev.phiOut[i] = node.App.OutputRate(phiIn)
		ev.quality[i] = node.App.Quality(phiIn)
	}
	return net.EvaluateWithRatesInto(ev, ev.phiIn, ev.phiOut, ev.quality)
}

// EvaluateWithRatesInto is EvaluateInto with the application-layer
// quantities supplied by the caller: phiIn[i], phiOut[i] and quality[i]
// must equal node i's InputRate, OutputRate and App.Quality(InputRate).
// Compiled evaluators hold those three per (application, sample-rate) pair
// in precomputed tables, which turns the per-configuration work into table
// lookups plus the Eq. 1–9 arithmetic below. The result is bit-identical
// to Evaluate's.
func (net *Network) EvaluateWithRatesInto(ev *Evaluation, phiIn, phiOut []units.BytesPerSecond, quality []float64) error {
	if err := net.validateShape(); err != nil {
		return err
	}
	n := len(net.Nodes)
	if len(phiIn) != n || len(phiOut) != n || len(quality) != n {
		return fmt.Errorf("core: Evaluate: rates cover %d/%d/%d of %d nodes",
			len(phiIn), len(phiOut), len(quality), n)
	}
	if ev.Assignment == nil {
		ev.Assignment = &Assignment{}
	}
	if err := AssignHeteroInto(ev.Assignment, net.MAC, net.NodeMACs, phiOut); err != nil {
		return err
	}

	ev.PerNode = scratch(ev.PerNode, n)
	ev.PerNodeQuality = scratch(ev.PerNodeQuality, n)
	ev.PerNodeDelay = scratch(ev.PerNodeDelay, n)
	ev.energies = scratch(ev.energies, n)
	for i, node := range net.Nodes {
		eb, err := node.EnergyWithRates(net.macFor(i), phiIn[i], phiOut[i])
		if err != nil {
			return err
		}
		ev.PerNode[i] = eb
		ev.energies[i] = float64(eb.Total)
		ev.PerNodeQuality[i] = quality[i]
	}

	// Each node's bound comes from its own MAC view (a per-node payload
	// profile changes the 2·T_svc term of Eq. 9); the bound is reported
	// only when every view can provide one.
	allBounded := true
	for i := range net.Nodes {
		if db, ok := net.macFor(i).(DelayBound); ok {
			ev.PerNodeDelay[i] = float64(db.WorstCaseDelay(ev.Assignment.DeltaTx, i))
		} else {
			ev.PerNodeDelay[i] = math.NaN()
			allBounded = false
		}
	}
	if allBounded {
		ev.Delay = units.Seconds(Combine(ev.PerNodeDelay, net.Theta))
	} else {
		ev.Delay = units.Seconds(math.NaN())
	}

	ev.Energy = units.Watts(Combine(ev.energies, net.Theta))
	ev.Quality = Combine(ev.PerNodeQuality, net.Theta)
	return nil
}

// Validate checks all nodes and the MAC wiring without evaluating.
func (net *Network) Validate() error {
	if len(net.Nodes) == 0 {
		return fmt.Errorf("core: network has no nodes")
	}
	if net.MAC == nil {
		return fmt.Errorf("core: network has no MAC")
	}
	if len(net.NodeMACs) != 0 && len(net.NodeMACs) != len(net.Nodes) {
		return fmt.Errorf("core: %d MAC views for %d nodes", len(net.NodeMACs), len(net.Nodes))
	}
	for _, n := range net.Nodes {
		if err := n.Validate(); err != nil {
			return err
		}
	}
	return nil
}
