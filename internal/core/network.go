package core

import (
	"fmt"
	"math"

	"wsndse/internal/numeric"
	"wsndse/internal/units"
)

// Network is a star-topology WBSN: a set of nodes sharing one MAC, plus
// the balance weight ϑ of the network-level metrics (Eq. 8).
type Network struct {
	Nodes []*Node
	MAC   MAC
	// NodeMACs optionally gives node i its own view of the shared MAC —
	// e.g. a per-node payload profile in a heterogeneous star. A nil
	// slice (or nil entry) falls back to MAC. Views must share the base
	// MAC's channel geometry: quantum, capacity and control time come
	// from MAC; per-node Ω/Ψ/T_tx and delay bounds come from the view.
	NodeMACs []MAC
	// Theta is ϑ: how strongly imbalance between nodes is penalized in
	// the combined metrics. Zero reduces Eq. 8 to the plain mean.
	Theta float64
}

// macFor resolves node i's MAC view.
func (net *Network) macFor(i int) MAC {
	if i < len(net.NodeMACs) && net.NodeMACs[i] != nil {
		return net.NodeMACs[i]
	}
	return net.MAC
}

// Evaluation is the complete system-level result for one configuration:
// everything the DSE needs, produced in one pass.
type Evaluation struct {
	// PerNode breakdowns, in node order.
	PerNode []EnergyBreakdown
	// PerNodeQuality is each node's loss-of-quality e(φ_in, χ_node)
	// (PRD % for the case-study compressors).
	PerNodeQuality []float64
	// PerNodeDelay is each node's worst-case data delay in seconds
	// (NaN when the MAC provides no delay bound).
	PerNodeDelay []float64
	// Assignment is the Eq. 1–2 solution underlying the evaluation.
	Assignment *Assignment

	// Energy is E_net (Eq. 8) in watts; Quality and Delay apply the
	// same mean-plus-ϑ·stddev combinator to the per-node quality and
	// delay vectors.
	Energy  units.Watts
	Quality float64
	Delay   units.Seconds
}

// Combine is Eq. 8's combinator: mean(values) + theta·sampleStdDev(values).
// The paper defines E_net this way and applies the same form to the
// application quality metric; it rewards balanced networks where no node
// is starved or disproportionately drained.
func Combine(values []float64, theta float64) float64 {
	return numeric.Mean(values) + theta*numeric.SampleStdDev(values)
}

// Evaluate runs the full model: assignment (Eqs. 1–2), per-node energies
// (Eqs. 3–7), delay bounds (Eq. 9 for the 802.15.4 MAC) and the combined
// network metrics (Eq. 8). Infeasible configurations yield an
// InfeasibleError.
func (net *Network) Evaluate() (*Evaluation, error) {
	if len(net.Nodes) == 0 {
		return nil, fmt.Errorf("core: Evaluate: network has no nodes")
	}
	if net.MAC == nil {
		return nil, fmt.Errorf("core: Evaluate: network has no MAC")
	}
	if net.Theta < 0 {
		return nil, fmt.Errorf("core: Evaluate: negative balance weight ϑ=%g", net.Theta)
	}
	if len(net.NodeMACs) != 0 && len(net.NodeMACs) != len(net.Nodes) {
		return nil, fmt.Errorf("core: Evaluate: %d MAC views for %d nodes", len(net.NodeMACs), len(net.Nodes))
	}

	phiOut := make([]units.BytesPerSecond, len(net.Nodes))
	for i, n := range net.Nodes {
		phiOut[i] = n.OutputRate()
	}
	assignment, err := AssignHetero(net.MAC, net.NodeMACs, phiOut)
	if err != nil {
		return nil, err
	}

	ev := &Evaluation{
		PerNode:        make([]EnergyBreakdown, len(net.Nodes)),
		PerNodeQuality: make([]float64, len(net.Nodes)),
		PerNodeDelay:   make([]float64, len(net.Nodes)),
		Assignment:     assignment,
	}
	energies := make([]float64, len(net.Nodes))
	for i, n := range net.Nodes {
		eb, err := n.Energy(net.macFor(i))
		if err != nil {
			return nil, err
		}
		ev.PerNode[i] = eb
		energies[i] = float64(eb.Total)
		ev.PerNodeQuality[i] = n.App.Quality(n.InputRate())
	}

	// Each node's bound comes from its own MAC view (a per-node payload
	// profile changes the 2·T_svc term of Eq. 9); the bound is reported
	// only when every view can provide one.
	allBounded := true
	for i := range net.Nodes {
		if db, ok := net.macFor(i).(DelayBound); ok {
			ev.PerNodeDelay[i] = float64(db.WorstCaseDelay(assignment.DeltaTx, i))
		} else {
			ev.PerNodeDelay[i] = math.NaN()
			allBounded = false
		}
	}
	if allBounded {
		ev.Delay = units.Seconds(Combine(ev.PerNodeDelay, net.Theta))
	} else {
		ev.Delay = units.Seconds(math.NaN())
	}

	ev.Energy = units.Watts(Combine(energies, net.Theta))
	ev.Quality = Combine(ev.PerNodeQuality, net.Theta)
	return ev, nil
}

// Validate checks all nodes and the MAC wiring without evaluating.
func (net *Network) Validate() error {
	if len(net.Nodes) == 0 {
		return fmt.Errorf("core: network has no nodes")
	}
	if net.MAC == nil {
		return fmt.Errorf("core: network has no MAC")
	}
	if len(net.NodeMACs) != 0 && len(net.NodeMACs) != len(net.Nodes) {
		return fmt.Errorf("core: %d MAC views for %d nodes", len(net.NodeMACs), len(net.Nodes))
	}
	for _, n := range net.Nodes {
		if err := n.Validate(); err != nil {
			return err
		}
	}
	return nil
}
