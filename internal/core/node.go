package core

import (
	"fmt"

	"wsndse/internal/app"
	"wsndse/internal/platform"
	"wsndse/internal/units"
)

// Node is one WBSN node: a hardware platform running an application at a
// chosen microcontroller frequency — the χ_node of §3.3 together with the
// fixed platform parameters.
type Node struct {
	Name       string
	Platform   platform.Platform
	App        app.Application
	SampleFreq units.Hertz // f_s, fixed by the monitored signal (250 Hz for ECG)
	MicroFreq  units.Hertz // f_µC, a design-space knob
}

// Validate checks the node's static consistency.
func (n *Node) Validate() error {
	if n.App == nil {
		return fmt.Errorf("core: node %q has no application", n.Name)
	}
	if n.SampleFreq <= 0 {
		return fmt.Errorf("core: node %q has non-positive sample rate %v", n.Name, n.SampleFreq)
	}
	if n.MicroFreq <= 0 {
		return fmt.Errorf("core: node %q has non-positive µC frequency %v", n.Name, n.MicroFreq)
	}
	return n.Platform.Validate()
}

// InputRate is φ_in = f_s · L_adc (§3.3).
func (n *Node) InputRate() units.BytesPerSecond {
	return n.Platform.InputRate(n.SampleFreq)
}

// OutputRate is φ_out = h(φ_in, χ_node).
func (n *Node) OutputRate() units.BytesPerSecond {
	return n.App.OutputRate(n.InputRate())
}

// EnergyBreakdown is the per-second energy of one node, split by the
// model's terms. Total is Eq. 7's E_node.
type EnergyBreakdown struct {
	Sensor units.Watts // Eq. 3
	Micro  units.Watts // Eq. 4
	Memory units.Watts // Eq. 5
	Radio  units.Watts // Eq. 6
	Total  units.Watts // Eq. 7
}

// Energy evaluates the node model of §3.3 under the given MAC. It returns
// an InfeasibleError when the application cannot complete on the
// microcontroller (duty cycle above 100 %, the condition that rules out
// DWT at 1 MHz in the paper's Figure 3) or when the working set exceeds
// the platform memory.
func (n *Node) Energy(mac MAC) (EnergyBreakdown, error) {
	phiIn := n.InputRate()
	return n.EnergyWithRates(mac, phiIn, n.App.OutputRate(phiIn))
}

// EnergyWithRates is Energy with the node's streams supplied by the
// caller: phiIn must equal n.InputRate() and phiOut n.OutputRate(). It
// exists for compiled evaluators that hold both rates in precomputed
// tables — the values (and therefore the result, bit for bit) are the same
// as Energy's, but the per-call h(φ_in) recomputation disappears from the
// hot path.
func (n *Node) EnergyWithRates(mac MAC, phiIn, phiOut units.BytesPerSecond) (EnergyBreakdown, error) {
	var eb EnergyBreakdown
	usage := n.App.Usage(phiIn, n.MicroFreq)
	if usage.Duty > 1 {
		return eb, Infeasible("node %q: application %q duty cycle %.1f%% exceeds 100%% at f_µC=%v",
			n.Name, n.App.Name(), usage.Duty*100, n.MicroFreq)
	}
	if usage.Duty < 0 {
		return eb, fmt.Errorf("core: node %q: negative duty cycle %g", n.Name, usage.Duty)
	}
	if usage.MemoryBytes > float64(n.Platform.Memory.SizeBytes) {
		return eb, Infeasible("node %q: application working set %.0f B exceeds %d B RAM",
			n.Name, usage.MemoryBytes, n.Platform.Memory.SizeBytes)
	}

	// Eq. 3: sensing.
	eb.Sensor = n.Platform.Sensor.Power(n.SampleFreq)
	// Eq. 4: microcontroller.
	eb.Micro = n.Platform.Micro.Power(usage.Duty, n.MicroFreq)
	// Eq. 5: memory.
	eb.Memory = n.Platform.Memory.Power(usage.AccessesPerSecond, usage.MemoryBytes)
	// Eq. 6: radio. The MAC-level terms follow the equation exactly;
	// the AirOverhead terms account for PHY encapsulation, which the
	// paper absorbs into its calibrated per-bit energies.
	etx := float64(n.Platform.Radio.EnergyPerBitTx())
	erx := float64(n.Platform.Radio.EnergyPerBitRx())
	up := float64(phiOut) + float64(mac.DataOverhead(phiOut)) + float64(mac.ControlUp(phiOut)) +
		float64(mac.AirOverheadUp(phiOut))
	down := float64(mac.ControlDown(phiOut)) + float64(mac.AirOverheadDown(phiOut))
	// The per-bit terms follow Eq. 6; the standby floor is the radio's
	// deep-sleep draw, which a duty-cycled node pays essentially all
	// the time (a calibrated model absorbs it into its constants; with
	// explicit hardware coefficients it appears as its own term).
	// Transition costs — ramp-ups and beacon guard listening — remain
	// unmodeled, and are a deliberate source of the model-vs-device
	// estimation error the paper reports.
	standby := float64(n.Platform.Radio.SleepPower)
	eb.Radio = units.Watts(8*up*etx + 8*down*erx + standby)

	// Eq. 7.
	eb.Total = eb.Sensor + eb.Micro + eb.Memory + eb.Radio
	return eb, nil
}
