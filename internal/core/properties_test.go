package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/units"
)

// TestCombineMonotoneInTheta: for a fixed value vector, Eq. 8 grows
// linearly with ϑ, and equals the mean at ϑ = 0.
func TestCombineMonotoneInTheta(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 10
		}
		prev := Combine(vals, 0)
		for _, theta := range []float64{0.25, 0.5, 1, 2} {
			cur := Combine(vals, theta)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestEvaluateDeterministic: the model is a pure function of the
// configuration.
func TestEvaluateDeterministic(t *testing.T) {
	net := testNetwork(t, 6, 0.29, 8e6)
	a, err := net.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.Quality != b.Quality || a.Delay != b.Delay {
		t.Error("Evaluate is not deterministic")
	}
}

// TestRadioEnergyDecreasesWithPayload: larger frames amortize the 13-byte
// MAC overhead and per-packet costs, so at a fixed stream the radio term
// shrinks as L_payload grows — the payload knob's whole reason to exist in
// χ_mac.
func TestRadioEnergyDecreasesWithPayload(t *testing.T) {
	n := testNode(t, "a", "cs", 0.29, 8e6)
	var prev float64 = math.Inf(1)
	for _, payload := range []int{32, 48, 64, 80, 102} {
		mac := testMAC(t, 3, 2, payload, 1)
		eb, err := n.Energy(mac)
		if err != nil {
			t.Fatal(err)
		}
		if float64(eb.Radio) >= prev {
			t.Errorf("payload %d: radio %v not below smaller payload", payload, eb.Radio)
		}
		prev = float64(eb.Radio)
	}
}

// TestBeaconEnergyDecreasesWithBeaconOrder: longer beacon intervals
// amortize beacon reception, so the radio term shrinks with BO at fixed
// traffic — the other half of the energy/delay tradeoff Figure 5 explores.
func TestBeaconEnergyDecreasesWithBeaconOrder(t *testing.T) {
	n := testNode(t, "a", "cs", 0.23, 8e6)
	var prev float64 = math.Inf(1)
	for bo := 1; bo <= 6; bo++ {
		mac := testMAC(t, bo, min(bo, 2), 48, 1)
		eb, err := n.Energy(mac)
		if err != nil {
			t.Fatal(err)
		}
		if float64(eb.Radio) >= prev {
			t.Errorf("BO=%d: radio %v not below shorter interval", bo, eb.Radio)
		}
		prev = float64(eb.Radio)
	}
}

// TestDelayBoundDominatesAcrossRandomAssignments: for random feasible
// assignments, the Eq. 9 bound always clears one beacon interval (the
// physical floor of a per-superframe schedule) and stays finite.
func TestDelayBoundDominatesAcrossRandomAssignments(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bo := 2 + r.Intn(5)
		so := bo - r.Intn(min(bo, 3))
		payload := []int{32, 48, 64}[r.Intn(3)]
		nNodes := 1 + r.Intn(4)
		mac, err := NewGTSMac(ieee.SuperframeConfig{BeaconOrder: bo, SuperframeOrder: so}, payload, nNodes)
		if err != nil {
			return true // invalid geometry; skip
		}
		phi := make([]units.BytesPerSecond, nNodes)
		for i := range phi {
			phi[i] = units.BytesPerSecond(40 + r.Float64()*100)
		}
		a, err := Assign(mac, phi)
		if err != nil {
			return true // infeasible draw; skip
		}
		bi := float64(mac.Superframe.BeaconInterval())
		for i := range phi {
			d := float64(mac.WorstCaseDelay(a.DeltaTx, i))
			if math.IsNaN(d) || d < bi || d > 4*bi {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestTotalEqualsSumAcrossGrid: Eq. 7's accounting identity holds on the
// whole case-study grid.
func TestTotalEqualsSumAcrossGrid(t *testing.T) {
	for _, kind := range []string{"dwt", "cs"} {
		for _, cr := range []float64{0.17, 0.26, 0.38} {
			for _, fuc := range []units.Hertz{2e6, 8e6, 16e6} {
				n := testNode(t, "x", kind, cr, fuc)
				mac := testMAC(t, 3, 2, 48, 1)
				eb, err := n.Energy(mac)
				if IsInfeasible(err) {
					continue // DWT below ~2.3 MHz cannot run
				}
				if err != nil {
					t.Fatal(err)
				}
				sum := eb.Sensor + eb.Micro + eb.Memory + eb.Radio
				if math.Abs(float64(sum-eb.Total)) > 1e-18 {
					t.Fatalf("%s cr=%g f=%v: total %v ≠ sum %v", kind, cr, fuc, eb.Total, sum)
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
