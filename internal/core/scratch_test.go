package core

import (
	"math"
	"testing"

	"wsndse/internal/app"
	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/platform"
	"wsndse/internal/units"
)

// scratchNetwork builds a small heterogeneous network for the reuse tests.
func scratchNetwork(t *testing.T, payload int) *Network {
	t.Helper()
	mac, err := NewGTSMac(ieee.SuperframeConfig{BeaconOrder: 3, SuperframeOrder: 2}, payload, 3)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i] = &Node{
			Name:       "n",
			Platform:   platform.Shimmer(),
			App:        app.Passthrough{},
			SampleFreq: 250,
			MicroFreq:  8e6,
		}
	}
	return &Network{Nodes: nodes, MAC: mac, Theta: 0.5}
}

// TestEvaluateIntoMatchesEvaluate: the scratch API must return bit-identical
// numbers to the allocating API, and reusing one Evaluation across different
// networks must not leak state between calls.
func TestEvaluateIntoMatchesEvaluate(t *testing.T) {
	netA := scratchNetwork(t, 48)
	netB := scratchNetwork(t, 102)

	var ev Evaluation
	for _, net := range []*Network{netA, netB, netA} {
		want, err := net.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if err := net.EvaluateInto(&ev); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(float64(ev.Energy)) != math.Float64bits(float64(want.Energy)) ||
			math.Float64bits(ev.Quality) != math.Float64bits(want.Quality) ||
			math.Float64bits(float64(ev.Delay)) != math.Float64bits(float64(want.Delay)) {
			t.Fatalf("EvaluateInto = (%v,%v,%v), Evaluate = (%v,%v,%v)",
				ev.Energy, ev.Quality, ev.Delay, want.Energy, want.Quality, want.Delay)
		}
		for i := range want.PerNode {
			if ev.PerNode[i] != want.PerNode[i] {
				t.Fatalf("node %d breakdown differs: %+v vs %+v", i, ev.PerNode[i], want.PerNode[i])
			}
			if ev.Assignment.K[i] != want.Assignment.K[i] {
				t.Fatalf("node %d K differs: %d vs %d", i, ev.Assignment.K[i], want.Assignment.K[i])
			}
		}
	}
}

// TestEvaluateIntoSteadyStateAllocs: after the first call, EvaluateInto must
// not allocate.
func TestEvaluateIntoSteadyStateAllocs(t *testing.T) {
	net := scratchNetwork(t, 48)
	var ev Evaluation
	if err := net.EvaluateInto(&ev); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := net.EvaluateInto(&ev); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EvaluateInto allocates %.1f objects per call in steady state, want 0", allocs)
	}
}

// TestAssignHeteroIntoReuse: the scratch assignment must equal the allocating
// form and shrink/grow cleanly across node counts.
func TestAssignHeteroIntoReuse(t *testing.T) {
	mac, err := NewGTSMac(ieee.SuperframeConfig{BeaconOrder: 3, SuperframeOrder: 2}, 48, 6)
	if err != nil {
		t.Fatal(err)
	}
	var a Assignment
	for _, phi := range [][]units.BytesPerSecond{
		{64, 86, 64, 120, 86, 143},
		{64, 86},
		{40, 40, 40, 40},
	} {
		want, err := AssignHetero(mac, nil, phi)
		if err != nil {
			t.Fatal(err)
		}
		if err := AssignHeteroInto(&a, mac, nil, phi); err != nil {
			t.Fatal(err)
		}
		if len(a.K) != len(want.K) || a.Used != want.Used || a.Idle != want.Idle {
			t.Fatalf("AssignHeteroInto(%v) = %+v, want %+v", phi, a, *want)
		}
		for i := range want.K {
			if a.K[i] != want.K[i] || a.DeltaTx[i] != want.DeltaTx[i] {
				t.Fatalf("node %d: got (k=%d, Δ=%g), want (k=%d, Δ=%g)",
					i, a.K[i], a.DeltaTx[i], want.K[i], want.DeltaTx[i])
			}
		}
	}
}
