package core

import (
	"wsndse/internal/units"
)

// Workspace is the reusable per-worker evaluation context compiled
// evaluators run on: a fixed-size star of node shells whose application,
// µC frequency and MAC slots are re-pointed per configuration by table
// lookup, plus the per-node input slices EvaluateWithRatesInto consumes
// and the scratch Evaluation it fills. A Workspace is not safe for
// concurrent use — the batch runtime gives each worker its own (see
// dse.Forkable).
type Workspace struct {
	// Nodes are the node shells; Net.Nodes points at them. A compiled
	// evaluator fixes Name/Platform/SampleFreq once and re-points
	// App/MicroFreq per configuration.
	Nodes []Node
	// Net is the star under evaluation: MAC (and NodeMACs, for payload
	// overrides) are re-pointed per configuration, Theta is fixed.
	Net Network
	// PhiIn, PhiOut and Quality are the per-node application-layer
	// quantities, filled from the compiled tables per configuration.
	PhiIn   []units.BytesPerSecond
	PhiOut  []units.BytesPerSecond
	Quality []float64
	// Ev is the scratch result reused across evaluations.
	Ev Evaluation
}

// NewWorkspace builds a workspace for an n-node star.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{
		Nodes:   make([]Node, n),
		PhiIn:   make([]units.BytesPerSecond, n),
		PhiOut:  make([]units.BytesPerSecond, n),
		Quality: make([]float64, n),
	}
	ptrs := make([]*Node, n)
	for i := range ptrs {
		ptrs[i] = &w.Nodes[i]
	}
	w.Net.Nodes = ptrs
	return w
}

// Evaluate runs the model on the workspace's current contents and writes
// (E_net, quality_net, delay_net) into objs, which must have length 3.
// Steady-state calls allocate nothing; the numbers are bit-identical to
// Network.Evaluate on an equivalent freshly-built network.
func (w *Workspace) Evaluate(objs []float64) error {
	if err := w.Net.EvaluateWithRatesInto(&w.Ev, w.PhiIn, w.PhiOut, w.Quality); err != nil {
		return err
	}
	objs[0] = float64(w.Ev.Energy)
	objs[1] = w.Ev.Quality
	objs[2] = float64(w.Ev.Delay)
	return nil
}
