package cs

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"wsndse/internal/bitpack"
	"wsndse/internal/dwt"
)

// Codec is the compressed-sensing block codec. The sensor-side Compress is
// a sparse projection plus quantization; the coordinator-side Decompress
// runs orthogonal matching pursuit (OMP) against the wavelet dictionary.
//
// The sensing matrix is derived deterministically from (Seed, block size,
// measurement count), so encoder and decoder need no side channel beyond
// the codec configuration itself — mirroring a real deployment where the
// seed is fixed at pairing time.
type Codec struct {
	N        int         // block length in samples (must suit Wavelet/Levels)
	D        int         // ones per sensing-matrix column
	Seed     int64       // sensing matrix seed
	Wavelet  dwt.Wavelet // sparsity basis for reconstruction
	Levels   int         // decomposition depth of the basis
	MeasBits int         // quantizer resolution for measurements (12 = ADC width)

	// Algorithm selects the reconstruction solver: AlgorithmOMP
	// (default) is greedy orthogonal matching pursuit with the wavelet
	// approximation band pre-selected and ridge-stabilized re-fitting —
	// fast, and the better performer at the mid/high rates the case
	// study mostly explores. AlgorithmBPDN is FISTA-based ℓ1
	// minimization with least-squares debiasing; it wins at very low
	// rates where greedy selection degrades.
	Algorithm Algorithm
	MaxIter   int     // solver iteration cap; 0 selects a per-algorithm default
	Tol       float64 // OMP relative-residual stop; 0 selects 1e-3
	LambdaRel float64 // BPDN regularization relative to ‖Aᵀy‖∞; 0 selects 0.02

	// Per-m dictionary cache. dictMu guards only the map; dictionary
	// builds happen outside the lock with an in-flight entry, so one
	// codec can be shared by concurrent decoders (e.g. a coordinator
	// draining several sensors) without serializing on the build.
	dictMu sync.Mutex
	dicts  map[int]*dictEntry
}

// Algorithm identifies a reconstruction solver.
type Algorithm int

// Supported reconstruction algorithms.
const (
	AlgorithmOMP  Algorithm = iota // orthogonal matching pursuit (default)
	AlgorithmBPDN                  // ℓ1 minimization (FISTA) + debias
)

// String returns the solver name.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmBPDN:
		return "bpdn"
	case AlgorithmOMP:
		return "omp"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// NewCodec returns a codec for n-sample blocks with the given sparsity
// basis. Defaults: column weight 8, 12-bit measurements.
func NewCodec(n int, w dwt.Wavelet, levels int, seed int64) *Codec {
	return &Codec{
		N:        n,
		D:        8,
		Seed:     seed,
		Wavelet:  w,
		Levels:   levels,
		MeasBits: 12,
		dicts:    make(map[int]*dictEntry),
	}
}

// Encoded block layout (little-endian):
//
//	offset size field
//	0      2    n, block length in samples
//	2      2    m, measurement count
//	4      4    quantizer scale (float32)
//	8      ⌈m·MeasBits/8⌉ quantized measurements
const headerSize = 8

// Block is one compressed block.
type Block struct {
	Payload      []byte
	Measurements int // m
	N            int
}

// Size returns the encoded size in bytes.
func (b *Block) Size() int { return len(b.Payload) }

// MinCR returns the smallest usable compression ratio for this codec: at
// least eight measurements must fit beside the header.
func (c *Codec) MinCR(sampleBits int) float64 {
	inBytes := float64(c.N) * float64(sampleBits) / 8
	minBytes := float64(headerSize) + math.Ceil(float64(8*c.MeasBits)/8)
	return minBytes / inBytes
}

// Compress projects the block through the sensing matrix sized to the byte
// budget cr·n·sampleBits/8 and quantizes the measurements.
func (c *Codec) Compress(block []float64, cr float64, sampleBits int) (*Block, error) {
	if len(block) != c.N {
		return nil, fmt.Errorf("cs: block has %d samples, codec expects %d", len(block), c.N)
	}
	if cr <= 0 || cr > 1 {
		return nil, fmt.Errorf("cs: compression ratio %g out of range (0,1]", cr)
	}
	if sampleBits < 1 {
		return nil, fmt.Errorf("cs: sampleBits %d must be positive", sampleBits)
	}
	if c.MeasBits < 2 || c.MeasBits > 16 {
		return nil, fmt.Errorf("cs: MeasBits %d out of range [2,16]", c.MeasBits)
	}
	budget := int(math.Floor(cr * float64(c.N) * float64(sampleBits) / 8))
	m := (budget - headerSize) * 8 / c.MeasBits
	if m < 8 {
		return nil, fmt.Errorf("cs: cr %.3f leaves only %d measurements for n=%d (need ≥ 8, cr ≥ %.3f)",
			cr, m, c.N, c.MinCR(sampleBits))
	}
	if m > c.N {
		m = c.N
	}
	phi, err := NewSensingMatrix(m, c.N, c.D, c.Seed)
	if err != nil {
		return nil, err
	}
	y := phi.Apply(block)

	var scale float64
	for _, v := range y {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	qmax := float64(int(1)<<(c.MeasBits-1)) - 1

	payload := make([]byte, headerSize+(m*c.MeasBits+7)/8)
	binary.LittleEndian.PutUint16(payload[0:], uint16(c.N))
	binary.LittleEndian.PutUint16(payload[2:], uint16(m))
	binary.LittleEndian.PutUint32(payload[4:], math.Float32bits(float32(scale)))
	bw := bitpack.Writer{Buf: payload[headerSize:]}
	for _, v := range y {
		q := int(math.Round(v / scale * qmax))
		if q > int(qmax) {
			q = int(qmax)
		}
		if q < -int(qmax) {
			q = -int(qmax)
		}
		bw.Write(uint32(q&(1<<c.MeasBits-1)), c.MeasBits)
	}
	return &Block{Payload: payload, Measurements: m, N: c.N}, nil
}

// Decompress reconstructs a block from its payload by sparse recovery in
// the codec's wavelet basis using the configured Algorithm.
func (c *Codec) Decompress(payload []byte) ([]float64, error) {
	if len(payload) < headerSize {
		return nil, fmt.Errorf("cs: payload too short (%d bytes)", len(payload))
	}
	n := int(binary.LittleEndian.Uint16(payload[0:]))
	m := int(binary.LittleEndian.Uint16(payload[2:]))
	scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[4:])))
	if n != c.N {
		return nil, fmt.Errorf("cs: payload block length %d, codec expects %d", n, c.N)
	}
	if m < 1 || m > n {
		return nil, fmt.Errorf("cs: payload measurement count %d out of range [1,%d]", m, n)
	}
	if want := headerSize + (m*c.MeasBits+7)/8; len(payload) != want {
		return nil, fmt.Errorf("cs: payload is %d bytes, want %d for m=%d", len(payload), want, m)
	}
	qmax := float64(int(1)<<(c.MeasBits-1)) - 1
	y := make([]float64, m)
	br := bitpack.Reader{Buf: payload[headerSize:]}
	for i := range y {
		raw, err := br.Read(c.MeasBits)
		if err != nil {
			return nil, err
		}
		y[i] = float64(bitpack.SignExtend(raw, c.MeasBits)) / qmax * scale
	}

	dict, err := c.dictionary(m)
	if err != nil {
		return nil, err
	}
	var alpha []float64
	switch c.Algorithm {
	case AlgorithmOMP:
		alpha = dict.omp(y, c.maxIter(m), c.tol())
	case AlgorithmBPDN:
		alpha = dict.bpdn(y, c.bpdnIters(), c.lambdaRel())
	default:
		return nil, fmt.Errorf("cs: unknown reconstruction algorithm %v", c.Algorithm)
	}
	return dwt.Inverse(c.Wavelet, alpha, c.Levels)
}

func (c *Codec) maxIter(m int) int {
	if c.MaxIter > 0 {
		return c.MaxIter
	}
	k := m / 3
	if k < 1 {
		k = 1
	}
	return k
}

func (c *Codec) bpdnIters() int {
	if c.MaxIter > 0 {
		return c.MaxIter
	}
	return 200
}

func (c *Codec) tol() float64 {
	if c.Tol > 0 {
		return c.Tol
	}
	return 1e-3
}

func (c *Codec) lambdaRel() float64 {
	if c.LambdaRel > 0 {
		return c.LambdaRel
	}
	return 0.02
}
