package cs

import (
	"math"
	"sync"
	"testing"

	"wsndse/internal/dwt"
)

// TestConcurrentDecompress shares one codec between goroutines decoding at
// two different measurement counts, so both the in-flight wait path and
// parallel builds of distinct dictionary entries are exercised under -race.
// Every concurrent reconstruction must equal the sequential one.
func TestConcurrentDecompress(t *testing.T) {
	const n = 256
	block := make([]float64, n)
	for i := range block {
		block[i] = math.Sin(float64(i)/7) + 0.25*math.Sin(float64(i)/3)
	}

	makeCodec := func() *Codec { return NewCodec(n, dwt.Daubechies4(), 4, 3) }

	// Two rates → two distinct dictionaries in the same cache.
	shared := makeCodec()
	var payloads [][]byte
	for _, cr := range []float64{0.3, 0.5} {
		b, err := shared.Compress(block, cr, 12)
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, b.Payload)
	}

	// Reference reconstructions from a fresh, sequentially used codec.
	ref := make([][]float64, len(payloads))
	refCodec := makeCodec()
	for i, p := range payloads {
		out, err := refCodec.Decompress(p)
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = out
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		for i := range payloads {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				out, err := shared.Decompress(payloads[i])
				if err != nil {
					errs <- err
					return
				}
				for j := range out {
					if out[j] != ref[i][j] {
						t.Errorf("payload %d sample %d: concurrent %g != sequential %g",
							i, j, out[j], ref[i][j])
						return
					}
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentDecompressZeroValueCodec checks that a codec built as a
// struct literal (nil dictionary map) lazily initializes its cache safely
// under concurrent first use.
func TestConcurrentDecompressZeroValueCodec(t *testing.T) {
	const n = 128
	block := make([]float64, n)
	for i := range block {
		block[i] = math.Cos(float64(i) / 5)
	}
	codec := &Codec{N: n, D: 8, Seed: 1, Wavelet: dwt.Haar(), Levels: 3, MeasBits: 12}
	b, err := codec.Compress(block, 0.5, 12)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := codec.Decompress(b.Payload); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
