package cs

import (
	"math"
	"testing"

	"wsndse/internal/dwt"
	"wsndse/internal/ecg"
	"wsndse/internal/numeric"
	"wsndse/internal/quality"
)

func TestNewSensingMatrixValidation(t *testing.T) {
	if _, err := NewSensingMatrix(0, 10, 1, 1); err == nil {
		t.Error("m=0: want error")
	}
	if _, err := NewSensingMatrix(10, 0, 1, 1); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := NewSensingMatrix(10, 10, 0, 1); err == nil {
		t.Error("d=0: want error")
	}
	if _, err := NewSensingMatrix(10, 10, 11, 1); err == nil {
		t.Error("d>m: want error")
	}
}

func TestSensingMatrixStructure(t *testing.T) {
	m, n, d := 64, 256, 8
	phi, err := NewSensingMatrix(m, n, d, 42)
	if err != nil {
		t.Fatal(err)
	}
	dense := phi.Dense()
	want := 1 / math.Sqrt(float64(d))
	for j := 0; j < n; j++ {
		nonzero := 0
		for i := 0; i < m; i++ {
			v := dense.At(i, j)
			if v != 0 {
				nonzero++
				if math.Abs(v-want) > 1e-15 {
					t.Fatalf("entry (%d,%d) = %g, want %g", i, j, v, want)
				}
			}
		}
		if nonzero != d {
			t.Fatalf("column %d has %d nonzeros, want %d", j, nonzero, d)
		}
	}
}

func TestSensingMatrixDeterministic(t *testing.T) {
	a, _ := NewSensingMatrix(32, 128, 4, 7)
	b, _ := NewSensingMatrix(32, 128, 4, 7)
	c, _ := NewSensingMatrix(32, 128, 4, 8)
	x := make([]float64, 128)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	ya, yb, yc := a.Apply(x), b.Apply(x), c.Apply(x)
	diff := false
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatalf("same seed produced different projections at %d", i)
		}
		if ya[i] != yc[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical projections")
	}
}

func TestApplyMatchesDense(t *testing.T) {
	phi, _ := NewSensingMatrix(16, 64, 4, 3)
	x := make([]float64, 64)
	for i := range x {
		x[i] = math.Sin(float64(i) / 3)
	}
	sparse := phi.Apply(x)
	dense := phi.Dense().MulVec(x)
	for i := range sparse {
		if math.Abs(sparse[i]-dense[i]) > 1e-12 {
			t.Fatalf("row %d: sparse %g vs dense %g", i, sparse[i], dense[i])
		}
	}
}

func TestApplyPanicsOnWrongLength(t *testing.T) {
	phi, _ := NewSensingMatrix(16, 64, 4, 3)
	defer func() {
		if recover() == nil {
			t.Error("Apply with wrong length should panic")
		}
	}()
	phi.Apply(make([]float64, 10))
}

func newTestCodec() *Codec {
	return NewCodec(512, dwt.Daubechies4(), 5, 99)
}

func ecgBlocks(t *testing.T, blocks int) [][]float64 {
	t.Helper()
	g, err := ecg.NewGenerator(ecg.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g.Corpus(blocks, 512)
}

func TestCompressRespectsBudget(t *testing.T) {
	block := ecgBlocks(t, 1)[0]
	c := newTestCodec()
	for _, cr := range []float64{0.17, 0.23, 0.29, 0.38} {
		z, err := c.Compress(block, cr, 12)
		if err != nil {
			t.Fatalf("cr=%g: %v", cr, err)
		}
		budget := cr * 512 * 12 / 8
		if float64(z.Size()) > budget {
			t.Errorf("cr=%g: encoded %d bytes exceeds budget %.1f", cr, z.Size(), budget)
		}
		if z.Measurements < 8 {
			t.Errorf("cr=%g: only %d measurements", cr, z.Measurements)
		}
	}
}

func TestCompressDecompressReconstructs(t *testing.T) {
	block := ecgBlocks(t, 1)[0]
	c := newTestCodec()
	z, err := c.Compress(block, 0.38, 12)
	if err != nil {
		t.Fatal(err)
	}
	y, err := c.Decompress(z.Payload)
	if err != nil {
		t.Fatal(err)
	}
	prd, err := quality.PRD(block, y)
	if err != nil {
		t.Fatal(err)
	}
	// CS at the highest case-study rate should reconstruct reasonably;
	// it is allowed to be worse than DWT but must capture the signal.
	if prd > 35 {
		t.Errorf("PRD at CR=0.38 is %.1f%%, want < 35%%", prd)
	}
}

func TestCSQualityImprovesWithRate(t *testing.T) {
	// Average over a few blocks to smooth OMP variance, then require the
	// PRD at the highest rate to clearly beat the lowest rate.
	blocks := ecgBlocks(t, 4)
	c := newTestCodec()
	avg := func(cr float64) float64 {
		var sum float64
		for _, b := range blocks {
			z, err := c.Compress(b, cr, 12)
			if err != nil {
				t.Fatal(err)
			}
			y, err := c.Decompress(z.Payload)
			if err != nil {
				t.Fatal(err)
			}
			prd, _ := quality.PRD(b, y)
			sum += prd
		}
		return sum / float64(len(blocks))
	}
	lo, hi := avg(0.17), avg(0.38)
	if hi >= lo {
		t.Errorf("PRD at CR=0.38 (%.1f%%) not better than at CR=0.17 (%.1f%%)", hi, lo)
	}
}

func TestCompressValidation(t *testing.T) {
	c := newTestCodec()
	block := ecgBlocks(t, 1)[0]
	if _, err := c.Compress(block[:100], 0.3, 12); err == nil {
		t.Error("wrong block length: want error")
	}
	if _, err := c.Compress(block, 0, 12); err == nil {
		t.Error("cr=0: want error")
	}
	if _, err := c.Compress(block, 2, 12); err == nil {
		t.Error("cr>1: want error")
	}
	if _, err := c.Compress(block, 0.3, 0); err == nil {
		t.Error("sampleBits=0: want error")
	}
	if _, err := c.Compress(block, 0.01, 12); err == nil {
		t.Error("cr below measurement floor: want error")
	}
	bad := newTestCodec()
	bad.MeasBits = 1
	if _, err := bad.Compress(block, 0.3, 12); err == nil {
		t.Error("MeasBits=1: want error")
	}
}

func TestDecompressValidation(t *testing.T) {
	c := newTestCodec()
	if _, err := c.Decompress(nil); err == nil {
		t.Error("nil payload: want error")
	}
	if _, err := c.Decompress(make([]byte, 4)); err == nil {
		t.Error("short payload: want error")
	}
	block := ecgBlocks(t, 1)[0]
	z, err := c.Compress(block, 0.3, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong codec geometry.
	other := NewCodec(256, dwt.Daubechies4(), 4, 99)
	if _, err := other.Decompress(z.Payload); err == nil {
		t.Error("mismatched block length: want error")
	}
	// Truncated payload.
	if _, err := c.Decompress(z.Payload[:len(z.Payload)-3]); err == nil {
		t.Error("truncated payload: want error")
	}
}

func TestMinCRBoundary(t *testing.T) {
	c := newTestCodec()
	block := ecgBlocks(t, 1)[0]
	min := c.MinCR(12)
	if _, err := c.Compress(block, min, 12); err != nil {
		t.Errorf("compress at MinCR=%.4f should succeed: %v", min, err)
	}
}

// TestOMPRecoversExactlySparseSignal is the classic CS sanity check: a
// signal that is genuinely K-sparse in the wavelet basis is recovered
// near-exactly from ~4K measurements (up to measurement quantization).
func TestOMPRecoversExactlySparseSignal(t *testing.T) {
	w := dwt.Daubechies4()
	n, levels := 256, 4
	coeffs := make([]float64, n)
	// 10-sparse coefficient vector at scattered positions.
	positions := []int{0, 3, 7, 16, 31, 50, 90, 130, 180, 240}
	for i, p := range positions {
		coeffs[p] = 5 - float64(i)*0.4
	}
	x, err := dwt.Inverse(w, coeffs, levels)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCodec(n, w, levels, 5)
	c.MeasBits = 16 // minimize quantization noise for this check
	z, err := c.Compress(x, 0.45, 16)
	if err != nil {
		t.Fatal(err)
	}
	y, err := c.Decompress(z.Payload)
	if err != nil {
		t.Fatal(err)
	}
	prd, _ := quality.PRD(x, y)
	if prd > 2 {
		t.Errorf("exactly sparse signal recovered with PRD %.2f%%, want < 2%%", prd)
	}
}

func TestDictionaryCaching(t *testing.T) {
	c := newTestCodec()
	d1, err := c.dictionary(100)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.dictionary(100)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("dictionary not cached")
	}
	d3, err := c.dictionary(120)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Error("distinct m should build distinct dictionaries")
	}
}

func TestOMPZeroMeasurement(t *testing.T) {
	c := newTestCodec()
	d, err := c.dictionary(64)
	if err != nil {
		t.Fatal(err)
	}
	alpha := d.omp(make([]float64, 64), 10, 1e-3)
	if numeric.Norm2(alpha) != 0 {
		t.Error("zero measurements should decode to zero coefficients")
	}
}

func TestBPDNDecodes(t *testing.T) {
	block := ecgBlocks(t, 1)[0]
	c := newTestCodec()
	c.Algorithm = AlgorithmBPDN
	z, err := c.Compress(block, 0.38, 12)
	if err != nil {
		t.Fatal(err)
	}
	y, err := c.Decompress(z.Payload)
	if err != nil {
		t.Fatal(err)
	}
	prd, _ := quality.PRD(block, y)
	if prd > 45 {
		t.Errorf("BPDN PRD at CR=0.38 is %.1f%%, want < 45%%", prd)
	}
	// Unknown algorithm must be rejected.
	c.Algorithm = Algorithm(99)
	if _, err := c.Decompress(z.Payload); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if got := AlgorithmOMP.String(); got != "omp" {
		t.Errorf("OMP name = %q", got)
	}
	if got := AlgorithmBPDN.String(); got != "bpdn" {
		t.Errorf("BPDN name = %q", got)
	}
	if got := Algorithm(99).String(); got != "Algorithm(99)" {
		t.Errorf("unknown name = %q", got)
	}
}

func TestBPDNExactlySparse(t *testing.T) {
	w := dwt.Daubechies4()
	n, levels := 256, 4
	coeffs := make([]float64, n)
	for i, p := range []int{2, 20, 40, 77, 150, 200} {
		coeffs[p] = 4 - float64(i)*0.3
	}
	x, err := dwt.Inverse(w, coeffs, levels)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCodec(n, w, levels, 5)
	c.Algorithm = AlgorithmBPDN
	c.MeasBits = 16
	z, err := c.Compress(x, 0.45, 16)
	if err != nil {
		t.Fatal(err)
	}
	y, err := c.Decompress(z.Payload)
	if err != nil {
		t.Fatal(err)
	}
	prd, _ := quality.PRD(x, y)
	if prd > 5 {
		t.Errorf("BPDN on exactly sparse signal: PRD %.2f%%, want < 5%%", prd)
	}
}
