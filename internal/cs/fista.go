package cs

import (
	"math"
	"sort"

	"wsndse/internal/numeric"
)

// bpdn solves the basis-pursuit-denoising problem
//
//	min_α ½‖y − Aα‖₂² + λ‖α‖₁
//
// with FISTA (accelerated proximal gradient), then debiases the result by
// least squares on the recovered support. Greedy pursuit (OMP) recovers
// exactly-sparse signals well but misassigns energy on merely compressible
// ones like ECG wavelet spectra; ℓ1 minimization is the decoder family the
// compressed-sensing ECG literature actually deploys, and it is what the
// codec uses by default.
//
// lambdaRel scales the regularizer relative to ‖Aᵀy‖∞ (the smallest λ that
// zeroes everything); iters bounds the FISTA iterations.
func (d *dictionary) bpdn(y []float64, iters int, lambdaRel float64) []float64 {
	n := d.n
	alpha := make([]float64, n)
	if numeric.Norm2(y) == 0 {
		return alpha
	}

	// Step size 1/L from a power-iteration estimate of λmax(AᵀA).
	L := d.lipschitz()
	step := 1 / L

	aty := d.atoms.TMulVec(y)
	var atyMax float64
	for _, v := range aty {
		if a := math.Abs(v); a > atyMax {
			atyMax = a
		}
	}
	lambda := lambdaRel * atyMax

	// FISTA state: αk is the iterate, z the extrapolated point.
	z := make([]float64, n)
	prev := make([]float64, n)
	tk := 1.0
	for it := 0; it < iters; it++ {
		// Gradient of the smooth part at z: Aᵀ(Az − y).
		az := d.atoms.MulVec(z)
		for i := range az {
			az[i] -= y[i]
		}
		grad := d.atoms.TMulVec(az)

		copy(prev, alpha)
		for j := 0; j < n; j++ {
			v := z[j] - step*grad[j]
			if j < d.alen {
				// Approximation band: gradient step only, no
				// shrinkage (always part of the model).
				alpha[j] = v
				continue
			}
			// Soft threshold.
			switch {
			case v > step*lambda:
				alpha[j] = v - step*lambda
			case v < -step*lambda:
				alpha[j] = v + step*lambda
			default:
				alpha[j] = 0
			}
		}
		tNext := (1 + math.Sqrt(1+4*tk*tk)) / 2
		mom := (tk - 1) / tNext
		var moved float64
		for j := 0; j < n; j++ {
			dj := alpha[j] - prev[j]
			z[j] = alpha[j] + mom*dj
			moved += dj * dj
		}
		tk = tNext
		if moved < 1e-14 {
			break
		}
	}

	d.debias(y, alpha)
	return alpha
}

// supportEntry pairs a coefficient index with its magnitude for support
// selection.
type supportEntry struct {
	j int
	v float64
}

// debias re-estimates the nonzero coefficients by unregularized least
// squares on the support, removing the soft-threshold shrinkage bias. The
// support is capped at m/3 atoms (largest magnitudes) to keep the system
// comfortably overdetermined.
func (d *dictionary) debias(y, alpha []float64) {
	// The approximation band is always in the support; detail atoms
	// compete for the remaining slots by magnitude.
	var details []supportEntry
	for j := d.alen; j < len(alpha); j++ {
		if alpha[j] != 0 {
			details = append(details, supportEntry{j, math.Abs(alpha[j])})
		}
	}
	limit := d.m/2 - d.alen
	if limit < 0 {
		limit = 0
	}
	if len(details) > limit {
		sort.Slice(details, func(a, b int) bool { return details[a].v > details[b].v })
		for _, e := range details[limit:] {
			alpha[e.j] = 0
		}
		details = details[:limit]
	}
	support := make([]int, 0, d.alen+len(details))
	for j := 0; j < d.alen; j++ {
		support = append(support, j)
	}
	for _, e := range details {
		support = append(support, e.j)
	}
	coef := d.lsFit(y, support)
	if coef == nil {
		return // keep the biased estimate; it is still consistent
	}
	for a, j := range support {
		alpha[j] = coef[a]
	}
}

// lipschitz estimates λmax(AᵀA) by 25 power iterations from a flat start,
// padded by 5 % so 1/L remains a valid FISTA step size.
func (d *dictionary) lipschitz() float64 {
	v := make([]float64, d.n)
	for j := range v {
		v[j] = 1 / math.Sqrt(float64(d.n))
	}
	var ev float64
	for it := 0; it < 25; it++ {
		av := d.atoms.MulVec(v)
		w := d.atoms.TMulVec(av)
		ev = numeric.Norm2(w)
		if ev == 0 {
			return 1
		}
		for j := range v {
			v[j] = w[j] / ev
		}
	}
	return ev * 1.05
}
