// Package cs implements the compressed-sensing ECG codec used by the other
// half of the case-study nodes (following Mamaghanian et al. [13]).
//
// Encoding is deliberately cheap — a sparse binary sensing matrix turns a
// block of n samples into m ≪ n random projections, which is why the CS
// application has a much lower microcontroller duty cycle than the DWT one
// in the paper (k_CS = 388.8/f_µC vs k_DWT = 2265.6/f_µC). All the work
// happens at the decoder (the network coordinator), which reconstructs the
// block with orthogonal matching pursuit in a wavelet sparsity basis.
package cs

import (
	"fmt"
	"math"
	"math/rand"

	"wsndse/internal/numeric"
)

// SensingMatrix is an m×n sparse binary matrix with exactly D ones per
// column, scaled by 1/√D so columns have unit norm. This is the standard
// low-power choice: applying it needs only D additions per input sample.
type SensingMatrix struct {
	M, N, D int
	rows    [][]int32 // rows[j] lists the D row indices of column j
}

// NewSensingMatrix builds the matrix deterministically from the seed. The
// same (m, n, d, seed) tuple always yields the same matrix, which is how
// the sensor and the coordinator stay in sync without transmitting it.
func NewSensingMatrix(m, n, d int, seed int64) (*SensingMatrix, error) {
	if m < 1 || n < 1 {
		return nil, fmt.Errorf("cs: sensing matrix %dx%d must be non-empty", m, n)
	}
	if d < 1 || d > m {
		return nil, fmt.Errorf("cs: column weight %d out of range [1,%d]", d, m)
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]int32, n)
	perm := make([]int32, m)
	for i := range perm {
		perm[i] = int32(i)
	}
	for j := range rows {
		// Partial Fisher–Yates: pick d distinct rows for this column.
		for i := 0; i < d; i++ {
			k := i + rng.Intn(m-i)
			perm[i], perm[k] = perm[k], perm[i]
		}
		col := make([]int32, d)
		copy(col, perm[:d])
		rows[j] = col
	}
	return &SensingMatrix{M: m, N: n, D: d, rows: rows}, nil
}

// Apply computes y = Φx with the sparse representation: D additions per
// sample followed by the 1/√D normalization.
func (s *SensingMatrix) Apply(x []float64) []float64 {
	if len(x) != s.N {
		panic(fmt.Sprintf("cs: Apply: len(x)=%d, want %d", len(x), s.N))
	}
	y := make([]float64, s.M)
	for j, col := range s.rows {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for _, r := range col {
			y[r] += xj
		}
	}
	scale := 1 / math.Sqrt(float64(s.D))
	for i := range y {
		y[i] *= scale
	}
	return y
}

// Dense materializes the matrix, mainly for building OMP dictionaries and
// for tests.
func (s *SensingMatrix) Dense() *numeric.Matrix {
	m := numeric.NewMatrix(s.M, s.N)
	v := 1 / math.Sqrt(float64(s.D))
	for j, col := range s.rows {
		for _, r := range col {
			m.Set(int(r), j, v)
		}
	}
	return m
}
