package cs

import (
	"wsndse/internal/dwt"
	"wsndse/internal/numeric"
)

// dictionary holds the OMP dictionary A = Φ·Ψᵀ for one measurement count:
// column j is the projection through the sensing matrix of the j-th inverse
// wavelet basis vector. Reconstructing y ≈ A·α recovers the block's wavelet
// coefficients α, from which the signal follows by inverse transform.
type dictionary struct {
	m, n  int
	atoms *numeric.Matrix // m×n
	norms []float64       // column 2-norms
	// alen is the length of the approximation band (the first alen
	// coefficients). ECG blocks always have significant approximation
	// coefficients (DC level, baseline wander), so the solvers treat the
	// band as unpenalized/pre-selected rather than asking sparsity
	// machinery to discover it.
	alen int
}

// dictEntry is one cache slot. The goroutine that inserts the entry owns
// the build; concurrent decoders at the same rate block on done instead of
// rebuilding, and decoders at other rates build in parallel because the
// codec mutex is released during the build.
type dictEntry struct {
	done chan struct{}
	d    *dictionary
	err  error
}

// dictionary returns the cached dictionary for m measurements, building it
// on first use. Building costs n inverse transforms plus n sparse
// projections and is amortized across all blocks decoded at this rate.
// Safe for concurrent use: the per-codec mutex guards only the map, never
// the build.
func (c *Codec) dictionary(m int) (*dictionary, error) {
	c.dictMu.Lock()
	if c.dicts == nil {
		c.dicts = make(map[int]*dictEntry)
	}
	if e, ok := c.dicts[m]; ok {
		c.dictMu.Unlock()
		<-e.done
		return e.d, e.err
	}
	e := &dictEntry{done: make(chan struct{})}
	c.dicts[m] = e
	c.dictMu.Unlock()

	e.d, e.err = c.buildDictionary(m)
	close(e.done)
	return e.d, e.err
}

// buildDictionary materializes A = Φ·Ψᵀ for m measurements.
func (c *Codec) buildDictionary(m int) (*dictionary, error) {
	phi, err := NewSensingMatrix(m, c.N, c.D, c.Seed)
	if err != nil {
		return nil, err
	}
	atoms := numeric.NewMatrix(m, c.N)
	norms := make([]float64, c.N)
	basis := make([]float64, c.N)
	for j := 0; j < c.N; j++ {
		basis[j] = 1
		psi, err := dwt.Inverse(c.Wavelet, basis, c.Levels)
		basis[j] = 0
		if err != nil {
			return nil, err
		}
		col := phi.Apply(psi)
		for i, v := range col {
			atoms.Set(i, j, v)
		}
		norms[j] = numeric.Norm2(col)
	}
	return &dictionary{m: m, n: c.N, atoms: atoms, norms: norms, alen: c.N >> c.Levels}, nil
}

// omp runs orthogonal matching pursuit: greedily select the dictionary atom
// most correlated with the residual, re-fit all selected atoms by least
// squares, and repeat until the residual is small or maxIter atoms are
// used. The approximation band is pre-selected (see dictionary.alen). The
// return value is the length-n sparse coefficient vector.
func (d *dictionary) omp(y []float64, maxIter int, tol float64) []float64 {
	alpha := make([]float64, d.n)
	residual := make([]float64, d.m)
	copy(residual, y)
	yNorm := numeric.Norm2(y)
	if yNorm == 0 {
		return alpha
	}
	stop := tol * yNorm

	support := make([]int, 0, d.alen+maxIter)
	inSupport := make([]bool, d.n)
	for j := 0; j < d.alen && len(support) < d.m/2; j++ {
		support = append(support, j)
		inSupport[j] = true
	}
	var coef []float64
	if len(support) > 0 {
		if c := d.lsFit(y, support); c != nil {
			coef = c
			d.residualUpdate(y, support, coef, residual)
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		// Correlation step: argmax_j |⟨r, a_j⟩| / ‖a_j‖.
		corr := d.atoms.TMulVec(residual)
		best, bestVal := -1, 0.0
		for j, cj := range corr {
			if inSupport[j] || d.norms[j] == 0 {
				continue
			}
			v := cj / d.norms[j]
			if v < 0 {
				v = -v
			}
			if v > bestVal {
				best, bestVal = j, v
			}
		}
		if best < 0 || bestVal < 1e-12*yNorm {
			break
		}
		support = append(support, best)
		inSupport[best] = true

		c := d.lsFit(y, support)
		if c == nil {
			// Numerically degenerate support (nearly parallel
			// atoms); drop the newest atom and stop refining.
			support = support[:len(support)-1]
			break
		}
		coef = c
		d.residualUpdate(y, support, coef, residual)
		if numeric.Norm2(residual) <= stop {
			break
		}
	}
	for a, j := range support {
		if a < len(coef) {
			alpha[j] = coef[a]
		}
	}
	return alpha
}

// lsFit solves min ‖y − A_S·c‖₂ + ε‖c‖₂ on the given support via normal
// equations. The small ridge term (ε = 10⁻⁴ of the mean Gram diagonal)
// keeps the estimate bounded when the support approaches the measurement
// dimension, where unmodeled-tail energy would otherwise be amplified by an
// ill-conditioned Gram matrix. It returns nil when the system is singular
// even with the ridge.
func (d *dictionary) lsFit(y []float64, support []int) []float64 {
	k := len(support)
	gram := numeric.NewMatrix(k, k)
	rhs := make([]float64, k)
	var trace float64
	for a := 0; a < k; a++ {
		ja := support[a]
		for b := a; b < k; b++ {
			jb := support[b]
			var s float64
			for i := 0; i < d.m; i++ {
				s += d.atoms.At(i, ja) * d.atoms.At(i, jb)
			}
			gram.Set(a, b, s)
			gram.Set(b, a, s)
			if a == b {
				trace += s
			}
		}
		var s float64
		for i := 0; i < d.m; i++ {
			s += d.atoms.At(i, ja) * y[i]
		}
		rhs[a] = s
	}
	ridge := 1e-4 * trace / float64(k)
	for a := 0; a < k; a++ {
		gram.Set(a, a, gram.At(a, a)+ridge)
	}
	coef, err := gram.Solve(rhs)
	if err != nil {
		return nil
	}
	return coef
}

// residualUpdate computes r = y − A_S·coef into residual.
func (d *dictionary) residualUpdate(y []float64, support []int, coef, residual []float64) {
	copy(residual, y)
	for a, j := range support {
		ca := coef[a]
		for i := 0; i < d.m; i++ {
			residual[i] -= ca * d.atoms.At(i, j)
		}
	}
}
