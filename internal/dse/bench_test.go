package dse

import (
	"math/rand"
	"testing"
)

// benchPoints draws n feasible points with continuous 2-objective vectors
// — a representative mix of dominated and non-dominated inputs for the
// Pareto machinery benchmarks.
func benchPoints(n, m int) []Point {
	r := rand.New(rand.NewSource(int64(n)*31 + int64(m)))
	pts := make([]Point, n)
	for i := range pts {
		objs := make(Objectives, m)
		for d := range objs {
			objs[d] = r.Float64() * 100
		}
		pts[i] = Point{Config: Config{i}, Objs: objs, Feasible: true}
	}
	return pts
}

// benchNonDominated times the batch Pareto filter at the given scale; the
// N ∈ {64, 256, 1024} ladder lets `benchjson diff` track the
// O(N²) → O(N log N) rewrite across sizes.
func benchNonDominated(b *testing.B, n int) {
	pts := benchPoints(n, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(NonDominated(pts)) == 0 {
			b.Fatal("empty front")
		}
	}
}

func BenchmarkNonDominated64(b *testing.B)   { benchNonDominated(b, 64) }
func BenchmarkNonDominated256(b *testing.B)  { benchNonDominated(b, 256) }
func BenchmarkNonDominated1024(b *testing.B) { benchNonDominated(b, 1024) }

// benchArchiveInsert times one full insertion sequence — n points into a
// fresh archive — so ns/op covers the incremental maintenance the search
// loops actually pay, evictions and rejections included.
func benchArchiveInsert(b *testing.B, n int) {
	pts := benchPoints(n, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var arch Archive
		for _, p := range pts {
			arch.Add(p)
		}
		if arch.Len() == 0 {
			b.Fatal("empty archive")
		}
	}
}

func BenchmarkArchiveInsert64(b *testing.B)   { benchArchiveInsert(b, 64) }
func BenchmarkArchiveInsert256(b *testing.B)  { benchArchiveInsert(b, 256) }
func BenchmarkArchiveInsert1024(b *testing.B) { benchArchiveInsert(b, 1024) }

// benchRankAndCrowd times one non-dominated sort + crowding pass over a
// 2N union (the environmental-selection workload) through the fast
// workspace sort or the O(MN²) reference.
func benchRankAndCrowd(b *testing.B, n int, naive bool) {
	pts := benchPoints(n, 2)
	var ws sortWorkspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			rankAndCrowdNaive(pts)
		} else {
			ws.rankAndCrowd(pts)
		}
	}
}

func BenchmarkRankAndCrowd64(b *testing.B)        { benchRankAndCrowd(b, 64, false) }
func BenchmarkRankAndCrowd256(b *testing.B)       { benchRankAndCrowd(b, 256, false) }
func BenchmarkRankAndCrowd1024(b *testing.B)      { benchRankAndCrowd(b, 1024, false) }
func BenchmarkRankAndCrowdNaive256(b *testing.B)  { benchRankAndCrowd(b, 256, true) }
func BenchmarkRankAndCrowdNaive1024(b *testing.B) { benchRankAndCrowd(b, 1024, true) }

// BenchmarkNSGA2Generations256 times seeded NSGA-II at population 256 on a
// cheap analytic evaluator, so the search machinery — tournaments,
// variation, non-dominated sorting, environmental selection, archive — is
// the measured cost rather than the model. Generations per second is the
// headline search-layer throughput.
func BenchmarkNSGA2Generations256(b *testing.B) {
	s := testSpace(64, 16, 16)
	eval := &convexEvaluator{space: s}
	const gens = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := NSGA2(s, eval, NSGA2Config{
			PopulationSize: 256, Generations: gens, Seed: int64(i + 1), Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Front) == 0 {
			b.Fatal("empty front")
		}
	}
	b.ReportMetric(float64(b.N*gens)/b.Elapsed().Seconds(), "gens/s")
}

// BenchmarkNSGA2Generations256Naive is the same workload with the O(MN²)
// reference sort wired in — the before/after pair for the search-layer
// overhaul's headline claim.
func BenchmarkNSGA2Generations256Naive(b *testing.B) {
	testNaiveRank = true
	defer func() { testNaiveRank = false }()
	s := testSpace(64, 16, 16)
	eval := &convexEvaluator{space: s}
	const gens = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := NSGA2(s, eval, NSGA2Config{
			PopulationSize: 256, Generations: gens, Seed: int64(i + 1), Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Front) == 0 {
			b.Fatal("empty front")
		}
	}
	b.ReportMetric(float64(b.N*gens)/b.Elapsed().Seconds(), "gens/s")
}
