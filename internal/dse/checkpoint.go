package dse

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// SnapshotVersion is the checkpoint format version. Snapshots carry it so
// a service can refuse to resume from a format it no longer writes.
const SnapshotVersion = 1

// SnapPoint is one evaluated point in snapshot form. Objs is empty for
// infeasible points (matching the in-memory representation, where
// constraint violations carry no objective vector).
type SnapPoint struct {
	Config   Config     `json:"config"`
	Objs     Objectives `json:"objs,omitempty"`
	Feasible bool       `json:"feasible"`
}

// snapPoint deep-copies a run-owned point into snapshot form, so the
// snapshot stays valid while the run keeps mutating its buffers.
func snapPoint(p Point) SnapPoint {
	return SnapPoint{Config: p.Config.Clone(), Objs: append(Objectives(nil), p.Objs...), Feasible: p.Feasible}
}

// point rehydrates the snapshot point with fresh backing storage.
func (sp SnapPoint) point() Point {
	return Point{Config: sp.Config.Clone(), Objs: append(Objectives(nil), sp.Objs...), Feasible: sp.Feasible}
}

func snapPoints(ps []Point) []SnapPoint {
	out := make([]SnapPoint, len(ps))
	for i, p := range ps {
		out[i] = snapPoint(p)
	}
	return out
}

func restorePoints(sps []SnapPoint) []Point {
	out := make([]Point, len(sps))
	for i, sp := range sps {
		out[i] = sp.point()
	}
	return out
}

// ChainSnap is the complete state of one MOSA annealing chain at a segment
// boundary: its private RNG, current point and energy, temperature,
// iterations completed, and guiding archive.
type ChainSnap struct {
	RNG     uint64      `json:"rng"`
	Cur     SnapPoint   `json:"cur"`
	CurE    float64     `json:"cur_e"`
	Temp    float64     `json:"temp"`
	Iter    int         `json:"iter"`
	Archive []SnapPoint `json:"archive,omitempty"`
}

// InfFloats is a []float64 whose JSON form round-trips IEEE infinities
// (crowding distances of front-boundary points are +Inf, which
// encoding/json rejects as bare numbers). Infinities encode as the strings
// "+Inf"/"-Inf"; finite values encode as plain numbers.
type InfFloats []float64

// MarshalJSON implements json.Marshaler.
func (f InfFloats) MarshalJSON() ([]byte, error) {
	vals := make([]any, len(f))
	for i, v := range f {
		switch {
		case math.IsInf(v, 1):
			vals[i] = "+Inf"
		case math.IsInf(v, -1):
			vals[i] = "-Inf"
		default:
			vals[i] = v
		}
	}
	return json.Marshal(vals)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *InfFloats) UnmarshalJSON(data []byte) error {
	var vals []any
	if err := json.Unmarshal(data, &vals); err != nil {
		return err
	}
	out := make(InfFloats, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			out[i] = x
		case string:
			switch x {
			case "+Inf":
				out[i] = math.Inf(1)
			case "-Inf":
				out[i] = math.Inf(-1)
			default:
				return fmt.Errorf("dse: InfFloats element %d: unknown sentinel %q", i, x)
			}
		default:
			return fmt.Errorf("dse: InfFloats element %d: unexpected type %T", i, v)
		}
	}
	*f = out
	return nil
}

// Snapshot is a self-contained, JSON-serializable checkpoint of a search
// run, taken at a generation/segment/batch boundary. Resuming from it
// (Options.Resume) replays the uninterrupted run's exact trajectory; see
// Options.Resume for the precise determinism contract. Which fields are
// populated depends on the algorithm:
//
//   - nsga2: RNG, Population, Ranks, Crowd (the survivors' carried union
//     ranking), Archive
//   - mosa: Chains (per-chain RNG/current/temperature/archive)
//   - exhaustive: Next (configurations consumed in enumeration order),
//     Archive
//   - random: RNG, Next (draws consumed), Archive
//
// Evaluated/Infeasible carry the run's cumulative counters so resumed runs
// report totals, not deltas.
type Snapshot struct {
	Version    int         `json:"version"`
	Algorithm  string      `json:"algorithm"`
	Step       int         `json:"step"`
	RNG        uint64      `json:"rng,omitempty"`
	Population []SnapPoint `json:"population,omitempty"`
	Ranks      []int       `json:"ranks,omitempty"`
	Crowd      InfFloats   `json:"crowd,omitempty"`
	Archive    []SnapPoint `json:"archive,omitempty"`
	Chains     []ChainSnap `json:"chains,omitempty"`
	Next       int         `json:"next,omitempty"`
	Evaluated  int         `json:"evaluated"`
	Infeasible int         `json:"infeasible"`
}

// validateResume checks the snapshot's envelope against the resuming run.
func (s *Snapshot) validateResume(algo string, space *Space) error {
	if s == nil {
		return fmt.Errorf("dse: resume from nil snapshot")
	}
	if s.Version != SnapshotVersion {
		return fmt.Errorf("dse: snapshot version %d, this build writes %d", s.Version, SnapshotVersion)
	}
	if s.Algorithm != algo {
		return fmt.Errorf("dse: snapshot is a %s run, cannot resume as %s", s.Algorithm, algo)
	}
	genes := len(space.Params)
	check := func(kind string, sp SnapPoint) error {
		if len(sp.Config) != genes {
			return fmt.Errorf("dse: snapshot %s point has %d genes, space has %d", kind, len(sp.Config), genes)
		}
		if !space.Valid(sp.Config) {
			return fmt.Errorf("dse: snapshot %s point %v does not index the space", kind, sp.Config)
		}
		return nil
	}
	for _, sp := range s.Population {
		if err := check("population", sp); err != nil {
			return err
		}
	}
	for _, sp := range s.Archive {
		if err := check("archive", sp); err != nil {
			return err
		}
	}
	for _, ch := range s.Chains {
		if err := check("chain", ch.Cur); err != nil {
			return err
		}
		for _, sp := range ch.Archive {
			if err := check("chain archive", sp); err != nil {
				return err
			}
		}
	}
	return nil
}

// ErrCorruptSnapshot marks a durable snapshot whose bytes do not match
// their recorded checksum (or do not parse at all) — the signature of a
// write torn by a crash. Callers distinguish it from "no snapshot" with
// errors.Is and fall back to an older checkpoint.
var ErrCorruptSnapshot = errors.New("dse: corrupt snapshot file")

// snapshotEnvelope is the durable on-disk form of a Snapshot: the
// serialized snapshot plus a SHA-256 over exactly those bytes. The
// checksum is what makes crash recovery *detectable* rather than
// best-effort — a checkpoint file torn mid-write (truncated tail,
// interleaved garbage) fails verification instead of resuming a run
// from silently wrong state.
type snapshotEnvelope struct {
	Version  int             `json:"version"`
	SHA256   string          `json:"sha256"`
	Snapshot json.RawMessage `json:"snapshot"`
}

// encodeEnvelope wraps serialized snapshot bytes (of either snapshot
// kind) in the checksummed envelope.
func encodeEnvelope(raw []byte) ([]byte, error) {
	sum := sha256.Sum256(raw)
	return json.Marshal(snapshotEnvelope{
		Version:  SnapshotVersion,
		SHA256:   hex.EncodeToString(sum[:]),
		Snapshot: raw,
	})
}

// decodeEnvelope verifies the envelope checksum and returns the inner
// snapshot bytes; failures wrap ErrCorruptSnapshot.
func decodeEnvelope(data []byte) (json.RawMessage, error) {
	var env snapshotEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	if len(env.Snapshot) == 0 || env.SHA256 == "" {
		return nil, fmt.Errorf("%w: missing snapshot or checksum", ErrCorruptSnapshot)
	}
	sum := sha256.Sum256(env.Snapshot)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return nil, fmt.Errorf("%w: checksum mismatch (torn write?)", ErrCorruptSnapshot)
	}
	return env.Snapshot, nil
}

// EncodeSnapshotFile serializes snap into its durable envelope form:
// {"version":1,"sha256":"...","snapshot":{...}}.
func EncodeSnapshotFile(snap *Snapshot) ([]byte, error) {
	raw, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	return encodeEnvelope(raw)
}

// DecodeSnapshotFile parses an envelope produced by EncodeSnapshotFile,
// verifying the checksum before trusting any field of the snapshot.
// Undecodable bytes and checksum mismatches both return an error wrapping
// ErrCorruptSnapshot.
func DecodeSnapshotFile(data []byte) (*Snapshot, error) {
	raw, err := decodeEnvelope(data)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{}
	if err := json.Unmarshal(raw, snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	return snap, nil
}

// restoreArchive rebuilds an Archive from snapshot points. The stored set
// is mutually non-dominated and insertion order never changes the archived
// set, so the rebuilt front is bit-identical to the snapshotted one.
func restoreArchive(arch *Archive, sps []SnapPoint) {
	for _, sp := range sps {
		arch.Add(sp.point())
	}
}
