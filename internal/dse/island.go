package dse

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file holds the dse-level primitives of island-model search: seed
// forking, migrant selection/injection on snapshots, and the composite
// IslandSnapshot. The coordinator that schedules islands, supervises
// their executors and drives the migration ring lives in
// internal/service/island; everything here is pure state manipulation,
// deterministic by construction, so the coordinator's bit-identity
// guarantees reduce to the resume guarantees already proven for
// Snapshot.

// ForkSeed derives island i's search seed from the job seed with a
// SplitMix64-style mix, so islands walk decorrelated streams and the
// derivation is a pure function of (seed, island) — independent of how
// many islands run concurrently or which executor hosts them. The
// increment constant differs from the one chainSeed uses, so island 0's
// NSGA-II stream is not correlated with chain 0 of a MOSA run on the
// same seed.
func ForkSeed(seed int64, island int) int64 {
	z := uint64(seed) + (uint64(island)+1)*0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Steps returns the number of search boundaries (completed generations)
// a run with this config performs after defaulting — the unit
// Options.StopAfter, CheckpointEvery and migration intervals count in.
func (c NSGA2Config) Steps() int {
	if c.Generations == 0 {
		return 50
	}
	return c.Generations
}

// Steps returns the number of search boundaries (completed chain
// segments) a run with this config performs after defaulting.
func (c MOSAConfig) Steps() int {
	d := c.withDefaults()
	perChain := d.Iterations / d.Restarts
	if perChain <= 0 {
		return 0
	}
	return (perChain + mosaSegment - 1) / mosaSegment
}

// cloneSnapPoints deep-copies snapshot points (Config and Objs storage
// included), so mutating the copy never aliases the original snapshot.
func cloneSnapPoints(sps []SnapPoint) []SnapPoint {
	if sps == nil {
		return nil
	}
	out := make([]SnapPoint, len(sps))
	for i, sp := range sps {
		out[i] = SnapPoint{Config: sp.Config.Clone(), Objs: append(Objectives(nil), sp.Objs...), Feasible: sp.Feasible}
	}
	return out
}

// Clone deep-copies the snapshot. The island coordinator mutates cloned
// snapshots (migrant injection) while keeping the original as the
// restart point of a crashed round, so sharing backing storage would
// silently corrupt failover.
func (s *Snapshot) Clone() *Snapshot {
	if s == nil {
		return nil
	}
	out := *s
	out.Population = cloneSnapPoints(s.Population)
	out.Ranks = append([]int(nil), s.Ranks...)
	out.Crowd = append(InfFloats(nil), s.Crowd...)
	out.Archive = cloneSnapPoints(s.Archive)
	if s.Chains != nil {
		out.Chains = make([]ChainSnap, len(s.Chains))
		for i, ch := range s.Chains {
			out.Chains[i] = ChainSnap{
				RNG:     ch.RNG,
				Cur:     SnapPoint{Config: ch.Cur.Config.Clone(), Objs: append(Objectives(nil), ch.Cur.Objs...), Feasible: ch.Cur.Feasible},
				CurE:    ch.CurE,
				Temp:    ch.Temp,
				Iter:    ch.Iter,
				Archive: cloneSnapPoints(ch.Archive),
			}
		}
	}
	return &out
}

// snapshotFront rebuilds the non-dominated set a snapshot has discovered
// so far: the run archive for NSGA-II, the merge of every chain's
// guiding archive for MOSA. Points come back in the Archive's
// lexicographic objective order, so selection over them is
// deterministic.
func snapshotFront(snap *Snapshot) []Point {
	var arch Archive
	switch snap.Algorithm {
	case "nsga2":
		restoreArchive(&arch, snap.Archive)
	case "mosa":
		for _, ch := range snap.Chains {
			restoreArchive(&arch, ch.Archive)
		}
	}
	return arch.Points()
}

// MigrantsOut selects up to k migrants from the snapshot's current
// front, stride-sampled across the whole front (the same shape
// Options.validSeeds uses, and for the same reason: a front is ordered
// along the tradeoff curve, and a prefix would export only one end of
// it). The result deep-copies the snapshot's storage and is a pure
// function of (snap, k), so every executor arrangement exports the same
// migrants. Snapshots of algorithms without migration support (or an
// empty front, or k <= 0) yield nil.
func MigrantsOut(snap *Snapshot, k int) []SnapPoint {
	if snap == nil || k <= 0 {
		return nil
	}
	front := snapshotFront(snap)
	if len(front) == 0 {
		return nil
	}
	if k > len(front) {
		k = len(front)
	}
	out := make([]SnapPoint, k)
	for i := range out {
		out[i] = snapPoint(front[i*len(front)/k])
	}
	return out
}

// InjectMigrants returns a deep copy of snap with migrants folded into
// the algorithm's state, leaving snap itself untouched:
//
//   - nsga2: migrants replace the worst population members (rank
//     descending, crowding ascending, index descending — the exact
//     inverse of environmental selection's order), capped at half the
//     population so immigration never displaces the island's whole gene
//     pool; the post-injection population is re-ranked, and migrants
//     join the run archive.
//   - mosa: migrants join every chain's guiding archive, steering each
//     chain's acceptance energy toward the neighbours' fronts; chain
//     positions, temperatures and RNG states are untouched.
//
// Migrants that do not index the space, are infeasible, carry a
// mismatched objective count, or duplicate a point already present are
// skipped, never an error — a migration between islands exploring the
// same region is naturally mostly duplicates. The result is a pure
// function of (snap, migrants, space): injection itself draws no
// randomness, so the resumed trajectory depends only on what was
// injected, not on when or where.
func InjectMigrants(space *Space, snap *Snapshot, migrants []SnapPoint) (*Snapshot, error) {
	if snap == nil {
		return nil, fmt.Errorf("dse: inject migrants into nil snapshot")
	}
	out := snap.Clone()
	accepted := acceptMigrants(space, snap, migrants)
	if len(accepted) == 0 {
		return out, nil
	}
	switch snap.Algorithm {
	case "nsga2":
		n := len(out.Population)
		if n == 0 {
			return nil, fmt.Errorf("dse: nsga2 snapshot has no population to inject into")
		}
		if limit := n / 2; len(accepted) > limit {
			accepted = accepted[:limit]
		}
		pop := restorePoints(out.Population)
		worst := worstIndices(out.Ranks, out.Crowd)
		for i, m := range accepted {
			pop[worst[i]] = m.point()
		}
		var ws sortWorkspace
		ranks, crowd := ws.rankAndCrowd(pop)
		out.Population = snapPoints(pop)
		out.Ranks = append([]int(nil), ranks...)
		out.Crowd = append(InfFloats(nil), crowd...)
		var arch Archive
		restoreArchive(&arch, out.Archive)
		for _, m := range accepted {
			arch.Add(m.point())
		}
		out.Archive = snapPoints(arch.Points())
	case "mosa":
		for i := range out.Chains {
			var arch Archive
			restoreArchive(&arch, out.Chains[i].Archive)
			for _, m := range accepted {
				arch.Add(m.point())
			}
			out.Chains[i].Archive = snapPoints(arch.Points())
		}
	default:
		return nil, fmt.Errorf("dse: algorithm %q does not support migration", snap.Algorithm)
	}
	return out, nil
}

// acceptMigrants filters migrants down to feasible, space-valid,
// objective-bearing points, dropping duplicates of the snapshot's
// population (NSGA-II) and among the migrants themselves, preserving
// first-seen order.
func acceptMigrants(space *Space, snap *Snapshot, migrants []SnapPoint) []SnapPoint {
	if len(migrants) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(migrants)+len(snap.Population))
	for _, sp := range snap.Population {
		seen[sp.Config.Key()] = true
	}
	objs := -1
	if len(snap.Archive) > 0 {
		objs = len(snap.Archive[0].Objs)
	} else {
		for _, ch := range snap.Chains {
			if len(ch.Archive) > 0 {
				objs = len(ch.Archive[0].Objs)
				break
			}
		}
	}
	out := make([]SnapPoint, 0, len(migrants))
	for _, m := range migrants {
		if !m.Feasible || len(m.Objs) == 0 || !space.Valid(m.Config) {
			continue
		}
		if objs >= 0 && len(m.Objs) != objs {
			continue
		}
		k := m.Config.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, SnapPoint{Config: m.Config.Clone(), Objs: append(Objectives(nil), m.Objs...), Feasible: true})
	}
	return out
}

// worstIndices orders population indices worst-first by the carried
// ranking: rank descending, crowding ascending, index descending — a
// total order, so replacement targets are deterministic even among
// exact (rank, crowding) ties.
func worstIndices(ranks []int, crowd []float64) []int {
	idx := make([]int, len(ranks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if ranks[a] != ranks[b] {
			return ranks[a] > ranks[b]
		}
		if crowd[a] != crowd[b] {
			return crowd[a] < crowd[b]
		}
		return a > b
	})
	return idx
}

// IslandSnapshotVersion is the composite checkpoint format version.
const IslandSnapshotVersion = 1

// IslandSnapshot is the composite checkpoint of an island-model run: one
// per-island Snapshot, all taken at the same migration boundary, after
// that round's migrants were injected. Because injection happens before
// the checkpoint, restoring any island replays its next round without
// needing the in-flight migrants again — the composite is always a
// clean cut of the whole distributed trajectory.
type IslandSnapshot struct {
	Version   int         `json:"version"`
	Algorithm string      `json:"algorithm"`
	Round     int         `json:"round"` // migration rounds completed
	Step      int         `json:"step"`  // the common per-island boundary
	Islands   []*Snapshot `json:"islands"`
}

// Validate checks the composite against the run about to resume from it.
func (s *IslandSnapshot) Validate(algo string, islands int, space *Space) error {
	if s == nil {
		return fmt.Errorf("dse: resume from nil island snapshot")
	}
	if s.Version != IslandSnapshotVersion {
		return fmt.Errorf("dse: island snapshot version %d, this build writes %d", s.Version, IslandSnapshotVersion)
	}
	if s.Algorithm != algo {
		return fmt.Errorf("dse: island snapshot is a %s run, cannot resume as %s", s.Algorithm, algo)
	}
	if len(s.Islands) != islands {
		return fmt.Errorf("dse: island snapshot has %d islands, configuration wants %d", len(s.Islands), islands)
	}
	for i, snap := range s.Islands {
		if snap == nil {
			return fmt.Errorf("dse: island snapshot %d is nil", i)
		}
		if snap.Step != s.Step {
			return fmt.Errorf("dse: island %d checkpointed at step %d, composite says %d", i, snap.Step, s.Step)
		}
		if err := snap.validateResume(algo, space); err != nil {
			return fmt.Errorf("dse: island %d: %w", i, err)
		}
	}
	return nil
}

// Clone deep-copies the composite.
func (s *IslandSnapshot) Clone() *IslandSnapshot {
	if s == nil {
		return nil
	}
	out := *s
	out.Islands = make([]*Snapshot, len(s.Islands))
	for i, snap := range s.Islands {
		out.Islands[i] = snap.Clone()
	}
	return &out
}

// EncodeIslandSnapshotFile serializes the composite into the same
// checksummed durable envelope EncodeSnapshotFile uses, so a torn write
// is detected on read rather than resumed from.
func EncodeIslandSnapshotFile(snap *IslandSnapshot) ([]byte, error) {
	raw, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	return encodeEnvelope(raw)
}

// DecodeIslandSnapshotFile parses an envelope produced by
// EncodeIslandSnapshotFile, verifying the checksum before trusting any
// field. Undecodable bytes and checksum mismatches both return an error
// wrapping ErrCorruptSnapshot.
func DecodeIslandSnapshotFile(data []byte) (*IslandSnapshot, error) {
	raw, err := decodeEnvelope(data)
	if err != nil {
		return nil, err
	}
	snap := &IslandSnapshot{}
	if err := json.Unmarshal(raw, snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	return snap, nil
}
