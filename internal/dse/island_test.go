package dse

import (
	"errors"
	"reflect"
	"testing"
)

// runRounds drives one search as a sequence of StopAfter rounds: run to
// each boundary in targets, capture the forced snapshot, round-trip it
// through JSON (like the coordinator's checkpoint files do), and resume.
// The final call runs to completion.
func runRounds(t *testing.T, run func(opts Options) (*Result, error), targets []int) *Result {
	t.Helper()
	var resume *Snapshot
	for _, target := range targets {
		var captured *Snapshot
		opts := Options{
			StopAfter:  target,
			Resume:     resume,
			Checkpoint: func(s *Snapshot) error { captured = s; return nil },
		}
		res, err := run(opts)
		if !errors.Is(err, ErrPaused) {
			t.Fatalf("round to %d: got err %v, want ErrPaused (result %+v)", target, err, res)
		}
		if captured == nil {
			t.Fatalf("round to %d: pause produced no snapshot", target)
		}
		if captured.Step != target {
			t.Fatalf("round to %d: snapshot at step %d", target, captured.Step)
		}
		resume = roundTrip(t, captured)
	}
	res, err := run(Options{Resume: resume})
	if err != nil {
		t.Fatalf("final round: %v", err)
	}
	return res
}

// TestStopAfterRoundsMatchUninterrupted is the pause/resume contract the
// island coordinator builds on: a run chopped into StopAfter rounds at
// arbitrary boundaries walks the identical trajectory and lands on a
// bit-identical front.
func TestStopAfterRoundsMatchUninterrupted(t *testing.T) {
	s := testSpace(12, 4, 3)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}

	cases := []struct {
		name    string
		run     func(opts Options) (*Result, error)
		targets []int
	}{
		{"nsga2", func(opts Options) (*Result, error) {
			return NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 16, Generations: 12, Seed: 9, Workers: 2}, opts)
		}, []int{3, 6, 9}},
		{"mosa", func(opts Options) (*Result, error) {
			return MOSAOpts(s, eval, MOSAConfig{Iterations: 8192, Restarts: 4, Seed: 5, Workers: 2}, opts)
		}, []int{2, 4, 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain, err := tc.run(Options{})
			if err != nil {
				t.Fatal(err)
			}
			rounds := runRounds(t, tc.run, tc.targets)
			sameFront(t, plain, rounds, "rounds vs uninterrupted")
		})
	}
}

// TestStopAfterAtFinalBoundaryNeverFires pins the edge: StopAfter at or
// past the last boundary is a plain run to completion.
func TestStopAfterAtFinalBoundaryNeverFires(t *testing.T) {
	s := testSpace(8, 3)
	eval := &convexEvaluator{space: s}
	for _, stop := range []int{5, 7} {
		res, err := NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 8, Generations: 5, Seed: 1}, Options{StopAfter: stop})
		if err != nil {
			t.Fatalf("StopAfter=%d: %v", stop, err)
		}
		if len(res.Front) == 0 {
			t.Fatalf("StopAfter=%d: empty front", stop)
		}
	}
}

func TestForkSeedDecorrelates(t *testing.T) {
	seen := map[int64]int{}
	for seed := int64(0); seed < 4; seed++ {
		for island := 0; island < 8; island++ {
			seen[ForkSeed(seed, island)]++
			// Island streams must not collide with MOSA chain streams of
			// the same base seed (chainSeed uses a different increment).
			if ForkSeed(seed, island) == chainSeed(seed, island) {
				t.Errorf("ForkSeed(%d,%d) collides with chainSeed", seed, island)
			}
		}
	}
	for v, n := range seen {
		if n > 1 {
			t.Errorf("forked seed %d produced %d times", v, n)
		}
	}
	if ForkSeed(7, 3) != ForkSeed(7, 3) {
		t.Error("ForkSeed is not deterministic")
	}
}

func TestConfigSteps(t *testing.T) {
	if got := (NSGA2Config{}).Steps(); got != 50 {
		t.Errorf("default NSGA2 Steps = %d, want 50", got)
	}
	if got := (NSGA2Config{Generations: 12}).Steps(); got != 12 {
		t.Errorf("NSGA2 Steps = %d, want 12", got)
	}
	// 8192 iterations over 4 chains = 2048 per chain = 8 segments of 256.
	if got := (MOSAConfig{Iterations: 8192, Restarts: 4}).Steps(); got != 8 {
		t.Errorf("MOSA Steps = %d, want 8", got)
	}
	if got := (MOSAConfig{}).Steps(); got != 5 {
		t.Errorf("default MOSA Steps = %d, want 5 (1250 iterations per chain)", got)
	}
}

// islandSnapshotPair produces one NSGA-II and one MOSA snapshot to drive
// the migration primitives with.
func islandSnapshotPair(t *testing.T) (*Space, *Snapshot, *Snapshot) {
	t.Helper()
	s := testSpace(12, 4, 3)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	var nsga2Snap, mosaSnap *Snapshot
	_, err := NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 16, Generations: 12, Seed: 9}, Options{
		StopAfter:  6,
		Checkpoint: func(sn *Snapshot) error { nsga2Snap = sn; return nil },
	})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	_, err = MOSAOpts(s, eval, MOSAConfig{Iterations: 8192, Restarts: 4, Seed: 5}, Options{
		StopAfter:  4,
		Checkpoint: func(sn *Snapshot) error { mosaSnap = sn; return nil },
	})
	if !errors.Is(err, ErrPaused) {
		t.Fatal(err)
	}
	return s, nsga2Snap, mosaSnap
}

func TestMigrantsOutDeterministicAndBounded(t *testing.T) {
	_, nsga2Snap, mosaSnap := islandSnapshotPair(t)
	for _, tc := range []struct {
		name string
		snap *Snapshot
	}{{"nsga2", nsga2Snap}, {"mosa", mosaSnap}} {
		t.Run(tc.name, func(t *testing.T) {
			a := MigrantsOut(tc.snap, 4)
			b := MigrantsOut(tc.snap, 4)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("MigrantsOut is not deterministic")
			}
			if len(a) == 0 || len(a) > 4 {
				t.Fatalf("got %d migrants, want 1..4", len(a))
			}
			for _, m := range a {
				if !m.Feasible || len(m.Objs) == 0 {
					t.Fatalf("migrant %+v is not a feasible evaluated point", m)
				}
			}
			// k beyond the front size clamps, never duplicates.
			huge := MigrantsOut(tc.snap, 1<<20)
			seen := map[string]bool{}
			for _, m := range huge {
				key := m.Config.Key()
				if seen[key] {
					t.Fatalf("clamped selection repeated %v", m.Config)
				}
				seen[key] = true
			}
		})
	}
	if MigrantsOut(nil, 4) != nil || MigrantsOut(nsga2Snap, 0) != nil {
		t.Error("nil snapshot / k=0 should yield no migrants")
	}
}

// TestInjectMigrantsResumes proves the injected snapshot is still a valid
// resume point, the injection leaves the input snapshot untouched, and
// injecting is deterministic.
func TestInjectMigrantsResumes(t *testing.T) {
	s, nsga2Snap, mosaSnap := islandSnapshotPair(t)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}

	migrants := MigrantsOut(mosaSnap, 4)
	before := roundTrip(t, nsga2Snap)

	inj1, err := InjectMigrants(s, nsga2Snap, migrants)
	if err != nil {
		t.Fatal(err)
	}
	inj2, err := InjectMigrants(s, nsga2Snap, migrants)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inj1, inj2) {
		t.Fatal("InjectMigrants is not deterministic")
	}
	if !reflect.DeepEqual(before, nsga2Snap) {
		t.Fatal("InjectMigrants mutated its input snapshot")
	}
	res1, err := NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 16, Generations: 12, Seed: 9},
		Options{Resume: roundTrip(t, inj1)})
	if err != nil {
		t.Fatalf("resume after injection: %v", err)
	}
	res2, err := NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 16, Generations: 12, Seed: 9},
		Options{Resume: roundTrip(t, inj1)})
	if err != nil {
		t.Fatal(err)
	}
	sameFront(t, res1, res2, "post-injection resume determinism")

	minj, err := InjectMigrants(s, mosaSnap, MigrantsOut(nsga2Snap, 4))
	if err != nil {
		t.Fatal(err)
	}
	mres, err := MOSAOpts(s, eval, MOSAConfig{Iterations: 8192, Restarts: 4, Seed: 5},
		Options{Resume: roundTrip(t, minj)})
	if err != nil {
		t.Fatalf("mosa resume after injection: %v", err)
	}
	if len(mres.Front) == 0 {
		t.Fatal("mosa post-injection run found nothing")
	}
}

// TestInjectMigrantsFiltersGarbage: invalid, infeasible and duplicate
// migrants are skipped, never an error; an all-garbage migration is a
// no-op clone.
func TestInjectMigrantsFiltersGarbage(t *testing.T) {
	s, nsga2Snap, _ := islandSnapshotPair(t)
	garbage := []SnapPoint{
		{Config: Config{99, 99, 99}, Objs: Objectives{1, 2}, Feasible: true},             // out of range
		{Config: Config{1, 1}, Objs: Objectives{1, 2}, Feasible: true},                   // wrong gene count
		{Config: Config{1, 1, 1}, Feasible: false},                                       // infeasible
		{Config: nsga2Snap.Population[0].Config, Objs: Objectives{1, 2}, Feasible: true}, // duplicate
	}
	out, err := InjectMigrants(s, nsga2Snap, garbage)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, nsga2Snap.Clone()) {
		t.Fatal("garbage injection changed the snapshot")
	}
}

func TestIslandSnapshotFileRoundTrip(t *testing.T) {
	s, nsga2Snap, _ := islandSnapshotPair(t)
	other := nsga2Snap.Clone()
	comp := &IslandSnapshot{
		Version:   IslandSnapshotVersion,
		Algorithm: "nsga2",
		Round:     2,
		Step:      nsga2Snap.Step,
		Islands:   []*Snapshot{nsga2Snap, other},
	}
	if err := comp.Validate("nsga2", 2, s); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeIslandSnapshotFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeIslandSnapshotFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(comp, back) {
		t.Fatal("island snapshot did not round-trip")
	}
	// A torn tail fails verification with ErrCorruptSnapshot.
	if _, err := DecodeIslandSnapshotFile(data[:len(data)/2]); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("torn file decoded: %v", err)
	}
	// Validation catches the mismatches failover must refuse.
	if err := comp.Validate("mosa", 2, s); err == nil {
		t.Error("algorithm mismatch accepted")
	}
	if err := comp.Validate("nsga2", 3, s); err == nil {
		t.Error("island count mismatch accepted")
	}
	comp.Islands[1].Step++
	if err := comp.Validate("nsga2", 2, s); err == nil {
		t.Error("step skew accepted")
	}
}
