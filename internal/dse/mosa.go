package dse

import (
	"fmt"
	"math"
	"math/rand"
)

// MOSAConfig parameterizes multi-objective simulated annealing.
type MOSAConfig struct {
	Iterations  int     // default 5000
	InitialTemp float64 // default 1.0
	Cooling     float64 // geometric factor per iteration; default 0.999
	Restarts    int     // independent chains; default 4
	Seed        int64
}

func (c MOSAConfig) withDefaults() MOSAConfig {
	if c.Iterations == 0 {
		c.Iterations = 5000
	}
	if c.InitialTemp == 0 {
		c.InitialTemp = 1.0
	}
	if c.Cooling == 0 {
		c.Cooling = 0.999
	}
	if c.Restarts == 0 {
		c.Restarts = 4
	}
	return c
}

// MOSA runs archive-based multi-objective simulated annealing in the
// spirit of Nam & Park [27]: a random walk over single-gene neighbours
// whose acceptance energy is the fraction of the current archive that
// dominates the candidate, so the chain is always pulled toward (and
// along) the front. Several independent chains share one archive.
//
// The paper reports that the model-driven DSE found fronts of equivalent
// quality with genetic algorithms and simulated annealing (§5.2); MOSA is
// here so that claim can be checked.
func MOSA(space *Space, eval Evaluator, cfg MOSAConfig) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Cooling <= 0 || cfg.Cooling >= 1 {
		return nil, fmt.Errorf("dse: cooling factor %g must be in (0,1)", cfg.Cooling)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	memo := newMemo(eval)
	var arch Archive

	energy := func(p Point) float64 {
		if !p.Feasible {
			return 2 // worse than any feasible energy
		}
		if arch.Len() == 0 {
			return 0
		}
		dominated := 0
		for _, q := range arch.Points() {
			if Dominates(q.Objs, p.Objs) {
				dominated++
			}
		}
		return float64(dominated) / float64(arch.Len())
	}

	for chain := 0; chain < cfg.Restarts; chain++ {
		cur := memo.eval(space.Random(rng))
		arch.Add(cur)
		curE := energy(cur)
		temp := cfg.InitialTemp
		for it := 0; it < cfg.Iterations/cfg.Restarts; it++ {
			cand := memo.eval(space.Neighbor(rng, cur.Config))
			arch.Add(cand)
			candE := energy(cand)
			if candE <= curE || rng.Float64() < math.Exp(-(candE-curE)/temp) {
				cur, curE = cand, candE
			}
			temp *= cfg.Cooling
		}
	}
	return &Result{Front: arch.Points(), Evaluated: memo.evaluated, Infeasible: memo.infeasible}, nil
}
