package dse

import (
	"fmt"
	"math"
	"math/rand"
)

// MOSAConfig parameterizes multi-objective simulated annealing. Zero
// values select the documented defaults; out-of-domain values (negative
// budgets or temperatures, a budget smaller than the chain count) are
// rejected by MOSA with a descriptive error rather than silently
// degenerating into zero-length chains. Seed may be any value — every
// seed defines a valid deterministic run.
type MOSAConfig struct {
	Iterations  int     `json:"iterations,omitempty"`   // total across all chains; default 5000
	InitialTemp float64 `json:"initial_temp,omitempty"` // default 1.0
	Cooling     float64 `json:"cooling,omitempty"`      // geometric factor per iteration; default 0.999
	Restarts    int     `json:"restarts,omitempty"`     // independent chains; default 4
	Seed        int64   `json:"seed,omitempty"`
	// Workers bounds how many chains anneal concurrently; <= 0 selects
	// GOMAXPROCS. Each chain owns a seed derived deterministically from
	// (Seed, chain index) and a private guiding archive, so results are
	// bit-identical at any worker count; the per-chain archives merge
	// into the returned front in chain order.
	Workers int `json:"workers,omitempty"`
}

// validate rejects out-of-domain values before defaulting.
func (c MOSAConfig) validate() error {
	if c.Iterations < 0 {
		return fmt.Errorf("dse: MOSA iteration budget %d is negative (use 0 for the default)", c.Iterations)
	}
	if c.Restarts < 0 {
		return fmt.Errorf("dse: MOSA restart count %d is negative (use 0 for the default)", c.Restarts)
	}
	if c.InitialTemp < 0 {
		return fmt.Errorf("dse: MOSA initial temperature %g is negative (use 0 for the default)", c.InitialTemp)
	}
	return nil
}

// Validate is the exported domain check, for callers (the exploration
// service) that want to reject a bad configuration before committing a
// worker to it. It accepts everything MOSA itself accepts: zero values
// select defaults, explicit values must be in domain.
func (c MOSAConfig) Validate() error {
	if err := c.validate(); err != nil {
		return err
	}
	if c.Cooling != 0 && (c.Cooling <= 0 || c.Cooling >= 1) {
		return fmt.Errorf("dse: cooling factor %g must be in (0,1)", c.Cooling)
	}
	d := c.withDefaults()
	if d.Iterations < d.Restarts {
		return fmt.Errorf("dse: MOSA budget of %d iterations gives the %d chains zero length",
			d.Iterations, d.Restarts)
	}
	return nil
}

func (c MOSAConfig) withDefaults() MOSAConfig {
	if c.Iterations == 0 {
		c.Iterations = 5000
	}
	if c.InitialTemp == 0 {
		c.InitialTemp = 1.0
	}
	if c.Cooling == 0 {
		c.Cooling = 0.999
	}
	if c.Restarts == 0 {
		c.Restarts = 4
	}
	return c
}

// chainSeed derives chain ch's RNG seed from the run seed with a
// SplitMix64-style mix, so chains draw decorrelated streams and the
// derivation is independent of execution order.
func chainSeed(seed int64, ch int) int64 {
	z := uint64(seed) + (uint64(ch)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// mosaSegment is the chain-boundary granularity: every chain advances this
// many iterations between synchronization points, where Options hooks
// (progress, checkpoint, cancellation) run. Results are independent of the
// segmentation — chains are deterministic walks whose state carries across
// segments — so the constant trades hook latency against barrier overhead.
const mosaSegment = 256

// MOSA runs archive-based multi-objective simulated annealing in the
// spirit of Nam & Park [27]: a random walk over single-gene neighbours
// whose acceptance energy is the fraction of the chain's archive that
// dominates the candidate, so the chain is always pulled toward (and
// along) the front. The independent chains run concurrently on the worker
// pool, share the memo cache (a configuration visited by two chains is
// evaluated once), and their archives merge deterministically at the end.
//
// The paper reports that the model-driven DSE found fronts of equivalent
// quality with genetic algorithms and simulated annealing (§5.2); MOSA is
// here so that claim can be checked.
func MOSA(space *Space, eval Evaluator, cfg MOSAConfig) (*Result, error) {
	return MOSAOpts(space, eval, cfg, Options{})
}

// MOSAOpts is MOSA under run Options. The chains advance in lock-stepped
// segments of mosaSegment iterations; between segments — never inside a
// chain's allocation-free iteration loop — the run emits progress, writes
// due checkpoints and honors cancellation. On cancellation the partial
// Result (the merge of every chain's archive so far) is returned together
// with ctx.Err().
func MOSAOpts(space *Space, eval Evaluator, cfg MOSAConfig, opts Options) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Cooling <= 0 || cfg.Cooling >= 1 {
		return nil, fmt.Errorf("dse: cooling factor %g must be in (0,1)", cfg.Cooling)
	}
	if cfg.Iterations < cfg.Restarts {
		return nil, fmt.Errorf("dse: MOSA budget of %d iterations gives the %d chains zero length",
			cfg.Iterations, cfg.Restarts)
	}
	pe := NewParallelEvaluator(eval, cfg.Workers)

	perChain := cfg.Iterations / cfg.Restarts
	segments := (perChain + mosaSegment - 1) / mosaSegment
	chains := make([]*mosaChain, cfg.Restarts)
	startSeg := 0
	var baseEval, baseInf int
	if opts.Resume != nil {
		if err := restoreChains(opts.Resume, space, cfg, pe, chains); err != nil {
			return nil, err
		}
		if opts.Resume.Step > segments {
			return nil, fmt.Errorf("dse: snapshot at segment %d is past the configured %d (budget %d iterations over %d chains)",
				opts.Resume.Step, segments, cfg.Iterations, cfg.Restarts)
		}
		startSeg = opts.Resume.Step
		baseEval, baseInf = opts.Resume.Evaluated, opts.Resume.Infeasible
	} else {
		seeds := opts.validSeeds(space, cfg.Restarts)
		for ch := range chains {
			chains[ch] = newMOSAChain(space, cfg, ch)
			if ch < len(seeds) {
				chains[ch].start = seeds[ch].Clone()
			}
		}
	}

	merged := func() *Archive {
		var arch Archive
		for _, c := range chains {
			for _, p := range c.arch.Points() {
				arch.Add(p)
			}
		}
		return &arch
	}
	result := func() *Result {
		evaluated, infeasible := pe.Stats()
		return &Result{Front: merged().Points(), Evaluated: baseEval + evaluated, Infeasible: baseInf + infeasible}
	}
	for seg := startSeg; seg < segments; seg++ {
		upTo := (seg + 1) * mosaSegment
		if upTo > perChain {
			upTo = perChain
		}
		ForEachWorker(cfg.Restarts, pe.Workers(), func(w, ch int) {
			chains[ch].run(space, pe, w, upTo)
		})
		evaluated, infeasible := pe.Stats()
		err := opts.boundary("mosa", seg+1, segments, baseEval+evaluated, baseInf+infeasible,
			pe, func() []Point { return merged().Points() },
			func() *Snapshot { return snapChains(seg+1, chains, baseEval+evaluated, baseInf+infeasible) })
		if err != nil {
			return result(), err
		}
	}
	return result(), nil
}

// mosaChain is one independent annealing chain: a private RNG, the current
// point and its energy, the temperature, the guiding archive, and a single
// gene buffer for candidate moves. The memo cache clones configurations it
// keeps, so a steady-state iteration (cache hit, archive unchanged)
// performs zero heap allocations.
type mosaChain struct {
	rng     *rand.Rand
	src     *splitMix64
	cfg     MOSAConfig
	buf     Config
	start   Config // warm-start point; nil draws the start uniformly
	cur     Point
	curE    float64
	temp    float64
	iter    int // iterations completed
	started bool
	arch    Archive
}

func newMOSAChain(space *Space, cfg MOSAConfig, ch int) *mosaChain {
	c := &mosaChain{cfg: cfg, buf: make(Config, len(space.Params)), temp: cfg.InitialTemp}
	c.rng, c.src = newSearchRand(chainSeed(cfg.Seed, ch))
	return c
}

// energy is the acceptance energy of a candidate: the fraction of the
// chain's archive that dominates it (2 for infeasible points, worse than
// any feasible energy).
func (c *mosaChain) energy(p Point) float64 {
	if !p.Feasible {
		return 2
	}
	if c.arch.Len() == 0 {
		return 0
	}
	dominated := 0
	for _, q := range c.arch.Points() {
		if Dominates(q.Objs, p.Objs) {
			dominated++
		}
	}
	return float64(dominated) / float64(c.arch.Len())
}

// run advances the chain until upTo iterations are complete, evaluating on
// worker w's private evaluator instance. The first call draws and
// evaluates the chain's starting point; state carries across calls, so
// segmented execution walks the identical trajectory an unsegmented run
// would.
func (c *mosaChain) run(space *Space, pe *ParallelEvaluator, w, upTo int) {
	if !c.started {
		if c.start != nil {
			copy(c.buf, c.start)
		} else {
			space.RandomInto(c.rng, c.buf)
		}
		c.cur = pe.evalFor(w, c.buf)
		c.arch.Add(c.cur)
		c.curE = c.energy(c.cur)
		c.started = true
	}
	for ; c.iter < upTo; c.iter++ {
		space.NeighborInto(c.rng, c.buf, c.cur.Config)
		cand := pe.evalFor(w, c.buf)
		c.arch.Add(cand)
		candE := c.energy(cand)
		if candE <= c.curE || c.rng.Float64() < math.Exp(-(candE-c.curE)/c.temp) {
			c.cur, c.curE = cand, candE
		}
		c.temp *= c.cfg.Cooling
	}
}

// snapChains captures every chain's state at a segment boundary.
func snapChains(step int, chains []*mosaChain, evaluated, infeasible int) *Snapshot {
	snap := &Snapshot{
		Version:    SnapshotVersion,
		Algorithm:  "mosa",
		Step:       step,
		Chains:     make([]ChainSnap, len(chains)),
		Evaluated:  evaluated,
		Infeasible: infeasible,
	}
	for i, c := range chains {
		snap.Chains[i] = ChainSnap{
			RNG:     c.src.state,
			Cur:     snapPoint(c.cur),
			CurE:    c.curE,
			Temp:    c.temp,
			Iter:    c.iter,
			Archive: snapPoints(c.arch.Points()),
		}
	}
	return snap
}

// restoreChains rebuilds the chains from a snapshot and primes the memo
// cache with every archived point.
func restoreChains(snap *Snapshot, space *Space, cfg MOSAConfig, pe *ParallelEvaluator, chains []*mosaChain) error {
	if err := snap.validateResume("mosa", space); err != nil {
		return err
	}
	if len(snap.Chains) != len(chains) {
		return fmt.Errorf("dse: snapshot has %d chains, configuration wants %d", len(snap.Chains), len(chains))
	}
	for i := range chains {
		cs := snap.Chains[i]
		c := newMOSAChain(space, cfg, i)
		c.src.state = cs.RNG
		c.cur = cs.Cur.point()
		c.curE = cs.CurE
		c.temp = cs.Temp
		c.iter = cs.Iter
		c.started = true
		restoreArchive(&c.arch, cs.Archive)
		pe.prime(c.cur)
		for _, p := range c.arch.Points() {
			pe.prime(p)
		}
		chains[i] = c
	}
	return nil
}
