package dse

import (
	"fmt"
	"math"
	"math/rand"
)

// MOSAConfig parameterizes multi-objective simulated annealing. Zero
// values select the documented defaults; out-of-domain values (negative
// budgets or temperatures, a budget smaller than the chain count) are
// rejected by MOSA with a descriptive error rather than silently
// degenerating into zero-length chains. Seed may be any value — every
// seed defines a valid deterministic run.
type MOSAConfig struct {
	Iterations  int     // total across all chains; default 5000
	InitialTemp float64 // default 1.0
	Cooling     float64 // geometric factor per iteration; default 0.999
	Restarts    int     // independent chains; default 4
	Seed        int64
	// Workers bounds how many chains anneal concurrently; <= 0 selects
	// GOMAXPROCS. Each chain owns a seed derived deterministically from
	// (Seed, chain index) and a private guiding archive, so results are
	// bit-identical at any worker count; the per-chain archives merge
	// into the returned front in chain order.
	Workers int
}

// validate rejects out-of-domain values before defaulting.
func (c MOSAConfig) validate() error {
	if c.Iterations < 0 {
		return fmt.Errorf("dse: MOSA iteration budget %d is negative (use 0 for the default)", c.Iterations)
	}
	if c.Restarts < 0 {
		return fmt.Errorf("dse: MOSA restart count %d is negative (use 0 for the default)", c.Restarts)
	}
	if c.InitialTemp < 0 {
		return fmt.Errorf("dse: MOSA initial temperature %g is negative (use 0 for the default)", c.InitialTemp)
	}
	return nil
}

func (c MOSAConfig) withDefaults() MOSAConfig {
	if c.Iterations == 0 {
		c.Iterations = 5000
	}
	if c.InitialTemp == 0 {
		c.InitialTemp = 1.0
	}
	if c.Cooling == 0 {
		c.Cooling = 0.999
	}
	if c.Restarts == 0 {
		c.Restarts = 4
	}
	return c
}

// chainSeed derives chain ch's RNG seed from the run seed with a
// SplitMix64-style mix, so chains draw decorrelated streams and the
// derivation is independent of execution order.
func chainSeed(seed int64, ch int) int64 {
	z := uint64(seed) + (uint64(ch)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// MOSA runs archive-based multi-objective simulated annealing in the
// spirit of Nam & Park [27]: a random walk over single-gene neighbours
// whose acceptance energy is the fraction of the chain's archive that
// dominates the candidate, so the chain is always pulled toward (and
// along) the front. The independent chains run concurrently on the worker
// pool, share the memo cache (a configuration visited by two chains is
// evaluated once), and their archives merge deterministically at the end.
//
// The paper reports that the model-driven DSE found fronts of equivalent
// quality with genetic algorithms and simulated annealing (§5.2); MOSA is
// here so that claim can be checked.
func MOSA(space *Space, eval Evaluator, cfg MOSAConfig) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Cooling <= 0 || cfg.Cooling >= 1 {
		return nil, fmt.Errorf("dse: cooling factor %g must be in (0,1)", cfg.Cooling)
	}
	if cfg.Iterations < cfg.Restarts {
		return nil, fmt.Errorf("dse: MOSA budget of %d iterations gives the %d chains zero length",
			cfg.Iterations, cfg.Restarts)
	}
	pe := NewParallelEvaluator(eval, cfg.Workers)

	chainArchives := make([]Archive, cfg.Restarts)
	ForEachWorker(cfg.Restarts, pe.Workers(), func(w, ch int) {
		annealChain(space, pe, w, cfg, ch, &chainArchives[ch])
	})

	var arch Archive
	for i := range chainArchives {
		for _, p := range chainArchives[i].Points() {
			arch.Add(p)
		}
	}
	evaluated, infeasible := pe.Stats()
	return &Result{Front: arch.Points(), Evaluated: evaluated, Infeasible: infeasible}, nil
}

// annealChain runs one independent annealing chain into arch, evaluating
// on worker w's private evaluator instance. The chain owns a single gene
// buffer for its candidate moves: the memo cache clones configurations it
// keeps, so a steady-state iteration (cache hit, archive unchanged)
// performs zero heap allocations.
func annealChain(space *Space, pe *ParallelEvaluator, w int, cfg MOSAConfig, ch int, arch *Archive) {
	rng := rand.New(rand.NewSource(chainSeed(cfg.Seed, ch)))

	energy := func(p Point) float64 {
		if !p.Feasible {
			return 2 // worse than any feasible energy
		}
		if arch.Len() == 0 {
			return 0
		}
		dominated := 0
		for _, q := range arch.Points() {
			if Dominates(q.Objs, p.Objs) {
				dominated++
			}
		}
		return float64(dominated) / float64(arch.Len())
	}

	buf := make(Config, len(space.Params))
	space.RandomInto(rng, buf)
	cur := pe.evalFor(w, buf)
	arch.Add(cur)
	curE := energy(cur)
	temp := cfg.InitialTemp
	for it := 0; it < cfg.Iterations/cfg.Restarts; it++ {
		space.NeighborInto(rng, buf, cur.Config)
		cand := pe.evalFor(w, buf)
		arch.Add(cand)
		candE := energy(cand)
		if candE <= curE || rng.Float64() < math.Exp(-(candE-curE)/temp) {
			cur, curE = cand, candE
		}
		temp *= cfg.Cooling
	}
}
