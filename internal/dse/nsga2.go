package dse

import (
	"fmt"
	"math/rand"
	"sort"
)

// NSGA2Config parameterizes the genetic algorithm. Zero values select the
// documented defaults; out-of-domain values (negative sizes, probabilities
// outside [0,1]) are rejected by NSGA2 with a descriptive error rather
// than silently degenerating the search. Seed may be any value — every
// seed defines a valid deterministic run.
type NSGA2Config struct {
	PopulationSize int     `json:"population_size,omitempty"` // default 64; must be even and ≥ 4
	Generations    int     `json:"generations,omitempty"`     // default 50
	CrossoverProb  float64 `json:"crossover_prob,omitempty"`  // default 0.9
	MutationProb   float64 `json:"mutation_prob,omitempty"`   // per gene; default 1/len(genes)
	Seed           int64   `json:"seed,omitempty"`
	// Workers bounds the evaluation pool each generation's offspring
	// batch fans out over; <= 0 selects GOMAXPROCS. Results are
	// bit-identical at any worker count: variation is driven by a single
	// seeded RNG stream independent of evaluation scheduling, and points
	// enter the archive in offspring order.
	Workers int `json:"workers,omitempty"`
}

// validate rejects out-of-domain values before defaulting.
func (c NSGA2Config) validate() error {
	if c.PopulationSize < 0 {
		return fmt.Errorf("dse: NSGA-II population size %d is negative (use 0 for the default)", c.PopulationSize)
	}
	if c.Generations < 0 {
		return fmt.Errorf("dse: NSGA-II generation count %d is negative (use 0 for the default)", c.Generations)
	}
	if c.CrossoverProb < 0 || c.CrossoverProb > 1 {
		return fmt.Errorf("dse: NSGA-II crossover probability %g out of [0,1]", c.CrossoverProb)
	}
	if c.MutationProb < 0 || c.MutationProb > 1 {
		return fmt.Errorf("dse: NSGA-II mutation probability %g out of [0,1]", c.MutationProb)
	}
	return nil
}

// Validate is the exported domain check, for callers (the exploration
// service) that want to reject a bad configuration before committing a
// worker to it. It accepts everything NSGA2 itself accepts: zero values
// select defaults, and an explicit population size must be even and ≥ 4.
func (c NSGA2Config) Validate() error {
	if err := c.validate(); err != nil {
		return err
	}
	if c.PopulationSize != 0 && (c.PopulationSize < 4 || c.PopulationSize%2 != 0) {
		return fmt.Errorf("dse: population size %d must be even and ≥ 4", c.PopulationSize)
	}
	return nil
}

func (c NSGA2Config) withDefaults(genes int) NSGA2Config {
	if c.PopulationSize == 0 {
		c.PopulationSize = 64
	}
	if c.Generations == 0 {
		c.Generations = 50
	}
	if c.CrossoverProb == 0 {
		c.CrossoverProb = 0.9
	}
	if c.MutationProb == 0 {
		c.MutationProb = 1 / float64(genes)
	}
	return c
}

// NSGA2 runs the elitist non-dominated-sorting genetic algorithm of Deb et
// al. — the "genetic algorithms (which have already been used in the WSN
// domain)" the paper drives with its model (§5.2). The returned front is
// the non-dominated set over every point evaluated during the run (in
// lexicographic objective order), not merely the final population.
//
// Each generation's offspring population is produced sequentially from the
// seeded RNG (tournament selection only reads the parent generation, so no
// offspring depends on a sibling's evaluation) and then evaluated in one
// batch across cfg.Workers. The generation loop runs on pre-sized, pooled
// buffers — gene scratch, the parent∪offspring union, the fast
// non-dominated sort's workspace — so steady-state generations are
// allocation-free: after the memo cache saturates, a generation performs
// zero heap allocations (TestNSGA2GenerationSteadyStateZeroAllocs pins
// this).
func NSGA2(space *Space, eval Evaluator, cfg NSGA2Config) (*Result, error) {
	return NSGA2Opts(space, eval, cfg, Options{})
}

// NSGA2Opts is NSGA2 under run Options: cancellation, progress and
// checkpointing hook in at generation boundaries only, so the
// allocation-free generation loop is untouched (a run with zero Options is
// bit-identical to NSGA2). On cancellation the partial Result — the front
// over everything evaluated so far — is returned together with ctx.Err().
func NSGA2Opts(space *Space, eval Evaluator, cfg NSGA2Config, opts Options) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(len(space.Params))
	if cfg.PopulationSize < 4 || cfg.PopulationSize%2 != 0 {
		return nil, fmt.Errorf("dse: population size %d must be even and ≥ 4", cfg.PopulationSize)
	}
	rng, src := newSearchRand(cfg.Seed)
	pe := NewParallelEvaluator(eval, cfg.Workers)
	var arch Archive

	r := newNSGA2Run(space, pe, cfg)
	startGen := 0
	var baseEval, baseInf int
	if opts.Resume != nil {
		if err := r.restore(opts.Resume, space, src, pe, &arch); err != nil {
			return nil, err
		}
		startGen = opts.Resume.Step
		// Primed cache entries never touch the Stats counters, so the
		// resumed run's totals are snapshot counts plus fresh evaluations.
		baseEval, baseInf = opts.Resume.Evaluated, opts.Resume.Infeasible
	} else {
		// Seeds fill at most half the initial population: transferred
		// fronts are often as large as the population itself, and letting
		// them displace every random individual kills the exploration that
		// finds regions the donor never reached.
		r.seed(rng, &arch, opts.validSeeds(space, (cfg.PopulationSize+1)/2))
	}
	result := func() *Result {
		evaluated, infeasible := pe.Stats()
		return &Result{Front: arch.Points(), Evaluated: baseEval + evaluated, Infeasible: baseInf + infeasible}
	}
	for gen := startGen; gen < cfg.Generations; gen++ {
		r.generation(rng, &arch)
		evaluated, infeasible := pe.Stats()
		err := opts.boundary("nsga2", gen+1, cfg.Generations, baseEval+evaluated, baseInf+infeasible,
			pe, func() []Point { return arch.Points() },
			func() *Snapshot { return r.snapshot(gen+1, src, &arch, baseEval+evaluated, baseInf+infeasible) })
		if err != nil {
			return result(), err
		}
	}
	return result(), nil
}

// snapshot captures the run at a generation boundary: the survivors with
// their carried union ranking, the archive, and the RNG state. Everything
// is deep-copied — the run keeps recycling its buffers after the call.
func (r *nsga2Run) snapshot(step int, src *splitMix64, arch *Archive, evaluated, infeasible int) *Snapshot {
	n := r.cfg.PopulationSize
	return &Snapshot{
		Version:    SnapshotVersion,
		Algorithm:  "nsga2",
		Step:       step,
		RNG:        src.state,
		Population: snapPoints(r.pop),
		Ranks:      append([]int(nil), r.ranks[:n]...),
		Crowd:      append(InfFloats(nil), r.crowd[:n]...),
		Archive:    snapPoints(arch.Points()),
		Evaluated:  evaluated,
		Infeasible: infeasible,
	}
}

// restore rebuilds the run from a snapshot: population, carried ranking,
// archive and RNG state come back bit-exactly, and the snapshot's points
// prime the memo cache so re-visited configurations are cache hits rather
// than re-evaluations.
func (r *nsga2Run) restore(snap *Snapshot, space *Space, src *splitMix64, pe *ParallelEvaluator, arch *Archive) error {
	if err := snap.validateResume("nsga2", space); err != nil {
		return err
	}
	n := r.cfg.PopulationSize
	if len(snap.Population) != n {
		return fmt.Errorf("dse: snapshot population %d does not match configured size %d", len(snap.Population), n)
	}
	if len(snap.Ranks) != n || len(snap.Crowd) != n {
		return fmt.Errorf("dse: snapshot ranking covers %d/%d points", len(snap.Ranks), n)
	}
	if snap.Step > r.cfg.Generations {
		return fmt.Errorf("dse: snapshot at generation %d is past the configured %d", snap.Step, r.cfg.Generations)
	}
	r.pop = append(r.pop[:0], restorePoints(snap.Population)...)
	copy(r.ranks, snap.Ranks)
	copy(r.crowd, snap.Crowd)
	restoreArchive(arch, snap.Archive)
	for _, p := range r.pop {
		pe.prime(p)
	}
	for _, p := range arch.Points() {
		pe.prime(p)
	}
	src.state = snap.RNG
	return nil
}

// nsga2Run owns every buffer of the generation loop, pre-sized so the
// steady state allocates nothing: gene scratch for one offspring batch,
// the parent∪offspring union, rank/crowding arrays for both, the fast
// sort's workspace and the environmental-selection permutation.
type nsga2Run struct {
	space *Space
	pe    *ParallelEvaluator
	cfg   NSGA2Config

	pop       []Point   // current population
	ranks     []int     // pop's ranks, carried from the union ranking
	crowd     []float64 // pop's crowding, carried from the union ranking
	children  []Config  // reusable gene buffers, one per offspring
	offspring []Point   // offspring evaluation results
	union     []Point   // pop ∪ offspring
	selIdx    []int     // environmental-selection permutation
	ws        sortWorkspace
	sel       selSorter
}

func newNSGA2Run(space *Space, pe *ParallelEvaluator, cfg NSGA2Config) *nsga2Run {
	n := cfg.PopulationSize
	r := &nsga2Run{
		space:     space,
		pe:        pe,
		cfg:       cfg,
		pop:       make([]Point, 0, n),
		ranks:     make([]int, n),
		crowd:     make([]float64, n),
		children:  make([]Config, n),
		offspring: make([]Point, n),
		union:     make([]Point, 0, 2*n),
		selIdx:    make([]int, 2*n),
	}
	for i := range r.children {
		r.children[i] = make(Config, len(space.Params))
	}
	return r
}

// seed builds and evaluates the initial population and ranks it for the
// first generation's tournaments. seeds (already validated and deduped,
// at most half of PopulationSize) fill the leading slots; the remainder
// is drawn uniformly. Seeded slots consume no RNG draws, so the unseeded
// tail — and with an empty seed list the whole run — matches the plain
// entry point draw for draw.
func (r *nsga2Run) seed(rng *rand.Rand, arch *Archive, seeds []Config) {
	for i, s := range seeds {
		copy(r.children[i], s)
	}
	for i := len(seeds); i < len(r.children); i++ {
		r.space.RandomInto(rng, r.children[i])
	}
	r.pop = r.pe.EvaluateBatchInto(r.children, r.pop)
	for _, p := range r.pop {
		arch.Add(p)
	}
	ranks, crowd := r.ws.rankAndCrowd(r.pop)
	copy(r.ranks, ranks)
	copy(r.crowd, crowd)
}

// generation advances the population by one NSGA-II step: binary
// tournaments pick parents, uniform crossover plus per-gene mutation
// produce offspring, and environmental selection keeps the best
// PopulationSize points of parents ∪ offspring by (rank, crowding). The
// union is ranked exactly once; the survivors carry their union rank and
// crowding into the next generation's tournaments, as in Deb's original
// formulation.
func (r *nsga2Run) generation(rng *rand.Rand, arch *Archive) {
	n := r.cfg.PopulationSize
	for i := 0; i < n; i++ {
		a := tournament(rng, r.pop, r.ranks, r.crowd)
		b := tournament(rng, r.pop, r.ranks, r.crowd)
		child := r.children[i]
		if rng.Float64() < r.cfg.CrossoverProb {
			r.space.CrossoverInto(rng, child, r.pop[a].Config, r.pop[b].Config)
		} else {
			copy(child, r.pop[a].Config)
		}
		r.space.MutateInPlace(rng, child, r.cfg.MutationProb)
	}
	r.offspring = r.pe.EvaluateBatchInto(r.children, r.offspring)
	for _, p := range r.offspring {
		arch.Add(p)
	}

	// Elitist environmental selection over parents ∪ offspring, reusing
	// the union's ranking for the survivors.
	r.union = r.union[:0]
	r.union = append(r.union, r.pop...)
	r.union = append(r.union, r.offspring...)
	uRanks, uCrowd := r.ws.rankAndCrowd(r.union)
	idx := r.selIdx[:len(r.union)]
	for i := range idx {
		idx[i] = i
	}
	r.sel.ranks, r.sel.crowd, r.sel.idx = uRanks, uCrowd, idx
	sort.Sort(&r.sel)
	r.pop = r.pop[:n]
	for i := 0; i < n; i++ {
		r.pop[i] = r.union[idx[i]]
		r.ranks[i] = uRanks[idx[i]]
		r.crowd[i] = uCrowd[idx[i]]
	}
}

// selSorter orders union indices best-first for environmental selection:
// rank ascending, then crowding descending, then index — a total order, so
// selection is deterministic even among exact (rank, crowding) ties.
type selSorter struct {
	ranks []int
	crowd []float64
	idx   []int
}

func (s *selSorter) Len() int      { return len(s.idx) }
func (s *selSorter) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *selSorter) Less(i, j int) bool {
	a, b := s.idx[i], s.idx[j]
	if s.ranks[a] != s.ranks[b] {
		return s.ranks[a] < s.ranks[b]
	}
	if s.crowd[a] != s.crowd[b] {
		return s.crowd[a] > s.crowd[b]
	}
	return a < b
}

// tournament returns the index of the binary-tournament winner: lower rank
// wins, ties broken by larger crowding distance. Exact (rank, crowding)
// ties flip a coin from the run's seeded rng — the old `crowd[a] >=
// crowd[b]` rule always handed ties to the first draw, a systematic
// selection bias toward earlier tournament positions. Runs stay
// deterministic per seed; the coin is only drawn on exact ties.
func tournament(rng *rand.Rand, pop []Point, ranks []int, crowd []float64) int {
	a, b := rng.Intn(len(pop)), rng.Intn(len(pop))
	switch {
	case ranks[a] < ranks[b]:
		return a
	case ranks[b] < ranks[a]:
		return b
	case crowd[a] > crowd[b]:
		return a
	case crowd[b] > crowd[a]:
		return b
	}
	if rng.Intn(2) == 0 {
		return a
	}
	return b
}
