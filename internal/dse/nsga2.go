package dse

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NSGA2Config parameterizes the genetic algorithm. Zero values select the
// documented defaults; out-of-domain values (negative sizes, probabilities
// outside [0,1]) are rejected by NSGA2 with a descriptive error rather
// than silently degenerating the search. Seed may be any value — every
// seed defines a valid deterministic run.
type NSGA2Config struct {
	PopulationSize int     // default 64; must be even and ≥ 4
	Generations    int     // default 50
	CrossoverProb  float64 // default 0.9
	MutationProb   float64 // per gene; default 1/len(genes)
	Seed           int64
	// Workers bounds the evaluation pool each generation's offspring
	// batch fans out over; <= 0 selects GOMAXPROCS. Results are
	// bit-identical at any worker count: variation is driven by a single
	// seeded RNG stream independent of evaluation scheduling, and points
	// enter the archive in offspring order.
	Workers int
}

// validate rejects out-of-domain values before defaulting.
func (c NSGA2Config) validate() error {
	if c.PopulationSize < 0 {
		return fmt.Errorf("dse: NSGA-II population size %d is negative (use 0 for the default)", c.PopulationSize)
	}
	if c.Generations < 0 {
		return fmt.Errorf("dse: NSGA-II generation count %d is negative (use 0 for the default)", c.Generations)
	}
	if c.CrossoverProb < 0 || c.CrossoverProb > 1 {
		return fmt.Errorf("dse: NSGA-II crossover probability %g out of [0,1]", c.CrossoverProb)
	}
	if c.MutationProb < 0 || c.MutationProb > 1 {
		return fmt.Errorf("dse: NSGA-II mutation probability %g out of [0,1]", c.MutationProb)
	}
	return nil
}

func (c NSGA2Config) withDefaults(genes int) NSGA2Config {
	if c.PopulationSize == 0 {
		c.PopulationSize = 64
	}
	if c.Generations == 0 {
		c.Generations = 50
	}
	if c.CrossoverProb == 0 {
		c.CrossoverProb = 0.9
	}
	if c.MutationProb == 0 {
		c.MutationProb = 1 / float64(genes)
	}
	return c
}

// NSGA2 runs the elitist non-dominated-sorting genetic algorithm of Deb et
// al. — the "genetic algorithms (which have already been used in the WSN
// domain)" the paper drives with its model (§5.2). The returned front is
// the non-dominated set over every point evaluated during the run, not
// merely the final population.
//
// Each generation's offspring population is produced sequentially from the
// seeded RNG (tournament selection only reads the parent generation, so no
// offspring depends on a sibling's evaluation) and then evaluated in one
// EvaluateBatch across cfg.Workers.
func NSGA2(space *Space, eval Evaluator, cfg NSGA2Config) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(len(space.Params))
	if cfg.PopulationSize < 4 || cfg.PopulationSize%2 != 0 {
		return nil, fmt.Errorf("dse: population size %d must be even and ≥ 4", cfg.PopulationSize)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pe := NewParallelEvaluator(eval, cfg.Workers)
	var arch Archive

	seeds := make([]Config, cfg.PopulationSize)
	for i := range seeds {
		seeds[i] = space.Random(rng)
	}
	pop := pe.EvaluateBatch(seeds)
	for _, p := range pop {
		arch.Add(p)
	}

	for gen := 0; gen < cfg.Generations; gen++ {
		ranks, crowd := rankAndCrowd(pop)

		// Variation: binary tournaments pick parents, uniform
		// crossover plus per-gene mutation produce offspring.
		children := make([]Config, 0, cfg.PopulationSize)
		for len(children) < cfg.PopulationSize {
			a := tournament(rng, pop, ranks, crowd)
			b := tournament(rng, pop, ranks, crowd)
			var child Config
			if rng.Float64() < cfg.CrossoverProb {
				child = space.Crossover(rng, pop[a].Config, pop[b].Config)
			} else {
				child = pop[a].Config.Clone()
			}
			children = append(children, space.Mutate(rng, child, cfg.MutationProb))
		}
		offspring := pe.EvaluateBatch(children)
		for _, p := range offspring {
			arch.Add(p)
		}

		// Elitist environmental selection over parents ∪ offspring.
		pop = environmentalSelection(append(pop, offspring...), cfg.PopulationSize)
	}
	evaluated, infeasible := pe.Stats()
	return &Result{Front: arch.Points(), Evaluated: evaluated, Infeasible: infeasible}, nil
}

// rankAndCrowd computes the non-domination rank (0 = best) and crowding
// distance of each population member under constrained dominance.
func rankAndCrowd(pop []Point) (ranks []int, crowd []float64) {
	n := len(pop)
	ranks = make([]int, n)
	crowd = make([]float64, n)

	dominatedBy := make([][]int, n) // dominatedBy[i]: indices i dominates
	count := make([]int, n)         // how many dominate i
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if dominatesConstrained(pop[i], pop[j]) {
				dominatedBy[i] = append(dominatedBy[i], j)
			} else if dominatesConstrained(pop[j], pop[i]) {
				count[i]++
			}
		}
	}
	var front []int
	for i := 0; i < n; i++ {
		if count[i] == 0 {
			ranks[i] = 0
			front = append(front, i)
		}
	}
	rank := 0
	for len(front) > 0 {
		var next []int
		for _, i := range front {
			for _, j := range dominatedBy[i] {
				count[j]--
				if count[j] == 0 {
					ranks[j] = rank + 1
					next = append(next, j)
				}
			}
		}
		// Crowding within this front.
		members := make([]Point, len(front))
		for k, i := range front {
			members[k] = pop[i]
		}
		d := CrowdingDistance(members)
		for k, i := range front {
			crowd[i] = d[k]
		}
		front = next
		rank++
	}
	return ranks, crowd
}

// tournament returns the index of the binary-tournament winner: lower rank
// wins, ties broken by larger crowding distance.
func tournament(rng *rand.Rand, pop []Point, ranks []int, crowd []float64) int {
	a, b := rng.Intn(len(pop)), rng.Intn(len(pop))
	switch {
	case ranks[a] < ranks[b]:
		return a
	case ranks[b] < ranks[a]:
		return b
	case crowd[a] >= crowd[b]:
		return a
	default:
		return b
	}
}

// environmentalSelection keeps the best `size` points by (rank, crowding).
func environmentalSelection(union []Point, size int) []Point {
	ranks, crowd := rankAndCrowd(union)
	idx := make([]int, len(union))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if ranks[ia] != ranks[ib] {
			return ranks[ia] < ranks[ib]
		}
		ca, cb := crowd[ia], crowd[ib]
		if math.IsInf(ca, 1) && math.IsInf(cb, 1) {
			return ia < ib // stable among boundary points
		}
		return ca > cb
	})
	out := make([]Point, size)
	for i := 0; i < size; i++ {
		out[i] = union[idx[i]]
	}
	return out
}
