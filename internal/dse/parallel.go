package dse

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// memoShards is the number of independently locked cache shards. Sharding
// keeps workers from serializing on one mutex when the evaluator is cheap
// relative to the cache lookup.
const memoShards = 64

// memoEntry is one cached evaluation. The goroutine that inserts the entry
// owns the evaluation; every other goroutine that hits the same
// configuration blocks on done until the point is filled in. This gives
// exactly-once evaluation per distinct configuration regardless of
// scheduling, which is what keeps the Evaluated/Infeasible counts identical
// at any worker count. Entries hashing to the same uint64 chain through
// next; cfg disambiguates them, so a hash collision costs a comparison,
// never a wrong result.
type memoEntry struct {
	cfg  Config
	next *memoEntry
	done chan struct{}
	p    Point
}

type memoShard struct {
	mu      sync.Mutex
	entries map[uint64]*memoEntry
}

// IntoEvaluator is an Evaluator that can additionally write its objectives
// into a caller-provided buffer of length NumObjectives(), avoiding the
// per-call Objectives allocation. Compiled evaluators (casestudy and
// scenario Compile) implement it; the batch runtime uses it on cache
// misses so the only steady-state allocations left are the cache entries
// themselves — one per distinct configuration, ever.
type IntoEvaluator interface {
	Evaluator
	EvaluateInto(c Config, objs Objectives) error
}

// Forkable is an Evaluator that can hand out per-worker instances sharing
// its immutable tables but owning private mutable scratch. The batch
// runtime forks one instance per worker, so the scratch needs no
// synchronization: workers partition batch indices and each index is
// evaluated entirely on one worker's instance.
type Forkable interface {
	Fork() Evaluator
}

// ParallelEvaluator wraps an Evaluator with a bounded worker pool and a
// sharded, mutex-guarded memo cache keyed on the configurations' packed
// uint64 hash. It is the batch-evaluation runtime every search algorithm in
// this package runs on: the sequential path is simply workers = 1.
//
// Determinism contract: the wrapped Evaluator must be a pure function of
// the configuration (every evaluator in this repository is). Under that
// assumption EvaluateBatch returns bit-identical results in input order at
// any worker count, each distinct configuration is evaluated exactly once
// process-wide, and Stats reports scheduling-independent counts.
//
// The wrapped Evaluator is called from multiple goroutines concurrently;
// stateless evaluators need no synchronization of their own, and Forkable
// evaluators get one private instance per worker.
type ParallelEvaluator struct {
	inner      Evaluator
	perWorker  []Evaluator // perWorker[w] is used only by worker w
	workers    int
	nobj       int
	shards     [memoShards]memoShard
	evaluated  atomic.Int64
	infeasible atomic.Int64
	hits       atomic.Int64
}

// NewParallelEvaluator wraps inner with a batch runtime running at most
// workers concurrent evaluations. workers <= 0 selects GOMAXPROCS.
func NewParallelEvaluator(inner Evaluator, workers int) *ParallelEvaluator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pe := &ParallelEvaluator{inner: inner, workers: workers, nobj: inner.NumObjectives()}
	pe.perWorker = make([]Evaluator, workers)
	for w := range pe.perWorker {
		if f, ok := inner.(Forkable); ok {
			pe.perWorker[w] = f.Fork()
		} else {
			pe.perWorker[w] = inner
		}
	}
	for i := range pe.shards {
		pe.shards[i].entries = make(map[uint64]*memoEntry)
	}
	return pe
}

// Workers returns the pool bound.
func (pe *ParallelEvaluator) Workers() int { return pe.workers }

// NumObjectives forwards to the wrapped evaluator, so a ParallelEvaluator
// is itself usable wherever an objective count is needed.
func (pe *ParallelEvaluator) NumObjectives() int { return pe.nobj }

// Eval evaluates one configuration through the cache. Safe for concurrent
// use; a configuration in flight on another goroutine is waited for, not
// re-evaluated.
func (pe *ParallelEvaluator) Eval(c Config) Point {
	return pe.evalOn(pe.inner, c)
}

// evalFor evaluates c on worker w's private evaluator instance. The caller
// must guarantee at most one goroutine uses each w at a time (ForEachWorker
// does).
func (pe *ParallelEvaluator) evalFor(w int, c Config) Point {
	return pe.evalOn(pe.perWorker[w], c)
}

// evalOn runs the memo-cache protocol around inner. A cache hit allocates
// nothing: the key is the packed hash, collisions chain through the shard's
// entries, and the stored Point is returned as-is.
func (pe *ParallelEvaluator) evalOn(inner Evaluator, c Config) Point {
	h := c.Hash()
	sh := &pe.shards[h%memoShards]
	sh.mu.Lock()
	head := sh.entries[h]
	for e := head; e != nil; e = e.next {
		if e.cfg.Equal(c) {
			sh.mu.Unlock()
			pe.hits.Add(1)
			<-e.done
			return e.p
		}
	}
	e := &memoEntry{cfg: c.Clone(), next: head, done: make(chan struct{})}
	sh.entries[h] = e
	sh.mu.Unlock()

	objs, err := pe.evaluate(inner, c)
	e.p = Point{Config: e.cfg, Objs: objs, Feasible: err == nil}
	pe.evaluated.Add(1)
	if err != nil {
		pe.infeasible.Add(1)
	}
	close(e.done)
	return e.p
}

// prime inserts an already-evaluated point into the memo cache without
// touching the Stats counters — how resumed searches rehydrate the results
// a snapshot carries, so re-drawn configurations are cache hits instead of
// re-evaluations. A configuration already cached is left as-is.
func (pe *ParallelEvaluator) prime(p Point) {
	h := p.Config.Hash()
	sh := &pe.shards[h%memoShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	head := sh.entries[h]
	for e := head; e != nil; e = e.next {
		if e.cfg.Equal(p.Config) {
			return
		}
	}
	done := make(chan struct{})
	close(done)
	cfg := p.Config.Clone()
	sh.entries[h] = &memoEntry{
		cfg:  cfg,
		next: head,
		done: done,
		p:    Point{Config: cfg, Objs: append(Objectives(nil), p.Objs...), Feasible: p.Feasible},
	}
}

// evaluate dispatches to the scratch-reuse API when inner provides one.
// The Objectives buffer it fills is the one stored in the cache entry, so
// the compiled path's only per-miss allocations are the entry and that
// buffer — both of which outlive the call by design.
func (pe *ParallelEvaluator) evaluate(inner Evaluator, c Config) (Objectives, error) {
	if ie, ok := inner.(IntoEvaluator); ok {
		objs := make(Objectives, pe.nobj)
		if err := ie.EvaluateInto(c, objs); err != nil {
			return nil, err
		}
		return objs, nil
	}
	return inner.Evaluate(c)
}

// ForEach runs fn(i) for every i in [0,n) on at most workers goroutines
// (workers <= 0 selects GOMAXPROCS; one worker runs inline). Workers claim
// indices from an atomic counter, so scheduling affects only when each
// index runs, never whether. It is the pool primitive beneath
// EvaluateBatch, MOSA's chains, and the experiments job runner.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with worker identity: fn(w, i) runs index i on
// worker w, where w ranges over [0, min(workers, n)) and each w executes on
// exactly one goroutine. Worker-indexed scratch therefore needs no
// synchronization.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// EvaluateBatch evaluates every configuration, fanning the batch across the
// worker pool, and returns the points in input order: out[i] is configs[i]'s
// evaluation. Duplicate configurations (within the batch or across batches)
// cost one evaluation and yield the identical Point.
func (pe *ParallelEvaluator) EvaluateBatch(configs []Config) []Point {
	return pe.EvaluateBatchInto(configs, nil)
}

// EvaluateBatchInto is EvaluateBatch writing into a caller-provided slice,
// which is grown only when its capacity is short and returned re-sliced to
// len(configs) — the allocation-free form the generation loops run on.
// With one worker the batch runs inline on the caller's goroutine, so a
// fully memoized batch performs zero heap allocations.
func (pe *ParallelEvaluator) EvaluateBatchInto(configs []Config, out []Point) []Point {
	if cap(out) < len(configs) {
		out = make([]Point, len(configs))
	}
	out = out[:len(configs)]
	if pe.workers <= 1 {
		for i := range configs {
			out[i] = pe.evalFor(0, configs[i])
		}
		return out
	}
	ForEachWorker(len(configs), pe.workers, func(w, i int) {
		out[i] = pe.evalFor(w, configs[i])
	})
	return out
}

// Stats returns how many distinct configurations have been evaluated and
// how many of those were infeasible. The counts are scheduling-independent:
// they depend only on the set of configurations submitted.
func (pe *ParallelEvaluator) Stats() (evaluated, infeasible int) {
	return int(pe.evaluated.Load()), int(pe.infeasible.Load())
}

// CacheStats returns memo-cache traffic: lookups is every evaluation
// request routed through the cache (hits + distinct evaluations), hits
// the requests answered without running the evaluator. The hit rate
// hits/lookups is the telemetry signal for how much of the search is
// revisiting known configurations. Unlike Stats, hits is mildly
// scheduling-dependent: a configuration raced by two goroutines counts
// one evaluation and one hit regardless of which wins, but repeated
// draws of cached points depend only on the search trajectory.
func (pe *ParallelEvaluator) CacheStats() (lookups, hits int64) {
	h := pe.hits.Load()
	return h + pe.evaluated.Load(), h
}
