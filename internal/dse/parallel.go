package dse

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// memoShards is the number of independently locked cache shards. Sharding
// keeps workers from serializing on one mutex when the evaluator is cheap
// relative to the cache lookup.
const memoShards = 64

// memoEntry is one cached evaluation. The goroutine that inserts the entry
// owns the evaluation; every other goroutine that hits the same key blocks
// on done until the point is filled in. This gives exactly-once evaluation
// per distinct configuration regardless of scheduling, which is what keeps
// the Evaluated/Infeasible counts identical at any worker count.
type memoEntry struct {
	done chan struct{}
	p    Point
}

type memoShard struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
}

// ParallelEvaluator wraps an Evaluator with a bounded worker pool and a
// sharded, mutex-guarded memo cache. It is the batch-evaluation runtime
// every search algorithm in this package runs on: the sequential path is
// simply workers = 1.
//
// Determinism contract: the wrapped Evaluator must be a pure function of
// the configuration (every evaluator in this repository is). Under that
// assumption EvaluateBatch returns bit-identical results in input order at
// any worker count, each distinct configuration is evaluated exactly once
// process-wide, and Stats reports scheduling-independent counts.
//
// The wrapped Evaluator is called from multiple goroutines concurrently;
// stateless evaluators need no synchronization of their own.
type ParallelEvaluator struct {
	inner      Evaluator
	workers    int
	shards     [memoShards]memoShard
	evaluated  atomic.Int64
	infeasible atomic.Int64
}

// NewParallelEvaluator wraps inner with a batch runtime running at most
// workers concurrent evaluations. workers <= 0 selects GOMAXPROCS.
func NewParallelEvaluator(inner Evaluator, workers int) *ParallelEvaluator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pe := &ParallelEvaluator{inner: inner, workers: workers}
	for i := range pe.shards {
		pe.shards[i].entries = make(map[string]*memoEntry)
	}
	return pe
}

// Workers returns the pool bound.
func (pe *ParallelEvaluator) Workers() int { return pe.workers }

// NumObjectives forwards to the wrapped evaluator, so a ParallelEvaluator
// is itself usable wherever an objective count is needed.
func (pe *ParallelEvaluator) NumObjectives() int { return pe.inner.NumObjectives() }

// shardFor hashes the memo key (FNV-1a) onto a shard.
func (pe *ParallelEvaluator) shardFor(key string) *memoShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &pe.shards[h%memoShards]
}

// Eval evaluates one configuration through the cache. Safe for concurrent
// use; a configuration in flight on another goroutine is waited for, not
// re-evaluated.
func (pe *ParallelEvaluator) Eval(c Config) Point {
	key := c.Key()
	sh := pe.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.mu.Unlock()
		<-e.done
		return e.p
	}
	e := &memoEntry{done: make(chan struct{})}
	sh.entries[key] = e
	sh.mu.Unlock()

	objs, err := pe.inner.Evaluate(c)
	e.p = Point{Config: c.Clone(), Objs: objs, Feasible: err == nil}
	pe.evaluated.Add(1)
	if err != nil {
		pe.infeasible.Add(1)
	}
	close(e.done)
	return e.p
}

// ForEach runs fn(i) for every i in [0,n) on at most workers goroutines
// (workers <= 0 selects GOMAXPROCS; one worker runs inline). Workers claim
// indices from an atomic counter, so scheduling affects only when each
// index runs, never whether. It is the pool primitive beneath
// EvaluateBatch, MOSA's chains, and the experiments job runner.
func ForEach(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// EvaluateBatch evaluates every configuration, fanning the batch across the
// worker pool, and returns the points in input order: out[i] is configs[i]'s
// evaluation. Duplicate configurations (within the batch or across batches)
// cost one evaluation and yield the identical Point.
func (pe *ParallelEvaluator) EvaluateBatch(configs []Config) []Point {
	out := make([]Point, len(configs))
	ForEach(len(configs), pe.workers, func(i int) {
		out[i] = pe.Eval(configs[i])
	})
	return out
}

// Stats returns how many distinct configurations have been evaluated and
// how many of those were infeasible. The counts are scheduling-independent:
// they depend only on the set of configurations submitted.
func (pe *ParallelEvaluator) Stats() (evaluated, infeasible int) {
	return int(pe.evaluated.Load()), int(pe.infeasible.Load())
}
