package dse

import (
	"reflect"
	"sync"
	"testing"
)

// sameResult asserts two search results are bit-identical: same front
// (configs, objectives, feasibility, order) and same counts.
func sameResult(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if a.Evaluated != b.Evaluated || a.Infeasible != b.Infeasible {
		t.Fatalf("%s: counts differ: (%d,%d) vs (%d,%d)",
			label, a.Evaluated, a.Infeasible, b.Evaluated, b.Infeasible)
	}
	if len(a.Front) != len(b.Front) {
		t.Fatalf("%s: front sizes differ: %d vs %d", label, len(a.Front), len(b.Front))
	}
	for i := range a.Front {
		if !reflect.DeepEqual(a.Front[i], b.Front[i]) {
			t.Fatalf("%s: front point %d differs:\n%+v\nvs\n%+v", label, i, a.Front[i], b.Front[i])
		}
	}
}

// TestEvaluateBatchOrderAndDedup checks the batch contract: points come
// back in input order, duplicates coalesce to one evaluation, and Stats
// counts distinct configurations.
func TestEvaluateBatchOrderAndDedup(t *testing.T) {
	s := testSpace(5, 4)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	pe := NewParallelEvaluator(eval, 8)

	var configs []Config
	s.Iterate(func(c Config) bool {
		configs = append(configs, c.Clone(), c.Clone()) // every point twice
		return true
	})
	pts := pe.EvaluateBatch(configs)
	if len(pts) != len(configs) {
		t.Fatalf("got %d points for %d configs", len(pts), len(configs))
	}
	for i, p := range pts {
		if !reflect.DeepEqual(p.Config, configs[i]) {
			t.Fatalf("point %d is for config %v, want %v", i, p.Config, configs[i])
		}
		want, err := eval.Evaluate(configs[i])
		if p.Feasible != (err == nil) {
			t.Fatalf("point %d feasibility %v, want error=%v", i, p.Feasible, err)
		}
		if p.Feasible && !reflect.DeepEqual(p.Objs, want) {
			t.Fatalf("point %d objs %v, want %v", i, p.Objs, want)
		}
	}
	evaluated, infeasible := pe.Stats()
	if evaluated != 20 {
		t.Errorf("evaluated %d distinct configs, space has 20", evaluated)
	}
	if infeasible == 0 {
		t.Error("constrained space reported no infeasible configs")
	}
}

// TestParallelEvaluatorConcurrentBatches hammers one shared evaluator from
// many goroutines over an overlapping key set — the -race exercise of the
// sharded cache.
func TestParallelEvaluatorConcurrentBatches(t *testing.T) {
	s := testSpace(7, 5, 3)
	pe := NewParallelEvaluator(&convexEvaluator{space: s}, 4)
	var all []Config
	s.Iterate(func(c Config) bool {
		all = append(all, c.Clone())
		return true
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine submits a rotated view of the same keys.
			batch := append(append([]Config{}, all[g*10:]...), all[:g*10]...)
			pe.EvaluateBatch(batch)
		}(g)
	}
	wg.Wait()
	if evaluated, _ := pe.Stats(); evaluated != len(all) {
		t.Errorf("evaluated %d distinct configs, want %d", evaluated, len(all))
	}
}

// TestNSGA2WorkerEquivalence is the headline determinism guarantee: the
// parallel path returns the sequential path's front bit for bit.
func TestNSGA2WorkerEquivalence(t *testing.T) {
	s := testSpace(12, 4, 3)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	cfg := NSGA2Config{PopulationSize: 24, Generations: 15, Seed: 9}
	cfg.Workers = 1
	seq, err := NSGA2(s, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		par, err := NSGA2(s, eval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, seq, par, "nsga2")
	}
}

// TestMOSAWorkerEquivalence checks the per-chain seeding and chain-order
// archive merge: concurrent chains reproduce the sequential run.
func TestMOSAWorkerEquivalence(t *testing.T) {
	s := testSpace(15, 4)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	cfg := MOSAConfig{Iterations: 2000, Restarts: 4, Seed: 5}
	cfg.Workers = 1
	seq, err := MOSA(s, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		par, err := MOSA(s, eval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, seq, par, "mosa")
	}
}

// TestExhaustiveWorkerEquivalence checks batched enumeration.
func TestExhaustiveWorkerEquivalence(t *testing.T) {
	s := testSpace(9, 5, 4)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	seq, err := ExhaustiveParallel(s, eval, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExhaustiveParallel(s, eval, 1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, seq, par, "exhaustive")
	// And the single-worker wrapper matches too.
	wrapped, err := Exhaustive(s, eval, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, seq, wrapped, "exhaustive wrapper")
}

// TestRandomSearchWorkerEquivalence checks the pre-drawn batch: the RNG
// stream never observes the worker count.
func TestRandomSearchWorkerEquivalence(t *testing.T) {
	s := testSpace(11, 3)
	eval := &convexEvaluator{space: s}
	seq, err := RandomSearchParallel(s, eval, 400, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RandomSearchParallel(s, eval, 400, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, seq, par, "random")
}
