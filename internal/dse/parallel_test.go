package dse

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// sameResult asserts two search results are bit-identical: same front
// (configs, objectives, feasibility, order) and same counts.
func sameResult(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if a.Evaluated != b.Evaluated || a.Infeasible != b.Infeasible {
		t.Fatalf("%s: counts differ: (%d,%d) vs (%d,%d)",
			label, a.Evaluated, a.Infeasible, b.Evaluated, b.Infeasible)
	}
	if len(a.Front) != len(b.Front) {
		t.Fatalf("%s: front sizes differ: %d vs %d", label, len(a.Front), len(b.Front))
	}
	for i := range a.Front {
		if !reflect.DeepEqual(a.Front[i], b.Front[i]) {
			t.Fatalf("%s: front point %d differs:\n%+v\nvs\n%+v", label, i, a.Front[i], b.Front[i])
		}
	}
}

// TestEvaluateBatchOrderAndDedup checks the batch contract: points come
// back in input order, duplicates coalesce to one evaluation, and Stats
// counts distinct configurations.
func TestEvaluateBatchOrderAndDedup(t *testing.T) {
	s := testSpace(5, 4)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	pe := NewParallelEvaluator(eval, 8)

	var configs []Config
	s.Iterate(func(c Config) bool {
		configs = append(configs, c.Clone(), c.Clone()) // every point twice
		return true
	})
	pts := pe.EvaluateBatch(configs)
	if len(pts) != len(configs) {
		t.Fatalf("got %d points for %d configs", len(pts), len(configs))
	}
	for i, p := range pts {
		if !reflect.DeepEqual(p.Config, configs[i]) {
			t.Fatalf("point %d is for config %v, want %v", i, p.Config, configs[i])
		}
		want, err := eval.Evaluate(configs[i])
		if p.Feasible != (err == nil) {
			t.Fatalf("point %d feasibility %v, want error=%v", i, p.Feasible, err)
		}
		if p.Feasible && !reflect.DeepEqual(p.Objs, want) {
			t.Fatalf("point %d objs %v, want %v", i, p.Objs, want)
		}
	}
	evaluated, infeasible := pe.Stats()
	if evaluated != 20 {
		t.Errorf("evaluated %d distinct configs, space has 20", evaluated)
	}
	if infeasible == 0 {
		t.Error("constrained space reported no infeasible configs")
	}
}

// TestParallelEvaluatorConcurrentBatches hammers one shared evaluator from
// many goroutines over an overlapping key set — the -race exercise of the
// sharded cache.
func TestParallelEvaluatorConcurrentBatches(t *testing.T) {
	s := testSpace(7, 5, 3)
	pe := NewParallelEvaluator(&convexEvaluator{space: s}, 4)
	var all []Config
	s.Iterate(func(c Config) bool {
		all = append(all, c.Clone())
		return true
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine submits a rotated view of the same keys.
			batch := append(append([]Config{}, all[g*10:]...), all[:g*10]...)
			pe.EvaluateBatch(batch)
		}(g)
	}
	wg.Wait()
	if evaluated, _ := pe.Stats(); evaluated != len(all) {
		t.Errorf("evaluated %d distinct configs, want %d", evaluated, len(all))
	}
}

// TestConfigHashEqual checks the memo-key pair: equal configs hash and
// compare equal; gene and length perturbations change Equal (and, for
// these near-miss cases, the hash too).
func TestConfigHashEqual(t *testing.T) {
	c := Config{3, 0, 7, 2}
	if !c.Equal(Config{3, 0, 7, 2}) || c.Hash() != (Config{3, 0, 7, 2}).Hash() {
		t.Fatal("identical configs must hash and compare equal")
	}
	for _, d := range []Config{{3, 0, 7, 3}, {0, 3, 7, 2}, {3, 0, 7}, {3, 0, 7, 2, 0}} {
		if c.Equal(d) {
			t.Fatalf("Equal(%v, %v) = true", c, d)
		}
		if c.Hash() == d.Hash() {
			t.Fatalf("near-miss %v collides with %v (possible but indicates a weak hash)", d, c)
		}
	}
}

// countingEvaluator counts evaluations; used to prove exactly-once caching
// over two full passes of the space.
type countingEvaluator struct {
	inner Evaluator
	calls atomic.Int64
}

func (e *countingEvaluator) NumObjectives() int { return e.inner.NumObjectives() }
func (e *countingEvaluator) Evaluate(c Config) (Objectives, error) {
	e.calls.Add(1)
	return e.inner.Evaluate(c)
}

// TestMemoCollisionChain drives hundreds of distinct configurations
// through the 64-shard cache (so shards carry multi-entry chains) and
// checks each is evaluated exactly once and keeps its own result.
func TestMemoCollisionChain(t *testing.T) {
	s := testSpace(6, 6, 6)
	counting := &countingEvaluator{inner: &convexEvaluator{space: s}}
	pe := NewParallelEvaluator(counting, 4)
	var all []Config
	s.Iterate(func(c Config) bool {
		all = append(all, c.Clone())
		return true
	})
	// Two passes: the second must be served entirely from the cache.
	first := pe.EvaluateBatch(all)
	second := pe.EvaluateBatch(all)
	if got := counting.calls.Load(); got != int64(len(all)) {
		t.Fatalf("%d evaluator calls for %d distinct configs", got, len(all))
	}
	for i := range all {
		if !reflect.DeepEqual(first[i], second[i]) {
			t.Fatalf("config %v: cached point differs from first evaluation", all[i])
		}
		want, _ := (&convexEvaluator{space: s}).Evaluate(all[i])
		if !reflect.DeepEqual(first[i].Objs, want) {
			t.Fatalf("config %v: objs %v, want %v (collision cross-talk?)", all[i], first[i].Objs, want)
		}
	}
}

// forkEvaluator records how many instances Fork produced and which
// instances evaluated, proving each worker gets (and keeps) its own.
type forkEvaluator struct {
	space *Space
	forks atomic.Int64
}

type forkInstance struct {
	inner convexEvaluator
	busy  atomic.Bool // trips if two goroutines share an instance
}

func (f *forkEvaluator) NumObjectives() int { return 2 }
func (f *forkEvaluator) Evaluate(c Config) (Objectives, error) {
	return (&convexEvaluator{space: f.space}).Evaluate(c)
}
func (f *forkEvaluator) Fork() Evaluator {
	f.forks.Add(1)
	return &forkInstance{inner: convexEvaluator{space: f.space}}
}

func (fi *forkInstance) NumObjectives() int { return 2 }
func (fi *forkInstance) Evaluate(c Config) (Objectives, error) {
	if !fi.busy.CompareAndSwap(false, true) {
		panic("dse test: two goroutines entered one forked instance")
	}
	defer fi.busy.Store(false)
	return fi.inner.Evaluate(c)
}

// TestForkablePerWorkerInstances checks the Forkable contract: the runtime
// forks one instance per worker and never runs two goroutines on the same
// instance concurrently.
func TestForkablePerWorkerInstances(t *testing.T) {
	s := testSpace(8, 8)
	fe := &forkEvaluator{space: s}
	pe := NewParallelEvaluator(fe, 4)
	if got := fe.forks.Load(); got != 4 {
		t.Fatalf("NewParallelEvaluator forked %d instances for 4 workers", got)
	}
	var all []Config
	s.Iterate(func(c Config) bool {
		all = append(all, c.Clone())
		return true
	})
	ref := NewParallelEvaluator(&convexEvaluator{space: s}, 1).EvaluateBatch(all)
	got := pe.EvaluateBatch(all)
	for i := range ref {
		if !reflect.DeepEqual(ref[i].Objs, got[i].Objs) || ref[i].Feasible != got[i].Feasible {
			t.Fatalf("forked batch point %d differs: %+v vs %+v", i, got[i], ref[i])
		}
	}
}

// intoEvaluator implements the scratch-objectives fast path.
type intoEvaluator struct {
	convexEvaluator
	intoCalls atomic.Int64
}

func (e *intoEvaluator) EvaluateInto(c Config, objs Objectives) error {
	e.intoCalls.Add(1)
	got, err := e.convexEvaluator.Evaluate(c)
	if err != nil {
		return err
	}
	copy(objs, got)
	return nil
}

// TestIntoEvaluatorDispatch checks that the runtime routes cache misses
// through EvaluateInto when available and stores equivalent points.
func TestIntoEvaluatorDispatch(t *testing.T) {
	s := testSpace(5, 5)
	ie := &intoEvaluator{convexEvaluator: convexEvaluator{space: s}}
	pe := NewParallelEvaluator(ie, 2)
	var all []Config
	s.Iterate(func(c Config) bool {
		all = append(all, c.Clone())
		return true
	})
	got := pe.EvaluateBatch(all)
	if ie.intoCalls.Load() == 0 {
		t.Fatal("EvaluateInto never called: runtime is not using the scratch path")
	}
	for i := range all {
		want, _ := (&convexEvaluator{space: s}).Evaluate(all[i])
		if !reflect.DeepEqual(got[i].Objs, want) {
			t.Fatalf("point %d objs %v, want %v", i, got[i].Objs, want)
		}
	}
}

// TestEvalCacheHitZeroAllocs pins the memo-cache rework: a cache hit keys
// on the packed uint64 hash and allocates nothing (the old string key cost
// one allocation per lookup).
func TestEvalCacheHitZeroAllocs(t *testing.T) {
	s := testSpace(6, 6)
	pe := NewParallelEvaluator(&convexEvaluator{space: s}, 2)
	c := Config{3, 4}
	pe.Eval(c) // warm the cache
	allocs := testing.AllocsPerRun(500, func() {
		pe.Eval(c)
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %.1f objects, want 0", allocs)
	}
}

// TestNSGA2WorkerEquivalence is the headline determinism guarantee: the
// parallel path returns the sequential path's front bit for bit.
func TestNSGA2WorkerEquivalence(t *testing.T) {
	s := testSpace(12, 4, 3)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	cfg := NSGA2Config{PopulationSize: 24, Generations: 15, Seed: 9}
	cfg.Workers = 1
	seq, err := NSGA2(s, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		par, err := NSGA2(s, eval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, seq, par, "nsga2")
	}
}

// TestMOSAWorkerEquivalence checks the per-chain seeding and chain-order
// archive merge: concurrent chains reproduce the sequential run.
func TestMOSAWorkerEquivalence(t *testing.T) {
	s := testSpace(15, 4)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	cfg := MOSAConfig{Iterations: 2000, Restarts: 4, Seed: 5}
	cfg.Workers = 1
	seq, err := MOSA(s, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		par, err := MOSA(s, eval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, seq, par, "mosa")
	}
}

// TestExhaustiveWorkerEquivalence checks batched enumeration.
func TestExhaustiveWorkerEquivalence(t *testing.T) {
	s := testSpace(9, 5, 4)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	seq, err := ExhaustiveParallel(s, eval, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExhaustiveParallel(s, eval, 1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, seq, par, "exhaustive")
	// And the single-worker wrapper matches too.
	wrapped, err := Exhaustive(s, eval, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, seq, wrapped, "exhaustive wrapper")
}

// TestRandomSearchWorkerEquivalence checks the pre-drawn batch: the RNG
// stream never observes the worker count.
func TestRandomSearchWorkerEquivalence(t *testing.T) {
	s := testSpace(11, 3)
	eval := &convexEvaluator{space: s}
	seq, err := RandomSearchParallel(s, eval, 400, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RandomSearchParallel(s, eval, 400, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, seq, par, "random")
}
