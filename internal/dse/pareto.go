package dse

import (
	"math"
	"sort"
)

// Objectives is a vector of objective values, all minimized.
type Objectives []float64

// Evaluator maps configurations to objective vectors. Implementations
// return an error satisfying core.IsInfeasible semantics (any error is
// treated as a constraint violation by the search algorithms; hard
// evaluator bugs should panic instead).
type Evaluator interface {
	Evaluate(c Config) (Objectives, error)
	NumObjectives() int
}

// Point is an evaluated design point.
type Point struct {
	Config   Config
	Objs     Objectives
	Feasible bool
}

// Dominates reports whether a Pareto-dominates b: no worse in every
// objective and strictly better in at least one. Both vectors must have
// equal length.
func Dominates(a, b Objectives) bool {
	better := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			better = true
		}
	}
	return better
}

// dominatesConstrained applies Deb's constrained dominance: feasible beats
// infeasible; two feasibles compare by Pareto dominance; two infeasibles
// are incomparable (the evaluator provides no violation magnitude).
func dominatesConstrained(a, b Point) bool {
	switch {
	case a.Feasible && !b.Feasible:
		return true
	case !a.Feasible:
		return false
	default:
		return Dominates(a.Objs, b.Objs)
	}
}

// NonDominated filters points to the Pareto-optimal subset among the
// feasible ones (infeasible points never survive), preserving input order.
// Duplicate objective vectors are kept once (the earliest occurrence).
//
// The filter runs on the lexicographic prefilter of the fast
// non-dominated sort: after sorting feasible points by objectives only a
// lexicographic predecessor can dominate a point, so the two-objective
// case is a single O(N log N) sweep and higher dimensions compare each
// point against the provisional front only.
func NonDominated(points []Point) []Point {
	order := make([]int, 0, len(points))
	for i := range points {
		if points[i].Feasible {
			order = append(order, i)
		}
	}
	if len(order) == 0 {
		return nil
	}
	lex := lexSorter{pop: points, idx: order}
	sort.Sort(&lex)

	keep := make([]bool, len(points))
	if len(points[order[0]].Objs) == 2 {
		// Sweep: a distinct lexicographic predecessor dominates iff its
		// second objective is <= ours; track the running minimum.
		best := math.Inf(1)
		for k, i := range order {
			if k > 0 && equalObjs(points[order[k-1]].Objs, points[i].Objs) {
				continue // duplicate: first occurrence already decided
			}
			if f2 := points[i].Objs[1]; f2 < best {
				keep[i] = true
				best = f2
			}
		}
	} else {
		front := order[:0:0] // front member indices, lex order
		for k, i := range order {
			if k > 0 && equalObjs(points[order[k-1]].Objs, points[i].Objs) {
				continue
			}
			dominated := false
			for m := len(front) - 1; m >= 0; m-- {
				q := points[front[m]].Objs
				dom := true
				for d := range q {
					if q[d] > points[i].Objs[d] {
						dom = false
						break
					}
				}
				if dom {
					dominated = true
					break
				}
			}
			if !dominated {
				keep[i] = true
				front = append(front, i)
			}
		}
	}
	var out []Point
	for i := range points {
		if keep[i] {
			out = append(out, points[i])
		}
	}
	return out
}

func equalObjs(a, b Objectives) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Archive maintains a non-dominated set incrementally, stored sorted by
// lexicographic objective order. Keeping the front sorted by the first
// objective is what makes insertion cheap: only lexicographic predecessors
// can dominate a candidate and only successors can be dominated by it, so
// the two-objective case (where sortedness additionally forces the second
// objective to be strictly decreasing) inserts in O(log N + k) comparisons
// for k evictions, and higher dimensions scan one pruned side each instead
// of the whole front twice.
type Archive struct {
	points []Point
}

// Add inserts p if no archived point dominates it, evicting points it
// dominates. A point whose objective vector already sits in the archive is
// rejected (the first occurrence wins). It reports whether p was inserted.
func (a *Archive) Add(p Point) bool {
	if !p.Feasible {
		return false
	}
	n := len(a.points)
	// First index whose objectives are lexicographically >= p's.
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if lexLessObjs(a.points[mid].Objs, p.Objs) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	if i < n && equalObjs(a.points[i].Objs, p.Objs) {
		return false
	}
	if len(p.Objs) == 2 {
		// Mutual non-dominance plus lex order force the first objective
		// strictly increasing and the second strictly decreasing, so the
		// predecessor carries the minimum f2 left of p (O(1) dominance
		// check) and p's victims are a contiguous run after it.
		if i > 0 && a.points[i-1].Objs[1] <= p.Objs[1] {
			return false
		}
		j := i
		for j < n && a.points[j].Objs[1] >= p.Objs[1] {
			j++
		}
		switch {
		case j == i: // nobody evicted: open a slot
			a.points = append(a.points, Point{})
			copy(a.points[i+1:], a.points[i:])
		case j > i+1: // several evicted: close the gap
			a.points = append(a.points[:i+1], a.points[j:]...)
		}
		a.points[i] = p
		return true
	}
	// M >= 3: a lexicographic successor can never dominate p and a
	// predecessor can never be dominated by p, so dominators live strictly
	// left of i and victims strictly right.
	for k := 0; k < i; k++ {
		if Dominates(a.points[k].Objs, p.Objs) {
			return false
		}
	}
	w := i
	for k := i; k < n; k++ {
		if Dominates(p.Objs, a.points[k].Objs) {
			continue
		}
		a.points[w] = a.points[k]
		w++
	}
	a.points = append(a.points[:w], Point{})
	copy(a.points[i+1:], a.points[i:])
	a.points[i] = p
	return true
}

// lexLessObjs compares objective vectors lexicographically.
func lexLessObjs(x, y Objectives) bool {
	for i := range x {
		if x[i] != y[i] {
			return x[i] < y[i]
		}
	}
	return false
}

// Points returns the archived front in lexicographic objective order
// (shared slice; callers must not modify). The sorted order is part of the
// determinism story: the archived set never depends on insertion order,
// and now neither does its presentation.
func (a *Archive) Points() []Point { return a.points }

// Len returns the archive size.
func (a *Archive) Len() int { return len(a.points) }

// CrowdingDistance computes the NSGA-II crowding distance of each point in
// a front. Boundary points get +Inf. The per-objective orderings break
// value ties by front position, so the result is a deterministic function
// of the front even when objective vectors repeat.
func CrowdingDistance(front []Point) []float64 {
	dist := make([]float64, len(front))
	idx := make([]int, len(front))
	var s objSorter
	crowdingInto(front, dist, idx, &s)
	return dist
}

// Hypervolume computes the dominated hypervolume of a front with respect
// to a reference point (which every front point must weakly dominate).
// Supported dimensions: 2 and 3, covering the paper's tradeoff plots.
func Hypervolume(front []Point, ref Objectives) float64 {
	pts := make([]Objectives, 0, len(front))
	for _, p := range front {
		inside := true
		for i := range ref {
			if p.Objs[i] > ref[i] {
				inside = false
				break
			}
		}
		if inside {
			pts = append(pts, p.Objs)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	switch len(ref) {
	case 2:
		return hv2(pts, ref)
	case 3:
		return hv3(pts, ref)
	default:
		panic("dse: Hypervolume supports 2 or 3 objectives")
	}
}

// hv2 sweeps points by the first objective.
func hv2(pts []Objectives, ref Objectives) float64 {
	sort.Slice(pts, func(a, b int) bool {
		if pts[a][0] != pts[b][0] {
			return pts[a][0] < pts[b][0]
		}
		return pts[a][1] < pts[b][1]
	})
	var hv float64
	bestY := ref[1]
	for _, p := range pts {
		if p[1] < bestY {
			hv += (ref[0] - p[0]) * (bestY - p[1])
			bestY = p[1]
		}
	}
	return hv
}

// hv3 slices along the third objective: between consecutive z values the
// dominated area is the 2-D hypervolume of the points with z below the
// slice.
func hv3(pts []Objectives, ref Objectives) float64 {
	sort.Slice(pts, func(a, b int) bool { return pts[a][2] < pts[b][2] })
	var hv float64
	for i := 0; i < len(pts); i++ {
		zTop := ref[2]
		if i+1 < len(pts) {
			zTop = pts[i+1][2]
		}
		dz := zTop - pts[i][2]
		if dz <= 0 {
			continue
		}
		slice := make([]Objectives, 0, i+1)
		for j := 0; j <= i; j++ {
			slice = append(slice, Objectives{pts[j][0], pts[j][1]})
		}
		hv += hv2(slice, Objectives{ref[0], ref[1]}) * dz
	}
	return hv
}

// Coverage returns the fraction of points in b that are weakly dominated
// by (or equal to) some point of a — Zitzler's C(A, B) metric, used for
// the Fig. 5 claim that the two-objective baseline covers only a small
// fraction of the full model's tradeoffs.
func Coverage(a, b []Point) float64 {
	if len(b) == 0 {
		return 0
	}
	covered := 0
	for _, q := range b {
		for _, p := range a {
			if Dominates(p.Objs, q.Objs) || equalObjs(p.Objs, q.Objs) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(b))
}

// BalancedPoint returns the front point minimizing the normalized
// euclidean distance to the per-objective minima — the "decent everything"
// pick a deployment would make from a Pareto front. Ties resolve to the
// earliest point, so the choice is deterministic for a deterministic
// front. It panics on an empty front.
func BalancedPoint(front []Point) Point {
	if len(front) == 0 {
		panic("dse: BalancedPoint on empty front")
	}
	m := len(front[0].Objs)
	lo := append([]float64(nil), front[0].Objs...)
	hi := append([]float64(nil), front[0].Objs...)
	for _, p := range front {
		for j, o := range p.Objs {
			if o < lo[j] {
				lo[j] = o
			}
			if o > hi[j] {
				hi[j] = o
			}
		}
	}
	best, bestD := 0, math.Inf(1)
	for i, p := range front {
		var d float64
		for j := 0; j < m && j < len(p.Objs); j++ {
			if hi[j] == lo[j] {
				continue
			}
			n := (p.Objs[j] - lo[j]) / (hi[j] - lo[j])
			d += n * n
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return front[best]
}
