package dse

import (
	"math"
	"sort"
)

// Objectives is a vector of objective values, all minimized.
type Objectives []float64

// Evaluator maps configurations to objective vectors. Implementations
// return an error satisfying core.IsInfeasible semantics (any error is
// treated as a constraint violation by the search algorithms; hard
// evaluator bugs should panic instead).
type Evaluator interface {
	Evaluate(c Config) (Objectives, error)
	NumObjectives() int
}

// Point is an evaluated design point.
type Point struct {
	Config   Config
	Objs     Objectives
	Feasible bool
}

// Dominates reports whether a Pareto-dominates b: no worse in every
// objective and strictly better in at least one. Both vectors must have
// equal length.
func Dominates(a, b Objectives) bool {
	better := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			better = true
		}
	}
	return better
}

// dominatesConstrained applies Deb's constrained dominance: feasible beats
// infeasible; two feasibles compare by Pareto dominance; two infeasibles
// are incomparable (the evaluator provides no violation magnitude).
func dominatesConstrained(a, b Point) bool {
	switch {
	case a.Feasible && !b.Feasible:
		return true
	case !a.Feasible:
		return false
	default:
		return Dominates(a.Objs, b.Objs)
	}
}

// NonDominated filters points to the Pareto-optimal subset among the
// feasible ones (infeasible points never survive). Duplicate objective
// vectors are kept once.
func NonDominated(points []Point) []Point {
	var out []Point
	for i, p := range points {
		if !p.Feasible {
			continue
		}
		dominated := false
		duplicate := false
		for j, q := range points {
			if i == j || !q.Feasible {
				continue
			}
			if Dominates(q.Objs, p.Objs) {
				dominated = true
				break
			}
			if j < i && equalObjs(q.Objs, p.Objs) {
				duplicate = true
				break
			}
		}
		if !dominated && !duplicate {
			out = append(out, p)
		}
	}
	return out
}

func equalObjs(a, b Objectives) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Archive maintains a non-dominated set incrementally.
type Archive struct {
	points []Point
}

// Add inserts p if no archived point dominates it, evicting points it
// dominates. It reports whether p was inserted.
func (a *Archive) Add(p Point) bool {
	if !p.Feasible {
		return false
	}
	kept := a.points[:0]
	for _, q := range a.points {
		if Dominates(q.Objs, p.Objs) || equalObjs(q.Objs, p.Objs) {
			return false
		}
		if !Dominates(p.Objs, q.Objs) {
			kept = append(kept, q)
		}
	}
	a.points = append(kept, p)
	return true
}

// Points returns the archived front (shared slice; callers must not
// modify).
func (a *Archive) Points() []Point { return a.points }

// Len returns the archive size.
func (a *Archive) Len() int { return len(a.points) }

// CrowdingDistance computes the NSGA-II crowding distance of each point in
// a front. Boundary points get +Inf.
func CrowdingDistance(front []Point) []float64 {
	n := len(front)
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	m := len(front[0].Objs)
	idx := make([]int, n)
	for obj := 0; obj < m; obj++ {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return front[idx[a]].Objs[obj] < front[idx[b]].Objs[obj]
		})
		lo := front[idx[0]].Objs[obj]
		hi := front[idx[n-1]].Objs[obj]
		dist[idx[0]] = math.Inf(1)
		dist[idx[n-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for k := 1; k < n-1; k++ {
			dist[idx[k]] += (front[idx[k+1]].Objs[obj] - front[idx[k-1]].Objs[obj]) / (hi - lo)
		}
	}
	return dist
}

// Hypervolume computes the dominated hypervolume of a front with respect
// to a reference point (which every front point must weakly dominate).
// Supported dimensions: 2 and 3, covering the paper's tradeoff plots.
func Hypervolume(front []Point, ref Objectives) float64 {
	pts := make([]Objectives, 0, len(front))
	for _, p := range front {
		inside := true
		for i := range ref {
			if p.Objs[i] > ref[i] {
				inside = false
				break
			}
		}
		if inside {
			pts = append(pts, p.Objs)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	switch len(ref) {
	case 2:
		return hv2(pts, ref)
	case 3:
		return hv3(pts, ref)
	default:
		panic("dse: Hypervolume supports 2 or 3 objectives")
	}
}

// hv2 sweeps points by the first objective.
func hv2(pts []Objectives, ref Objectives) float64 {
	sort.Slice(pts, func(a, b int) bool {
		if pts[a][0] != pts[b][0] {
			return pts[a][0] < pts[b][0]
		}
		return pts[a][1] < pts[b][1]
	})
	var hv float64
	bestY := ref[1]
	for _, p := range pts {
		if p[1] < bestY {
			hv += (ref[0] - p[0]) * (bestY - p[1])
			bestY = p[1]
		}
	}
	return hv
}

// hv3 slices along the third objective: between consecutive z values the
// dominated area is the 2-D hypervolume of the points with z below the
// slice.
func hv3(pts []Objectives, ref Objectives) float64 {
	sort.Slice(pts, func(a, b int) bool { return pts[a][2] < pts[b][2] })
	var hv float64
	for i := 0; i < len(pts); i++ {
		zTop := ref[2]
		if i+1 < len(pts) {
			zTop = pts[i+1][2]
		}
		dz := zTop - pts[i][2]
		if dz <= 0 {
			continue
		}
		slice := make([]Objectives, 0, i+1)
		for j := 0; j <= i; j++ {
			slice = append(slice, Objectives{pts[j][0], pts[j][1]})
		}
		hv += hv2(slice, Objectives{ref[0], ref[1]}) * dz
	}
	return hv
}

// Coverage returns the fraction of points in b that are weakly dominated
// by (or equal to) some point of a — Zitzler's C(A, B) metric, used for
// the Fig. 5 claim that the two-objective baseline covers only a small
// fraction of the full model's tradeoffs.
func Coverage(a, b []Point) float64 {
	if len(b) == 0 {
		return 0
	}
	covered := 0
	for _, q := range b {
		for _, p := range a {
			if Dominates(p.Objs, q.Objs) || equalObjs(p.Objs, q.Objs) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(b))
}

// BalancedPoint returns the front point minimizing the normalized
// euclidean distance to the per-objective minima — the "decent everything"
// pick a deployment would make from a Pareto front. Ties resolve to the
// earliest point, so the choice is deterministic for a deterministic
// front. It panics on an empty front.
func BalancedPoint(front []Point) Point {
	if len(front) == 0 {
		panic("dse: BalancedPoint on empty front")
	}
	m := len(front[0].Objs)
	lo := append([]float64(nil), front[0].Objs...)
	hi := append([]float64(nil), front[0].Objs...)
	for _, p := range front {
		for j, o := range p.Objs {
			if o < lo[j] {
				lo[j] = o
			}
			if o > hi[j] {
				hi[j] = o
			}
		}
	}
	best, bestD := 0, math.Inf(1)
	for i, p := range front {
		var d float64
		for j := 0; j < m && j < len(p.Objs); j++ {
			if hi[j] == lo[j] {
				continue
			}
			n := (p.Objs[j] - lo[j]) / (hi[j] - lo[j])
			d += n * n
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return front[best]
}
