package dse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b Objectives
		want bool
	}{
		{Objectives{1, 1}, Objectives{2, 2}, true},
		{Objectives{1, 2}, Objectives{2, 1}, false},
		{Objectives{1, 1}, Objectives{1, 1}, false}, // equal: no strict improvement
		{Objectives{1, 1}, Objectives{1, 2}, true},
		{Objectives{2, 2}, Objectives{1, 1}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Dominance must be a strict partial order: irreflexive, asymmetric,
// transitive.
func TestDominanceIsStrictPartialOrder(t *testing.T) {
	gen := func(r *rand.Rand) Objectives {
		o := make(Objectives, 3)
		for i := range o {
			o[i] = float64(r.Intn(5))
		}
		return o
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		if Dominates(a, a) {
			return false // irreflexive
		}
		if Dominates(a, b) && Dominates(b, a) {
			return false // asymmetric
		}
		if Dominates(a, b) && Dominates(b, c) && !Dominates(a, c) {
			return false // transitive
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func mkPoints(objs ...[]float64) []Point {
	pts := make([]Point, len(objs))
	for i, o := range objs {
		pts[i] = Point{Objs: o, Feasible: true}
	}
	return pts
}

func TestNonDominated(t *testing.T) {
	pts := mkPoints(
		[]float64{1, 5},
		[]float64{2, 3},
		[]float64{3, 4}, // dominated by {2,3}
		[]float64{4, 1},
		[]float64{2, 3}, // duplicate
	)
	front := NonDominated(pts)
	if len(front) != 3 {
		t.Fatalf("front size = %d, want 3: %v", len(front), front)
	}
	// Infeasible points never enter the front.
	pts = append(pts, Point{Objs: Objectives{0, 0}, Feasible: false})
	front = NonDominated(pts)
	if len(front) != 3 {
		t.Errorf("infeasible point entered the front")
	}
}

// NonDominated must be idempotent and its output mutually non-dominated.
func TestNonDominatedProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				Objs:     Objectives{float64(r.Intn(10)), float64(r.Intn(10))},
				Feasible: r.Intn(5) > 0,
			}
		}
		front := NonDominated(pts)
		for i, p := range front {
			for j, q := range front {
				if i != j && Dominates(p.Objs, q.Objs) {
					return false
				}
			}
		}
		again := NonDominated(front)
		return len(again) == len(front)
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// The incremental archive must agree with the batch filter.
func TestArchiveMatchesBatchFilter(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		var arch Archive
		var all []Point
		for i := 0; i < n; i++ {
			p := Point{
				Objs:     Objectives{float64(r.Intn(8)), float64(r.Intn(8))},
				Feasible: true,
			}
			arch.Add(p)
			all = append(all, p)
		}
		batch := NonDominated(all)
		if arch.Len() != len(batch) {
			return false
		}
		// Same objective multisets.
		seen := map[[2]float64]int{}
		for _, p := range arch.Points() {
			seen[[2]float64{p.Objs[0], p.Objs[1]}]++
		}
		for _, p := range batch {
			seen[[2]float64{p.Objs[0], p.Objs[1]}]--
		}
		for _, v := range seen {
			if v != 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestArchiveRejectsDuplicatesAndDominated(t *testing.T) {
	var a Archive
	if !a.Add(Point{Objs: Objectives{1, 1}, Feasible: true}) {
		t.Error("first point rejected")
	}
	if a.Add(Point{Objs: Objectives{1, 1}, Feasible: true}) {
		t.Error("duplicate accepted")
	}
	if a.Add(Point{Objs: Objectives{2, 2}, Feasible: true}) {
		t.Error("dominated point accepted")
	}
	if a.Add(Point{Objs: Objectives{0, 0}, Feasible: false}) {
		t.Error("infeasible point accepted")
	}
	if !a.Add(Point{Objs: Objectives{0, 2}, Feasible: true}) {
		t.Error("incomparable point rejected")
	}
	if a.Len() != 2 {
		t.Errorf("archive size = %d, want 2", a.Len())
	}
	// A dominating point evicts.
	if !a.Add(Point{Objs: Objectives{0, 0}, Feasible: true}) {
		t.Error("dominating point rejected")
	}
	if a.Len() != 1 {
		t.Errorf("archive size after eviction = %d, want 1", a.Len())
	}
}

func TestCrowdingDistance(t *testing.T) {
	front := mkPoints(
		[]float64{0, 4},
		[]float64{1, 2},
		[]float64{2, 1},
		[]float64{4, 0},
	)
	d := CrowdingDistance(front)
	if !math.IsInf(d[0], 1) || !math.IsInf(d[3], 1) {
		t.Error("boundary points must have infinite crowding")
	}
	if d[1] <= 0 || d[2] <= 0 || math.IsInf(d[1], 1) {
		t.Errorf("interior crowding: %v", d)
	}
	if got := CrowdingDistance(nil); len(got) != 0 {
		t.Error("empty front")
	}
	// Identical objective values: no NaNs.
	same := mkPoints([]float64{1, 1}, []float64{1, 1}, []float64{1, 1})
	for _, v := range CrowdingDistance(same) {
		if math.IsNaN(v) {
			t.Error("NaN crowding on degenerate front")
		}
	}
}

// TestCrowdingDistanceEdgeCases covers the degenerate fronts the
// randomized equivalence tests may sample thinly: duplicate objective
// vectors, singleton fronts, all-equal fronts, and two-member fronts.
func TestCrowdingDistanceEdgeCases(t *testing.T) {
	// Duplicate vectors: deterministic tie-break means the first duplicate
	// takes the boundary +Inf and later ones get finite (zero-width)
	// contributions — crucially, never NaN, and stable across calls.
	dup := mkPoints([]float64{0, 4}, []float64{2, 2}, []float64{2, 2}, []float64{4, 0})
	d1 := CrowdingDistance(dup)
	d2 := CrowdingDistance(dup)
	for i := range d1 {
		if math.IsNaN(d1[i]) {
			t.Errorf("duplicate front produced NaN at %d: %v", i, d1)
		}
		if d1[i] != d2[i] {
			t.Errorf("crowding not deterministic on duplicates: %v vs %v", d1, d2)
		}
	}
	if !math.IsInf(d1[0], 1) || !math.IsInf(d1[3], 1) {
		t.Errorf("boundary points lost +Inf: %v", d1)
	}

	// Single-member front: the lone point is both boundaries.
	single := CrowdingDistance(mkPoints([]float64{3, 7}))
	if len(single) != 1 || !math.IsInf(single[0], 1) {
		t.Errorf("singleton crowding = %v, want [+Inf]", single)
	}

	// All-equal objectives: every point is a boundary candidate in a
	// zero-width range; no NaNs, no negative distances.
	same := mkPoints([]float64{1, 1}, []float64{1, 1}, []float64{1, 1}, []float64{1, 1})
	for i, v := range CrowdingDistance(same) {
		if math.IsNaN(v) || v < 0 {
			t.Errorf("all-equal front: dist[%d] = %v", i, v)
		}
	}

	// Two members: both are boundaries in every objective.
	pair := CrowdingDistance(mkPoints([]float64{0, 1}, []float64{1, 0}))
	if !math.IsInf(pair[0], 1) || !math.IsInf(pair[1], 1) {
		t.Errorf("two-member front crowding = %v, want both +Inf", pair)
	}

	// Three objectives with one degenerate (constant) dimension: the
	// constant axis contributes nothing, the others still accumulate.
	tri := CrowdingDistance(mkPoints(
		[]float64{0, 4, 5}, []float64{2, 2, 5}, []float64{4, 0, 5},
	))
	if !math.IsInf(tri[0], 1) || !math.IsInf(tri[2], 1) || tri[1] <= 0 || math.IsInf(tri[1], 1) {
		t.Errorf("degenerate-axis crowding = %v", tri)
	}
}

func TestHypervolume2D(t *testing.T) {
	front := mkPoints([]float64{1, 3}, []float64{2, 2}, []float64{3, 1})
	// Reference (4,4): union of boxes = 3·1 + 1·... compute: sweep:
	// (4-1)(4-3)=3, then (4-2)(3-2)=2, then (4-3)(2-1)=1 → 6.
	got := Hypervolume(front, Objectives{4, 4})
	if math.Abs(got-6) > 1e-12 {
		t.Errorf("HV = %g, want 6", got)
	}
	// Dominated point adds nothing.
	withDominated := append(front, Point{Objs: Objectives{3, 3}, Feasible: true})
	if got2 := Hypervolume(withDominated, Objectives{4, 4}); math.Abs(got2-6) > 1e-12 {
		t.Errorf("HV with dominated point = %g, want 6", got2)
	}
	// Points outside the reference box are ignored.
	outside := append(front, Point{Objs: Objectives{5, 0}, Feasible: true})
	if got3 := Hypervolume(outside, Objectives{4, 4}); math.Abs(got3-6) > 1e-12 {
		t.Errorf("HV with outside point = %g, want 6", got3)
	}
	if got4 := Hypervolume(nil, Objectives{4, 4}); got4 != 0 {
		t.Errorf("empty HV = %g", got4)
	}
}

func TestHypervolume3D(t *testing.T) {
	// A single point: box volume.
	one := mkPoints([]float64{1, 1, 1})
	if got := Hypervolume(one, Objectives{2, 2, 2}); math.Abs(got-1) > 1e-12 {
		t.Errorf("HV = %g, want 1", got)
	}
	// Two incomparable points: inclusion-exclusion by hand.
	// a=(0,2,0), b=(2,0,2), ref=(3,3,3):
	// vol(a)=3·1·3=9, vol(b)=1·3·1=3, overlap=(3-2)(3-2)(3-2)=1 → 11.
	two := mkPoints([]float64{0, 2, 0}, []float64{2, 0, 2})
	if got := Hypervolume(two, Objectives{3, 3, 3}); math.Abs(got-11) > 1e-12 {
		t.Errorf("HV = %g, want 11", got)
	}
}

// Hypervolume grows (weakly) when points are added.
func TestHypervolumeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ref := Objectives{10, 10}
		var pts []Point
		prev := 0.0
		for i := 0; i < 20; i++ {
			pts = append(pts, Point{
				Objs:     Objectives{r.Float64() * 10, r.Float64() * 10},
				Feasible: true,
			})
			hv := Hypervolume(pts, ref)
			if hv < prev-1e-12 {
				return false
			}
			prev = hv
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHypervolumePanicsOnHighDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("4-objective HV should panic")
		}
	}()
	Hypervolume(mkPoints([]float64{1, 1, 1, 1}), Objectives{2, 2, 2, 2})
}

func TestCoverage(t *testing.T) {
	a := mkPoints([]float64{1, 1})
	b := mkPoints([]float64{2, 2}, []float64{0, 5})
	if got := Coverage(a, b); got != 0.5 {
		t.Errorf("C(a,b) = %g, want 0.5", got)
	}
	if got := Coverage(b, a); got != 0 {
		t.Errorf("C(b,a) = %g, want 0", got)
	}
	if got := Coverage(a, nil); got != 0 {
		t.Errorf("C(a,∅) = %g, want 0", got)
	}
	// Equal points count as covered.
	if got := Coverage(a, mkPoints([]float64{1, 1})); got != 1 {
		t.Errorf("C(a,a) = %g, want 1", got)
	}
}
