package dse

import "sync"

// EvalInto is the hot-path surface of one single-goroutine evaluation
// context: write c's objectives into objs (length NumObjectives). Compiled
// problems expose their evaluation contexts through it.
type EvalInto func(c Config, objs Objectives) error

// NewPooledForkable lifts a factory of single-goroutine evaluation
// contexts into a concurrency-safe Evaluator. The result implements
// IntoEvaluator (scratch-objective evaluation) and Forkable (a private
// context per batch-runtime worker); ad-hoc concurrent callers are served
// from a sync.Pool of contexts, so steady-state evaluation stays
// allocation-free on every path. It is the shared concurrency front of
// the casestudy and scenario compiled pipelines.
func NewPooledForkable(numObjectives int, fresh func() EvalInto) Evaluator {
	return &pooledForkable{nobj: numObjectives, fresh: fresh}
}

type pooledForkable struct {
	nobj  int
	fresh func() EvalInto
	pool  sync.Pool
}

// NumObjectives returns the configured objective count.
func (p *pooledForkable) NumObjectives() int { return p.nobj }

func (p *pooledForkable) get() EvalInto {
	if f, ok := p.pool.Get().(EvalInto); ok {
		return f
	}
	return p.fresh()
}

// Evaluate implements Evaluator; safe for concurrent use.
func (p *pooledForkable) Evaluate(c Config) (Objectives, error) {
	f := p.get()
	defer p.pool.Put(f)
	return evalIntoObjs(f, c, p.nobj)
}

// EvaluateInto implements IntoEvaluator; safe for concurrent use.
func (p *pooledForkable) EvaluateInto(c Config, objs Objectives) error {
	f := p.get()
	defer p.pool.Put(f)
	return f(c, objs)
}

// Fork implements Forkable: a private context for one worker.
func (p *pooledForkable) Fork() Evaluator {
	return &forkedInto{nobj: p.nobj, fn: p.fresh()}
}

// forkedInto adapts one private evaluation context to the Evaluator
// interfaces. Not safe for concurrent use, by design.
type forkedInto struct {
	nobj int
	fn   EvalInto
}

// NumObjectives returns the configured objective count.
func (f *forkedInto) NumObjectives() int { return f.nobj }

// Evaluate implements Evaluator.
func (f *forkedInto) Evaluate(c Config) (Objectives, error) {
	return evalIntoObjs(f.fn, c, f.nobj)
}

// EvaluateInto implements IntoEvaluator.
func (f *forkedInto) EvaluateInto(c Config, objs Objectives) error { return f.fn(c, objs) }

// evalIntoObjs adapts the scratch API to the allocating Evaluate form.
func evalIntoObjs(f EvalInto, c Config, nobj int) (Objectives, error) {
	objs := make(Objectives, nobj)
	if err := f(c, objs); err != nil {
		return nil, err
	}
	return objs, nil
}
