package dse

import "math/rand"

// splitMix64 is the search RNG source: Steele et al.'s SplitMix64,
// implementing rand.Source64. Every search algorithm in this package draws
// through it (wrapped in a math/rand.Rand for the Intn/Float64 adapters),
// which buys the property checkpoint/resume is built on: the complete RNG
// state of a run is a single uint64, capturable at any generation or chain
// boundary and restorable bit-exactly. math/rand's own rngSource keeps a
// 607-word internal table with no state accessors, so it cannot be
// snapshotted without reflection.
//
// rand.Rand's derived draws (Intn, Float64, ...) are pure functions of the
// source stream, so restoring the source state reproduces the exact draw
// sequence — there is no hidden buffering on the paths the searches use.
type splitMix64 struct{ state uint64 }

// Seed implements rand.Source.
func (s *splitMix64) Seed(seed int64) { s.state = uint64(seed) }

// Int63 implements rand.Source.
func (s *splitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Uint64 implements rand.Source64: one SplitMix64 step.
func (s *splitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// newSearchRand returns the seeded search RNG plus its source, whose state
// field is what snapshots capture and restores rewrite.
func newSearchRand(seed int64) (*rand.Rand, *splitMix64) {
	src := &splitMix64{state: uint64(seed)}
	return rand.New(src), src
}
