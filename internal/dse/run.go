package dse

import (
	"context"
	"fmt"
)

// Progress is one search-boundary snapshot, delivered to a ProgressSink.
// The unit of Step depends on the algorithm: NSGA-II counts completed
// generations, MOSA completed chain segments, Exhaustive and RandomSearch
// completed evaluation batches. Front is a fresh slice whose Points share
// the run's immutable Config/Objs storage — safe to read from any
// goroutine, not to mutate.
type Progress struct {
	Algorithm  string
	Step       int // boundaries completed so far
	TotalSteps int // boundaries the full run will reach
	Evaluated  int // distinct configurations evaluated so far
	Infeasible int // of those, constraint violations
	Front      []Point
}

// ProgressSink receives Progress snapshots at search boundaries. Sinks run
// synchronously on the search goroutine between generations/segments —
// never inside the allocation-free hot loops — so a slow sink slows the
// search but cannot corrupt it. A nil sink costs nothing.
type ProgressSink func(Progress)

// CheckpointFunc persists one Snapshot. A non-nil error aborts the run:
// the search returns its partial result alongside the error, on the theory
// that a service that cannot persist checkpoints should not silently keep
// burning the evaluation budget it promised to make resumable.
type CheckpointFunc func(*Snapshot) error

// Options carries the cross-cutting run controls shared by every search
// algorithm: cooperative cancellation, incremental progress, and
// checkpoint/resume. The zero value is a plain run-to-completion search,
// bit-identical to the option-free entry points.
type Options struct {
	// Context cancels the run cooperatively: the search checks it at
	// generation/segment/batch boundaries and, once cancelled, returns the
	// partial Result accumulated so far together with ctx.Err(). Nil means
	// never cancelled.
	Context context.Context

	// Progress, when non-nil, is invoked at every boundary.
	Progress ProgressSink

	// Checkpoint, when non-nil and CheckpointEvery > 0, is invoked with a
	// self-contained Snapshot every CheckpointEvery boundaries (and never
	// at the final one, where the Result itself is the better artifact).
	Checkpoint      CheckpointFunc
	CheckpointEvery int

	// Resume restarts a run from a Snapshot previously produced by the
	// same algorithm over the same space and configuration. The resumed
	// run replays the exact trajectory of the uninterrupted one: RNG state
	// is restored bit-for-bit and the population/archive/chain state picks
	// up where the snapshot left off, so the final front is bit-identical
	// to a never-interrupted run with the same seed. Result.Evaluated
	// counts snapshot evaluations plus distinct post-resume evaluations;
	// configurations that were evaluated before the checkpoint but kept in
	// neither population nor archive may be re-evaluated (and re-counted)
	// after resume, so the count is an upper bound on distinct points.
	Resume *Snapshot
}

// boundary is the shared per-boundary bookkeeping: emit progress, write a
// due checkpoint, then honor cancellation — in that order, so a cancelled
// run's latest checkpoint is already durable when the partial result comes
// back. step is 1-based (boundaries completed); snap builds the snapshot
// lazily and only when one is due.
func (o Options) boundary(algo string, step, total, evaluated, infeasible int, front func() []Point, snap func() *Snapshot) error {
	if o.Progress != nil {
		o.Progress(Progress{
			Algorithm:  algo,
			Step:       step,
			TotalSteps: total,
			Evaluated:  evaluated,
			Infeasible: infeasible,
			Front:      front(),
		})
	}
	if o.Checkpoint != nil && o.CheckpointEvery > 0 && step < total && step%o.CheckpointEvery == 0 {
		if err := o.Checkpoint(snap()); err != nil {
			return fmt.Errorf("dse: checkpoint at step %d: %w", step, err)
		}
	}
	if o.Context != nil {
		if err := o.Context.Err(); err != nil {
			return err
		}
	}
	return nil
}

// frontCopy returns a fresh slice over the archive's points, the form
// Progress hands to sinks.
func frontCopy(arch *Archive) []Point {
	return append([]Point(nil), arch.Points()...)
}
