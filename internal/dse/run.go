package dse

import (
	"context"
	"errors"
	"fmt"
)

// Progress is one search-boundary snapshot, delivered to a ProgressSink.
// The unit of Step depends on the algorithm: NSGA-II counts completed
// generations, MOSA completed chain segments, Exhaustive and RandomSearch
// completed evaluation batches. Front is a fresh slice whose Points share
// the run's immutable Config/Objs storage — safe to read from any
// goroutine, not to mutate.
type Progress struct {
	Algorithm  string
	Step       int // boundaries completed so far
	TotalSteps int // boundaries the full run will reach
	Evaluated  int // distinct configurations evaluated so far
	Infeasible int // of those, constraint violations
	Front      []Point
}

// ProgressSink receives Progress snapshots at search boundaries. Sinks run
// synchronously on the search goroutine between generations/segments —
// never inside the allocation-free hot loops — so a slow sink slows the
// search but cannot corrupt it. A nil sink costs nothing.
type ProgressSink func(Progress)

// Stats is one boundary-level search-health snapshot, delivered to a
// StatsSink. It is the zero-copy sibling of Progress, built for
// telemetry samplers that fire every boundary: Front is the archive's
// own sorted storage — valid only for the duration of the call and
// strictly read-only — so emitting a Stats allocates nothing on the
// NSGA-II/exhaustive/random paths. CacheHits/CacheLookups expose the
// memo cache (lookups = hits + distinct evaluations), the signal that
// tells an operator whether a search is still discovering or mostly
// revisiting.
type Stats struct {
	Algorithm    string
	Step         int // boundaries completed so far
	TotalSteps   int
	Evaluated    int // distinct configurations evaluated so far
	Infeasible   int
	Front        []Point // shared storage — do not retain or mutate
	CacheHits    int64   // memo-cache hits so far
	CacheLookups int64   // memo-cache lookups so far
}

// StatsSink receives Stats at every search boundary. Like ProgressSink
// it runs synchronously on the search goroutine, outside the
// allocation-free hot loops; a nil sink costs nothing. Sinks that need
// the front beyond the call must copy it.
type StatsSink func(Stats)

// CheckpointFunc persists one Snapshot. A non-nil error aborts the run:
// the search returns its partial result alongside the error, on the theory
// that a service that cannot persist checkpoints should not silently keep
// burning the evaluation budget it promised to make resumable.
type CheckpointFunc func(*Snapshot) error

// Options carries the cross-cutting run controls shared by every search
// algorithm: cooperative cancellation, incremental progress, and
// checkpoint/resume. The zero value is a plain run-to-completion search,
// bit-identical to the option-free entry points.
type Options struct {
	// Context cancels the run cooperatively: the search checks it at
	// generation/segment/batch boundaries and, once cancelled, returns the
	// partial Result accumulated so far together with ctx.Err(). Nil means
	// never cancelled.
	Context context.Context

	// Progress, when non-nil, is invoked at every boundary.
	Progress ProgressSink

	// Stats, when non-nil, is invoked at every boundary with the
	// telemetry view: counters, the live front (zero-copy) and memo-cache
	// hit rates. It exists so observability never pays for the Progress
	// sink's defensive front copy.
	Stats StatsSink

	// Checkpoint, when non-nil and CheckpointEvery > 0, is invoked with a
	// self-contained Snapshot every CheckpointEvery boundaries (and never
	// at the final one, where the Result itself is the better artifact).
	Checkpoint      CheckpointFunc
	CheckpointEvery int

	// Resume restarts a run from a Snapshot previously produced by the
	// same algorithm over the same space and configuration. The resumed
	// run replays the exact trajectory of the uninterrupted one: RNG state
	// is restored bit-for-bit and the population/archive/chain state picks
	// up where the snapshot left off, so the final front is bit-identical
	// to a never-interrupted run with the same seed. Result.Evaluated
	// counts snapshot evaluations plus distinct post-resume evaluations;
	// configurations that were evaluated before the checkpoint but kept in
	// neither population nor archive may be re-evaluated (and re-counted)
	// after resume, so the count is an upper bound on distinct points.
	Resume *Snapshot

	// SeedPoints warm-starts the search from prior knowledge: NSGA-II
	// injects them (deduplicated, in order) into at most half of the
	// initial population before random fill — random exploration is never
	// fully displaced — and MOSA starts chain i from SeedPoints[i] when
	// one is available. Configurations that do not index the space (wrong
	// gene count, out-of-range index — e.g. a front transferred from a
	// sibling scenario with a different design space) are skipped, never
	// an error. Exhaustive and random search ignore seeds. Determinism is
	// unchanged: the trajectory is a pure function of (seed list, Seed),
	// and an empty list is bit-identical to the unseeded entry point.
	// Resume takes precedence: a resumed run ignores SeedPoints, since the
	// snapshot already fixes the whole trajectory.
	SeedPoints []Config

	// StopAfter, when > 0, pauses the run at that boundary instead of
	// finishing: the run force-writes a snapshot through Checkpoint
	// (regardless of CheckpointEvery) and returns its partial Result
	// together with ErrPaused. Combined with Resume this turns one search
	// into a sequence of deterministic rounds — run to a boundary, stop,
	// let the caller rearrange state (the island coordinator exchanges
	// migrants here), resume — with the guarantee that pausing and
	// resuming at any boundary replays the uninterrupted run's exact
	// trajectory. A StopAfter at or past the final boundary never fires;
	// 0 (the default) runs to completion.
	StopAfter int
}

// ErrPaused is the sentinel a run returns when it stops at the
// Options.StopAfter boundary. It is a pause, not a failure: the partial
// Result is valid, and the snapshot handed to Checkpoint at the pause
// boundary resumes the identical trajectory.
var ErrPaused = errors.New("dse: run paused at StopAfter boundary")

// validSeeds filters SeedPoints down to configurations that index the
// space, dropping duplicates while preserving first-seen order, and caps
// the list at max (<= 0: no cap). When the cap bites, survivors are
// stride-sampled across the whole list rather than truncated: seed lists
// are typically transferred Pareto fronts ordered along the tradeoff
// curve, and a prefix would seed only one end of it.
func (o Options) validSeeds(space *Space, max int) []Config {
	if len(o.SeedPoints) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(o.SeedPoints))
	out := make([]Config, 0, len(o.SeedPoints))
	for _, c := range o.SeedPoints {
		if !space.Valid(c) {
			continue
		}
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	if max > 0 && len(out) > max {
		sampled := make([]Config, max)
		for i := range sampled {
			sampled[i] = out[i*len(out)/max]
		}
		out = sampled
	}
	return out
}

// boundary is the shared per-boundary bookkeeping: emit progress and
// stats, write a due checkpoint, honor StopAfter, then honor
// cancellation — in that order, so a cancelled run's latest checkpoint
// is already durable when the partial result comes back, and a paused
// run's snapshot is written before ErrPaused surfaces. step is 1-based
// (boundaries completed); live returns the archive's shared point slice
// (materialized once, only when a sink is attached — Progress copies it,
// Stats reads it in place), and snap builds the snapshot lazily and only
// when one is due.
func (o Options) boundary(algo string, step, total, evaluated, infeasible int, pe *ParallelEvaluator, live func() []Point, snap func() *Snapshot) error {
	if o.Progress != nil || o.Stats != nil {
		front := live()
		if o.Progress != nil {
			o.Progress(Progress{
				Algorithm:  algo,
				Step:       step,
				TotalSteps: total,
				Evaluated:  evaluated,
				Infeasible: infeasible,
				Front:      append([]Point(nil), front...),
			})
		}
		if o.Stats != nil {
			lookups, hits := pe.CacheStats()
			o.Stats(Stats{
				Algorithm:    algo,
				Step:         step,
				TotalSteps:   total,
				Evaluated:    evaluated,
				Infeasible:   infeasible,
				Front:        front,
				CacheHits:    hits,
				CacheLookups: lookups,
			})
		}
	}
	pause := o.StopAfter > 0 && step >= o.StopAfter && step < total
	if o.Checkpoint != nil {
		due := o.CheckpointEvery > 0 && step < total && step%o.CheckpointEvery == 0
		if due || pause {
			if err := o.Checkpoint(snap()); err != nil {
				return fmt.Errorf("dse: checkpoint at step %d: %w", step, err)
			}
		}
	}
	if pause {
		return ErrPaused
	}
	if o.Context != nil {
		if err := o.Context.Err(); err != nil {
			return err
		}
	}
	return nil
}
