package dse

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// sameFront compares fronts only — resumed runs may legitimately recount
// evaluations that were lost with the pre-checkpoint memo cache, so counts
// are not part of the resume contract.
func sameFront(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if len(a.Front) != len(b.Front) {
		t.Fatalf("%s: front sizes differ: %d vs %d", label, len(a.Front), len(b.Front))
	}
	for i := range a.Front {
		if !reflect.DeepEqual(a.Front[i], b.Front[i]) {
			t.Fatalf("%s: front point %d differs:\n%+v\nvs\n%+v", label, i, a.Front[i], b.Front[i])
		}
	}
}

// roundTrip pushes a snapshot through its JSON form, as the service and
// the on-disk checkpoint files do, so resume tests exercise the
// serialized representation rather than in-memory aliasing.
func roundTrip(t *testing.T, snap *Snapshot) *Snapshot {
	t.Helper()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	out := &Snapshot{}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	return out
}

// captureLatest returns Options that checkpoint every `every` boundaries
// into *latest.
func captureLatest(latest **Snapshot, every int) Options {
	return Options{
		CheckpointEvery: every,
		Checkpoint: func(s *Snapshot) error {
			*latest = s
			return nil
		},
	}
}

// TestResumeMatchesUninterrupted is the core checkpoint/resume contract on
// every algorithm: interrupt a run right after a mid-run checkpoint,
// resume from the serialized snapshot, and the final front is bit-identical
// to the uninterrupted run's.
func TestResumeMatchesUninterrupted(t *testing.T) {
	s := testSpace(12, 4, 3)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	// Exhaustive's boundaries fire every exhaustiveBatch configurations, so
	// its space must span several batches for a mid-run checkpoint.
	sBig := testSpace(20, 18, 6)
	evalBig := &constrainedEvaluator{inner: &convexEvaluator{space: sBig}}

	algorithms := []struct {
		name string
		run  func(opts Options) (*Result, error)
	}{
		{"nsga2", func(opts Options) (*Result, error) {
			return NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 16, Generations: 12, Seed: 9, Workers: 2}, opts)
		}},
		{"mosa", func(opts Options) (*Result, error) {
			return MOSAOpts(s, eval, MOSAConfig{Iterations: 4000, Restarts: 4, Seed: 5, Workers: 2}, opts)
		}},
		{"exhaustive", func(opts Options) (*Result, error) {
			return ExhaustiveOpts(sBig, evalBig, 1000000, 2, opts)
		}},
		{"random", func(opts Options) (*Result, error) {
			return RandomSearchOpts(s, eval, 3000, 7, 2, opts)
		}},
	}
	for _, alg := range algorithms {
		t.Run(alg.name, func(t *testing.T) {
			want, err := alg.run(Options{})
			if err != nil {
				t.Fatal(err)
			}

			// Kill the run by cancelling from inside the checkpoint sink:
			// the boundary protocol persists the snapshot before honoring
			// cancellation, so the snapshot survives the "kill".
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var snap *Snapshot
			opts := Options{
				Context:         ctx,
				CheckpointEvery: 1,
				Checkpoint: func(s *Snapshot) error {
					if snap == nil {
						snap = s
						cancel()
					}
					return nil
				},
			}
			partial, err := alg.run(opts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run returned %v, want context.Canceled", err)
			}
			if partial == nil {
				t.Fatal("interrupted run returned no partial result")
			}
			if snap == nil {
				t.Fatal("no checkpoint was taken")
			}
			if snap.Algorithm != alg.name {
				t.Fatalf("snapshot algorithm %q, want %q", snap.Algorithm, alg.name)
			}

			got, err := alg.run(Options{Resume: roundTrip(t, snap)})
			if err != nil {
				t.Fatal(err)
			}
			sameFront(t, want, got, alg.name+" resume")
			if got.Evaluated < len(want.Front) {
				t.Fatalf("resumed Evaluated=%d implausibly small", got.Evaluated)
			}
		})
	}
}

// TestProgressSinkCadence checks the sink fires exactly once per
// generation with monotonically growing coverage and a final step equal to
// TotalSteps.
func TestProgressSinkCadence(t *testing.T) {
	s := testSpace(8, 3)
	eval := &convexEvaluator{space: s}
	var steps []int
	var lastEval int
	opts := Options{Progress: func(p Progress) {
		if p.Algorithm != "nsga2" {
			t.Errorf("progress algorithm %q", p.Algorithm)
		}
		if p.TotalSteps != 10 {
			t.Errorf("TotalSteps=%d, want 10", p.TotalSteps)
		}
		if p.Evaluated < lastEval {
			t.Errorf("Evaluated went backwards: %d after %d", p.Evaluated, lastEval)
		}
		if len(p.Front) == 0 {
			t.Error("empty front snapshot on a feasible space")
		}
		lastEval = p.Evaluated
		steps = append(steps, p.Step)
	}}
	if _, err := NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 8, Generations: 10, Seed: 3}, opts); err != nil {
		t.Fatal(err)
	}
	if len(steps) != 10 {
		t.Fatalf("sink fired %d times, want 10", len(steps))
	}
	for i, st := range steps {
		if st != i+1 {
			t.Fatalf("steps %v not consecutive", steps)
		}
	}
}

// TestOptionsZeroValueIdentical pins that the Options plumbing itself does
// not perturb results: the option-free entry points and Opts with zero
// Options are bit-identical, counts included.
func TestOptionsZeroValueIdentical(t *testing.T) {
	s := testSpace(10, 4, 3)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	a, err := NSGA2(s, eval, NSGA2Config{PopulationSize: 16, Generations: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 16, Generations: 10, Seed: 4},
		Options{Context: context.Background(), Progress: func(Progress) {}})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, a, b, "nsga2 options plumbing")

	am, err := MOSA(s, eval, MOSAConfig{Iterations: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	bm, err := MOSAOpts(s, eval, MOSAConfig{Iterations: 2000, Seed: 4},
		Options{Context: context.Background(), Progress: func(Progress) {}})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, am, bm, "mosa options plumbing")
}

// TestCancelledContextReturnsPartial checks immediate-cancellation
// semantics: the search notices at its first boundary and hands back what
// it has, tagged with the context error.
func TestCancelledContextReturnsPartial(t *testing.T) {
	s := testSpace(8, 3)
	eval := &convexEvaluator{space: s}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 8, Generations: 50, Seed: 2}, Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Front) == 0 {
		t.Fatal("cancelled run should still return the seeded generation's front")
	}
	if res.Evaluated > 2*8 {
		t.Fatalf("cancelled-at-first-boundary run evaluated %d points, want ≤ %d", res.Evaluated, 2*8)
	}
}

// TestCheckpointErrorAborts checks that a failing CheckpointFunc stops the
// run with a descriptive error and the partial result.
func TestCheckpointErrorAborts(t *testing.T) {
	s := testSpace(8, 3)
	eval := &convexEvaluator{space: s}
	boom := fmt.Errorf("disk full")
	res, err := NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 8, Generations: 50, Seed: 2},
		Options{CheckpointEvery: 3, Checkpoint: func(*Snapshot) error { return boom }})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if res == nil || len(res.Front) == 0 {
		t.Fatal("aborted run should still return its partial result")
	}
}

// TestSnapshotResumeValidation covers the refusal paths: wrong algorithm,
// wrong version, mismatched population size, out-of-space configs.
func TestSnapshotResumeValidation(t *testing.T) {
	s := testSpace(8, 3)
	eval := &convexEvaluator{space: s}
	var snap *Snapshot
	latest := captureLatest(&snap, 2)
	if _, err := NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 8, Generations: 6, Seed: 1}, latest); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot captured")
	}

	if _, err := MOSAOpts(s, eval, MOSAConfig{}, Options{Resume: snap}); err == nil {
		t.Error("mosa accepted an nsga2 snapshot")
	}
	bad := roundTrip(t, snap)
	bad.Version = 99
	if _, err := NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 8, Generations: 6, Seed: 1}, Options{Resume: bad}); err == nil {
		t.Error("version mismatch accepted")
	}
	bad = roundTrip(t, snap)
	if _, err := NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 16, Generations: 6, Seed: 1}, Options{Resume: bad}); err == nil {
		t.Error("population-size mismatch accepted")
	}
	bad = roundTrip(t, snap)
	bad.Population[0].Config[0] = 999
	if _, err := NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 8, Generations: 6, Seed: 1}, Options{Resume: bad}); err == nil {
		t.Error("out-of-space config accepted")
	}

	// MOSA must reject a snapshot from a longer run than the resuming
	// config allows, instead of silently returning the restored archives.
	var msnap *Snapshot
	mlatest := captureLatest(&msnap, 1)
	if _, err := MOSAOpts(s, eval, MOSAConfig{Iterations: 4000, Restarts: 4, Seed: 2}, mlatest); err != nil {
		t.Fatal(err)
	}
	if msnap == nil {
		t.Fatal("no MOSA snapshot captured")
	}
	msnap.Step = 99
	if _, err := MOSAOpts(s, eval, MOSAConfig{Iterations: 4000, Restarts: 4, Seed: 2}, Options{Resume: msnap}); err == nil {
		t.Error("MOSA accepted a snapshot past its segment count")
	}
}

// TestInfFloatsRoundTrip pins the ±Inf JSON encoding crowding distances
// rely on (front-boundary points carry +Inf crowding).
func TestInfFloatsRoundTrip(t *testing.T) {
	in := InfFloats{1.5, math.Inf(1), -2.25, math.Inf(-1), 0}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out InfFloats
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] && !(math.IsInf(in[i], 1) && math.IsInf(out[i], 1)) &&
			!(math.IsInf(in[i], -1) && math.IsInf(out[i], -1)) {
			t.Fatalf("element %d: %v != %v", i, in[i], out[i])
		}
	}
	var rejected InfFloats
	if err := json.Unmarshal([]byte(`["NaN-ish"]`), &rejected); err == nil {
		t.Fatal("unknown sentinel accepted")
	}
}

// TestSplitMixStateRoundTrip pins the single-uint64-state property the
// whole checkpoint design rests on: capturing and restoring the source
// state reproduces the exact downstream draw sequence.
func TestSplitMixStateRoundTrip(t *testing.T) {
	rng, src := newSearchRand(42)
	for i := 0; i < 100; i++ {
		rng.Intn(7)
		rng.Float64()
	}
	saved := src.state
	want := make([]int, 50)
	for i := range want {
		want[i] = rng.Intn(1000)
	}
	rng2, src2 := newSearchRand(0)
	src2.state = saved
	for i := range want {
		if got := rng2.Intn(1000); got != want[i] {
			t.Fatalf("draw %d: restored stream gives %d, original %d", i, got, want[i])
		}
	}
}
