package dse

import (
	"fmt"
)

// Result is the outcome of a search: the non-dominated front over every
// feasible point the algorithm evaluated, plus bookkeeping.
type Result struct {
	Front      []Point
	Evaluated  int // distinct configurations evaluated
	Infeasible int // of those, how many violated constraints
}

// exhaustiveBatch is how many configurations Exhaustive hands to the
// worker pool at a time: large enough to amortize dispatch, small enough
// that the archive merge interleaves with evaluation.
const exhaustiveBatch = 1024

// Exhaustive enumerates the whole space on a single worker. It refuses
// spaces larger than maxPoints to protect callers from accidental
// 10¹¹-point sweeps.
func Exhaustive(space *Space, eval Evaluator, maxPoints int) (*Result, error) {
	return ExhaustiveParallel(space, eval, maxPoints, 1)
}

// ExhaustiveParallel enumerates the whole space, evaluating batches of
// configurations across the worker pool (workers <= 0 selects GOMAXPROCS).
// Enumeration order, the resulting front, and the counts are identical at
// any worker count.
func ExhaustiveParallel(space *Space, eval Evaluator, maxPoints, workers int) (*Result, error) {
	return ExhaustiveOpts(space, eval, maxPoints, workers, Options{})
}

// ExhaustiveOpts is ExhaustiveParallel under run Options: progress,
// checkpointing and cancellation hook in at batch boundaries (every
// exhaustiveBatch configurations). Snapshots record how far the
// lexicographic enumeration got (Snapshot.Next), so a resumed sweep skips
// exactly the consumed prefix. On cancellation the partial Result is
// returned together with ctx.Err().
func ExhaustiveOpts(space *Space, eval Evaluator, maxPoints, workers int, opts Options) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if size := space.Size(); size > float64(maxPoints) {
		return nil, fmt.Errorf("dse: space has %.3g points, exhaustive limit is %d", size, maxPoints)
	}
	pe := NewParallelEvaluator(eval, workers)
	var arch Archive
	total := int(space.Size())
	totalBatches := (total + exhaustiveBatch - 1) / exhaustiveBatch
	skip := 0
	var baseEval, baseInf int
	if opts.Resume != nil {
		if err := opts.Resume.validateResume("exhaustive", space); err != nil {
			return nil, err
		}
		if opts.Resume.Next > total {
			return nil, fmt.Errorf("dse: snapshot consumed %d of %d points", opts.Resume.Next, total)
		}
		skip = opts.Resume.Next
		baseEval, baseInf = opts.Resume.Evaluated, opts.Resume.Infeasible
		restoreArchive(&arch, opts.Resume.Archive)
		for _, p := range arch.Points() {
			pe.prime(p)
		}
	}
	result := func() *Result {
		evaluated, infeasible := pe.Stats()
		return &Result{Front: arch.Points(), Evaluated: baseEval + evaluated, Infeasible: baseInf + infeasible}
	}
	batch := make([]Config, 0, exhaustiveBatch)
	flush := func() {
		for _, p := range pe.EvaluateBatchInto(batch, nil) {
			arch.Add(p)
		}
		batch = batch[:0]
	}
	idx := 0
	var stopErr error
	space.Iterate(func(c Config) bool {
		if idx < skip {
			idx++
			return true
		}
		idx++
		batch = append(batch, c.Clone())
		if len(batch) == exhaustiveBatch {
			flush()
			step := idx / exhaustiveBatch
			evaluated, infeasible := pe.Stats()
			consumed := idx
			stopErr = opts.boundary("exhaustive", step, totalBatches, baseEval+evaluated, baseInf+infeasible,
				pe, func() []Point { return arch.Points() },
				func() *Snapshot {
					return &Snapshot{
						Version: SnapshotVersion, Algorithm: "exhaustive", Step: step, Next: consumed,
						Archive: snapPoints(arch.Points()), Evaluated: baseEval + evaluated, Infeasible: baseInf + infeasible,
					}
				})
			return stopErr == nil
		}
		return true
	})
	if stopErr != nil {
		return result(), stopErr
	}
	flush()
	return result(), nil
}

// RandomSearch evaluates `budget` uniform random configurations on a single
// worker — the reference any metaheuristic must beat.
func RandomSearch(space *Space, eval Evaluator, budget int, seed int64) (*Result, error) {
	return RandomSearchParallel(space, eval, budget, seed, 1)
}

// RandomSearchParallel draws the budget from one seeded stream in batches
// of exhaustiveBatch and evaluates each batch across the worker pool
// (workers <= 0 selects GOMAXPROCS). The draw sequence, front, and counts
// are identical at any worker count; revisited configurations are
// deduplicated by the memo cache so Evaluated means distinct points.
func RandomSearchParallel(space *Space, eval Evaluator, budget int, seed int64, workers int) (*Result, error) {
	return RandomSearchOpts(space, eval, budget, seed, workers, Options{})
}

// RandomSearchOpts is RandomSearchParallel under run Options: progress,
// checkpointing and cancellation hook in at batch boundaries. Snapshots
// record the RNG state and draws consumed, so a resumed search continues
// the identical draw stream. On cancellation the partial Result is
// returned together with ctx.Err().
func RandomSearchOpts(space *Space, eval Evaluator, budget int, seed int64, workers int, opts Options) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("dse: budget %d must be positive", budget)
	}
	rng, src := newSearchRand(seed)
	pe := NewParallelEvaluator(eval, workers)
	var arch Archive
	drawn := 0
	var baseEval, baseInf int
	if opts.Resume != nil {
		if err := opts.Resume.validateResume("random", space); err != nil {
			return nil, err
		}
		if opts.Resume.Next > budget {
			return nil, fmt.Errorf("dse: snapshot consumed %d of %d draws", opts.Resume.Next, budget)
		}
		drawn = opts.Resume.Next
		baseEval, baseInf = opts.Resume.Evaluated, opts.Resume.Infeasible
		restoreArchive(&arch, opts.Resume.Archive)
		for _, p := range arch.Points() {
			pe.prime(p)
		}
		src.state = opts.Resume.RNG
	}
	result := func() *Result {
		evaluated, infeasible := pe.Stats()
		return &Result{Front: arch.Points(), Evaluated: baseEval + evaluated, Infeasible: baseInf + infeasible}
	}
	totalBatches := (budget + exhaustiveBatch - 1) / exhaustiveBatch
	configs := make([]Config, 0, exhaustiveBatch)
	var points []Point
	for drawn < budget {
		n := exhaustiveBatch
		if budget-drawn < n {
			n = budget - drawn
		}
		configs = configs[:0]
		for i := 0; i < n; i++ {
			configs = append(configs, space.Random(rng))
		}
		drawn += n
		points = pe.EvaluateBatchInto(configs, points)
		for _, p := range points {
			arch.Add(p)
		}
		step := (drawn + exhaustiveBatch - 1) / exhaustiveBatch
		evaluated, infeasible := pe.Stats()
		consumed := drawn
		err := opts.boundary("random", step, totalBatches, baseEval+evaluated, baseInf+infeasible,
			pe, func() []Point { return arch.Points() },
			func() *Snapshot {
				return &Snapshot{
					Version: SnapshotVersion, Algorithm: "random", Step: step, RNG: src.state, Next: consumed,
					Archive: snapPoints(arch.Points()), Evaluated: baseEval + evaluated, Infeasible: baseInf + infeasible,
				}
			})
		if err != nil {
			return result(), err
		}
	}
	return result(), nil
}
