package dse

import (
	"fmt"
	"math/rand"
)

// Result is the outcome of a search: the non-dominated front over every
// feasible point the algorithm evaluated, plus bookkeeping.
type Result struct {
	Front      []Point
	Evaluated  int // distinct configurations evaluated
	Infeasible int // of those, how many violated constraints
}

// exhaustiveBatch is how many configurations Exhaustive hands to the
// worker pool at a time: large enough to amortize dispatch, small enough
// that the archive merge interleaves with evaluation.
const exhaustiveBatch = 1024

// Exhaustive enumerates the whole space on a single worker. It refuses
// spaces larger than maxPoints to protect callers from accidental
// 10¹¹-point sweeps.
func Exhaustive(space *Space, eval Evaluator, maxPoints int) (*Result, error) {
	return ExhaustiveParallel(space, eval, maxPoints, 1)
}

// ExhaustiveParallel enumerates the whole space, evaluating batches of
// configurations across the worker pool (workers <= 0 selects GOMAXPROCS).
// Enumeration order, the resulting front, and the counts are identical at
// any worker count.
func ExhaustiveParallel(space *Space, eval Evaluator, maxPoints, workers int) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if size := space.Size(); size > float64(maxPoints) {
		return nil, fmt.Errorf("dse: space has %.3g points, exhaustive limit is %d", size, maxPoints)
	}
	pe := NewParallelEvaluator(eval, workers)
	var arch Archive
	batch := make([]Config, 0, exhaustiveBatch)
	flush := func() {
		for _, p := range pe.EvaluateBatch(batch) {
			arch.Add(p)
		}
		batch = batch[:0]
	}
	space.Iterate(func(c Config) bool {
		batch = append(batch, c.Clone())
		if len(batch) == exhaustiveBatch {
			flush()
		}
		return true
	})
	flush()
	evaluated, infeasible := pe.Stats()
	return &Result{Front: arch.Points(), Evaluated: evaluated, Infeasible: infeasible}, nil
}

// RandomSearch evaluates `budget` uniform random configurations on a single
// worker — the reference any metaheuristic must beat.
func RandomSearch(space *Space, eval Evaluator, budget int, seed int64) (*Result, error) {
	return RandomSearchParallel(space, eval, budget, seed, 1)
}

// RandomSearchParallel draws the whole budget from one seeded stream, then
// evaluates it as a single batch across the worker pool (workers <= 0
// selects GOMAXPROCS). The draw sequence, front, and counts are identical
// at any worker count; revisited configurations are deduplicated by the
// memo cache so Evaluated means distinct points.
func RandomSearchParallel(space *Space, eval Evaluator, budget int, seed int64, workers int) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("dse: budget %d must be positive", budget)
	}
	rng := rand.New(rand.NewSource(seed))
	configs := make([]Config, budget)
	for i := range configs {
		configs[i] = space.Random(rng)
	}
	pe := NewParallelEvaluator(eval, workers)
	var arch Archive
	for _, p := range pe.EvaluateBatch(configs) {
		arch.Add(p)
	}
	evaluated, infeasible := pe.Stats()
	return &Result{Front: arch.Points(), Evaluated: evaluated, Infeasible: infeasible}, nil
}
