package dse

import (
	"fmt"
	"math/rand"
)

// Result is the outcome of a search: the non-dominated front over every
// feasible point the algorithm evaluated, plus bookkeeping.
type Result struct {
	Front      []Point
	Evaluated  int // distinct configurations evaluated
	Infeasible int // of those, how many violated constraints
}

// memoEvaluator wraps an Evaluator with a cache so searches never pay for
// re-visited configurations and the Evaluated count means distinct points.
type memoEvaluator struct {
	inner      Evaluator
	cache      map[string]Point
	evaluated  int
	infeasible int
}

func newMemo(e Evaluator) *memoEvaluator {
	return &memoEvaluator{inner: e, cache: make(map[string]Point)}
}

func (m *memoEvaluator) eval(c Config) Point {
	key := c.Key()
	if p, ok := m.cache[key]; ok {
		return p
	}
	objs, err := m.inner.Evaluate(c)
	p := Point{Config: c.Clone(), Objs: objs, Feasible: err == nil}
	m.evaluated++
	if err != nil {
		m.infeasible++
	}
	m.cache[key] = p
	return p
}

// Exhaustive enumerates the whole space. It refuses spaces larger than
// maxPoints to protect callers from accidental 10¹¹-point sweeps.
func Exhaustive(space *Space, eval Evaluator, maxPoints int) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if size := space.Size(); size > float64(maxPoints) {
		return nil, fmt.Errorf("dse: space has %.3g points, exhaustive limit is %d", size, maxPoints)
	}
	var arch Archive
	evaluated, infeasible := 0, 0
	space.Iterate(func(c Config) bool {
		objs, err := eval.Evaluate(c)
		evaluated++
		if err != nil {
			infeasible++
			return true
		}
		arch.Add(Point{Config: c.Clone(), Objs: objs, Feasible: true})
		return true
	})
	return &Result{Front: arch.Points(), Evaluated: evaluated, Infeasible: infeasible}, nil
}

// RandomSearch evaluates `budget` uniform random configurations — the
// reference any metaheuristic must beat.
func RandomSearch(space *Space, eval Evaluator, budget int, seed int64) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("dse: budget %d must be positive", budget)
	}
	rng := rand.New(rand.NewSource(seed))
	memo := newMemo(eval)
	var arch Archive
	for i := 0; i < budget; i++ {
		p := memo.eval(space.Random(rng))
		arch.Add(p)
	}
	return &Result{Front: arch.Points(), Evaluated: memo.evaluated, Infeasible: memo.infeasible}, nil
}
