package dse

import (
	"math"
	"math/rand"
	"testing"

	"wsndse/internal/core"
)

// testSpace is a small grid for search tests.
func testSpace(values ...int) *Space {
	s := &Space{}
	for i, n := range values {
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = float64(j)
		}
		s.Params = append(s.Params, Parameter{Name: string(rune('a' + i)), Values: vals})
	}
	return s
}

// sphereEvaluator is a two-objective benchmark with a known front: minimize
// (x, (R−x)) over a discretized segment — every point is Pareto optimal —
// plus a second dimension that adds slack so interior points are dominated.
type convexEvaluator struct{ space *Space }

func (e *convexEvaluator) NumObjectives() int { return 2 }

// Evaluate maps the first gene to position t on [0,1] and the remaining
// genes to excess: f1 = t + excess, f2 = 1 − t + excess. The true front is
// excess = 0: the diagonal trade-off between f1 and f2.
func (e *convexEvaluator) Evaluate(c Config) (Objectives, error) {
	n := float64(len(e.space.Params[0].Values) - 1)
	t := e.space.Value(c, 0) / n
	excess := 0.0
	for i := 1; i < len(c); i++ {
		excess += e.space.Value(c, i)
	}
	excess /= 10
	return Objectives{t + excess, 1 - t + excess}, nil
}

// constrainedEvaluator marks a band of the space infeasible.
type constrainedEvaluator struct {
	inner *convexEvaluator
}

func (e *constrainedEvaluator) NumObjectives() int { return 2 }
func (e *constrainedEvaluator) Evaluate(c Config) (Objectives, error) {
	if c[0]%3 == 1 {
		return nil, core.Infeasible("band %d excluded", c[0])
	}
	return e.inner.Evaluate(c)
}

func TestSpaceBasics(t *testing.T) {
	s := testSpace(4, 3, 2)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Size(); got != 24 {
		t.Errorf("Size = %g, want 24", got)
	}
	if (&Space{}).Validate() == nil {
		t.Error("empty space accepted")
	}
	if (&Space{Params: []Parameter{{Name: "x"}}}).Validate() == nil {
		t.Error("empty parameter accepted")
	}
	rng := rand.New(rand.NewSource(1))
	c := s.Random(rng)
	if !s.Valid(c) {
		t.Error("random config invalid")
	}
	if s.Valid(Config{0, 0}) {
		t.Error("short config accepted")
	}
	if s.Valid(Config{9, 0, 0}) {
		t.Error("out-of-range config accepted")
	}
	if c.Key() == (Config{9, 9, 9}).Key() {
		t.Error("distinct configs share a key")
	}
}

func TestSpaceIterateCoversAll(t *testing.T) {
	s := testSpace(3, 2, 2)
	seen := map[string]bool{}
	s.Iterate(func(c Config) bool {
		seen[c.Key()] = true
		return true
	})
	if len(seen) != 12 {
		t.Errorf("iterated %d configs, want 12", len(seen))
	}
	// Early stop.
	count := 0
	s.Iterate(func(c Config) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop after %d", count)
	}
}

func TestMutationAndNeighborStayValid(t *testing.T) {
	s := testSpace(5, 1, 4)
	rng := rand.New(rand.NewSource(2))
	c := s.Random(rng)
	for i := 0; i < 200; i++ {
		m := s.Mutate(rng, c, 0.5)
		if !s.Valid(m) {
			t.Fatalf("mutation produced invalid config %v", m)
		}
		n := s.Neighbor(rng, c)
		if !s.Valid(n) {
			t.Fatalf("neighbor produced invalid config %v", n)
		}
		// Neighbor changes at most one gene.
		diff := 0
		for j := range n {
			if n[j] != c[j] {
				diff++
			}
		}
		if diff > 1 {
			t.Fatalf("neighbor changed %d genes", diff)
		}
	}
	// Crossover mixes genes from both parents only.
	a, b := Config{0, 0, 0}, Config{4, 0, 3}
	for i := 0; i < 50; i++ {
		child := s.Crossover(rng, a, b)
		for j := range child {
			if child[j] != a[j] && child[j] != b[j] {
				t.Fatalf("crossover invented gene %d=%d", j, child[j])
			}
		}
	}
}

func TestExhaustiveFindsTrueFront(t *testing.T) {
	s := testSpace(11, 3)
	eval := &convexEvaluator{space: s}
	res, err := Exhaustive(s, eval, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 33 {
		t.Errorf("evaluated %d, want 33", res.Evaluated)
	}
	// True front: the 11 excess-0 points.
	if len(res.Front) != 11 {
		t.Fatalf("front size = %d, want 11", len(res.Front))
	}
	for _, p := range res.Front {
		if p.Config[1] != 0 {
			t.Errorf("front contains excess point %v", p.Config)
		}
	}
	// Refuses oversized spaces.
	if _, err := Exhaustive(s, eval, 10); err == nil {
		t.Error("oversize exhaustive accepted")
	}
}

func TestRandomSearchAndMemo(t *testing.T) {
	s := testSpace(11, 3)
	eval := &convexEvaluator{space: s}
	res, err := RandomSearch(s, eval, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The memo means at most 33 distinct evaluations despite 500 draws.
	if res.Evaluated > 33 {
		t.Errorf("evaluated %d distinct configs, space has 33", res.Evaluated)
	}
	if len(res.Front) == 0 {
		t.Error("empty front")
	}
	if _, err := RandomSearch(s, eval, 0, 1); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestNSGA2FindsTrueFront(t *testing.T) {
	s := testSpace(21, 4, 4)
	eval := &convexEvaluator{space: s}
	res, err := NSGA2(s, eval, NSGA2Config{PopulationSize: 32, Generations: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// All 21 excess-0 points should be discovered on this small space.
	if len(res.Front) < 18 {
		t.Errorf("front size = %d, want ≥ 18 of 21 true points", len(res.Front))
	}
	for _, p := range res.Front {
		if p.Config[1] != 0 || p.Config[2] != 0 {
			t.Errorf("front contains dominated point %v", p.Config)
		}
	}
}

func TestNSGA2Deterministic(t *testing.T) {
	s := testSpace(11, 3)
	eval := &convexEvaluator{space: s}
	a, err := NSGA2(s, eval, NSGA2Config{PopulationSize: 16, Generations: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NSGA2(s, eval, NSGA2Config{PopulationSize: 16, Generations: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Front) != len(b.Front) || a.Evaluated != b.Evaluated {
		t.Error("identical seeds produced different runs")
	}
}

func TestNSGA2ValidatesConfig(t *testing.T) {
	s := testSpace(5)
	eval := &convexEvaluator{space: s}
	if _, err := NSGA2(s, eval, NSGA2Config{PopulationSize: 3}); err == nil {
		t.Error("odd population accepted")
	}
	if _, err := NSGA2(&Space{}, eval, NSGA2Config{}); err == nil {
		t.Error("empty space accepted")
	}
}

func TestNSGA2HandlesInfeasible(t *testing.T) {
	s := testSpace(12, 3)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	res, err := NSGA2(s, eval, NSGA2Config{PopulationSize: 16, Generations: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible == 0 {
		t.Error("constrained problem reported no infeasible evaluations")
	}
	for _, p := range res.Front {
		if p.Config[0]%3 == 1 {
			t.Errorf("infeasible config %v in front", p.Config)
		}
	}
}

func TestMOSAFindsFront(t *testing.T) {
	s := testSpace(21, 4)
	eval := &convexEvaluator{space: s}
	res, err := MOSA(s, eval, MOSAConfig{Iterations: 4000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) < 15 {
		t.Errorf("MOSA front size = %d, want ≥ 15 of 21", len(res.Front))
	}
	for _, p := range res.Front {
		if p.Config[1] != 0 {
			t.Errorf("front contains dominated point %v", p.Config)
		}
	}
	if _, err := MOSA(s, eval, MOSAConfig{Cooling: 1.5}); err == nil {
		t.Error("bad cooling accepted")
	}
}

// The paper's §5.2 observation: GA and SA find fronts of equivalent
// quality. Compare hypervolumes on the benchmark problem.
func TestNSGA2AndMOSAEquivalentQuality(t *testing.T) {
	s := testSpace(21, 4, 3)
	eval := &convexEvaluator{space: s}
	ga, err := NSGA2(s, eval, NSGA2Config{PopulationSize: 32, Generations: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := MOSA(s, eval, MOSAConfig{Iterations: 6000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := Objectives{2, 2}
	hvGA := Hypervolume(ga.Front, ref)
	hvSA := Hypervolume(sa.Front, ref)
	if math.Abs(hvGA-hvSA) > 0.05*math.Max(hvGA, hvSA) {
		t.Errorf("GA and SA hypervolumes differ substantially: %g vs %g", hvGA, hvSA)
	}
	// And both beat random search at comparable budget.
	rs, err := RandomSearch(s, eval, ga.Evaluated, 1)
	if err != nil {
		t.Fatal(err)
	}
	hvRS := Hypervolume(rs.Front, ref)
	if hvGA < hvRS-1e-9 {
		t.Errorf("NSGA-II (%g) lost to random search (%g)", hvGA, hvRS)
	}
}
