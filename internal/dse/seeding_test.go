package dse

import (
	"reflect"
	"sync"
	"testing"
)

// recordingEvaluator wraps an Evaluator and records every configuration
// it actually evaluates (memo-cache hits never reach it), in call order.
type recordingEvaluator struct {
	inner Evaluator
	mu    sync.Mutex
	seen  []Config
}

func (e *recordingEvaluator) NumObjectives() int { return e.inner.NumObjectives() }
func (e *recordingEvaluator) Evaluate(c Config) (Objectives, error) {
	e.mu.Lock()
	e.seen = append(e.seen, c.Clone())
	e.mu.Unlock()
	return e.inner.Evaluate(c)
}

func TestOptionsValidSeeds(t *testing.T) {
	s := testSpace(4, 3)
	opts := Options{SeedPoints: []Config{
		{1, 2},    // valid
		{1, 2},    // duplicate: dropped
		{3, 0},    // valid
		{4, 0},    // gene 0 out of range: dropped
		{1},       // wrong arity: dropped
		{0, 1, 0}, // wrong arity: dropped
		{0, 0},    // valid
		{2, 2},    // valid but beyond max below
	}}
	got := opts.validSeeds(s, 3)
	want := []Config{{1, 2}, {3, 0}, {0, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("validSeeds = %v, want %v", got, want)
	}
	if (Options{}).validSeeds(s, 3) != nil {
		t.Fatal("empty seed list produced seeds")
	}
	if n := len((Options{SeedPoints: want}).validSeeds(s, 0)); n != 3 {
		t.Fatalf("max 0 (unbounded) kept %d seeds, want 3", n)
	}
}

// TestNSGA2SeedPointsFillInitialPopulation pins the injection contract:
// at one worker, the first len(seeds) evaluations of the run are exactly
// the seed points in order, and the rest of the initial population is
// drawn randomly.
func TestNSGA2SeedPointsFillInitialPopulation(t *testing.T) {
	s := testSpace(16, 4)
	rec := &recordingEvaluator{inner: &convexEvaluator{space: s}}
	seeds := []Config{{15, 0}, {0, 0}, {7, 2}}
	cfg := NSGA2Config{PopulationSize: 8, Generations: 2, Seed: 5, Workers: 1}
	if _, err := NSGA2Opts(s, rec, cfg, Options{SeedPoints: seeds}); err != nil {
		t.Fatal(err)
	}
	if len(rec.seen) < len(seeds) {
		t.Fatalf("only %d evaluations recorded", len(rec.seen))
	}
	for i, want := range seeds {
		if !rec.seen[i].Equal(want) {
			t.Fatalf("evaluation %d = %v, want seed %v", i, rec.seen[i], want)
		}
	}
}

// TestNSGA2SeedPointsDeterminism: the seeded run is deterministic, an
// empty seed list is bit-identical to the plain entry point (seeded
// slots consume no RNG draws, so the random tail matches draw for draw),
// and invalid seeds are skipped rather than failing the run.
func TestNSGA2SeedPointsDeterminism(t *testing.T) {
	s := testSpace(12, 5, 3)
	cfg := NSGA2Config{PopulationSize: 8, Generations: 6, Seed: 9, Workers: 2}
	run := func(opts Options) *Result {
		t.Helper()
		res, err := NSGA2Opts(s, &convexEvaluator{space: s}, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, err := NSGA2(s, &convexEvaluator{space: s}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if noSeeds := run(Options{SeedPoints: []Config{}}); !reflect.DeepEqual(plain.Front, noSeeds.Front) {
		t.Fatal("empty SeedPoints changed the run")
	}
	seeds := []Config{{11, 4, 2}, {0, 0, 0}}
	a, b := run(Options{SeedPoints: seeds}), run(Options{SeedPoints: seeds})
	if !reflect.DeepEqual(a.Front, b.Front) || a.Evaluated != b.Evaluated {
		t.Fatal("seeded run is not deterministic")
	}
	// A seed list of nothing-but-garbage degrades to the plain run.
	garbage := run(Options{SeedPoints: []Config{{99, 0, 0}, {1, 2}}})
	if !reflect.DeepEqual(plain.Front, garbage.Front) {
		t.Fatal("all-invalid SeedPoints changed the run")
	}
}

// TestMOSASeedPointsStartChains: chain i starts its walk from seed i —
// at one worker the chains run in order, so each seed is the first
// configuration its chain evaluates.
func TestMOSASeedPointsStartChains(t *testing.T) {
	s := testSpace(16, 4)
	rec := &recordingEvaluator{inner: &convexEvaluator{space: s}}
	seeds := []Config{{15, 3}, {0, 0}}
	cfg := MOSAConfig{Iterations: 64, Restarts: 2, Seed: 4, Workers: 1}
	if _, err := MOSAOpts(s, rec, cfg, Options{SeedPoints: seeds}); err != nil {
		t.Fatal(err)
	}
	if len(rec.seen) == 0 || !rec.seen[0].Equal(seeds[0]) {
		t.Fatalf("chain 0 started at %v, want %v", rec.seen[0], seeds[0])
	}
	found := false
	for _, c := range rec.seen {
		if c.Equal(seeds[1]) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("chain 1's seed %v never evaluated", seeds[1])
	}

	// Determinism and the empty-list no-op, as for NSGA-II.
	run := func(opts Options) *Result {
		t.Helper()
		res, err := MOSAOpts(s, &convexEvaluator{space: s}, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(Options{})
	if noSeeds := run(Options{SeedPoints: nil}); !reflect.DeepEqual(plain.Front, noSeeds.Front) {
		t.Fatal("nil SeedPoints changed the MOSA run")
	}
	a, b := run(Options{SeedPoints: seeds}), run(Options{SeedPoints: seeds})
	if !reflect.DeepEqual(a.Front, b.Front) || a.Evaluated != b.Evaluated {
		t.Fatal("seeded MOSA run is not deterministic")
	}
}
