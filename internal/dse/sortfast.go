package dse

import (
	"math"
	"sort"
)

// This file holds the fast non-dominated sorting machinery behind the
// NSGA-II generation loop: an ENS/Jensen-style sort that is O(N log N) for
// the two-objective case (the paper's baseline view) and an ENS-BS sort
// with a lexicographic prefilter for three and more objectives, both
// running entirely on reusable workspace buffers so steady-state
// generations allocate nothing.
//
// Equivalence with the O(MN²) reference implementation
// (rankAndCrowdNaive) is part of the contract, not an aspiration: both
// produce the canonical non-dominated peeling ranks under constrained
// dominance, order every front's members by ascending population index,
// and run the identical crowding arithmetic, so ranks match exactly and
// crowding distances match bit for bit. TestFastSortMatchesNaive checks
// this on randomized populations.

// testNaiveRank routes sortWorkspace.rankAndCrowd through the O(MN²)
// reference implementation. Tests flip it to prove the fast and naive
// search internals produce bit-identical NSGA-II runs.
var testNaiveRank = false

// lexSorter sorts a population index permutation by lexicographic
// objective order, ties broken by index so the permutation is a
// deterministic function of the population. It is persistent workspace
// state so sort.Sort sees an already-heap-allocated value and the sort
// itself allocates nothing.
type lexSorter struct {
	pop []Point
	idx []int
}

func (s *lexSorter) Len() int      { return len(s.idx) }
func (s *lexSorter) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *lexSorter) Less(i, j int) bool {
	a, b := s.idx[i], s.idx[j]
	x, y := s.pop[a].Objs, s.pop[b].Objs
	for k := range x {
		if x[k] != y[k] {
			return x[k] < y[k]
		}
	}
	return a < b
}

// objSorter orders front-local indices by one objective, ties broken by
// index — the deterministic ordering the crowding computation runs on.
type objSorter struct {
	front []Point
	idx   []int
	obj   int
}

func (s *objSorter) Len() int      { return len(s.idx) }
func (s *objSorter) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *objSorter) Less(i, j int) bool {
	a, b := s.front[s.idx[i]].Objs[s.obj], s.front[s.idx[j]].Objs[s.obj]
	if a != b {
		return a < b
	}
	return s.idx[i] < s.idx[j]
}

// sortWorkspace owns every buffer the fast non-dominated sort needs, so a
// search algorithm that keeps one workspace per run ranks populations of
// any (stable) size without allocating after the first generation.
type sortWorkspace struct {
	ranks  []int
	crowd  []float64
	order  []int     // feasible population indices in lexicographic order
	minf2  []float64 // two-objective sweep: min f2 per front, non-decreasing
	fronts [][]int   // per-front member indices (ENS state, then crowding buckets)
	nf     int       // fronts in use
	member []Point   // one front's points, gathered for crowding
	dist   []float64 // crowding scratch
	idx    []int     // crowding scratch
	lex    lexSorter
	objs   objSorter
}

// rankAndCrowd computes the non-domination rank (0 = best) and crowding
// distance of each population member under constrained dominance: feasible
// points rank by Pareto dominance among themselves and every infeasible
// point lands together in one final front (they are mutually incomparable
// and dominated by every feasible point). The returned slices are
// workspace-owned and valid until the next call.
func (ws *sortWorkspace) rankAndCrowd(pop []Point) (ranks []int, crowd []float64) {
	if testNaiveRank {
		return rankAndCrowdNaive(pop)
	}
	n := len(pop)
	ws.ranks = growInts(ws.ranks, n)
	ws.crowd = growFloats(ws.crowd, n)
	if n == 0 {
		return ws.ranks, ws.crowd
	}

	ws.order = ws.order[:0]
	infeasible := 0
	for i := range pop {
		if pop[i].Feasible {
			ws.order = append(ws.order, i)
		} else {
			infeasible++
		}
	}
	ws.lex.pop, ws.lex.idx = pop, ws.order
	sort.Sort(&ws.lex)
	ws.lex.pop = nil

	maxRank := -1
	if len(ws.order) > 0 {
		if len(pop[ws.order[0]].Objs) == 2 {
			maxRank = ws.sweep2(pop)
		} else {
			maxRank = ws.ensBS(pop)
		}
	}
	nFronts := maxRank + 1
	if infeasible > 0 {
		for i := range pop {
			if !pop[i].Feasible {
				ws.ranks[i] = nFronts
			}
		}
		nFronts++
	}

	// Re-bucket each front's members in ascending population index order —
	// the canonical order crowding is defined over.
	ws.ensureFronts(nFronts)
	for i := 0; i < n; i++ {
		r := ws.ranks[i]
		ws.fronts[r] = append(ws.fronts[r], i)
	}
	for f := 0; f < nFronts; f++ {
		members := ws.fronts[f]
		ws.member = ws.member[:0]
		for _, i := range members {
			ws.member = append(ws.member, pop[i])
		}
		ws.dist = growFloats(ws.dist, len(members))
		ws.idx = growInts(ws.idx, len(members))
		crowdingInto(ws.member, ws.dist, ws.idx, &ws.objs)
		for k, i := range members {
			ws.crowd[i] = ws.dist[k]
		}
	}
	return ws.ranks, ws.crowd
}

// sweep2 is Jensen's two-objective non-dominated sort: process points in
// lexicographic order and binary-search the non-decreasing per-front
// minimum-f2 array for the first front that does not dominate the point —
// the longest-increasing-subsequence patience trick, O(N log N) total.
// Exact duplicates inherit the representative's front (equal vectors never
// dominate each other). Returns the highest feasible rank.
func (ws *sortWorkspace) sweep2(pop []Point) int {
	ws.minf2 = ws.minf2[:0]
	for k, i := range ws.order {
		if k > 0 {
			if j := ws.order[k-1]; equalObjs(pop[j].Objs, pop[i].Objs) {
				ws.ranks[i] = ws.ranks[j]
				continue
			}
		}
		f2 := pop[i].Objs[1]
		// A lex-earlier distinct point dominates iff its f2 <= ours, so
		// front r dominates iff minf2[r] <= f2; place at the first front
		// whose minimum exceeds f2.
		lo, hi := 0, len(ws.minf2)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ws.minf2[mid] > f2 {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo == len(ws.minf2) {
			ws.minf2 = append(ws.minf2, f2)
		} else {
			ws.minf2[lo] = f2
		}
		ws.ranks[i] = lo
	}
	return len(ws.minf2) - 1
}

// ensBS is the efficient non-dominated sort with binary search over fronts
// for three and more objectives: points arrive in lexicographic order, so
// only already-placed points can dominate a newcomer, domination of a
// lex-earlier distinct point reduces to componentwise <=, and the fronts
// that dominate a point always form a prefix. Exact duplicates inherit the
// representative's front and are not re-added as members. Returns the
// highest feasible rank.
func (ws *sortWorkspace) ensBS(pop []Point) int {
	ws.nf = 0
	for k, i := range ws.order {
		if k > 0 {
			if j := ws.order[k-1]; equalObjs(pop[j].Objs, pop[i].Objs) {
				ws.ranks[i] = ws.ranks[j]
				continue
			}
		}
		lo, hi := 0, ws.nf
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ws.frontDominates(pop, mid, pop[i].Objs) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == ws.nf {
			if ws.nf == len(ws.fronts) {
				ws.fronts = append(ws.fronts, nil)
			}
			ws.fronts[ws.nf] = ws.fronts[ws.nf][:0]
			ws.nf++
		}
		ws.fronts[lo] = append(ws.fronts[lo], i)
		ws.ranks[i] = lo
	}
	return ws.nf - 1
}

// frontDominates reports whether any member of front f dominates objs.
// Members are scanned newest-first: the most recently placed points are
// closest in lexicographic order and the likeliest dominators.
func (ws *sortWorkspace) frontDominates(pop []Point, f int, objs Objectives) bool {
	members := ws.fronts[f]
	for k := len(members) - 1; k >= 0; k-- {
		m := pop[members[k]].Objs
		dom := true
		for d := range m {
			if m[d] > objs[d] {
				dom = false
				break
			}
		}
		if dom {
			return true
		}
	}
	return false
}

// ensureFronts resets the first n front buckets to zero length, keeping
// their backing arrays.
func (ws *sortWorkspace) ensureFronts(n int) {
	for len(ws.fronts) < n {
		ws.fronts = append(ws.fronts, nil)
	}
	for f := 0; f < n; f++ {
		ws.fronts[f] = ws.fronts[f][:0]
	}
	ws.nf = n
}

// crowdingInto is the canonical crowding computation: NSGA-II crowding
// distance over front, written into dist, with the per-objective orderings
// fully determined (objective value, then front position) so equal inputs
// always produce bit-equal outputs regardless of sort algorithm.
func crowdingInto(front []Point, dist []float64, idx []int, s *objSorter) {
	n := len(front)
	for i := range dist[:n] {
		dist[i] = 0
	}
	if n == 0 {
		return
	}
	m := len(front[0].Objs)
	s.front, s.idx = front, idx
	for obj := 0; obj < m; obj++ {
		for i := range idx {
			idx[i] = i
		}
		s.obj = obj
		sort.Sort(s)
		lo := front[idx[0]].Objs[obj]
		hi := front[idx[n-1]].Objs[obj]
		dist[idx[0]] = math.Inf(1)
		dist[idx[n-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for k := 1; k < n-1; k++ {
			dist[idx[k]] += (front[idx[k+1]].Objs[obj] - front[idx[k-1]].Objs[obj]) / (hi - lo)
		}
	}
	s.front = nil
}

// rankAndCrowdNaive is the O(MN²) reference: pairwise constrained-dominance
// counting with front peeling. It allocates freely and exists so the fast
// sort has something to be proven equivalent against.
func rankAndCrowdNaive(pop []Point) (ranks []int, crowd []float64) {
	n := len(pop)
	ranks = make([]int, n)
	crowd = make([]float64, n)

	dominatedBy := make([][]int, n) // dominatedBy[i]: indices i dominates
	count := make([]int, n)         // how many dominate i
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if dominatesConstrained(pop[i], pop[j]) {
				dominatedBy[i] = append(dominatedBy[i], j)
			} else if dominatesConstrained(pop[j], pop[i]) {
				count[i]++
			}
		}
	}
	var front []int
	for i := 0; i < n; i++ {
		if count[i] == 0 {
			ranks[i] = 0
			front = append(front, i)
		}
	}
	nFronts := 0
	for len(front) > 0 {
		nFronts++
		var next []int
		for _, i := range front {
			for _, j := range dominatedBy[i] {
				count[j]--
				if count[j] == 0 {
					ranks[j] = nFronts
					next = append(next, j)
				}
			}
		}
		front = next
	}
	// Crowding per front, members in ascending population index order —
	// the same canonical order the fast sort uses.
	for f := 0; f < nFronts; f++ {
		var members []Point
		var where []int
		for i := 0; i < n; i++ {
			if ranks[i] == f {
				members = append(members, pop[i])
				where = append(where, i)
			}
		}
		d := CrowdingDistance(members)
		for k, i := range where {
			crowd[i] = d[k]
		}
	}
	return ranks, crowd
}

// growInts returns s resized to n, reallocating only on capacity growth.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growFloats returns s resized to n, reallocating only on capacity growth.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
