package dse

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomPopulation draws a population with duplicate-heavy discrete
// objectives (grid) or continuous ones, two or three objectives, and a
// feasibility mix — the degenerate shapes the fast sort must handle.
func randomPopulation(r *rand.Rand) []Point {
	n := 1 + r.Intn(80)
	m := 2 + r.Intn(2)
	grid := r.Intn(2) == 0
	pop := make([]Point, n)
	for i := range pop {
		objs := make(Objectives, m)
		for d := range objs {
			if grid {
				objs[d] = float64(r.Intn(6))
			} else {
				objs[d] = r.Float64() * 10
			}
		}
		pop[i] = Point{Config: Config{i}, Objs: objs, Feasible: r.Intn(5) > 0}
	}
	return pop
}

// TestFastSortMatchesNaive is the equivalence proof the tentpole demands:
// on >= 1000 randomized populations (2 and 3 objectives, duplicates,
// infeasible mixes, singleton and all-equal degenerate shapes) the fast
// workspace sort returns exactly the naive reference's ranks and
// bit-identical crowding distances.
func TestFastSortMatchesNaive(t *testing.T) {
	var ws sortWorkspace
	for trial := 0; trial < 1200; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		pop := randomPopulation(r)
		wantRanks, wantCrowd := rankAndCrowdNaive(pop)
		gotRanks, gotCrowd := ws.rankAndCrowd(pop)
		for i := range pop {
			if gotRanks[i] != wantRanks[i] {
				t.Fatalf("trial %d: point %d rank = %d, naive %d\npop: %+v",
					trial, i, gotRanks[i], wantRanks[i], pop)
			}
			if gotCrowd[i] != wantCrowd[i] {
				t.Fatalf("trial %d: point %d crowding = %v, naive %v\npop: %+v",
					trial, i, gotCrowd[i], wantCrowd[i], pop)
			}
		}
	}
}

// TestFastSortDegenerateShapes pins the edge cases the randomized test may
// sample thinly: empty, all-infeasible, all-duplicate populations.
func TestFastSortDegenerateShapes(t *testing.T) {
	var ws sortWorkspace
	cases := [][]Point{
		nil,
		{{Objs: Objectives{1, 2}, Feasible: false}},
		{{Objs: Objectives{1, 2}, Feasible: false}, {Objs: Objectives{0, 0}, Feasible: false}},
		{{Objs: Objectives{1, 2}, Feasible: true}},
		mkPoints([]float64{3, 3}, []float64{3, 3}, []float64{3, 3}),
		mkPoints([]float64{1, 1, 1}, []float64{1, 1, 1}, []float64{0, 2, 1}),
	}
	for ci, pop := range cases {
		wantRanks, wantCrowd := rankAndCrowdNaive(pop)
		gotRanks, gotCrowd := ws.rankAndCrowd(pop)
		if !reflect.DeepEqual(append([]int{}, gotRanks...), append([]int{}, wantRanks...)) {
			t.Errorf("case %d: ranks %v, naive %v", ci, gotRanks, wantRanks)
		}
		for i := range pop {
			if gotCrowd[i] != wantCrowd[i] {
				t.Errorf("case %d: crowding %v, naive %v", ci, gotCrowd, wantCrowd)
			}
		}
	}
}

// TestNSGA2FastVsNaiveBitIdentical runs seeded NSGA-II with the fast sort
// and with the O(MN²) reference wired into the same generation loop, and
// demands bit-identical results — fronts (configurations and objective
// bits), evaluation counts, everything. It proves the speed rewrite itself
// changed nothing: any front difference versus the pre-PR code comes only
// from the two intentional algorithmic changes that shipped alongside it
// (the de-biased tournament tie coin and tournaments reusing the union's
// ranks, per Deb's formulation), never from the fast sort.
func TestNSGA2FastVsNaiveBitIdentical(t *testing.T) {
	s := testSpace(12, 4, 3)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	for _, seed := range []int64{1, 7, 42} {
		cfg := NSGA2Config{PopulationSize: 20, Generations: 12, Seed: seed}
		fast, err := NSGA2(s, eval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		testNaiveRank = true
		naive, err := NSGA2(s, eval, cfg)
		testNaiveRank = false
		if err != nil {
			t.Fatal(err)
		}
		if fast.Evaluated != naive.Evaluated || fast.Infeasible != naive.Infeasible {
			t.Fatalf("seed %d: counts (%d,%d) vs naive (%d,%d)",
				seed, fast.Evaluated, fast.Infeasible, naive.Evaluated, naive.Infeasible)
		}
		if !reflect.DeepEqual(fast.Front, naive.Front) {
			t.Fatalf("seed %d: fronts differ\nfast:  %+v\nnaive: %+v", seed, fast.Front, naive.Front)
		}
	}
}

// naiveArchive is the pre-rewrite O(N) -per-insert archive, kept verbatim
// as the reference the incremental sorted archive is proven against.
type naiveArchive struct {
	points []Point
}

func (a *naiveArchive) Add(p Point) bool {
	if !p.Feasible {
		return false
	}
	kept := a.points[:0]
	for _, q := range a.points {
		if Dominates(q.Objs, p.Objs) || equalObjs(q.Objs, p.Objs) {
			return false
		}
		if !Dominates(p.Objs, q.Objs) {
			kept = append(kept, q)
		}
	}
	a.points = append(kept, p)
	return true
}

// TestArchiveMatchesNaiveArchive drives the incremental sorted archive and
// the pre-rewrite reference through identical random insertion sequences
// (2 and 3 objectives): every Add must return the same verdict and the
// retained point sets must be identical — same points, not merely the same
// objective multiset, which the Config identity tags verify. Since MOSA's
// acceptance energy and archive merging read the archive as a set, this is
// the "before/after" proof that seeded MOSA runs are unchanged by the
// archive rewrite (up to the now-sorted presentation of Points).
func TestArchiveMatchesNaiveArchive(t *testing.T) {
	for trial := 0; trial < 600; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		m := 2 + r.Intn(2)
		n := 1 + r.Intn(120)
		var fast Archive
		var naive naiveArchive
		for i := 0; i < n; i++ {
			objs := make(Objectives, m)
			for d := range objs {
				objs[d] = float64(r.Intn(7))
			}
			p := Point{Config: Config{i}, Objs: objs, Feasible: r.Intn(8) > 0}
			got, want := fast.Add(p), naive.Add(p)
			if got != want {
				t.Fatalf("trial %d insert %d (%v): Add = %v, naive %v", trial, i, objs, got, want)
			}
		}
		if fast.Len() != len(naive.points) {
			t.Fatalf("trial %d: size %d vs naive %d", trial, fast.Len(), len(naive.points))
		}
		// Same identities: match by the Config tag.
		byTag := map[int]Point{}
		for _, p := range naive.points {
			byTag[p.Config[0]] = p
		}
		prev := Objectives(nil)
		for _, p := range fast.Points() {
			q, ok := byTag[p.Config[0]]
			if !ok || !equalObjs(q.Objs, p.Objs) {
				t.Fatalf("trial %d: archived point %v absent from naive archive", trial, p)
			}
			if prev != nil && !lexLessObjs(prev, p.Objs) {
				t.Fatalf("trial %d: Points not in strict lexicographic order: %v !< %v", trial, prev, p.Objs)
			}
			prev = p.Objs
		}
	}
}

// TestNSGA2GenerationSteadyStateZeroAllocs pins the pooled-buffer claim:
// once the memo cache and archive have converged on a small space, a full
// NSGA-II generation (tournaments, variation, batch evaluation, fast
// non-dominated sort, environmental selection, archive maintenance)
// performs zero heap allocations.
func TestNSGA2GenerationSteadyStateZeroAllocs(t *testing.T) {
	s := testSpace(6, 3)
	eval := &convexEvaluator{space: s}
	cfg := NSGA2Config{PopulationSize: 16, Generations: 1, Seed: 3, Workers: 1}
	cfg = cfg.withDefaults(len(s.Params))
	pe := NewParallelEvaluator(eval, 1)
	var arch Archive
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := newNSGA2Run(s, pe, cfg)
	r.seed(rng, &arch, nil)
	for gen := 0; gen < 30; gen++ { // saturate the 18-point memo cache
		r.generation(rng, &arch)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.generation(rng, &arch)
	})
	if allocs != 0 {
		t.Fatalf("steady-state generation allocates %.1f objects, want 0", allocs)
	}
}

// TestMOSAChainSteadyStateZeroAllocs is the annealing twin: once every
// configuration of a small space is memoized and the guiding archive has
// converged, chain iterations (neighbour move, cached evaluation, archive
// check, acceptance test) allocate nothing.
func TestMOSAChainSteadyStateZeroAllocs(t *testing.T) {
	s := testSpace(6, 3)
	eval := &convexEvaluator{space: s}
	pe := NewParallelEvaluator(eval, 1)
	var arch Archive
	rng := rand.New(rand.NewSource(9))
	buf := make(Config, len(s.Params))
	s.RandomInto(rng, buf)
	cur := pe.evalFor(0, buf)
	arch.Add(cur)
	for i := 0; i < 500; i++ { // saturate cache and archive
		s.NeighborInto(rng, buf, cur.Config)
		cand := pe.evalFor(0, buf)
		arch.Add(cand)
		cur = cand
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.NeighborInto(rng, buf, cur.Config)
		cand := pe.evalFor(0, buf)
		arch.Add(cand)
		cur = cand
	})
	if allocs != 0 {
		t.Fatalf("steady-state chain iteration allocates %.1f objects, want 0", allocs)
	}
}

// TestTournamentTieBreakSymmetric checks the satellite fix: on exact
// (rank, crowding) ties the winner no longer always comes from the first
// draw. A replica rng recovers each tournament's draw pair (two Intn
// draws, plus the tie coin), so the test can count how often the first
// draw wins — the old rule made that 100%; the coin makes it ~50%.
func TestTournamentTieBreakSymmetric(t *testing.T) {
	n := 8
	pop := make([]Point, n)
	ranks := make([]int, n) // all rank 0
	crowd := make([]float64, n)
	rng := rand.New(rand.NewSource(5))
	replica := rand.New(rand.NewSource(5))
	firstWins, contested := 0, 0
	for trial := 0; trial < 6000; trial++ {
		a := replica.Intn(n)
		b := replica.Intn(n)
		replica.Intn(2) // the tie coin, to stay in sync
		w := tournament(rng, pop, ranks, crowd)
		if w != a && w != b {
			t.Fatalf("trial %d: winner %d is neither draw (%d, %d)", trial, w, a, b)
		}
		if a == b {
			continue
		}
		contested++
		if w == a {
			firstWins++
		}
	}
	frac := float64(firstWins) / float64(contested)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("first draw wins %.1f%% of contested ties, want ~50%%", frac*100)
	}
	// Determinism: the same seed replays the same winners.
	r1 := rand.New(rand.NewSource(11))
	r2 := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		if tournament(r1, pop, ranks, crowd) != tournament(r2, pop, ranks, crowd) {
			t.Fatal("seeded tournaments diverged")
		}
	}
}
