// Package dse provides the multi-objective design-space exploration layer:
// discrete design spaces, Pareto machinery (dominance, fronts, crowding,
// hypervolume, coverage), and the search algorithms the paper plugs its
// model into — a genetic algorithm (NSGA-II), multi-objective simulated
// annealing (after Nam & Park [27]), plus exhaustive and random search as
// references.
//
// Everything is deterministic under a caller-provided seed, and evaluators
// signal constraint violations (infeasible configurations) so the
// algorithms can apply constrained dominance instead of aborting.
//
// # Batch-evaluation runtime
//
// Every search algorithm runs on ParallelEvaluator, a bounded worker pool
// over a sharded, mutex-guarded memo cache. Candidate configurations are
// produced sequentially from the algorithm's seeded RNG and handed to
// EvaluateBatch, which fans them across the pool and returns points in
// input order; each distinct configuration is evaluated exactly once no
// matter how many workers race for it, so Result.Evaluated keeps meaning
// distinct points.
//
// # Determinism guarantees
//
// Evaluators must be pure functions of the configuration. Under that
// assumption, fronts and the Evaluated/Infeasible counts are bit-identical
// at every worker count (workers = 1 is the sequential path): NSGA-II
// derives each offspring population from the parent generation alone and
// archives it in offspring order, MOSA gives each chain a seed mixed from
// (Seed, chain index) and a private guiding archive and merges the chain
// archives in chain order, and Exhaustive/RandomSearch archive their
// batches in enumeration/draw order. Archive merging is additionally
// order-independent at the objective level: the set of non-dominated
// objective vectors does not depend on insertion order.
//
// # Run options: cancellation, progress, checkpoint/resume
//
// Every algorithm has an Opts variant (NSGA2Opts, MOSAOpts,
// ExhaustiveOpts, RandomSearchOpts) taking an Options value whose hooks
// run at boundaries only — the end of a generation (NSGA-II), a chain
// segment (MOSA) or an evaluation batch (exhaustive/random) — so the
// allocation-free hot loops never see them and a zero Options run is
// bit-identical to the plain entry point. Cancellation returns the
// partial Result alongside ctx.Err(); ProgressSink receives step counters
// and front snapshots; CheckpointFunc receives self-contained, JSON-
// serializable Snapshots. The search RNG draws from a SplitMix64
// rand.Source64 so its complete state is a single uint64, which is what
// makes a resumed run (Options.Resume) replay the uninterrupted
// trajectory bit for bit.
package dse

import (
	"fmt"
	"math/rand"
)

// Parameter is one discrete design knob: a name and its admissible values.
// Values carry float64 payloads; evaluators interpret them (they may be
// indices, frequencies, ratios...).
type Parameter struct {
	Name   string
	Values []float64
}

// Space is a cartesian product of parameters.
type Space struct {
	Params []Parameter
}

// Validate checks that every parameter has at least one value.
func (s *Space) Validate() error {
	if len(s.Params) == 0 {
		return fmt.Errorf("dse: empty design space")
	}
	for i, p := range s.Params {
		if len(p.Values) == 0 {
			return fmt.Errorf("dse: parameter %d (%s) has no values", i, p.Name)
		}
	}
	return nil
}

// Size returns the number of points in the space as a float64 (spaces
// routinely exceed int ranges; the case study's has ~10¹¹ points).
func (s *Space) Size() float64 {
	size := 1.0
	for _, p := range s.Params {
		size *= float64(len(p.Values))
	}
	return size
}

// Config is one design point: an index into each parameter's value list.
type Config []int

// Clone copies the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Key returns a compact map key for memoization in string-keyed containers.
// The batch runtime's memo cache uses the allocation-free Hash/Equal pair
// instead; Key remains for callers that want a set of configurations.
func (c Config) Key() string {
	b := make([]byte, 0, len(c)*3)
	for _, v := range c {
		b = append(b, byte(v), byte(v>>8), '|')
	}
	return string(b)
}

// Hash packs the gene indices into a 64-bit FNV-1a hash without
// allocating — the memo-cache key of the batch runtime. Distinct
// configurations may collide (the space can exceed 2⁶⁴ points); collisions
// are resolved by Equal, never by trusting the hash alone.
func (c Config) Hash() uint64 {
	h := uint64(14695981039346656037)
	for _, v := range c {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return h
}

// Equal reports gene-wise equality.
func (c Config) Equal(d Config) bool {
	if len(c) != len(d) {
		return false
	}
	for i, v := range c {
		if v != d[i] {
			return false
		}
	}
	return true
}

// Value resolves parameter i of the configuration.
func (s *Space) Value(c Config, i int) float64 {
	return s.Params[i].Values[c[i]]
}

// Valid reports whether c indexes the space correctly.
func (s *Space) Valid(c Config) bool {
	if len(c) != len(s.Params) {
		return false
	}
	for i, v := range c {
		if v < 0 || v >= len(s.Params[i].Values) {
			return false
		}
	}
	return true
}

// Random draws a uniform configuration.
func (s *Space) Random(rng *rand.Rand) Config {
	c := make(Config, len(s.Params))
	s.RandomInto(rng, c)
	return c
}

// RandomInto draws a uniform configuration into dst (length = parameter
// count) — the allocation-free form the search generation loops run on.
// The rng draw sequence is identical to Random's.
func (s *Space) RandomInto(rng *rand.Rand, dst Config) {
	for i := range dst {
		dst[i] = rng.Intn(len(s.Params[i].Values))
	}
}

// Mutate flips each gene with the given probability to a uniformly chosen
// value, returning a new configuration.
func (s *Space) Mutate(rng *rand.Rand, c Config, perGeneProb float64) Config {
	out := c.Clone()
	s.MutateInPlace(rng, out, perGeneProb)
	return out
}

// MutateInPlace is Mutate on a caller-owned configuration: each gene flips
// with the given probability to a uniformly chosen value. The rng draw
// sequence is identical to Mutate's.
func (s *Space) MutateInPlace(rng *rand.Rand, c Config, perGeneProb float64) {
	for i := range c {
		if rng.Float64() < perGeneProb {
			c[i] = rng.Intn(len(s.Params[i].Values))
		}
	}
}

// Neighbor nudges exactly one randomly chosen gene by ±1 (wrapping at the
// ends), the canonical simulated-annealing move on a discrete grid.
func (s *Space) Neighbor(rng *rand.Rand, c Config) Config {
	out := c.Clone()
	s.neighborInPlace(rng, out)
	return out
}

// NeighborInto writes the ±1 single-gene neighbour of src into dst (equal
// lengths, dst must not alias src's backing array if src must survive).
// The rng draw sequence is identical to Neighbor's.
func (s *Space) NeighborInto(rng *rand.Rand, dst, src Config) {
	copy(dst, src)
	s.neighborInPlace(rng, dst)
}

func (s *Space) neighborInPlace(rng *rand.Rand, c Config) {
	i := rng.Intn(len(c))
	n := len(s.Params[i].Values)
	if n == 1 {
		return
	}
	if rng.Intn(2) == 0 {
		c[i] = (c[i] + 1) % n
	} else {
		c[i] = (c[i] - 1 + n) % n
	}
}

// Crossover performs uniform crossover between two parents.
func (s *Space) Crossover(rng *rand.Rand, a, b Config) Config {
	out := make(Config, len(a))
	s.CrossoverInto(rng, out, a, b)
	return out
}

// CrossoverInto performs uniform crossover between two parents into dst
// (all equal lengths). The rng draw sequence is identical to Crossover's.
func (s *Space) CrossoverInto(rng *rand.Rand, dst, a, b Config) {
	for i := range dst {
		if rng.Intn(2) == 0 {
			dst[i] = a[i]
		} else {
			dst[i] = b[i]
		}
	}
}

// Iterate enumerates the whole space in lexicographic order, stopping when
// fn returns false. Only sensible for small (test-sized) spaces.
func (s *Space) Iterate(fn func(Config) bool) {
	c := make(Config, len(s.Params))
	for {
		if !fn(c) {
			return
		}
		// Odometer increment.
		i := len(c) - 1
		for i >= 0 {
			c[i]++
			if c[i] < len(s.Params[i].Values) {
				break
			}
			c[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}
