package dse

import (
	"testing"
)

// TestStatsSinkAllAlgorithms is the StatsSink contract on every algorithm:
// the sink fires at each boundary, counters are monotone, the final sample
// reaches the last boundary, cache stats are populated and consistent
// (lookups = hits + evaluated, monotone), and the zero-copy front is
// non-empty once anything was evaluated. It also pins that Stats and
// Progress observe the same boundaries when both are attached.
func TestStatsSinkAllAlgorithms(t *testing.T) {
	s := testSpace(12, 4, 3)
	eval := &constrainedEvaluator{inner: &convexEvaluator{space: s}}
	sBig := testSpace(20, 18, 6)
	evalBig := &constrainedEvaluator{inner: &convexEvaluator{space: sBig}}

	algorithms := []struct {
		name string
		run  func(opts Options) (*Result, error)
	}{
		{"nsga2", func(opts Options) (*Result, error) {
			return NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 16, Generations: 12, Seed: 9, Workers: 2}, opts)
		}},
		{"mosa", func(opts Options) (*Result, error) {
			return MOSAOpts(s, eval, MOSAConfig{Iterations: 4000, Restarts: 4, Seed: 5, Workers: 2}, opts)
		}},
		{"exhaustive", func(opts Options) (*Result, error) {
			return ExhaustiveOpts(sBig, evalBig, 1000000, 2, opts)
		}},
		{"random", func(opts Options) (*Result, error) {
			return RandomSearchOpts(sBig, evalBig, 3000, 3, 2, opts)
		}},
	}

	for _, alg := range algorithms {
		t.Run(alg.name, func(t *testing.T) {
			var stats []Stats
			var progressSteps []int
			opts := Options{
				Stats: func(st Stats) {
					// The front is shared storage: length is all a sink may
					// retain without copying.
					st.Front = st.Front[:len(st.Front):len(st.Front)]
					stats = append(stats, st)
				},
				Progress: func(p Progress) { progressSteps = append(progressSteps, p.Step) },
			}
			res, err := alg.run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(stats) == 0 {
				t.Fatal("stats sink never fired")
			}
			if len(stats) != len(progressSteps) {
				t.Fatalf("stats fired %d times, progress %d — must observe the same boundaries",
					len(stats), len(progressSteps))
			}
			prev := Stats{Step: 0}
			for i, st := range stats {
				if st.Algorithm != alg.name {
					t.Fatalf("sample %d: algorithm %q, want %q", i, st.Algorithm, alg.name)
				}
				if st.Step != progressSteps[i] {
					t.Fatalf("sample %d: stats step %d, progress step %d", i, st.Step, progressSteps[i])
				}
				if st.Step <= prev.Step {
					t.Fatalf("sample %d: step %d not increasing from %d", i, st.Step, prev.Step)
				}
				if st.Evaluated < prev.Evaluated || st.Infeasible < prev.Infeasible {
					t.Fatalf("sample %d: counters regressed: %+v after %+v", i, st, prev)
				}
				if st.CacheLookups < prev.CacheLookups || st.CacheHits < prev.CacheHits {
					t.Fatalf("sample %d: cache counters regressed: %+v after %+v", i, st, prev)
				}
				if st.CacheHits > st.CacheLookups {
					t.Fatalf("sample %d: %d hits out of %d lookups", i, st.CacheHits, st.CacheLookups)
				}
				if st.CacheLookups < int64(st.Evaluated) {
					t.Fatalf("sample %d: %d lookups < %d evaluations", i, st.CacheLookups, st.Evaluated)
				}
				if st.Evaluated > 0 && len(st.Front) == 0 {
					t.Fatalf("sample %d: empty front after %d evaluations", i, st.Evaluated)
				}
				if st.TotalSteps <= 0 || st.Step > st.TotalSteps {
					t.Fatalf("sample %d: step %d of %d", i, st.Step, st.TotalSteps)
				}
				prev = st
			}
			// Exhaustive flushes a trailing partial batch after its last
			// boundary (Progress behaves identically), so the final sample
			// may sit one step and one partial batch short of the result.
			last := stats[len(stats)-1]
			if last.Step < last.TotalSteps-1 {
				t.Fatalf("final sample at step %d of %d", last.Step, last.TotalSteps)
			}
			if last.Evaluated > res.Evaluated || last.Infeasible > res.Infeasible {
				t.Fatalf("final sample counts (%d, %d) exceed result (%d, %d)",
					last.Evaluated, last.Infeasible, res.Evaluated, res.Infeasible)
			}
			if last.Step == last.TotalSteps && last.Evaluated != res.Evaluated {
				t.Fatalf("final-boundary sample evaluated %d, result %d", last.Evaluated, res.Evaluated)
			}
		})
	}
}

// TestStatsSinkCacheHits pins that revisiting configurations shows up as
// memo-cache hits: a second identical NSGA-II run on a tiny space draws
// mostly cached points, so hits must grow across generations.
func TestStatsSinkCacheHits(t *testing.T) {
	s := testSpace(4, 3) // 12 configurations: a long run must revisit
	eval := &convexEvaluator{space: s}
	var last Stats
	_, err := NSGA2Opts(s, eval, NSGA2Config{PopulationSize: 12, Generations: 10, Seed: 3}, Options{
		Stats: func(st Stats) { last = st; last.Front = nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.CacheHits == 0 {
		t.Fatal("a 10-generation run over 12 configurations produced no cache hits")
	}
	if last.Evaluated > 12 {
		t.Fatalf("evaluated %d distinct configurations in a 12-point space", last.Evaluated)
	}
	if got := last.CacheLookups - last.CacheHits; got != int64(last.Evaluated) {
		t.Fatalf("lookups-hits = %d, want evaluated = %d", got, last.Evaluated)
	}
}
