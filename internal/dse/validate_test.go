package dse

import (
	"strings"
	"testing"
)

// validateSpace is a tiny space shared by the config-validation tests.
func validateSpace() *Space {
	return &Space{Params: []Parameter{
		{Name: "a", Values: []float64{0, 1, 2}},
		{Name: "b", Values: []float64{0, 1}},
	}}
}

// sumEval is a trivial always-feasible evaluator.
type sumEval struct{}

func (sumEval) NumObjectives() int { return 2 }
func (sumEval) Evaluate(c Config) (Objectives, error) {
	return Objectives{float64(c[0]), float64(c[1])}, nil
}

func TestNSGA2ConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  NSGA2Config
		want string
	}{
		{"negative population", NSGA2Config{PopulationSize: -8}, "population size"},
		{"negative generations", NSGA2Config{Generations: -1}, "generation count"},
		{"odd population", NSGA2Config{PopulationSize: 7}, "even"},
		{"tiny population", NSGA2Config{PopulationSize: 2}, "≥ 4"},
		{"crossover above 1", NSGA2Config{CrossoverProb: 1.5}, "crossover probability"},
		{"negative crossover", NSGA2Config{CrossoverProb: -0.1}, "crossover probability"},
		{"mutation above 1", NSGA2Config{MutationProb: 2}, "mutation probability"},
		{"negative mutation", NSGA2Config{MutationProb: -0.5}, "mutation probability"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NSGA2(validateSpace(), sumEval{}, tc.cfg)
			if err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Zero values still select the documented defaults.
	if _, err := NSGA2(validateSpace(), sumEval{}, NSGA2Config{Generations: 1, PopulationSize: 4}); err != nil {
		t.Errorf("minimal valid config rejected: %v", err)
	}
}

func TestMOSAConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  MOSAConfig
		want string
	}{
		{"negative iterations", MOSAConfig{Iterations: -5}, "iteration budget"},
		{"negative restarts", MOSAConfig{Restarts: -2}, "restart count"},
		{"negative temperature", MOSAConfig{InitialTemp: -1}, "initial temperature"},
		{"cooling at 1", MOSAConfig{Cooling: 1}, "cooling factor"},
		{"cooling negative", MOSAConfig{Cooling: -0.5}, "cooling factor"},
		{"budget below chains", MOSAConfig{Iterations: 3, Restarts: 8}, "zero length"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := MOSA(validateSpace(), sumEval{}, tc.cfg)
			if err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := MOSA(validateSpace(), sumEval{}, MOSAConfig{Iterations: 8, Restarts: 2}); err != nil {
		t.Errorf("minimal valid config rejected: %v", err)
	}
}

// TestSeedsAllValid documents that any seed (including negative ones) is a
// valid deterministic run, not a degenerate configuration.
func TestSeedsAllValid(t *testing.T) {
	for _, seed := range []int64{-9e18, -1, 0, 1, 9e18} {
		if _, err := NSGA2(validateSpace(), sumEval{}, NSGA2Config{
			PopulationSize: 4, Generations: 1, Seed: seed,
		}); err != nil {
			t.Errorf("NSGA2 rejected seed %d: %v", seed, err)
		}
		if _, err := MOSA(validateSpace(), sumEval{}, MOSAConfig{
			Iterations: 4, Restarts: 2, Seed: seed,
		}); err != nil {
			t.Errorf("MOSA rejected seed %d: %v", seed, err)
		}
	}
}
