package dwt

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"wsndse/internal/bitpack"
)

// Codec compresses fixed-size sample blocks by multi-level DWT followed by
// retention of the largest-magnitude coefficients (Benzid-style fixed
// percentage thresholding [23]). The encoded block is real bytes — header,
// significance bitmap, and 12-bit quantized coefficients — so the achieved
// compression ratio is measured on the wire.
type Codec struct {
	Wavelet   Wavelet
	Levels    int
	CoeffBits int // quantizer resolution for kept coefficients; 12 matches the ADC
}

// NewCodec returns a codec with the given wavelet and decomposition depth.
// CoeffBits defaults to 12.
func NewCodec(w Wavelet, levels int) *Codec {
	return &Codec{Wavelet: w, Levels: levels, CoeffBits: 12}
}

// Encoded block layout (all multi-byte fields little-endian):
//
//	offset size  field
//	0      2     n, block length in samples
//	2      1     levels
//	3      1     wavelet id
//	4      2     kept coefficient count K
//	6      4     quantizer scale (float32)
//	10     ⌈n/8⌉ significance bitmap (bit i set ⇔ coefficient i kept)
//	…      ⌈K·CoeffBits/8⌉ quantized kept coefficients in index order
const headerSize = 10

// Block is one compressed block together with bookkeeping used by the
// experiments.
type Block struct {
	Payload []byte // full encoded block, ready for packetization
	Kept    int    // number of retained coefficients
	N       int    // original sample count
}

// Size returns the encoded size in bytes — the φ_out contribution of this
// block.
func (b *Block) Size() int { return len(b.Payload) }

// MinCR returns the smallest compression ratio representable for a block
// of n samples with sampleBits-bit input samples: the encoding must carry
// at least the header, the bitmap and one coefficient.
func (c *Codec) MinCR(n int, sampleBits int) float64 {
	inBytes := float64(n) * float64(sampleBits) / 8
	minBytes := float64(headerSize) + math.Ceil(float64(n)/8) + math.Ceil(float64(c.CoeffBits)/8)
	return minBytes / inBytes
}

// Compress encodes a block targeting compression ratio cr = output bytes /
// input bytes, with input accounted at sampleBits per sample (12 for the
// case-study ADC). The budget is met from below: the encoded size never
// exceeds cr·n·sampleBits/8 bytes.
func (c *Codec) Compress(block []float64, cr float64, sampleBits int) (*Block, error) {
	n := len(block)
	if c.CoeffBits < 2 || c.CoeffBits > 16 {
		return nil, fmt.Errorf("dwt: CoeffBits %d out of range [2,16]", c.CoeffBits)
	}
	if cr <= 0 || cr > 1 {
		return nil, fmt.Errorf("dwt: compression ratio %g out of range (0,1]", cr)
	}
	if sampleBits < 1 {
		return nil, fmt.Errorf("dwt: sampleBits %d must be positive", sampleBits)
	}
	if n > math.MaxUint16 {
		return nil, fmt.Errorf("dwt: block length %d exceeds encoding limit %d", n, math.MaxUint16)
	}
	coeffs, err := Forward(c.Wavelet, block, c.Levels)
	if err != nil {
		return nil, err
	}

	bitmapBytes := (n + 7) / 8
	budget := int(math.Floor(cr * float64(n) * float64(sampleBits) / 8))
	avail := budget - headerSize - bitmapBytes
	k := avail * 8 / c.CoeffBits
	if k < 1 {
		return nil, fmt.Errorf("dwt: cr %.3f leaves no coefficient budget for n=%d (need ≥ %.3f)",
			cr, n, c.MinCR(n, sampleBits))
	}
	if k > n {
		k = n
	}

	// Pick the k largest-magnitude coefficients.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(coeffs[idx[a]]) > math.Abs(coeffs[idx[b]])
	})
	keep := idx[:k]
	sort.Ints(keep)

	// Symmetric uniform quantizer over the kept coefficients.
	var scale float64
	for _, i := range keep {
		if v := math.Abs(coeffs[i]); v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1 // all-zero block; quantized values are all zero anyway
	}
	qmax := float64(int(1)<<(c.CoeffBits-1)) - 1

	payload := make([]byte, headerSize+bitmapBytes+(k*c.CoeffBits+7)/8)
	binary.LittleEndian.PutUint16(payload[0:], uint16(n))
	payload[2] = byte(c.Levels)
	payload[3] = c.Wavelet.id()
	binary.LittleEndian.PutUint16(payload[4:], uint16(k))
	binary.LittleEndian.PutUint32(payload[6:], math.Float32bits(float32(scale)))
	bitmap := payload[headerSize : headerSize+bitmapBytes]
	for _, i := range keep {
		bitmap[i/8] |= 1 << (i % 8)
	}
	bw := bitpack.Writer{Buf: payload[headerSize+bitmapBytes:]}
	for _, i := range keep {
		q := int(math.Round(coeffs[i] / scale * qmax))
		if q > int(qmax) {
			q = int(qmax)
		}
		if q < -int(qmax) {
			q = -int(qmax)
		}
		bw.Write(uint32(q&(1<<c.CoeffBits-1)), c.CoeffBits)
	}
	return &Block{Payload: payload, Kept: k, N: n}, nil
}

// Decompress decodes a payload produced by Compress and reconstructs the
// signal by inverse DWT with the discarded coefficients at zero.
func Decompress(payload []byte) ([]float64, error) {
	if len(payload) < headerSize {
		return nil, fmt.Errorf("dwt: payload too short (%d bytes)", len(payload))
	}
	n := int(binary.LittleEndian.Uint16(payload[0:]))
	levels := int(payload[2])
	w, err := waveletByID(payload[3])
	if err != nil {
		return nil, err
	}
	k := int(binary.LittleEndian.Uint16(payload[4:]))
	scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[6:])))
	bitmapBytes := (n + 7) / 8
	coeffBits, err := inferCoeffBits(len(payload), n, k, bitmapBytes)
	if err != nil {
		return nil, err
	}
	qmax := float64(int(1)<<(coeffBits-1)) - 1

	coeffs := make([]float64, n)
	bitmap := payload[headerSize : headerSize+bitmapBytes]
	br := bitpack.Reader{Buf: payload[headerSize+bitmapBytes:]}
	found := 0
	for i := 0; i < n; i++ {
		if bitmap[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		raw, err := br.Read(coeffBits)
		if err != nil {
			return nil, err
		}
		coeffs[i] = float64(bitpack.SignExtend(raw, coeffBits)) / qmax * scale
		found++
	}
	if found != k {
		return nil, fmt.Errorf("dwt: bitmap population %d disagrees with header count %d", found, k)
	}
	return Inverse(w, coeffs, levels)
}

// inferCoeffBits recovers the quantizer width from the payload size. The
// encoding does not store it explicitly (the paper's firmware fixes it at
// compile time); the decoder accepts any width whose packed size matches.
func inferCoeffBits(total, n, k, bitmapBytes int) (int, error) {
	data := total - headerSize - bitmapBytes
	if data < 0 {
		return 0, fmt.Errorf("dwt: truncated payload (%d bytes for n=%d)", total, n)
	}
	if k == 0 {
		return 12, nil
	}
	for bits := 2; bits <= 16; bits++ {
		if (k*bits+7)/8 == data {
			return bits, nil
		}
	}
	return 0, fmt.Errorf("dwt: cannot infer coefficient width from %d data bytes for %d coefficients", data, k)
}
