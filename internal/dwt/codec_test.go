package dwt

import (
	"math"
	"testing"

	"wsndse/internal/ecg"
	"wsndse/internal/quality"
)

func ecgBlock(t *testing.T, n int) []float64 {
	t.Helper()
	g, err := ecg.NewGenerator(ecg.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g.Generate(n)
}

func TestCompressRespectsBudget(t *testing.T) {
	block := ecgBlock(t, 512)
	c := NewCodec(Daubechies4(), 5)
	for _, cr := range []float64{0.17, 0.2, 0.23, 0.26, 0.29, 0.32, 0.35, 0.38, 1.0} {
		z, err := c.Compress(block, cr, 12)
		if err != nil {
			t.Fatalf("cr=%g: %v", cr, err)
		}
		budget := cr * 512 * 12 / 8
		if float64(z.Size()) > budget {
			t.Errorf("cr=%g: encoded %d bytes exceeds budget %.1f", cr, z.Size(), budget)
		}
		// The encoder should use most of the budget (within one
		// coefficient's worth of slack).
		if float64(z.Size()) < budget-3 {
			t.Errorf("cr=%g: encoded %d bytes, budget %.1f left unused", cr, z.Size(), budget)
		}
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	block := ecgBlock(t, 512)
	c := NewCodec(Daubechies4(), 5)
	z, err := c.Compress(block, 0.38, 12)
	if err != nil {
		t.Fatal(err)
	}
	y, err := Decompress(z.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != len(block) {
		t.Fatalf("reconstructed %d samples, want %d", len(y), len(block))
	}
	prd, err := quality.PRD(block, y)
	if err != nil {
		t.Fatal(err)
	}
	if prd > 20 {
		t.Errorf("PRD at CR=0.38 is %.2f%%, want decent reconstruction (<20%%)", prd)
	}
}

func TestPRDMonotoneInCR(t *testing.T) {
	// More budget (higher CR) must not noticeably worsen reconstruction.
	block := ecgBlock(t, 512)
	c := NewCodec(Daubechies4(), 5)
	var prev float64 = math.Inf(1)
	for _, cr := range []float64{0.17, 0.23, 0.29, 0.35} {
		z, err := c.Compress(block, cr, 12)
		if err != nil {
			t.Fatal(err)
		}
		y, err := Decompress(z.Payload)
		if err != nil {
			t.Fatal(err)
		}
		prd, _ := quality.PRD(block, y)
		if prd > prev*1.05 { // small tolerance for quantizer interactions
			t.Errorf("PRD at CR=%g is %.2f%%, worse than at lower CR (%.2f%%)", cr, prd, prev)
		}
		prev = prd
	}
}

func TestCompressAllZeroBlock(t *testing.T) {
	c := NewCodec(Haar(), 3)
	z, err := c.Compress(make([]float64, 64), 0.5, 12)
	if err != nil {
		t.Fatal(err)
	}
	y, err := Decompress(z.Payload)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("sample %d = %g, want 0", i, v)
		}
	}
}

func TestCompressParameterErrors(t *testing.T) {
	block := ecgBlock(t, 512)
	c := NewCodec(Daubechies4(), 5)
	if _, err := c.Compress(block, 0, 12); err == nil {
		t.Error("cr=0: want error")
	}
	if _, err := c.Compress(block, 1.5, 12); err == nil {
		t.Error("cr>1: want error")
	}
	if _, err := c.Compress(block, 0.5, 0); err == nil {
		t.Error("sampleBits=0: want error")
	}
	if _, err := c.Compress(block, 0.02, 12); err == nil {
		t.Error("cr below bitmap floor: want error")
	}
	bad := NewCodec(Daubechies4(), 5)
	bad.CoeffBits = 1
	if _, err := bad.Compress(block, 0.5, 12); err == nil {
		t.Error("CoeffBits=1: want error")
	}
	huge := make([]float64, 1<<17)
	if _, err := c.Compress(huge, 0.5, 12); err == nil {
		t.Error("oversized block: want encoding-limit error")
	}
}

func TestMinCR(t *testing.T) {
	c := NewCodec(Daubechies4(), 5)
	min := c.MinCR(512, 12)
	block := ecgBlock(t, 512)
	if _, err := c.Compress(block, min, 12); err != nil {
		t.Errorf("compress at MinCR=%.4f should succeed: %v", min, err)
	}
	if _, err := c.Compress(block, min*0.8, 12); err == nil {
		t.Error("compress below MinCR should fail")
	}
}

func TestDecompressMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 4),                 // short header
		{0, 2, 1, 42, 0, 0, 0, 0, 0, 0}, // unknown wavelet id
	}
	for i, p := range cases {
		if _, err := Decompress(p); err == nil {
			t.Errorf("case %d: malformed payload accepted", i)
		}
	}
	// Corrupt a valid payload's bitmap so the population count disagrees
	// with the header.
	c := NewCodec(Haar(), 3)
	z, err := c.Compress(ecgBlock(t, 64), 0.6, 12)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), z.Payload...)
	corrupt[headerSize] ^= 0xFF
	if _, err := Decompress(corrupt); err == nil {
		t.Error("corrupted bitmap accepted")
	}
}

func TestKeptCountScalesWithCR(t *testing.T) {
	block := ecgBlock(t, 512)
	c := NewCodec(Daubechies4(), 5)
	lo, err := c.Compress(block, 0.17, 12)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := c.Compress(block, 0.38, 12)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Kept >= hi.Kept {
		t.Errorf("kept %d at CR=0.17 vs %d at CR=0.38; want strictly more at higher CR", lo.Kept, hi.Kept)
	}
	if lo.N != 512 || hi.N != 512 {
		t.Error("N not recorded")
	}
}
