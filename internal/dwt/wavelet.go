// Package dwt implements the one-dimensional discrete wavelet transform and
// the threshold-based ECG compressor used by half of the case-study nodes.
//
// The paper's DWT application follows Benzid et al. [23]: transform a block,
// zero a fixed percentage of the smallest coefficients, and transmit the
// survivors. This package implements that pipeline end to end, including a
// realistic byte-level encoding (significance bitmap plus quantized
// coefficients), so the compression ratio measured on the wire matches the
// CR knob of the design space and the reconstruction error is a real
// reconstruction error rather than a synthetic proxy.
package dwt

import (
	"fmt"
	"math"
)

// Wavelet is an orthonormal two-channel filter bank. h is the scaling
// (low-pass) decomposition filter and g the wavelet (high-pass) filter
// derived from it by the quadrature-mirror relation g[k] = (−1)^k·h[L−1−k].
type Wavelet struct {
	name string
	h, g []float64
}

// Name returns the wavelet's identifier ("haar" or "db4").
func (w Wavelet) Name() string { return w.name }

// id is the serialized codec identifier for the wavelet.
func (w Wavelet) id() byte {
	switch w.name {
	case "haar":
		return 0
	case "db4":
		return 1
	default:
		return 255
	}
}

func waveletByID(id byte) (Wavelet, error) {
	switch id {
	case 0:
		return Haar(), nil
	case 1:
		return Daubechies4(), nil
	default:
		return Wavelet{}, fmt.Errorf("dwt: unknown wavelet id %d", id)
	}
}

// Haar returns the 2-tap Haar wavelet.
func Haar() Wavelet {
	s := math.Sqrt2 / 2
	return Wavelet{
		name: "haar",
		h:    []float64{s, s},
		g:    []float64{s, -s},
	}
}

// Daubechies4 returns the 4-tap Daubechies wavelet with two vanishing
// moments, the usual choice for ECG compression because QRS complexes are
// captured by few coefficients.
func Daubechies4() Wavelet {
	var (
		s3 = math.Sqrt(3)
		d  = 4 * math.Sqrt2
	)
	h := []float64{(1 + s3) / d, (3 + s3) / d, (3 - s3) / d, (1 - s3) / d}
	g := []float64{h[3], -h[2], h[1], -h[0]}
	return Wavelet{name: "db4", h: h, g: g}
}

// MaxLevels returns the deepest decomposition applicable to a block of n
// samples: each level halves the approximation band, and the approximation
// must stay at least as long as the filter.
func (w Wavelet) MaxLevels(n int) int {
	levels := 0
	for n >= 2*len(w.h) && n%2 == 0 {
		n /= 2
		levels++
	}
	return levels
}

// forwardStep computes one analysis level with periodic extension:
// approx[k] = Σ_m h[m]·x[(2k+m) mod n], detail likewise with g.
func (w Wavelet) forwardStep(x, approx, detail []float64) {
	n := len(x)
	half := n / 2
	for k := 0; k < half; k++ {
		var a, d float64
		base := 2 * k
		for m := range w.h {
			v := x[(base+m)%n]
			a += w.h[m] * v
			d += w.g[m] * v
		}
		approx[k] = a
		detail[k] = d
	}
}

// inverseStep computes one synthesis level, the transpose of forwardStep
// (exact inverse for orthonormal filters with periodic extension).
func (w Wavelet) inverseStep(approx, detail, x []float64) {
	n := len(x)
	for i := range x {
		x[i] = 0
	}
	for k := 0; k < n/2; k++ {
		a, d := approx[k], detail[k]
		base := 2 * k
		for m := range w.h {
			x[(base+m)%n] += w.h[m]*a + w.g[m]*d
		}
	}
}

// Forward computes the multi-level DWT of x. The result packs the deepest
// approximation first, followed by detail bands from coarsest to finest:
// [a_L | d_L | d_{L−1} | … | d_1]. The input must have length divisible by
// 2^levels and the deepest approximation must remain at least as long as
// the filter. x is not modified.
func Forward(w Wavelet, x []float64, levels int) ([]float64, error) {
	n := len(x)
	if err := checkShape(w, n, levels); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	cur := make([]float64, n)
	copy(cur, x)
	// Details are written back-to-front: finest band occupies the last
	// n/2 slots, the next n/4, and so on.
	end := n
	for lvl := 0; lvl < levels; lvl++ {
		m := len(cur)
		approx := make([]float64, m/2)
		detail := out[end-m/2 : end]
		w.forwardStep(cur, approx, detail)
		end -= m / 2
		cur = approx
	}
	copy(out[:len(cur)], cur)
	return out, nil
}

// Inverse reconstructs a signal from multi-level DWT coefficients produced
// by Forward with the same wavelet and level count.
func Inverse(w Wavelet, coeffs []float64, levels int) ([]float64, error) {
	n := len(coeffs)
	if err := checkShape(w, n, levels); err != nil {
		return nil, err
	}
	alen := n >> levels
	cur := make([]float64, alen)
	copy(cur, coeffs[:alen])
	pos := alen
	for lvl := levels; lvl >= 1; lvl-- {
		detail := coeffs[pos : pos+len(cur)]
		next := make([]float64, 2*len(cur))
		w.inverseStep(cur, detail, next)
		pos += len(detail)
		cur = next
	}
	return cur, nil
}

func checkShape(w Wavelet, n, levels int) error {
	if levels < 1 {
		return fmt.Errorf("dwt: levels %d must be ≥ 1", levels)
	}
	if n == 0 {
		return fmt.Errorf("dwt: empty block")
	}
	if n%(1<<levels) != 0 {
		return fmt.Errorf("dwt: block length %d not divisible by 2^%d", n, levels)
	}
	if n>>levels < len(w.h) {
		return fmt.Errorf("dwt: %d levels leave a %d-sample approximation, shorter than the %d-tap %s filter",
			levels, n>>levels, len(w.h), w.name)
	}
	return nil
}

// BandBounds returns the [start, end) index range of each band in the
// packed coefficient layout: element 0 is the deepest approximation, then
// details from coarsest to finest. Useful for band-wise analyses and tests.
func BandBounds(n, levels int) [][2]int {
	bounds := make([][2]int, 0, levels+1)
	alen := n >> levels
	bounds = append(bounds, [2]int{0, alen})
	pos := alen
	for lvl := levels; lvl >= 1; lvl-- {
		blen := n >> lvl
		bounds = append(bounds, [2]int{pos, pos + blen})
		pos += blen
	}
	return bounds
}
