package dwt

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWaveletFiltersOrthonormal(t *testing.T) {
	for _, w := range []Wavelet{Haar(), Daubechies4()} {
		var hh, gg, hg float64
		for i := range w.h {
			hh += w.h[i] * w.h[i]
			gg += w.g[i] * w.g[i]
			hg += w.h[i] * w.g[i]
		}
		if math.Abs(hh-1) > 1e-12 || math.Abs(gg-1) > 1e-12 {
			t.Errorf("%s: filter norms h=%g g=%g, want 1", w.Name(), hh, gg)
		}
		if math.Abs(hg) > 1e-12 {
			t.Errorf("%s: h·g = %g, want 0", w.Name(), hg)
		}
		// The scaling filter must sum to √2 (preserves DC).
		var sum float64
		for _, v := range w.h {
			sum += v
		}
		if math.Abs(sum-math.Sqrt2) > 1e-12 {
			t.Errorf("%s: Σh = %g, want √2", w.Name(), sum)
		}
	}
}

func TestForwardInversePerfectReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, w := range []Wavelet{Haar(), Daubechies4()} {
		for _, n := range []int{8, 16, 64, 512} {
			for levels := 1; levels <= w.MaxLevels(n); levels++ {
				x := make([]float64, n)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				c, err := Forward(w, x, levels)
				if err != nil {
					t.Fatalf("%s n=%d L=%d: Forward: %v", w.Name(), n, levels, err)
				}
				y, err := Inverse(w, c, levels)
				if err != nil {
					t.Fatalf("%s n=%d L=%d: Inverse: %v", w.Name(), n, levels, err)
				}
				for i := range x {
					if math.Abs(x[i]-y[i]) > 1e-10 {
						t.Fatalf("%s n=%d L=%d: sample %d: %g vs %g",
							w.Name(), n, levels, i, x[i], y[i])
					}
				}
			}
		}
	}
}

// Property-based variant: random signals of random dyadic-compatible sizes
// reconstruct exactly, and the transform preserves energy (Parseval).
func TestTransformProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := Daubechies4()
		if seed%2 == 0 {
			w = Haar()
		}
		n := 1 << (3 + rng.Intn(6)) // 8..256
		levels := 1 + rng.Intn(w.MaxLevels(n))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		c, err := Forward(w, x, levels)
		if err != nil {
			return false
		}
		// Parseval: orthonormal transform preserves the 2-norm.
		var ex, ec float64
		for i := range x {
			ex += x[i] * x[i]
			ec += c[i] * c[i]
		}
		if math.Abs(ex-ec) > 1e-8*math.Max(1, ex) {
			return false
		}
		y, err := Inverse(w, c, levels)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestForwardConstantSignal(t *testing.T) {
	// A constant signal concentrates all energy in the deepest
	// approximation band; every detail coefficient is (numerically) zero.
	w := Daubechies4()
	n, levels := 64, 3
	x := make([]float64, n)
	for i := range x {
		x[i] = 2.5
	}
	c, err := Forward(w, x, levels)
	if err != nil {
		t.Fatal(err)
	}
	bounds := BandBounds(n, levels)
	for _, b := range bounds[1:] { // all detail bands
		for i := b[0]; i < b[1]; i++ {
			if math.Abs(c[i]) > 1e-10 {
				t.Fatalf("detail coefficient %d = %g, want ~0", i, c[i])
			}
		}
	}
	// Approximation carries the full energy n·2.5².
	var e float64
	for i := bounds[0][0]; i < bounds[0][1]; i++ {
		e += c[i] * c[i]
	}
	if math.Abs(e-float64(n)*2.5*2.5) > 1e-8 {
		t.Errorf("approximation energy %g, want %g", e, float64(n)*2.5*2.5)
	}
}

func TestShapeErrors(t *testing.T) {
	w := Haar()
	if _, err := Forward(w, make([]float64, 12), 3); err == nil {
		t.Error("n=12, L=3: want divisibility error")
	}
	if _, err := Forward(w, make([]float64, 16), 0); err == nil {
		t.Error("L=0: want error")
	}
	if _, err := Forward(w, nil, 1); err == nil {
		t.Error("empty block: want error")
	}
	if _, err := Inverse(w, make([]float64, 12), 3); err == nil {
		t.Error("Inverse n=12, L=3: want error")
	}
	// Too-deep decomposition for db4: 8 samples at 3 levels leaves a
	// 1-sample approximation, shorter than the 4-tap filter.
	if _, err := Forward(Daubechies4(), make([]float64, 8), 3); err == nil {
		t.Error("too-deep db4 decomposition: want error")
	}
}

func TestMaxLevels(t *testing.T) {
	if got := Haar().MaxLevels(8); got != 2 {
		t.Errorf("haar MaxLevels(8) = %d, want 2", got)
	}
	if got := Daubechies4().MaxLevels(512); got != 7 {
		t.Errorf("db4 MaxLevels(512) = %d, want 7", got)
	}
	if got := Daubechies4().MaxLevels(4); got != 0 {
		t.Errorf("db4 MaxLevels(4) = %d, want 0", got)
	}
}

func TestBandBoundsPartitions(t *testing.T) {
	n, levels := 64, 3
	bounds := BandBounds(n, levels)
	if len(bounds) != levels+1 {
		t.Fatalf("got %d bands, want %d", len(bounds), levels+1)
	}
	pos := 0
	for _, b := range bounds {
		if b[0] != pos {
			t.Errorf("band start %d, want %d", b[0], pos)
		}
		pos = b[1]
	}
	if pos != n {
		t.Errorf("bands end at %d, want %d", pos, n)
	}
	if bounds[0][1] != n>>levels {
		t.Errorf("approx band length %d, want %d", bounds[0][1], n>>levels)
	}
}

func TestWaveletByID(t *testing.T) {
	for _, w := range []Wavelet{Haar(), Daubechies4()} {
		got, err := waveletByID(w.id())
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != w.Name() {
			t.Errorf("round trip %s → %s", w.Name(), got.Name())
		}
	}
	if _, err := waveletByID(42); err == nil {
		t.Error("unknown id: want error")
	}
}
