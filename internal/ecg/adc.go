package ecg

import (
	"fmt"

	"wsndse/internal/numeric"
)

// ADC models the analog-to-digital conversion stage of the sensing chain.
// The case study fixes a 12-bit converter (L_ADC = 12 bits, §4.3); full
// scale is expressed in millivolts to match the generator output.
type ADC struct {
	Bits int     // resolution; the Shimmer front end uses 12
	Min  float64 // full-scale minimum, millivolts
	Max  float64 // full-scale maximum, millivolts
}

// DefaultADC is the converter used by the case study: 12 bits over a
// ±2.5 mV ECG front-end range.
func DefaultADC() ADC { return ADC{Bits: 12, Min: -2.5, Max: 2.5} }

// Levels returns the number of quantization levels (2^Bits).
func (a ADC) Levels() int { return 1 << a.Bits }

// SampleBytes returns the storage size of one sample in bytes, possibly
// fractional (12 bits = 1.5 bytes). This is the L_adc factor in the input
// stream φ_in = f_s · L_adc of §3.3.
func (a ADC) SampleBytes() float64 { return float64(a.Bits) / 8 }

// Quantize converts analog samples (millivolts) to integer codes in
// [0, Levels). Values outside full scale saturate.
func (a ADC) Quantize(samples []float64) []int {
	codes := make([]int, len(samples))
	span := a.Max - a.Min
	levels := float64(a.Levels())
	for i, s := range samples {
		c := int((s - a.Min) / span * levels)
		if c < 0 {
			c = 0
		}
		if c >= a.Levels() {
			c = a.Levels() - 1
		}
		codes[i] = c
	}
	return codes
}

// Dequantize converts integer codes back to millivolts (mid-rise
// reconstruction at the code centers).
func (a ADC) Dequantize(codes []int) []float64 {
	out := make([]float64, len(codes))
	span := a.Max - a.Min
	levels := float64(a.Levels())
	for i, c := range codes {
		out[i] = a.Min + (float64(c)+0.5)/levels*span
	}
	return out
}

// Digitize is the common Quantize→Dequantize round trip: it returns the
// signal as the digital system sees it, with quantization error applied.
func (a ADC) Digitize(samples []float64) []float64 {
	return a.Dequantize(a.Quantize(samples))
}

// Validate reports whether the ADC parameters are usable.
func (a ADC) Validate() error {
	if a.Bits < 1 || a.Bits > 24 {
		return fmt.Errorf("ecg: ADC bits %d out of range [1,24]", a.Bits)
	}
	if a.Max <= a.Min {
		return fmt.Errorf("ecg: ADC full scale [%g,%g] is empty", a.Min, a.Max)
	}
	return nil
}

// InputRate returns φ_in in bytes per second for a sampling frequency fs:
// φ_in = f_s · L_adc (§3.3). With the case-study defaults, 250 Hz × 1.5 B
// = 375 B/s, matching the paper.
func (a ADC) InputRate(fs float64) float64 { return fs * a.SampleBytes() }

// QuantizationRMS estimates the RMS quantization error in millivolts for a
// signal spanning the given range, useful in tests.
func (a ADC) QuantizationRMS() float64 {
	step := (a.Max - a.Min) / float64(a.Levels())
	return step / numeric.Sqrt12
}
