package ecg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestADCDefaults(t *testing.T) {
	a := DefaultADC()
	if err := a.Validate(); err != nil {
		t.Fatalf("default ADC invalid: %v", err)
	}
	if a.Levels() != 4096 {
		t.Errorf("Levels = %d, want 4096", a.Levels())
	}
	if a.SampleBytes() != 1.5 {
		t.Errorf("SampleBytes = %g, want 1.5", a.SampleBytes())
	}
	// The paper's φ_in: 250 Hz × 1.5 B = 375 B/s.
	if got := a.InputRate(250); got != 375 {
		t.Errorf("InputRate(250) = %g, want 375", got)
	}
}

func TestADCValidate(t *testing.T) {
	bad := []ADC{
		{Bits: 0, Min: 0, Max: 1},
		{Bits: 30, Min: 0, Max: 1},
		{Bits: 12, Min: 1, Max: 1},
		{Bits: 12, Min: 2, Max: 1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: ADC %+v should be invalid", i, a)
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	a := DefaultADC()
	codes := a.Quantize([]float64{-10, 10})
	if codes[0] != 0 {
		t.Errorf("underflow code = %d, want 0", codes[0])
	}
	if codes[1] != a.Levels()-1 {
		t.Errorf("overflow code = %d, want %d", codes[1], a.Levels()-1)
	}
}

func TestQuantizeRoundTripError(t *testing.T) {
	a := DefaultADC()
	step := (a.Max - a.Min) / float64(a.Levels())
	f := func(mv float64) bool {
		// Constrain to full scale minus one step of headroom.
		x := math.Mod(math.Abs(mv), a.Max-a.Min-2*step) + a.Min + step
		y := a.Digitize([]float64{x})[0]
		return math.Abs(y-x) <= step // mid-rise error ≤ one step
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizationRMS(t *testing.T) {
	a := DefaultADC()
	want := (a.Max - a.Min) / 4096 / math.Sqrt(12)
	if got := a.QuantizationRMS(); math.Abs(got-want) > 1e-15 {
		t.Errorf("QuantizationRMS = %g, want %g", got, want)
	}
}

func TestDigitizePreservesECGShape(t *testing.T) {
	g, _ := NewGenerator(DefaultConfig())
	x := g.Generate(512)
	a := DefaultADC()
	y := a.Digitize(x)
	if len(y) != len(x) {
		t.Fatalf("Digitize changed length %d → %d", len(x), len(y))
	}
	var maxErr float64
	for i := range x {
		if e := math.Abs(y[i] - x[i]); e > maxErr {
			maxErr = e
		}
	}
	step := (a.Max - a.Min) / float64(a.Levels())
	if maxErr > step {
		t.Errorf("max quantization error %g exceeds one step %g", maxErr, step)
	}
}
