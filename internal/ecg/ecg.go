// Package ecg synthesizes electrocardiogram signals for exercising the
// compression applications of the case study.
//
// The paper's reference data comes from real ECG recordings compressed on
// the Shimmer platform. Real recordings are not available here, so this
// package provides the closest synthetic equivalent: a sum-of-Gaussians
// PQRST beat model (the morphology used by the well-known ECGSYN generator
// of McSharry et al.) with RR-interval variability, per-beat amplitude
// jitter, baseline wander and measurement noise. The output has the
// structural properties that matter for wavelet and compressed-sensing
// codecs: a quasi-periodic signal with sharp QRS complexes and smooth P/T
// waves, sparse in a wavelet basis.
package ecg

import (
	"fmt"
	"math"
	"math/rand"
)

// Wave describes one Gaussian component of the beat morphology.
// Center is the position of the wave within the beat as a fraction of the
// RR interval (0 = R peak of previous beat reference frame; see Generate),
// Width is the Gaussian standard deviation in seconds, Amplitude is in
// millivolts.
type Wave struct {
	Name      string
	Center    float64 // fraction of the RR interval, R wave at 0.35
	Width     float64 // seconds
	Amplitude float64 // millivolts
}

// Config holds the generator parameters.
type Config struct {
	SampleRate   float64 // Hz; the case study uses 250 Hz
	HeartRate    float64 // mean heart rate in beats per minute
	RRStdDev     float64 // standard deviation of the RR interval in seconds
	AmpJitter    float64 // relative per-beat amplitude jitter (e.g. 0.03)
	NoiseStdDev  float64 // white measurement noise, millivolts
	BaselineAmp  float64 // baseline wander amplitude, millivolts
	BaselineFreq float64 // baseline wander frequency, Hz (respiration ~0.25)
	Waves        []Wave  // beat morphology; nil selects DefaultWaves
	Seed         int64   // RNG seed; generation is deterministic per seed
}

// DefaultWaves is a normal-sinus-rhythm PQRST morphology in millivolts.
// Positions are fractions of the beat period with the R peak at 0.35.
func DefaultWaves() []Wave {
	return []Wave{
		{Name: "P", Center: 0.18, Width: 0.025, Amplitude: 0.15},
		{Name: "Q", Center: 0.33, Width: 0.010, Amplitude: -0.12},
		{Name: "R", Center: 0.35, Width: 0.011, Amplitude: 1.05},
		{Name: "S", Center: 0.37, Width: 0.010, Amplitude: -0.25},
		{Name: "T", Center: 0.60, Width: 0.055, Amplitude: 0.32},
	}
}

// DefaultConfig returns the configuration used throughout the case study:
// 250 Hz sampling (the Shimmer ECG rate fixed in §4.3), 72 bpm with mild
// variability and realistic noise levels.
func DefaultConfig() Config {
	return Config{
		SampleRate:   250,
		HeartRate:    72,
		RRStdDev:     0.035,
		AmpJitter:    0.03,
		NoiseStdDev:  0.008,
		BaselineAmp:  0.06,
		BaselineFreq: 0.28,
		Seed:         1,
	}
}

// Generator produces synthetic ECG traces. It is not safe for concurrent
// use; create one generator per goroutine.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator validates cfg and returns a generator. Waves defaults to
// DefaultWaves when nil.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("ecg: sample rate %g Hz must be positive", cfg.SampleRate)
	}
	if cfg.HeartRate <= 0 {
		return nil, fmt.Errorf("ecg: heart rate %g bpm must be positive", cfg.HeartRate)
	}
	if cfg.RRStdDev < 0 || cfg.AmpJitter < 0 || cfg.NoiseStdDev < 0 || cfg.BaselineAmp < 0 {
		return nil, fmt.Errorf("ecg: dispersion parameters must be non-negative")
	}
	if cfg.Waves == nil {
		cfg.Waves = DefaultWaves()
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Generate returns n samples of synthetic ECG in millivolts.
func (g *Generator) Generate(n int) []float64 {
	if n <= 0 {
		return nil
	}
	cfg := g.cfg
	out := make([]float64, n)
	dt := 1 / cfg.SampleRate
	meanRR := 60 / cfg.HeartRate

	// Lay down beats one RR interval at a time until the trace is
	// covered, adding each beat's Gaussian bundle onto the samples it
	// overlaps. Two neighbouring beats both contribute near their
	// boundary, which keeps the waveform continuous.
	duration := float64(n) * dt
	beatStart := -meanRR // start one beat early so t=0 is mid-rhythm
	for beatStart < duration {
		rr := meanRR + g.rng.NormFloat64()*cfg.RRStdDev
		// Keep RR physiological: clamp to ±40 % of the mean.
		if rr < 0.6*meanRR {
			rr = 0.6 * meanRR
		}
		if rr > 1.4*meanRR {
			rr = 1.4 * meanRR
		}
		gain := 1 + g.rng.NormFloat64()*cfg.AmpJitter
		for _, w := range cfg.Waves {
			center := beatStart + w.Center*rr
			amp := w.Amplitude * gain
			// A Gaussian is negligible beyond 4σ; only touch
			// the samples in that window.
			lo := int(math.Floor((center - 4*w.Width) / dt))
			hi := int(math.Ceil((center + 4*w.Width) / dt))
			if lo < 0 {
				lo = 0
			}
			if hi >= n {
				hi = n - 1
			}
			for i := lo; i <= hi; i++ {
				t := float64(i) * dt
				d := (t - center) / w.Width
				out[i] += amp * math.Exp(-0.5*d*d)
			}
		}
		beatStart += rr
	}

	// Baseline wander and measurement noise.
	phase := g.rng.Float64() * 2 * math.Pi
	for i := range out {
		t := float64(i) * dt
		if cfg.BaselineAmp > 0 {
			out[i] += cfg.BaselineAmp * math.Sin(2*math.Pi*cfg.BaselineFreq*t+phase)
		}
		if cfg.NoiseStdDev > 0 {
			out[i] += g.rng.NormFloat64() * cfg.NoiseStdDev
		}
	}
	return out
}

// Corpus generates `blocks` consecutive blocks of blockLen samples each,
// returned as separate slices. It is the standard workload container used
// by the calibration and experiment code.
func (g *Generator) Corpus(blocks, blockLen int) [][]float64 {
	if blocks <= 0 || blockLen <= 0 {
		return nil
	}
	all := g.Generate(blocks * blockLen)
	out := make([][]float64, blocks)
	for i := range out {
		out[i] = all[i*blockLen : (i+1)*blockLen]
	}
	return out
}
