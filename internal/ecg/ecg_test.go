package ecg

import (
	"math"
	"testing"

	"wsndse/internal/numeric"
)

func TestNewGeneratorValidation(t *testing.T) {
	bad := []Config{
		{SampleRate: 0, HeartRate: 60},
		{SampleRate: 250, HeartRate: 0},
		{SampleRate: 250, HeartRate: 60, RRStdDev: -1},
		{SampleRate: 250, HeartRate: 60, NoiseStdDev: -0.1},
	}
	for i, cfg := range bad {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("case %d: want validation error for %+v", i, cfg)
		}
	}
	if _, err := NewGenerator(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, _ := NewGenerator(DefaultConfig())
	g2, _ := NewGenerator(DefaultConfig())
	a := g1.Generate(1000)
	b := g2.Generate(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %g vs %g", i, a[i], b[i])
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 99
	g3, _ := NewGenerator(cfg)
	c := g3.Generate(1000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	g, _ := NewGenerator(DefaultConfig())
	if got := g.Generate(0); got != nil {
		t.Errorf("Generate(0) = %v, want nil", got)
	}
	if got := g.Generate(-5); got != nil {
		t.Errorf("Generate(-5) = %v, want nil", got)
	}
	if got := g.Generate(1); len(got) != 1 {
		t.Errorf("Generate(1) len = %d", len(got))
	}
}

// TestGenerateMorphology checks the structural ECG properties the codecs
// rely on: R peaks of roughly 1 mV occurring at roughly the configured
// heart rate, and bounded overall amplitude.
func TestGenerateMorphology(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseStdDev = 0 // cleaner peak detection
	cfg.BaselineAmp = 0
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dur := 20.0 // seconds
	n := int(dur * cfg.SampleRate)
	x := g.Generate(n)

	min, max := numeric.MinMax(x)
	if max < 0.8 || max > 1.4 {
		t.Errorf("R peak amplitude %.3f mV, want ~1.05", max)
	}
	if min > -0.1 || min < -0.6 {
		t.Errorf("deepest trough %.3f mV, want S-wave depth around -0.25", min)
	}

	// Count R peaks: local maxima above 0.5 mV.
	peaks := 0
	for i := 1; i < n-1; i++ {
		if x[i] > 0.5 && x[i] >= x[i-1] && x[i] > x[i+1] {
			peaks++
		}
	}
	wantBeats := cfg.HeartRate / 60 * dur
	if math.Abs(float64(peaks)-wantBeats) > wantBeats*0.15 {
		t.Errorf("detected %d R peaks in %gs, want ≈%.0f", peaks, dur, wantBeats)
	}
}

func TestCorpus(t *testing.T) {
	g, _ := NewGenerator(DefaultConfig())
	blocks := g.Corpus(4, 512)
	if len(blocks) != 4 {
		t.Fatalf("Corpus returned %d blocks", len(blocks))
	}
	for i, b := range blocks {
		if len(b) != 512 {
			t.Errorf("block %d has %d samples", i, len(b))
		}
	}
	// Blocks must be consecutive segments of one trace: regenerating the
	// full trace with the same seed must match the concatenation.
	g2, _ := NewGenerator(DefaultConfig())
	full := g2.Generate(4 * 512)
	for i := 0; i < 4; i++ {
		for j := 0; j < 512; j++ {
			if blocks[i][j] != full[i*512+j] {
				t.Fatalf("block %d sample %d differs from contiguous trace", i, j)
			}
		}
	}
	if got := g.Corpus(0, 512); got != nil {
		t.Error("Corpus(0, …) should be nil")
	}
	if got := g.Corpus(2, 0); got != nil {
		t.Error("Corpus(…, 0) should be nil")
	}
}
