package experiments

import (
	"fmt"
	"math/rand"

	"wsndse/internal/casestudy"
	"wsndse/internal/dse"
	"wsndse/internal/numeric"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

// ThetaAblationConfig parameterizes the balance-weight ablation.
type ThetaAblationConfig struct {
	Cal            *casestudy.Calibration
	Thetas         []float64
	PopulationSize int
	Generations    int
	Seed           int64
	// Workers bounds the evaluation pool of the per-ϑ searches; <= 0
	// selects GOMAXPROCS. Fronts are identical at any worker count.
	Workers int
}

func (c ThetaAblationConfig) withDefaults() ThetaAblationConfig {
	if c.Cal == nil {
		c.Cal = casestudy.DefaultCalibration()
	}
	if c.Thetas == nil {
		c.Thetas = []float64{0, 0.5, 1.5}
	}
	if c.PopulationSize == 0 {
		c.PopulationSize = 48
	}
	if c.Generations == 0 {
		c.Generations = 25
	}
	if c.Seed == 0 {
		c.Seed = 23
	}
	return c
}

// ThetaAblationRow is one ϑ setting's outcome.
type ThetaAblationRow struct {
	Theta float64
	// MeanImbalance is the average, over the Pareto front, of the
	// per-configuration coefficient of variation of node energies
	// (stddev/mean). Eq. 8's dispersion term exists to push this down.
	MeanImbalance float64
	FrontSize     int
}

// ThetaAblationResult aggregates the sweep.
type ThetaAblationResult struct {
	Rows []ThetaAblationRow
}

// ThetaAblation checks the design rationale of Eq. 8: raising ϑ steers the
// DSE toward configurations whose nodes drain evenly. It runs the same
// NSGA-II budget at several ϑ and measures the energy imbalance of the
// resulting fronts.
func ThetaAblation(cfg ThetaAblationConfig) (*ThetaAblationResult, error) {
	cfg = cfg.withDefaults()
	res := &ThetaAblationResult{}
	for _, theta := range cfg.Thetas {
		problem := casestudy.NewProblem(cfg.Cal)
		problem.Theta = theta
		search, err := dse.NSGA2(problem.Space(), problem.Evaluator(), dse.NSGA2Config{
			PopulationSize: cfg.PopulationSize,
			Generations:    cfg.Generations,
			Seed:           cfg.Seed,
			Workers:        cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		var imbalances []float64
		for _, p := range search.Front {
			params, err := problem.Decode(p.Config)
			if err != nil {
				return nil, err
			}
			net, err := params.Network(cfg.Cal, theta)
			if err != nil {
				return nil, err
			}
			ev, err := net.Evaluate()
			if err != nil {
				continue
			}
			energies := make([]float64, len(ev.PerNode))
			for i, eb := range ev.PerNode {
				energies[i] = float64(eb.Total)
			}
			mean := numeric.Mean(energies)
			if mean > 0 {
				imbalances = append(imbalances, numeric.SampleStdDev(energies)/mean)
			}
		}
		res.Rows = append(res.Rows, ThetaAblationRow{
			Theta:         theta,
			MeanImbalance: numeric.Mean(imbalances),
			FrontSize:     len(search.Front),
		})
	}
	return res, nil
}

// Render writes the sweep.
func (r *ThetaAblationResult) Render(w writer) {
	fmt.Fprintf(w, "Ablation — balance weight ϑ of the Eq. 8 metrics\n")
	fmt.Fprintf(w, "%-6s %14s %10s\n", "ϑ", "imbalance", "front")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6.2f %13.2f%% %10d\n", row.Theta, row.MeanImbalance*100, row.FrontSize)
	}
	fmt.Fprintf(w, "(imbalance: mean stddev/mean of per-node energies across the front)\n")
}

// Check verifies the rationale: the highest-ϑ front is more balanced than
// the ϑ = 0 front.
func (r *ThetaAblationResult) Check() error {
	if len(r.Rows) < 2 {
		return fmt.Errorf("theta ablation: need at least two settings")
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.MeanImbalance >= first.MeanImbalance {
		return fmt.Errorf("theta ablation: imbalance did not drop (ϑ=%g: %.3f vs ϑ=%g: %.3f)",
			first.Theta, first.MeanImbalance, last.Theta, last.MeanImbalance)
	}
	return nil
}

// ArrivalAblationConfig parameterizes the Eq. 9 assumption ablation.
type ArrivalAblationConfig struct {
	Cal         *casestudy.Calibration
	Runs        int
	SimDuration units.Seconds
	Seed        int64
}

func (c ArrivalAblationConfig) withDefaults() ArrivalAblationConfig {
	if c.Cal == nil {
		c.Cal = casestudy.DefaultCalibration()
	}
	if c.Runs == 0 {
		c.Runs = 20
	}
	if c.SimDuration == 0 {
		c.SimDuration = 30
	}
	if c.Seed == 0 {
		c.Seed = 31
	}
	return c
}

// ArrivalAblationResult compares the delay bound's validity under the two
// traffic models.
type ArrivalAblationResult struct {
	RunsUsed int
	// Uniform arrivals: the regime where the paper formulates Eq. 9.
	UniformViolations int
	UniformMaxDelay   units.Seconds
	// Block arrivals: whole compressed blocks released at once.
	BlockViolations int
	BlockMaxDelay   units.Seconds
}

// ArrivalAblation demonstrates why the paper's delay model leans on the
// "uniform output rate" property of the compressors (§4.2): the identical
// bound that holds under uniform arrivals is violated when blocks arrive
// as bursts.
func ArrivalAblation(cfg ArrivalAblationConfig) (*ArrivalAblationResult, error) {
	cfg = cfg.withDefaults()
	problem := casestudy.NewProblem(cfg.Cal)
	eval := problem.Evaluator()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &ArrivalAblationResult{}

	for run := 0; run < cfg.Runs; run++ {
		var params casestudy.Params
		for {
			c := problem.Space().Random(rng)
			if _, err := eval.Evaluate(c); err != nil {
				continue
			}
			var err error
			params, err = problem.Decode(c)
			if err != nil {
				return nil, err
			}
			break
		}
		net, err := params.Network(cfg.Cal, 0)
		if err != nil {
			return nil, err
		}
		ev, err := net.Evaluate()
		if err != nil {
			return nil, err
		}
		for _, arrival := range []sim.ArrivalModel{sim.ArrivalUniform, sim.ArrivalBlock} {
			simCfg, err := params.SimConfig(cfg.Cal, cfg.SimDuration, cfg.Seed+int64(run))
			if err != nil {
				return nil, err
			}
			simCfg.Arrival = arrival
			simRes, err := runSim(simCfg)
			if err != nil {
				return nil, err
			}
			for i, n := range simRes.Nodes {
				if n.Delay.Count == 0 {
					continue
				}
				bound := units.Seconds(ev.PerNodeDelay[i])
				switch arrival {
				case sim.ArrivalUniform:
					if n.Delay.Max > bound {
						res.UniformViolations++
					}
					if n.Delay.Max > res.UniformMaxDelay {
						res.UniformMaxDelay = n.Delay.Max
					}
				case sim.ArrivalBlock:
					if n.Delay.Max > bound {
						res.BlockViolations++
					}
					if n.Delay.Max > res.BlockMaxDelay {
						res.BlockMaxDelay = n.Delay.Max
					}
				}
			}
		}
		res.RunsUsed++
	}
	return res, nil
}

// Render writes the comparison.
func (r *ArrivalAblationResult) Render(w writer) {
	fmt.Fprintf(w, "Ablation — the uniform-output-rate assumption behind Eq. 9\n")
	fmt.Fprintf(w, "configurations: %d\n", r.RunsUsed)
	fmt.Fprintf(w, "uniform arrivals: %d bound violations, worst delay %v\n",
		r.UniformViolations, r.UniformMaxDelay)
	fmt.Fprintf(w, "block arrivals:   %d bound violations, worst delay %v\n",
		r.BlockViolations, r.BlockMaxDelay)
	fmt.Fprintf(w, "(the bound presumes the compressors stream at a uniform rate; bursty\n")
	fmt.Fprintf(w, " block releases overflow per-superframe capacity and break it)\n")
}

// Check verifies the ablation's point: the bound holds under uniform
// arrivals and breaks under block arrivals.
func (r *ArrivalAblationResult) Check() error {
	if r.UniformViolations != 0 {
		return fmt.Errorf("arrival ablation: %d violations under uniform arrivals", r.UniformViolations)
	}
	if r.BlockViolations == 0 {
		return fmt.Errorf("arrival ablation: expected violations under block arrivals")
	}
	if r.BlockMaxDelay <= r.UniformMaxDelay {
		return fmt.Errorf("arrival ablation: block arrivals should worsen the worst delay")
	}
	return nil
}
