package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunJobsContextCancellation checks the partial-flush contract: jobs
// finished before cancellation keep their reports, jobs never started
// carry the context error, and nothing is silently dropped.
func TestRunJobsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	const n = 6
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Name: string(rune('a' + i)),
			Run: func(context.Context) (Report, error) {
				// The first job cancels the run; on one worker every later
				// job must then be skipped.
				if started.Add(1) == 1 {
					cancel()
				}
				return stubReport{id: i}, nil
			},
		}
	}
	outs := RunJobsContext(ctx, jobs, 1)
	if len(outs) != n {
		t.Fatalf("%d outcomes, want %d", len(outs), n)
	}
	if outs[0].Err != nil || outs[0].Report == nil {
		t.Fatalf("first job should have completed: %+v", outs[0])
	}
	for i := 1; i < n; i++ {
		if !errors.Is(outs[i].Err, context.Canceled) {
			t.Fatalf("job %d: err %v, want context.Canceled", i, outs[i].Err)
		}
		if outs[i].Report != nil {
			t.Fatalf("job %d has a report despite being skipped", i)
		}
	}
	if got := started.Load(); got != 1 {
		t.Fatalf("%d jobs started, want 1", got)
	}
}

// TestScenarioSweepContextCancelled checks the sweep surfaces
// cancellation rather than returning a half-empty result as success.
func TestScenarioSweepContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ScenarioSweepContext(ctx, ScenarioSweepConfig{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
