package experiments

import (
	"io"

	"wsndse/internal/sim"
)

// writer is the rendering sink used by every experiment.
type writer = io.Writer

// runSim is a seam for the simulator call (overridable in tests).
var runSim = sim.Run
