package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the Figure 3 grid as machine-readable rows for plotting.
func (r *Fig3Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "fuc_hz", "cr", "model_w", "measured_w", "err_pct", "infeasible"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Kind.String(),
			f(float64(row.MicroFreq)),
			f(row.CR),
			f(float64(row.Model)),
			f(float64(row.Measured)),
			f(row.ErrPct),
			strconv.FormatBool(row.Infeasible),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 4 sweep.
func (r *Fig4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "cr", "measured_prd", "estimated_prd", "abs_err"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{row.Kind.String(), f(row.CR), f(row.Measured), f(row.Estimated), f(row.AbsErr)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits every delay-validation sample.
func (r *DelayValResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"run", "node", "bound_s", "measured_s", "over_s"}); err != nil {
		return err
	}
	for _, s := range r.Samples {
		rec := []string{
			strconv.Itoa(s.Run), strconv.Itoa(s.Node),
			f(float64(s.Bound)), f(float64(s.Measured)), f(float64(s.Over)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits both Figure 5 fronts in the shared three-objective space,
// tagged by origin, ready for the paper's three scatter projections.
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"front", "energy_w", "prd_pct", "delay_s"}); err != nil {
		return err
	}
	emit := func(tag string, objs []float64) error {
		return cw.Write([]string{tag, f(objs[0]), f(objs[1]), f(objs[2])})
	}
	for _, p := range r.FullFront {
		if err := emit("full", p.Objs); err != nil {
			return err
		}
	}
	for _, p := range r.BaselineFront {
		if err := emit("baseline", p.Objs); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string {
	return fmt.Sprintf("%.8g", v)
}
