package experiments

import (
	"fmt"
	"math/rand"

	"wsndse/internal/casestudy"
	"wsndse/internal/numeric"
	"wsndse/internal/units"
)

// DelayValConfig parameterizes the Eq. 9 validation (§5.1: 130 simulations
// with realistic φ_out's and χ_mac's).
type DelayValConfig struct {
	Cal         *casestudy.Calibration
	Runs        int // feasible configurations to simulate (default 130)
	SimDuration units.Seconds
	Seed        int64
}

func (c DelayValConfig) withDefaults() DelayValConfig {
	if c.Cal == nil {
		c.Cal = casestudy.DefaultCalibration()
	}
	if c.Runs == 0 {
		c.Runs = 130
	}
	if c.SimDuration == 0 {
		c.SimDuration = 30
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// DelaySample is one (node, configuration) comparison.
type DelaySample struct {
	Run      int
	Node     int
	Bound    units.Seconds // Eq. 9 worst-case estimate
	Measured units.Seconds // maximum packet delay in the simulation
	Over     units.Seconds // Bound − Measured
}

// DelayValResult aggregates the validation.
type DelayValResult struct {
	Samples  []DelaySample
	RunsUsed int
	// MeanOver is the average overestimation; the paper reports it
	// below 100 ms. Violations counts samples whose bound fell short.
	MeanOver   units.Seconds
	MaxOver    units.Seconds
	MinOver    units.Seconds
	Violations int
	// Unstable counts simulated configurations whose queues grew; they
	// are excluded from the statistics (the bound presumes Eq. 1
	// holds, which the assignment guarantees, so this should be zero).
	Unstable int
}

// DelayVal draws random feasible case-study configurations, computes the
// Eq. 9 bound for every node, simulates the network packet-by-packet, and
// compares the bound against the largest measured delay.
func DelayVal(cfg DelayValConfig) (*DelayValResult, error) {
	cfg = cfg.withDefaults()
	problem := casestudy.NewProblem(cfg.Cal)
	eval := problem.Evaluator()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &DelayValResult{}

	var overs []float64
	for run := 0; run < cfg.Runs; run++ {
		// Rejection-sample a feasible configuration.
		var params casestudy.Params
		for {
			c := problem.Space().Random(rng)
			if _, err := eval.Evaluate(c); err != nil {
				continue
			}
			var err error
			params, err = problem.Decode(c)
			if err != nil {
				return nil, err
			}
			break
		}

		net, err := params.Network(cfg.Cal, 0)
		if err != nil {
			return nil, err
		}
		ev, err := net.Evaluate()
		if err != nil {
			return nil, err
		}
		simCfg, err := params.SimConfig(cfg.Cal, cfg.SimDuration, cfg.Seed+int64(run))
		if err != nil {
			return nil, err
		}
		simRes, err := runSim(simCfg)
		if err != nil {
			return nil, err
		}
		if !simRes.Stable {
			res.Unstable++
			continue
		}
		res.RunsUsed++
		for i, n := range simRes.Nodes {
			if n.Delay.Count == 0 {
				continue
			}
			s := DelaySample{
				Run:      run,
				Node:     i,
				Bound:    units.Seconds(ev.PerNodeDelay[i]),
				Measured: n.Delay.Max,
			}
			s.Over = s.Bound - s.Measured
			if s.Over < 0 {
				res.Violations++
			}
			overs = append(overs, float64(s.Over))
			res.Samples = append(res.Samples, s)
		}
	}
	if len(overs) > 0 {
		res.MeanOver = units.Seconds(numeric.Mean(overs))
		min, max := numeric.MinMax(overs)
		res.MinOver = units.Seconds(min)
		res.MaxOver = units.Seconds(max)
	}
	return res, nil
}

// Render writes the validation summary.
func (r *DelayValResult) Render(w writer) {
	fmt.Fprintf(w, "Delay validation — Eq. 9 worst-case bound vs packet-level simulation\n")
	fmt.Fprintf(w, "configurations simulated: %d (unstable excluded: %d)\n", r.RunsUsed, r.Unstable)
	fmt.Fprintf(w, "samples (node × config):  %d\n", len(r.Samples))
	fmt.Fprintf(w, "overestimation: mean %v, min %v, max %v\n", r.MeanOver, r.MinOver, r.MaxOver)
	fmt.Fprintf(w, "bound violations: %d\n", r.Violations)
	fmt.Fprintf(w, "paper: average overestimation < 100 ms over 130 simulations, bound holds\n")
}

// Check verifies the §5.1 claims: the bound dominates the measurements and
// the average overestimation stays below 100 ms.
func (r *DelayValResult) Check() error {
	if len(r.Samples) == 0 {
		return fmt.Errorf("delayval: no samples")
	}
	if r.Violations > 0 {
		return fmt.Errorf("delayval: %d bound violations", r.Violations)
	}
	if float64(r.MeanOver) >= 0.1 {
		return fmt.Errorf("delayval: mean overestimation %v not below 100 ms", r.MeanOver)
	}
	return nil
}
