package experiments

import (
	"bytes"
	"strings"
	"testing"

	"wsndse/internal/casestudy"
)

func TestFig3(t *testing.T) {
	res, err := Fig3(Fig3Config{SimDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	// 2 freqs × 4 CRs × 2 kinds = 16 rows; DWT@1MHz infeasible for all
	// 4 CRs.
	if len(res.Rows) != 16 {
		t.Errorf("%d rows, want 16", len(res.Rows))
	}
	if res.InfeasibleCells != 4 {
		t.Errorf("%d infeasible cells, want 4 (DWT at 1 MHz)", res.InfeasibleCells)
	}
	// Error profile comparable to the paper's (≤ ~2 %).
	if res.MaxErr > 2.5 {
		t.Errorf("max error %.2f%%", res.MaxErr)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 3") || !strings.Contains(buf.String(), "infeas.") {
		t.Error("render output incomplete")
	}
}

func TestFig4(t *testing.T) {
	res, err := Fig4(Fig4Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 {
		t.Errorf("%d rows, want 16 (8 CRs × 2 kinds)", len(res.Rows))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("render output incomplete")
	}
}

func TestFig4FreshCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("fresh-corpus validation is slow")
	}
	// Validate the estimator against ECG data it was not fitted on: the
	// errors grow but stay within a few PRD points.
	res, err := Fig4(Fig4Config{FreshSeed: 77, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgErrDWT > 3 {
		t.Errorf("DWT generalization error %.2f PRD points", res.AvgErrDWT)
	}
	if res.AvgErrCS > 12 {
		t.Errorf("CS generalization error %.2f PRD points", res.AvgErrCS)
	}
}

func TestDelayVal(t *testing.T) {
	res, err := DelayVal(DelayValConfig{Runs: 10, SimDuration: 15})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if res.RunsUsed != 10 {
		t.Errorf("used %d runs, want 10", res.RunsUsed)
	}
	if len(res.Samples) < 10*casestudy.DefaultNodes/2 {
		t.Errorf("only %d samples", len(res.Samples))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Delay validation") {
		t.Error("render output incomplete")
	}
}

func TestSpeed(t *testing.T) {
	res, err := Speed(SpeedConfig{ModelEvals: 2000, SimRuns: 1, SimDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Evaluation speed") {
		t.Error("render output incomplete")
	}
}

func TestFig5(t *testing.T) {
	res, err := Fig5(Fig5Config{PopulationSize: 48, Generations: 25, RunMOSA: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if res.MOSAFront == nil || res.HVFullGA <= 0 || res.HVFullSA <= 0 {
		t.Error("MOSA cross-check missing")
	}
	// GA and SA fronts of broadly comparable quality (§5.2).
	ratio := res.HVFullSA / res.HVFullGA
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("GA/SA hypervolume ratio %.2f outside [0.7, 1.3]", ratio)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 5", "energy-delay", "energy-PRD", "PRD-delay"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestThetaAblation(t *testing.T) {
	res, err := ThetaAblation(ThetaAblationConfig{PopulationSize: 32, Generations: 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "balance weight") {
		t.Error("render output incomplete")
	}
}

func TestArrivalAblation(t *testing.T) {
	res, err := ArrivalAblation(ArrivalAblationConfig{Runs: 8, SimDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "uniform-output-rate") {
		t.Error("render output incomplete")
	}
}

func TestCSVWriters(t *testing.T) {
	f3, err := Fig3(Fig3Config{SimDuration: 10})
	if err != nil {
		t.Fatal(err)
	}
	f4, err := Fig4(Fig4Config{})
	if err != nil {
		t.Fatal(err)
	}
	dv, err := DelayVal(DelayValConfig{Runs: 3, SimDuration: 10})
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Fig5(Fig5Config{PopulationSize: 24, Generations: 8})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		write  func(*bytes.Buffer) error
		header string
		rows   int
	}{
		{"fig3", func(b *bytes.Buffer) error { return f3.WriteCSV(b) }, "app,fuc_hz", len(f3.Rows)},
		{"fig4", func(b *bytes.Buffer) error { return f4.WriteCSV(b) }, "app,cr", len(f4.Rows)},
		{"delay", func(b *bytes.Buffer) error { return dv.WriteCSV(b) }, "run,node", len(dv.Samples)},
		{"fig5", func(b *bytes.Buffer) error { return f5.WriteCSV(b) }, "front,energy_w", len(f5.FullFront) + len(f5.BaselineFront)},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := c.write(&buf); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		out := buf.String()
		if !strings.HasPrefix(out, c.header) {
			t.Errorf("%s: header = %q", c.name, strings.SplitN(out, "\n", 2)[0])
		}
		lines := strings.Count(strings.TrimSpace(out), "\n")
		if lines != c.rows {
			t.Errorf("%s: %d data rows, want %d", c.name, lines, c.rows)
		}
	}
}

// TestFig3DifferentNetworkSizes backs the paper's remark that "tests on
// different networks show a similar accuracy": the estimation error
// profile holds on 2- and 4-node networks too.
func TestFig3DifferentNetworkSizes(t *testing.T) {
	for _, n := range []int{2, 4} {
		res, err := Fig3(Fig3Config{SimDuration: 20, Nodes: n})
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if err := res.Check(); err != nil {
			t.Errorf("N=%d: %v", n, err)
		}
		if res.MaxErr > 2.5 {
			t.Errorf("N=%d: max error %.2f%%", n, res.MaxErr)
		}
	}
}
