// Package experiments reproduces every table and figure of the paper's
// evaluation (§5): Figure 3 (node-energy estimation accuracy), Figure 4
// (PRD estimation accuracy), the Eq. 9 delay validation against the
// packet-level simulator, the model-vs-simulation evaluation-speed
// comparison, and Figure 5 (the three-metric Pareto fronts against the
// energy/delay-only baseline).
//
// Each experiment is a pure function from a config to a result struct with
// deterministic seeding, plus text/CSV renderers, so the paper's artifacts
// regenerate identically from `wsn-experiments` or the benchmark harness.
//
// Because the harnesses are pure and independent, they fan out across
// goroutines: RunJobs executes any subset of them on a bounded worker pool
// and returns outcomes in job order, so `wsn-experiments -workers N`
// regenerates the full evaluation concurrently with byte-identical,
// deterministically ordered output. The searches inside Fig5 and the
// ablations additionally parallelize their own evaluation batches through
// dse.ParallelEvaluator, whose worker count never changes results (see the
// dse package documentation for the determinism guarantees).
package experiments

import (
	"fmt"
	"math"

	"wsndse/internal/casestudy"
	"wsndse/internal/core"
	"wsndse/internal/numeric"
	"wsndse/internal/units"
)

// Fig3Config parameterizes the energy-accuracy experiment.
type Fig3Config struct {
	Cal *casestudy.Calibration

	// Grid: the paper evaluates f_µC ∈ {1, 8} MHz × CR ∈ {0.17, 0.23,
	// 0.32, 0.38} for both applications.
	MicroFreqs []units.Hertz
	CRs        []float64

	// MAC operating point shared by all grid cells.
	BeaconOrder     int
	SuperframeOrder int
	PayloadBytes    int

	SimDuration units.Seconds
	Seed        int64

	// Nodes sizes the network (default: the case study's 6). The paper
	// notes "tests on different networks show a similar accuracy".
	Nodes int
}

func (c Fig3Config) withDefaults() Fig3Config {
	if c.Cal == nil {
		c.Cal = casestudy.DefaultCalibration()
	}
	if c.MicroFreqs == nil {
		c.MicroFreqs = []units.Hertz{1e6, 8e6}
	}
	if c.CRs == nil {
		c.CRs = []float64{0.17, 0.23, 0.32, 0.38}
	}
	if c.BeaconOrder == 0 {
		c.BeaconOrder = 3
	}
	if c.SuperframeOrder == 0 {
		c.SuperframeOrder = 2
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 48
	}
	if c.SimDuration == 0 {
		c.SimDuration = 60
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Nodes == 0 {
		c.Nodes = casestudy.DefaultNodes
	}
	return c
}

// Fig3Row is one bar pair of Figure 3.
type Fig3Row struct {
	Kind       casestudy.Kind
	MicroFreq  units.Hertz
	CR         float64
	Model      units.Watts // analytical estimate (Eq. 7)
	Measured   units.Watts // device-level simulation
	ErrPct     float64
	Infeasible bool // duty cycle > 100 % (DWT at 1 MHz)
}

// Fig3Result aggregates the grid.
type Fig3Result struct {
	Rows []Fig3Row
	// The paper's headline numbers: average error per application and
	// the maximum across the grid (0.88 % CS, 0.13 % DWT, max 1.74 %).
	AvgErrDWT, AvgErrCS, MaxErr float64
	InfeasibleCells             int
}

// Fig3 runs the experiment: for every grid cell, evaluate the analytical
// node model and measure the same node in a full six-node packet-level
// simulation of the case-study network.
func Fig3(cfg Fig3Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig3Result{}
	var dwtErrs, csErrs []float64

	for _, fuc := range cfg.MicroFreqs {
		for _, cr := range cfg.CRs {
			// One network per cell: every node at (cr, fuc) when
			// feasible; applications that cannot run at fuc fall
			// back to 8 MHz so the rest of the network still
			// operates (their rows are reported infeasible).
			params := casestudy.Params{
				BeaconOrder:     cfg.BeaconOrder,
				SuperframeOrder: cfg.SuperframeOrder,
				PayloadBytes:    cfg.PayloadBytes,
				CR:              make([]float64, cfg.Nodes),
				MicroFreq:       make([]units.Hertz, cfg.Nodes),
			}
			for i := range params.CR {
				params.CR[i] = cr
				params.MicroFreq[i] = fuc
			}

			net, err := params.Network(cfg.Cal, 0)
			if err != nil {
				return nil, err
			}
			kinds := casestudy.DefaultKinds(cfg.Nodes)
			feasible := make([]bool, len(net.Nodes))
			modelPower := make([]units.Watts, len(net.Nodes))
			for i, n := range net.Nodes {
				eb, err := n.Energy(net.MAC)
				switch {
				case core.IsInfeasible(err):
					feasible[i] = false
					params.MicroFreq[i] = 8e6 // keep the sim network runnable
				case err != nil:
					return nil, err
				default:
					feasible[i] = true
					modelPower[i] = eb.Total
				}
			}

			simCfg, err := params.SimConfig(cfg.Cal, cfg.SimDuration, cfg.Seed)
			if err != nil {
				return nil, err
			}
			simRes, err := runSim(simCfg)
			if err != nil {
				return nil, err
			}

			// One row per application kind, using the first node of
			// each kind.
			for _, kind := range []casestudy.Kind{casestudy.KindDWT, casestudy.KindCS} {
				idx := firstOfKind(kinds, kind)
				row := Fig3Row{Kind: kind, MicroFreq: fuc, CR: cr}
				if !feasible[idx] {
					row.Infeasible = true
					res.InfeasibleCells++
					res.Rows = append(res.Rows, row)
					continue
				}
				row.Model = modelPower[idx]
				row.Measured = simRes.Nodes[idx].Power.Total
				row.ErrPct = numeric.RelErr(float64(row.Model), float64(row.Measured))
				res.Rows = append(res.Rows, row)
				if kind == casestudy.KindDWT {
					dwtErrs = append(dwtErrs, row.ErrPct)
				} else {
					csErrs = append(csErrs, row.ErrPct)
				}
				if row.ErrPct > res.MaxErr {
					res.MaxErr = row.ErrPct
				}
			}
		}
	}
	res.AvgErrDWT = numeric.Mean(dwtErrs)
	res.AvgErrCS = numeric.Mean(csErrs)
	return res, nil
}

func firstOfKind(kinds []casestudy.Kind, k casestudy.Kind) int {
	for i, kk := range kinds {
		if kk == k {
			return i
		}
	}
	return -1
}

// Render writes the figure as a text table.
func (r *Fig3Result) Render(w writer) {
	fmt.Fprintf(w, "Figure 3 — node energy consumption: model vs device-level simulation\n")
	fmt.Fprintf(w, "%-5s %-7s %-5s %12s %12s %8s\n", "app", "f_µC", "CR", "model", "measured", "err")
	for _, row := range r.Rows {
		if row.Infeasible {
			fmt.Fprintf(w, "%-5s %-7v %-5.2f %12s %12s %8s\n",
				row.Kind, row.MicroFreq, row.CR, "—", "—", "infeas.")
			continue
		}
		fmt.Fprintf(w, "%-5s %-7v %-5.2f %10.4f mW %10.4f mW %7.2f%%\n",
			row.Kind, row.MicroFreq, row.CR,
			float64(row.Model)*1e3, float64(row.Measured)*1e3, row.ErrPct)
	}
	fmt.Fprintf(w, "avg err: DWT %.2f%%, CS %.2f%%; max %.2f%%; infeasible cells: %d\n",
		r.AvgErrDWT, r.AvgErrCS, r.MaxErr, r.InfeasibleCells)
	fmt.Fprintf(w, "paper:   DWT 0.13%%, CS 0.88%%; max 1.74%%; DWT infeasible at 1 MHz\n")
}

// Check verifies the headline claims with the reproduction tolerances: the
// model tracks the device-level reference within a few percent and the
// DWT-at-1-MHz infeasibility is detected.
func (r *Fig3Result) Check() error {
	if r.MaxErr > 2.5 {
		return fmt.Errorf("fig3: max estimation error %.2f%% exceeds 2.5%%", r.MaxErr)
	}
	if r.InfeasibleCells == 0 {
		return fmt.Errorf("fig3: expected DWT@1MHz infeasibility not detected")
	}
	for _, row := range r.Rows {
		if !row.Infeasible && (math.IsNaN(row.ErrPct) || row.Model <= 0 || row.Measured <= 0) {
			return fmt.Errorf("fig3: degenerate row %+v", row)
		}
	}
	return nil
}
