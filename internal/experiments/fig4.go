package experiments

import (
	"fmt"

	"wsndse/internal/casestudy"
	"wsndse/internal/numeric"
)

// Fig4Config parameterizes the PRD-accuracy experiment.
type Fig4Config struct {
	// Cal is the shipped calibration whose polynomials act as the
	// model's quality estimator. When nil, the default is used.
	Cal *casestudy.Calibration
	// FreshSeed, when nonzero, validates the estimator against a corpus
	// it was NOT fitted on (a stronger check than the paper's, which
	// compares against the fitting data).
	FreshSeed int64
	Blocks    int
}

// Fig4Row is one point of Figure 4.
type Fig4Row struct {
	Kind      casestudy.Kind
	CR        float64
	Measured  float64 // PRD from actually compressing and reconstructing
	Estimated float64 // P₅(CR)
	AbsErr    float64 // PRD percentage points
}

// Fig4Result aggregates the sweep.
type Fig4Result struct {
	Rows []Fig4Row
	// Mean absolute estimation errors (paper: 0.46 DWT, 0.92 CS).
	AvgErrDWT, AvgErrCS float64
}

// Fig4 compares the polynomial quality estimator against measured codec
// PRDs across the CR grid.
func Fig4(cfg Fig4Config) (*Fig4Result, error) {
	if cfg.Cal == nil {
		cfg.Cal = casestudy.DefaultCalibration()
	}
	measured := cfg.Cal
	if cfg.FreshSeed != 0 {
		var err error
		measured, err = casestudy.Calibrate(casestudy.CalibrationConfig{
			Seed:   cfg.FreshSeed,
			Blocks: cfg.Blocks,
		})
		if err != nil {
			return nil, err
		}
	}

	res := &Fig4Result{}
	var dwtErrs, csErrs []float64
	for i, cr := range measured.CRs {
		dwtRow := Fig4Row{
			Kind:      casestudy.KindDWT,
			CR:        cr,
			Measured:  measured.DWTMeasured[i],
			Estimated: cfg.Cal.DWTPoly.Eval(cr),
		}
		dwtRow.AbsErr = abs(dwtRow.Estimated - dwtRow.Measured)
		csRow := Fig4Row{
			Kind:      casestudy.KindCS,
			CR:        cr,
			Measured:  measured.CSMeasured[i],
			Estimated: cfg.Cal.CSPoly.Eval(cr),
		}
		csRow.AbsErr = abs(csRow.Estimated - csRow.Measured)
		res.Rows = append(res.Rows, dwtRow, csRow)
		dwtErrs = append(dwtErrs, dwtRow.AbsErr)
		csErrs = append(csErrs, csRow.AbsErr)
	}
	res.AvgErrDWT = numeric.Mean(dwtErrs)
	res.AvgErrCS = numeric.Mean(csErrs)
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render writes the figure as a text table.
func (r *Fig4Result) Render(w writer) {
	fmt.Fprintf(w, "Figure 4 — application quality (PRD): polynomial estimate vs measured codec\n")
	fmt.Fprintf(w, "%-5s %-5s %10s %10s %8s\n", "app", "CR", "measured", "estimated", "err")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-5s %-5.2f %9.2f%% %9.2f%% %7.2f\n",
			row.Kind, row.CR, row.Measured, row.Estimated, row.AbsErr)
	}
	fmt.Fprintf(w, "mean abs err (PRD points): DWT %.3f, CS %.3f\n", r.AvgErrDWT, r.AvgErrCS)
	fmt.Fprintf(w, "paper:                     DWT 0.46,  CS 0.92\n")
}

// Check verifies the headline claims: monotone-decreasing PRD curves, CS
// worse than DWT, and small estimation errors.
func (r *Fig4Result) Check() error {
	byKind := map[casestudy.Kind][]Fig4Row{}
	for _, row := range r.Rows {
		byKind[row.Kind] = append(byKind[row.Kind], row)
	}
	for kind, rows := range byKind {
		first, last := rows[0], rows[len(rows)-1]
		if last.Measured >= first.Measured {
			return fmt.Errorf("fig4: %v PRD not improving with CR (%.2f → %.2f)",
				kind, first.Measured, last.Measured)
		}
	}
	for i := range byKind[casestudy.KindDWT] {
		d, c := byKind[casestudy.KindDWT][i], byKind[casestudy.KindCS][i]
		if c.Measured <= d.Measured {
			return fmt.Errorf("fig4: CS PRD (%.2f) not worse than DWT (%.2f) at CR=%.2f",
				c.Measured, d.Measured, d.CR)
		}
	}
	if r.AvgErrDWT > 1.0 || r.AvgErrCS > 3.0 {
		return fmt.Errorf("fig4: estimation errors too large: DWT %.2f, CS %.2f",
			r.AvgErrDWT, r.AvgErrCS)
	}
	return nil
}
