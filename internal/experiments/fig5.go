package experiments

import (
	"fmt"

	"wsndse/internal/baseline"
	"wsndse/internal/casestudy"
	"wsndse/internal/dse"
)

// Fig5Config parameterizes the tradeoff-detection experiment (§5.2,
// Figure 5): DSE with the proposed three-metric model against DSE with a
// state-of-the-art energy/delay model.
type Fig5Config struct {
	Cal *casestudy.Calibration

	// Search budget, shared by both sides.
	PopulationSize int
	Generations    int
	Seed           int64

	// RunMOSA additionally runs simulated annealing with the full model
	// to check the paper's GA-vs-SA equivalence observation.
	RunMOSA bool

	// Workers bounds the evaluation pool of the inner searches; <= 0
	// selects GOMAXPROCS. Fronts are identical at any worker count.
	Workers int
}

func (c Fig5Config) withDefaults() Fig5Config {
	if c.Cal == nil {
		c.Cal = casestudy.DefaultCalibration()
	}
	if c.PopulationSize == 0 {
		c.PopulationSize = 96
	}
	if c.Generations == 0 {
		c.Generations = 60
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
	return c
}

// Fig5Result carries both fronts in the common three-objective space
// (energy [W], PRD [%], delay [s]) plus the headline coverage number.
type Fig5Result struct {
	// FullFront is the Pareto set found with the proposed model.
	FullFront []dse.Point
	// BaselineFront is the energy/delay model's Pareto set, lifted into
	// the three-objective space for comparison.
	BaselineFront []dse.Point

	// SizeRatio is |baseline front| / |full front| — the paper's
	// headline: "the Pareto set generated according to the energy/delay
	// model only contains a subset (approximately 7%) of the tradeoffs
	// that are found using the proposed model".
	SizeRatio float64

	// BaselineShare is the fraction of the full front weakly dominated
	// by a baseline point — a stricter containment measure.
	BaselineShare float64

	// FullCoversBaseline is C(full, baseline): how much of the baseline
	// front the full model's front dominates or matches. Reported for
	// context only — the two searches walk a huge space independently,
	// so their extreme points rarely coincide exactly.
	FullCoversBaseline float64

	EvalsFull, EvalsBaseline int

	// MOSA cross-check (populated when RunMOSA): hypervolume of the GA
	// and SA fronts over the energy/delay projection.
	MOSAFront []dse.Point
	HVFullGA  float64
	HVFullSA  float64
}

// Fig5 runs both searches and compares the detected tradeoffs.
func Fig5(cfg Fig5Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	problem := casestudy.NewProblem(cfg.Cal)

	full, err := dse.NSGA2(problem.Space(), problem.Evaluator(), dse.NSGA2Config{
		PopulationSize: cfg.PopulationSize,
		Generations:    cfg.Generations,
		Seed:           cfg.Seed,
		Workers:        cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	base, err := dse.NSGA2(problem.Space(), baseline.New(problem), dse.NSGA2Config{
		PopulationSize: cfg.PopulationSize,
		Generations:    cfg.Generations,
		Seed:           cfg.Seed,
		Workers:        cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	lifted, err := baseline.Lift(problem, base.Front)
	if err != nil {
		return nil, err
	}

	res := &Fig5Result{
		FullFront:     full.Front,
		BaselineFront: lifted,
		EvalsFull:     full.Evaluated,
		EvalsBaseline: base.Evaluated,
	}
	if len(full.Front) > 0 {
		res.SizeRatio = float64(len(lifted)) / float64(len(full.Front))
	}
	res.BaselineShare = dse.Coverage(lifted, full.Front)
	res.FullCoversBaseline = dse.Coverage(full.Front, lifted)

	if cfg.RunMOSA {
		sa, err := dse.MOSA(problem.Space(), problem.Evaluator(), dse.MOSAConfig{
			Iterations: cfg.PopulationSize * cfg.Generations,
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		res.MOSAFront = sa.Front
		ref := referencePoint(append(append([]dse.Point{}, full.Front...), sa.Front...))
		res.HVFullGA = dse.Hypervolume(full.Front, ref)
		res.HVFullSA = dse.Hypervolume(sa.Front, ref)
	}
	return res, nil
}

// referencePoint returns a point 10 % beyond the worst value of each
// objective across the union of fronts.
func referencePoint(points []dse.Point) dse.Objectives {
	if len(points) == 0 {
		return nil
	}
	m := len(points[0].Objs)
	ref := make(dse.Objectives, m)
	for i := range ref {
		worst := points[0].Objs[i]
		for _, p := range points {
			if p.Objs[i] > worst {
				worst = p.Objs[i]
			}
		}
		ref[i] = worst * 1.1
	}
	return ref
}

// Projection names for rendering.
var projections = []struct {
	name string
	x, y int
}{
	{"energy-delay", 0, 2},
	{"energy-PRD", 0, 1},
	{"PRD-delay", 1, 2},
}

// Render writes the comparison summary and the three tradeoff projections
// the paper plots.
func (r *Fig5Result) Render(w writer) {
	fmt.Fprintf(w, "Figure 5 — tradeoffs detected: proposed 3-metric model vs energy/delay model\n")
	fmt.Fprintf(w, "full-model front:    %d points (%d evaluations)\n", len(r.FullFront), r.EvalsFull)
	fmt.Fprintf(w, "baseline front:      %d points (%d evaluations)\n", len(r.BaselineFront), r.EvalsBaseline)
	fmt.Fprintf(w, "baseline tradeoffs vs full model's: %.1f%%   (paper: ≈7%%)\n", r.SizeRatio*100)
	fmt.Fprintf(w, "full-front points dominated by baseline: %.1f%%\n", r.BaselineShare*100)
	fmt.Fprintf(w, "baseline-front points dominated by full: %.1f%%\n", r.FullCoversBaseline*100)
	if r.MOSAFront != nil {
		fmt.Fprintf(w, "GA vs SA hypervolume: %.4g vs %.4g (paper: no relevant difference)\n",
			r.HVFullGA, r.HVFullSA)
	}
	for _, proj := range projections {
		fmt.Fprintf(w, "\n%s tradeoff (full model front, then baseline):\n", proj.name)
		for _, p := range r.FullFront {
			fmt.Fprintf(w, "  F %.6g %.6g\n", p.Objs[proj.x], p.Objs[proj.y])
		}
		for _, p := range r.BaselineFront {
			fmt.Fprintf(w, "  B %.6g %.6g\n", p.Objs[proj.x], p.Objs[proj.y])
		}
	}
}

// Check verifies the structural claim: the baseline finds only a small
// fraction of the full tradeoff set, while the full model subsumes most of
// the baseline's.
func (r *Fig5Result) Check() error {
	if len(r.FullFront) == 0 || len(r.BaselineFront) == 0 {
		return fmt.Errorf("fig5: empty front")
	}
	if len(r.FullFront) <= 2*len(r.BaselineFront) {
		return fmt.Errorf("fig5: full front (%d) should far exceed the baseline's (%d)",
			len(r.FullFront), len(r.BaselineFront))
	}
	if r.BaselineShare > 0.25 {
		return fmt.Errorf("fig5: baseline covers %.1f%% of the full front, expected a small fraction",
			r.BaselineShare*100)
	}
	if r.SizeRatio <= 0 || r.SizeRatio > 0.35 {
		return fmt.Errorf("fig5: baseline front is %.1f%% the size of the full front, expected a small fraction",
			r.SizeRatio*100)
	}
	return nil
}
