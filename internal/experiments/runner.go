package experiments

import (
	"context"
	"io"

	"wsndse/internal/dse"
)

// Report is the interface every experiment result implements: a text
// renderer and a verification of the headline claims it reproduces.
type Report interface {
	Render(w io.Writer)
	Check() error
}

// Job is one experiment harness, deferred so the runner controls when (and
// on which goroutine) it executes. Run must be self-contained: the
// harnesses in this package are pure functions of their configs, so any
// subset can execute concurrently. The context is the runner's
// cancellation signal; harnesses that drive long searches should thread it
// into dse.Options, and short harnesses may ignore it (the runner then
// cancels at job granularity: started jobs finish, unstarted jobs are
// skipped).
type Job struct {
	Name string
	Run  func(ctx context.Context) (Report, error)
}

// Outcome pairs a job with its result. Exactly one of Report and Err is
// set; a job skipped by cancellation carries the context's error.
type Outcome struct {
	Name   string
	Report Report
	Err    error
}

// RunJobs executes the jobs on at most workers goroutines (workers <= 0
// selects GOMAXPROCS) and returns the outcomes in job order regardless of
// completion order, so rendering stays deterministic however the harnesses
// are scheduled. Jobs whose harnesses take a Workers knob (Fig5, the ϑ
// ablation) may additionally batch their evaluations across
// dse.ParallelEvaluator, so total concurrency can reach jobs × evaluation
// workers; worker counts never change any job's results.
//
// Wall-clock-sensitive harnesses (Speed) measure their own timing and will
// read slower when co-scheduled with other jobs on a loaded machine; run
// those in their own RunJobs call (as cmd/wsn-experiments does) when the
// absolute throughput number matters.
func RunJobs(jobs []Job, workers int) []Outcome {
	return RunJobsContext(context.Background(), jobs, workers)
}

// RunJobsContext is RunJobs under a cancellation context. A job that has
// not started when ctx is cancelled is skipped and its Outcome carries
// ctx.Err(); jobs already running receive the context and finish on their
// own terms (immediately, for harnesses that thread it into their search
// loops). Completed outcomes are always returned — cancellation flushes
// partial results, it never discards them.
func RunJobsContext(ctx context.Context, jobs []Job, workers int) []Outcome {
	outs := make([]Outcome, len(jobs))
	dse.ForEach(len(jobs), workers, func(i int) {
		if err := ctx.Err(); err != nil {
			outs[i] = Outcome{Name: jobs[i].Name, Err: err}
			return
		}
		r, err := jobs[i].Run(ctx)
		outs[i] = Outcome{Name: jobs[i].Name, Report: r, Err: err}
	})
	return outs
}
