package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
)

type stubReport struct{ id int }

func (r stubReport) Render(w io.Writer) { fmt.Fprintf(w, "report %d", r.id) }
func (r stubReport) Check() error       { return nil }

// TestRunJobsDeterministicOrder fans out jobs that finish in scrambled
// order and checks outcomes still come back in job order, with errors
// attached to the right job.
func TestRunJobsDeterministicOrder(t *testing.T) {
	const n = 16
	var running atomic.Int32
	var sawConcurrent atomic.Bool
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Name: fmt.Sprintf("job%02d", i),
			Run: func(context.Context) (Report, error) {
				if running.Add(1) > 1 {
					sawConcurrent.Store(true)
				}
				defer running.Add(-1)
				// Burn scheduling-dependent time so completion order
				// scrambles relative to submission order.
				s := 0
				for k := 0; k < (n-i)*1000; k++ {
					s += k
				}
				_ = s
				if i%5 == 3 {
					return nil, fmt.Errorf("job %d failed", i)
				}
				return stubReport{id: i}, nil
			},
		}
	}
	for _, workers := range []int{1, 4} {
		outs := RunJobs(jobs, workers)
		if len(outs) != n {
			t.Fatalf("workers=%d: got %d outcomes, want %d", workers, len(outs), n)
		}
		for i, out := range outs {
			if out.Name != jobs[i].Name {
				t.Fatalf("workers=%d: outcome %d is %q, want %q", workers, i, out.Name, jobs[i].Name)
			}
			if i%5 == 3 {
				if out.Err == nil || !strings.Contains(out.Err.Error(), fmt.Sprint(i)) {
					t.Fatalf("workers=%d: job %d error = %v", workers, i, out.Err)
				}
				continue
			}
			if out.Err != nil {
				t.Fatalf("workers=%d: job %d unexpected error %v", workers, i, out.Err)
			}
			var sb strings.Builder
			out.Report.Render(&sb)
			if sb.String() != fmt.Sprintf("report %d", i) {
				t.Fatalf("workers=%d: job %d rendered %q", workers, i, sb.String())
			}
		}
	}
	if !sawConcurrent.Load() {
		t.Log("note: no overlap observed (single-CPU machine?); ordering still verified")
	}
}

// TestFig5WorkerInvariance checks the determinism guarantee end to end on
// the real case study: the fronts Fig5 finds do not depend on the worker
// count.
func TestFig5WorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("case-study DSE in -short mode")
	}
	seq, err := Fig5(Fig5Config{PopulationSize: 16, Generations: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig5(Fig5Config{PopulationSize: 16, Generations: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.FullFront) != len(par.FullFront) || seq.EvalsFull != par.EvalsFull ||
		len(seq.BaselineFront) != len(par.BaselineFront) || seq.EvalsBaseline != par.EvalsBaseline {
		t.Fatalf("worker count changed fig5: seq front %d/%d evals %d/%d, par front %d/%d evals %d/%d",
			len(seq.FullFront), len(seq.BaselineFront), seq.EvalsFull, seq.EvalsBaseline,
			len(par.FullFront), len(par.BaselineFront), par.EvalsFull, par.EvalsBaseline)
	}
	for i := range seq.FullFront {
		a, b := seq.FullFront[i], par.FullFront[i]
		for j := range a.Objs {
			if a.Objs[j] != b.Objs[j] {
				t.Fatalf("full front point %d objective %d differs: %g vs %g", i, j, a.Objs[j], b.Objs[j])
			}
		}
	}
}
