package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"wsndse/internal/casestudy"
	"wsndse/internal/core"
	"wsndse/internal/dse"
	"wsndse/internal/numeric"
	"wsndse/internal/scenario"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

// ScenarioSweepConfig parameterizes the scenario sweep: one NSGA-II
// exploration plus a simulator cross-check per registered scenario, and a
// GTS-starvation node-count sweep walking the dense workload over the
// 7-slot cliff.
type ScenarioSweepConfig struct {
	Cal *casestudy.Calibration

	// Names selects scenarios; nil sweeps every registered one.
	Names []string

	// Search budget per scenario.
	PopulationSize int // default 32
	Generations    int // default 12
	Seed           int64

	// SimDuration overrides each scenario's default verification run
	// length (0 keeps the scenario's own).
	SimDuration units.Seconds

	// Starvation sweep: node counts to walk (default 4…9) and the number
	// of seeded random configurations sampled per count (default 200).
	StarvationNodes   []int
	StarvationSamples int

	// Workers bounds both the concurrent scenario jobs and each search's
	// evaluation pool; <= 0 selects GOMAXPROCS. Results are identical at
	// any worker count.
	Workers int
}

func (c ScenarioSweepConfig) withDefaults() ScenarioSweepConfig {
	if c.Cal == nil {
		c.Cal = casestudy.DefaultCalibration()
	}
	if c.Names == nil {
		c.Names = scenario.Names()
	}
	if c.PopulationSize == 0 {
		c.PopulationSize = 32
	}
	if c.Generations == 0 {
		c.Generations = 12
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.StarvationNodes == nil {
		c.StarvationNodes = []int{4, 5, 6, 7, 8, 9}
	}
	if c.StarvationSamples == 0 {
		c.StarvationSamples = 200
	}
	return c
}

// ScenarioRow is one scenario's outcome: the exploration bookkeeping and
// the model-vs-simulator cross-check at the balanced front pick.
type ScenarioRow struct {
	Name      string
	Stress    string
	SpaceSize float64
	Genes     int

	Evaluated  int
	Infeasible int
	Front      []dse.Point

	Balanced       dse.Point
	BalancedParams scenario.Params

	// ModelEnergy is the balanced point's E_net; SimEnergy combines the
	// simulated per-node powers with the same Eq. 8 weight; ErrPct is
	// their relative difference.
	ModelEnergy units.Watts
	SimEnergy   units.Watts
	ErrPct      float64
	Stable      bool
	// BlockArrivals notes that the scenario breaks the Eq. 9 uniformity
	// assumption, so no delay-bound comparison is made.
	BlockArrivals bool
}

// Render writes the row's block (also the per-job Report output).
func (r *ScenarioRow) Render(w io.Writer) {
	fmt.Fprintf(w, "%-12s space %.3g (%d genes): evaluated %d (%d infeasible), front %d\n",
		r.Name, r.SpaceSize, r.Genes, r.Evaluated, r.Infeasible, len(r.Front))
	fmt.Fprintf(w, "             balanced pick: BO=%d SO=%d L=%d — model %.4f mW, sim %.4f mW (err %.2f%%), stable=%v\n",
		r.BalancedParams.BeaconOrder, r.BalancedParams.SuperframeOrder, r.BalancedParams.PayloadBytes,
		float64(r.ModelEnergy)*1e3, float64(r.SimEnergy)*1e3, r.ErrPct, r.Stable)
}

// Check verifies the row: a non-empty front and a simulator that broadly
// agrees with the model at the chosen configuration.
func (r *ScenarioRow) Check() error {
	if len(r.Front) == 0 {
		return fmt.Errorf("scenario %s: empty front", r.Name)
	}
	if r.ErrPct > 10 {
		return fmt.Errorf("scenario %s: model-vs-sim energy error %.1f%% exceeds 10%%", r.Name, r.ErrPct)
	}
	if !r.Stable && !r.BlockArrivals {
		return fmt.Errorf("scenario %s: balanced configuration is unstable in simulation", r.Name)
	}
	return nil
}

// StarvationRow is one node count of the GTS-starvation sweep.
type StarvationRow struct {
	Nodes    int
	Sampled  int
	Feasible int
}

// FeasiblePct is the feasible share in percent.
func (r StarvationRow) FeasiblePct() float64 {
	if r.Sampled == 0 {
		return 0
	}
	return float64(r.Feasible) / float64(r.Sampled) * 100
}

// ScenarioSweepResult aggregates the sweep.
type ScenarioSweepResult struct {
	Rows       []*ScenarioRow
	Starvation []StarvationRow
}

// ScenarioSweep runs one exploration + simulator cross-check per scenario
// on the concurrent job runner, then walks the dense workload's node count
// across the 7-GTS-slot budget. Results are deterministic and identical at
// every worker count.
func ScenarioSweep(cfg ScenarioSweepConfig) (*ScenarioSweepResult, error) {
	return ScenarioSweepContext(context.Background(), cfg)
}

// ScenarioSweepContext is ScenarioSweep under a cancellation context,
// threaded through the job runner into each scenario's NSGA-II generation
// loop — SIGINT in wsn-experiments stops the sweep within one generation.
func ScenarioSweepContext(ctx context.Context, cfg ScenarioSweepConfig) (*ScenarioSweepResult, error) {
	cfg = cfg.withDefaults()

	jobs := make([]Job, len(cfg.Names))
	for i, name := range cfg.Names {
		name := name
		jobs[i] = Job{Name: name, Run: func(ctx context.Context) (Report, error) {
			sc, ok := scenario.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("scenario %q not registered", name)
			}
			return evalScenario(ctx, sc, cfg)
		}}
	}
	res := &ScenarioSweepResult{}
	for _, out := range RunJobsContext(ctx, jobs, cfg.Workers) {
		if out.Err != nil {
			return nil, fmt.Errorf("scenario %s: %w", out.Name, out.Err)
		}
		res.Rows = append(res.Rows, out.Report.(*ScenarioRow))
	}

	for _, n := range cfg.StarvationNodes {
		row, err := starveAt(n, cfg)
		if err != nil {
			return nil, err
		}
		res.Starvation = append(res.Starvation, row)
	}
	return res, nil
}

// evalScenario explores one scenario and cross-checks the balanced pick.
// The context cancels the search at generation boundaries.
func evalScenario(ctx context.Context, sc scenario.Scenario, cfg ScenarioSweepConfig) (*ScenarioRow, error) {
	p, err := scenario.NewProblem(sc, cfg.Cal)
	if err != nil {
		return nil, err
	}
	search, err := dse.NSGA2Opts(p.Space(), p.Evaluator(), dse.NSGA2Config{
		PopulationSize: cfg.PopulationSize,
		Generations:    cfg.Generations,
		Seed:           cfg.Seed,
		Workers:        cfg.Workers,
	}, dse.Options{Context: ctx})
	if err != nil {
		return nil, err
	}
	row := &ScenarioRow{
		Name:       sc.Name,
		Stress:     sc.Stress,
		SpaceSize:  p.Space().Size(),
		Genes:      len(p.Space().Params),
		Evaluated:  search.Evaluated,
		Infeasible: search.Infeasible,
		Front:      search.Front,
	}
	if len(search.Front) == 0 {
		return row, nil // Check reports it
	}
	row.Balanced = dse.BalancedPoint(search.Front)
	row.BalancedParams, err = p.Decode(row.Balanced.Config)
	if err != nil {
		return nil, err
	}
	row.ModelEnergy = units.Watts(row.Balanced.Objs[0])

	dur := cfg.SimDuration
	if dur == 0 {
		dur = sc.SimDuration
	}
	simCfg, err := p.SimConfig(row.BalancedParams, dur, sc.SimSeed)
	if err != nil {
		return nil, err
	}
	row.BlockArrivals = simCfg.Arrival == sim.ArrivalBlock
	for _, nc := range simCfg.Nodes {
		if nc.Arrival == sim.ArrivalBlock {
			row.BlockArrivals = true // a single bursty node breaks the Eq. 9 assumption too
		}
	}
	simRes, err := runSim(simCfg)
	if err != nil {
		return nil, err
	}
	powers := make([]float64, len(simRes.Nodes))
	for i, n := range simRes.Nodes {
		powers[i] = float64(n.Power.Total)
	}
	row.SimEnergy = units.Watts(core.Combine(powers, sc.Theta))
	row.ErrPct = numeric.RelErr(float64(row.ModelEnergy), float64(row.SimEnergy))
	row.Stable = simRes.Stable
	return row, nil
}

// starveAt samples the dense workload at one node count and counts the
// model-feasible share.
func starveAt(n int, cfg ScenarioSweepConfig) (StarvationRow, error) {
	sc := scenario.DenseGTS(n)
	sc.Name = fmt.Sprintf("dense-gts-%d", n)
	p, err := scenario.NewProblem(sc, cfg.Cal)
	if err != nil {
		return StarvationRow{}, err
	}
	eval := p.Evaluator()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
	row := StarvationRow{Nodes: n, Sampled: cfg.StarvationSamples}
	for i := 0; i < cfg.StarvationSamples; i++ {
		if _, err := eval.Evaluate(p.Space().Random(rng)); err == nil {
			row.Feasible++
		}
	}
	return row, nil
}

// Render writes the sweep tables.
func (r *ScenarioSweepResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Scenario sweep — one exploration + simulator cross-check per registered scenario\n")
	for _, row := range r.Rows {
		row.Render(w)
	}
	fmt.Fprintf(w, "\nGTS starvation sweep (dense workload, random sampling of the space):\n")
	fmt.Fprintf(w, "%-6s %-9s %s\n", "nodes", "sampled", "feasible")
	for _, s := range r.Starvation {
		fmt.Fprintf(w, "%-6d %-9d %.1f%%\n", s.Nodes, s.Sampled, s.FeasiblePct())
	}
}

// Check verifies every scenario row and the starvation cliff: workloads at
// or under the 7-GTS budget keep feasible configurations, workloads past
// it have none.
func (r *ScenarioSweepResult) Check() error {
	if len(r.Rows) == 0 {
		return fmt.Errorf("scenarios: nothing swept")
	}
	for _, row := range r.Rows {
		if err := row.Check(); err != nil {
			return err
		}
	}
	for _, s := range r.Starvation {
		switch {
		case s.Nodes <= 7 && s.Feasible == 0:
			return fmt.Errorf("scenarios: %d-node dense workload found no feasible configuration", s.Nodes)
		case s.Nodes > 7 && s.Feasible != 0:
			return fmt.Errorf("scenarios: %d-node workload cannot be feasible with 7 GTS slots, found %d",
				s.Nodes, s.Feasible)
		}
	}
	return nil
}

// WriteCSV emits every front point, each scenario's balanced pick, and the
// starvation sweep as one machine-readable table.
func (r *ScenarioSweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "kind", "energy_w", "quality", "delay_s", "nodes", "feasible_pct"}); err != nil {
		return err
	}
	point := func(name, kind string, objs []float64) error {
		return cw.Write([]string{name, kind, f(objs[0]), f(objs[1]), f(objs[2]), "", ""})
	}
	for _, row := range r.Rows {
		for _, p := range row.Front {
			if err := point(row.Name, "front", p.Objs); err != nil {
				return err
			}
		}
		if len(row.Front) > 0 {
			if err := point(row.Name, "balanced", row.Balanced.Objs); err != nil {
				return err
			}
		}
	}
	for _, s := range r.Starvation {
		rec := []string{"dense-gts-sweep", "starvation", "", "", "",
			strconv.Itoa(s.Nodes), f(s.FeasiblePct())}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
