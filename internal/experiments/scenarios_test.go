package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// sweepTestConfig keeps the harness fast enough for -race CI runs.
func sweepTestConfig(workers int) ScenarioSweepConfig {
	return ScenarioSweepConfig{
		PopulationSize:    16,
		Generations:       4,
		Seed:              11,
		SimDuration:       8,
		StarvationNodes:   []int{6, 7, 8},
		StarvationSamples: 50,
		Workers:           workers,
	}
}

func TestScenarioSweep(t *testing.T) {
	res, err := ScenarioSweep(sweepTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("swept only %d scenarios", len(res.Rows))
	}
	seen := map[string]bool{}
	for _, row := range res.Rows {
		seen[row.Name] = true
	}
	for _, want := range []string{"ecg-ward", "mixed-ward", "athletes", "dense-gts"} {
		if !seen[want] {
			t.Errorf("scenario %q missing from sweep", want)
		}
	}

	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "dense-gts") || !strings.Contains(out, "starvation") {
		t.Errorf("render missing sections:\n%s", out)
	}

	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < len(res.Rows)+len(res.Starvation)+1 {
		t.Errorf("CSV has %d lines for %d rows + %d starvation entries",
			len(lines), len(res.Rows), len(res.Starvation))
	}
	if !strings.HasPrefix(lines[0], "scenario,kind,energy_w") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
}

// TestScenarioSweepWorkerInvariance asserts the sweep is bit-identical
// at different worker counts — the PR-1 determinism contract extended to
// the scenario harness.
func TestScenarioSweepWorkerInvariance(t *testing.T) {
	seq, err := ScenarioSweep(sweepTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := ScenarioSweep(sweepTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("sweep results differ between 1 and 4 workers")
	}
}

func TestScenarioSweepUnknownScenario(t *testing.T) {
	cfg := sweepTestConfig(1)
	cfg.Names = []string{"no-such-scenario"}
	if _, err := ScenarioSweep(cfg); err == nil {
		t.Error("unknown scenario name accepted")
	}
}

func TestStarvationCliff(t *testing.T) {
	res, err := ScenarioSweep(sweepTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Starvation {
		if s.Nodes <= 7 && s.Feasible == 0 {
			t.Errorf("%d nodes: no feasible configurations sampled", s.Nodes)
		}
		if s.Nodes > 7 && s.Feasible > 0 {
			t.Errorf("%d nodes: %d feasible configurations past the 7-slot budget", s.Nodes, s.Feasible)
		}
	}
}
