package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"wsndse/internal/casestudy"
	"wsndse/internal/units"
)

// SpeedConfig parameterizes the evaluation-throughput comparison (§5.2).
type SpeedConfig struct {
	Cal *casestudy.Calibration
	// ModelEvals is the number of model evaluations to time (default
	// 20000).
	ModelEvals int
	// SimRuns and SimDuration define the simulation side: the paper's
	// Castalia runs took 5–10 minutes per configuration.
	SimRuns     int
	SimDuration units.Seconds
	Seed        int64
}

func (c SpeedConfig) withDefaults() SpeedConfig {
	if c.Cal == nil {
		c.Cal = casestudy.DefaultCalibration()
	}
	if c.ModelEvals == 0 {
		c.ModelEvals = 20000
	}
	if c.SimRuns == 0 {
		c.SimRuns = 3
	}
	if c.SimDuration == 0 {
		c.SimDuration = 60
	}
	if c.Seed == 0 {
		c.Seed = 3
	}
	return c
}

// SpeedResult reports both sides and the resulting ratio.
type SpeedResult struct {
	ModelEvalsPerSecond float64
	ModelEvalMean       time.Duration
	SimWallPerRun       time.Duration
	SimDuration         units.Seconds
	// Speedup is simulation wall-clock per configuration divided by
	// model wall-clock per configuration.
	Speedup float64
	// OrdersOfMagnitude is log10(Speedup), the unit the paper uses
	// ("up to 6 orders of magnitude").
	OrdersOfMagnitude float64
}

// Speed measures model evaluations per second against packet-level
// simulation wall-clock per configuration, using random feasible points.
func Speed(cfg SpeedConfig) (*SpeedResult, error) {
	cfg = cfg.withDefaults()
	problem := casestudy.NewProblem(cfg.Cal)
	eval := problem.Evaluator()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Pre-draw feasible configurations so the timed loop measures only
	// evaluation.
	const poolSize = 64
	pool := make([]struct {
		c      []int
		params casestudy.Params
	}, 0, poolSize)
	for len(pool) < poolSize {
		c := problem.Space().Random(rng)
		if _, err := eval.Evaluate(c); err != nil {
			continue
		}
		params, err := problem.Decode(c)
		if err != nil {
			return nil, err
		}
		pool = append(pool, struct {
			c      []int
			params casestudy.Params
		}{c, params})
	}

	start := time.Now()
	for i := 0; i < cfg.ModelEvals; i++ {
		if _, err := eval.Evaluate(pool[i%poolSize].c); err != nil {
			return nil, err
		}
	}
	modelWall := time.Since(start)

	var simWall time.Duration
	for i := 0; i < cfg.SimRuns; i++ {
		simCfg, err := pool[i%poolSize].params.SimConfig(cfg.Cal, cfg.SimDuration, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := runSim(simCfg); err != nil {
			return nil, err
		}
		simWall += time.Since(start)
	}

	res := &SpeedResult{
		ModelEvalMean: modelWall / time.Duration(cfg.ModelEvals),
		SimWallPerRun: simWall / time.Duration(cfg.SimRuns),
		SimDuration:   cfg.SimDuration,
	}
	res.ModelEvalsPerSecond = float64(cfg.ModelEvals) / modelWall.Seconds()
	if res.ModelEvalMean > 0 {
		res.Speedup = float64(res.SimWallPerRun) / float64(res.ModelEvalMean)
	}
	if res.Speedup > 0 {
		res.OrdersOfMagnitude = math.Log10(res.Speedup)
	}
	return res, nil
}

// Render writes the comparison.
func (r *SpeedResult) Render(w writer) {
	fmt.Fprintf(w, "Evaluation speed — analytical model vs packet-level simulation\n")
	fmt.Fprintf(w, "model:      %.0f evaluations/s (%.3gs each)\n",
		r.ModelEvalsPerSecond, r.ModelEvalMean.Seconds())
	fmt.Fprintf(w, "simulation: %.3gs wall-clock per %v-long configuration\n",
		r.SimWallPerRun.Seconds(), r.SimDuration)
	fmt.Fprintf(w, "speedup:    %.3g× (%.1f orders of magnitude)\n", r.Speedup, r.OrdersOfMagnitude)
	fmt.Fprintf(w, "paper:      ≈4800 evaluations/s vs 5–10 min per simulation (≈6 orders)\n")
}

// Check verifies the §5.2 claim with reproduction tolerances: the model
// clears the paper's ≈4800 evals/s and the gap spans orders of magnitude.
// Our packet-level simulator is itself several orders faster than
// Castalia (a few milliseconds per minute of simulated time versus the
// paper's 5–10 minutes of wall clock), so the measured ratio lands around
// 2–3 orders instead of 6; the structural asymmetry — model fast enough
// for DSE, simulation not — is the claim under test.
func (r *SpeedResult) Check() error {
	if r.ModelEvalsPerSecond < 4800 {
		return fmt.Errorf("speed: model runs %.0f evals/s, below the paper's 4800", r.ModelEvalsPerSecond)
	}
	if r.OrdersOfMagnitude < 1.5 {
		return fmt.Errorf("speed: only %.1f orders of magnitude between model and simulation",
			r.OrdersOfMagnitude)
	}
	return nil
}
