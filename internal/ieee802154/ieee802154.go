// Package ieee802154 provides the timing and frame-geometry constants of
// the IEEE 802.15.4-2006 standard (2.4 GHz O-QPSK PHY, beacon-enabled MAC)
// that both the analytical model and the packet-level simulator share.
//
// The paper's case study (§4.2) uses the beacon-enabled mode: the
// coordinator broadcasts a beacon every beacon interval BI, the active
// portion of the superframe lasts SD and is divided into 16 slots, and up
// to 7 of those slots can be granted to nodes as guaranteed time slots
// (GTSs) forming the contention-free period.
package ieee802154

import (
	"fmt"
	"math"

	"wsndse/internal/units"
)

// PHY constants for the 2.4 GHz band.
const (
	// SymbolRate is 62.5 ksymbol/s; each O-QPSK symbol carries 4 bits.
	SymbolRate    = 62500
	BitsPerSymbol = 4
	// BitRate is the on-air data rate: 250 kbit/s.
	BitRate units.BitsPerSecond = SymbolRate * BitsPerSymbol

	// SymbolDuration is 16 µs.
	SymbolDuration units.Seconds = 1.0 / SymbolRate
)

// MAC timing constants (all in symbols, per the standard).
const (
	ABaseSlotDuration       = 60                                      // symbols per slot at SO = 0
	ANumSuperframeSlots     = 16                                      // slots in the active portion
	ABaseSuperframeDuration = ABaseSlotDuration * ANumSuperframeSlots // 960 symbols = 15.36 ms
	ATurnaroundTimeSymbols  = 12                                      // RX↔TX turnaround
	AMinSIFSSymbols         = 12                                      // short inter-frame spacing
	AMinLIFSSymbols         = 40                                      // long inter-frame spacing
	AMaxSIFSFrameSize       = 18                                      // MPDUs above this use LIFS
	AUnitBackoffPeriod      = 20                                      // symbols per CSMA backoff unit
)

// Frame geometry in bytes. The MAC data overhead follows the paper's
// accounting (§4.2): 11 header bytes plus a 2-byte checksum per data frame,
// and a 4-byte acknowledgement.
const (
	PHYOverheadBytes  = 6                                    // 4 preamble + 1 SFD + 1 PHR
	MACHeaderBytes    = 11                                   // data-frame MHR as counted by the paper
	FCSBytes          = 2                                    // frame check sequence
	MACOverheadBytes  = MACHeaderBytes + FCSBytes            // the paper's "13 bytes"
	AckBytes          = 4                                    // acknowledgement MPDU as counted by the paper
	AMaxPHYPacketSize = 127                                  // maximum MPDU size
	MaxDataPayload    = AMaxPHYPacketSize - MACOverheadBytes // 114 bytes

	// Beacon geometry: a fixed MHR+payload portion plus one descriptor
	// per allocated GTS.
	BeaconBaseBytes    = 15
	GTSDescriptorBytes = 3
)

// MaxGTS is the maximum number of guaranteed time slots per superframe.
const MaxGTS = 7

// MaxOrder bounds BO and SO (values above 14 disable beaconing, which the
// beacon-enabled mode does not use).
const MaxOrder = 14

// CAPSlots is the minimum number of slots the standard reserves for the
// contention access period: 16 slots minus the at-most-7 GTSs.
const CAPSlots = ANumSuperframeSlots - MaxGTS

// Symbols converts a symbol count to seconds.
func Symbols(n int) units.Seconds {
	return units.Seconds(float64(n) / SymbolRate)
}

// AirTime is the on-air duration of `bytes` bytes at the PHY bit rate.
func AirTime(bytes float64) units.Seconds {
	return units.Seconds(bytes * 8 / float64(BitRate))
}

// DataFrameAirBytes is the total on-air size of a data frame carrying
// `payload` MAC payload bytes: payload + MAC overhead + PHY overhead.
func DataFrameAirBytes(payload int) int {
	return payload + MACOverheadBytes + PHYOverheadBytes
}

// DataFrameAirTime is the on-air duration of a data frame with the given
// MAC payload size.
func DataFrameAirTime(payload int) units.Seconds {
	return AirTime(float64(DataFrameAirBytes(payload)))
}

// AckAirTime is the on-air duration of an acknowledgement frame (MPDU plus
// PHY overhead).
func AckAirTime() units.Seconds {
	return AirTime(float64(AckBytes + PHYOverheadBytes))
}

// BeaconBytes is the MPDU size of a beacon announcing gtsCount GTS
// descriptors. This is the L_beacon of the paper's control-overhead term.
func BeaconBytes(gtsCount int) int {
	return BeaconBaseBytes + gtsCount*GTSDescriptorBytes
}

// BeaconAirTime is the on-air duration of such a beacon.
func BeaconAirTime(gtsCount int) units.Seconds {
	return AirTime(float64(BeaconBytes(gtsCount) + PHYOverheadBytes))
}

// IFS returns the inter-frame spacing required after an MPDU of the given
// size: short frames use SIFS, long frames LIFS.
func IFS(mpduBytes int) units.Seconds {
	if mpduBytes <= AMaxSIFSFrameSize {
		return Symbols(AMinSIFSSymbols)
	}
	return Symbols(AMinLIFSSymbols)
}

// Turnaround is the RX↔TX switching time.
func Turnaround() units.Seconds { return Symbols(ATurnaroundTimeSymbols) }

// SuperframeConfig is the (BO, SO) pair of the beacon-enabled MAC — the
// BCO/SFO parameters of the paper's χ_mac.
type SuperframeConfig struct {
	BeaconOrder     int // BO: beacon interval exponent
	SuperframeOrder int // SO: active-portion exponent
}

// SuperframeWithGap decodes the design spaces' relative SFO gene:
// SFO = BO − gap, floored at 0 so every index combination is structurally
// valid. Both the casestudy and scenario problems (and their compiled
// pipelines) share this one decode rule.
func SuperframeWithGap(bo, gap int) SuperframeConfig {
	so := bo - gap
	if so < 0 {
		so = 0
	}
	return SuperframeConfig{BeaconOrder: bo, SuperframeOrder: so}
}

// Validate enforces 0 ≤ SO ≤ BO ≤ 14.
func (c SuperframeConfig) Validate() error {
	if c.SuperframeOrder < 0 || c.BeaconOrder > MaxOrder || c.SuperframeOrder > c.BeaconOrder {
		return fmt.Errorf("ieee802154: invalid superframe config BO=%d SO=%d (need 0 ≤ SO ≤ BO ≤ %d)",
			c.BeaconOrder, c.SuperframeOrder, MaxOrder)
	}
	return nil
}

// BeaconInterval returns BI = aBaseSuperframeDuration · 2^BO.
func (c SuperframeConfig) BeaconInterval() units.Seconds {
	return Symbols(ABaseSuperframeDuration << uint(c.BeaconOrder))
}

// SuperframeDuration returns SD = aBaseSuperframeDuration · 2^SO (the
// active portion).
func (c SuperframeConfig) SuperframeDuration() units.Seconds {
	return Symbols(ABaseSuperframeDuration << uint(c.SuperframeOrder))
}

// SlotDuration returns SD/16, one superframe slot — the paper's base time
// unit δ before per-second normalization.
func (c SuperframeConfig) SlotDuration() units.Seconds {
	return c.SuperframeDuration() / ANumSuperframeSlots
}

// InactiveDuration returns BI − SD, the inactive portion of each beacon
// interval during which every device may sleep.
func (c SuperframeConfig) InactiveDuration() units.Seconds {
	return c.BeaconInterval() - c.SuperframeDuration()
}

// DutyCycle returns SD/BI, the fraction of time the network is active.
func (c SuperframeConfig) DutyCycle() float64 {
	return float64(c.SuperframeDuration()) / float64(c.BeaconInterval())
}

// GTSCapacityPerSecond returns the paper's GTS budget Σ Δtx ≤ 7/16 · SD/BI
// expressed per second of wall-clock time: the at-most-7 GTS slots of each
// superframe, amortized over the beacon interval.
func (c SuperframeConfig) GTSCapacityPerSecond() float64 {
	return float64(MaxGTS) / ANumSuperframeSlots * c.DutyCycle()
}

// SlotsPerSecond returns how much wall-clock time one GTS slot contributes
// per second: (SD/16)/BI. Transmission intervals Δtx are integer multiples
// of this quantum.
func (c SuperframeConfig) SlotPerSecond() float64 {
	return float64(c.SlotDuration()) / float64(c.BeaconInterval())
}

// String renders the configuration compactly.
func (c SuperframeConfig) String() string {
	return fmt.Sprintf("BO=%d/SO=%d (BI=%v, SD=%v)",
		c.BeaconOrder, c.SuperframeOrder, c.BeaconInterval(), c.SuperframeDuration())
}

// PacketService is the full channel time one data frame occupies inside a
// GTS: RX→TX turnaround, the frame itself, the acknowledgement, and the
// inter-frame spacing.
func PacketService(payloadBytes int) units.Seconds {
	return Turnaround() + DataFrameAirTime(payloadBytes) + AckAirTime() +
		IFS(payloadBytes+MACOverheadBytes)
}

// GTSDemandPerSecond is T_tx(φ_out + Ω) for the GTS MAC: the channel time
// per second needed to carry a φ_out B/s stream in L_payload-byte frames,
// including PHY encapsulation and per-packet costs. This is the
// physical-radio term of the model's Eq. 1.
func GTSDemandPerSecond(payloadBytes int, phiOut float64) float64 {
	if phiOut <= 0 {
		return 0
	}
	packets := phiOut / float64(payloadBytes)
	macBytes := phiOut * (1 + float64(MACOverheadBytes)/float64(payloadBytes))
	air := float64(AirTime(macBytes + packets*float64(PHYOverheadBytes)))
	perPacket := float64(Turnaround()) + float64(AckAirTime()) +
		float64(IFS(payloadBytes+MACOverheadBytes))
	return air + packets*perPacket
}

// GTSSlotsFor sizes a node's guaranteed time slots: the smallest k
// satisfying both the average-rate demand of Eq. 1 (k·δ ≥ T_tx) and the
// whole-packet constraint — a window serves only complete packet services,
// so it must fit ⌈packets-per-superframe⌉ of them. The second constraint
// is what a divisible-time model misses: without it, fractional service
// capacity is silently lost at every window boundary and queues diverge.
func GTSSlotsFor(sf SuperframeConfig, payloadBytes int, phiOut float64) int {
	if phiOut <= 0 {
		return 0
	}
	slotPS := sf.SlotPerSecond()
	k := int(math.Ceil(GTSDemandPerSecond(payloadBytes, phiOut)/slotPS - 1e-12))
	if k < 1 {
		k = 1
	}
	service := float64(PacketService(payloadBytes))
	slotLen := float64(sf.SlotDuration())
	packetsPerSF := phiOut * float64(sf.BeaconInterval()) / float64(payloadBytes)
	req := int(math.Ceil(packetsPerSF - 1e-9))
	if req < 1 {
		req = 1
	}
	if minK := int(math.Ceil(float64(req)*service/slotLen - 1e-12)); k < minK {
		k = minK
	}
	return k
}
