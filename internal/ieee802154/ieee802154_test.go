package ieee802154

import (
	"math"
	"testing"

	"wsndse/internal/units"
)

func TestBaseTimings(t *testing.T) {
	// The paper's Figure 2 annotates SD = 15.36 ms · 2^SFO and
	// BI = 15.36 ms · 2^BCO.
	base := SuperframeConfig{BeaconOrder: 0, SuperframeOrder: 0}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := base.BeaconInterval(); math.Abs(float64(got)-15.36e-3) > 1e-12 {
		t.Errorf("BI at BO=0 = %v, want 15.36ms", got)
	}
	if got := base.SuperframeDuration(); math.Abs(float64(got)-15.36e-3) > 1e-12 {
		t.Errorf("SD at SO=0 = %v, want 15.36ms", got)
	}
	c := SuperframeConfig{BeaconOrder: 3, SuperframeOrder: 1}
	if got, want := float64(c.BeaconInterval()), 15.36e-3*8; math.Abs(got-want) > 1e-12 {
		t.Errorf("BI at BO=3 = %g, want %g", got, want)
	}
	if got, want := float64(c.SuperframeDuration()), 15.36e-3*2; math.Abs(got-want) > 1e-12 {
		t.Errorf("SD at SO=1 = %g, want %g", got, want)
	}
	if got, want := float64(c.SlotDuration()), 15.36e-3*2/16; math.Abs(got-want) > 1e-15 {
		t.Errorf("slot at SO=1 = %g, want %g", got, want)
	}
	if got, want := float64(c.InactiveDuration()), 15.36e-3*6; math.Abs(got-want) > 1e-12 {
		t.Errorf("inactive = %g, want %g", got, want)
	}
	if got, want := c.DutyCycle(), 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("duty cycle = %g, want %g", got, want)
	}
}

func TestValidate(t *testing.T) {
	bad := []SuperframeConfig{
		{BeaconOrder: 2, SuperframeOrder: 3},   // SO > BO
		{BeaconOrder: 15, SuperframeOrder: 0},  // BO > 14
		{BeaconOrder: 3, SuperframeOrder: -1},  // negative
		{BeaconOrder: -1, SuperframeOrder: -1}, // negative
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	good := []SuperframeConfig{
		{0, 0}, {14, 14}, {14, 0}, {5, 3},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("config %+v should be valid: %v", c, err)
		}
	}
}

func TestSymbolArithmetic(t *testing.T) {
	if got := Symbols(62500); got != 1 {
		t.Errorf("62500 symbols = %v, want 1s", got)
	}
	if got := float64(SymbolDuration); math.Abs(got-16e-6) > 1e-18 {
		t.Errorf("symbol duration = %g, want 16µs", got)
	}
	if BitRate != 250000 {
		t.Errorf("bit rate = %v, want 250kbit/s", BitRate)
	}
	// aBaseSuperframeDuration = 960 symbols = 15.36 ms.
	if got := float64(Symbols(ABaseSuperframeDuration)); math.Abs(got-15.36e-3) > 1e-12 {
		t.Errorf("base superframe = %g, want 15.36ms", got)
	}
}

func TestFrameGeometry(t *testing.T) {
	// The paper counts 13 bytes of MAC overhead (11 header + 2 FCS) and
	// a 4-byte acknowledgement.
	if MACOverheadBytes != 13 {
		t.Errorf("MAC overhead = %d, want 13", MACOverheadBytes)
	}
	if AckBytes != 4 {
		t.Errorf("ack = %d, want 4", AckBytes)
	}
	if MaxDataPayload != 114 {
		t.Errorf("max payload = %d, want 114", MaxDataPayload)
	}
	if got := DataFrameAirBytes(100); got != 100+13+6 {
		t.Errorf("air bytes(100) = %d, want 119", got)
	}
	// 119 bytes at 250 kbit/s = 3.808 ms.
	if got := float64(DataFrameAirTime(100)); math.Abs(got-119.0*8/250000) > 1e-15 {
		t.Errorf("air time = %g", got)
	}
	if got := float64(AckAirTime()); math.Abs(got-10.0*8/250000) > 1e-15 {
		t.Errorf("ack air time = %g, want 320µs", got)
	}
}

func TestBeaconGeometry(t *testing.T) {
	if got := BeaconBytes(0); got != BeaconBaseBytes {
		t.Errorf("beacon(0 GTS) = %d", got)
	}
	if got := BeaconBytes(6); got != BeaconBaseBytes+18 {
		t.Errorf("beacon(6 GTS) = %d, want %d", got, BeaconBaseBytes+18)
	}
	if BeaconAirTime(6) <= BeaconAirTime(0) {
		t.Error("beacon air time should grow with GTS count")
	}
}

func TestIFS(t *testing.T) {
	short := IFS(18)
	long := IFS(19)
	if short != Symbols(AMinSIFSSymbols) {
		t.Errorf("SIFS = %v", short)
	}
	if long != Symbols(AMinLIFSSymbols) {
		t.Errorf("LIFS = %v", long)
	}
	if long <= short {
		t.Error("LIFS must exceed SIFS")
	}
	if got := float64(Turnaround()); math.Abs(got-192e-6) > 1e-12 {
		t.Errorf("turnaround = %g, want 192µs", got)
	}
}

func TestGTSCapacity(t *testing.T) {
	// The paper's constraint: Σ Δtx ≤ 7/16 · SD/BI.
	c := SuperframeConfig{BeaconOrder: 2, SuperframeOrder: 1}
	want := 7.0 / 16 * float64(c.SuperframeDuration()) / float64(c.BeaconInterval())
	if got := c.GTSCapacityPerSecond(); math.Abs(got-want) > 1e-15 {
		t.Errorf("GTS capacity = %g, want %g", got, want)
	}
	// The per-second slot quantum times 7 equals the capacity.
	if got := 7 * c.SlotPerSecond(); math.Abs(got-want) > 1e-15 {
		t.Errorf("7 slots/s = %g, want %g", got, want)
	}
}

func TestAirTimeLinear(t *testing.T) {
	a := AirTime(10)
	b := AirTime(20)
	if math.Abs(float64(b)-2*float64(a)) > 1e-18 {
		t.Error("air time must be linear in bytes")
	}
	var zero units.Seconds
	if AirTime(0) != zero {
		t.Error("0 bytes take 0 time")
	}
}

func TestStringer(t *testing.T) {
	s := SuperframeConfig{BeaconOrder: 6, SuperframeOrder: 2}.String()
	if s == "" {
		t.Error("empty String()")
	}
}
