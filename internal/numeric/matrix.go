package numeric

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64. It is deliberately small:
// the library only needs it for normal-equation solves (polynomial fits)
// and for the orthogonal matching pursuit decoder in the compressed-sensing
// substrate.
type Matrix struct {
	Rows, Cols int
	data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("numeric: NewMatrix(%d, %d): negative dimension", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.data, m.data)
	return c
}

// MulVec computes m·x for a vector x of length Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("numeric: MulVec: len(x)=%d, want %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// TMulVec computes mᵀ·x for a vector x of length Rows.
func (m *Matrix) TMulVec(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("numeric: TMulVec: len(x)=%d, want %d", len(x), m.Rows))
	}
	y := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y
}

// Solve solves m·x = b in place of a copy using Gaussian elimination with
// partial pivoting. m must be square. It returns ErrSingular when a pivot
// underflows.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	n := m.Rows
	if m.Cols != n {
		return nil, fmt.Errorf("numeric: Solve: matrix is %dx%d, want square", m.Rows, m.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("numeric: Solve: len(b)=%d, want %d", len(b), n)
	}
	a := m.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest magnitude in
		// this column at or below the diagonal.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			pr, cr := a.Row(pivot), a.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			rr, cr := a.Row(r), a.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := a.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// LeastSquares solves the overdetermined system m·x ≈ b (Rows ≥ Cols) by
// the normal equations mᵀm x = mᵀb.
func (m *Matrix) LeastSquares(b []float64) ([]float64, error) {
	if len(b) != m.Rows {
		return nil, fmt.Errorf("numeric: LeastSquares: len(b)=%d, want %d", len(b), m.Rows)
	}
	n := m.Cols
	ata := NewMatrix(n, n)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := 0; j < n; j++ {
			rj := row[j]
			if rj == 0 {
				continue
			}
			for k := j; k < n; k++ {
				ata.data[j*n+k] += rj * row[k]
			}
		}
	}
	// Mirror the upper triangle.
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			ata.data[k*n+j] = ata.data[j*n+k]
		}
	}
	atb := m.TMulVec(b)
	return ata.Solve(atb)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("numeric: Dot: len %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }
