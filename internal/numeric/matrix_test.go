package numeric

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 5)
	m.Set(1, 1, -2)
	if m.At(0, 0) != 1 || m.At(0, 2) != 5 || m.At(1, 1) != -2 {
		t.Fatal("At/Set round trip failed")
	}
	row := m.Row(1)
	if len(row) != 3 || row[1] != -2 {
		t.Fatalf("Row(1) = %v", row)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone must not share storage")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", y)
	}
	yt := m.TMulVec([]float64{1, 1})
	if yt[0] != 4 || yt[1] != 6 {
		t.Errorf("TMulVec = %v, want [4 6]", yt)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x − y = 1  →  x = 2, y = 1
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, -1)
	x, err := m.Solve([]float64{5, 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("Solve = %v, want [2 1]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	x, err := m.Solve([]float64{3, 4})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(x[0]-4) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("Solve = %v, want [4 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := m.Solve([]float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("singular system: err = %v, want ErrSingular", err)
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
			// Diagonal dominance keeps the system comfortably regular.
			m.Set(i, i, m.At(i, i)+float64(n)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := m.MulVec(want)
		got, err := m.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// 20 noisy observations of y = 1 + 2a − b.
	rng := rand.New(rand.NewSource(5))
	m := NewMatrix(20, 3)
	b := make([]float64, 20)
	for i := 0; i < 20; i++ {
		a1, a2 := rng.Float64(), rng.Float64()
		m.Set(i, 0, 1)
		m.Set(i, 1, a1)
		m.Set(i, 2, a2)
		b[i] = 1 + 2*a1 - a2 + (rng.Float64()-0.5)*1e-9
	}
	x, err := m.LeastSquares(b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	want := []float64{1, 2, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.Solve([]float64{1, 2}); err == nil {
		t.Error("non-square Solve: want error")
	}
	sq := NewMatrix(2, 2)
	if _, err := sq.Solve([]float64{1}); err == nil {
		t.Error("wrong b length: want error")
	}
	if _, err := sq.LeastSquares([]float64{1}); err == nil {
		t.Error("wrong b length in LeastSquares: want error")
	}
}

func TestDotNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
}

func TestMulVecPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MulVec with wrong length should panic")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1})
}
