// Package numeric provides the small numerical toolkit the library needs:
// polynomial evaluation and least-squares fitting, dense linear system
// solving, and descriptive statistics.
//
// The paper estimates the application quality metric (PRD) with fifth-order
// polynomials fit to measured data (§4.3); PolyFit reproduces that
// calibration step. Everything here is dependency-free and deterministic.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// Poly is a polynomial stored as coefficients in ascending-degree order:
// Poly{a0, a1, a2} represents a0 + a1·x + a2·x².
type Poly []float64

// Eval evaluates the polynomial at x using Horner's scheme.
func (p Poly) Eval(x float64) float64 {
	y := 0.0
	for i := len(p) - 1; i >= 0; i-- {
		y = y*x + p[i]
	}
	return y
}

// Degree returns the degree of the polynomial (len-1), or -1 for an empty
// polynomial.
func (p Poly) Degree() int { return len(p) - 1 }

// Derivative returns the first derivative of p.
func (p Poly) Derivative() Poly {
	if len(p) <= 1 {
		return Poly{0}
	}
	d := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		d[i-1] = float64(i) * p[i]
	}
	return d
}

// String renders the polynomial in human-readable ascending form.
func (p Poly) String() string {
	if len(p) == 0 {
		return "0"
	}
	s := ""
	for i, c := range p {
		if i == 0 {
			s = fmt.Sprintf("%.6g", c)
			continue
		}
		s += fmt.Sprintf(" %+.6g·x^%d", c, i)
	}
	return s
}

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("numeric: singular system")

// PolyFit computes the least-squares polynomial of the given degree through
// the points (xs[i], ys[i]). It solves the normal equations VᵀV a = Vᵀy
// with Gaussian elimination and partial pivoting, which is well-conditioned
// enough for the low degrees (≤ 8) and narrow abscissa ranges used here.
//
// It returns an error when fewer than degree+1 points are supplied or when
// the system is singular (for example, all xs identical).
func PolyFit(xs, ys []float64, degree int) (Poly, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("numeric: PolyFit: len(xs)=%d len(ys)=%d", len(xs), len(ys))
	}
	if degree < 0 {
		return nil, fmt.Errorf("numeric: PolyFit: negative degree %d", degree)
	}
	n := degree + 1
	if len(xs) < n {
		return nil, fmt.Errorf("numeric: PolyFit: need at least %d points for degree %d, got %d", n, degree, len(xs))
	}
	// Accumulate the normal equations directly: A[i][j] = Σ x^(i+j),
	// b[i] = Σ y·x^i. Powers up to 2·degree are required.
	pow := make([]float64, 2*degree+1)
	b := make([]float64, n)
	a := NewMatrix(n, n)
	for k := range xs {
		x, y := xs[k], ys[k]
		xp := 1.0
		for i := range pow {
			pow[i] += xp
			if i < n {
				b[i] += y * xp
			}
			xp *= x
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, pow[i+j])
		}
	}
	coef, err := a.Solve(b)
	if err != nil {
		return nil, err
	}
	return Poly(coef), nil
}

// PolyFitResidual returns the root-mean-square residual of the fit p over
// the points (xs, ys). Useful for reporting calibration quality.
func PolyFitResidual(p Poly, xs, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var ss float64
	for i := range xs {
		d := ys[i] - p.Eval(xs[i])
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}
