package numeric

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPolyEval(t *testing.T) {
	p := Poly{1, 2, 3} // 1 + 2x + 3x²
	cases := []struct{ x, want float64 }{
		{0, 1},
		{1, 6},
		{2, 17},
		{-1, 2},
	}
	for _, c := range cases {
		if got := p.Eval(c.x); got != c.want {
			t.Errorf("Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestPolyEvalEmpty(t *testing.T) {
	if got := (Poly{}).Eval(3); got != 0 {
		t.Errorf("empty poly eval = %g, want 0", got)
	}
}

func TestPolyDerivative(t *testing.T) {
	p := Poly{5, 3, 2} // 5 + 3x + 2x² → 3 + 4x
	d := p.Derivative()
	if len(d) != 2 || d[0] != 3 || d[1] != 4 {
		t.Errorf("Derivative = %v, want [3 4]", d)
	}
	if got := (Poly{7}).Derivative(); len(got) != 1 || got[0] != 0 {
		t.Errorf("constant derivative = %v, want [0]", got)
	}
}

func TestPolyFitExact(t *testing.T) {
	// Fitting points generated from a cubic with degree 3 must recover it.
	want := Poly{0.5, -2, 0, 1.25}
	xs := Linspace(-2, 2, 9)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = want.Eval(x)
	}
	got, err := PolyFit(xs, ys, 3)
	if err != nil {
		t.Fatalf("PolyFit: %v", err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("coef[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestPolyFitRecoversPolynomials is the property-based version: a random
// polynomial of degree ≤ 5 sampled at enough distinct points is recovered
// by a fit of matching degree.
func TestPolyFitRecoversPolynomials(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		deg := r.Intn(6)
		want := make(Poly, deg+1)
		for i := range want {
			want[i] = r.Float64()*4 - 2
		}
		xs := Linspace(0.1, 0.9, deg+4)
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = want.Eval(x)
		}
		got, err := PolyFit(xs, ys, deg)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("mismatched lengths: want error")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, 2); err == nil {
		t.Error("too few points: want error")
	}
	if _, err := PolyFit([]float64{1, 2, 3}, []float64{1, 2, 3}, -1); err == nil {
		t.Error("negative degree: want error")
	}
	// All xs identical → singular normal equations for degree ≥ 1.
	if _, err := PolyFit([]float64{2, 2, 2}, []float64{1, 2, 3}, 1); err == nil {
		t.Error("degenerate abscissa: want error")
	}
}

func TestPolyFitLeastSquaresResidual(t *testing.T) {
	// Noisy line: the fit should pass near the data, and residual should
	// be reported.
	xs := Linspace(0, 1, 21)
	ys := make([]float64, len(xs))
	rng := rand.New(rand.NewSource(3))
	for i, x := range xs {
		ys[i] = 2 + 3*x + (rng.Float64()-0.5)*1e-2
	}
	p, err := PolyFit(xs, ys, 1)
	if err != nil {
		t.Fatalf("PolyFit: %v", err)
	}
	if math.Abs(p[0]-2) > 0.05 || math.Abs(p[1]-3) > 0.05 {
		t.Errorf("fit = %v, want near [2 3]", p)
	}
	res := PolyFitResidual(p, xs, ys)
	if res < 0 || res > 1e-2 {
		t.Errorf("residual = %g, want small positive", res)
	}
	if got := PolyFitResidual(p, nil, nil); got != 0 {
		t.Errorf("empty residual = %g, want 0", got)
	}
}

func TestPolyString(t *testing.T) {
	if got := (Poly{}).String(); got != "0" {
		t.Errorf("empty poly string = %q", got)
	}
	if got := (Poly{1, -2}).String(); got != "1 -2·x^1" {
		t.Errorf("poly string = %q", got)
	}
}
