package numeric

import (
	"math"
	"sort"
)

// Sqrt12 is √12, the divisor relating a uniform quantization step to its
// RMS error (step/√12).
const Sqrt12 = 3.4641016151377544

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// SampleStdDev returns the sample standard deviation (Bessel-corrected,
// divisor N−1) of xs. This is the dispersion term the paper uses in the
// network-level metric combinator (Eq. 8). It returns 0 for fewer than two
// samples.
func SampleStdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// MeanStdDev returns the mean and the Bessel-corrected sample standard
// deviation of xs in a single pass — the fused form of Mean + SampleStdDev
// that the Eq. 8 combinator runs on its hot path. The mean accumulates as a
// plain sum, so it is bit-identical to Mean; the dispersion uses Welford's
// update, whose rounding may differ from the two-pass SampleStdDev by a few
// ULPs (it is at least as stable). Fewer than two samples yield a zero
// standard deviation, and an empty slice a zero mean, matching the two-pass
// helpers.
func MeanStdDev(xs []float64) (mean, sd float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	var sum, m, m2 float64
	for i, x := range xs {
		sum += x
		d := x - m
		m += d / float64(i+1)
		m2 += d * (x - m)
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, 0
	}
	if m2 < 0 {
		m2 = 0 // rounding can drive the accumulator epsilon-negative
	}
	return mean, math.Sqrt(m2 / float64(n-1))
}

// MinMax returns the smallest and largest elements of xs. It panics on an
// empty slice, which is always a programming error here.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("numeric: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RelErr returns |got−want| / |want| as a percentage. When want is zero it
// returns 0 if got is also zero and +Inf otherwise; callers compare against
// reference values that are never zero in practice.
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want) * 100
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("numeric: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
