package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %g, want 4", got)
	}
}

func TestSampleStdDev(t *testing.T) {
	if got := SampleStdDev([]float64{5}); got != 0 {
		t.Errorf("single sample stddev = %g, want 0", got)
	}
	// Known value: {2, 4, 4, 4, 5, 5, 7, 9} has sample stddev ≈ 2.138.
	got := SampleStdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("stddev = %g, want ≈2.138", got)
	}
}

func TestMeanStdDevMatchesTwoPass(t *testing.T) {
	// The fused helper must agree with the two-pass Mean + SampleStdDev
	// form: the mean bit-identically (it accumulates the same plain sum),
	// the dispersion within Welford-vs-two-pass rounding.
	cases := [][]float64{
		nil,
		{5},
		{2, 4, 4, 4, 5, 5, 7, 9},
		{1e-9, 2e-9, 3e-9},
		{1e6, 1e6 + 1, 1e6 + 2, 1e6 - 3},
		{-3.5, 0, 3.5},
	}
	for _, xs := range cases {
		mean, sd := MeanStdDev(xs)
		if want := Mean(xs); mean != want {
			t.Errorf("MeanStdDev(%v) mean = %g, want %g (bit-identical)", xs, mean, want)
		}
		want := SampleStdDev(xs)
		if diff := math.Abs(sd - want); diff > 1e-12*math.Max(1, want) {
			t.Errorf("MeanStdDev(%v) sd = %g, want %g (diff %g)", xs, sd, want, diff)
		}
	}
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		mean, sd := MeanStdDev(xs)
		if mean != Mean(xs) {
			return false
		}
		want := SampleStdDev(xs)
		return sd >= 0 && math.Abs(sd-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleStdDevNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		return SampleStdDev(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%g, %g), want (-1, 7)", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(empty) should panic")
		}
	}()
	MinMax(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %g", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 25); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("interpolated percentile = %g, want 2.5", got)
	}
	// Percentile must not reorder its input.
	unsorted := []float64{9, 1, 5}
	Percentile(unsorted, 50)
	if unsorted[0] != 9 || unsorted[1] != 1 || unsorted[2] != 5 {
		t.Error("Percentile modified its input")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(101, 100); math.Abs(got-1) > 1e-12 {
		t.Errorf("RelErr = %g, want 1", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Errorf("RelErr(0,0) = %g, want 0", got)
	}
	if got := RelErr(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelErr(1,0) = %g, want +Inf", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp high = %g", got)
	}
	if got := Clamp(-2, 0, 3); got != 0 {
		t.Errorf("Clamp low = %g", got)
	}
	if got := Clamp(1.5, 0, 3); got != 1.5 {
		t.Errorf("Clamp inside = %g", got)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Errorf("Linspace[%d] = %g, want %g", i, xs[i], want[i])
		}
	}
	if xs[len(xs)-1] != 1 {
		t.Error("Linspace endpoint must be exact")
	}
	defer func() {
		if recover() == nil {
			t.Error("Linspace(n<2) should panic")
		}
	}()
	Linspace(0, 1, 1)
}
