package obs

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// BenchmarkObsSampling is the cost of one steady-state telemetry sample
// (schema already written) at the service's field counts — the price a
// search boundary pays when its sample is due. Allocations must be zero;
// the alloc gate TestObsWriterZeroAllocs pins that independently.
func BenchmarkObsSampling(b *testing.B) {
	for _, nfields := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("fields%d", nfields), func(b *testing.B) {
			fields := make([]string, nfields)
			vals := make([]int64, nfields)
			for i := range fields {
				fields[i] = fmt.Sprintf("metric_%02d", i)
			}
			w := NewWriter(io.Discard)
			if err := w.WriteSample(fields, vals); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				for i := range vals {
					vals[i] += int64(i & 3)
				}
				if err := w.WriteSample(fields, vals); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(w.Bytes())/float64(w.Samples()), "bytes/sample")
			}
		})
	}
}

// BenchmarkObsDecode is the read side: decoding a stream of typical
// service samples, the work wsn-stats and /v1/jobs/{id}/stats do.
func BenchmarkObsDecode(b *testing.B) {
	fields := make([]string, 16)
	vals := make([]int64, 16)
	for i := range fields {
		fields[i] = fmt.Sprintf("metric_%02d", i)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for s := 0; s < 1024; s++ {
		for i := range vals {
			vals[i] += int64(i)
		}
		if err := w.WriteSample(fields, vals); err != nil {
			b.Fatal(err)
		}
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		samples, truncated, err := ReadAll(bytes.NewReader(data))
		if err != nil || truncated || len(samples) != 1024 {
			b.Fatalf("decode: %d samples, truncated=%v, err=%v", len(samples), truncated, err)
		}
	}
}
