package obs

import (
	"bytes"
	"testing"
)

// FuzzObsDecode throws arbitrary bytes at the reader. The decoder must
// never panic, never loop, and — when the input happens to decode — the
// decoded samples must re-encode into a stream that decodes to the same
// values (decode∘encode∘decode is the identity on whatever survived).
func FuzzObsDecode(f *testing.F) {
	// Seed with a healthy stream, a schema change, and a torn tail.
	fields := []string{"ts", "step", "evals"}
	var healthy bytes.Buffer
	w := NewWriter(&healthy)
	_ = w.WriteSample(fields, []int64{1000, 1, 64})
	_ = w.WriteSample(fields, []int64{1250, 2, 128})
	_ = w.WriteSample([]string{"ts", "round"}, []int64{1500, 1})
	f.Add(healthy.Bytes())
	f.Add(healthy.Bytes()[:len(healthy.Bytes())-3])
	f.Add([]byte(Magic))
	f.Add([]byte("garbage that is not a stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		samples, _, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			if err != ErrBadMagic {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
		// Re-encode what decoded and decode again: the values must agree.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, s := range samples {
			if err := w.WriteSample(s.Fields, s.Values); err != nil {
				t.Fatalf("re-encoding decoded sample: %v", err)
			}
		}
		again, truncated, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil || truncated {
			t.Fatalf("re-decode: err=%v truncated=%v", err, truncated)
		}
		if len(again) != len(samples) {
			t.Fatalf("re-decode kept %d/%d samples", len(again), len(samples))
		}
		for i := range samples {
			for j := range samples[i].Values {
				if samples[i].Values[j] != again[i].Values[j] ||
					samples[i].Fields[j] != again[i].Fields[j] {
					t.Fatalf("sample %d field %d drifted through re-encode", i, j)
				}
			}
		}
	})
}
