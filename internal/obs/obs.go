// Package obs is the service's telemetry wire format: a compact,
// append-only binary time series in the style of MongoDB/Viam FTDC
// ("full-time diagnostic data capture"), written per job at search
// boundaries and decoded by GET /v1/jobs/{id}/stats, cmd/wsn-stats and
// offline tooling. The sampling cadence — what a boundary costs, how
// the rate limit bounds file growth, which columns the service writes —
// is the service layer's contract; see internal/service's package doc.
//
// # Format
//
// A stream is the 8-byte magic "WSNOBS1\n" followed by length-prefixed,
// checksummed records:
//
//	record  := kind(1 byte) | uvarint(len(payload)) | payload | crc32c(payload, 4 bytes LE)
//	kind 'S' := schema record: uvarint(nfields), then per field uvarint(len(name)) | name
//	kind 'D' := sample record: nfields zigzag-varint deltas, one per schema field
//
// Every sample is delta-encoded against the previous sample under the
// same schema (the first sample after a schema record deltas against
// zero), so a counter that grows slowly and a gauge that barely moves
// both cost one or two bytes per field instead of eight. A schema record
// resets the delta base; writers emit one whenever the field set
// changes (schema-diffing), so one stream can carry the plain-job and
// island-job field sets back to back.
//
// Values are int64 throughout — FTDC's trick: delta-of-integers
// compresses, delta-of-floats does not. Rates and hypervolumes ride as
// fixed-point integers (see the x1000/x1e6 field-name suffixes the
// service uses).
//
// # Torn tails
//
// The stream is append-only and crash-tolerant the same way the result
// store's index.jsonl is: a process killed mid-write leaves a truncated
// or checksum-failing final record, and the reader treats the first
// malformed record as end of stream — every intact sample before it
// decodes normally, and Reader.Truncated reports that a tail was
// dropped. Nothing before the tear is ever lost, because records hit the
// file in one Write each.
package obs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic opens every stream. The trailing newline makes `head -c8` output
// readable and catches CRLF-mangling transports the same way PNG's magic
// does.
const Magic = "WSNOBS1\n"

// Record kinds.
const (
	kindSchema = 'S'
	kindSample = 'D'
)

// MaxFields bounds a schema record. Streams are handfuls of metrics, not
// column stores; the bound keeps a corrupt or hostile length prefix from
// turning into a multi-gigabyte allocation in the reader.
const MaxFields = 1024

// maxFieldName bounds one field name's length, for the same reason.
const maxFieldName = 256

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms the service runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Writer encodes samples onto an io.Writer. It is not safe for
// concurrent use; the service serializes samples per job. Steady-state
// writes (schema unchanged) allocate nothing: the record is built in a
// reused buffer and handed to the underlying writer in a single Write
// call, which is also what makes torn tails the only crash artifact.
type Writer struct {
	w       io.Writer
	schema  []string
	prev    []int64
	buf     []byte
	started bool
	samples int64
	bytes   int64
}

// NewWriter starts a stream on w. The magic is written lazily with the
// first record, so creating a Writer never touches the underlying file.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, 256)}
}

// Samples returns how many sample records have been written.
func (w *Writer) Samples() int64 { return w.samples }

// Bytes returns how many bytes have been handed to the underlying
// writer, magic and schema records included.
func (w *Writer) Bytes() int64 { return w.bytes }

// WriteSample appends one sample. When names differs from the active
// schema (or no schema is active yet) a schema record precedes it and
// the delta base resets to zero. names and values must have equal
// length; the Writer keeps its own copies, so the caller may reuse both
// slices. Field names must be non-empty and at most maxFieldName bytes.
func (w *Writer) WriteSample(names []string, values []int64) error {
	if len(names) != len(values) {
		return fmt.Errorf("obs: %d names for %d values", len(names), len(values))
	}
	if len(names) == 0 || len(names) > MaxFields {
		return fmt.Errorf("obs: field count %d out of [1,%d]", len(names), MaxFields)
	}
	w.buf = w.buf[:0]
	if !w.started {
		w.buf = append(w.buf, Magic...)
		w.started = true
	}
	if !sameSchema(w.schema, names) {
		for _, n := range names {
			if n == "" || len(n) > maxFieldName {
				return fmt.Errorf("obs: field name %q out of bounds (1..%d bytes)", n, maxFieldName)
			}
		}
		w.schema = append(w.schema[:0], names...)
		if cap(w.prev) < len(names) {
			w.prev = make([]int64, len(names))
		}
		w.prev = w.prev[:len(names)]
		clear(w.prev)
		w.buf = appendSchemaRecord(w.buf, names)
	}
	w.buf = appendSampleRecord(w.buf, w.prev, values)
	copy(w.prev, values)
	n, err := w.w.Write(w.buf)
	w.bytes += int64(n)
	if err != nil {
		return err
	}
	w.samples++
	return nil
}

// sameSchema reports whether the active schema equals names. The common
// case — the caller passes the identical slice every boundary — is one
// pointer comparison per field, since the strings share backing data.
func sameSchema(schema, names []string) bool {
	if len(schema) != len(names) {
		return false
	}
	for i := range schema {
		if schema[i] != names[i] {
			return false
		}
	}
	return true
}

// appendSchemaRecord encodes a schema record onto buf.
func appendSchemaRecord(buf []byte, names []string) []byte {
	payloadStart, buf := beginRecord(buf, kindSchema)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, n := range names {
		buf = binary.AppendUvarint(buf, uint64(len(n)))
		buf = append(buf, n...)
	}
	return endRecord(buf, payloadStart)
}

// appendSampleRecord encodes values as zigzag deltas against prev.
func appendSampleRecord(buf []byte, prev, values []int64) []byte {
	payloadStart, buf := beginRecord(buf, kindSample)
	for i, v := range values {
		buf = binary.AppendVarint(buf, v-prev[i])
	}
	return endRecord(buf, payloadStart)
}

// lenPrefixSize is the fixed width reserved for the payload length. A
// 4-byte uvarint covers payloads up to 256 MiB — far past MaxFields ×
// 10-byte varints — and a fixed width lets the payload be encoded in
// place and the length patched afterward, keeping the whole record a
// single append-only pass over one buffer.
const lenPrefixSize = 4

// beginRecord appends the kind byte and reserves the length prefix,
// returning the payload start offset.
func beginRecord(buf []byte, kind byte) (int, []byte) {
	buf = append(buf, kind)
	buf = append(buf, 0, 0, 0, 0)
	return len(buf), buf
}

// endRecord patches the reserved length prefix and appends the payload
// CRC.
func endRecord(buf []byte, payloadStart int) []byte {
	payload := buf[payloadStart:]
	putUvarint4(buf[payloadStart-lenPrefixSize:payloadStart], uint64(len(payload)))
	crc := crc32.Checksum(payload, crcTable)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// putUvarint4 writes v as exactly four varint bytes (continuation bits
// on the first three), the fixed-width form beginRecord reserved.
func putUvarint4(b []byte, v uint64) {
	b[0] = byte(v&0x7f) | 0x80
	b[1] = byte((v>>7)&0x7f) | 0x80
	b[2] = byte((v>>14)&0x7f) | 0x80
	b[3] = byte((v >> 21) & 0x7f)
}
