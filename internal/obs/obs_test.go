package obs

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func writeStream(t testing.TB, samples []Sample) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, s := range samples {
		if err := w.WriteSample(s.Fields, s.Values); err != nil {
			t.Fatalf("WriteSample: %v", err)
		}
	}
	return buf.Bytes()
}

func sameSamples(t *testing.T, want, got []Sample) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i].Fields) != len(want[i].Fields) {
			t.Fatalf("sample %d: %d fields, want %d", i, len(got[i].Fields), len(want[i].Fields))
		}
		for j := range want[i].Fields {
			if got[i].Fields[j] != want[i].Fields[j] {
				t.Fatalf("sample %d field %d: %q, want %q", i, j, got[i].Fields[j], want[i].Fields[j])
			}
			if got[i].Values[j] != want[i].Values[j] {
				t.Fatalf("sample %d %s: %d, want %d", i, want[i].Fields[j], got[i].Values[j], want[i].Values[j])
			}
		}
	}
}

func TestRoundTripBasic(t *testing.T) {
	fields := []string{"ts_ms", "step", "evaluated", "hv_x1e6"}
	in := []Sample{
		{Fields: fields, Values: []int64{1700000000000, 1, 128, 42}},
		{Fields: fields, Values: []int64{1700000000250, 2, 256, 77}},
		{Fields: fields, Values: []int64{1700000000500, 3, 257, 77}},
	}
	data := writeStream(t, in)
	got, truncated, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("clean stream reported truncated")
	}
	sameSamples(t, in, got)
}

// Round-trip property: random schemas and random (including negative and
// extreme) values survive encode→decode exactly, across many stream
// shapes.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	extremes := []int64{0, 1, -1, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63}
	for trial := 0; trial < 200; trial++ {
		nfields := 1 + rng.Intn(20)
		fields := make([]string, nfields)
		for i := range fields {
			fields[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		nsamples := 1 + rng.Intn(30)
		in := make([]Sample, nsamples)
		for i := range in {
			vals := make([]int64, nfields)
			for j := range vals {
				switch rng.Intn(3) {
				case 0:
					vals[j] = extremes[rng.Intn(len(extremes))]
				case 1:
					vals[j] = rng.Int63n(1000) // small, delta-friendly
				default:
					vals[j] = rng.Int63() - rng.Int63()
				}
			}
			in[i] = Sample{Fields: fields, Values: vals}
		}
		data := writeStream(t, in)
		got, truncated, err := ReadAll(bytes.NewReader(data))
		if err != nil || truncated {
			t.Fatalf("trial %d: err=%v truncated=%v", trial, err, truncated)
		}
		sameSamples(t, in, got)
	}
}

// A schema change mid-stream emits a new schema record; samples on both
// sides decode with their own field sets and fresh delta bases.
func TestSchemaChangeMidStream(t *testing.T) {
	a := []string{"step", "evaluated"}
	b := []string{"step", "evaluated", "island", "round"}
	in := []Sample{
		{Fields: a, Values: []int64{1, 100}},
		{Fields: a, Values: []int64{2, 200}},
		{Fields: b, Values: []int64{3, 300, 0, 1}},
		{Fields: b, Values: []int64{4, 400, 1, 1}},
		{Fields: a, Values: []int64{5, 500}},
	}
	data := writeStream(t, in)
	got, truncated, err := ReadAll(bytes.NewReader(data))
	if err != nil || truncated {
		t.Fatalf("err=%v truncated=%v", err, truncated)
	}
	sameSamples(t, in, got)
}

// Torn-tail recovery: truncating a stream at every possible byte length
// must never error, never yield a wrong sample, and only ever drop
// samples from the tail.
func TestTornTailTruncation(t *testing.T) {
	fields := []string{"ts", "step", "evals"}
	in := make([]Sample, 20)
	for i := range in {
		in[i] = Sample{Fields: fields, Values: []int64{int64(1000 + i*17), int64(i), int64(i * i)}}
	}
	data := writeStream(t, in)
	fullLen := len(data)
	for cut := 0; cut <= fullLen; cut++ {
		got, truncated, err := ReadAll(bytes.NewReader(data[:cut]))
		if err != nil {
			// Only a cut inside the magic itself may produce ErrBadMagic:
			// the prefix is present but wrong-length reads never are; a cut
			// below len(Magic) yields a clean/truncated empty stream instead.
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) > len(in) {
			t.Fatalf("cut %d: decoded %d samples from a %d-sample stream", cut, len(got), len(in))
		}
		sameSamples(t, in[:len(got)], got)
		if cut == fullLen && (truncated || len(got) != len(in)) {
			t.Fatalf("uncut stream: %d samples, truncated=%v", len(got), truncated)
		}
	}
}

// Flipping any single payload byte must surface as a torn tail, never as
// silently wrong values.
func TestCorruptRecordDetected(t *testing.T) {
	fields := []string{"a", "b"}
	in := []Sample{
		{Fields: fields, Values: []int64{10, 20}},
		{Fields: fields, Values: []int64{11, 21}},
		{Fields: fields, Values: []int64{12, 22}},
	}
	data := writeStream(t, in)
	for off := len(Magic); off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		got, _, err := ReadAll(bytes.NewReader(mut))
		if err != nil {
			continue // corrupted magic region impossible here; any error is fine
		}
		// Every decoded sample must match the prefix of the original: the
		// checksum guarantees a corrupted record never decodes.
		for i, s := range got {
			if i >= len(in) {
				t.Fatalf("offset %d: phantom sample %d", off, i)
			}
			for j := range s.Values {
				if j < len(in[i].Values) && s.Values[j] != in[i].Values[j] {
					t.Fatalf("offset %d: sample %d field %d decoded %d, want %d",
						off, i, j, s.Values[j], in[i].Values[j])
				}
			}
		}
	}
}

func TestBadMagic(t *testing.T) {
	if _, _, err := ReadAll(bytes.NewReader([]byte("NOTOBS00rest"))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	// Empty stream: zero samples, no error, not truncated.
	got, truncated, err := ReadAll(bytes.NewReader(nil))
	if err != nil || truncated || len(got) != 0 {
		t.Fatalf("empty stream: %d samples, truncated=%v, err=%v", len(got), truncated, err)
	}
}

func TestWriteSampleValidation(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteSample([]string{"a"}, []int64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if err := w.WriteSample(nil, nil); err == nil {
		t.Fatal("empty schema accepted")
	}
	if err := w.WriteSample([]string{""}, []int64{1}); err == nil {
		t.Fatal("empty field name accepted")
	}
}

func TestTail(t *testing.T) {
	fields := []string{"x"}
	in := make([]Sample, 10)
	for i := range in {
		in[i] = Sample{Fields: fields, Values: []int64{int64(i)}}
	}
	data := writeStream(t, in)
	got, _, err := Tail(bytes.NewReader(data), 3)
	if err != nil {
		t.Fatal(err)
	}
	sameSamples(t, in[7:], got)
	if _, _, err := Tail(bytes.NewReader(data), 0); err == nil {
		t.Fatal("Tail(0) accepted")
	}
}

// The steady-state write path (schema unchanged) must not allocate: it
// runs at search boundaries inside the service's job loop, and the <2%
// throughput budget is met by keeping the sample cost at one buffered
// encode + one Write.
func TestObsWriterZeroAllocs(t *testing.T) {
	fields := []string{"ts_ms", "step", "evaluated", "infeasible", "front", "hv_x1e6", "hits", "lookups"}
	vals := make([]int64, len(fields))
	w := NewWriter(io.Discard)
	if err := w.WriteSample(fields, vals); err != nil { // schema record + warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := range vals {
			vals[i] += int64(i)
		}
		if err := w.WriteSample(fields, vals); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state WriteSample allocates %v times per call, want 0", allocs)
	}
}
