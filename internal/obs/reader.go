package obs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// maxPayload bounds one record's payload: comfortably above the largest
// legal record (a full MaxFields schema of maxFieldName-byte names is
// ~264 KiB) while keeping a corrupt length prefix from allocating
// gigabytes.
const maxPayload = 1 << 20

// ErrBadMagic reports a stream that does not open with Magic — the one
// malformation a Reader refuses outright instead of treating as a torn
// tail, because it means the file was never an obs stream at all.
var ErrBadMagic = errors.New("obs: stream does not start with the WSNOBS1 magic")

// Sample is one decoded sample: the schema in force when it was written
// plus the reconstructed absolute values. Fields is shared between
// samples under the same schema; Values is owned by the Sample.
type Sample struct {
	Fields []string
	Values []int64
}

// Reader decodes a stream record by record. The zero tolerance policy
// from the package doc: a malformed, truncated, or checksum-failing
// record ends the stream (Truncated reports it) rather than erroring,
// because the only writer is append-only and the only realistic
// corruption is a crash-torn tail.
type Reader struct {
	r         *bufio.Reader
	schema    []string
	prev      []int64
	vals      []int64
	started   bool
	done      bool
	truncated bool
	hdr       [1]byte
}

// NewReader decodes the stream on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Truncated reports whether the stream ended at a torn or corrupt
// record instead of a clean end-of-file. Meaningful once Next has
// returned false.
func (d *Reader) Truncated() bool { return d.truncated }

// Next decodes records until the next sample. It returns false at the
// end of the stream — clean or torn (see Truncated). The only error is
// ErrBadMagic on a stream that is not an obs stream.
func (d *Reader) Next() (Sample, bool, error) {
	if d.done {
		return Sample{}, false, nil
	}
	if !d.started {
		magic := make([]byte, len(Magic))
		if _, err := io.ReadFull(d.r, magic); err != nil {
			d.done = true
			if err == io.EOF {
				return Sample{}, false, nil // empty stream: zero samples, not an error
			}
			d.truncated = true
			return Sample{}, false, nil
		}
		if string(magic) != Magic {
			d.done = true
			return Sample{}, false, ErrBadMagic
		}
		d.started = true
	}
	for {
		payload, kind, ok := d.readRecord()
		if !ok {
			d.done = true
			return Sample{}, false, nil
		}
		switch kind {
		case kindSchema:
			if !d.applySchema(payload) {
				d.end()
				return Sample{}, false, nil
			}
		case kindSample:
			vals, ok := d.applySample(payload)
			if !ok {
				d.end()
				return Sample{}, false, nil
			}
			return Sample{Fields: d.schema, Values: vals}, true, nil
		default:
			// Unknown kind: this reader is older than the writer or the
			// record is garbage; either way nothing after it can be trusted.
			d.end()
			return Sample{}, false, nil
		}
	}
}

// end marks the stream torn.
func (d *Reader) end() {
	d.done = true
	d.truncated = true
}

// readRecord reads one framed record, verifying the checksum. ok=false
// means the stream ended here — cleanly (EOF exactly on a record
// boundary) or torn (anything else); d.truncated distinguishes them.
func (d *Reader) readRecord() (payload []byte, kind byte, ok bool) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if err != io.EOF {
			d.truncated = true
		}
		return nil, 0, false
	}
	kind = d.hdr[0]
	n, err := binary.ReadUvarint(d.r)
	if err != nil || n > maxPayload {
		d.truncated = true
		return nil, 0, false
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(d.r, payload); err != nil {
		d.truncated = true
		return nil, 0, false
	}
	var crcBytes [4]byte
	if _, err := io.ReadFull(d.r, crcBytes[:]); err != nil {
		d.truncated = true
		return nil, 0, false
	}
	if binary.LittleEndian.Uint32(crcBytes[:]) != crc32.Checksum(payload, crcTable) {
		d.truncated = true
		return nil, 0, false
	}
	return payload, kind, true
}

// applySchema installs a schema record's field list and zeroes the delta
// base.
func (d *Reader) applySchema(payload []byte) bool {
	n, rest, ok := readUvarint(payload)
	if !ok || n == 0 || n > MaxFields {
		return false
	}
	fields := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var l uint64
		l, rest, ok = readUvarint(rest)
		if !ok || l == 0 || l > maxFieldName || uint64(len(rest)) < l {
			return false
		}
		fields = append(fields, string(rest[:l]))
		rest = rest[l:]
	}
	if len(rest) != 0 {
		return false
	}
	d.schema = fields
	d.prev = make([]int64, n)
	return true
}

// applySample reconstructs one sample's absolute values from its deltas.
func (d *Reader) applySample(payload []byte) ([]int64, bool) {
	if d.schema == nil {
		return nil, false // sample before any schema record
	}
	vals := make([]int64, len(d.schema))
	rest := payload
	for i := range vals {
		delta, n := binary.Varint(rest)
		if n <= 0 {
			return nil, false
		}
		rest = rest[n:]
		vals[i] = d.prev[i] + delta
	}
	if len(rest) != 0 {
		return nil, false
	}
	copy(d.prev, vals)
	return vals, true
}

// readUvarint decodes one uvarint off the front of b.
func readUvarint(b []byte) (v uint64, rest []byte, ok bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, false
	}
	return v, b[n:], true
}

// ReadAll decodes every intact sample in the stream. truncated reports
// a torn tail; the returned samples are everything before it. The only
// error is ErrBadMagic.
func ReadAll(r io.Reader) (samples []Sample, truncated bool, err error) {
	d := NewReader(r)
	for {
		s, ok, err := d.Next()
		if err != nil {
			return samples, d.Truncated(), err
		}
		if !ok {
			return samples, d.Truncated(), nil
		}
		samples = append(samples, s)
	}
}

// Tail returns the last n samples of the stream (all of them when it
// holds fewer), for recent-window endpoints that do not want to hold the
// whole series.
func Tail(r io.Reader, n int) (samples []Sample, truncated bool, err error) {
	if n <= 0 {
		return nil, false, fmt.Errorf("obs: tail window %d must be positive", n)
	}
	all, truncated, err := ReadAll(r)
	if err != nil {
		return nil, truncated, err
	}
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all, truncated, nil
}
