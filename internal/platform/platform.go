// Package platform characterizes the node hardware of the case study: a
// Shimmer-class wearable built around an MSP430-class microcontroller, a
// 10 kB RAM, an ECG analog front end with a 12-bit ADC, and a CC2420-class
// 802.15.4 radio (§4.3, [24]).
//
// Each component model matches one equation of the paper's node model
// (§3.3): SensorModel is Eq. 3, MicroModel is Eq. 4, MemoryModel is Eq. 5.
// All powers are per-second energies (watts); coefficients are the kind a
// designer obtains by calibrating against bench measurements, and the
// shipped defaults are one such calibration.
package platform

import (
	"fmt"

	"wsndse/internal/radio"
	"wsndse/internal/units"
)

// SensorModel is the sensing-chain energy model of Eq. 3:
//
//	E_sensor = E_transducer + [α_s1·f_s + α_s0]
//
// TransducerPower is the analog front end's constant draw; Alpha1 (joules
// per sample) and Alpha0 (watts) capture the A/D converter's linear
// dependence on the sampling frequency.
type SensorModel struct {
	TransducerPower units.Watts
	Alpha1          units.Joules // per sample
	Alpha0          units.Watts
}

// Power evaluates Eq. 3 at sampling frequency fs.
func (s SensorModel) Power(fs units.Hertz) units.Watts {
	return s.TransducerPower + units.Watts(float64(s.Alpha1)*float64(fs)) + s.Alpha0
}

// MicroModel is the microcontroller energy model of Eq. 4:
//
//	E_µC = Duty_app · [α_µC1·f_µC + α_µC0]
//
// Alpha1 is the switching energy per cycle (joules/cycle ≡ W/Hz) and
// Alpha0 the frequency-independent active overhead.
type MicroModel struct {
	Alpha1 units.Joules // per cycle
	Alpha0 units.Watts
}

// ActivePower is the draw while executing at frequency f.
func (m MicroModel) ActivePower(f units.Hertz) units.Watts {
	return units.Watts(float64(m.Alpha1)*float64(f)) + m.Alpha0
}

// Power evaluates Eq. 4 for an application occupying the given duty cycle
// at frequency f. Duty cycles above 1 are physically impossible; callers
// (the node model) treat them as infeasible configurations before getting
// here, so Power simply evaluates the formula.
func (m MicroModel) Power(duty float64, f units.Hertz) units.Watts {
	return units.Watts(duty * float64(m.ActivePower(f)))
}

// MemoryModel is the memory energy model of Eq. 5:
//
//	E_mem = γ_app·T_mem·E_acc + (1 − γ_app·T_mem)·8·M_app·E_bitidle
//
// AccessTime (T_mem) and AccessPower (the draw during an access window,
// E_acc) form the dynamic term; BitIdlePower (E_bitidle) is the per-bit
// retention leakage that applies whenever the memory is not being accessed.
type MemoryModel struct {
	AccessTime   units.Seconds
	AccessPower  units.Watts
	BitIdlePower units.Watts // per bit
	SizeBytes    int
}

// Power evaluates Eq. 5 for an application performing accessesPerSecond
// memory accesses and occupying appBytes of memory.
func (mm MemoryModel) Power(accessesPerSecond, appBytes float64) units.Watts {
	activeFrac := accessesPerSecond * float64(mm.AccessTime)
	if activeFrac > 1 {
		activeFrac = 1 // memory saturated; cannot be busier than always-on
	}
	dynamic := activeFrac * float64(mm.AccessPower)
	leak := (1 - activeFrac) * 8 * appBytes * float64(mm.BitIdlePower)
	return units.Watts(dynamic + leak)
}

// Platform bundles the hardware of one node type.
type Platform struct {
	Name   string
	Sensor SensorModel
	Micro  MicroModel
	Memory MemoryModel
	Radio  radio.Chip

	ADCBits int // sample resolution (L_adc = ADCBits/8 bytes)

	// MicroFreqs lists the selectable microcontroller frequencies — the
	// f_µC axis of the design space.
	MicroFreqs []units.Hertz
}

// Shimmer returns the default case-study platform. The microcontroller
// frequency grid covers the 1 MHz and 8 MHz points of the paper's Figure 3
// plus the intermediate DCO settings of MSP430-class parts.
func Shimmer() Platform {
	return Platform{
		Name: "shimmer",
		Sensor: SensorModel{
			TransducerPower: 1.35e-3, // ECG front end
			Alpha1:          3.2e-6,  // J per 12-bit conversion
			Alpha0:          0.12e-3,
		},
		Micro: MicroModel{
			Alpha1: 0.726e-9, // ≈ 242 µA/MHz at 3 V, MSP430-class
			Alpha0: 0.21e-3,
		},
		Memory: MemoryModel{
			AccessTime:   100e-9,
			AccessPower:  0.9e-3,
			BitIdlePower: 12e-12,
			SizeBytes:    10 * 1024, // the Shimmer's 10 kB RAM
		},
		Radio:   radio.DefaultCC2420(),
		ADCBits: 12,
		MicroFreqs: []units.Hertz{
			1e6, 2e6, 4e6, 8e6, 16e6,
		},
	}
}

// TelosB returns a TelosB-class telemetry mote: the same MSP430
// microcontroller family and CC2420-class radio as the Shimmer, but a
// duty-cycled digital telemetry front end (temperature/humidity,
// SHT11-class) in place of the ECG chain. Chipset-dependent coefficients
// like these shift where the energy-performance trade-off lies, which is
// why heterogeneous scenarios mix platforms rather than cloning one.
func TelosB() Platform {
	return Platform{
		Name: "telosb",
		Sensor: SensorModel{
			TransducerPower: 0.09e-3, // duty-cycled digital sensor
			Alpha1:          1.1e-6,  // J per 14-bit conversion
			Alpha0:          0.05e-3,
		},
		Micro: MicroModel{
			Alpha1: 0.66e-9, // MSP430F1611-class at 3 V
			Alpha0: 0.18e-3,
		},
		Memory: MemoryModel{
			AccessTime:   100e-9,
			AccessPower:  0.8e-3,
			BitIdlePower: 10e-12,
			SizeBytes:    10 * 1024,
		},
		Radio:   radio.DefaultCC2420(),
		ADCBits: 12,
		MicroFreqs: []units.Hertz{
			1e6, 2e6, 4e6, 8e6,
		},
	}
}

// MicaZ returns a MicaZ-class mote: an ATmega128L microcontroller (higher
// per-cycle switching energy than the MSP430 family and no sub-megahertz
// DCO points), only 4 kB of SRAM, and the same CC2420-class radio as the
// Shimmer. The AVR core's ~3.3 nJ/cycle moves the energy-optimal µC
// frequency and makes memory-heavy applications tighter fits — the
// chipset-dependent shifts a chipset-comparison sweep measures.
func MicaZ() Platform {
	return Platform{
		Name: "micaz",
		Sensor: SensorModel{
			TransducerPower: 0.45e-3, // MTS300-class sensor board, duty-cycled
			Alpha1:          1.8e-6,  // J per 10-bit conversion
			Alpha0:          0.08e-3,
		},
		Micro: MicroModel{
			Alpha1: 3.3e-9, // ATmega128L ≈ 8 mA at 7.37 MHz, 3 V
			Alpha0: 0.45e-3,
		},
		Memory: MemoryModel{
			AccessTime:   110e-9,
			AccessPower:  1.1e-3,
			BitIdlePower: 14e-12,
			SizeBytes:    4 * 1024, // the ATmega128L's 4 kB SRAM
		},
		Radio:   radio.DefaultCC2420(),
		ADCBits: 10,
		MicroFreqs: []units.Hertz{
			1e6, 2e6, 4e6, 7.37e6,
		},
	}
}

// Z1 returns a Zolertia Z1-class mote: a second-generation MSP430F2617
// (lower per-cycle energy than the F1611 and a 16 MHz ceiling), 8 kB RAM,
// a CC2420-class radio and a duty-cycled digital sensor front end.
func Z1() Platform {
	return Platform{
		Name: "z1",
		Sensor: SensorModel{
			TransducerPower: 0.11e-3,
			Alpha1:          0.9e-6, // J per conversion, SHT-class digital chain
			Alpha0:          0.04e-3,
		},
		Micro: MicroModel{
			Alpha1: 0.55e-9, // MSP430F2617-class at 3 V
			Alpha0: 0.15e-3,
		},
		Memory: MemoryModel{
			AccessTime:   90e-9,
			AccessPower:  0.75e-3,
			BitIdlePower: 9e-12,
			SizeBytes:    8 * 1024,
		},
		Radio:   radio.DefaultCC2420(),
		ADCBits: 12,
		MicroFreqs: []units.Hertz{
			1e6, 2e6, 4e6, 8e6, 16e6,
		},
	}
}

// IRIS returns an IRIS-class mote: an ATmega1281 microcontroller (a more
// efficient AVR generation than the MicaZ's 128L) paired with the
// AT86RF230 radio, whose cheaper transmit bits and near-zero sleep draw
// trade against a slow 880 µs wake-up ramp.
func IRIS() Platform {
	return Platform{
		Name: "iris",
		Sensor: SensorModel{
			TransducerPower: 0.40e-3,
			Alpha1:          1.6e-6, // J per 10-bit conversion
			Alpha0:          0.07e-3,
		},
		Micro: MicroModel{
			Alpha1: 2.4e-9, // ATmega1281 ≈ 6 mA at 7.37 MHz, 3 V
			Alpha0: 0.35e-3,
		},
		Memory: MemoryModel{
			AccessTime:   110e-9,
			AccessPower:  1.0e-3,
			BitIdlePower: 12e-12,
			SizeBytes:    8 * 1024,
		},
		Radio:   radio.DefaultAT86RF230(),
		ADCBits: 10,
		MicroFreqs: []units.Hertz{
			1e6, 2e6, 4e6, 7.37e6,
		},
	}
}

// Catalog returns every shipped platform, in a fixed order. The catalog is
// what makes the platform an explorable axis: scenario families sweep it
// the way hand-written scenarios sweep CR grids.
func Catalog() []Platform {
	return []Platform{Shimmer(), TelosB(), MicaZ(), Z1(), IRIS()}
}

// ByName returns the catalog platform with the given name.
func ByName(name string) (Platform, bool) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, true
		}
	}
	return Platform{}, false
}

// Names returns the catalog platform names, in catalog order.
func Names() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, p := range cat {
		names[i] = p.Name
	}
	return names
}

// Validate checks the platform for physical plausibility.
func (p Platform) Validate() error {
	if p.ADCBits < 1 || p.ADCBits > 24 {
		return fmt.Errorf("platform: %s: ADC bits %d out of range", p.Name, p.ADCBits)
	}
	if p.Sensor.TransducerPower < 0 || p.Sensor.Alpha1 < 0 || p.Sensor.Alpha0 < 0 {
		return fmt.Errorf("platform: %s: negative sensor coefficients", p.Name)
	}
	if p.Micro.Alpha1 <= 0 {
		return fmt.Errorf("platform: %s: µC per-cycle energy must be positive", p.Name)
	}
	if p.Memory.SizeBytes <= 0 || p.Memory.AccessTime <= 0 {
		return fmt.Errorf("platform: %s: memory model incomplete", p.Name)
	}
	if len(p.MicroFreqs) == 0 {
		return fmt.Errorf("platform: %s: no microcontroller frequencies", p.Name)
	}
	for _, f := range p.MicroFreqs {
		if f <= 0 {
			return fmt.Errorf("platform: %s: non-positive µC frequency %v", p.Name, f)
		}
	}
	return p.Radio.Validate()
}

// SampleBytes returns L_adc in bytes (possibly fractional: 12 bits = 1.5).
func (p Platform) SampleBytes() float64 { return float64(p.ADCBits) / 8 }

// InputRate returns φ_in = f_s · L_adc in bytes per second.
func (p Platform) InputRate(fs units.Hertz) units.BytesPerSecond {
	return units.BytesPerSecond(float64(fs) * p.SampleBytes())
}
