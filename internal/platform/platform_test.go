package platform

import (
	"math"
	"testing"

	"wsndse/internal/units"
)

func TestShimmerValid(t *testing.T) {
	p := Shimmer()
	if err := p.Validate(); err != nil {
		t.Fatalf("default platform invalid: %v", err)
	}
	// The case study's φ_in: 250 Hz × 12 bit = 375 B/s.
	if got := p.InputRate(250); got != 375 {
		t.Errorf("InputRate(250Hz) = %v, want 375 B/s", got)
	}
	if got := p.SampleBytes(); got != 1.5 {
		t.Errorf("SampleBytes = %g, want 1.5", got)
	}
	// The paper's 1 MHz and 8 MHz operating points must be available.
	has := map[units.Hertz]bool{}
	for _, f := range p.MicroFreqs {
		has[f] = true
	}
	if !has[1e6] || !has[8e6] {
		t.Errorf("frequency grid %v must include 1 MHz and 8 MHz", p.MicroFreqs)
	}
}

func TestSensorPowerLinearInFs(t *testing.T) {
	s := SensorModel{TransducerPower: 1e-3, Alpha1: 2e-6, Alpha0: 0.5e-3}
	p250 := float64(s.Power(250))
	p500 := float64(s.Power(500))
	want250 := 1e-3 + 2e-6*250 + 0.5e-3
	if math.Abs(p250-want250) > 1e-15 {
		t.Errorf("Power(250) = %g, want %g", p250, want250)
	}
	// Doubling fs adds exactly α1·250 more.
	if math.Abs((p500-p250)-2e-6*250) > 1e-15 {
		t.Errorf("sensor power increment = %g, want %g", p500-p250, 2e-6*250)
	}
}

func TestMicroPower(t *testing.T) {
	m := MicroModel{Alpha1: 1e-9, Alpha0: 0.2e-3}
	// Eq. 4: duty × (α1·f + α0).
	got := float64(m.Power(0.25, 8e6))
	want := 0.25 * (1e-9*8e6 + 0.2e-3)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("Power = %g, want %g", got, want)
	}
	if m.Power(0, 8e6) != 0 {
		t.Error("zero duty must cost zero")
	}
	// Power scales linearly with duty.
	if math.Abs(float64(m.Power(0.5, 8e6))-2*got) > 1e-15 {
		t.Error("µC power not linear in duty")
	}
}

func TestMemoryPower(t *testing.T) {
	mm := MemoryModel{
		AccessTime:   100e-9,
		AccessPower:  1e-3,
		BitIdlePower: 10e-12,
		SizeBytes:    10240,
	}
	// Eq. 5 with γ = 10⁵ accesses/s, M = 4 kB.
	gamma, m := 1e5, 4096.0
	activeFrac := gamma * 100e-9 // 0.01
	want := activeFrac*1e-3 + (1-activeFrac)*8*m*10e-12
	if got := float64(mm.Power(gamma, m)); math.Abs(got-want) > 1e-18 {
		t.Errorf("Power = %g, want %g", got, want)
	}
	// Idle-only memory still leaks.
	if mm.Power(0, m) <= 0 {
		t.Error("retention leakage must be positive")
	}
	// Saturation: the memory cannot be active more than 100 % of the time.
	sat := float64(mm.Power(2e7, m)) // would be activeFrac = 2
	if math.Abs(sat-1e-3) > 1e-15 {
		t.Errorf("saturated power = %g, want access power %g", sat, 1e-3)
	}
}

func TestValidateCatchesBadPlatforms(t *testing.T) {
	cases := []func(*Platform){
		func(p *Platform) { p.ADCBits = 0 },
		func(p *Platform) { p.ADCBits = 32 },
		func(p *Platform) { p.Sensor.Alpha1 = -1 },
		func(p *Platform) { p.Micro.Alpha1 = 0 },
		func(p *Platform) { p.Memory.SizeBytes = 0 },
		func(p *Platform) { p.Memory.AccessTime = 0 },
		func(p *Platform) { p.MicroFreqs = nil },
		func(p *Platform) { p.MicroFreqs = []units.Hertz{0} },
		func(p *Platform) { p.Radio.BitRate = 0 },
	}
	for i, mutate := range cases {
		p := Shimmer()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid platform accepted", i)
		}
	}
}

func TestShimmerMagnitudes(t *testing.T) {
	// Order-of-magnitude sanity for the default calibration: a node doing
	// nothing but sensing should sit in the low-milliwatt range, like the
	// real hardware.
	p := Shimmer()
	sense := float64(p.Sensor.Power(250))
	if sense < 0.5e-3 || sense > 10e-3 {
		t.Errorf("sensing power %v outside the plausible mW range", units.Watts(sense))
	}
	// Full-speed µC should be single-digit milliwatts.
	mcu := float64(p.Micro.ActivePower(8e6))
	if mcu < 1e-3 || mcu > 20e-3 {
		t.Errorf("µC active power %v implausible", units.Watts(mcu))
	}
	// Memory is a second-order term on this class of node.
	mem := float64(p.Memory.Power(5e4, 8192))
	if mem > 1e-3 {
		t.Errorf("memory power %v implausibly high", units.Watts(mem))
	}
}

// TestCatalog pins the catalog contract the scenario families build on:
// every shipped platform validates, names are unique, and ByName resolves
// exactly the catalog.
func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) < 5 {
		t.Fatalf("catalog has %d platforms, want at least 5 (chipset sweeps need variety)", len(cat))
	}
	seen := map[string]bool{}
	for _, p := range cat {
		if err := p.Validate(); err != nil {
			t.Errorf("catalog platform %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate catalog platform name %q", p.Name)
		}
		seen[p.Name] = true
		got, ok := ByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Errorf("ByName(%q) failed", p.Name)
		}
	}
	if _, ok := ByName("no-such-mote"); ok {
		t.Error("ByName resolved an unknown platform")
	}
	names := Names()
	if len(names) != len(cat) {
		t.Fatalf("Names() has %d entries for %d platforms", len(names), len(cat))
	}
}

// TestChipsetCoefficientsDiffer guards against a copy-paste catalog: the
// chipset comparison is only meaningful if the per-cycle µC energies and
// radio chips actually differ across platforms.
func TestChipsetCoefficientsDiffer(t *testing.T) {
	micaz, z1 := MicaZ(), Z1()
	if micaz.Micro.Alpha1 <= z1.Micro.Alpha1 {
		t.Errorf("AVR per-cycle energy (%g) should exceed MSP430F2xx (%g)",
			micaz.Micro.Alpha1, z1.Micro.Alpha1)
	}
	if IRIS().Radio.Name == MicaZ().Radio.Name {
		t.Error("IRIS should carry an AT86RF230-class radio, not the MicaZ's CC2420")
	}
	if MicaZ().Memory.SizeBytes >= Shimmer().Memory.SizeBytes {
		t.Errorf("MicaZ's 4 kB SRAM should be smaller than the Shimmer's 10 kB")
	}
}
