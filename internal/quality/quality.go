// Package quality implements the signal-fidelity metrics used to evaluate
// the compression applications, chiefly the percentage root-mean-square
// difference (PRD) the paper adopts as its application quality metric e(·)
// (§4.3, following Mamaghanian et al. [13]).
package quality

import (
	"fmt"
	"math"
)

// PRD returns the percentage root-mean-square difference between the
// original signal x and its reconstruction y:
//
//	PRD = 100 · ‖x − y‖₂ / ‖x‖₂
//
// Lower is better; 0 means perfect reconstruction. It returns an error when
// the signals differ in length or the reference has zero energy.
func PRD(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("quality: PRD: length mismatch %d vs %d", len(x), len(y))
	}
	var num, den float64
	for i := range x {
		d := x[i] - y[i]
		num += d * d
		den += x[i] * x[i]
	}
	if den == 0 {
		return 0, fmt.Errorf("quality: PRD: reference signal has zero energy")
	}
	return 100 * math.Sqrt(num/den), nil
}

// PRDN is the mean-normalized PRD: the reference energy is computed after
// removing the mean of x, which makes the metric insensitive to DC offset.
func PRDN(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("quality: PRDN: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) == 0 {
		return 0, fmt.Errorf("quality: PRDN: empty signals")
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	var num, den float64
	for i := range x {
		d := x[i] - y[i]
		num += d * d
		c := x[i] - mean
		den += c * c
	}
	if den == 0 {
		return 0, fmt.Errorf("quality: PRDN: reference signal is constant")
	}
	return 100 * math.Sqrt(num/den), nil
}

// RMSE returns the root-mean-square error between x and y.
func RMSE(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("quality: RMSE: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) == 0 {
		return 0, nil
	}
	var ss float64
	for i := range x {
		d := x[i] - y[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(x))), nil
}

// SNR returns the reconstruction signal-to-noise ratio in decibels:
// 10·log10(‖x‖² / ‖x−y‖²). A perfect reconstruction yields +Inf.
func SNR(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("quality: SNR: length mismatch %d vs %d", len(x), len(y))
	}
	var sig, noise float64
	for i := range x {
		sig += x[i] * x[i]
		d := x[i] - y[i]
		noise += d * d
	}
	if sig == 0 {
		return 0, fmt.Errorf("quality: SNR: reference signal has zero energy")
	}
	if noise == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(sig/noise), nil
}

// CompressionRatio returns out/in, the convention used throughout the
// paper: CR = φ_out/φ_in, so smaller values mean stronger compression
// (e.g. CR = 0.17 keeps 17 % of the data volume).
func CompressionRatio(outBytes, inBytes float64) (float64, error) {
	if inBytes <= 0 {
		return 0, fmt.Errorf("quality: CompressionRatio: input size %g must be positive", inBytes)
	}
	if outBytes < 0 {
		return 0, fmt.Errorf("quality: CompressionRatio: negative output size %g", outBytes)
	}
	return outBytes / inBytes, nil
}
