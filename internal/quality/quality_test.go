package quality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPRDPerfect(t *testing.T) {
	x := []float64{1, -2, 3}
	got, err := PRD(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("PRD(x,x) = %g, want 0", got)
	}
}

func TestPRDKnownValue(t *testing.T) {
	// x = (3,4): ‖x‖ = 5. y = (3,3): error = (0,1), ‖e‖ = 1 → PRD = 20 %.
	got, err := PRD([]float64{3, 4}, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-20) > 1e-12 {
		t.Errorf("PRD = %g, want 20", got)
	}
}

func TestPRDErrors(t *testing.T) {
	if _, err := PRD([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := PRD([]float64{0, 0}, []float64{0, 0}); err == nil {
		t.Error("zero-energy reference: want error")
	}
}

// PRD is non-negative, and zero exactly when signals coincide.
func TestPRDProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(64)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = x[i] + r.NormFloat64()*0.1
		}
		x[0] += 1 // guarantee nonzero energy
		prd, err := PRD(x, y)
		if err != nil || prd < 0 {
			return false
		}
		same, err := PRD(x, x)
		return err == nil && same == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPRDN(t *testing.T) {
	// A pure DC offset in the reference does not inflate PRDN's
	// denominator: PRDN uses the AC energy.
	x := []float64{10, 11, 10, 9, 10}
	y := []float64{10, 10.5, 10, 9.5, 10}
	prd, _ := PRD(x, y)
	prdn, err := PRDN(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if prdn <= prd {
		t.Errorf("PRDN (%g) should exceed PRD (%g) for DC-dominated signals", prdn, prd)
	}
	if _, err := PRDN([]float64{5, 5}, []float64{5, 5}); err == nil {
		t.Error("constant reference: want error")
	}
	if _, err := PRDN(nil, nil); err == nil {
		t.Error("empty: want error")
	}
	if _, err := PRDN([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(12.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %g, want %g", got, want)
	}
	if got, _ := RMSE(nil, nil); got != 0 {
		t.Errorf("RMSE(nil) = %g", got)
	}
	if _, err := RMSE([]float64{1}, nil); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestSNR(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	y := []float64{1.1, 0.9, 1.1, 0.9}
	got, err := SNR(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(4/0.04)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("SNR = %g dB, want %g", got, want)
	}
	if got, _ := SNR(x, x); !math.IsInf(got, 1) {
		t.Errorf("perfect SNR = %g, want +Inf", got)
	}
	if _, err := SNR([]float64{0}, []float64{1}); err == nil {
		t.Error("zero-energy reference: want error")
	}
	if _, err := SNR([]float64{1}, nil); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestSNRPRDConsistency(t *testing.T) {
	// SNR = −20·log10(PRD/100) by definition; check on random data.
	r := rand.New(rand.NewSource(4))
	x := make([]float64, 128)
	y := make([]float64, 128)
	for i := range x {
		x[i] = r.NormFloat64() + 2
		y[i] = x[i] + r.NormFloat64()*0.05
	}
	prd, _ := PRD(x, y)
	snr, _ := SNR(x, y)
	want := -20 * math.Log10(prd/100)
	if math.Abs(snr-want) > 1e-9 {
		t.Errorf("SNR = %g, want %g from PRD", snr, want)
	}
}

func TestCompressionRatio(t *testing.T) {
	got, err := CompressionRatio(170, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.17 {
		t.Errorf("CR = %g, want 0.17", got)
	}
	if _, err := CompressionRatio(1, 0); err == nil {
		t.Error("zero input: want error")
	}
	if _, err := CompressionRatio(-1, 10); err == nil {
		t.Error("negative output: want error")
	}
}
