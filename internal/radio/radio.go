// Package radio models the node's 802.15.4 transceiver at the level needed
// by both the analytical model (per-bit transmit/receive energies, Eq. 6)
// and the simulator (state powers, ramp-up and turnaround costs).
//
// The default chip is CC2420-class — the transceiver on the Shimmer
// platform of the case study — with datasheet-flavoured current draws at a
// 3 V supply. Absolute values matter less than their structure: transmit
// energy scales with the carrier power setting, reception is slightly more
// expensive than transmission at 0 dBm, and leaving the radio out of sleep
// dominates everything else.
package radio

import (
	"fmt"
	"sort"

	"wsndse/internal/units"
)

// Chip describes a transceiver's power behaviour.
type Chip struct {
	Name string

	BitRate units.BitsPerSecond

	// State powers.
	TxPower    units.Watts // transmitting at the configured output level
	RxPower    units.Watts // actively receiving or listening
	IdlePower  units.Watts // oscillator on, radio idle
	SleepPower units.Watts // deep sleep / power-down

	// Transition costs: leaving sleep requires the crystal and PLL to
	// settle before any reception or transmission.
	RampUpTime   units.Seconds
	RampUpEnergy units.Joules

	// TurnaroundTime is the RX↔TX switch time.
	TurnaroundTime units.Seconds

	// OutputDBm is the configured carrier power, for reporting.
	OutputDBm int
}

// cc2420TxCurrents maps output power (dBm) to transmit current (mA) at 3 V,
// following the CC2420 datasheet's programmable levels.
var cc2420TxCurrents = map[int]float64{
	0:   17.4,
	-1:  16.5,
	-3:  15.2,
	-5:  13.9,
	-7:  12.5,
	-10: 11.2,
	-15: 9.9,
	-25: 8.5,
}

// TxPowerLevels lists the supported output settings in ascending dBm.
func TxPowerLevels() []int {
	levels := make([]int, 0, len(cc2420TxCurrents))
	for dbm := range cc2420TxCurrents {
		levels = append(levels, dbm)
	}
	sort.Ints(levels)
	return levels
}

const supplyVolts = 3.0

// CC2420 returns the default transceiver at the given output power level.
// The case study fixes the level high enough (0 dBm) that packet errors,
// and therefore retransmissions, are negligible (§4.3).
func CC2420(outputDBm int) (Chip, error) {
	ma, ok := cc2420TxCurrents[outputDBm]
	if !ok {
		return Chip{}, fmt.Errorf("radio: CC2420 has no %d dBm output level (supported: %v)",
			outputDBm, TxPowerLevels())
	}
	return Chip{
		Name:       fmt.Sprintf("cc2420@%ddBm", outputDBm),
		BitRate:    250_000,
		TxPower:    units.Watts(ma * 1e-3 * supplyVolts),
		RxPower:    units.Watts(18.8 * 1e-3 * supplyVolts),
		IdlePower:  units.Watts(0.426 * 1e-3 * supplyVolts),
		SleepPower: units.Watts(20e-6 * supplyVolts),
		RampUpTime: units.Seconds(580e-6 + 192e-6), // VCO/PLL settle + RX calibration
		// RampUpEnergy is the incremental PLL-calibration cost beyond
		// the idle-level draw during the settle window (consumers
		// charge the settle residency at IdlePower separately).
		RampUpEnergy:   units.Joules(0.5e-6),
		TurnaroundTime: units.Seconds(192e-6),
		OutputDBm:      outputDBm,
	}, nil
}

// DefaultCC2420 is CC2420(0) for callers that cannot fail; it panics only
// if the 0 dBm level were removed, which would be a programming error.
func DefaultCC2420() Chip {
	c, err := CC2420(0)
	if err != nil {
		panic(err)
	}
	return c
}

// at86rf230TxCurrents maps output power (dBm) to transmit current (mA) at
// 3 V for the AT86RF230-class transceiver (IRIS motes). The RF230 reaches
// +3 dBm and is markedly cheaper per transmitted bit than the CC2420, which
// is exactly the kind of chipset-dependent shift a chipset-comparison sweep
// exists to surface.
var at86rf230TxCurrents = map[int]float64{
	3:   16.5,
	0:   14.4,
	-3:  12.9,
	-5:  12.1,
	-10: 10.8,
	-17: 9.9,
}

// AT86RF230 returns an AT86RF230-class transceiver at the given output
// power level — the radio of the IRIS mote family.
func AT86RF230(outputDBm int) (Chip, error) {
	ma, ok := at86rf230TxCurrents[outputDBm]
	if !ok {
		levels := make([]int, 0, len(at86rf230TxCurrents))
		for dbm := range at86rf230TxCurrents {
			levels = append(levels, dbm)
		}
		sort.Ints(levels)
		return Chip{}, fmt.Errorf("radio: AT86RF230 has no %d dBm output level (supported: %v)",
			outputDBm, levels)
	}
	return Chip{
		Name:       fmt.Sprintf("at86rf230@%ddBm", outputDBm),
		BitRate:    250_000,
		TxPower:    units.Watts(ma * 1e-3 * supplyVolts),
		RxPower:    units.Watts(15.5 * 1e-3 * supplyVolts),
		IdlePower:  units.Watts(1.5 * 1e-3 * supplyVolts), // TRX_OFF
		SleepPower: units.Watts(0.02e-6 * supplyVolts),    // 20 nA deep sleep
		RampUpTime: units.Seconds(880e-6),                 // SLEEP → TRX_OFF → RX_ON settle
		// Incremental PLL-settle cost beyond the idle-level residency draw,
		// mirroring the CC2420 accounting convention.
		RampUpEnergy:   units.Joules(0.4e-6),
		TurnaroundTime: units.Seconds(192e-6), // 12-symbol RX↔TX state switch
		OutputDBm:      outputDBm,
	}, nil
}

// DefaultAT86RF230 is AT86RF230(3) — the IRIS default output level.
func DefaultAT86RF230() Chip {
	c, err := AT86RF230(3)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate reports whether the chip parameters are physically sensible.
func (c Chip) Validate() error {
	if c.BitRate <= 0 {
		return fmt.Errorf("radio: %s: bit rate %v must be positive", c.Name, c.BitRate)
	}
	if c.TxPower <= 0 || c.RxPower <= 0 {
		return fmt.Errorf("radio: %s: TX/RX powers must be positive", c.Name)
	}
	if c.SleepPower < 0 || c.IdlePower < 0 || c.RampUpTime < 0 || c.TurnaroundTime < 0 {
		return fmt.Errorf("radio: %s: negative transition parameters", c.Name)
	}
	if c.SleepPower > c.IdlePower || c.IdlePower > c.RxPower {
		return fmt.Errorf("radio: %s: expected sleep ≤ idle ≤ rx power ordering", c.Name)
	}
	return nil
}

// EnergyPerBitTx is E_tx of Eq. 6: the energy to transmit one bit at the
// configured carrier power.
func (c Chip) EnergyPerBitTx() units.Joules {
	return units.Joules(float64(c.TxPower) / float64(c.BitRate))
}

// EnergyPerBitRx is E_rx of Eq. 6.
func (c Chip) EnergyPerBitRx() units.Joules {
	return units.Joules(float64(c.RxPower) / float64(c.BitRate))
}

// TxTime is the on-air duration of `bytes` bytes at the chip's bit rate.
// This is the physical-radio dependency of the paper's T_tx(·) in Eq. 1.
func (c Chip) TxTime(bytes float64) units.Seconds {
	return units.Seconds(bytes * 8 / float64(c.BitRate))
}

// TxEnergy is the energy to transmit `bytes` bytes (excluding ramp-up).
func (c Chip) TxEnergy(bytes float64) units.Joules {
	return units.Joules(float64(c.TxTime(bytes)) * float64(c.TxPower))
}

// RxEnergy is the energy to receive `bytes` bytes.
func (c Chip) RxEnergy(bytes float64) units.Joules {
	return units.Joules(bytes * 8 / float64(c.BitRate) * float64(c.RxPower))
}
