package radio

import (
	"math"
	"testing"
)

func TestCC2420Levels(t *testing.T) {
	levels := TxPowerLevels()
	if len(levels) == 0 {
		t.Fatal("no TX power levels")
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			t.Fatal("levels must be ascending")
		}
	}
	var prev float64
	for _, dbm := range levels {
		c, err := CC2420(dbm)
		if err != nil {
			t.Fatalf("CC2420(%d): %v", dbm, err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("CC2420(%d) invalid: %v", dbm, err)
		}
		if float64(c.TxPower) <= prev {
			t.Errorf("TX power at %d dBm (%v) not increasing", dbm, c.TxPower)
		}
		prev = float64(c.TxPower)
	}
	if _, err := CC2420(7); err == nil {
		t.Error("unsupported level accepted")
	}
}

func TestDefaultCC2420(t *testing.T) {
	c := DefaultCC2420()
	if c.OutputDBm != 0 {
		t.Errorf("default level = %d dBm, want 0", c.OutputDBm)
	}
	// 17.4 mA at 3 V = 52.2 mW.
	if math.Abs(float64(c.TxPower)-52.2e-3) > 1e-9 {
		t.Errorf("TX power = %v, want 52.2mW", c.TxPower)
	}
	// At 0 dBm, RX costs more than TX on this chip.
	if c.RxPower <= c.TxPower {
		t.Error("CC2420 RX should draw more than TX at 0 dBm")
	}
}

func TestPerBitEnergies(t *testing.T) {
	c := DefaultCC2420()
	// 52.2 mW / 250 kbit/s = 208.8 nJ/bit.
	if got := float64(c.EnergyPerBitTx()); math.Abs(got-208.8e-9) > 1e-12 {
		t.Errorf("E_tx = %g, want 208.8nJ", got)
	}
	if got := float64(c.EnergyPerBitRx()); math.Abs(got-56.4e-3/250e3) > 1e-12 {
		t.Errorf("E_rx = %g", got)
	}
}

func TestTxTimeAndEnergy(t *testing.T) {
	c := DefaultCC2420()
	// 125 bytes = 1000 bits at 250 kbit/s = 4 ms.
	if got := float64(c.TxTime(125)); math.Abs(got-4e-3) > 1e-12 {
		t.Errorf("TxTime(125) = %g, want 4ms", got)
	}
	wantE := 4e-3 * 52.2e-3
	if got := float64(c.TxEnergy(125)); math.Abs(got-wantE) > 1e-12 {
		t.Errorf("TxEnergy(125) = %g, want %g", got, wantE)
	}
	if got := float64(c.RxEnergy(125)); math.Abs(got-4e-3*56.4e-3) > 1e-12 {
		t.Errorf("RxEnergy(125) = %g", got)
	}
}

func TestValidateCatchesBadChips(t *testing.T) {
	good := DefaultCC2420()
	cases := []func(*Chip){
		func(c *Chip) { c.BitRate = 0 },
		func(c *Chip) { c.TxPower = 0 },
		func(c *Chip) { c.RxPower = -1 },
		func(c *Chip) { c.SleepPower = -1 },
		func(c *Chip) { c.RampUpTime = -1 },
		func(c *Chip) { c.SleepPower = c.RxPower * 2 }, // ordering violated
		func(c *Chip) { c.IdlePower = c.RxPower * 2 },
	}
	for i, mutate := range cases {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: mutation accepted", i)
		}
	}
}

func TestPowerOrdering(t *testing.T) {
	c := DefaultCC2420()
	if !(c.SleepPower < c.IdlePower && c.IdlePower < c.RxPower) {
		t.Error("power states must be ordered sleep < idle < rx")
	}
	if c.RampUpTime <= 0 || c.RampUpEnergy <= 0 {
		t.Error("ramp-up costs must be positive for a realistic chip")
	}
}

func TestAT86RF230(t *testing.T) {
	c := DefaultAT86RF230()
	if err := c.Validate(); err != nil {
		t.Fatalf("default AT86RF230 invalid: %v", err)
	}
	if c.OutputDBm != 3 {
		t.Errorf("default output %d dBm, want +3", c.OutputDBm)
	}
	// The RF230's headline trade-off vs the CC2420: cheaper receive bits,
	// near-zero sleep draw, slower wake-up ramp.
	cc := DefaultCC2420()
	if c.EnergyPerBitRx() >= cc.EnergyPerBitRx() {
		t.Errorf("RF230 per-bit RX (%v) should undercut CC2420 (%v)",
			c.EnergyPerBitRx(), cc.EnergyPerBitRx())
	}
	if c.SleepPower >= cc.SleepPower {
		t.Errorf("RF230 sleep (%v) should undercut CC2420 (%v)", c.SleepPower, cc.SleepPower)
	}
	if c.RampUpTime <= cc.RampUpTime {
		t.Errorf("RF230 ramp (%v) should exceed CC2420 (%v)", c.RampUpTime, cc.RampUpTime)
	}
	if _, err := AT86RF230(7); err == nil {
		t.Error("unsupported output level accepted")
	}
}
