package scenario

import (
	"fmt"

	"wsndse/internal/casestudy"
	"wsndse/internal/platform"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

func init() {
	MustRegister(ECGWard())
	MustRegister(MixedWard())
	MustRegister(Athletes())
	MustRegister(DenseGTS(7))
	MustRegister(RawStream())
}

// ecgNode builds one case-study wearable: a 250 Hz ECG compressor on
// Shimmer-class hardware exploring the paper's CR grid.
func ecgNode(name string, kind casestudy.Kind) NodeSpec {
	return NodeSpec{
		Name:       name,
		Kind:       kind,
		Platform:   platform.Shimmer(),
		SampleFreq: casestudy.SampleRate,
		CRs:        casestudy.CRGrid(),
	}
}

// telemetryNode builds a low-rate raw-streaming mote. Raw nodes run no
// compression, so their µC frequency axis collapses to one point (the
// model's application duty cycle is zero either way).
func telemetryNode(name string, p platform.Platform, fs units.Hertz, payload int) NodeSpec {
	return NodeSpec{
		Name:         name,
		Kind:         casestudy.KindRaw,
		Platform:     p,
		SampleFreq:   fs,
		MicroFreqs:   []units.Hertz{1e6},
		PayloadBytes: payload,
	}
}

// ECGWard is the paper's §4–5 case study: six homogeneous ECG patients,
// half wavelet and half compressed-sensing, on the full χ_mac grid. It is
// the reference workload every other scenario deviates from.
func ECGWard() Scenario {
	nodes := make([]NodeSpec, casestudy.DefaultNodes)
	for i, kind := range casestudy.DefaultKinds(casestudy.DefaultNodes) {
		nodes[i] = ecgNode(fmt.Sprintf("%s-%d", kind, i), kind)
	}
	return Scenario{
		Name:         "ecg-ward",
		Description:  "the paper's six-patient ECG ward (3 DWT + 3 CS, Shimmer)",
		Stress:       "the reference workload: CR-vs-energy-vs-delay over the full MAC grid",
		Nodes:        nodes,
		BeaconOrders: []int{1, 2, 3, 4, 5, 6},
		SFOGaps:      []int{0, 1, 2, 3},
		Payloads:     []int{32, 48, 64, 80, 102},
		Theta:        0.5,
		SimDuration:  60,
		SimSeed:      1,
	}
}

// MixedWard is a heterogeneous hospital ward: ECG compressors share the
// superframe with short-frame temperature motes on different hardware and
// an actuator whose acknowledgements trickle up at 2 Hz. The mixed payload
// profiles exercise the per-node MAC views of the model and the per-node
// overrides of the simulator.
func MixedWard() Scenario {
	return Scenario{
		Name:        "mixed-ward",
		Description: "ECG compressors + TelosB temperature motes + an actuator-ack node",
		Stress:      "mixed traffic and per-node payload profiles across two platforms",
		Nodes: []NodeSpec{
			ecgNode("ecg-dwt-0", casestudy.KindDWT),
			ecgNode("ecg-dwt-1", casestudy.KindDWT),
			ecgNode("ecg-cs-2", casestudy.KindCS),
			telemetryNode("temp-3", platform.TelosB(), 4, 16),
			telemetryNode("temp-4", platform.TelosB(), 4, 16),
			telemetryNode("actuator-5", platform.Shimmer(), 2, 16),
		},
		BeaconOrders: []int{2, 3, 4, 5, 6},
		SFOGaps:      []int{0, 1, 2},
		Payloads:     []int{48, 64, 80},
		Theta:        0.5,
		SimDuration:  60,
		SimSeed:      2,
	}
}

// Athletes is a four-runner training squad on a lossy on-field channel:
// bursty block-codec motion data at 100 Hz, 5 % frame loss, and ϑ = 1
// because no runner's battery may drain faster than the squad's. The
// coach's runner streams at high fidelity (CR near raw).
func Athletes() Scenario {
	coach := NodeSpec{
		Name:       "motion-coach",
		Kind:       casestudy.KindDWT,
		Platform:   platform.Shimmer(),
		SampleFreq: 100,
		CRs:        []float64{0.32, 0.35, 0.38},
	}
	runner := func(name string, kind casestudy.Kind) NodeSpec {
		n := ecgNode(name, kind)
		n.SampleFreq = 100
		return n
	}
	return Scenario{
		Name:        "athletes",
		Description: "four runners with bursty 100 Hz motion data on a 5% lossy channel",
		Stress:      "block arrivals (the Eq. 9 uniformity assumption breaks) + retransmissions",
		Nodes: []NodeSpec{
			coach,
			runner("motion-1", casestudy.KindDWT),
			runner("motion-2", casestudy.KindCS),
			runner("motion-3", casestudy.KindCS),
		},
		BeaconOrders: []int{1, 2, 3},
		SFOGaps:      []int{0, 1},
		Payloads:     []int{32, 48, 64},
		Theta:        1.0,
		Traffic: Traffic{
			Arrival:         sim.ArrivalBlock,
			PacketErrorRate: 0.05,
			BlockSamples:    256,
		},
		SimDuration: 120,
		SimSeed:     7,
	}
}

// DenseGTS builds an n-node star engineered to starve the 7-GTS-slot
// budget: ECG compressed-sensing streams interleaved with short-frame
// telemetry motes, short payloads, and beacon orders small enough that a
// packet service barely fits a slot. At n = 7 every node must fit exactly
// one slot for the configuration to be feasible; past 7 the protocol
// itself runs out of slots and the whole space is infeasible — the cliff
// the starvation sweep in internal/experiments walks over. The registered
// instance is DenseGTS(7).
func DenseGTS(n int) Scenario {
	nodes := make([]NodeSpec, n)
	for i := range nodes {
		if i%2 == 0 {
			nodes[i] = ecgNode(fmt.Sprintf("ecg-cs-%d", i), casestudy.KindCS)
		} else {
			nodes[i] = telemetryNode(fmt.Sprintf("temp-%d", i), platform.TelosB(), 8, 16)
		}
	}
	return Scenario{
		Name:         "dense-gts",
		Description:  fmt.Sprintf("%d nodes contending for the 7 GTS slots on short frames", n),
		Stress:       "GTS starvation: slot quantization and the 7-slot budget dominate feasibility",
		Nodes:        nodes,
		BeaconOrders: []int{1, 2, 3, 4},
		SFOGaps:      []int{0, 1},
		Payloads:     []int{16, 32, 48},
		Theta:        0.5,
		SimDuration:  30,
		SimSeed:      3,
	}
}

// RawStream is three uncompressed ECG streamers: no quality axis at all
// (PRD is identically zero), so the three-objective front collapses onto
// the energy/delay plane and the radio term dominates every budget — the
// workload a compression-blind baseline model sees everywhere.
func RawStream() Scenario {
	return Scenario{
		Name:        "raw-stream",
		Description: "three uncompressed 250 Hz ECG streamers (375 B/s each)",
		Stress:      "radio-dominated energy with no quality trade-off; bandwidth pressure",
		Nodes: []NodeSpec{
			telemetryNode("raw-0", platform.Shimmer(), casestudy.SampleRate, 0),
			telemetryNode("raw-1", platform.Shimmer(), casestudy.SampleRate, 0),
			telemetryNode("raw-2", platform.Shimmer(), casestudy.SampleRate, 0),
		},
		BeaconOrders: []int{1, 2, 3, 4, 5, 6},
		SFOGaps:      []int{0, 1},
		Payloads:     []int{64, 80, 102},
		Theta:        0,
		SimDuration:  30,
		SimSeed:      5,
	}
}
