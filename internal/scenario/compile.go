package scenario

import (
	"fmt"

	"wsndse/internal/app"
	"wsndse/internal/casestudy"
	"wsndse/internal/core"
	"wsndse/internal/dse"
	"wsndse/internal/units"
)

// Compiled is the compiled evaluation pipeline of a scenario: the full
// (BO × SFO gap × payload) MAC grid, the per-node MAC views of
// payload-override nodes over the (BO × SFO gap) grid, per-node
// application instances per CR grid index, and the per (application,
// sample-rate) output rates and quality values — all pre-built once, so
// evaluation reduces to table lookups plus the Eq. 1–9 arithmetic of
// core.EvaluateWithRatesInto and steady-state evaluation performs zero
// heap allocations.
//
// The compiled evaluator is guaranteed bit-identical to
// Problem.Evaluator(): the tables hold exactly the objects and values the
// reference path would rebuild per call, and the arithmetic is the same
// core code.
type Compiled struct {
	problem *Problem
	n       int
	theta   float64

	// base is the flattened (BO × SFO gap × payload) grid of shared MACs;
	// views[i] is nil for nodes following the network payload gene, else
	// the (BO × SFO gap) grid of node i's payload-override view.
	base            []core.GTSMacEntry
	views           [][]core.GTSMacEntry
	nBO, nGap, nPay int

	// Per-node χ_node tables. Nodes without a CR gene (raw streamers)
	// hold single-entry tables at their fixed CR of 1.
	apps    [][]app.Application
	phiIn   []units.BytesPerSecond
	phiOut  [][]units.BytesPerSecond
	quality [][]float64
	freqs   [][]units.Hertz // freqs[node][fIdx], the node's explorable grid
}

// Compile pre-builds the lookup tables of the compiled evaluation
// pipeline. It fails fast on grid values the reference evaluator would
// reject for every configuration; χ_mac points whose MAC construction
// fails are recorded and reported per evaluation instead.
func (p *Problem) Compile() (*Compiled, error) {
	sc := p.Scenario
	n := len(sc.Nodes)
	t := &Compiled{
		problem: p,
		n:       n,
		theta:   sc.Theta,
		nBO:     len(sc.BeaconOrders),
		nGap:    len(sc.SFOGaps),
		nPay:    len(sc.Payloads),
		views:   make([][]core.GTSMacEntry, n),
		apps:    make([][]app.Application, n),
		phiIn:   make([]units.BytesPerSecond, n),
		phiOut:  make([][]units.BytesPerSecond, n),
		quality: make([][]float64, n),
		freqs:   make([][]units.Hertz, n),
	}

	t.base = core.BuildGTSMacGrid(sc.BeaconOrders, sc.SFOGaps, sc.Payloads, n)
	for i, ns := range sc.Nodes {
		if ns.PayloadBytes > 0 {
			// The (BO × SFO gap) view grid of a payload-override node:
			// the payload axis collapses to the node's fixed frame size.
			t.views[i] = core.BuildGTSMacGrid(sc.BeaconOrders, sc.SFOGaps, []int{ns.PayloadBytes}, n)
		}
	}

	for i, ns := range sc.Nodes {
		phiIn := ns.Platform.InputRate(ns.SampleFreq)
		t.phiIn[i] = phiIn
		crs := []float64{1} // nodes without a CR gene forward unmodified
		if g := p.crGene[i]; g >= 0 {
			crs = p.space.Params[g].Values
		}
		apps := make([]app.Application, len(crs))
		rates := make([]units.BytesPerSecond, len(crs))
		quals := make([]float64, len(crs))
		for j, cr := range crs {
			a, err := casestudy.AppFor(p.Cal, ns.Kind, cr)
			if err != nil {
				return nil, fmt.Errorf("scenario %q: Compile: node %s, CR %g: %w", sc.Name, ns.Name, cr, err)
			}
			apps[j] = a
			rates[j] = a.OutputRate(phiIn)
			quals[j] = a.Quality(phiIn)
		}
		t.apps[i] = apps
		t.phiOut[i] = rates
		t.quality[i] = quals
		fVals := p.space.Params[p.fGene[i]].Values
		freqs := make([]units.Hertz, len(fVals))
		for j, f := range fVals {
			freqs[j] = units.Hertz(f)
		}
		t.freqs[i] = freqs
	}
	return t, nil
}

// Evaluator returns the compiled three-objective evaluator: minimize
// (E_net [W], quality loss, delay_net [s]), bit-identical to
// Problem.Evaluator() but allocation-free in steady state. It is safe for
// concurrent use and implements dse.IntoEvaluator and dse.Forkable, so
// the batch runtime gives each worker a private scratch instance.
func (t *Compiled) Evaluator() dse.Evaluator {
	return dse.NewPooledForkable(3, func() dse.EvalInto { return newCompiledEval(t).EvaluateInto })
}

// compiledEval is one evaluation context: the shared immutable tables plus
// a private core.Workspace. Not safe for concurrent use.
type compiledEval struct {
	t  *Compiled
	ws *core.Workspace
}

func newCompiledEval(t *Compiled) *compiledEval {
	ws := core.NewWorkspace(t.n)
	hasViews := false
	for i, ns := range t.problem.Scenario.Nodes {
		ws.Nodes[i].Name = ns.Name
		ws.Nodes[i].Platform = ns.Platform
		ws.Nodes[i].SampleFreq = ns.SampleFreq
		if t.views[i] != nil {
			hasViews = true
		}
	}
	if hasViews {
		ws.Net.NodeMACs = make([]core.MAC, t.n)
	}
	ws.Net.Theta = t.theta
	copy(ws.PhiIn, t.phiIn)
	return &compiledEval{t: t, ws: ws}
}

// EvaluateInto is the dse.EvalInto context surface: table lookups re-point the
// workspace at the configuration's pre-built MAC, views and applications,
// then the shared core arithmetic runs on reused scratch. Error order
// matches the reference evaluator: base MAC first, then per-node checks in
// node order.
func (e *compiledEval) EvaluateInto(c dse.Config, objs dse.Objectives) error {
	t := e.t
	p := t.problem
	if !p.space.Valid(c) {
		return fmt.Errorf("scenario %q: invalid config %v", p.Scenario.Name, c)
	}
	mb := t.base[(c[0]*t.nGap+c[1])*t.nPay+c[2]]
	if mb.Err != nil {
		return mb.Err
	}
	vi := c[0]*t.nGap + c[1] // view grid index (payload axis collapsed)
	ws := e.ws
	for i := 0; i < t.n; i++ {
		cr := 0
		if g := p.crGene[i]; g >= 0 {
			cr = c[g]
		}
		ws.Nodes[i].App = t.apps[i][cr]
		ws.Nodes[i].MicroFreq = t.freqs[i][c[p.fGene[i]]]
		ws.PhiOut[i] = t.phiOut[i][cr]
		ws.Quality[i] = t.quality[i][cr]
		if t.views[i] != nil {
			mv := t.views[i][vi]
			if mv.Err != nil {
				return mv.Err
			}
			ws.Net.NodeMACs[i] = mv.MAC
		}
	}
	ws.Net.MAC = mb.MAC
	return ws.Evaluate(objs)
}
