package scenario

import (
	"math"
	"math/rand"
	"testing"

	"wsndse/internal/casestudy"
	"wsndse/internal/core"
	"wsndse/internal/dse"
)

// TestCompiledMatchesReferenceAllScenarios is the tentpole equivalence
// guarantee: for every registered scenario, the compiled evaluator returns
// bit-identical objectives and identical feasibility (including the
// infeasibility class) to the reference evaluator, both directly and
// through the batch runtime at worker counts 1 and 8.
func TestCompiledMatchesReferenceAllScenarios(t *testing.T) {
	for _, sc := range List() {
		t.Run(sc.Name, func(t *testing.T) {
			problem, err := NewProblem(sc, casestudy.DefaultCalibration())
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := problem.Compile()
			if err != nil {
				t.Fatal(err)
			}
			ref := problem.Evaluator()
			fast := compiled.Evaluator()

			rng := rand.New(rand.NewSource(int64(len(sc.Name)) * 1237))
			configs := make([]dse.Config, 0, 260)
			for i := 0; i < 250; i++ {
				configs = append(configs, problem.Space().Random(rng))
			}
			lo := make(dse.Config, len(problem.Space().Params))
			hi := make(dse.Config, len(problem.Space().Params))
			for i, p := range problem.Space().Params {
				hi[i] = len(p.Values) - 1
			}
			configs = append(configs, lo, hi, problem.NominalConfig())

			feasible := 0
			for _, c := range configs {
				want, werr := ref.Evaluate(c)
				got, gerr := fast.Evaluate(c)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("config %v: reference err %v, compiled err %v", c, werr, gerr)
				}
				if werr != nil {
					if core.IsInfeasible(werr) != core.IsInfeasible(gerr) {
						t.Fatalf("config %v: infeasibility class differs: %v vs %v", c, werr, gerr)
					}
					continue
				}
				feasible++
				for k := range want {
					if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
						t.Fatalf("config %v objective %d: %v, want %v (bitwise)", c, k, got[k], want[k])
					}
				}
			}
			if feasible == 0 {
				t.Logf("scenario %s: no feasible configuration in the sample (infeasibility-stress scenario)", sc.Name)
			}

			// Batch runtime at worker counts 1 and 8 against the
			// sequential reference.
			want := dse.NewParallelEvaluator(ref, 1).EvaluateBatch(configs)
			for _, workers := range []int{1, 8} {
				got := dse.NewParallelEvaluator(compiled.Evaluator(), workers).EvaluateBatch(configs)
				for i := range want {
					if got[i].Feasible != want[i].Feasible {
						t.Fatalf("workers=%d: config %v feasibility %v, want %v",
							workers, configs[i], got[i].Feasible, want[i].Feasible)
					}
					if !want[i].Feasible {
						continue
					}
					for k := range want[i].Objs {
						if math.Float64bits(got[i].Objs[k]) != math.Float64bits(want[i].Objs[k]) {
							t.Fatalf("workers=%d: config %v objective %d: %v, want %v (bitwise)",
								workers, configs[i], k, got[i].Objs[k], want[i].Objs[k])
						}
					}
				}
			}
		})
	}
}

// TestCompiledZeroAllocsScenario pins the allocation guarantee on a
// scenario with per-node MAC views (mixed-ward has payload-override
// nodes), the structurally richest compiled path.
func TestCompiledZeroAllocsScenario(t *testing.T) {
	sc, ok := Lookup("mixed-ward")
	if !ok {
		t.Fatal("mixed-ward not registered")
	}
	problem, err := NewProblem(sc, casestudy.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := problem.Compile()
	if err != nil {
		t.Fatal(err)
	}
	eval := compiled.Evaluator().(dse.Forkable).Fork().(dse.IntoEvaluator)

	rng := rand.New(rand.NewSource(2))
	var cfg dse.Config
	for i := 0; ; i++ {
		c := problem.Space().Random(rng)
		if _, err := eval.Evaluate(c); err == nil {
			cfg = c
			break
		}
		if i > 20000 {
			t.Fatal("no feasible mixed-ward configuration found")
		}
	}
	objs := make(dse.Objectives, 3)
	if err := eval.EvaluateInto(cfg, objs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := eval.EvaluateInto(cfg, objs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("compiled EvaluateInto allocates %.1f objects per call in steady state, want 0", allocs)
	}
}
