package scenario

import (
	"reflect"
	"testing"

	"wsndse/internal/casestudy"
	"wsndse/internal/dse"
	"wsndse/internal/sim"
)

// TestScenarioDeterminism asserts, for every registered scenario, that
// both sides of the stack are bit-identical across repeated runs and
// across worker counts: the model-driven NSGA-II exploration (fronts and
// evaluation counts at workers = 1 vs 8, twice each) and the packet-level
// simulation (two runs of the same configuration). Run it under -race to
// also catch scheduling-dependent state in the batch runtime.
func TestScenarioDeterminism(t *testing.T) {
	cal := casestudy.DefaultCalibration()
	for _, sc := range List() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			p, err := NewProblem(sc, cal)
			if err != nil {
				t.Fatal(err)
			}

			explore := func(workers int) *dse.Result {
				res, err := dse.NSGA2(p.Space(), p.Evaluator(), dse.NSGA2Config{
					PopulationSize: 16,
					Generations:    4,
					Seed:           29,
					Workers:        workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			seq := explore(1)
			if len(seq.Front) == 0 {
				t.Fatalf("scenario %q explored to an empty front", sc.Name)
			}
			for run := 0; run < 2; run++ {
				par := explore(8)
				if !reflect.DeepEqual(seq, par) {
					t.Fatalf("scenario %q: workers=8 run %d differs from workers=1", sc.Name, run)
				}
			}
			if again := explore(1); !reflect.DeepEqual(seq, again) {
				t.Fatalf("scenario %q: sequential re-run differs", sc.Name)
			}

			params, err := p.FeasibleParams()
			if err != nil {
				t.Fatal(err)
			}
			// Model: two evaluations of the same network are identical.
			evalOnce := func() []float64 {
				net, err := p.Network(params)
				if err != nil {
					t.Fatal(err)
				}
				ev, err := net.Evaluate()
				if err != nil {
					t.Fatal(err)
				}
				return []float64{float64(ev.Energy), ev.Quality, float64(ev.Delay)}
			}
			if a, b := evalOnce(), evalOnce(); !reflect.DeepEqual(a, b) {
				t.Fatalf("scenario %q: model evaluation not reproducible: %v vs %v", sc.Name, a, b)
			}

			// Simulator: identical configuration and seed, identical
			// packet-level results.
			simOnce := func() *sim.Result {
				cfg, err := p.SimConfig(params, 10, sc.SimSeed)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			if a, b := simOnce(), simOnce(); !reflect.DeepEqual(a, b) {
				t.Fatalf("scenario %q: simulation not reproducible", sc.Name)
			}
		})
	}
}
