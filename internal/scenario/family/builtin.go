package family

import (
	"fmt"
	"strconv"
	"strings"

	"wsndse/internal/casestudy"
	"wsndse/internal/platform"
	"wsndse/internal/scenario"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

func init() {
	MustRegister(ChipsetSweep())
	MustRegister(MobileRelay())
}

// nodeCount parses an "n<k>" axis value.
func nodeCount(v string) (int, error) {
	k, err := strconv.Atoi(strings.TrimPrefix(v, "n"))
	if err != nil || k < 1 {
		return 0, fmt.Errorf("bad node-count value %q", v)
	}
	return k, nil
}

// compressionNode builds one wearable compressor on the given chipset.
// Kinds alternate DWT/CS by index, like the paper's ward.
func compressionNode(i int, plat platform.Platform) scenario.NodeSpec {
	kind := casestudy.KindDWT
	if i%2 == 1 {
		kind = casestudy.KindCS
	}
	return scenario.NodeSpec{
		Name:       fmt.Sprintf("%s-%d", kind, i),
		Kind:       kind,
		Platform:   plat,
		SampleFreq: casestudy.SampleRate,
		CRs:        casestudy.CRGrid(),
	}
}

// ChipsetSweep is the chipset-comparison family, grounded in the
// comparative chipset investigations of the related-work survey: the same
// ward-style workload re-hosted on every catalog platform, so the chipset
// itself (per-cycle µC energy, radio per-bit costs, sleep floors, RAM)
// becomes an explorable axis of the design space. The mix axis adds a
// platform-heterogeneous variant (one node swapped for a TelosB telemetry
// mote), and the payload/traffic axes vary frame profiles and the arrival
// process.
func ChipsetSweep() Family {
	return Family{
		Name:        "chipset-sweep",
		Description: "ward workload re-hosted across the platform catalog (chipset comparison)",
		Axes: []Axis{
			{Name: "platform", Values: platform.Names()},
			{Name: "nodes", Values: []string{"n3", "n4", "n5", "n6"}},
			{Name: "mix", Values: []string{"homo", "relay"}},
			{Name: "payload", Values: []string{"short", "long"}},
			{Name: "traffic", Values: []string{"uniform", "block"}},
		},
		Build: func(v Values) (scenario.Scenario, error) {
			plat, ok := platform.ByName(v["platform"])
			if !ok {
				return scenario.Scenario{}, fmt.Errorf("unknown platform %q", v["platform"])
			}
			n, err := nodeCount(v["nodes"])
			if err != nil {
				return scenario.Scenario{}, err
			}
			nodes := make([]scenario.NodeSpec, n)
			for i := range nodes {
				nodes[i] = compressionNode(i, plat)
			}
			if v["mix"] == "relay" {
				// The platform-mix variant: the last wearable becomes a
				// short-frame TelosB telemetry mote in the same superframe.
				nodes[n-1] = scenario.NodeSpec{
					Name:         fmt.Sprintf("temp-%d", n-1),
					Kind:         casestudy.KindRaw,
					Platform:     platform.TelosB(),
					SampleFreq:   4,
					MicroFreqs:   []units.Hertz{1e6},
					PayloadBytes: 16,
				}
			}
			payloads := []int{32, 48}
			if v["payload"] == "long" {
				payloads = []int{64, 80, 102}
			}
			var traffic scenario.Traffic
			if v["traffic"] == "block" {
				traffic = scenario.Traffic{Arrival: sim.ArrivalBlock, BlockSamples: 256}
			}
			name := ChipsetSweep().MemberName(v)
			return scenario.Scenario{
				Description: fmt.Sprintf("%d-node %s ward on %s frames, %s arrivals",
					n, v["platform"], v["payload"], v["traffic"]),
				Stress:       "chipset coefficients: per-cycle µC energy, radio bit costs and sleep floors shift the front",
				Nodes:        nodes,
				BeaconOrders: []int{2, 3, 4, 5},
				SFOGaps:      []int{0, 1, 2},
				Payloads:     payloads,
				Theta:        0.5,
				Traffic:      traffic,
				SimDuration:  30,
				SimSeed:      memberSeed(name),
			}, nil
		},
	}
}

// relayWalks maps the topology-schedule axis to link-quality phase shapes:
// PER levels the mobile relay sees as it is carried through the ward. The
// pace axis scales the phase period.
var relayWalks = map[string][]float64{
	"bedside":   {0, 0.15, 0},
	"corridor":  {0, 0.35, 0.1, 0.35, 0},
	"roundtrip": {0, 0.25, 0.5, 0.25, 0},
}

// MobileRelay is the mobile-relay family, grounded in the mobile-relay
// energy-throughput trade-off study of the related work: a ward of fixed
// wearables plus one body-worn relay whose link to the coordinator
// degrades and recovers on a time-varying schedule as its carrier walks.
// The topology schedule (walk shape × pace) is threaded through the
// simulator as a per-node LinkPhase schedule; the analytical model never
// sees it, which is exactly why these members make good cross-validation
// probes — the xcheck harness compares in the model's validity envelope
// and the native schedule exercises the retransmission path everywhere
// else.
func MobileRelay() Family {
	return Family{
		Name:        "mobile-relay",
		Description: "fixed ward + one mobile relay on a time-varying link schedule",
		Axes: []Axis{
			{Name: "nodes", Values: []string{"n3", "n4", "n5", "n6"}},
			{Name: "walk", Values: []string{"bedside", "corridor", "roundtrip"}},
			{Name: "pace", Values: []string{"slow", "fast"}},
			{Name: "relay", Values: []string{"shimmer", "z1"}},
		},
		Build: func(v Values) (scenario.Scenario, error) {
			n, err := nodeCount(v["nodes"])
			if err != nil {
				return scenario.Scenario{}, err
			}
			relayPlat, ok := platform.ByName(v["relay"])
			if !ok {
				return scenario.Scenario{}, fmt.Errorf("unknown relay platform %q", v["relay"])
			}
			walk, ok := relayWalks[v["walk"]]
			if !ok {
				return scenario.Scenario{}, fmt.Errorf("unknown walk %q", v["walk"])
			}
			period := 20.0 // seconds per phase
			if v["pace"] == "fast" {
				period = 8
			}
			link := make([]sim.LinkPhase, len(walk))
			for i, per := range walk {
				link[i] = sim.LinkPhase{Start: units.Seconds(float64(i) * period), PER: per}
			}

			nodes := make([]scenario.NodeSpec, n)
			for i := 0; i < n-1; i++ {
				nodes[i] = compressionNode(i, platform.Shimmer())
			}
			relay := compressionNode(n-1, relayPlat)
			relay.Name = "relay-" + v["relay"]
			relay.Kind = casestudy.KindCS // the relay compresses aggressively to survive fades
			relay.Link = link
			nodes[n-1] = relay

			name := MobileRelay().MemberName(v)
			return scenario.Scenario{
				Description:  fmt.Sprintf("%d nodes, %s relay on a %s/%s walk", n, v["relay"], v["walk"], v["pace"]),
				Stress:       "time-varying link quality: retransmission bursts and recovery on the mobile node",
				Nodes:        nodes,
				BeaconOrders: []int{2, 3, 4},
				SFOGaps:      []int{0, 1},
				Payloads:     []int{48, 64, 80},
				Theta:        0.75,
				SimDuration:  units.Seconds(float64(len(walk)) * period),
				SimSeed:      memberSeed(name),
			}, nil
		},
	}
}
