// Package family turns the scenario registry from a hand-curated list
// into a generated population. A Family is a declarative, parameterized
// scenario generator: named axes (node count, platform mix, payload
// profile, traffic model, topology schedule, …) whose cartesian product
// enumerates members, and a Build function that materializes one member
// from a choice of axis values. Enabling a family registers every member
// through the ordinary scenario.Register/Lookup/List registry, so the
// CLIs, the exploration service and the experiments harness consume
// generated workloads exactly like hand-written ones.
//
// Two contracts make generated scenarios trustworthy rather than merely
// numerous:
//
//   - Feasibility: Enable screens every member before registration — a
//     scenario only enters the registry if the analytical model accepts
//     at least one configuration of it (no member ever registers with an
//     infeasible superframe allocation). This is the GTS 7-slot cliff
//     check generalized from one sweep to the whole population.
//   - Fingerprints: every member carries the scenario content fingerprint
//     (scenario.Scenario.Fingerprint), so a member can be reproduced, or
//     recognized across processes, from its hash alone.
//
// The same machinery doubles as a correctness engine: the
// internal/scenario/xcheck harness evaluates generated members through
// both the compiled analytical model and the packet-level simulator and
// fails on disagreement beyond tolerance, and FromBytes decodes fuzz
// bytes into family coordinates so `go test -fuzz` explores the member
// space adversarially.
//
// Defining a family is declarative — axes plus a Build function:
//
//	family.MustRegister(family.Family{
//		Name:        "my-ward",
//		Description: "ward sized by node count and frame profile",
//		Axes: []family.Axis{
//			{Name: "nodes", Values: []string{"n3", "n4", "n5"}},
//			{Name: "payload", Values: []string{"short", "long"}},
//		},
//		Build: func(v family.Values) (scenario.Scenario, error) {
//			// materialize the member at coordinate v; Name is
//			// stamped by the framework ("my-ward/n4-long").
//		},
//	})
//	added, err := family.Enable("my-ward") // screen + register members
//
// Axis values are short kebab-safe tokens because they become member
// names; Build must be a pure function of its coordinate (derive seeds
// from the member name, not a counter), so enumeration order, fuzzing and
// re-registration all agree on what each member is.
package family

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"wsndse/internal/casestudy"
	"wsndse/internal/scenario"
)

// Axis is one named dimension of a family: the generator enumerates the
// cartesian product of all axis values. Values are short kebab-case
// tokens; they become part of member scenario names.
type Axis struct {
	Name   string
	Values []string
}

// Values is one member's coordinate: a choice of value per axis.
type Values map[string]string

// Family is a declarative scenario generator.
type Family struct {
	// Name prefixes every member scenario ("<family>/<values…>").
	Name string
	// Description is one sentence for listings.
	Description string
	// Axes declares the explorable dimensions, in naming order.
	Axes []Axis
	// Build materializes the member at the given coordinate. The
	// returned scenario's Name is overwritten with the canonical member
	// name; everything else is Build's responsibility.
	Build func(v Values) (scenario.Scenario, error)
}

func (f Family) validate() error {
	if f.Name == "" {
		return fmt.Errorf("family: empty name")
	}
	if strings.Contains(f.Name, "/") {
		return fmt.Errorf("family %q: name may not contain '/'", f.Name)
	}
	if f.Build == nil {
		return fmt.Errorf("family %q: nil Build", f.Name)
	}
	if len(f.Axes) == 0 {
		return fmt.Errorf("family %q: no axes", f.Name)
	}
	seen := map[string]bool{}
	for _, ax := range f.Axes {
		if ax.Name == "" || len(ax.Values) == 0 {
			return fmt.Errorf("family %q: axis %q has no values", f.Name, ax.Name)
		}
		if seen[ax.Name] {
			return fmt.Errorf("family %q: duplicate axis %q", f.Name, ax.Name)
		}
		seen[ax.Name] = true
		vals := map[string]bool{}
		for _, v := range ax.Values {
			if v == "" || strings.ContainsAny(v, "/ ") {
				return fmt.Errorf("family %q: axis %q has malformed value %q", f.Name, ax.Name, v)
			}
			if vals[v] {
				return fmt.Errorf("family %q: axis %q has duplicate value %q", f.Name, ax.Name, v)
			}
			vals[v] = true
		}
	}
	return nil
}

// Size returns the member count (the product of axis cardinalities).
func (f Family) Size() int {
	n := 1
	for _, ax := range f.Axes {
		n *= len(ax.Values)
	}
	return n
}

// Members enumerates every coordinate in deterministic order: the last
// axis varies fastest, like a row-major grid walk.
func (f Family) Members() []Values {
	out := make([]Values, 0, f.Size())
	idx := make([]int, len(f.Axes))
	for {
		v := make(Values, len(f.Axes))
		for i, ax := range f.Axes {
			v[ax.Name] = ax.Values[idx[i]]
		}
		out = append(out, v)
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(f.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// MemberName is the canonical registry name of the member at v:
// "<family>/<v1>-<v2>-…" with values in axis order.
func (f Family) MemberName(v Values) string {
	parts := make([]string, len(f.Axes))
	for i, ax := range f.Axes {
		parts[i] = v[ax.Name]
	}
	return f.Name + "/" + strings.Join(parts, "-")
}

// Scenario materializes the member at v: it checks the coordinate against
// the axes, runs Build, stamps the canonical member name and a default
// description, and validates the result.
func (f Family) Scenario(v Values) (scenario.Scenario, error) {
	if len(v) != len(f.Axes) {
		return scenario.Scenario{}, fmt.Errorf("family %q: coordinate has %d of %d axes", f.Name, len(v), len(f.Axes))
	}
	for _, ax := range f.Axes {
		chosen, ok := v[ax.Name]
		if !ok {
			return scenario.Scenario{}, fmt.Errorf("family %q: coordinate misses axis %q", f.Name, ax.Name)
		}
		valid := false
		for _, val := range ax.Values {
			if val == chosen {
				valid = true
				break
			}
		}
		if !valid {
			return scenario.Scenario{}, fmt.Errorf("family %q: axis %q has no value %q", f.Name, ax.Name, chosen)
		}
	}
	s, err := f.Build(v)
	if err != nil {
		return scenario.Scenario{}, fmt.Errorf("family %q: building %s: %w", f.Name, f.MemberName(v), err)
	}
	s.Name = f.MemberName(v)
	if s.Description == "" {
		s.Description = fmt.Sprintf("%s member of the %s family", f.MemberName(v), f.Name)
	}
	if err := s.Validate(); err != nil {
		return scenario.Scenario{}, fmt.Errorf("family %q: member %s: %w", f.Name, s.Name, err)
	}
	return s, nil
}

// memberSeed derives a deterministic nonzero simulation seed from the
// member name, so every generated scenario gets its own stable channel
// seed without any global counter.
func memberSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	seed := int64(h.Sum64() & 0x7fffffffffffffff)
	if seed == 0 {
		seed = 1
	}
	return seed
}

// The family registry mirrors the scenario registry: process-wide,
// concurrency-safe, duplicate names rejected.
var registry = struct {
	mu       sync.RWMutex
	byName   map[string]Family
	enabled  map[string]bool // families whose members are registered
	enabling sync.Mutex      // serializes Enable's screen-and-register walk
}{byName: map[string]Family{}, enabled: map[string]bool{}}

// Register adds a family to the family registry (not yet its members —
// see Enable).
func Register(f Family) error {
	if err := f.validate(); err != nil {
		return err
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byName[f.Name]; dup {
		return fmt.Errorf("family: %q already registered", f.Name)
	}
	registry.byName[f.Name] = f
	return nil
}

// MustRegister is Register for init-time use.
func MustRegister(f Family) {
	if err := Register(f); err != nil {
		panic(err)
	}
}

// Lookup returns the named family.
func Lookup(name string) (Family, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	f, ok := registry.byName[name]
	return f, ok
}

// List returns the registered families sorted by name.
func List() []Family {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Family, 0, len(registry.byName))
	for _, f := range registry.byName {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted registered family names.
func Names() []string {
	fams := List()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// Enable materializes every member of the named family, screens it for
// feasibility, and registers it in the scenario registry. It returns the
// number of members newly registered (zero when the family was already
// enabled — Enable is idempotent and safe for concurrent use).
//
// The feasibility screen is the registration invariant of the package: a
// member whose design space contains no configuration the analytical
// model accepts (e.g. a superframe allocation that cannot fit the GTS
// budget at any χ_mac point) aborts Enable with an error instead of
// entering the registry.
func Enable(name string) (int, error) {
	f, ok := Lookup(name)
	if !ok {
		return 0, fmt.Errorf("family: unknown family %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	registry.enabling.Lock()
	defer registry.enabling.Unlock()
	registry.mu.RLock()
	done := registry.enabled[name]
	registry.mu.RUnlock()
	if done {
		return 0, nil
	}

	cal := casestudy.DefaultCalibration()
	added := 0
	for _, v := range f.Members() {
		s, err := f.Scenario(v)
		if err != nil {
			return added, err
		}
		if existing, ok := scenario.Lookup(s.Name); ok {
			// A test (or a previous partial Enable) registered this member
			// already; the fingerprint tells identity from collision.
			if existing.Fingerprint() != s.Fingerprint() {
				return added, fmt.Errorf("family %q: member %s already registered with different content", name, s.Name)
			}
			continue
		}
		p, err := scenario.NewProblem(s, cal)
		if err != nil {
			return added, err
		}
		if _, err := p.FeasibleParams(); err != nil {
			return added, fmt.Errorf("family %q: member %s has no feasible configuration: %w", name, s.Name, err)
		}
		if err := scenario.Register(s); err != nil {
			return added, err
		}
		added++
	}
	registry.mu.Lock()
	registry.enabled[name] = true
	registry.mu.Unlock()
	return added, nil
}

// EnableAll enables every registered family and returns the total number
// of newly registered members.
func EnableAll() (int, error) {
	total := 0
	for _, name := range Names() {
		n, err := Enable(name)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// FamilyOf extracts the family name from a member scenario name
// ("chipset-sweep/telosb-n4-…" → "chipset-sweep"). The second return is
// false for names without a family prefix.
func FamilyOf(scenarioName string) (string, bool) {
	i := strings.IndexByte(scenarioName, '/')
	if i <= 0 {
		return "", false
	}
	return scenarioName[:i], true
}

// FromBytes decodes fuzz bytes into a family coordinate and materializes
// the member: byte 0 picks the family (mod the registered count), byte
// 1+i picks axis i's value (mod its cardinality). Every byte string is a
// valid coordinate, which is what lets `go test -fuzz` walk the member
// space without a rejection loop.
func FromBytes(data []byte) (Family, Values, scenario.Scenario, error) {
	fams := List()
	if len(fams) == 0 {
		return Family{}, nil, scenario.Scenario{}, fmt.Errorf("family: none registered")
	}
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	f := fams[int(at(0))%len(fams)]
	v := make(Values, len(f.Axes))
	for i, ax := range f.Axes {
		v[ax.Name] = ax.Values[int(at(1+i))%len(ax.Values)]
	}
	s, err := f.Scenario(v)
	return f, v, s, err
}
