package family

import (
	"fmt"
	"strings"
	"testing"

	"wsndse/internal/casestudy"
	"wsndse/internal/platform"
	"wsndse/internal/scenario"
	"wsndse/internal/units"
)

// TestEnableAllRegistersPopulation is the headline acceptance check: with
// both builtin families enabled, the scenario registry holds a generated
// population of at least 200 scenarios, every member is retrievable by its
// canonical name, and Enable is idempotent.
func TestEnableAllRegistersPopulation(t *testing.T) {
	added, err := EnableAll()
	if err != nil {
		t.Fatalf("EnableAll: %v", err)
	}
	if added < 195 {
		t.Fatalf("EnableAll registered %d members, want ≥ 195", added)
	}
	if n := len(scenario.List()); n < 200 {
		t.Fatalf("registry holds %d scenarios after EnableAll, want ≥ 200", n)
	}

	for _, f := range List() {
		for _, v := range f.Members() {
			name := f.MemberName(v)
			got, ok := scenario.Lookup(name)
			if !ok {
				t.Fatalf("member %s not in registry after EnableAll", name)
			}
			want, err := f.Scenario(v)
			if err != nil {
				t.Fatalf("rebuilding %s: %v", name, err)
			}
			if got.Fingerprint() != want.Fingerprint() {
				t.Fatalf("member %s: registry copy fingerprints differently from a rebuild", name)
			}
			fam, ok := FamilyOf(name)
			if !ok || fam != f.Name {
				t.Fatalf("FamilyOf(%s) = %q, %v", name, fam, ok)
			}
		}
	}

	again, err := EnableAll()
	if err != nil {
		t.Fatalf("second EnableAll: %v", err)
	}
	if again != 0 {
		t.Fatalf("second EnableAll registered %d more members, want 0", again)
	}
}

// TestMemberEnumeration pins the deterministic enumeration contract:
// Members walks the cartesian product row-major (last axis fastest), twice
// in a row identically, with unique canonical names.
func TestMemberEnumeration(t *testing.T) {
	f := Family{
		Name: "enum",
		Axes: []Axis{
			{Name: "a", Values: []string{"x", "y"}},
			{Name: "b", Values: []string{"1", "2", "3"}},
		},
		Build: func(Values) (scenario.Scenario, error) { return scenario.Scenario{}, nil },
	}
	if f.Size() != 6 {
		t.Fatalf("Size = %d, want 6", f.Size())
	}
	first, second := f.Members(), f.Members()
	wantOrder := []string{"enum/x-1", "enum/x-2", "enum/x-3", "enum/y-1", "enum/y-2", "enum/y-3"}
	for i, v := range first {
		if got := f.MemberName(v); got != wantOrder[i] {
			t.Fatalf("member %d = %s, want %s", i, got, wantOrder[i])
		}
		if got := f.MemberName(second[i]); got != wantOrder[i] {
			t.Fatalf("second enumeration diverged at %d: %s", i, got)
		}
	}

	for _, bf := range List() {
		seen := map[string]bool{}
		for _, v := range bf.Members() {
			name := bf.MemberName(v)
			if seen[name] {
				t.Fatalf("family %s enumerates duplicate member %s", bf.Name, name)
			}
			seen[name] = true
		}
		if len(seen) != bf.Size() {
			t.Fatalf("family %s enumerated %d members, Size says %d", bf.Name, len(seen), bf.Size())
		}
	}
}

// TestFamilyFeasibilityProperty is the GTS 7-slot cliff generalized to the
// whole population: every member of every registered family must admit at
// least one configuration the analytical model accepts. This is the
// property Enable screens for; here it is asserted directly, member by
// member, so a family edit that pushes members off the cliff names the
// exact member that fell.
func TestFamilyFeasibilityProperty(t *testing.T) {
	cal := casestudy.DefaultCalibration()
	for _, f := range List() {
		for _, v := range f.Members() {
			s, err := f.Scenario(v)
			if err != nil {
				t.Fatalf("building %s: %v", f.MemberName(v), err)
			}
			p, err := scenario.NewProblem(s, cal)
			if err != nil {
				t.Fatalf("problem for %s: %v", s.Name, err)
			}
			if _, err := p.FeasibleParams(); err != nil {
				t.Errorf("member %s: %v", s.Name, err)
			}
		}
	}
}

// TestEnableRejectsInfeasibleFamily is the negative control on the
// registration invariant: a family whose members cannot fit the superframe
// (raw streamers far past the GTS budget) must abort Enable, and none of
// its members may leak into the scenario registry.
func TestEnableRejectsInfeasibleFamily(t *testing.T) {
	bad := Family{
		Name:        "infeasible-test",
		Description: "raw streamers past any GTS budget",
		Axes:        []Axis{{Name: "nodes", Values: []string{"n6"}}},
		Build: func(v Values) (scenario.Scenario, error) {
			nodes := make([]scenario.NodeSpec, 6)
			for i := range nodes {
				nodes[i] = scenario.NodeSpec{
					Name:         fmt.Sprintf("raw-%d", i),
					Kind:         casestudy.KindRaw,
					Platform:     platform.Shimmer(),
					SampleFreq:   4000, // 8 kB/s of raw samples per node
					MicroFreqs:   []units.Hertz{8e6},
					PayloadBytes: 102,
				}
			}
			return scenario.Scenario{
				Nodes:        nodes,
				BeaconOrders: []int{6}, // low duty cycle: tiny GTS capacity
				SFOGaps:      []int{4},
				Payloads:     []int{102},
				Theta:        0.5,
				SimDuration:  10,
				SimSeed:      1,
			}, nil
		},
	}
	if err := Register(bad); err != nil {
		t.Fatalf("registering control family: %v", err)
	}
	if _, err := Enable("infeasible-test"); err == nil {
		t.Fatal("Enable accepted a family with no feasible configuration")
	} else if !strings.Contains(err.Error(), "no feasible configuration") {
		t.Fatalf("Enable failed for the wrong reason: %v", err)
	}
	if _, ok := scenario.Lookup("infeasible-test/n6"); ok {
		t.Fatal("infeasible member leaked into the scenario registry")
	}
}

// TestFromBytes pins the fuzz decoder contract: every byte string decodes
// to a valid member of a registered family, short inputs zero-pad, and the
// decoded scenario matches the member built from its coordinate.
func TestFromBytes(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},
		{1},
		{0, 1, 2, 3, 4, 5},
		{255, 254, 253},
		{7, 200, 13, 77, 3, 9, 250, 250, 250, 250},
	}
	for _, data := range cases {
		f, v, s, err := FromBytes(data)
		if err != nil {
			t.Fatalf("FromBytes(%v): %v", data, err)
		}
		if s.Name != f.MemberName(v) {
			t.Fatalf("FromBytes(%v) named %s, coordinate says %s", data, s.Name, f.MemberName(v))
		}
		rebuilt, err := f.Scenario(v)
		if err != nil {
			t.Fatalf("rebuilding %s: %v", s.Name, err)
		}
		if rebuilt.Fingerprint() != s.Fingerprint() {
			t.Fatalf("FromBytes(%v) and Scenario(v) disagree for %s", data, s.Name)
		}
	}
}

// TestFamilyValidation covers the declarative-definition error paths.
func TestFamilyValidation(t *testing.T) {
	ok := Family{
		Name:  "valid",
		Axes:  []Axis{{Name: "a", Values: []string{"x"}}},
		Build: func(Values) (scenario.Scenario, error) { return scenario.Scenario{}, nil },
	}
	cases := []struct {
		name   string
		mutate func(*Family)
		want   string
	}{
		{"empty name", func(f *Family) { f.Name = "" }, "empty name"},
		{"slash in name", func(f *Family) { f.Name = "a/b" }, "may not contain"},
		{"nil build", func(f *Family) { f.Build = nil }, "nil Build"},
		{"no axes", func(f *Family) { f.Axes = nil }, "no axes"},
		{"empty axis", func(f *Family) { f.Axes = []Axis{{Name: "a"}} }, "no values"},
		{"dup axis", func(f *Family) {
			f.Axes = append(f.Axes, Axis{Name: "a", Values: []string{"y"}})
		}, "duplicate axis"},
		{"dup value", func(f *Family) { f.Axes[0].Values = []string{"x", "x"} }, "duplicate value"},
		{"spaced value", func(f *Family) { f.Axes[0].Values = []string{"x y"} }, "malformed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := ok
			f.Axes = append([]Axis(nil), ok.Axes...)
			tc.mutate(&f)
			err := Register(f)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Register error %v does not mention %q", err, tc.want)
			}
		})
	}

	if _, err := ok.Scenario(Values{"a": "nope"}); err == nil {
		t.Fatal("Scenario accepted an off-axis coordinate")
	}
	if _, err := ok.Scenario(Values{}); err == nil {
		t.Fatal("Scenario accepted an incomplete coordinate")
	}
	if _, err := Enable("no-such-family"); err == nil {
		t.Fatal("Enable accepted an unknown family")
	}
}
