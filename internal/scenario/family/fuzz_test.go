package family

import (
	"testing"

	"wsndse/internal/casestudy"
	"wsndse/internal/scenario"
	"wsndse/internal/scenario/xcheck"
)

// FuzzFamilyScenario drives the family machinery with arbitrary bytes:
// FromBytes must decode every input into a valid member (modular indexing,
// no rejection), the member must survive a registry round-trip with its
// fingerprint intact, and the model, the compiled pipeline and the
// simulator must agree on it within the cross-validation tolerance. The
// committed corpus under testdata/fuzz seeds one member per family plus
// boundary encodings; `go test -fuzz=FuzzFamilyScenario` explores from
// there.
func FuzzFamilyScenario(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 4, 3, 1, 1, 1}) // chipset-sweep far corner
	f.Add([]byte{1, 3, 2, 1, 1})    // mobile-relay far corner
	f.Add([]byte{255, 255, 255, 255, 255, 255})
	f.Add([]byte{2, 17, 91, 200, 5, 33, 7})

	cal := casestudy.DefaultCalibration()
	tol := xcheck.DefaultTolerance()

	f.Fuzz(func(t *testing.T, data []byte) {
		fam, v, s, err := FromBytes(data)
		if err != nil {
			t.Fatalf("FromBytes(%v): %v", data, err)
		}
		if got := fam.MemberName(v); s.Name != got {
			t.Fatalf("decoded scenario named %q, coordinate says %q", s.Name, got)
		}

		// Mirror Enable's registration invariant: only members with a
		// feasible configuration may register. Tests may register
		// infeasible-by-design control families, and FromBytes can land
		// on their members — those have nothing to cross-check.
		p, err := scenario.NewProblem(s, cal)
		if err != nil {
			t.Fatalf("problem for %s: %v", s.Name, err)
		}
		cfg, err := p.FeasibleConfig()
		if err != nil {
			t.Skip("member has no feasible configuration")
		}

		// Registry fingerprint round-trip. Different fuzz inputs decode to
		// the same member, so the name may already be registered — then
		// the stored fingerprint must match this build exactly.
		fp := s.Fingerprint()
		if existing, ok := scenario.Lookup(s.Name); ok {
			if existing.Fingerprint() != fp {
				t.Fatalf("member %s: registered fingerprint %.12s != rebuilt %.12s",
					s.Name, existing.Fingerprint(), fp)
			}
		} else if err := scenario.Register(s); err != nil {
			t.Fatalf("registering %s: %v", s.Name, err)
		}
		stored, ok := scenario.Lookup(s.Name)
		if !ok || stored.Fingerprint() != fp {
			t.Fatalf("member %s: fingerprint did not survive the registry round-trip", s.Name)
		}

		// Model ≡ simulator at the member's deterministic feasible point.
		rep, err := xcheck.Check(p, cfg, tol)
		if err != nil {
			t.Fatalf("cross-checking %s: %v", s.Name, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
	})
}
