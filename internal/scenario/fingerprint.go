package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"strconv"

	"wsndse/internal/units"
)

// fingerprintVersion prefixes the canonical encoding, so any future change
// to the encoding (new fields, different float formatting) visibly changes
// every fingerprint instead of silently colliding with old ones.
const fingerprintVersion = "wsndse/scenario/v1"

// Fingerprint returns a content hash of the scenario: a hex SHA-256 over a
// canonical encoding of every field that affects what the scenario
// *means* — the node specs down to platform coefficients and link
// schedules, the explorable axes, the traffic profile, ϑ, and the default
// simulation duration and seed. Name, Description and Stress are labels,
// not content, and are excluded: two identically-parameterized family
// members registered under different names share a fingerprint, which is
// what makes the fingerprint useful for result caching and reproduction.
//
// The contract the registry tests pin: fingerprints are stable across
// processes (no map iteration, no addresses, exact float encoding), and
// Lookup-after-Register returns a scenario with an identical fingerprint
// (the registry's deep clones are content-preserving).
func (s Scenario) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\nnodes %d\n", fingerprintVersion, len(s.Nodes))
	for _, ns := range s.Nodes {
		fmt.Fprintf(h, "node %s kind %d fs %s payload %d arrival %d\n",
			ns.Name, int(ns.Kind), hexFloat(float64(ns.SampleFreq)), ns.PayloadBytes, int(ns.Arrival))
		hashFloats(h, "crs", ns.CRs)
		hashHertz(h, "freqs", ns.MicroFreqs)
		hashPlatform(h, ns)
		fmt.Fprintf(h, "link %d\n", len(ns.Link))
		for _, ph := range ns.Link {
			fmt.Fprintf(h, "phase %s %s\n", hexFloat(float64(ph.Start)), hexFloat(ph.PER))
		}
	}
	hashInts(h, "bo", s.BeaconOrders)
	hashInts(h, "gap", s.SFOGaps)
	hashInts(h, "payloads", s.Payloads)
	fmt.Fprintf(h, "theta %s\n", hexFloat(s.Theta))
	fmt.Fprintf(h, "traffic %d %s %d\n",
		int(s.Traffic.Arrival), hexFloat(s.Traffic.PacketErrorRate), s.Traffic.BlockSamples)
	fmt.Fprintf(h, "sim %s %d\n", hexFloat(float64(s.SimDuration)), s.SimSeed)
	return hex.EncodeToString(h.Sum(nil))
}

// hashPlatform encodes the full hardware characterization: two platforms
// that differ in any calibrated coefficient are different workloads even
// if they share a name, and a recalibrated platform must change the
// fingerprint of every scenario built on it.
func hashPlatform(h hash.Hash, ns NodeSpec) {
	p := ns.Platform
	fmt.Fprintf(h, "platform %s adc %d\n", p.Name, p.ADCBits)
	hashFloats(h, "sensor", []float64{
		float64(p.Sensor.TransducerPower), float64(p.Sensor.Alpha1), float64(p.Sensor.Alpha0),
	})
	hashFloats(h, "micro", []float64{float64(p.Micro.Alpha1), float64(p.Micro.Alpha0)})
	hashFloats(h, "memory", []float64{
		float64(p.Memory.AccessTime), float64(p.Memory.AccessPower),
		float64(p.Memory.BitIdlePower), float64(p.Memory.SizeBytes),
	})
	hashHertz(h, "grid", p.MicroFreqs)
	r := p.Radio
	fmt.Fprintf(h, "radio %s dbm %d\n", r.Name, r.OutputDBm)
	hashFloats(h, "chip", []float64{
		float64(r.BitRate), float64(r.TxPower), float64(r.RxPower),
		float64(r.IdlePower), float64(r.SleepPower),
		float64(r.RampUpTime), float64(r.RampUpEnergy), float64(r.TurnaroundTime),
	})
}

// hexFloat encodes a float exactly ('x' is the lossless hex-mantissa
// form), so fingerprints never depend on decimal rounding.
func hexFloat(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }

func hashFloats(h hash.Hash, label string, xs []float64) {
	fmt.Fprintf(h, "%s %d", label, len(xs))
	for _, x := range xs {
		fmt.Fprintf(h, " %s", hexFloat(x))
	}
	fmt.Fprintln(h)
}

func hashHertz(h hash.Hash, label string, xs []units.Hertz) {
	fmt.Fprintf(h, "%s %d", label, len(xs))
	for _, x := range xs {
		fmt.Fprintf(h, " %s", hexFloat(float64(x)))
	}
	fmt.Fprintln(h)
}

func hashInts(h hash.Hash, label string, xs []int) {
	fmt.Fprintf(h, "%s %d", label, len(xs))
	for _, x := range xs {
		fmt.Fprintf(h, " %d", x)
	}
	fmt.Fprintln(h)
}
