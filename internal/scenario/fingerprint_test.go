package scenario

import (
	"testing"

	"wsndse/internal/sim"
)

// TestFingerprintStability pins that a fingerprint is a pure function of
// scenario content: rebuilding the same scenario yields the same hash, and
// the registry's deep clones preserve it (the Lookup-after-Register
// round-trip the family generators rely on).
func TestFingerprintStability(t *testing.T) {
	a, b := ECGWard(), ECGWard()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("two builds of the same scenario fingerprint differently")
	}
	if got, ok := Lookup("ecg-ward"); !ok || got.Fingerprint() != a.Fingerprint() {
		t.Fatal("registry round-trip changed the fingerprint")
	}
	if a.clone().Fingerprint() != a.Fingerprint() {
		t.Fatal("clone changed the fingerprint")
	}
}

// TestFingerprintSensitivity checks that every semantic field class moves
// the hash: MAC axes, node knobs, platform coefficients, traffic, link
// schedules — while pure labels (Name, Description, Stress) do not.
func TestFingerprintSensitivity(t *testing.T) {
	base := ECGWard()
	ref := base.Fingerprint()

	mutations := map[string]func(*Scenario){
		"beacon orders": func(s *Scenario) { s.BeaconOrders[0]++ },
		"payload axis":  func(s *Scenario) { s.Payloads = s.Payloads[:len(s.Payloads)-1] },
		"theta":         func(s *Scenario) { s.Theta += 0.25 },
		"sim seed":      func(s *Scenario) { s.SimSeed++ },
		"sim duration":  func(s *Scenario) { s.SimDuration *= 2 },
		"traffic":       func(s *Scenario) { s.Traffic.PacketErrorRate = 0.01 },
		"node CR grid":  func(s *Scenario) { s.Nodes[0].CRs[0] += 1e-9 },
		"node payload":  func(s *Scenario) { s.Nodes[1].PayloadBytes = 32 },
		"platform coefficient": func(s *Scenario) {
			s.Nodes[0].Platform.Micro.Alpha1 *= 1.000001
		},
		"radio chip": func(s *Scenario) {
			s.Nodes[0].Platform.Radio.TxPower *= 1.01
		},
		"link schedule": func(s *Scenario) {
			s.Nodes[0].Link = []sim.LinkPhase{{Start: 10, PER: 0.2}}
		},
		"node order": func(s *Scenario) {
			s.Nodes[0], s.Nodes[1] = s.Nodes[1], s.Nodes[0]
		},
	}
	for name, mutate := range mutations {
		s := base.clone()
		mutate(&s)
		if s.Fingerprint() == ref {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}

	labels := base.clone()
	labels.Name = "renamed"
	labels.Description = "other words"
	labels.Stress = "different stress"
	if labels.Fingerprint() != ref {
		t.Error("labels (Name/Description/Stress) must not affect the fingerprint")
	}
}
