package scenario

import (
	"fmt"
	"math/rand"

	"wsndse/internal/casestudy"
	"wsndse/internal/core"
	"wsndse/internal/dse"
	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

// Params is one decoded configuration of a scenario: the shared χ_mac
// point plus each node's χ_node. Raw nodes carry CR 1.
type Params struct {
	BeaconOrder     int
	SuperframeOrder int
	PayloadBytes    int // network payload; per-node overrides sit in the scenario
	CR              []float64
	MicroFreq       []units.Hertz
}

// Problem compiles a scenario into the DSE formulation: a design space
// whose genes are the shared MAC axes plus per-node CR/frequency axes
// (nodes contribute only the knobs they actually have — raw nodes have no
// CR gene), and materializers for both the analytical model and the
// packet-level simulator.
type Problem struct {
	Scenario Scenario
	Cal      *casestudy.Calibration

	space  *dse.Space
	crGene []int // gene index of node i's CR axis, -1 if none
	fGene  []int // gene index of node i's frequency axis
}

// NewProblem validates the scenario and builds its design space.
func NewProblem(sc Scenario, cal *casestudy.Calibration) (*Problem, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if cal == nil {
		return nil, fmt.Errorf("scenario %q: nil calibration", sc.Name)
	}
	p := &Problem{
		Scenario: sc,
		Cal:      cal,
		space:    &dse.Space{},
		crGene:   make([]int, len(sc.Nodes)),
		fGene:    make([]int, len(sc.Nodes)),
	}
	p.space.Params = append(p.space.Params,
		dse.Parameter{Name: "BO", Values: intsToFloats(sc.BeaconOrders)},
		dse.Parameter{Name: "SFOgap", Values: intsToFloats(sc.SFOGaps)},
		dse.Parameter{Name: "payload", Values: intsToFloats(sc.Payloads)},
	)
	for i, ns := range sc.Nodes {
		p.crGene[i] = -1
		if ns.explorableCR() {
			p.crGene[i] = len(p.space.Params)
			p.space.Params = append(p.space.Params, dse.Parameter{
				Name:   "cr:" + ns.Name,
				Values: append([]float64(nil), ns.CRs...),
			})
		}
		freqs := ns.microFreqs()
		fVals := make([]float64, len(freqs))
		for j, f := range freqs {
			fVals[j] = float64(f)
		}
		p.fGene[i] = len(p.space.Params)
		p.space.Params = append(p.space.Params, dse.Parameter{
			Name:   "fuc:" + ns.Name,
			Values: fVals,
		})
	}
	return p, nil
}

// Space returns the scenario's design space.
func (p *Problem) Space() *dse.Space { return p.space }

// Decode maps a configuration to scenario parameters. The SFO gene is
// relative (SFO = BO − gap, floored at 0), so every index combination is
// structurally valid.
func (p *Problem) Decode(c dse.Config) (Params, error) {
	if !p.space.Valid(c) {
		return Params{}, fmt.Errorf("scenario %q: invalid config %v", p.Scenario.Name, c)
	}
	sf := ieee.SuperframeWithGap(int(p.space.Value(c, 0)), int(p.space.Value(c, 1)))
	out := Params{
		BeaconOrder:     sf.BeaconOrder,
		SuperframeOrder: sf.SuperframeOrder,
		PayloadBytes:    int(p.space.Value(c, 2)),
		CR:              make([]float64, len(p.Scenario.Nodes)),
		MicroFreq:       make([]units.Hertz, len(p.Scenario.Nodes)),
	}
	for i := range p.Scenario.Nodes {
		out.CR[i] = 1 // raw nodes forward unmodified
		if g := p.crGene[i]; g >= 0 {
			out.CR[i] = p.space.Value(c, g)
		}
		out.MicroFreq[i] = units.Hertz(p.space.Value(c, p.fGene[i]))
	}
	return out, nil
}

// superframe builds the χ_mac superframe of a decoded configuration.
func (params Params) superframe() ieee.SuperframeConfig {
	return ieee.SuperframeConfig{
		BeaconOrder:     params.BeaconOrder,
		SuperframeOrder: params.SuperframeOrder,
	}
}

// Network materializes the configuration for the analytical model. Nodes
// with a payload override receive their own MAC view (same superframe,
// node-specific L_payload), so Ω, Ψ, the quanta floor and the Eq. 9
// service term all see the node's actual frames.
func (p *Problem) Network(params Params) (*core.Network, error) {
	sc := p.Scenario
	n := len(sc.Nodes)
	if len(params.CR) != n || len(params.MicroFreq) != n {
		return nil, fmt.Errorf("scenario %q: params cover %d/%d nodes", sc.Name, len(params.CR), n)
	}
	sf := params.superframe()
	base, err := core.NewGTSMac(sf, params.PayloadBytes, n)
	if err != nil {
		return nil, err
	}
	nodes := make([]*core.Node, n)
	var views []core.MAC
	for i, ns := range sc.Nodes {
		a, err := casestudy.AppFor(p.Cal, ns.Kind, params.CR[i])
		if err != nil {
			return nil, err
		}
		nodes[i] = &core.Node{
			Name:       ns.Name,
			Platform:   ns.Platform,
			App:        a,
			SampleFreq: ns.SampleFreq,
			MicroFreq:  params.MicroFreq[i],
		}
		if ns.PayloadBytes > 0 {
			view, err := core.NewGTSMac(sf, ns.PayloadBytes, n)
			if err != nil {
				return nil, err
			}
			if views == nil {
				views = make([]core.MAC, n)
			}
			views[i] = view
		}
	}
	return &core.Network{Nodes: nodes, MAC: base, NodeMACs: views, Theta: sc.Theta}, nil
}

// SimConfig materializes the configuration for the packet-level simulator
// under the scenario's traffic profile, with GTS allocations mirroring the
// model's per-node assignment (both sides size slots from the node's
// effective payload).
func (p *Problem) SimConfig(params Params, duration units.Seconds, seed int64) (sim.Config, error) {
	sc := p.Scenario
	net, err := p.Network(params)
	if err != nil {
		return sim.Config{}, err
	}
	sf := params.superframe()
	nodes := make([]sim.NodeConfig, len(net.Nodes))
	for i, n := range net.Nodes {
		payload := sc.Nodes[i].PayloadBytes
		if payload == 0 {
			payload = params.PayloadBytes
		}
		nodes[i] = sim.NodeConfig{
			Name:         n.Name,
			Platform:     n.Platform,
			App:          n.App,
			SampleFreq:   n.SampleFreq,
			MicroFreq:    n.MicroFreq,
			Slots:        sim.SlotsFor(sf, payload, float64(n.OutputRate())),
			PayloadBytes: sc.Nodes[i].PayloadBytes,
			Arrival:      sc.Nodes[i].Arrival,
			Link:         append([]sim.LinkPhase(nil), sc.Nodes[i].Link...),
		}
	}
	return sim.Config{
		Superframe:      sf,
		PayloadBytes:    params.PayloadBytes,
		Nodes:           nodes,
		Duration:        duration,
		Arrival:         sc.Traffic.Arrival,
		BlockSamples:    sc.Traffic.BlockSamples,
		PacketErrorRate: sc.Traffic.PacketErrorRate,
		Seed:            seed,
	}, nil
}

// DefaultSimConfig is SimConfig at the scenario's default duration and
// seed.
func (p *Problem) DefaultSimConfig(params Params) (sim.Config, error) {
	return p.SimConfig(params, p.Scenario.SimDuration, p.Scenario.SimSeed)
}

// evaluator is the three-objective model evaluator over the scenario:
// minimize (E_net [W], quality loss, delay_net [s]).
type evaluator struct{ p *Problem }

// Evaluator returns the scenario's model evaluator.
func (p *Problem) Evaluator() dse.Evaluator { return &evaluator{p: p} }

// NumObjectives returns 3.
func (e *evaluator) NumObjectives() int { return 3 }

// Evaluate runs the analytical model on the decoded configuration.
func (e *evaluator) Evaluate(c dse.Config) (dse.Objectives, error) {
	params, err := e.p.Decode(c)
	if err != nil {
		return nil, err
	}
	net, err := e.p.Network(params)
	if err != nil {
		return nil, err
	}
	ev, err := net.Evaluate()
	if err != nil {
		return nil, err
	}
	return dse.Objectives{float64(ev.Energy), ev.Quality, float64(ev.Delay)}, nil
}

// NominalConfig returns the mid-grid point of every axis — the scenario's
// "reasonable default" before any exploration.
func (p *Problem) NominalConfig() dse.Config {
	c := make(dse.Config, len(p.space.Params))
	for i, param := range p.space.Params {
		c[i] = len(param.Values) / 2
	}
	return c
}

// feasibleScanBudget bounds the random scan of FeasibleParams.
const feasibleScanBudget = 20000

// FeasibleConfig returns a deterministic feasible gene configuration of
// the scenario: the nominal mid-grid point when the model accepts it, else
// the first feasible point of a seeded random scan. Scenarios engineered
// to be wholly infeasible (a DenseGTS past the slot budget) return an
// error.
func (p *Problem) FeasibleConfig() (dse.Config, error) {
	eval := p.Evaluator()
	ok := func(c dse.Config) bool {
		if _, err := eval.Evaluate(c); err != nil {
			return false
		}
		_, err := p.Decode(c)
		return err == nil
	}
	if c := p.NominalConfig(); ok(c) {
		return c, nil
	}
	rng := rand.New(rand.NewSource(p.Scenario.SimSeed))
	for i := 0; i < feasibleScanBudget; i++ {
		if c := p.space.Random(rng); ok(c) {
			return append(dse.Config(nil), c...), nil
		}
	}
	return nil, fmt.Errorf("scenario %q: no feasible configuration in nominal point + %d samples",
		p.Scenario.Name, feasibleScanBudget)
}

// FeasibleParams is FeasibleConfig decoded to explicit per-node parameters.
func (p *Problem) FeasibleParams() (Params, error) {
	c, err := p.FeasibleConfig()
	if err != nil {
		return Params{}, err
	}
	return p.Decode(c)
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
