package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// The registry is process-wide and safe for concurrent use; built-in
// scenarios register at init, and tests or embedding programs may add
// their own.
var registry = struct {
	mu     sync.RWMutex
	byName map[string]Scenario
}{byName: map[string]Scenario{}}

// Register validates s and adds it to the registry. Duplicate names are an
// error: a scenario is an identity, not a setting to silently overwrite.
func Register(s Scenario) error {
	if err := s.Validate(); err != nil {
		return err
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byName[s.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", s.Name)
	}
	registry.byName[s.Name] = s.clone()
	return nil
}

// MustRegister is Register for init-time use.
func MustRegister(s Scenario) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the named scenario. The copy is deep: mutating it (e.g.
// to derive a variant) never touches the registry.
func Lookup(name string) (Scenario, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	s, ok := registry.byName[name]
	if !ok {
		return Scenario{}, false
	}
	return s.clone(), true
}

// List returns every registered scenario sorted by name, so listings and
// sweeps are deterministic. Like Lookup, the copies are deep.
func List() []Scenario {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Scenario, 0, len(registry.byName))
	for _, s := range registry.byName {
		out = append(out, s.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted registered names.
func Names() []string {
	scs := List()
	names := make([]string, len(scs))
	for i, s := range scs {
		names[i] = s.Name
	}
	return names
}
