package scenario

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// TestRegistryConcurrentAccess hammers Register/Lookup/List/Names from
// many goroutines at once. Under `go test -race` this proves the
// registry's RWMutex actually covers every access path — the map itself,
// and the deep clones handed out by Lookup/List (a shallow copy would race
// with a caller mutating a looked-up scenario's slices).
func TestRegistryConcurrentAccess(t *testing.T) {
	base, ok := Lookup("ecg-ward")
	if !ok {
		t.Fatal("ecg-ward not registered")
	}
	const writers, readers, rounds = 8, 8, 50

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s := base
				s.Name = fmt.Sprintf("race-test-%d-%d", w, i)
				if err := Register(s); err != nil {
					t.Errorf("Register(%s): %v", s.Name, err)
					return
				}
				// Duplicate registration must fail without corrupting state.
				if err := Register(s); err == nil {
					t.Errorf("duplicate Register(%s) accepted", s.Name)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, ok := Lookup("ecg-ward"); !ok {
					t.Error("ecg-ward vanished mid-run")
					return
				}
				// Mutate the clone's slices: races with registry storage
				// if the copy were shallow.
				s, _ := Lookup("ecg-ward")
				s.BeaconOrders[0] = -99
				s.Nodes[0].CRs[0] = -1
				for _, got := range List() {
					_ = got.Name
				}
				_ = Names()
			}
		}()
	}
	wg.Wait()

	// The mutated clones must not have leaked into the registry.
	s, _ := Lookup("ecg-ward")
	if s.BeaconOrders[0] == -99 || s.Nodes[0].CRs[0] == -1 {
		t.Fatal("registry state corrupted by mutating a looked-up clone")
	}
}

// TestListOrderDeterministic pins the List ordering contract the family
// generators and the service API lean on: no matter how many goroutines
// race to register (here, 200 scenarios from 8 goroutines in shuffled
// slices), every List call returns the full population sorted by name —
// byte-wise ascending, duplicate-free, and identical call to call.
func TestListOrderDeterministic(t *testing.T) {
	base, ok := Lookup("ecg-ward")
	if !ok {
		t.Fatal("ecg-ward not registered")
	}
	const goroutines, perGoroutine = 8, 25 // 200 registrations total
	names := make([]string, 0, goroutines*perGoroutine)
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perGoroutine; i++ {
			// Mixed prefixes so insertion order and sorted order disagree.
			names = append(names, fmt.Sprintf("order-test/%c%02d-%d", 'a'+byte(i%7), i, g))
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks its slice back to front so concurrent
			// interleavings never resemble sorted order.
			for i := perGoroutine - 1; i >= 0; i-- {
				s := base
				s.Name = names[g*perGoroutine+i]
				if err := Register(s); err != nil {
					t.Errorf("Register(%s): %v", s.Name, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	listNames := func() []string {
		out := make([]string, 0, len(names))
		for _, s := range List() {
			out = append(out, s.Name)
		}
		return out
	}
	first := listNames()
	if !sort.StringsAreSorted(first) {
		t.Fatal("List() is not sorted by name")
	}
	seen := map[string]bool{}
	for _, n := range first {
		if seen[n] {
			t.Fatalf("List() returned %q twice", n)
		}
		seen[n] = true
	}
	for _, n := range names {
		if !seen[n] {
			t.Fatalf("registered scenario %q missing from List()", n)
		}
	}
	if again := listNames(); !reflect.DeepEqual(first, again) {
		t.Fatal("two List() calls disagree on order")
	}
}
