package scenario

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentAccess hammers Register/Lookup/List/Names from
// many goroutines at once. Under `go test -race` this proves the
// registry's RWMutex actually covers every access path — the map itself,
// and the deep clones handed out by Lookup/List (a shallow copy would race
// with a caller mutating a looked-up scenario's slices).
func TestRegistryConcurrentAccess(t *testing.T) {
	base, ok := Lookup("ecg-ward")
	if !ok {
		t.Fatal("ecg-ward not registered")
	}
	const writers, readers, rounds = 8, 8, 50

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s := base
				s.Name = fmt.Sprintf("race-test-%d-%d", w, i)
				if err := Register(s); err != nil {
					t.Errorf("Register(%s): %v", s.Name, err)
					return
				}
				// Duplicate registration must fail without corrupting state.
				if err := Register(s); err == nil {
					t.Errorf("duplicate Register(%s) accepted", s.Name)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, ok := Lookup("ecg-ward"); !ok {
					t.Error("ecg-ward vanished mid-run")
					return
				}
				// Mutate the clone's slices: races with registry storage
				// if the copy were shallow.
				s, _ := Lookup("ecg-ward")
				s.BeaconOrders[0] = -99
				s.Nodes[0].CRs[0] = -1
				for _, got := range List() {
					_ = got.Name
				}
				_ = Names()
			}
		}()
	}
	wg.Wait()

	// The mutated clones must not have leaked into the registry.
	s, _ := Lookup("ecg-ward")
	if s.BeaconOrders[0] == -99 || s.Nodes[0].CRs[0] == -1 {
		t.Fatal("registry state corrupted by mutating a looked-up clone")
	}
}
