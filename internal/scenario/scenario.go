// Package scenario turns the reproduction into a scenario-driven
// exploration system. A Scenario is a declarative description of one
// heterogeneous beacon-enabled IEEE 802.15.4 star workload — per-node
// applications and platforms, payload profiles, traffic models, the
// explorable superframe axes, and the objective balance weight — and the
// process-wide registry lets the CLIs, the experiments harness, and the
// examples select workloads by name instead of hand-assembling problems.
//
// A Scenario is pure data; NewProblem compiles it into a per-node design
// space plus evaluators for both sides of the stack: the analytical model
// (core.Network, with per-node MAC views when nodes carry their own
// payload profiles) and the packet-level simulator (sim.Config, with
// per-node payload and arrival overrides). Everything downstream — the
// DSE algorithms, the concurrent batch-evaluation runtime, the
// experiments harness — consumes scenarios through that Problem.
package scenario

import (
	"fmt"

	"wsndse/internal/casestudy"
	ieee "wsndse/internal/ieee802154"
	"wsndse/internal/platform"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

// NodeSpec declares one node of the star: what it runs, on which hardware,
// and which per-node knobs the design space explores for it.
type NodeSpec struct {
	Name string
	// Kind selects the application: the calibrated DWT/CS compressors or
	// the raw passthrough stream.
	Kind casestudy.Kind
	// Platform is the node hardware (e.g. platform.Shimmer for wearables,
	// platform.TelosB for telemetry motes).
	Platform platform.Platform
	// SampleFreq is f_s, fixed by the monitored signal.
	SampleFreq units.Hertz
	// CRs lists the node's explorable compression ratios — its χ_node CR
	// axis. Required for compression kinds; ignored for KindRaw nodes,
	// which always forward at CR 1 and contribute no CR gene.
	CRs []float64
	// MicroFreqs lists the explorable µC frequencies; nil uses the
	// platform's grid.
	MicroFreqs []units.Hertz
	// PayloadBytes fixes this node's frame payload instead of the
	// network-wide payload axis (0 follows the network payload gene).
	// Both the model (a per-node MAC view) and the simulator (a per-node
	// override) honor it.
	PayloadBytes int
	// Arrival overrides the scenario's traffic model for this node
	// (sim.ArrivalDefault inherits it).
	Arrival sim.ArrivalModel
	// Link is the node's time-varying link schedule (mobility): the
	// simulator switches the node's frame loss probability at each
	// phase's start. Empty means the scenario's PacketErrorRate holds
	// for the whole run. The analytical model has no notion of loss, so
	// cross-validation harnesses compare with the schedule suppressed.
	Link []sim.LinkPhase
}

// microFreqs resolves the node's explorable frequency grid.
func (ns NodeSpec) microFreqs() []units.Hertz {
	if len(ns.MicroFreqs) > 0 {
		return ns.MicroFreqs
	}
	return ns.Platform.MicroFreqs
}

// explorableCR reports whether the node contributes a CR gene.
func (ns NodeSpec) explorableCR() bool {
	return ns.Kind != casestudy.KindRaw && len(ns.CRs) > 0
}

// Traffic is the scenario-wide channel and arrival characterization the
// simulator runs under.
type Traffic struct {
	// Arrival is the default traffic model (sim.ArrivalDefault means
	// uniform, matching the paper's assumption).
	Arrival sim.ArrivalModel
	// PacketErrorRate is the i.i.d. frame loss probability in [0,1).
	PacketErrorRate float64
	// BlockSamples sets the codec block size for block arrivals
	// (0 keeps the simulator default of 512).
	BlockSamples int
}

// Scenario is one declarative workload: the node mix, the explorable MAC
// axes, the traffic profile, and the objective weights.
type Scenario struct {
	// Name is the registry key (kebab-case by convention).
	Name string
	// Description is one sentence for listings.
	Description string
	// Stress names what the scenario stresses in the model — GTS
	// starvation, CR sensitivity, mixed traffic — so a reader knows why
	// it exists.
	Stress string

	// Nodes is the heterogeneous star (order is node order everywhere).
	Nodes []NodeSpec

	// BeaconOrders, SFOGaps and Payloads are the shared χ_mac axes:
	// BO values, SFO = BO − gap (floored at 0), and the network payload
	// L_payload in bytes.
	BeaconOrders []int
	SFOGaps      []int
	Payloads     []int

	// Theta is the Eq. 8 balance weight ϑ.
	Theta float64

	// Traffic is the simulator-side channel characterization.
	Traffic Traffic

	// SimDuration is the default simulated wall-clock for verification
	// runs, and SimSeed the default channel seed.
	SimDuration units.Seconds
	SimSeed     int64
}

// clone deep-copies the scenario's slices, so registry storage never
// aliases caller-held memory (and vice versa): a looked-up scenario can be
// mutated into a variant without corrupting the process-wide registry.
func (s Scenario) clone() Scenario {
	out := s
	out.Nodes = make([]NodeSpec, len(s.Nodes))
	for i, ns := range s.Nodes {
		ns.CRs = append([]float64(nil), ns.CRs...)
		ns.MicroFreqs = append([]units.Hertz(nil), ns.MicroFreqs...)
		ns.Platform.MicroFreqs = append([]units.Hertz(nil), ns.Platform.MicroFreqs...)
		ns.Link = append([]sim.LinkPhase(nil), ns.Link...)
		out.Nodes[i] = ns
	}
	out.BeaconOrders = append([]int(nil), s.BeaconOrders...)
	out.SFOGaps = append([]int(nil), s.SFOGaps...)
	out.Payloads = append([]int(nil), s.Payloads...)
	return out
}

// Validate checks the scenario for structural consistency.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("scenario %q: no nodes", s.Name)
	}
	seen := make(map[string]bool, len(s.Nodes))
	for i, ns := range s.Nodes {
		if ns.Name == "" {
			return fmt.Errorf("scenario %q: node %d has no name", s.Name, i)
		}
		if seen[ns.Name] {
			// Names are the only per-node identity in gene labels, sim
			// output and CSVs; duplicates would be unattributable.
			return fmt.Errorf("scenario %q: duplicate node name %q", s.Name, ns.Name)
		}
		seen[ns.Name] = true
		if ns.Kind != casestudy.KindDWT && ns.Kind != casestudy.KindCS && ns.Kind != casestudy.KindRaw {
			return fmt.Errorf("scenario %q: node %s has unknown kind %v", s.Name, ns.Name, ns.Kind)
		}
		if ns.Kind != casestudy.KindRaw && len(ns.CRs) == 0 {
			return fmt.Errorf("scenario %q: compression node %s has no CR values", s.Name, ns.Name)
		}
		for _, cr := range ns.CRs {
			if cr <= 0 || cr > 1 {
				return fmt.Errorf("scenario %q: node %s CR %g out of (0,1]", s.Name, ns.Name, cr)
			}
		}
		if ns.SampleFreq <= 0 {
			return fmt.Errorf("scenario %q: node %s has non-positive sample rate %v", s.Name, ns.Name, ns.SampleFreq)
		}
		for _, f := range ns.MicroFreqs {
			if f <= 0 {
				return fmt.Errorf("scenario %q: node %s has non-positive µC frequency %v", s.Name, ns.Name, f)
			}
		}
		if ns.PayloadBytes < 0 || ns.PayloadBytes > ieee.MaxDataPayload {
			return fmt.Errorf("scenario %q: node %s payload override %d out of range [0,%d]",
				s.Name, ns.Name, ns.PayloadBytes, ieee.MaxDataPayload)
		}
		if err := sim.ValidateLink(ns.Link); err != nil {
			return fmt.Errorf("scenario %q: node %s: %w", s.Name, ns.Name, err)
		}
		if err := ns.Platform.Validate(); err != nil {
			return fmt.Errorf("scenario %q: node %s: %w", s.Name, ns.Name, err)
		}
	}
	if len(s.BeaconOrders) == 0 || len(s.SFOGaps) == 0 || len(s.Payloads) == 0 {
		return fmt.Errorf("scenario %q: empty MAC axis (need beacon orders, SFO gaps and payloads)", s.Name)
	}
	for _, bo := range s.BeaconOrders {
		if bo < 0 || bo > ieee.MaxOrder {
			return fmt.Errorf("scenario %q: beacon order %d out of [0,%d]", s.Name, bo, ieee.MaxOrder)
		}
	}
	for _, gap := range s.SFOGaps {
		if gap < 0 {
			return fmt.Errorf("scenario %q: negative SFO gap %d", s.Name, gap)
		}
	}
	for _, p := range s.Payloads {
		if p < 1 || p > ieee.MaxDataPayload {
			return fmt.Errorf("scenario %q: payload %d out of [1,%d]", s.Name, p, ieee.MaxDataPayload)
		}
	}
	if s.Theta < 0 {
		return fmt.Errorf("scenario %q: negative balance weight ϑ=%g", s.Name, s.Theta)
	}
	if per := s.Traffic.PacketErrorRate; per < 0 || per >= 1 {
		return fmt.Errorf("scenario %q: packet error rate %g out of [0,1)", s.Name, per)
	}
	if s.Traffic.BlockSamples < 0 {
		return fmt.Errorf("scenario %q: negative block size %d", s.Name, s.Traffic.BlockSamples)
	}
	if s.SimDuration <= 0 {
		return fmt.Errorf("scenario %q: non-positive sim duration %v", s.Name, s.SimDuration)
	}
	return nil
}
