package scenario

import (
	"sort"
	"strings"
	"testing"

	"wsndse/internal/casestudy"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

func TestBuiltinsRegistered(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("want at least 4 registered scenarios, got %v", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names not sorted: %v", names)
	}
	for _, want := range []string{"ecg-ward", "mixed-ward", "athletes", "dense-gts", "raw-stream"} {
		sc, ok := Lookup(want)
		if !ok {
			t.Errorf("built-in %q not registered", want)
			continue
		}
		if sc.Name != want {
			t.Errorf("Lookup(%q) returned scenario named %q", want, sc.Name)
		}
		if sc.Description == "" || sc.Stress == "" {
			t.Errorf("%q lacks description or stress note", want)
		}
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("Lookup invented a scenario")
	}
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	if err := Register(ECGWard()); err == nil {
		t.Error("duplicate registration accepted")
	}
	bad := ECGWard()
	bad.Name = "bad-ward"
	bad.Nodes = nil
	if err := Register(bad); err == nil {
		t.Error("invalid scenario registered")
	}
	if _, ok := Lookup("bad-ward"); ok {
		t.Error("rejected scenario ended up in the registry")
	}
}

func TestLookupReturnsDeepCopies(t *testing.T) {
	a, _ := Lookup("ecg-ward")
	a.Nodes[0].CRs[0] = 0.99
	a.Payloads[0] = 1
	a.Nodes[0].Platform.MicroFreqs[0] = 1
	b, _ := Lookup("ecg-ward")
	if b.Nodes[0].CRs[0] == 0.99 || b.Payloads[0] == 1 || b.Nodes[0].Platform.MicroFreqs[0] == 1 {
		t.Error("mutating a looked-up scenario corrupted the registry")
	}
}

func TestValidateTable(t *testing.T) {
	mutate := func(f func(*Scenario)) Scenario {
		sc := MixedWard()
		sc.Name = "mutant"
		f(&sc)
		return sc
	}
	cases := []struct {
		name string
		sc   Scenario
		want string // substring of the error
	}{
		{"empty name", mutate(func(s *Scenario) { s.Name = "" }), "empty name"},
		{"no nodes", mutate(func(s *Scenario) { s.Nodes = nil }), "no nodes"},
		{"unnamed node", mutate(func(s *Scenario) { s.Nodes[0].Name = "" }), "no name"},
		{"duplicate node name", mutate(func(s *Scenario) { s.Nodes[1].Name = s.Nodes[0].Name }), "duplicate node name"},
		{"bad kind", mutate(func(s *Scenario) { s.Nodes[0].Kind = casestudy.Kind(42) }), "unknown kind"},
		{"compression without CRs", mutate(func(s *Scenario) { s.Nodes[0].CRs = nil }), "no CR values"},
		{"CR out of range", mutate(func(s *Scenario) { s.Nodes[0].CRs = []float64{1.5} }), "out of (0,1]"},
		{"bad sample rate", mutate(func(s *Scenario) { s.Nodes[0].SampleFreq = 0 }), "sample rate"},
		{"bad frequency", mutate(func(s *Scenario) { s.Nodes[0].MicroFreqs = []units.Hertz{-1} }), "µC frequency"},
		{"oversized payload override", mutate(func(s *Scenario) { s.Nodes[3].PayloadBytes = 200 }), "payload override"},
		{"no beacon orders", mutate(func(s *Scenario) { s.BeaconOrders = nil }), "MAC axis"},
		{"beacon order out of range", mutate(func(s *Scenario) { s.BeaconOrders = []int{15} }), "beacon order"},
		{"negative gap", mutate(func(s *Scenario) { s.SFOGaps = []int{-1} }), "SFO gap"},
		{"payload axis out of range", mutate(func(s *Scenario) { s.Payloads = []int{0} }), "payload 0"},
		{"negative theta", mutate(func(s *Scenario) { s.Theta = -0.5 }), "balance weight"},
		{"bad PER", mutate(func(s *Scenario) { s.Traffic.PacketErrorRate = 1 }), "error rate"},
		{"negative block", mutate(func(s *Scenario) { s.Traffic.BlockSamples = -1 }), "block size"},
		{"bad duration", mutate(func(s *Scenario) { s.SimDuration = 0 }), "duration"},
	}
	for _, tc := range cases {
		err := tc.sc.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := MixedWard().Validate(); err != nil {
		t.Errorf("pristine scenario invalid: %v", err)
	}
}

func TestProblemGeneLayout(t *testing.T) {
	p, err := NewProblem(MixedWard(), casestudy.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	// 3 shared MAC genes + one CR gene per compression node (3) + one
	// frequency gene per node (6).
	if got, want := len(p.Space().Params), 3+3+6; got != want {
		t.Fatalf("gene count = %d, want %d", got, want)
	}
	for i, ns := range p.Scenario.Nodes {
		if ns.Kind == casestudy.KindRaw {
			if p.crGene[i] != -1 {
				t.Errorf("raw node %s got CR gene %d", ns.Name, p.crGene[i])
			}
		} else if p.crGene[i] < 0 {
			t.Errorf("compression node %s has no CR gene", ns.Name)
		}
		if p.fGene[i] < 0 {
			t.Errorf("node %s has no frequency gene", ns.Name)
		}
	}
}

func TestDecodeClampsAndDefaults(t *testing.T) {
	p, err := NewProblem(MixedWard(), casestudy.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	c := p.NominalConfig()
	c[0] = 0                                   // BO = 2 (smallest)
	c[1] = len(p.Space().Params[1].Values) - 1 // gap = 2
	params, err := p.Decode(c)
	if err != nil {
		t.Fatal(err)
	}
	if params.SuperframeOrder != params.BeaconOrder-2 {
		t.Errorf("SFO %d with BO %d and gap 2", params.SuperframeOrder, params.BeaconOrder)
	}
	for i, ns := range p.Scenario.Nodes {
		if ns.Kind == casestudy.KindRaw && params.CR[i] != 1 {
			t.Errorf("raw node %s decoded CR %g, want 1", ns.Name, params.CR[i])
		}
	}
	if _, err := p.Decode(nil); err == nil {
		t.Error("nil config decoded")
	}
}

func TestMaterializationCarriesOverrides(t *testing.T) {
	p, err := NewProblem(MixedWard(), casestudy.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	params, err := p.FeasibleParams()
	if err != nil {
		t.Fatal(err)
	}
	net, err := p.Network(params)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.NodeMACs) != len(net.Nodes) {
		t.Fatalf("expected per-node MAC views for the override nodes, got %d", len(net.NodeMACs))
	}
	for i, ns := range p.Scenario.Nodes {
		hasView := net.NodeMACs[i] != nil
		if hasView != (ns.PayloadBytes > 0) {
			t.Errorf("node %s: view=%v but payload override=%d", ns.Name, hasView, ns.PayloadBytes)
		}
	}
	cfg, err := p.DefaultSimConfig(params)
	if err != nil {
		t.Fatal(err)
	}
	for i, nc := range cfg.Nodes {
		if nc.PayloadBytes != p.Scenario.Nodes[i].PayloadBytes {
			t.Errorf("sim node %s payload override %d, want %d",
				nc.Name, nc.PayloadBytes, p.Scenario.Nodes[i].PayloadBytes)
		}
		if nc.Slots < 1 {
			t.Errorf("sim node %s has no GTS slots", nc.Name)
		}
	}
	if cfg.PacketErrorRate != p.Scenario.Traffic.PacketErrorRate {
		t.Errorf("traffic profile not carried: PER %g", cfg.PacketErrorRate)
	}
}

func TestAthletesTrafficProfile(t *testing.T) {
	p, err := NewProblem(Athletes(), casestudy.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	params, err := p.FeasibleParams()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := p.DefaultSimConfig(params)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Arrival != sim.ArrivalBlock || cfg.PacketErrorRate != 0.05 || cfg.BlockSamples != 256 {
		t.Errorf("athletes traffic profile lost: %+v", cfg)
	}
}

func TestDenseGTSPastSlotLimitIsInfeasible(t *testing.T) {
	sc := DenseGTS(9)
	sc.Name = "dense-gts-9"
	p, err := NewProblem(sc, casestudy.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	// Nine nodes cannot share seven GTS slots: the MAC itself refuses,
	// so no configuration in the space is feasible.
	eval := p.Evaluator()
	if _, err := eval.Evaluate(p.NominalConfig()); err == nil {
		t.Error("9-node dense scenario evaluated feasibly")
	}
}
