// Package xcheck cross-validates the analytical model against the
// packet-level simulator over generated scenario populations. For a
// scenario it picks a deterministic feasible configuration, evaluates it
// through three independent implementations — the reference model
// evaluator, the compiled lookup-table pipeline, and the discrete-event
// simulator — and fails when they disagree beyond tolerance.
//
// Two different notions of "agree" apply:
//
//   - Compiled vs reference model: bit-identical. The compiled pipeline is
//     an algebraic transformation of the same equations, so any difference
//     at all is a bug.
//   - Model vs simulator: within tolerance, inside the model's validity
//     envelope. The analytical model assumes uniform arrivals (§4.2), a
//     loss-free channel and a static topology; Check therefore normalizes
//     the simulation to that envelope (uniform arrivals, PER = 0, link
//     schedules suppressed) before comparing. Scenario-native traffic and
//     link schedules stay exercised by the simulator's own tests — here
//     the question is strictly whether model and simulator implement the
//     same superframe physics.
//
// Tolerance rationale: the paper reports ≤ 1.74 % node-energy error
// between model and device-level simulation (Figure 3); the combined
// Eq. 8 network metric accumulates per-node error and the idle/ramp
// bookkeeping differs slightly between the two implementations, so
// DefaultTolerance allows 10 % relative energy error — loose enough to be
// seed-robust, tight enough that a unit slip (mW vs W, a slot
// mis-assignment, a missing guard time) trips it by orders of magnitude.
// The Eq. 9 delay is a worst-case bound, not an estimate: the simulator's
// measured maximum must stay below it (a small slack absorbs boundary
// effects of finite runs), and a measured delay above the bound means one
// side's superframe arithmetic is wrong.
package xcheck

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"wsndse/internal/casestudy"
	"wsndse/internal/core"
	"wsndse/internal/dse"
	"wsndse/internal/numeric"
	"wsndse/internal/scenario"
	"wsndse/internal/sim"
	"wsndse/internal/units"
)

// Tolerance bounds acceptable model-vs-simulator disagreement.
type Tolerance struct {
	// EnergyRelPct is the maximum relative error (percent) between the
	// model's combined E_net and the same Eq. 8 combination of simulated
	// per-node powers.
	EnergyRelPct float64
	// DelaySlackPct lets the simulator's measured per-node maximum delay
	// exceed the Eq. 9 worst-case bound by at most this fraction
	// (percent) before the bound counts as violated.
	DelaySlackPct float64
	// RequireStable fails configurations whose simulated queues grow
	// without bound. Inside the validity envelope a model-feasible
	// configuration must be sim-stable; instability is a disagreement.
	RequireStable bool
}

// DefaultTolerance is the tolerance used by the test-suite sweeps. See the
// package comment for the rationale behind each number.
func DefaultTolerance() Tolerance {
	return Tolerance{EnergyRelPct: 10, DelaySlackPct: 5, RequireStable: true}
}

// Report is the outcome of cross-checking one scenario at one
// configuration.
type Report struct {
	Scenario    string
	Fingerprint string
	Params      scenario.Params

	ModelEnergy  units.Watts // Eq. 8 combined E_net from the model
	SimEnergy    units.Watts // same combination over simulated node powers
	EnergyErrPct float64

	// DelayWorstPct is the worst node's measured-max-delay as a
	// percentage of its Eq. 9 bound (100 = exactly at the bound).
	DelayWorstPct float64
	Stable        bool

	// Failures lists every tolerance violation; empty means the
	// implementations agree.
	Failures []string
}

// Err folds the report into an error, nil when every check passed.
func (r *Report) Err() error {
	if len(r.Failures) == 0 {
		return nil
	}
	return fmt.Errorf("xcheck %s (fingerprint %.12s): %s",
		r.Scenario, r.Fingerprint, strings.Join(r.Failures, "; "))
}

// envelope normalizes a simulation config to the model's validity
// envelope: uniform arrivals, loss-free channel, static topology.
func envelope(cfg sim.Config) sim.Config {
	cfg.Arrival = sim.ArrivalUniform
	cfg.BlockSamples = 0
	cfg.PacketErrorRate = 0
	for i := range cfg.Nodes {
		cfg.Nodes[i].Arrival = sim.ArrivalUniform
		cfg.Nodes[i].Link = nil
	}
	return cfg
}

// Check cross-validates one scenario at the given gene configuration. The
// simulation runs at the scenario's default duration and seed.
func Check(p *scenario.Problem, cfg dse.Config, tol Tolerance) (*Report, error) {
	params, err := p.Decode(cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Scenario:    p.Scenario.Name,
		Fingerprint: p.Scenario.Fingerprint(),
		Params:      params,
	}

	// Gate 1 — compiled pipeline vs reference evaluator: bit-identical.
	refObjs, err := p.Evaluator().Evaluate(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: reference evaluator: %w", r.Scenario, err)
	}
	comp, err := p.Compile()
	if err != nil {
		return nil, fmt.Errorf("scenario %q: compile: %w", r.Scenario, err)
	}
	compObjs, err := comp.Evaluator().Evaluate(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: compiled evaluator: %w", r.Scenario, err)
	}
	for i := range refObjs {
		if refObjs[i] != compObjs[i] {
			r.Failures = append(r.Failures, fmt.Sprintf(
				"compiled objective %d = %v, reference = %v (must be bit-identical)",
				i, compObjs[i], refObjs[i]))
		}
	}

	// Gate 2 — model vs simulator, inside the validity envelope.
	net, err := p.Network(params)
	if err != nil {
		return nil, err
	}
	ev, err := net.Evaluate()
	if err != nil {
		return nil, fmt.Errorf("scenario %q: model evaluation: %w", r.Scenario, err)
	}
	simCfg, err := p.SimConfig(params, p.Scenario.SimDuration, p.Scenario.SimSeed)
	if err != nil {
		return nil, err
	}
	simRes, err := sim.Run(envelope(simCfg))
	if err != nil {
		return nil, fmt.Errorf("scenario %q: simulation: %w", r.Scenario, err)
	}

	r.Stable = simRes.Stable
	if tol.RequireStable && !simRes.Stable {
		r.Failures = append(r.Failures,
			"model-feasible configuration is unstable in simulation")
	}

	powers := make([]float64, len(simRes.Nodes))
	for i, n := range simRes.Nodes {
		powers[i] = float64(n.Power.Total)
	}
	r.ModelEnergy = ev.Energy
	r.SimEnergy = units.Watts(core.Combine(powers, p.Scenario.Theta))
	r.EnergyErrPct = numeric.RelErr(float64(r.ModelEnergy), float64(r.SimEnergy))
	if r.EnergyErrPct > tol.EnergyRelPct {
		r.Failures = append(r.Failures, fmt.Sprintf(
			"energy: model %.6g W vs sim %.6g W — %.2f%% > %.2f%% tolerance",
			float64(r.ModelEnergy), float64(r.SimEnergy), r.EnergyErrPct, tol.EnergyRelPct))
	}

	for i, n := range simRes.Nodes {
		if n.Delay.Count == 0 {
			continue
		}
		bound := ev.PerNodeDelay[i]
		if bound <= 0 {
			continue
		}
		pct := float64(n.Delay.Max) / bound * 100
		if pct > r.DelayWorstPct {
			r.DelayWorstPct = pct
		}
		if pct > 100+tol.DelaySlackPct {
			r.Failures = append(r.Failures, fmt.Sprintf(
				"delay: node %s measured max %.6g s exceeds Eq.9 bound %.6g s by %.1f%%",
				n.Name, float64(n.Delay.Max), bound, pct-100))
		}
	}
	return r, nil
}

// CheckScenario cross-validates one scenario at its deterministic feasible
// configuration.
func CheckScenario(sc scenario.Scenario, cal *casestudy.Calibration, tol Tolerance) (*Report, error) {
	p, err := scenario.NewProblem(sc, cal)
	if err != nil {
		return nil, err
	}
	cfg, err := p.FeasibleConfig()
	if err != nil {
		return nil, err
	}
	return Check(p, cfg, tol)
}

// SweepConfig parameterizes a population sweep.
type SweepConfig struct {
	// Names selects the scenarios; empty means every registered scenario.
	Names []string
	// Sample bounds how many scenarios are checked: a seeded uniform
	// sample without replacement. 0 checks all of Names.
	Sample int
	// Seed drives the sample selection (not the simulations, which use
	// each scenario's own seed).
	Seed int64
	// Workers bounds the parallel checks; 0 means GOMAXPROCS.
	Workers int
	Cal     *casestudy.Calibration
	Tol     Tolerance
}

// SweepResult aggregates a population sweep.
type SweepResult struct {
	Reports []*Report // in checked-name order
	Checked int
	Failed  int
	// MaxEnergyErrPct and MaxDelayPct are the worst observations across
	// the sweep — the numbers to watch drifting toward the tolerance.
	MaxEnergyErrPct float64
	MaxDelayPct     float64
}

// Err returns an error naming every failed scenario, nil when the
// population agrees.
func (r *SweepResult) Err() error {
	var msgs []string
	for _, rep := range r.Reports {
		if err := rep.Err(); err != nil {
			msgs = append(msgs, err.Error())
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	return fmt.Errorf("%d/%d scenarios failed cross-validation:\n%s",
		r.Failed, r.Checked, strings.Join(msgs, "\n"))
}

// Sweep cross-validates a (sampled) scenario population in parallel. The
// sample is deterministic in cfg.Seed, and results are ordered by scenario
// name regardless of worker interleaving.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	names := cfg.Names
	if len(names) == 0 {
		for _, s := range scenario.List() {
			names = append(names, s.Name)
		}
	} else {
		names = append([]string(nil), names...)
	}
	sort.Strings(names)
	if cfg.Sample > 0 && cfg.Sample < len(names) {
		rng := rand.New(rand.NewSource(cfg.Seed))
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		names = names[:cfg.Sample]
		sort.Strings(names)
	}
	cal := cfg.Cal
	if cal == nil {
		cal = casestudy.DefaultCalibration()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}

	reports := make([]*Report, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sc, ok := scenario.Lookup(names[i])
				if !ok {
					errs[i] = fmt.Errorf("scenario %q not registered", names[i])
					continue
				}
				reports[i], errs[i] = CheckScenario(sc, cal, cfg.Tol)
			}
		}()
	}
	for i := range names {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	res := &SweepResult{Reports: reports, Checked: len(names)}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("checking %s: %w", names[i], err)
		}
		rep := reports[i]
		if len(rep.Failures) > 0 {
			res.Failed++
		}
		if rep.EnergyErrPct > res.MaxEnergyErrPct {
			res.MaxEnergyErrPct = rep.EnergyErrPct
		}
		if rep.DelayWorstPct > res.MaxDelayPct {
			res.MaxDelayPct = rep.DelayWorstPct
		}
	}
	return res, nil
}
