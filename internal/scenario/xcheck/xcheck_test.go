package xcheck

import (
	"os"
	"strconv"
	"testing"

	"wsndse/internal/casestudy"
	"wsndse/internal/scenario"
	"wsndse/internal/scenario/family"
)

func enableFamilies(t testing.TB) {
	t.Helper()
	if _, err := family.EnableAll(); err != nil {
		t.Fatalf("enabling families: %v", err)
	}
}

// sweepSeed is the committed seed of the per-PR sample. The nightly job
// overrides it (XCHECK_SEED) so successive runs walk different samples.
const sweepSeed = 20260807

// TestSweepSampledPopulation is the cross-validation acceptance gate: a
// 100-scenario seeded sample of the generated population (plus the
// hand-written builtins) must agree between the compiled pipeline, the
// reference model and the simulator within DefaultTolerance. With
// XCHECK_FULL=1 (the nightly job) it sweeps every registered scenario
// instead, and XCHECK_SEED re-seeds the sample.
func TestSweepSampledPopulation(t *testing.T) {
	enableFamilies(t)
	cfg := SweepConfig{Sample: 100, Seed: sweepSeed, Tol: DefaultTolerance()}
	if os.Getenv("XCHECK_FULL") != "" {
		cfg.Sample = 0
	}
	if env := os.Getenv("XCHECK_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("XCHECK_SEED=%q: %v", env, err)
		}
		cfg.Seed = seed
	}
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("xcheck sweep: seed=%d checked=%d failed=%d maxEnergyErr=%.2f%% maxDelay=%.1f%% of bound",
		cfg.Seed, res.Checked, res.Failed, res.MaxEnergyErrPct, res.MaxDelayPct)
	if res.Checked < 100 {
		t.Fatalf("sweep checked %d scenarios, want ≥ 100", res.Checked)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckMembersOfEachFamily pins one deterministic member per family
// end to end (cheap enough to diagnose a single failure without the
// sweep's fan-out).
func TestCheckMembersOfEachFamily(t *testing.T) {
	enableFamilies(t)
	cal := casestudy.DefaultCalibration()
	for _, f := range family.List() {
		v := f.Members()[0]
		sc, ok := scenario.Lookup(f.MemberName(v))
		if !ok {
			t.Fatalf("member %s not registered", f.MemberName(v))
		}
		rep, err := CheckScenario(sc, cal, DefaultTolerance())
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if err := rep.Err(); err != nil {
			t.Error(err)
		}
		if rep.Fingerprint != sc.Fingerprint() {
			t.Errorf("%s: report carries fingerprint %.12s, scenario says %.12s",
				sc.Name, rep.Fingerprint, sc.Fingerprint())
		}
	}
}

// TestHarnessDetectsDisagreement is the negative control: with a
// near-zero tolerance the harness must fail, proving it compares real
// numbers rather than vacuously passing. (Model and simulator account for
// idle and ramp energy slightly differently, so their agreement is close
// but never exact — a tolerance of 10⁻⁹ % is below any honest
// implementation pair.)
func TestHarnessDetectsDisagreement(t *testing.T) {
	sc, ok := scenario.Lookup("ecg-ward")
	if !ok {
		t.Fatal("ecg-ward not registered")
	}
	strict := Tolerance{EnergyRelPct: 1e-9, DelaySlackPct: 1e-9, RequireStable: true}
	rep, err := CheckScenario(sc, casestudy.DefaultCalibration(), strict)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() == nil {
		t.Fatal("a 1e-9%% tolerance passed — the harness is not comparing anything")
	}
	if rep.EnergyErrPct <= 0 {
		t.Fatalf("energy error %.3g%% — model and sim cannot agree exactly", rep.EnergyErrPct)
	}
}

// TestEnvelopeNormalization pins what the validity envelope strips: block
// arrivals, channel loss and link schedules all reset to the model's
// assumptions, everything else untouched.
func TestEnvelopeNormalization(t *testing.T) {
	enableFamilies(t)
	sc, ok := scenario.Lookup("mobile-relay/n4-roundtrip-fast-shimmer")
	if !ok {
		t.Fatal("mobile-relay member not registered")
	}
	p, err := scenario.NewProblem(sc, casestudy.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	params, err := p.FeasibleParams()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := p.DefaultSimConfig(params)
	if err != nil {
		t.Fatal(err)
	}
	hasLink := false
	for _, n := range cfg.Nodes {
		if len(n.Link) > 0 {
			hasLink = true
		}
	}
	if !hasLink {
		t.Fatal("mobile-relay member carries no link schedule — envelope test is vacuous")
	}
	norm := envelope(cfg)
	for i, n := range norm.Nodes {
		if len(n.Link) != 0 {
			t.Errorf("node %d kept its link schedule through the envelope", i)
		}
	}
	if norm.PacketErrorRate != 0 || norm.BlockSamples != 0 {
		t.Error("envelope kept loss or block traffic")
	}
	if len(norm.Nodes) != len(cfg.Nodes) || norm.Superframe != cfg.Superframe ||
		norm.Duration != cfg.Duration || norm.Seed != cfg.Seed {
		t.Error("envelope changed fields outside the validity assumptions")
	}
}
