package service

import (
	"context"
	"fmt"
	"testing"
	"time"

	"wsndse/internal/dse"
)

// BenchmarkServiceThroughput measures end-to-end jobs/s through the
// Manager — submit, schedule, compile, search, store — at 1, 4 and 16
// concurrent job workers. Each job is a small seeded NSGA-II exploration
// of the case-study ward, so the number tracks scheduling + pipeline
// overhead, not raw evaluation speed (bench_test.go at the repo root
// owns that).
func BenchmarkServiceThroughput(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("jobs%d", workers), func(b *testing.B) {
			m := newTestManager(b, Config{Workers: workers, QueueLimit: workers * 4})
			defer m.Close()
			ctx := context.Background()
			start := time.Now()
			b.ResetTimer()
			inFlight := make([]string, 0, workers)
			drain := func() {
				for _, id := range inFlight {
					info, err := m.Wait(ctx, id)
					if err != nil {
						b.Fatal(err)
					}
					if info.Status != StatusDone {
						b.Fatalf("job %s: %s (%s)", id, info.Status, info.Error)
					}
				}
				inFlight = inFlight[:0]
			}
			for i := 0; i < b.N; i++ {
				info, err := m.Submit(Spec{
					Scenario:  "ecg-ward",
					Algorithm: AlgoNSGA2,
					Seed:      int64(i),
					Workers:   1,
					NSGA2:     &dse.NSGA2Config{PopulationSize: 8, Generations: 4},
				})
				if err != nil {
					b.Fatal(err)
				}
				inFlight = append(inFlight, info.ID)
				if len(inFlight) == workers {
					drain()
				}
			}
			drain()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
		})
	}
}

// BenchmarkSupervisedJobOverhead is BenchmarkServiceThroughput/jobs1's
// workload run with the supervision features armed on every job —
// MaxRetries budget, a deadline clock, panic recovery, disarmed
// faultinject hook points — and none of them firing. The jobs/s must
// stay within ~2% of ServiceThroughput/jobs1: crash-safety is paid for
// by crashing jobs, not by every healthy one.
func BenchmarkSupervisedJobOverhead(b *testing.B) {
	m := newTestManager(b, Config{Workers: 1, QueueLimit: 4})
	defer m.Close()
	ctx := context.Background()
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info, err := m.Submit(Spec{
			Scenario:        "ecg-ward",
			Algorithm:       AlgoNSGA2,
			Seed:            int64(i),
			Workers:         1,
			MaxRetries:      2,
			DeadlineSeconds: 60,
			NSGA2:           &dse.NSGA2Config{PopulationSize: 8, Generations: 4},
		})
		if err != nil {
			b.Fatal(err)
		}
		final, err := m.Wait(ctx, info.ID)
		if err != nil {
			b.Fatal(err)
		}
		if final.Status != StatusDone || final.Attempts != 1 {
			b.Fatalf("job %s: %s after %d attempts (%s)", info.ID, final.Status, final.Attempts, final.Error)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
}

// BenchmarkServiceThroughputObs is BenchmarkServiceThroughput/jobs1's
// workload plus an obs file per job. Sampling itself — the StatsSink on
// every boundary, the rate-limited sampler, the live ring — is always
// on and already inside the jobs1 baseline; its per-boundary cost is
// gated directly by BenchmarkSamplerBoundary and
// TestSamplerBoundaryZeroAlloc, and jobs1 must not regress against its
// recorded BENCH_MAIN.json value. What this benchmark adds is only the
// per-job telemetry file, so its delta against jobs1 measures the host
// filesystem's file-create cost, not sampling: the writer goroutine
// keeps that I/O off the boundary path, overlapping it with the next
// job's search whenever a spare CPU exists. (On this benchmark's
// sub-millisecond jobs a container overlay filesystem can spend more
// kernel CPU creating the file than the whole search costs; a real
// deployment's jobs run seconds to hours against one file open.)
func BenchmarkServiceThroughputObs(b *testing.B) {
	m := newTestManager(b, Config{Workers: 1, QueueLimit: 4, ObsDir: b.TempDir()})
	defer m.Close()
	ctx := context.Background()
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info, err := m.Submit(Spec{
			Scenario:  "ecg-ward",
			Algorithm: AlgoNSGA2,
			Seed:      int64(i),
			Workers:   1,
			NSGA2:     &dse.NSGA2Config{PopulationSize: 8, Generations: 4},
		})
		if err != nil {
			b.Fatal(err)
		}
		final, err := m.Wait(ctx, info.ID)
		if err != nil {
			b.Fatal(err)
		}
		if final.Status != StatusDone {
			b.Fatalf("job %s: %s (%s)", info.ID, final.Status, final.Error)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
}

// BenchmarkSamplerBoundary measures what one dse search boundary costs
// the telemetry sampler — the price every generation/segment of every
// job pays. "limited" is the steady state between samples (the rate
// limiter turns the boundary away: one mutex, one map watermark, one
// clock read — and zero allocations, gated by
// TestSamplerBoundaryZeroAlloc); "sampled" records a row (hypervolume,
// cached memstats, ring append) and is bounded by the sample interval
// to at most ~4/s per job in production.
func BenchmarkSamplerBoundary(b *testing.B) {
	front := []dse.Point{
		{Objs: dse.Objectives{1, 4}},
		{Objs: dse.Objectives{2, 3}},
		{Objs: dse.Objectives{3, 2}},
		{Objs: dse.Objectives{4, 1}},
	}
	run := func(b *testing.B, interval time.Duration) {
		s := newJobSampler(newMetrics(), "bench", "ecg-ward", false, "", interval, func(string, ...any) {})
		// One warmup boundary so the per-island watermark entry exists:
		// the CI bench runs at -benchtime 1x, and the recorded allocs/op
		// must be the steady state the zero-alloc gate enforces, not the
		// first call's map insert.
		s.observeSearch(dse.Stats{Step: 1, TotalSteps: 1 << 30, Front: front})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.observeSearch(dse.Stats{
				Step: 1, TotalSteps: 1 << 30, Evaluated: i, Infeasible: i / 8,
				Front: front, CacheHits: int64(i), CacheLookups: int64(2 * i),
			})
		}
	}
	b.Run("limited", func(b *testing.B) { run(b, time.Hour) })
	b.Run("sampled", func(b *testing.B) { run(b, time.Nanosecond) })
}

// BenchmarkSSEFanout measures the event hub broadcasting one progress
// event to N subscribers — the per-generation cost a popular job pays
// with many SSE watchers attached.
func BenchmarkSSEFanout(b *testing.B) {
	for _, subs := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("subs%d", subs), func(b *testing.B) {
			h := newHub(nil)
			done := make(chan struct{})
			for s := 0; s < subs; s++ {
				_, ch, cancel := h.subscribe()
				defer cancel()
				go func(ch <-chan Event) {
					for range ch { // drain
					}
					done <- struct{}{}
				}(ch)
			}
			p := &ProgressInfo{Step: 1, TotalSteps: 100, Evaluated: 512, FrontSize: 32}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.publish(Event{Type: "progress", Progress: p})
			}
			b.StopTimer()
			h.close()
			for s := 0; s < subs; s++ {
				<-done
			}
		})
	}
}
