package service

import (
	"context"
	"fmt"
	"testing"
	"time"

	"wsndse/internal/dse"
)

// BenchmarkServiceThroughput measures end-to-end jobs/s through the
// Manager — submit, schedule, compile, search, store — at 1, 4 and 16
// concurrent job workers. Each job is a small seeded NSGA-II exploration
// of the case-study ward, so the number tracks scheduling + pipeline
// overhead, not raw evaluation speed (bench_test.go at the repo root
// owns that).
func BenchmarkServiceThroughput(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("jobs%d", workers), func(b *testing.B) {
			m := newTestManager(b, Config{Workers: workers, QueueLimit: workers * 4})
			defer m.Close()
			ctx := context.Background()
			start := time.Now()
			b.ResetTimer()
			inFlight := make([]string, 0, workers)
			drain := func() {
				for _, id := range inFlight {
					info, err := m.Wait(ctx, id)
					if err != nil {
						b.Fatal(err)
					}
					if info.Status != StatusDone {
						b.Fatalf("job %s: %s (%s)", id, info.Status, info.Error)
					}
				}
				inFlight = inFlight[:0]
			}
			for i := 0; i < b.N; i++ {
				info, err := m.Submit(Spec{
					Scenario:  "ecg-ward",
					Algorithm: AlgoNSGA2,
					Seed:      int64(i),
					Workers:   1,
					NSGA2:     &dse.NSGA2Config{PopulationSize: 8, Generations: 4},
				})
				if err != nil {
					b.Fatal(err)
				}
				inFlight = append(inFlight, info.ID)
				if len(inFlight) == workers {
					drain()
				}
			}
			drain()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
		})
	}
}

// BenchmarkSupervisedJobOverhead is BenchmarkServiceThroughput/jobs1's
// workload run with the supervision features armed on every job —
// MaxRetries budget, a deadline clock, panic recovery, disarmed
// faultinject hook points — and none of them firing. The jobs/s must
// stay within ~2% of ServiceThroughput/jobs1: crash-safety is paid for
// by crashing jobs, not by every healthy one.
func BenchmarkSupervisedJobOverhead(b *testing.B) {
	m := newTestManager(b, Config{Workers: 1, QueueLimit: 4})
	defer m.Close()
	ctx := context.Background()
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info, err := m.Submit(Spec{
			Scenario:        "ecg-ward",
			Algorithm:       AlgoNSGA2,
			Seed:            int64(i),
			Workers:         1,
			MaxRetries:      2,
			DeadlineSeconds: 60,
			NSGA2:           &dse.NSGA2Config{PopulationSize: 8, Generations: 4},
		})
		if err != nil {
			b.Fatal(err)
		}
		final, err := m.Wait(ctx, info.ID)
		if err != nil {
			b.Fatal(err)
		}
		if final.Status != StatusDone || final.Attempts != 1 {
			b.Fatalf("job %s: %s after %d attempts (%s)", info.ID, final.Status, final.Attempts, final.Error)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
}

// BenchmarkSSEFanout measures the event hub broadcasting one progress
// event to N subscribers — the per-generation cost a popular job pays
// with many SSE watchers attached.
func BenchmarkSSEFanout(b *testing.B) {
	for _, subs := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("subs%d", subs), func(b *testing.B) {
			h := newHub()
			done := make(chan struct{})
			for s := 0; s < subs; s++ {
				_, ch, cancel := h.subscribe()
				defer cancel()
				go func(ch <-chan Event) {
					for range ch { // drain
					}
					done <- struct{}{}
				}(ch)
			}
			p := &ProgressInfo{Step: 1, TotalSteps: 100, Evaluated: 512, FrontSize: 32}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.publish(Event{Type: "progress", Progress: p})
			}
			b.StopTimer()
			h.close()
			for s := 0; s < subs; s++ {
				<-done
			}
		})
	}
}
