package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wsndse/internal/dse"
	"wsndse/internal/service/faultinject"
)

// The chaos suite arms the global faultinject hooks, so none of these
// tests may run in parallel with each other; each arms after its
// reference runs and defers faultinject.Reset.

// fastRetry makes retries instant-ish so chaos tests don't sleep.
func fastRetry(cfg Config) Config {
	cfg.RetryBaseDelay = time.Millisecond
	cfg.RetryMaxDelay = 5 * time.Millisecond
	return cfg
}

// chaosSpecs are the two checkpointing algorithm families the
// panic-retry bit-identity guarantee is proven for.
func chaosSpecs() map[string]Spec {
	return map[string]Spec{
		"nsga2": {
			Scenario:  "ecg-ward",
			Algorithm: AlgoNSGA2,
			Seed:      11,
			Workers:   2,
			NSGA2:     &dse.NSGA2Config{PopulationSize: 8, Generations: 6},
		},
		"mosa": {
			Scenario:  "ecg-ward",
			Algorithm: AlgoMOSA,
			Seed:      11,
			Workers:   2,
			MOSA:      &dse.MOSAConfig{Iterations: 4000, Restarts: 4}, // 4 segments of 256 iters/chain
		},
	}
}

// TestChaosPanicRetryBitIdentical is the headline recovery guarantee: a
// job that panics mid-search and auto-retries from its checkpoint
// produces a front byte-identical to an uninterrupted run of the same
// spec, for both checkpointing algorithm families.
func TestChaosPanicRetryBitIdentical(t *testing.T) {
	for name, spec := range chaosSpecs() {
		t.Run(name, func(t *testing.T) {
			m := newTestManager(t, fastRetry(Config{Workers: 1}))
			defer m.Close()

			ref, err := m.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			if info := waitDone(t, m, ref.ID); info.Status != StatusDone {
				t.Fatalf("reference run: %s (%s)", info.Status, info.Error)
			}
			want, err := m.Front(ref.ID)
			if err != nil {
				t.Fatal(err)
			}

			defer faultinject.Reset()
			faultinject.PanicOnceAtStep(3, 1)
			faulted := spec
			faulted.MaxRetries = 2
			faulted.CheckpointEvery = 1
			victim, err := m.Submit(faulted)
			if err != nil {
				t.Fatal(err)
			}
			info := waitDone(t, m, victim.ID)
			if info.Status != StatusDone {
				t.Fatalf("faulted run: %s (%s)", info.Status, info.Error)
			}
			if info.Attempts != 2 {
				t.Fatalf("attempts = %d, want 2 (one panic, one successful retry)", info.Attempts)
			}
			if info.Error != "" {
				t.Fatalf("done job still carries error %q", info.Error)
			}
			got, err := m.Front(victim.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Front, got.Front) {
				t.Fatalf("retried front differs from uninterrupted run:\nwant %+v\ngot  %+v", want.Front, got.Front)
			}
		})
	}
}

// TestChaosRetryWithoutCheckpoint: a job that never checkpointed retries
// from scratch — and, the search being deterministic, still lands on the
// uninterrupted run's exact front.
func TestChaosRetryWithoutCheckpoint(t *testing.T) {
	spec := chaosSpecs()["nsga2"]
	m := newTestManager(t, fastRetry(Config{Workers: 1}))
	defer m.Close()

	ref, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, ref.ID)
	want, err := m.Front(ref.ID)
	if err != nil {
		t.Fatal(err)
	}

	defer faultinject.Reset()
	faultinject.PanicOnceAtStep(3, 1)
	faulted := spec
	faulted.MaxRetries = 1 // no CheckpointEvery: retry restarts from step 0
	victim, err := m.Submit(faulted)
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, m, victim.ID)
	if info.Status != StatusDone || info.Attempts != 2 {
		t.Fatalf("status %s attempts %d (%s), want done after 2 attempts", info.Status, info.Attempts, info.Error)
	}
	got, err := m.Front(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Front, got.Front) {
		t.Fatalf("from-scratch retry front differs:\nwant %+v\ngot  %+v", want.Front, got.Front)
	}
}

// TestChaosRetriesExhausted: a deterministic panic burns through every
// retry and the job fails with the panic and its stack preserved, the
// attempt count accounting for the initial try plus MaxRetries retries.
func TestChaosRetriesExhausted(t *testing.T) {
	defer faultinject.Reset()
	faultinject.PanicOnceAtStep(2, 100) // effectively always

	var logLines []string
	var logMu sync.Mutex
	cfg := fastRetry(Config{Workers: 1})
	cfg.Logf = func(format string, args ...any) {
		logMu.Lock()
		logLines = append(logLines, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}
	m := newTestManager(t, cfg)
	defer m.Close()

	spec := chaosSpecs()["nsga2"]
	spec.MaxRetries = 2
	info, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusFailed {
		t.Fatalf("status %s, want failed", final.Status)
	}
	if final.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (initial + 2 retries)", final.Attempts)
	}
	if !strings.Contains(final.Error, "injected panic") || !strings.Contains(final.Error, "goroutine") {
		t.Fatalf("error should carry the panic value and stack, got:\n%s", final.Error)
	}
	logMu.Lock()
	defer logMu.Unlock()
	retryLogs := 0
	for _, l := range logLines {
		if strings.Contains(l, "retrying in") {
			retryLogs++
		}
	}
	if retryLogs != 2 {
		t.Fatalf("%d retry log lines, want 2: %q", retryLogs, logLines)
	}
}

// TestChaosRetryEventsCarryAttempt: the event stream narrates the retry
// loop — running(1) → queued(retry, with error) → running(2) → done —
// with each status event stamped with its attempt.
func TestChaosRetryEventsCarryAttempt(t *testing.T) {
	defer faultinject.Reset()
	faultinject.PanicOnceAtStep(2, 1)

	m := newTestManager(t, fastRetry(Config{Workers: 1}))
	defer m.Close()
	spec := chaosSpecs()["nsga2"]
	spec.MaxRetries = 1
	info, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	replay, ch, cancel, err := m.Subscribe(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var statuses []Event
	for _, e := range replay {
		if e.Type == "status" {
			statuses = append(statuses, e)
		}
	}
	for e := range ch {
		if e.Type == "status" {
			statuses = append(statuses, e)
		}
	}
	var trace []string
	for _, e := range statuses {
		trace = append(trace, fmt.Sprintf("%s@%d", e.Status, e.Attempt))
	}
	want := []string{"queued@0", "running@1", "queued@1", "running@2", "done@2"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("status trace %v, want %v", trace, want)
	}
	// The retry's queued event must carry the failure that caused it.
	if statuses[2].Error == "" || !strings.Contains(statuses[2].Error, "injected panic") {
		t.Fatalf("retry transition lost its error: %+v", statuses[2])
	}
}

// TestChaosDeadline: a job whose deadline elapses mid-search stops at
// the next boundary as timed_out, keeping its partial front.
func TestChaosDeadline(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	spec := Spec{
		Scenario:        "ecg-ward",
		Algorithm:       AlgoNSGA2,
		Seed:            5,
		Workers:         2,
		DeadlineSeconds: 0.15,
		NSGA2:           &dse.NSGA2Config{PopulationSize: 16, Generations: 1_000_000},
	}
	info, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusTimedOut {
		t.Fatalf("status %s (%s), want timed_out", final.Status, final.Error)
	}
	if !strings.Contains(final.Error, "deadline") {
		t.Fatalf("error %q should mention the deadline", final.Error)
	}
	front, err := m.Front(info.ID)
	if err != nil {
		t.Fatalf("timed-out job should keep its partial front: %v", err)
	}
	if len(front.Front) == 0 || front.Status != StatusTimedOut {
		t.Fatalf("partial front %+v", front)
	}
}

// TestChaosDeadlineSpansRetries: the deadline bounds the whole job, not
// each attempt — a job stuck in a panic/retry loop times out once the
// clock runs down, rather than failing only after all retries burn.
func TestChaosDeadlineSpansRetries(t *testing.T) {
	defer faultinject.Reset()
	faultinject.PanicOnceAtStep(1, 10_000)

	cfg := Config{Workers: 1, RetryBaseDelay: 50 * time.Millisecond, RetryMaxDelay: 50 * time.Millisecond}
	m := newTestManager(t, cfg)
	defer m.Close()
	spec := chaosSpecs()["nsga2"]
	spec.MaxRetries = maxJobRetries
	spec.DeadlineSeconds = 0.3
	info, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusTimedOut {
		t.Fatalf("status %s (%s), want timed_out", final.Status, final.Error)
	}
}

// TestChaosCheckpointWriteFailure: a dying disk fails every durable
// checkpoint write; the job logs, keeps its in-memory snapshot, and
// finishes as if nothing happened.
func TestChaosCheckpointWriteFailure(t *testing.T) {
	defer faultinject.Reset()
	faultinject.SetCheckpointWriteHook(func(path string, data []byte) ([]byte, error) {
		return nil, errors.New("disk full (injected)")
	})

	var logged atomic.Int32
	cfg := Config{Workers: 1, CheckpointDir: t.TempDir()}
	cfg.Logf = func(format string, args ...any) {
		if strings.Contains(fmt.Sprintf(format, args...), "checkpoint write") {
			logged.Add(1)
		}
	}
	m := newTestManager(t, cfg)
	defer m.Close()

	spec := chaosSpecs()["nsga2"]
	spec.CheckpointEvery = 1
	info, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusDone {
		t.Fatalf("status %s (%s), want done despite failing checkpoint writes", final.Status, final.Error)
	}
	if logged.Load() == 0 {
		t.Fatal("failing checkpoint writes left no log trace")
	}
	if _, err := m.Checkpoint(info.ID); err != nil {
		t.Fatalf("in-memory snapshot should survive failed durable writes: %v", err)
	}
	if _, err := LoadSnapshot(cfg.CheckpointDir, info.ID); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("no durable snapshot should exist, got err=%v", err)
	}
}

// TestChaosTornCheckpointFallback: a checkpoint file torn by a mid-write
// kill fails its checksum on load, and recovery falls back to the
// previous checkpoint — resuming from which still reproduces the
// uninterrupted run's front exactly.
func TestChaosTornCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Workers: 1, CheckpointDir: dir})
	defer m.Close()

	spec := chaosSpecs()["nsga2"]
	spec.CheckpointEvery = 1
	info, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusDone {
		t.Fatalf("status %s (%s)", final.Status, final.Error)
	}
	want, err := m.Front(info.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Both rotation slots exist and the latest outranks its predecessor.
	latest, err := LoadSnapshot(dir, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	prevData, err := os.ReadFile(snapshotPrevPath(dir, info.ID))
	if err != nil {
		t.Fatalf("rotation should have kept the previous checkpoint: %v", err)
	}
	prev, err := dse.DecodeSnapshotFile(prevData)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Step != latest.Step-1 {
		t.Fatalf("prev at step %d, latest at %d — rotation broken", prev.Step, latest.Step)
	}

	// Kill-mid-write simulation: truncate the latest file to half.
	path := snapshotPath(dir, info.ID)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dse.DecodeSnapshotFile(data[:len(data)/2]); !errors.Is(err, dse.ErrCorruptSnapshot) {
		t.Fatalf("torn bytes should decode as ErrCorruptSnapshot, got %v", err)
	}

	recovered, err := LoadSnapshot(dir, info.ID)
	if err != nil {
		t.Fatalf("LoadSnapshot should fall back past the torn file: %v", err)
	}
	if recovered.Step != prev.Step {
		t.Fatalf("recovered step %d, want the previous checkpoint's %d", recovered.Step, prev.Step)
	}

	// Resuming from the fallback still lands on the identical front.
	resumeSpec := spec
	resumeSpec.Resume = recovered
	resumed, err := m.Submit(resumeSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, resumed.ID)
	got, err := m.Front(resumed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Front, got.Front) {
		t.Fatalf("front resumed from fallback checkpoint differs:\nwant %+v\ngot  %+v", want.Front, got.Front)
	}

	// With both slots gone, loading reports not-exist (distinct from corrupt).
	os.Remove(path)
	os.Remove(snapshotPrevPath(dir, info.ID))
	if _, err := LoadSnapshot(dir, info.ID); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want os.ErrNotExist with no files, got %v", err)
	}
}

// TestChaosStoreWriteFailure: the result store's disk fails at archive
// time; the job still completes (front served from memory), with
// ResultVersion left unset as the trace that archiving was lost.
func TestChaosStoreWriteFailure(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, ResultDir: t.TempDir()})
	defer m.Close()

	defer faultinject.Reset()
	faultinject.SetStoreWriteHook(func(path string) error {
		return errors.New("disk full (injected)")
	})

	info, err := m.Submit(chaosSpecs()["nsga2"])
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, m, info.ID)
	if final.Status != StatusDone {
		t.Fatalf("status %s (%s), want done despite failing archive", final.Status, final.Error)
	}
	if final.ResultVersion != 0 {
		t.Fatalf("ResultVersion %d, want 0 after a failed archive", final.ResultVersion)
	}
	front, err := m.Front(info.ID)
	if err != nil || len(front.Front) == 0 {
		t.Fatalf("front should be served from memory: %v (%d points)", err, len(front.Front))
	}
}

// TestChaosSSEReconnect drives the client's SSE stream through a proxy
// that kills every connection after a byte allowance. The client must
// reconnect with Last-Event-ID, observe every sequence number at most
// once and strictly increasing, and still see the job to completion.
func TestChaosSSEReconnect(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	proxy, err := faultinject.NewFlakyProxy(strings.TrimPrefix(srv.URL, "http://"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c := NewClient("http://" + proxy.Addr())
	c.MaxRetries = 10
	c.RetryBaseDelay = time.Millisecond
	c.RetryMaxDelay = 10 * time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	spec := Spec{
		Scenario:  "ecg-ward",
		Algorithm: AlgoNSGA2,
		Seed:      9,
		Workers:   2,
		NSGA2:     &dse.NSGA2Config{PopulationSize: 8, Generations: 3000},
	}
	info, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	lastSeq := 0
	events := 0
	final, err := c.Wait(ctx, info.ID, func(e Event) {
		if e.Seq <= lastSeq {
			t.Errorf("event seq %d after %d: duplicates/reordering leaked through reconnect", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		events++
	})
	if err != nil {
		t.Fatalf("Wait through flaky proxy: %v", err)
	}
	if final.Status != StatusDone {
		t.Fatalf("status %s (%s)", final.Status, final.Error)
	}
	if proxy.Kills() == 0 {
		t.Fatal("proxy never killed a connection — the test proved nothing; lower the allowance")
	}
	if events == 0 {
		t.Fatal("no events observed")
	}
}

// TestChaosClientIdempotentRetry: GETs ride out a server's bad patch
// (503s, the restart window) with backoff; POSTs are never replayed.
func TestChaosClientIdempotentRetry(t *testing.T) {
	var gets, posts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			posts.Add(1)
			writeError(w, http.StatusServiceUnavailable, CodeUnavailable, errors.New("restarting"))
			return
		}
		if gets.Add(1) <= 2 {
			writeError(w, http.StatusServiceUnavailable, CodeUnavailable, errors.New("restarting"))
			return
		}
		writeJSON(w, http.StatusOK, JobInfo{ID: "j1", Status: StatusDone})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.RetryBaseDelay = time.Millisecond
	c.RetryMaxDelay = 2 * time.Millisecond
	ctx := context.Background()

	info, err := c.Job(ctx, "j1")
	if err != nil {
		t.Fatalf("GET should survive two 503s: %v", err)
	}
	if info.ID != "j1" || gets.Load() != 3 {
		t.Fatalf("info %+v after %d GETs", info, gets.Load())
	}

	if _, err := c.Submit(ctx, Spec{}); err == nil {
		t.Fatal("Submit against a 503 server should fail")
	}
	if posts.Load() != 1 {
		t.Fatalf("POST was attempted %d times; must never be retried", posts.Load())
	}

	// Definitive errors short-circuit: a 404 is final on the first try.
	gets.Store(100)
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		writeError(w, http.StatusNotFound, CodeNotFound, ErrNotFound)
	}))
	defer srv2.Close()
	c2 := NewClient(srv2.URL)
	c2.RetryBaseDelay = time.Millisecond
	before := gets.Load()
	var apiErr *APIError
	if _, err := c2.Job(ctx, "nope"); !errors.As(err, &apiErr) || apiErr.Code != CodeNotFound {
		t.Fatalf("want not_found APIError, got %v", err)
	}
	if gets.Load() != before+1 {
		t.Fatalf("404 was retried (%d requests)", gets.Load()-before)
	}
}

// TestChaosServerRestartMidWait is the in-process restart drill: the
// server process dies mid-job (listener closed), a new server comes up on
// the same address serving a resumed manager, and a client Wait that
// started before the restart finishes after it.
func TestChaosServerRestartMidWait(t *testing.T) {
	dir := t.TempDir()
	m1 := newTestManager(t, Config{Workers: 1, CheckpointDir: dir})

	// Plain Server (not httptest) so the address can be re-bound.
	ln := newLocalListener(t)
	addr := ln.Addr().String()
	srv1 := &http.Server{Handler: NewHandler(m1)}
	go srv1.Serve(ln)

	c := NewClient("http://" + addr)
	c.MaxRetries = 50
	c.RetryBaseDelay = 5 * time.Millisecond
	c.RetryMaxDelay = 20 * time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	spec := Spec{
		Scenario:        "ecg-ward",
		Algorithm:       AlgoNSGA2,
		Seed:            13,
		Workers:         2,
		CheckpointEvery: 1,
		NSGA2:           &dse.NSGA2Config{PopulationSize: 8, Generations: 4000},
	}
	info, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Let the job make progress, then kill server and manager abruptly.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ji, err := c.Job(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if ji.Progress != nil && ji.Progress.Step >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(2 * time.Millisecond)
	}

	waitErr := make(chan error, 1)
	var finalInfo JobInfo
	go func() {
		fi, err := c.Wait(ctx, info.ID, nil)
		finalInfo = fi
		waitErr <- err
	}()

	srv1.Close() // hard close: in-flight SSE streams die mid-event
	m1.Close()

	// "Restart": new manager resumes the dead one's job from its durable
	// checkpoint under the same job ID (Submit assigns j1 on a fresh
	// manager), on the same address.
	snap, err := LoadSnapshot(dir, info.ID)
	if err != nil {
		t.Fatalf("loading the dead server's checkpoint: %v", err)
	}
	m2 := newTestManager(t, Config{Workers: 1, CheckpointDir: dir})
	defer m2.Close()
	resumeSpec := spec
	resumeSpec.Resume = snap
	info2, err := m2.Submit(resumeSpec)
	if err != nil {
		t.Fatal(err)
	}
	if info2.ID != info.ID {
		t.Fatalf("restarted manager assigned %s, want %s", info2.ID, info.ID)
	}
	ln2 := newLocalListenerAt(t, addr)
	srv2 := &http.Server{Handler: NewHandler(m2)}
	go srv2.Serve(ln2)
	defer srv2.Close()

	if err := <-waitErr; err != nil {
		t.Fatalf("Wait across the restart: %v", err)
	}
	if finalInfo.Status != StatusDone {
		t.Fatalf("resumed job: %s (%s)", finalInfo.Status, finalInfo.Error)
	}
}

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// newLocalListenerAt rebinds addr, retrying briefly: the previous
// listener was closed a moment ago and the kernel may not have released
// the port yet.
func newLocalListenerAt(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHubSubscribeFrom pins the server half of Last-Event-ID resume:
// replay is filtered to events after the given sequence number.
func TestHubSubscribeFrom(t *testing.T) {
	h := newHub(nil)
	for i := 0; i < 3; i++ {
		h.publish(Event{Type: "status", Status: StatusQueued})
	}
	h.publish(Event{Type: "progress", Progress: &ProgressInfo{Step: 9}})

	replay, _, cancel := h.subscribeFrom(2)
	defer cancel()
	for _, e := range replay {
		if e.Seq <= 2 {
			t.Fatalf("subscribeFrom(2) replayed seq %d", e.Seq)
		}
	}
	if len(replay) != 2 { // status seq 3 + progress seq 4
		t.Fatalf("replay %+v, want 2 events", replay)
	}

	all, _, cancelAll := h.subscribe()
	defer cancelAll()
	if len(all) != 4 {
		t.Fatalf("full replay has %d events, want 4", len(all))
	}
}

// TestHTTPRobustnessSurface covers the new hardening seams: request-body
// cap (413 body_too_large), Last-Event-ID validation, and SSE resume over
// HTTP.
func TestHTTPRobustnessSurface(t *testing.T) {
	c, m := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Oversized body → 413 with the structured envelope.
	huge := strings.NewReader(`{"scenario":"` + strings.Repeat("x", MaxBodyBytes+1) + `"}`)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", huge)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d, want 413", resp.StatusCode)
	}
	if ae := decodeAPIError(resp.StatusCode, resp.Body); ae.Code != CodeBodyTooLarge {
		t.Fatalf("code %q, want %q", ae.Code, CodeBodyTooLarge)
	}

	info, err := c.Submit(ctx, smallNSGA2("ecg-ward", 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(ctx, info.ID); err != nil {
		t.Fatal(err)
	}

	// A malformed Last-Event-ID is invalid_argument, not a silent full replay.
	req, err = http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+info.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "bogus")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus Last-Event-ID: HTTP %d, want 400", resp2.StatusCode)
	}

	// Resuming after the last seq of a finished job yields an empty stream.
	var lastSeq int
	if err := c.Events(ctx, info.ID, func(e Event) bool { lastSeq = e.Seq; return true }); err != nil {
		t.Fatal(err)
	}
	req, err = http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+info.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", fmt.Sprint(lastSeq))
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	body := make([]byte, 1024)
	n, _ := resp3.Body.Read(body)
	if got := strings.TrimSpace(string(body[:n])); got != "" {
		t.Fatalf("resume past the end replayed: %q", got)
	}
}
