package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"wsndse/internal/dse"
)

// Client is the Go wrapper around the wsn-serve HTTP API. The zero
// HTTPClient falls back to http.DefaultClient; BaseURL is the server root
// (e.g. "http://127.0.0.1:8080").
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
}

// NewClient returns a client for the given server root.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError is the wire form of a server-side error.
type apiError struct {
	Error string `json:"error"`
}

// do issues the request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses come back as errors carrying the
// server's message.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var ae apiError
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			return fmt.Errorf("service: %s %s: %s (HTTP %d)", method, path, ae.Error, resp.StatusCode)
		}
		return fmt.Errorf("service: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec and returns the queued job.
func (c *Client) Submit(ctx context.Context, spec Spec) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &info)
	return info, err
}

// Job fetches one job's state.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Jobs lists every job.
func (c *Client) Jobs(ctx context.Context) ([]JobInfo, error) {
	var infos []JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &infos)
	return infos, err
}

// Cancel requests cooperative cancellation.
func (c *Client) Cancel(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Front fetches the job's Pareto front (available once the job is done,
// or cancelled with a partial front).
func (c *Client) Front(ctx context.Context, id string) (FrontResponse, error) {
	var front FrontResponse
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/front", nil, &front)
	return front, err
}

// Checkpoint fetches the job's latest snapshot — the artifact a new job's
// Spec.Resume takes.
func (c *Client) Checkpoint(ctx context.Context, id string) (*dse.Snapshot, error) {
	snap := &dse.Snapshot{}
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/checkpoint", nil, snap)
	return snap, err
}

// Scenarios lists the registered workloads.
func (c *Client) Scenarios(ctx context.Context) ([]ScenarioInfo, error) {
	var infos []ScenarioInfo
	err := c.do(ctx, http.MethodGet, "/v1/scenarios", nil, &infos)
	return infos, err
}

// Results queries the versioned result store; empty filters match all.
func (c *Client) Results(ctx context.Context, scenarioName, algorithm string) ([]StoredResult, error) {
	q := url.Values{}
	if scenarioName != "" {
		q.Set("scenario", scenarioName)
	}
	if algorithm != "" {
		q.Set("algorithm", algorithm)
	}
	path := "/v1/results"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var results []StoredResult
	err := c.do(ctx, http.MethodGet, path, nil, &results)
	return results, err
}

// Events consumes the job's SSE stream, invoking fn for each event until
// fn returns false, the stream ends (job terminal), or ctx expires. A nil
// error means the stream ended normally.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ae apiError
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			return fmt.Errorf("service: events %s: %s (HTTP %d)", id, ae.Error, resp.StatusCode)
		}
		return fmt.Errorf("service: events %s: HTTP %d", id, resp.StatusCode)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		case line == "" && len(data) > 0:
			var e Event
			if err := json.Unmarshal(data, &e); err != nil {
				return fmt.Errorf("service: malformed event: %w", err)
			}
			data = data[:0]
			if !fn(e) {
				return nil
			}
		}
	}
	if err := scanner.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// Wait streams events until the job reaches a terminal state (calling
// onEvent for each event if non-nil), then returns the final job info.
// It degrades to the job's current state if the stream ends early.
func (c *Client) Wait(ctx context.Context, id string, onEvent func(Event)) (JobInfo, error) {
	err := c.Events(ctx, id, func(e Event) bool {
		if onEvent != nil {
			onEvent(e)
		}
		return !(e.Type == "status" && e.Status.Terminal())
	})
	if err != nil {
		return JobInfo{}, err
	}
	return c.Job(ctx, id)
}
