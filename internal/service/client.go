package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"wsndse/internal/dse"
)

// Client is the Go wrapper around the wsn-serve HTTP API. The zero
// HTTPClient falls back to http.DefaultClient; BaseURL is the server root
// (e.g. "http://127.0.0.1:8080").
//
// The client rides out transient server trouble on its own: idempotent
// calls (every GET and DELETE — cancel is idempotent by design) retry
// with capped exponential backoff on transport errors and 502/503/504,
// and Events/Wait transparently reconnect a dropped SSE stream, resuming
// via Last-Event-ID. Submit is never retried: the caller cannot know
// whether a dead connection's job was enqueued.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
	// MaxRetries bounds the retries after a failed idempotent call (and
	// the consecutive no-progress reconnects of an event stream). 0
	// selects DefaultClientRetries; negative disables retrying.
	MaxRetries int
	// RetryBaseDelay/RetryMaxDelay shape the backoff between retries
	// (zero selects DefaultClientRetryBase/DefaultClientRetryMax).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
}

// Client retry defaults: up to 3 retries, backoff 250ms → 5s. Tuned for
// "the server is restarting", not "the server is gone".
const (
	DefaultClientRetries   = 3
	DefaultClientRetryBase = 250 * time.Millisecond
	DefaultClientRetryMax  = 5 * time.Second
)

// NewClient returns a client for the given server root.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) retries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return DefaultClientRetries
	}
	return c.MaxRetries
}

// backoff computes the delay before retry number `retry` (1-based),
// reusing the manager's capped-exponential-with-jitter shape.
func (c *Client) backoff(retry int) time.Duration {
	base, max := c.RetryBaseDelay, c.RetryMaxDelay
	if base <= 0 {
		base = DefaultClientRetryBase
	}
	if max <= 0 {
		max = DefaultClientRetryMax
	}
	return retryDelay(retry, base, max)
}

// sleepContext waits out a backoff delay, returning early with ctx's
// error the moment the context is cancelled. Centralizing the select
// keeps every retry loop responsive to cancellation: a caller that gives
// up mid-backoff gets control back within the tick, not after it.
func sleepContext(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryableError reports whether err is worth retrying an idempotent
// call for: transport-level failures (connection refused/reset — the
// restart window) and the gateway-flavored 5xx statuses. Every other
// *APIError is a definitive answer from a live server.
func retryableError(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	return true
}

// APIError is a non-2xx response from the server, carrying the
// machine-readable code from the v1 error envelope. Branch on Code (the
// Code* constants) with errors.As:
//
//	var apiErr *service.APIError
//	if errors.As(err, &apiErr) && apiErr.Code == service.CodeQueueFull { backoff() }
type APIError struct {
	// StatusCode is the HTTP status of the response.
	StatusCode int
	// Code is the machine-readable error code (CodeNotFound, ...); empty
	// if the server predates the structured envelope.
	Code string
	// Message is the human-readable explanation.
	Message string
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("service: %s: %s (HTTP %d)", e.Code, e.Message, e.StatusCode)
	}
	if e.Message != "" {
		return fmt.Sprintf("service: %s (HTTP %d)", e.Message, e.StatusCode)
	}
	return fmt.Sprintf("service: HTTP %d", e.StatusCode)
}

// decodeAPIError turns a non-2xx response body into an *APIError,
// accepting both the structured envelope and the legacy flat
// {"error": "..."} shape (an old server behind a new client).
func decodeAPIError(statusCode int, body io.Reader) *APIError {
	var wire struct {
		Error json.RawMessage `json:"error"`
	}
	ae := &APIError{StatusCode: statusCode}
	if json.NewDecoder(body).Decode(&wire) != nil || len(wire.Error) == 0 {
		return ae
	}
	var eb errorBody
	if json.Unmarshal(wire.Error, &eb) == nil && eb.Message != "" {
		ae.Code, ae.Message = eb.Code, eb.Message
		return ae
	}
	var flat string
	if json.Unmarshal(wire.Error, &flat) == nil {
		ae.Message = flat
	}
	return ae
}

// do issues the request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses come back as a wrapped *APIError
// (reach it with errors.As). Requests without a body — idempotent by
// construction in this API — are retried on transient failures; a POST
// is attempted exactly once.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = data
	}
	retries := 0
	if in == nil {
		retries = c.retries()
	}
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		if attempt >= retries || !retryableError(err) || ctx.Err() != nil {
			return err
		}
		if sleepContext(ctx, c.backoff(attempt+1)) != nil {
			return err
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: %w", method, path, decodeAPIError(resp.StatusCode, resp.Body))
	}
	if out == nil {
		return nil
	}
	// Buffer before unmarshalling so a connection cut mid-body surfaces as
	// a retryable read error, never as out half-filled by a partial decode.
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}

// pageParams encodes limit/offset into q (omitting zero values).
func pageParams(q url.Values, limit, offset int) {
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if offset > 0 {
		q.Set("offset", strconv.Itoa(offset))
	}
}

// collectPages drains a paged endpoint: fetch is called with a growing
// offset until the reported total is reached.
func collectPages[T any](fetch func(limit, offset int) (Page[T], error)) ([]T, error) {
	var all []T
	offset := 0
	for {
		page, err := fetch(MaxPageLimit, offset)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Items...)
		offset += len(page.Items)
		if offset >= page.Total || len(page.Items) == 0 {
			return all, nil
		}
	}
}

// Submit posts a job spec and returns the queued job.
func (c *Client) Submit(ctx context.Context, spec Spec) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &info)
	return info, err
}

// Job fetches one job's state.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// JobsPage fetches one window of the job list (limit <= 0 selects the
// server default).
func (c *Client) JobsPage(ctx context.Context, limit, offset int) (Page[JobInfo], error) {
	q := url.Values{}
	pageParams(q, limit, offset)
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page Page[JobInfo]
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// Jobs lists every job, draining pagination.
func (c *Client) Jobs(ctx context.Context) ([]JobInfo, error) {
	return collectPages(func(limit, offset int) (Page[JobInfo], error) {
		return c.JobsPage(ctx, limit, offset)
	})
}

// Cancel requests cooperative cancellation.
func (c *Client) Cancel(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Front fetches the job's Pareto front (available once the job is done,
// or cancelled with a partial front).
func (c *Client) Front(ctx context.Context, id string) (FrontResponse, error) {
	var front FrontResponse
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/front", nil, &front)
	return front, err
}

// JobStats fetches the job's recent telemetry window (n <= 0: the whole
// retained window).
func (c *Client) JobStats(ctx context.Context, id string, n int) (StatsResponse, error) {
	path := "/v1/jobs/" + url.PathEscape(id) + "/stats"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var resp StatsResponse
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp, err
}

// Checkpoint fetches the job's latest snapshot — the artifact a new job's
// Spec.Resume takes.
func (c *Client) Checkpoint(ctx context.Context, id string) (*dse.Snapshot, error) {
	snap := &dse.Snapshot{}
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/checkpoint", nil, snap)
	return snap, err
}

// ScenariosPage fetches one window of the scenario list.
func (c *Client) ScenariosPage(ctx context.Context, limit, offset int) (Page[ScenarioInfo], error) {
	q := url.Values{}
	pageParams(q, limit, offset)
	path := "/v1/scenarios"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page Page[ScenarioInfo]
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// Scenarios lists the registered workloads, draining pagination.
func (c *Client) Scenarios(ctx context.Context) ([]ScenarioInfo, error) {
	return collectPages(func(limit, offset int) (Page[ScenarioInfo], error) {
		return c.ScenariosPage(ctx, limit, offset)
	})
}

// Result fetches the stored result at an exact version
// (GET /v1/results/{version}).
func (c *Client) Result(ctx context.Context, version int) (StoredResult, error) {
	var res StoredResult
	err := c.do(ctx, http.MethodGet, "/v1/results/"+strconv.Itoa(version), nil, &res)
	return res, err
}

// ResultsPage queries the result store (GET /v1/results): zero-valued
// query fields match everything, matches come back newest-first, and
// q.Limit <= 0 selects the server's default page size.
func (c *Client) ResultsPage(ctx context.Context, rq ResultQuery) (Page[StoredResult], error) {
	q := url.Values{}
	if rq.Key != "" {
		q.Set("key", rq.Key)
	}
	if rq.Fingerprint != "" {
		q.Set("fingerprint", rq.Fingerprint)
	}
	if rq.Scenario != "" {
		q.Set("scenario", rq.Scenario)
	}
	if rq.Family != "" {
		q.Set("family", rq.Family)
	}
	if rq.Algorithm != "" {
		q.Set("algorithm", rq.Algorithm)
	}
	pageParams(q, rq.Limit, rq.Offset)
	path := "/v1/results"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page Page[StoredResult]
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// LookupResult implements ResultLookup over the HTTP API, so warm-start
// resolution (wsn-explore -warm-start <url>) runs against a remote
// server exactly as it does against a local store directory.
func (c *Client) LookupResult(version int) (StoredResult, bool) {
	res, err := c.Result(context.Background(), version)
	if err != nil {
		return StoredResult{}, false
	}
	return res, true
}

// QueryResults implements ResultLookup over the HTTP API.
func (c *Client) QueryResults(q ResultQuery) ([]StoredResult, error) {
	page, err := c.ResultsPage(context.Background(), q)
	if err != nil {
		return nil, err
	}
	return page.Items, nil
}

// Events consumes the job's SSE stream, invoking fn for each event until
// fn returns false, the job reaches a terminal state, or ctx expires. A
// nil error means the stream ended normally.
//
// Dropped connections are survived, not surfaced: Events reconnects with
// backoff, sends the last sequence number seen as Last-Event-ID so the
// server resumes instead of replaying, and suppresses any duplicate
// events a replaying server sends anyway — fn observes each Seq at most
// once, strictly increasing. Reconnects that make forward progress reset
// the retry budget; MaxRetries consecutive fruitless reconnects (or a
// definitive API error such as not_found) end the stream with an error.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) bool) error {
	var (
		lastSeq  int
		terminal bool
		stopped  bool
	)
	handle := func(e Event) bool {
		if e.Seq <= lastSeq {
			return true // duplicate from a replaying reconnect
		}
		lastSeq = e.Seq
		if e.Type == "status" && e.Status.Terminal() {
			terminal = true
		}
		if !fn(e) {
			stopped = true
			return false
		}
		return true
	}
	fruitless := 0
	for {
		before := lastSeq
		err := c.streamEvents(ctx, id, lastSeq, handle)
		switch {
		case stopped:
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		}
		var ae *APIError
		if errors.As(err, &ae) && !retryableError(err) {
			return err // a live server said no (not_found, ...): reconnecting won't help
		}
		if err == nil && terminal {
			return nil // clean end after the terminal status event: the job's story is over
		}
		// The stream died mid-job (connection cut, server restart) or ended
		// without a terminal event. Reconnect — with a fresh retry budget if
		// this attempt delivered anything new.
		if lastSeq > before {
			fruitless = 0
			continue
		}
		fruitless++
		if fruitless > c.retries() {
			if err != nil {
				return err
			}
			return fmt.Errorf("service: event stream for job %s ended before the job finished", id)
		}
		if err := sleepContext(ctx, c.backoff(fruitless)); err != nil {
			return err
		}
	}
}

// streamEvents runs one SSE connection: it subscribes after afterSeq and
// feeds parsed events to handle until handle returns false, the stream
// ends, or ctx expires.
func (c *Client) streamEvents(ctx context.Context, id string, afterSeq int, handle func(Event) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if afterSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(afterSeq))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events %s: %w", id, decodeAPIError(resp.StatusCode, resp.Body))
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		case line == "" && len(data) > 0:
			var e Event
			if err := json.Unmarshal(data, &e); err != nil {
				return fmt.Errorf("service: malformed event: %w", err)
			}
			data = data[:0]
			if !handle(e) {
				return nil
			}
		}
	}
	if err := scanner.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// Wait streams events until the job reaches a terminal state (calling
// onEvent for each event if non-nil), then returns the final job info.
// Because Events reconnects through dropped streams and Job retries
// through restart windows, Wait survives a server that dies and comes
// back mid-job.
func (c *Client) Wait(ctx context.Context, id string, onEvent func(Event)) (JobInfo, error) {
	err := c.Events(ctx, id, func(e Event) bool {
		if onEvent != nil {
			onEvent(e)
		}
		return !(e.Type == "status" && e.Status.Terminal())
	})
	if err != nil {
		return JobInfo{}, err
	}
	return c.Job(ctx, id)
}

// Interface checks: both result sources drive warm-start resolution.
var (
	_ ResultLookup = (*Store)(nil)
	_ ResultLookup = (*Client)(nil)
)
