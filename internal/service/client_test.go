package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// unavailableServer always answers 503, which the client treats as
// retryable — every call enters the backoff loop.
func unavailableServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"unavailable","message":"drill"}}`, http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestClientBackoffHonorsCancel: cancelling the context mid-backoff
// must end the call immediately. Before sleepContext the retry loop
// slept through a plain time.Sleep, so a caller whose deadline had
// already fired still waited out the full (here: 10s) backoff window.
func TestClientBackoffHonorsCancel(t *testing.T) {
	srv := unavailableServer(t)
	c := NewClient(srv.URL)
	c.RetryBaseDelay = 10 * time.Second
	c.RetryMaxDelay = 10 * time.Second

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Job(ctx, "j1")
	if err == nil {
		t.Fatal("call against a 503-only server succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled call still took %s — backoff ignored the context", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Logf("call ended with %v (fast, as required)", err)
	}
}

// TestClientEventsBackoffHonorsCancel: the same property for the SSE
// reconnect loop, whose fruitless-reconnect backoff also has to yield
// to the caller's context.
func TestClientEventsBackoffHonorsCancel(t *testing.T) {
	srv := unavailableServer(t)
	c := NewClient(srv.URL)
	c.RetryBaseDelay = 10 * time.Second
	c.RetryMaxDelay = 10 * time.Second

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := c.Events(ctx, "j1", func(Event) bool { return true })
	if err == nil {
		t.Fatal("events stream against a 503-only server succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled stream still took %s — reconnect backoff ignored the context", elapsed)
	}
}
