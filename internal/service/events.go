package service

import (
	"sort"
	"sync"
	"sync/atomic"

	"wsndse/internal/service/island"
)

// Event is one entry in a job's event stream. Status events mark
// lifecycle transitions; progress events carry boundary snapshots; island
// events carry the island coordinator's observations (rounds, migrations,
// crashes, failovers) for island jobs. Seq is monotonically increasing
// per job — it doubles as the SSE event id, so a reconnecting consumer
// resumes exactly where its stream died (Last-Event-ID → SubscribeFrom)
// instead of replaying or skipping.
type Event struct {
	Seq      int           `json:"seq"`
	Type     string        `json:"type"` // "status" | "progress" | "island"
	Status   Status        `json:"status,omitempty"`
	Error    string        `json:"error,omitempty"`
	Attempt  int           `json:"attempt,omitempty"` // which run attempt emitted this (1-based; 0 before the first)
	Progress *ProgressInfo `json:"progress,omitempty"`
	Island   *island.Event `json:"island,omitempty"`
}

// subBuffer is each subscriber's channel depth. Slow consumers lose
// intermediate progress events (drop-oldest), never the ordering of what
// they do see; lifecycle events survive in the replay history regardless.
const subBuffer = 256

// hub is a per-job event broadcaster. It keeps a bounded replay history —
// every lifecycle transition plus the latest progress and island events —
// so a subscriber attaching mid-run (or after completion) immediately
// learns the job's story without the service buffering thousands of
// generation snapshots.
type hub struct {
	mu           sync.Mutex
	seq          int
	status       []Event // lifecycle transitions, a handful at most
	lastProgress *Event
	lastIsland   *Event
	subs         map[chan Event]struct{}
	closed       bool
	// subGauge, when non-nil, tracks live subscriber count across every
	// hub sharing it — the wsndse_sse_subscribers metric.
	subGauge *atomic.Int64
}

func newHub(subGauge *atomic.Int64) *hub {
	return &hub{subs: make(map[chan Event]struct{}), subGauge: subGauge}
}

// publish assigns the next sequence number and fans the event out to every
// subscriber. Sends never block the publishing (search) goroutine: a full
// subscriber drops its oldest buffered event instead.
func (h *hub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	e.Seq = h.seq
	switch e.Type {
	case "progress":
		cp := e
		h.lastProgress = &cp
	case "island":
		cp := e
		h.lastIsland = &cp
	default:
		h.status = append(h.status, e)
	}
	for ch := range h.subs {
		select {
		case ch <- e:
		default:
			select { // drop-oldest; h.mu serializes all sends
			case <-ch:
			default:
			}
			select {
			case ch <- e:
			default:
			}
		}
	}
}

// close ends the stream: every subscriber's channel is closed after the
// events already buffered, and future subscribers get replay + an
// immediately closed channel.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	if h.subGauge != nil {
		h.subGauge.Add(-int64(len(h.subs)))
	}
	for ch := range h.subs {
		close(ch)
	}
	h.subs = nil
}

// subscribe returns the replay history (lifecycle events plus the latest
// progress/island snapshots, in Seq order), a live channel, and a cancel
// func. After the hub closes the channel is closed; cancel is idempotent
// and safe after close.
func (h *hub) subscribe() (replay []Event, ch <-chan Event, cancel func()) {
	return h.subscribeFrom(0)
}

// subscribeFrom is subscribe with the replay restricted to events after
// sequence number afterSeq — the resume path for SSE reconnects carrying
// Last-Event-ID.
func (h *hub) subscribeFrom(afterSeq int) (replay []Event, ch <-chan Event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = h.replayLocked()
	if afterSeq > 0 {
		kept := replay[:0]
		for _, e := range replay {
			if e.Seq > afterSeq {
				kept = append(kept, e)
			}
		}
		replay = kept
	}
	c := make(chan Event, subBuffer)
	if h.closed {
		close(c)
		return replay, c, func() {}
	}
	h.subs[c] = struct{}{}
	if h.subGauge != nil {
		h.subGauge.Add(1)
	}
	cancel = func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[c]; ok {
			delete(h.subs, c)
			close(c)
			if h.subGauge != nil {
				h.subGauge.Add(-1)
			}
		}
	}
	return replay, c, cancel
}

// replayLocked merges status history with the latest progress and island
// events by Seq.
func (h *hub) replayLocked() []Event {
	out := make([]Event, 0, len(h.status)+2)
	out = append(out, h.status...)
	if h.lastProgress != nil {
		out = append(out, *h.lastProgress)
	}
	if h.lastIsland != nil {
		out = append(out, *h.lastIsland)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
