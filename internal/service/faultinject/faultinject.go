// Package faultinject provides process-wide fault-injection hooks for the
// exploration service's supervision layer. Production code consults the
// hooks at well-defined failure points — search boundaries, checkpoint
// file writes, result-store file writes — and a chaos test arms them to
// inject the faults the supervisor must survive: a panicking evaluator,
// a full disk, a torn (partially written) checkpoint.
//
// All hooks default to disabled and the disabled fast path is a single
// atomic load, so shipping the hook points in production builds costs
// nothing measurable (BenchmarkSupervisedJobOverhead pins this). Hooks
// are global to the process: tests that arm them must not run in
// parallel with each other and should defer Reset.
//
// The package also ships FlakyProxy, a byte-counting TCP proxy that
// kills connections mid-stream — the transport-level fault that drives
// the client's SSE auto-reconnect tests.
package faultinject

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// armed is the fast-path gate: when false (the default), every hook
// point returns immediately after one atomic load.
var armed atomic.Bool

var (
	mu             sync.Mutex
	boundaryHook   func(jobID, algorithm string, step int)
	checkpointHook func(path string, data []byte) ([]byte, error)
	storeHook      func(path string) error
	islandHook     func(jobID string, island, executor, step int)
	migrationHook  func(jobID string, round, from, to int) error
)

// InjectedPanic is the value injected boundary panics carry, so chaos
// tests (and curious humans reading a failed job's stack) can tell an
// injected fault from a genuine bug.
type InjectedPanic struct {
	JobID string
	Step  int
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic in job %s at step %d", p.JobID, p.Step)
}

// InjectedIslandPanic is the value injected island-boundary panics
// carry: which island (and which executor was running it) crashed at
// which search step.
type InjectedIslandPanic struct {
	JobID    string
	Island   int
	Executor int
	Step     int
}

func (p InjectedIslandPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic in job %s island %d (executor %d) at step %d",
		p.JobID, p.Island, p.Executor, p.Step)
}

// rearm recomputes the fast-path gate. Caller holds mu.
func rearm() {
	armed.Store(boundaryHook != nil || checkpointHook != nil || storeHook != nil ||
		islandHook != nil || migrationHook != nil)
}

// Reset disarms every hook. Tests defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	boundaryHook, checkpointHook, storeHook = nil, nil, nil
	islandHook, migrationHook = nil, nil
	rearm()
}

// SetBoundaryHook installs fn at the search-boundary point: the service
// supervisor calls Boundary from its progress sink — on the search
// goroutine, between generations/segments — and fn may panic to simulate
// an evaluator crash at an exact, reproducible step. nil disarms.
func SetBoundaryHook(fn func(jobID, algorithm string, step int)) {
	mu.Lock()
	defer mu.Unlock()
	boundaryHook = fn
	rearm()
}

// SetCheckpointWriteHook installs fn at the checkpoint-file-write point:
// it receives the bytes about to be written and returns the bytes that
// actually reach the file — return a prefix to simulate a torn write
// (process killed mid-write), or an error to simulate a full disk. nil
// disarms.
func SetCheckpointWriteHook(fn func(path string, data []byte) ([]byte, error)) {
	mu.Lock()
	defer mu.Unlock()
	checkpointHook = fn
	rearm()
}

// SetStoreWriteHook installs fn at the result-store file-write point; a
// non-nil error fails the write. nil disarms.
func SetStoreWriteHook(fn func(path string) error) {
	mu.Lock()
	defer mu.Unlock()
	storeHook = fn
	rearm()
}

// PanicOnceAtStep arms the boundary hook to panic (with an InjectedPanic
// value) the first `times` times any job reaches boundary `step`.
func PanicOnceAtStep(step, times int) {
	var remaining atomic.Int64
	remaining.Store(int64(times))
	SetBoundaryHook(func(jobID, algorithm string, s int) {
		if s == step && remaining.Add(-1) >= 0 {
			panic(InjectedPanic{JobID: jobID, Step: s})
		}
	})
}

// SetIslandHook installs fn at the island search-boundary point: the
// island runner calls IslandBoundary between generations/segments on the
// island's own goroutine (or inside the worker process), and fn may
// panic to simulate an island crash at an exact, reproducible step. nil
// disarms.
func SetIslandHook(fn func(jobID string, island, executor, step int)) {
	mu.Lock()
	defer mu.Unlock()
	islandHook = fn
	rearm()
}

// SetMigrationHook installs fn at the migration-transfer point: the
// coordinator calls Migration once per ring edge per migration boundary,
// and a non-nil error drops that transfer — the coordinator must retry
// it, never skip it, or determinism is lost. nil disarms.
func SetMigrationHook(fn func(jobID string, round, from, to int) error) {
	mu.Lock()
	defer mu.Unlock()
	migrationHook = fn
	rearm()
}

// PanicOnIslandAtStep arms the island hook to panic (with an
// InjectedIslandPanic value) the first `times` times island `island`
// reaches search step `step`.
func PanicOnIslandAtStep(island, step, times int) {
	var remaining atomic.Int64
	remaining.Store(int64(times))
	SetIslandHook(func(jobID string, isl, executor, s int) {
		if isl == island && s == step && remaining.Add(-1) >= 0 {
			panic(InjectedIslandPanic{JobID: jobID, Island: isl, Executor: executor, Step: s})
		}
	})
}

// PanicOnExecutorAtStep arms the island hook to panic every time any
// island running on executor `executor` reaches step `step`, up to
// `times` total panics. With times > the executor's restart budget this
// simulates a persistently broken worker: the coordinator must declare
// the executor lost and redistribute its islands.
func PanicOnExecutorAtStep(executor, step, times int) {
	var remaining atomic.Int64
	remaining.Store(int64(times))
	SetIslandHook(func(jobID string, isl, exec, s int) {
		if exec == executor && s == step && remaining.Add(-1) >= 0 {
			panic(InjectedIslandPanic{JobID: jobID, Island: isl, Executor: exec, Step: s})
		}
	})
}

// DropMigrations arms the migration hook to fail the first `times`
// transfer attempts — the lossy-exchange fault. Retried attempts count
// again, so times=3 with a retrying coordinator means the fourth attempt
// succeeds.
func DropMigrations(times int) {
	var remaining atomic.Int64
	remaining.Store(int64(times))
	SetMigrationHook(func(jobID string, round, from, to int) error {
		if remaining.Add(-1) >= 0 {
			return fmt.Errorf("faultinject: dropped migration %d->%d at round %d", from, to, round)
		}
		return nil
	})
}

// IslandBoundary is the hook point island runners call at every search
// boundary. Disabled: one atomic load.
func IslandBoundary(jobID string, island, executor, step int) {
	if !armed.Load() {
		return
	}
	mu.Lock()
	fn := islandHook
	mu.Unlock()
	if fn != nil {
		fn(jobID, island, executor, step)
	}
}

// Migration is the hook point for one migrant transfer on the ring; a
// non-nil error means the transfer was dropped and must be retried.
func Migration(jobID string, round, from, to int) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	fn := migrationHook
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(jobID, round, from, to)
}

// Boundary is the hook point the supervisor's progress sink calls at
// every search boundary. Disabled: one atomic load.
func Boundary(jobID, algorithm string, step int) {
	if !armed.Load() {
		return
	}
	mu.Lock()
	fn := boundaryHook
	mu.Unlock()
	if fn != nil {
		fn(jobID, algorithm, step)
	}
}

// CheckpointWrite is the hook point for checkpoint file writes: it maps
// the intended bytes to the bytes that reach disk, or fails the write.
func CheckpointWrite(path string, data []byte) ([]byte, error) {
	if !armed.Load() {
		return data, nil
	}
	mu.Lock()
	fn := checkpointHook
	mu.Unlock()
	if fn == nil {
		return data, nil
	}
	return fn(path, data)
}

// StoreWrite is the hook point for result-store file writes.
func StoreWrite(path string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	fn := storeHook
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(path)
}

// FlakyProxy is a TCP proxy that forcibly closes every proxied
// connection after KillAfter response bytes — the "connection died
// mid-SSE-stream" fault. Each reconnect gets a fresh allowance, so a
// client that resumes via Last-Event-ID makes forward progress while a
// client that restarts from scratch livelocks.
type FlakyProxy struct {
	target    string
	killAfter int64
	ln        net.Listener
	kills     atomic.Int64
	conns     atomic.Int64
	wg        sync.WaitGroup
	closed    atomic.Bool

	liveMu sync.Mutex
	live   map[net.Conn]struct{}
}

// NewFlakyProxy starts a proxy in front of target (a host:port). Every
// connection's server→client stream is cut after killAfter bytes;
// killAfter <= 0 never kills (a transparent proxy).
func NewFlakyProxy(target string, killAfter int64) (*FlakyProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &FlakyProxy{target: target, killAfter: killAfter, ln: ln, live: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *FlakyProxy) Addr() string { return p.ln.Addr().String() }

// Kills reports how many connections the proxy has cut so far.
func (p *FlakyProxy) Kills() int { return int(p.kills.Load()) }

// Conns reports how many connections the proxy has accepted.
func (p *FlakyProxy) Conns() int { return int(p.conns.Load()) }

// Close stops accepting, force-closes every live relay (an idle
// keep-alive connection would otherwise pin its relay goroutine until
// the client's idle timeout), and waits for the relays to drain.
func (p *FlakyProxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.ln.Close()
	p.liveMu.Lock()
	for conn := range p.live {
		conn.Close()
	}
	p.liveMu.Unlock()
	p.wg.Wait()
}

// track registers conn while open; the returned func deregisters it.
func (p *FlakyProxy) track(conn net.Conn) func() {
	p.liveMu.Lock()
	p.live[conn] = struct{}{}
	p.liveMu.Unlock()
	return func() {
		p.liveMu.Lock()
		delete(p.live, conn)
		p.liveMu.Unlock()
	}
}

func (p *FlakyProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.conns.Add(1)
		p.wg.Add(1)
		go p.relay(conn)
	}
}

// relay pumps bytes both ways, cutting the server→client direction after
// the byte allowance. Closing both conns unblocks the opposite copier.
func (p *FlakyProxy) relay(client net.Conn) {
	defer p.wg.Done()
	defer p.track(client)()
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	defer p.track(server)()
	// Both copiers are wg-tracked so Close() reaps them: an untracked
	// copier blocked in io.Copy on an idle keep-alive connection would
	// outlive Close and leak past the proxy's lifetime.
	done := make(chan struct{}, 2)
	p.wg.Add(1)
	go func() { // client → server (requests)
		defer p.wg.Done()
		io.Copy(server, client)
		done <- struct{}{}
	}()
	p.wg.Add(1)
	go func() { // server → client (responses), byte-bounded
		defer p.wg.Done()
		if p.killAfter > 0 {
			n, _ := io.CopyN(client, server, p.killAfter)
			if n == p.killAfter {
				p.kills.Add(1)
			}
		} else {
			io.Copy(client, server)
		}
		done <- struct{}{}
	}()
	<-done
	client.Close()
	server.Close()
	<-done
}
