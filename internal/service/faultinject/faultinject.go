// Package faultinject provides process-wide fault-injection hooks for the
// exploration service's supervision layer. Production code consults the
// hooks at well-defined failure points — search boundaries, checkpoint
// file writes, result-store file writes — and a chaos test arms them to
// inject the faults the supervisor must survive: a panicking evaluator,
// a full disk, a torn (partially written) checkpoint.
//
// All hooks default to disabled and the disabled fast path is a single
// atomic load, so shipping the hook points in production builds costs
// nothing measurable (BenchmarkSupervisedJobOverhead pins this). Hooks
// are global to the process: tests that arm them must not run in
// parallel with each other and should defer Reset.
//
// The package also ships FlakyProxy, a byte-counting TCP proxy that
// kills connections mid-stream — the transport-level fault that drives
// the client's SSE auto-reconnect tests.
package faultinject

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// armed is the fast-path gate: when false (the default), every hook
// point returns immediately after one atomic load.
var armed atomic.Bool

var (
	mu             sync.Mutex
	boundaryHook   func(jobID, algorithm string, step int)
	checkpointHook func(path string, data []byte) ([]byte, error)
	storeHook      func(path string) error
)

// InjectedPanic is the value injected boundary panics carry, so chaos
// tests (and curious humans reading a failed job's stack) can tell an
// injected fault from a genuine bug.
type InjectedPanic struct {
	JobID string
	Step  int
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic in job %s at step %d", p.JobID, p.Step)
}

// rearm recomputes the fast-path gate. Caller holds mu.
func rearm() {
	armed.Store(boundaryHook != nil || checkpointHook != nil || storeHook != nil)
}

// Reset disarms every hook. Tests defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	boundaryHook, checkpointHook, storeHook = nil, nil, nil
	rearm()
}

// SetBoundaryHook installs fn at the search-boundary point: the service
// supervisor calls Boundary from its progress sink — on the search
// goroutine, between generations/segments — and fn may panic to simulate
// an evaluator crash at an exact, reproducible step. nil disarms.
func SetBoundaryHook(fn func(jobID, algorithm string, step int)) {
	mu.Lock()
	defer mu.Unlock()
	boundaryHook = fn
	rearm()
}

// SetCheckpointWriteHook installs fn at the checkpoint-file-write point:
// it receives the bytes about to be written and returns the bytes that
// actually reach the file — return a prefix to simulate a torn write
// (process killed mid-write), or an error to simulate a full disk. nil
// disarms.
func SetCheckpointWriteHook(fn func(path string, data []byte) ([]byte, error)) {
	mu.Lock()
	defer mu.Unlock()
	checkpointHook = fn
	rearm()
}

// SetStoreWriteHook installs fn at the result-store file-write point; a
// non-nil error fails the write. nil disarms.
func SetStoreWriteHook(fn func(path string) error) {
	mu.Lock()
	defer mu.Unlock()
	storeHook = fn
	rearm()
}

// PanicOnceAtStep arms the boundary hook to panic (with an InjectedPanic
// value) the first `times` times any job reaches boundary `step`.
func PanicOnceAtStep(step, times int) {
	var remaining atomic.Int64
	remaining.Store(int64(times))
	SetBoundaryHook(func(jobID, algorithm string, s int) {
		if s == step && remaining.Add(-1) >= 0 {
			panic(InjectedPanic{JobID: jobID, Step: s})
		}
	})
}

// Boundary is the hook point the supervisor's progress sink calls at
// every search boundary. Disabled: one atomic load.
func Boundary(jobID, algorithm string, step int) {
	if !armed.Load() {
		return
	}
	mu.Lock()
	fn := boundaryHook
	mu.Unlock()
	if fn != nil {
		fn(jobID, algorithm, step)
	}
}

// CheckpointWrite is the hook point for checkpoint file writes: it maps
// the intended bytes to the bytes that reach disk, or fails the write.
func CheckpointWrite(path string, data []byte) ([]byte, error) {
	if !armed.Load() {
		return data, nil
	}
	mu.Lock()
	fn := checkpointHook
	mu.Unlock()
	if fn == nil {
		return data, nil
	}
	return fn(path, data)
}

// StoreWrite is the hook point for result-store file writes.
func StoreWrite(path string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	fn := storeHook
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(path)
}

// FlakyProxy is a TCP proxy that forcibly closes every proxied
// connection after KillAfter response bytes — the "connection died
// mid-SSE-stream" fault. Each reconnect gets a fresh allowance, so a
// client that resumes via Last-Event-ID makes forward progress while a
// client that restarts from scratch livelocks.
type FlakyProxy struct {
	target    string
	killAfter int64
	ln        net.Listener
	kills     atomic.Int64
	conns     atomic.Int64
	wg        sync.WaitGroup
	closed    atomic.Bool

	liveMu sync.Mutex
	live   map[net.Conn]struct{}
}

// NewFlakyProxy starts a proxy in front of target (a host:port). Every
// connection's server→client stream is cut after killAfter bytes;
// killAfter <= 0 never kills (a transparent proxy).
func NewFlakyProxy(target string, killAfter int64) (*FlakyProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &FlakyProxy{target: target, killAfter: killAfter, ln: ln, live: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *FlakyProxy) Addr() string { return p.ln.Addr().String() }

// Kills reports how many connections the proxy has cut so far.
func (p *FlakyProxy) Kills() int { return int(p.kills.Load()) }

// Conns reports how many connections the proxy has accepted.
func (p *FlakyProxy) Conns() int { return int(p.conns.Load()) }

// Close stops accepting, force-closes every live relay (an idle
// keep-alive connection would otherwise pin its relay goroutine until
// the client's idle timeout), and waits for the relays to drain.
func (p *FlakyProxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.ln.Close()
	p.liveMu.Lock()
	for conn := range p.live {
		conn.Close()
	}
	p.liveMu.Unlock()
	p.wg.Wait()
}

// track registers conn while open; the returned func deregisters it.
func (p *FlakyProxy) track(conn net.Conn) func() {
	p.liveMu.Lock()
	p.live[conn] = struct{}{}
	p.liveMu.Unlock()
	return func() {
		p.liveMu.Lock()
		delete(p.live, conn)
		p.liveMu.Unlock()
	}
}

func (p *FlakyProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.conns.Add(1)
		p.wg.Add(1)
		go p.relay(conn)
	}
}

// relay pumps bytes both ways, cutting the server→client direction after
// the byte allowance. Closing both conns unblocks the opposite copier.
func (p *FlakyProxy) relay(client net.Conn) {
	defer p.wg.Done()
	defer p.track(client)()
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	defer p.track(server)()
	done := make(chan struct{}, 2)
	go func() { // client → server (requests)
		io.Copy(server, client)
		done <- struct{}{}
	}()
	go func() { // server → client (responses), byte-bounded
		if p.killAfter > 0 {
			n, _ := io.CopyN(client, server, p.killAfter)
			if n == p.killAfter {
				p.kills.Add(1)
			}
		} else {
			io.Copy(client, server)
		}
		done <- struct{}{}
	}()
	<-done
	client.Close()
	server.Close()
	<-done
}
