package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"
)

// proxyGoroutines counts live goroutines currently executing FlakyProxy
// code, by scanning a full-process stack dump — goleak-style accounting
// in plain stdlib.
func proxyGoroutines() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return strings.Count(string(buf[:n]), "faultinject.(*FlakyProxy)")
}

// TestFlakyProxyCloseReapsGoroutines is the leak regression test: after
// Close returns, no relay or copier goroutine may still be running —
// including the per-connection io.Copy goroutines, which used to be
// untracked and could outlive Close on idle keep-alive connections.
func TestFlakyProxyCloseReapsGoroutines(t *testing.T) {
	before := proxyGoroutines()

	// A backend that accepts and then sits idle, so the proxied
	// connection is parked in io.Copy with no traffic — the exact state
	// that leaked.
	backend, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	go func() {
		for {
			conn, err := backend.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(io.Discard, conn) }()
		}
	}()

	p, err := NewFlakyProxy(backend.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var conns []net.Conn
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, conn)
		fmt.Fprintf(conn, "hello %d\n", i)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// Wait until the relays are actually up before closing.
	deadline := time.Now().Add(2 * time.Second)
	for p.Conns() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.Conns() < 4 {
		t.Fatalf("proxy accepted %d conns, want 4", p.Conns())
	}

	p.Close()

	// Close must have reaped everything; allow a brief grace for the
	// runtime to retire exiting goroutines from the stack dump.
	for time.Now().Before(deadline) {
		if proxyGoroutines() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("after Close: %d FlakyProxy goroutines still running (baseline %d)",
		proxyGoroutines(), before)
}

func TestIslandHookPanicsOnTarget(t *testing.T) {
	defer Reset()
	PanicOnIslandAtStep(2, 3, 1)

	IslandBoundary("j1", 1, 0, 3) // wrong island: no panic
	IslandBoundary("j1", 2, 0, 2) // wrong step: no panic

	caught := func() (p any) {
		defer func() { p = recover() }()
		IslandBoundary("j1", 2, 5, 3)
		return nil
	}()
	ip, ok := caught.(InjectedIslandPanic)
	if !ok {
		t.Fatalf("recovered %v, want InjectedIslandPanic", caught)
	}
	if ip.Island != 2 || ip.Step != 3 || ip.Executor != 5 || ip.JobID != "j1" {
		t.Fatalf("panic payload %+v", ip)
	}
	IslandBoundary("j1", 2, 5, 3) // budget spent: no panic
}

func TestPanicOnExecutorAtStep(t *testing.T) {
	defer Reset()
	PanicOnExecutorAtStep(1, 4, 2)
	hits := 0
	for _, isl := range []int{0, 3, 6} { // different islands, same executor
		func() {
			defer func() {
				if recover() != nil {
					hits++
				}
			}()
			IslandBoundary("j1", isl, 1, 4)
		}()
	}
	if hits != 2 {
		t.Fatalf("executor hook fired %d times, want 2", hits)
	}
}

func TestDropMigrations(t *testing.T) {
	defer Reset()
	DropMigrations(2)
	var errs int
	for i := 0; i < 4; i++ {
		if err := Migration("j1", 1, 0, 1); err != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("dropped %d transfers, want 2", errs)
	}
}

func TestResetDisarmsIslandHooks(t *testing.T) {
	PanicOnIslandAtStep(0, 1, 100)
	DropMigrations(100)
	Reset()
	IslandBoundary("j1", 0, 0, 1) // must not panic
	if err := Migration("j1", 0, 0, 1); err != nil {
		t.Fatalf("Migration after Reset: %v", err)
	}
	if armed.Load() {
		t.Fatal("fast-path gate still armed after Reset")
	}
}

func TestMigrationHookSeesRingEdge(t *testing.T) {
	defer Reset()
	type edge struct{ round, from, to int }
	var got []edge
	SetMigrationHook(func(jobID string, round, from, to int) error {
		got = append(got, edge{round, from, to})
		return nil
	})
	Migration("j1", 2, 3, 0)
	if len(got) != 1 || got[0] != (edge{2, 3, 0}) {
		t.Fatalf("hook saw %v", got)
	}
	if err := Migration("j1", 2, 3, 0); err != nil {
		t.Fatal(errors.Unwrap(err))
	}
}
