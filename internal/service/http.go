package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"wsndse/internal/casestudy"
	"wsndse/internal/scenario"
)

// Machine-readable error codes of the v1 API, carried in every error
// envelope ({"error": {"code": "...", "message": "..."}}) so clients
// branch on the code instead of parsing prose. Client surfaces them as
// *APIError.
const (
	// CodeInvalidSpec: the submitted job spec failed validation (unknown
	// scenario/algorithm, out-of-domain config, unknown JSON field, ...).
	CodeInvalidSpec = "invalid_spec"
	// CodeInvalidArgument: a malformed query parameter or path segment
	// (non-numeric limit, negative offset, non-numeric result version).
	CodeInvalidArgument = "invalid_argument"
	// CodeNotFound: no such job, result version, or resource.
	CodeNotFound = "not_found"
	// CodeConflict: the resource exists but is not in a state that can
	// serve the request (front requested before the job finished).
	CodeConflict = "conflict"
	// CodeQueueFull: the job queue is at its bound; retry later.
	CodeQueueFull = "queue_full"
	// CodeBodyTooLarge: the request body exceeded MaxBodyBytes.
	CodeBodyTooLarge = "body_too_large"
	// CodeUnavailable: the manager is draining (graceful shutdown) or
	// already closed.
	CodeUnavailable = "unavailable"
	// CodeInternal: unexpected server-side failure.
	CodeInternal = "internal"
)

// Pagination bounds of the list endpoints (/v1/jobs, /v1/scenarios,
// /v1/results): an omitted limit serves DefaultPageLimit items, and a
// requested limit is clamped to MaxPageLimit — a list endpoint must not
// be a memory-amplification vector no matter what the client asks for.
const (
	DefaultPageLimit = 100
	MaxPageLimit     = 500
)

// MaxBodyBytes caps request bodies (POST /v1/jobs). Specs are small —
// the one legitimately large field is a resume snapshot, and even a
// full-archive MOSA snapshot is well under a megabyte — so 8 MiB leaves
// generous headroom while keeping a hostile client from buffering
// gigabytes into the decoder. Larger bodies get 413 body_too_large.
const MaxBodyBytes = 8 << 20

// Page is the list envelope shared by every v1 collection endpoint: the
// requested window plus the total match count, so clients can page
// without a separate count call.
type Page[T any] struct {
	Items  []T `json:"items"`
	Total  int `json:"total"`
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
}

// pageOf windows items by limit/offset into the envelope.
func pageOf[T any](items []T, limit, offset int) Page[T] {
	p := Page[T]{Items: []T{}, Total: len(items), Limit: limit, Offset: offset}
	if offset < len(items) {
		end := offset + limit
		if end > len(items) {
			end = len(items)
		}
		p.Items = items[offset:end]
	}
	return p
}

// parsePageParams reads ?limit=&offset= with the documented defaulting
// and clamping. Malformed or negative values are invalid_argument — a
// client that mistypes pagination should find out, not silently get
// page one.
func parsePageParams(r *http.Request) (limit, offset int, err error) {
	limit = DefaultPageLimit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit < 1 {
			return 0, 0, fmt.Errorf("service: limit %q is not a positive integer", raw)
		}
		if limit > MaxPageLimit {
			limit = MaxPageLimit
		}
	}
	if raw := r.URL.Query().Get("offset"); raw != "" {
		offset, err = strconv.Atoi(raw)
		if err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("service: offset %q is not a non-negative integer", raw)
		}
	}
	return limit, offset, nil
}

// ScenarioInfo is one row of GET /v1/scenarios: enough for a client to
// pick a workload and size its exploration budget.
type ScenarioInfo struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Stress      string  `json:"stress"`
	Nodes       int     `json:"nodes"`
	Genes       int     `json:"genes"`
	SpaceSize   float64 `json:"space_size"`
	Objectives  int     `json:"objectives"`
}

// NewHandler exposes the Manager as a JSON HTTP API:
//
//	POST   /v1/jobs                  submit a Spec             → 201 JobInfo
//	GET    /v1/jobs                  list jobs                 → 200 Page[JobInfo]      (?limit=&offset=)
//	GET    /v1/jobs/{id}             job state                 → 200 JobInfo
//	DELETE /v1/jobs/{id}             cancel (cooperative)      → 202 JobInfo
//	GET    /v1/jobs/{id}/front       Pareto front              → 200 FrontResponse (409 until available)
//	GET    /v1/jobs/{id}/checkpoint  latest dse.Snapshot       → 200 (404 if none)
//	GET    /v1/jobs/{id}/events      live progress stream      → 200 text/event-stream (SSE)
//	GET    /v1/jobs/{id}/stats       recent telemetry window   → 200 StatsResponse       (?n=)
//	GET    /v1/scenarios             registered workloads      → 200 Page[ScenarioInfo] (?limit=&offset=)
//	GET    /v1/results               result store query        → 200 Page[StoredResult]
//	                                 (?key=&fingerprint=&scenario=&family=&algorithm=&limit=&offset=)
//	GET    /v1/results/{version}     one stored result         → 200 StoredResult ({version} is "17" or "v17")
//	GET    /healthz                  liveness                  → 200
//	GET    /metrics                  Prometheus text metrics   → 200 text/plain
//
// List endpoints return the Page envelope {"items", "total", "limit",
// "offset"}; results come back newest-first. Errors are
// {"error": {"code": "...", "message": "..."}} with the conventional
// status codes: 400 invalid_spec/invalid_argument, 404 not_found,
// 409 conflict, 413 body_too_large, 429 queue_full, 503 unavailable,
// 500 internal.
//
// The events stream honors the SSE Last-Event-ID request header: each
// event's id is its per-job sequence number, and a reconnect carrying the
// last id seen resumes after it instead of replaying history. Request
// bodies are capped at MaxBodyBytes.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
		dec := json.NewDecoder(body)
		// Unknown fields fail fast: a typo like "algoritm" must be a 400,
		// not a silently defaulted (and differently explored) job.
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
					fmt.Errorf("service: request body exceeds %d bytes", tooBig.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, CodeInvalidSpec, fmt.Errorf("decoding spec: %w", err))
			return
		}
		info, err := m.Submit(spec)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				writeError(w, http.StatusTooManyRequests, CodeQueueFull, err)
			case errors.Is(err, ErrClosed), errors.Is(err, ErrDraining):
				writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err)
			default:
				writeError(w, http.StatusBadRequest, CodeInvalidSpec, err)
			}
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		limit, offset, err := parsePageParams(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, err)
			return
		}
		writeJSON(w, http.StatusOK, pageOf(m.Jobs(), limit, offset))
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, CodeNotFound, ErrNotFound)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := m.Cancel(id); err != nil {
			writeError(w, http.StatusNotFound, CodeNotFound, err)
			return
		}
		info, _ := m.Get(id)
		writeJSON(w, http.StatusAccepted, info)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/front", func(w http.ResponseWriter, r *http.Request) {
		front, err := m.Front(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, CodeNotFound, err)
		case errors.Is(err, ErrNotFinished):
			writeError(w, http.StatusConflict, CodeConflict, err)
		case err != nil:
			writeError(w, http.StatusInternalServerError, CodeInternal, err)
		default:
			writeJSON(w, http.StatusOK, front)
		}
	})
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		snap, err := m.Checkpoint(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, CodeNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(m, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/stats", func(w http.ResponseWriter, r *http.Request) {
		n := 0 // whole retained window
		if raw := r.URL.Query().Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 1 {
				writeError(w, http.StatusBadRequest, CodeInvalidArgument,
					fmt.Errorf("service: n %q is not a positive integer", raw))
				return
			}
			n = v
		}
		resp, err := m.JobStats(r.PathValue("id"), n)
		if err != nil {
			writeError(w, http.StatusNotFound, CodeNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		limit, offset, err := parsePageParams(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, err)
			return
		}
		writeJSON(w, http.StatusOK, pageOf(listScenarios(), limit, offset))
	})
	mux.HandleFunc("GET /v1/results", func(w http.ResponseWriter, r *http.Request) {
		limit, offset, err := parsePageParams(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, err)
			return
		}
		qp := r.URL.Query()
		items, total := m.Store().Query(ResultQuery{
			Key:         qp.Get("key"),
			Fingerprint: qp.Get("fingerprint"),
			Scenario:    qp.Get("scenario"),
			Family:      qp.Get("family"),
			Algorithm:   qp.Get("algorithm"),
			Limit:       limit,
			Offset:      offset,
		})
		if items == nil {
			items = []StoredResult{}
		}
		writeJSON(w, http.StatusOK, Page[StoredResult]{Items: items, Total: total, Limit: limit, Offset: offset})
	})
	mux.HandleFunc("GET /v1/results/{version}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := warmStartVersion(r.PathValue("version"))
		if !ok {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument,
				fmt.Errorf("service: result version %q is not a positive integer", r.PathValue("version")))
			return
		}
		res, ok := m.Store().Get(v)
		if !ok {
			writeError(w, http.StatusNotFound, CodeNotFound,
				fmt.Errorf("service: no result at version %d (never stored, or evicted)", v))
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteMetrics(w)
	})
	return mux
}

// serveEvents streams the job's event feed as server-sent events: replayed
// history first, then live events until the job terminates or the client
// disconnects. Each event is `id: <seq>\nevent: <type>\ndata: <json>`; the
// id line makes the Seq the SSE event id, so a reconnecting client's
// Last-Event-ID header resumes the stream after the last event it saw.
func serveEvents(m *Manager, w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal, fmt.Errorf("service: response writer cannot stream"))
		return
	}
	afterSeq := 0
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument,
				fmt.Errorf("service: Last-Event-ID %q is not a non-negative integer", raw))
			return
		}
		afterSeq = n
	}
	replay, ch, cancel, err := m.SubscribeFrom(r.PathValue("id"), afterSeq)
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	defer cancel()
	// A long-lived stream must outlive the server's WriteTimeout (which
	// exists to bound ordinary request handlers): clear the connection's
	// write deadline for this response only. Failure is fine — a server
	// without write timeouts has nothing to clear.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	write := func(e Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for _, e := range replay {
		if !write(e) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-ch:
			if !ok {
				return // job terminated; the terminal status event preceded the close
			}
			if !write(e) {
				return
			}
		}
	}
}

// listScenarios builds the scenario listing from the registry, compiling
// each problem once for its space size.
func listScenarios() []ScenarioInfo {
	cal := casestudy.DefaultCalibration()
	scs := scenario.List()
	out := make([]ScenarioInfo, 0, len(scs))
	for _, sc := range scs {
		info := ScenarioInfo{
			Name:        sc.Name,
			Description: sc.Description,
			Stress:      sc.Stress,
			Nodes:       len(sc.Nodes),
			Objectives:  3,
		}
		if p, err := scenario.NewProblem(sc, cal); err == nil {
			info.Genes = len(p.Space().Params)
			info.SpaceSize = p.Space().Size()
		}
		out = append(out, info)
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorEnvelope is the wire form of every v1 error response.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeError emits the structured error envelope. This is the v1 wire
// revision that replaced the flat {"error": "..."} shape: the code is
// the stable contract, the message is for humans.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: err.Error()}})
}
