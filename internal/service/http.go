package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"wsndse/internal/casestudy"
	"wsndse/internal/scenario"
)

// ScenarioInfo is one row of GET /v1/scenarios: enough for a client to
// pick a workload and size its exploration budget.
type ScenarioInfo struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Stress      string  `json:"stress"`
	Nodes       int     `json:"nodes"`
	Genes       int     `json:"genes"`
	SpaceSize   float64 `json:"space_size"`
	Objectives  int     `json:"objectives"`
}

// NewHandler exposes the Manager as a JSON HTTP API:
//
//	POST   /v1/jobs               submit a Spec            → 201 JobInfo
//	GET    /v1/jobs               list jobs                → 200 []JobInfo
//	GET    /v1/jobs/{id}          job state                → 200 JobInfo
//	DELETE /v1/jobs/{id}          cancel (cooperative)     → 202 JobInfo
//	GET    /v1/jobs/{id}/front    Pareto front             → 200 FrontResponse (409 until available)
//	GET    /v1/jobs/{id}/checkpoint  latest dse.Snapshot   → 200 (404 if none)
//	GET    /v1/jobs/{id}/events   live progress stream     → 200 text/event-stream (SSE)
//	GET    /v1/scenarios          registered workloads     → 200 []ScenarioInfo
//	GET    /v1/results            result store query       → 200 []StoredResult (?scenario=&algorithm=)
//	GET    /healthz               liveness                 → 200
//
// Errors are {"error": "..."} with conventional status codes (400 bad
// spec, 404 unknown id, 409 front not ready, 429 queue full).
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
			return
		}
		info, err := m.Submit(spec)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				writeError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrClosed):
				writeError(w, http.StatusServiceUnavailable, err)
			default:
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, ErrNotFound)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := m.Cancel(id); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		info, _ := m.Get(id)
		writeJSON(w, http.StatusAccepted, info)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/front", func(w http.ResponseWriter, r *http.Request) {
		front, err := m.Front(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNotFinished):
			writeError(w, http.StatusConflict, err)
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
		default:
			writeJSON(w, http.StatusOK, front)
		}
	})
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		snap, err := m.Checkpoint(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(m, w, r)
	})
	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, listScenarios())
	})
	mux.HandleFunc("GET /v1/results", func(w http.ResponseWriter, r *http.Request) {
		results := m.Store().Query(r.URL.Query().Get("scenario"), r.URL.Query().Get("algorithm"))
		if results == nil {
			results = []StoredResult{}
		}
		writeJSON(w, http.StatusOK, results)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// serveEvents streams the job's event feed as server-sent events: replayed
// history first, then live events until the job terminates or the client
// disconnects. Each event is `id: <seq>\nevent: <type>\ndata: <json>`.
func serveEvents(m *Manager, w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("service: response writer cannot stream"))
		return
	}
	replay, ch, cancel, err := m.Subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	write := func(e Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for _, e := range replay {
		if !write(e) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-ch:
			if !ok {
				return // job terminated; the terminal status event preceded the close
			}
			if !write(e) {
				return
			}
		}
	}
}

// listScenarios builds the scenario listing from the registry, compiling
// each problem once for its space size.
func listScenarios() []ScenarioInfo {
	cal := casestudy.DefaultCalibration()
	scs := scenario.List()
	out := make([]ScenarioInfo, 0, len(scs))
	for _, sc := range scs {
		info := ScenarioInfo{
			Name:        sc.Name,
			Description: sc.Description,
			Stress:      sc.Stress,
			Nodes:       len(sc.Nodes),
			Objectives:  3,
		}
		if p, err := scenario.NewProblem(sc, cal); err == nil {
			info.Genes = len(p.Space().Params)
			info.SpaceSize = p.Space().Size()
		}
		out = append(out, info)
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
