package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"wsndse/internal/dse"
	"wsndse/internal/scenario"
)

// newTestServer boots a Manager behind an httptest server and returns a
// Client against it.
func newTestServer(t *testing.T, cfg Config) (*Client, *Manager) {
	t.Helper()
	m := newTestManager(t, cfg)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return NewClient(srv.URL), m
}

func TestHTTPSubmitWaitFront(t *testing.T) {
	c, _ := newTestServer(t, Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	scenarios, err := c.Scenarios(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != len(scenario.Names()) {
		t.Fatalf("%d scenarios over HTTP, registry has %d", len(scenarios), len(scenario.Names()))
	}
	for _, si := range scenarios {
		if si.Name == "" || si.SpaceSize <= 0 || si.Objectives != 3 {
			t.Fatalf("scenario info %+v", si)
		}
	}

	info, err := c.Submit(ctx, smallNSGA2("ecg-ward", 7))
	if err != nil {
		t.Fatal(err)
	}
	var progressEvents, statusEvents int
	final, err := c.Wait(ctx, info.ID, func(e Event) {
		switch e.Type {
		case "progress":
			progressEvents++
		case "status":
			statusEvents++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("job %s: %s", final.Status, final.Error)
	}
	if progressEvents == 0 || statusEvents == 0 {
		t.Fatalf("SSE delivered %d progress / %d status events", progressEvents, statusEvents)
	}
	front, err := c.Front(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Front) == 0 || front.Status != StatusDone {
		t.Fatalf("front %+v", front)
	}

	// The versioned store serves the same front, both via the query
	// endpoint and the direct version endpoint.
	results, err := c.ResultsPage(ctx, ResultQuery{Scenario: "ecg-ward", Algorithm: AlgoNSGA2})
	if err != nil {
		t.Fatal(err)
	}
	if results.Total != 1 || len(results.Items) != 1 || !reflect.DeepEqual(results.Items[0].Front, front.Front) {
		t.Fatalf("stored results %+v", results)
	}
	if results.Items[0].Version != final.ResultVersion {
		t.Fatalf("store version %d, job says %d", results.Items[0].Version, final.ResultVersion)
	}
	byVersion, err := c.Result(ctx, final.ResultVersion)
	if err != nil {
		t.Fatal(err)
	}
	if byVersion.Key == "" || byVersion.Fingerprint == "" || !reflect.DeepEqual(byVersion.Front, front.Front) {
		t.Fatalf("result by version %+v", byVersion)
	}

	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != info.ID {
		t.Fatalf("jobs %+v", jobs)
	}
}

// TestHTTPEndToEndAllScenariosBothAlgorithms is the acceptance sweep:
// submit → stream progress via SSE → fetch front over HTTP for every
// registered scenario × {nsga2, mosa}, twice each at different service
// concurrency, asserting bit-identical fronts.
func TestHTTPEndToEndAllScenariosBothAlgorithms(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	type key struct{ scenario, algo string }
	run := func(workers int) map[key]FrontResponse {
		c, _ := newTestServer(t, Config{Workers: workers})
		fronts := map[key]FrontResponse{}
		var ids []struct {
			k  key
			id string
		}
		for _, name := range scenario.Names() {
			for _, algo := range []string{AlgoNSGA2, AlgoMOSA} {
				spec := Spec{Scenario: name, Algorithm: algo, Seed: 21, Workers: 2}
				switch algo {
				case AlgoNSGA2:
					spec.NSGA2 = &dse.NSGA2Config{PopulationSize: 8, Generations: 5}
				case AlgoMOSA:
					spec.MOSA = &dse.MOSAConfig{Iterations: 600, Restarts: 2}
				}
				info, err := c.Submit(ctx, spec)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, algo, err)
				}
				ids = append(ids, struct {
					k  key
					id string
				}{key{name, algo}, info.ID})
			}
		}
		for _, entry := range ids {
			sawProgress := false
			final, err := c.Wait(ctx, entry.id, func(e Event) {
				if e.Type == "progress" {
					sawProgress = true
				}
			})
			if err != nil {
				t.Fatalf("%v: %v", entry.k, err)
			}
			if final.Status != StatusDone {
				t.Fatalf("%v: %s (%s)", entry.k, final.Status, final.Error)
			}
			if !sawProgress {
				t.Errorf("%v: no progress events on the SSE stream", entry.k)
			}
			front, err := c.Front(ctx, entry.id)
			if err != nil {
				t.Fatalf("%v: %v", entry.k, err)
			}
			if len(front.Front) == 0 {
				t.Fatalf("%v: empty front", entry.k)
			}
			fronts[entry.k] = front
		}
		return fronts
	}

	sequential := run(1)
	concurrent := run(4)
	for k, want := range sequential {
		got := concurrent[k]
		if !reflect.DeepEqual(want.Front, got.Front) {
			t.Fatalf("%v: front differs between service concurrency 1 and 4", k)
		}
		if want.Evaluated != got.Evaluated || want.Infeasible != got.Infeasible {
			t.Fatalf("%v: counts differ between service concurrency 1 and 4", k)
		}
	}
}

func TestHTTPErrors(t *testing.T) {
	c, m := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := c.Submit(ctx, Spec{Scenario: "nope", Algorithm: AlgoNSGA2}); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Fatalf("bad spec error: %v", err)
	}
	if _, err := c.Job(ctx, "j999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown job error: %v", err)
	}
	if _, err := c.Front(ctx, "j999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown front error: %v", err)
	}
	if err := c.Events(ctx, "j999", func(Event) bool { return true }); err == nil {
		t.Fatal("events for unknown job succeeded")
	}

	// Front before completion → 409. Submit an effectively-endless job.
	info, err := c.Submit(ctx, Spec{
		Scenario: "ecg-ward", Algorithm: AlgoNSGA2, Seed: 1, Workers: 1,
		NSGA2: &dse.NSGA2Config{PopulationSize: 8, Generations: 1000000},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		ji, err := c.Job(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if ji.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", ji.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Front(ctx, info.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("running-front error: %v", err)
	}
	if _, err := c.Cancel(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCancelled {
		t.Fatalf("cancelled job is %s", final.Status)
	}
	_ = m
}

// TestHTTPAPIErrorCodes pins the structured error envelope: every
// failure surfaces as a typed *APIError whose machine-readable code a
// client can branch on with errors.As.
func TestHTTPAPIErrorCodes(t *testing.T) {
	c, _ := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	codeOf := func(err error) (string, int) {
		t.Helper()
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("error is not an *APIError: %v", err)
		}
		return apiErr.Code, apiErr.StatusCode
	}

	_, err := c.Submit(ctx, Spec{Scenario: "nope", Algorithm: AlgoNSGA2})
	if code, status := codeOf(err); code != CodeInvalidSpec || status != http.StatusBadRequest {
		t.Fatalf("bad spec → %s/%d", code, status)
	}
	_, err = c.Job(ctx, "j999")
	if code, status := codeOf(err); code != CodeNotFound || status != http.StatusNotFound {
		t.Fatalf("unknown job → %s/%d", code, status)
	}
	_, err = c.Result(ctx, 999)
	if code, _ := codeOf(err); code != CodeNotFound {
		t.Fatalf("unknown result version → %s", code)
	}
	err = c.do(ctx, http.MethodGet, "/v1/results/banana", nil, nil)
	if code, _ := codeOf(err); code != CodeInvalidArgument {
		t.Fatalf("malformed result version → %s", code)
	}
	err = c.do(ctx, http.MethodGet, "/v1/jobs?limit=-1", nil, nil)
	if code, _ := codeOf(err); code != CodeInvalidArgument {
		t.Fatalf("negative limit → %s", code)
	}
	err = c.do(ctx, http.MethodGet, "/v1/results?offset=x", nil, nil)
	if code, _ := codeOf(err); code != CodeInvalidArgument {
		t.Fatalf("malformed offset → %s", code)
	}

	// The legacy flat {"error":"..."} shape still decodes into APIError
	// (message only, no code).
	flat := decodeAPIError(http.StatusTeapot, strings.NewReader(`{"error":"kaputt"}`))
	if flat.Code != "" || flat.Message != "kaputt" || flat.StatusCode != http.StatusTeapot {
		t.Fatalf("legacy decode %+v", flat)
	}
}

// TestHTTPSubmitUnknownFieldRejected: a typo in the spec body must be a
// 400 invalid_spec, not a silently defaulted job.
func TestHTTPSubmitUnknownFieldRejected(t *testing.T) {
	c, m := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	err := c.do(ctx, http.MethodPost, "/v1/jobs",
		map[string]any{"scenario": "ecg-ward", "algoritm": AlgoNSGA2}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeInvalidSpec || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("misspelled field → %v", err)
	}
	if !strings.Contains(apiErr.Message, "algoritm") {
		t.Fatalf("error does not name the offending field: %q", apiErr.Message)
	}
	if jobs := m.Jobs(); len(jobs) != 0 {
		t.Fatalf("rejected submission left %d job records", len(jobs))
	}
	// The well-formed twin is accepted — the rejection above was the
	// typo, not the endpoint.
	if _, err := c.Submit(ctx, smallNSGA2("ecg-ward", 1)); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPPagination drives the Page envelope over all three list
// endpoints: window arithmetic, the limit clamp, and the page-draining
// convenience methods.
func TestHTTPPagination(t *testing.T) {
	c, m := newTestServer(t, Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const n = 5
	for i := 0; i < n; i++ {
		info, err := c.Submit(ctx, Spec{Scenario: "ecg-ward", Algorithm: AlgoRandom, Seed: int64(i), Budget: 64, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, m, info.ID)
	}

	page, err := c.JobsPage(ctx, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != n || len(page.Items) != 2 || page.Limit != 2 || page.Offset != 0 {
		t.Fatalf("jobs page 1: %+v", page)
	}
	last, err := c.JobsPage(ctx, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if last.Total != n || len(last.Items) != 1 {
		t.Fatalf("jobs last page: %+v", last)
	}
	if page.Items[0].ID == last.Items[0].ID {
		t.Fatal("pages overlap")
	}
	beyond, err := c.JobsPage(ctx, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(beyond.Items) != 0 || beyond.Total != n {
		t.Fatalf("past-the-end page: %+v", beyond)
	}
	all, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n {
		t.Fatalf("Jobs() drained %d, want %d", len(all), n)
	}

	// A limit beyond the cap is clamped, and the response says so.
	var raw Page[JobInfo]
	if err := c.do(ctx, http.MethodGet, "/v1/jobs?limit=99999", nil, &raw); err != nil {
		t.Fatal(err)
	}
	if raw.Limit != MaxPageLimit {
		t.Fatalf("limit echoed %d, want clamp to %d", raw.Limit, MaxPageLimit)
	}

	// Results pagination windows the newest-first order.
	rp, err := c.ResultsPage(ctx, ResultQuery{Scenario: "ecg-ward", Algorithm: AlgoRandom, Limit: 2, Offset: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Total != n || len(rp.Items) != 2 || rp.Items[0].Version <= rp.Items[1].Version {
		t.Fatalf("results page %+v", rp)
	}

	// Scenario pagination agrees with the registry size.
	sp, err := c.ScenariosPage(ctx, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Total != len(scenario.Names()) || len(sp.Items) != 1 {
		t.Fatalf("scenarios page %+v", sp)
	}
}

// TestHTTPCheckpointRoundTrip drives the kill/resume flow purely over the
// HTTP surface: checkpoint → cancel → fetch snapshot → resubmit with
// resume → identical front to an uninterrupted HTTP job.
func TestHTTPCheckpointRoundTrip(t *testing.T) {
	c, _ := newTestServer(t, Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec := Spec{
		Scenario: "athletes", Algorithm: AlgoNSGA2, Seed: 13, Workers: 2,
		NSGA2: &dse.NSGA2Config{PopulationSize: 12, Generations: 25},
	}
	ref, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, ref.ID, nil); err != nil {
		t.Fatal(err)
	}
	want, err := c.Front(ctx, ref.ID)
	if err != nil {
		t.Fatal(err)
	}

	spec.CheckpointEvery = 4
	victim, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Events(ctx, victim.ID, func(e Event) bool {
		if e.Type == "progress" && e.Progress.Step >= 4 {
			if _, err := c.Cancel(ctx, victim.ID); err != nil {
				t.Errorf("cancel: %v", err)
			}
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, victim.ID, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Checkpoint(ctx, victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Algorithm != AlgoNSGA2 || snap.Step < 4 {
		t.Fatalf("snapshot %+v", snap)
	}

	resume := spec
	resume.Resume = snap
	resumed, err := c.Submit(ctx, resume)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, resumed.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("resumed job %s (%s)", final.Status, final.Error)
	}
	got, err := c.Front(ctx, resumed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Front, got.Front) {
		t.Fatal("resumed-over-HTTP front differs from uninterrupted run")
	}
}

// TestSSEWireFormat checks the raw stream shape without the client's
// parser in the way.
func TestSSEWireFormat(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	info, err := m.Submit(smallNSGA2("ecg-ward", 5))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, info.ID)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	// The job is already terminal, so the server replays the history and
	// closes the stream — a plain read drains it.
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"event: status", "event: progress", `"status":"done"`, "id: "} {
		if !strings.Contains(body, want) {
			t.Fatalf("SSE body missing %q:\n%s", want, body)
		}
	}
	// Each data line must be standalone-parseable JSON.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "data: ") {
			var e Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				t.Fatalf("unparseable data line %q: %v", line, err)
			}
		}
	}
}
