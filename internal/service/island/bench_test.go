package island

import (
	"context"
	"fmt"
	"testing"
	"time"

	"wsndse/internal/dse"
)

// latencyEval models the deployment the island tier exists for:
// evaluations with real latency (a network simulator run, an external
// co-simulator, hardware-in-the-loop) rather than pure in-process
// arithmetic. Each island drives its evaluations sequentially
// (Workers=1), so overlapping islands — not evaluator workers — is the
// axis that buys throughput.
type latencyEval struct {
	inner testEval
	delay time.Duration
}

func (e *latencyEval) NumObjectives() int { return 2 }
func (e *latencyEval) Evaluate(c dse.Config) (dse.Objectives, error) {
	time.Sleep(e.delay)
	return e.inner.Evaluate(c)
}

// BenchmarkDistributedThroughput measures merged-search throughput
// (evaluations per second across all islands) at 1/2/4/8 islands on a
// fixed scenario with 100µs evaluation latency. The acceptance bar is
// >1.5× at 4 islands over 1.
func BenchmarkDistributedThroughput(b *testing.B) {
	space := testSpace(12, 4, 3)
	eval := &latencyEval{inner: testEval{space: space}, delay: 100 * time.Microsecond}
	for _, islands := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("islands/%d", islands), func(b *testing.B) {
			job := Job{
				JobID:     "bench",
				Algorithm: "nsga2",
				NSGA2:     &dse.NSGA2Config{PopulationSize: 32, Generations: 20},
				Seed:      11,
				Workers:   1,
			}
			cfg := Config{Islands: islands, Interval: 5, Migrants: 4, Executors: islands}
			totalEvals := 0
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				c, err := New(cfg, job, space, eval)
				if err != nil {
					b.Fatal(err)
				}
				res, err := c.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				totalEvals += res.Evaluated
			}
			elapsed := time.Since(start).Seconds()
			b.StopTimer()
			if elapsed > 0 {
				b.ReportMetric(float64(totalEvals)/elapsed, "evals/s")
			}
		})
	}
}
