package island

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"wsndse/internal/service/faultinject"
)

// collectEvents wires an event recorder into cfg and returns the
// accessor. The coordinator emits from multiple goroutines.
func collectEvents(cfg *Config) func(kind string) int {
	var mu sync.Mutex
	counts := map[string]int{}
	cfg.OnEvent = func(e Event) {
		mu.Lock()
		counts[e.Kind]++
		mu.Unlock()
	}
	return func(kind string) int {
		mu.Lock()
		defer mu.Unlock()
		return counts[kind]
	}
}

// TestIslandPanicFailover: a transient panic in one island mid-round is
// retried from the island's checkpoint and the merged front is
// bit-identical to the undisturbed run — for both algorithms.
func TestIslandPanicFailover(t *testing.T) {
	for _, algo := range []string{"nsga2", "mosa"} {
		t.Run(algo, func(t *testing.T) {
			job, cfg := testJob(algo)
			golden := runCoordinator(t, job, cfg)

			defer faultinject.Reset()
			// Step 5 for nsga2 sits mid-round-2 (boundaries 3,6,9); for
			// mosa (boundaries 2,4,6) it sits mid-round-3.
			faultinject.PanicOnIslandAtStep(2, 5, 1)
			events := collectEvents(&cfg)
			disturbed := runCoordinator(t, job, cfg)
			sameResult(t, golden, disturbed, "panicked island vs golden")
			if events(EventCrash) != 1 || events(EventRestart) != 1 {
				t.Errorf("crash=%d restart=%d events, want 1/1", events(EventCrash), events(EventRestart))
			}
		})
	}
}

// TestExecutorLostRedistribution: an executor that panics every time it
// reaches a step exhausts its restart budget, is declared lost, and its
// islands complete on the survivors — with a bit-identical front.
func TestExecutorLostRedistribution(t *testing.T) {
	job, cfg := testJob("nsga2")
	golden := runCoordinator(t, job, cfg)

	defer faultinject.Reset()
	cfg.Executors = 2
	cfg.MaxRestarts = 2
	faultinject.PanicOnExecutorAtStep(1, 5, 1000) // persistent: every attempt on executor 1 dies
	events := collectEvents(&cfg)
	disturbed := runCoordinator(t, job, cfg)
	sameResult(t, golden, disturbed, "lost executor vs golden")
	if events(EventExecutorLost) != 1 {
		t.Errorf("executor_lost events = %d, want 1", events(EventExecutorLost))
	}
	if events(EventCrash) != 3 { // budget 2 + the final fatal attempt
		t.Errorf("crash events = %d, want 3", events(EventCrash))
	}
}

// TestAllExecutorsLostFallback: when every executor is persistently
// broken the coordinator finishes the job inline — slower, never wrong.
func TestAllExecutorsLostFallback(t *testing.T) {
	job, cfg := testJob("nsga2")
	golden := runCoordinator(t, job, cfg)

	defer faultinject.Reset()
	cfg.Executors = 2
	cfg.MaxRestarts = 1
	faultinject.SetIslandHook(func(jobID string, island, executor, step int) {
		if executor >= 0 && step == 5 {
			panic(faultinject.InjectedIslandPanic{JobID: jobID, Island: island, Executor: executor, Step: step})
		}
	})
	events := collectEvents(&cfg)
	disturbed := runCoordinator(t, job, cfg)
	sameResult(t, golden, disturbed, "all executors lost vs golden")
	if events(EventExecutorLost) != 2 || events(EventFallback) != 1 {
		t.Errorf("executor_lost=%d fallback=%d, want 2/1", events(EventExecutorLost), events(EventFallback))
	}
}

// TestFallbackExhaustedFailsCleanly: when even inline execution keeps
// dying the job fails with a diagnosable error instead of spinning.
func TestFallbackExhaustedFailsCleanly(t *testing.T) {
	job, cfg := testJob("nsga2")
	defer faultinject.Reset()
	cfg.Executors = 2
	cfg.MaxRestarts = 1
	faultinject.SetIslandHook(func(jobID string, island, executor, step int) {
		if step == 5 {
			panic(faultinject.InjectedIslandPanic{JobID: jobID, Island: island, Executor: executor, Step: step})
		}
	})
	space := testSpace(12, 4, 3)
	c, err := New(cfg, job, space, &testEval{space: space})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background())
	if !errors.Is(err, errNoExecutors) {
		t.Fatalf("err = %v, want errNoExecutors", err)
	}
}

// hangingRunner wraps a Runner, hanging the first attempt on one island
// until the watchdog's cancellation arrives.
type hangingRunner struct {
	inner  Runner
	island int
	once   sync.Once
}

func (h *hangingRunner) RunRound(ctx context.Context, req Request, beat Heartbeat) (*Response, error) {
	hang := false
	if req.Island == h.island {
		h.once.Do(func() { hang = true })
	}
	if hang {
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}
	return h.inner.RunRound(ctx, req, beat)
}

// TestStallWatchdogRecovers: an island that stops heartbeating is
// cancelled, retried, and the merged front is unchanged.
func TestStallWatchdogRecovers(t *testing.T) {
	job, cfg := testJob("nsga2")
	golden := runCoordinator(t, job, cfg)

	space := testSpace(12, 4, 3)
	cfg.StallTimeout = 100 * time.Millisecond
	cfg.Runner = &hangingRunner{inner: &GoRunner{Space: space, Eval: &testEval{space: space}}, island: 1}
	events := collectEvents(&cfg)
	start := time.Now()
	disturbed := runCoordinator(t, job, cfg)
	sameResult(t, golden, disturbed, "stalled island vs golden")
	if events(EventCrash) != 1 {
		t.Errorf("crash events = %d, want 1", events(EventCrash))
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("watchdog recovery took %v", elapsed)
	}
}

// TestDroppedMigrationsRetried: dropped ring transfers are retried until
// delivered — lossy exchange shifts timing, not the trajectory.
func TestDroppedMigrationsRetried(t *testing.T) {
	job, cfg := testJob("mosa")
	golden := runCoordinator(t, job, cfg)

	defer faultinject.Reset()
	faultinject.DropMigrations(5)
	events := collectEvents(&cfg)
	disturbed := runCoordinator(t, job, cfg)
	sameResult(t, golden, disturbed, "lossy migration vs golden")
	if events(EventMigrationDrop) != 5 {
		t.Errorf("migration_drop events = %d, want 5", events(EventMigrationDrop))
	}
}

// TestCancelPropagates: cancelling the job context fails the run with
// the cancellation cause, not a retry storm.
func TestCancelPropagates(t *testing.T) {
	job, cfg := testJob("nsga2")
	space := testSpace(12, 4, 3)
	c, err := New(cfg, job, space, &testEval{space: space})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, st := range c.Status() {
		if st.Restarts != 0 {
			t.Errorf("island %d retried a cancelled run %d times", st.Island, st.Restarts)
		}
	}
}

// TestCrashEventCarriesInjectedPayload pins the diagnosability contract:
// a failed island attempt's event names the injected fault.
func TestCrashEventCarriesInjectedPayload(t *testing.T) {
	job, cfg := testJob("nsga2")
	defer faultinject.Reset()
	faultinject.PanicOnIslandAtStep(0, 5, 1)
	var mu sync.Mutex
	var crashErr string
	cfg.OnEvent = func(e Event) {
		if e.Kind == EventCrash {
			mu.Lock()
			crashErr = e.Error
			mu.Unlock()
		}
	}
	runCoordinator(t, job, cfg)
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(crashErr, "injected panic") || !strings.Contains(crashErr, "island 0") {
		t.Fatalf("crash event error %q does not identify the injected fault", crashErr)
	}
}
